(* komodo: command-line driver for the Komodo model.

   Subcommands:
     run       boot the platform and run a named demo enclave
     trace     run an enclave through its full lifecycle, emitting a
               JSONL telemetry trace and auditing it
     attest    run an enclave and print/check its attestation
     inspect   boot, load, and dump the PageDB and memory layout
     notary    drive the notary enclave over a document file
     verify    check the noninterference harness at a chosen scale
     explore   bounded exhaustive model check of the monitor lifecycle
     vault     sealed-storage fault campaigns over an adversarial block store
     serve     attestation-as-a-service over recycled enclave pools
     profile   span-profile a fixed-seed campaign (tree, quantiles, folded)
     bench     compare fresh BENCH_*.json against a committed baseline

   Examples:
     komodo run --program sum --arg 100
     komodo trace --program sum --arg 100 --trace-out t.jsonl --metrics
     komodo notary --document README.md
     komodo verify --seeds 10 --ops 100
     komodo inspect *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Ptable = Komodo_machine.Ptable
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Monitor = Komodo_core.Monitor
module Pagedb = Komodo_core.Pagedb
module Mapping = Komodo_core.Mapping
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs
module Notary = Komodo_user.Notary
module Sha256 = Komodo_crypto.Sha256
module Sink = Komodo_telemetry.Sink
module Metrics = Komodo_telemetry.Metrics
module Audit = Komodo_telemetry.Audit
module Json = Komodo_telemetry.Json
module Span = Komodo_telemetry.Span
module Hist = Komodo_telemetry.Hist
module Campaign = Komodo_campaign.Campaign
module Progress = Komodo_campaign.Progress
module Drive = Komodo_fault.Drive
open Cmdliner

let programs =
  [
    ("add", (Progs.add_args, "add the three entry arguments"));
    ("sum", (Progs.sum_to_n, "sum the integers 1..arg1"));
    ("random", (Progs.random_word, "fetch one word from the monitor RNG"));
    ("attest", (Progs.attest_zero, "attest to 32 zero bytes"));
    ("fault", (Progs.fault_unmapped, "dereference an unmapped address"));
    ("spin", (Progs.spin_forever, "loop until interrupted"));
  ]

let seed_arg =
  Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"SEED" ~doc:"Boot-time RNG seed.")

let npages_arg =
  Arg.(value & opt int 64 & info [ "pages" ] ~docv:"N" ~doc:"Secure pages reserved at boot.")

(* -v / --verbosity (from logs.cli): the global level also drives the
   two per-module sources — the monitor's SMC call trace and the
   telemetry stream — so `-v -v` surfaces both without code changes. *)
let verbosity = Logs_cli.level ()

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level;
  Logs.Src.set_level Komodo_core.Smc.log_src level;
  Logs.Src.set_level Sink.log_src level

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a JSONL telemetry trace of every monitor crossing to $(docv) ('-' for stdout).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the telemetry metrics registry (call counts, error counts, cycle histograms) as JSON on exit.")

(* Build the monitor sink for the common --trace-out/--metrics pair.
   Returns the sink, the registry when --metrics was given, and a
   [finish] closing the trace channel and printing the metrics dump. *)
let telemetry_setup ~trace_out ~metrics =
  let reg = if metrics then Some (Metrics.create ()) else None in
  let oc =
    match trace_out with
    | None -> None
    | Some "-" -> Some stdout
    | Some path -> (
        try Some (open_out path)
        with Sys_error e ->
          Printf.eprintf "komodo: cannot open trace file: %s\n" e;
          exit 2)
  in
  let sinks =
    (match oc with Some oc -> [ Sink.jsonl oc ] | None -> [])
    @ (match reg with Some reg -> [ Metrics.sink reg ] | None -> [])
  in
  let finish () =
    (match oc with
    | Some oc when oc == stdout -> flush stdout
    | Some oc -> close_out oc
    | None -> ());
    match reg with
    | Some reg ->
        (* Keep stdout clean JSONL when the trace itself goes there. *)
        let chan = if trace_out = Some "-" then stderr else stdout in
        output_string chan (Json.to_string (Metrics.dump reg));
        output_char chan '\n';
        flush chan
    | None -> ()
  in
  (Sink.fanout sinks, reg, finish)

let load_simple ?(spares = 0) os prog =
  let code = Uprog.to_page_images (Uprog.code_words prog) in
  let img = Image.empty ~name:"cli" in
  let img = Image.add_blob img ~va:Word.zero ~w:false ~x:true code in
  let img = Image.add_thread img ~entry:Word.zero in
  let img = Image.with_spares img spares in
  match Loader.load os img with
  | Ok r -> r
  | Error e -> failwith (Format.asprintf "load failed: %a" Loader.pp_error e)

(* -- run -------------------------------------------------------------- *)

let program_arg =
  Arg.(
    value
    & opt (enum (List.map (fun (n, (p, _)) -> (n, p)) programs)) Progs.add_args
    & info [ "program"; "p" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Demo program to run (%s)."
             (String.concat ", " (List.map fst programs))))

let args_arg =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"Entry argument (up to 3).")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "irq-budget" ] ~docv:"STEPS" ~doc:"Interrupt after this many user steps.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "file"; "f" ] ~docv:"PROG.kasm"
        ~doc:"Assemble and run a .kasm program instead of a built-in demo.")

let spares_arg =
  Arg.(
    value & opt int 0
    & info [ "spares" ] ~docv:"N"
        ~doc:
          "Grant N spare pages to the enclave; their page numbers are \
           appended to the entry arguments (a1 = first spare, ...).")

let load_program ~file prog =
  match file with
  | None -> prog
  | Some path -> (
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Komodo_user.Kasm.parse src with
      | Ok prog -> prog
      | Error e -> failwith (Format.asprintf "%s: %a" path Komodo_user.Kasm.pp_error e))

let run_cmd =
  let run level seed npages prog args budget file spares trace_out metrics =
    setup_logs level;
    let prog = load_program ~file prog in
    let sink, _reg, finish = telemetry_setup ~trace_out ~metrics in
    let os = Os.boot ~seed ~npages ~sink () in
    let os, h = load_simple ~spares os prog in
    let th = List.hd h.Loader.threads in
    (* Spare page numbers prepend the argument list so .kasm programs
       that manage dynamic memory can find them in r0... *)
    let args = List.map (fun s -> Word.of_int s) h.Loader.spares
               @ List.map Word.of_int args in
    if h.Loader.spares <> [] then
      Printf.printf "spares granted: %s\n"
        (String.concat ", " (List.map string_of_int h.Loader.spares));
    let nth n = try List.nth args n with _ -> Word.zero in
    let c0 = Os.cycles os in
    let os, err, v =
      match budget with
      | None -> Os.enter os ~thread:th ~args:(nth 0, nth 1, nth 2)
      | Some b -> Os.run_thread ~budget:b os ~thread:th ~args:(nth 0, nth 1, nth 2)
    in
    Printf.printf "result: %s, value = %d (0x%x)\n" (Errors.show err) (Word.to_int v)
      (Word.to_int v);
    Printf.printf "cycles: %d (%.3f ms at 900 MHz)\n" (Os.cycles os - c0)
      (Komodo_machine.Cost.cycles_to_ms (Os.cycles os - c0));
    finish ();
    if Errors.is_success err || Errors.equal err Errors.Fault then 0 else 1
  in
  Cmd.v (Cmd.info "run" ~doc:"Boot the platform and run a demo enclave")
    Term.(
      const run $ verbosity $ seed_arg $ npages_arg $ program_arg $ args_arg $ budget_arg
      $ file_arg $ spares_arg $ trace_out_arg $ metrics_arg)

(* -- trace ------------------------------------------------------------- *)

let trace_cmd =
  let pretty =
    Arg.(
      value & flag
      & info [ "pretty" ] ~doc:"Also pretty-print each event to stderr as it happens.")
  in
  let run level seed npages prog args budget file spares trace_out metrics pretty =
    setup_logs level;
    let prog = load_program ~file prog in
    (* The trace defaults to stdout so `komodo trace -p sum` is useful
       bare; --trace-out FILE redirects it. *)
    let trace_out = Some (Option.value trace_out ~default:"-") in
    let sink, reg, finish = telemetry_setup ~trace_out ~metrics in
    (* Keep a copy of the stream in memory for the audit pass, and —
       when metrics are on — count retired user instructions via the
       machine layer's probe. *)
    let collect_sink, collected = Sink.collect () in
    let exec =
      match reg with
      | None -> Komodo_user.Verifier.executor ()
      | Some reg ->
          Komodo_user.Verifier.executor
            ~probe:(fun ~steps -> Metrics.add_count reg "user_instructions" steps)
            ()
    in
    let sinks = [ sink; collect_sink ] in
    let sinks = if pretty then Sink.console Format.err_formatter :: sinks else sinks in
    let os = Os.boot ~seed ~npages ~sink:(Sink.fanout sinks) ~exec () in
    let os, h = load_simple ~spares os prog in
    let th = List.hd h.Loader.threads in
    let args =
      List.map (fun s -> Word.of_int s) h.Loader.spares @ List.map Word.of_int args
    in
    let nth n = try List.nth args n with _ -> Word.zero in
    let os, err, v =
      Os.run_thread ?budget os ~thread:th ~args:(nth 0, nth 1, nth 2)
    in
    Printf.eprintf "result: %s, value = %d (0x%x)\n" (Errors.show err) (Word.to_int v)
      (Word.to_int v);
    (* Full Figure 3 arc: stop the enclave and reclaim every page, so
       the trace ends init -> ... -> enter -> exit -> stop -> remove. *)
    let _os, terr = Os.teardown os ~addrspace:h.Loader.addrspace in
    finish ();
    let events = collected () in
    let violations = Audit.check events in
    List.iter (fun v -> Format.eprintf "audit: %a@." Audit.pp_violation v) violations;
    if violations = [] then
      Printf.eprintf "audit: trace orderly (%d events)\n" (List.length events);
    (* Distinct exit codes so CI can gate on the audit specifically:
       0 clean, 1 enclave/teardown error, 3 lifecycle audit rejected. *)
    if violations <> [] then 3
    else if Errors.is_success err && Errors.is_success terr then 0
    else 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run an enclave through its full lifecycle (init, finalise, enter, stop, remove), \
          emitting a JSONL telemetry trace and checking it with the audit log. Exits 0 on \
          a clean run, 1 on an enclave error, 3 when the lifecycle audit rejects the trace.")
    Term.(
      const run $ verbosity $ seed_arg $ npages_arg $ program_arg $ args_arg $ budget_arg
      $ file_arg $ spares_arg $ trace_out_arg $ metrics_arg $ pretty)

(* -- attest ----------------------------------------------------------- *)

let attest_cmd =
  let run level seed npages =
    setup_logs level;
    let os = Os.boot ~seed ~npages () in
    let os, h = load_simple os Progs.attest_zero in
    let os, err, v = Os.enter os ~thread:(List.hd h.Loader.threads) ~args:(Word.zero, Word.zero, Word.zero) in
    Printf.printf "enclave measurement: %s\n" (Sha256.to_hex h.Loader.measurement);
    Printf.printf "enclave ran: %s; first MAC word: 0x%08x\n" (Errors.show err) (Word.to_int v);
    (* Recompute with the boot secret to check. *)
    let data = String.make 32 '\000' in
    let mac =
      Komodo_core.Attest.create ~key:os.Os.mon.Monitor.attest_key
        ~measurement:h.Loader.measurement ~data
    in
    let expected = Word.to_int (List.hd (Sha256.digest_words_of mac)) in
    Printf.printf "attestation %s (expected 0x%08x)\n"
      (if expected = Word.to_int v then "VALID" else "INVALID")
      expected;
    if expected = Word.to_int v then 0 else 1
  in
  Cmd.v
    (Cmd.info "attest" ~doc:"Run an attesting enclave and check its MAC against the boot secret")
    Term.(const run $ verbosity $ seed_arg $ npages_arg)

(* -- inspect ----------------------------------------------------------- *)

let inspect_cmd =
  let run level seed npages =
    setup_logs level;
    let os = Os.boot ~seed ~npages () in
    let os, _ = load_simple os Progs.add_args in
    let os, h2 = load_simple os Progs.sum_to_n in
    Printf.printf "platform: %d secure pages at %s; monitor image at %s\n" npages
      (Word.show Komodo_tz.Layout.secure_region_base)
      (Word.show Komodo_tz.Layout.monitor_image_base);
    Printf.printf "attestation key: %s...\n"
      (String.sub (Sha256.to_hex os.Os.mon.Monitor.attest_key) 0 16);
    print_endline "PageDB:";
    Format.printf "%a@." Pagedb.pp os.Os.mon.Monitor.pagedb;
    Printf.printf "second enclave measurement: %s\n" (Sha256.to_hex h2.Loader.measurement);
    let wf =
      Pagedb.wf os.Os.mon.Monitor.plat os.Os.mon.Monitor.mach.State.mem
        os.Os.mon.Monitor.pagedb
    in
    Printf.printf "PageDB well-formed: %b\n" wf;
    if wf then 0 else 1
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Dump the PageDB and platform layout of a loaded system")
    Term.(const run $ verbosity $ seed_arg $ npages_arg)

(* -- notary ------------------------------------------------------------ *)

let notary_cmd =
  let document =
    Arg.(
      value
      & opt (some file) None
      & info [ "document"; "d" ] ~docv:"FILE" ~doc:"File to notarise (default: a demo string).")
  in
  let run level seed npages document =
    setup_logs level;
    let os = Os.boot ~seed ~npages () in
    let zero_page = String.make Ptable.page_size '\000' in
    let code = Uprog.to_page_images (Uprog.native_words ~id:Notary.native_id) in
    let img = Image.empty ~name:"notary" in
    let img = Image.add_blob img ~va:Notary.code_va ~w:false ~x:true code in
    let img =
      Image.add_secure_page img
        ~mapping:(Mapping.make ~va:Notary.state_va ~w:true ~x:false)
        ~contents:zero_page
    in
    let img =
      Image.add_secure_page img
        ~mapping:(Mapping.make ~va:Notary.heap_va ~w:true ~x:false)
        ~contents:zero_page
    in
    let img =
      Image.add_insecure_mapping img
        ~mapping:(Mapping.make ~va:Notary.output_va ~w:true ~x:false)
        ~target:Os.shared_base
    in
    let img =
      List.fold_left
        (fun img i ->
          Image.add_insecure_mapping img
            ~mapping:
              (Mapping.make
                 ~va:(Word.add Notary.input_va (Word.of_int (i * Ptable.page_size)))
                 ~w:false ~x:false)
            ~target:(Word.add Os.document_base (Word.of_int (i * Ptable.page_size))))
        img
        (List.init 64 (fun i -> i))
    in
    let img = Image.add_thread img ~entry:Notary.code_va in
    let os, h =
      match Loader.load os img with
      | Ok r -> r
      | Error e -> failwith (Format.asprintf "notary load: %a" Loader.pp_error e)
    in
    let th = List.hd h.Loader.threads in
    let os, err, _ = Os.enter os ~thread:th ~args:(Word.zero, Word.zero, Word.zero) in
    assert (Errors.is_success err);
    let doc =
      match document with
      | Some path ->
          let ic = open_in_bin path in
          let n = min (in_channel_length ic) (60 * Ptable.page_size) in
          let s = really_input_string ic n in
          close_in ic;
          s
      | None -> "komodo notary demo document"
    in
    let padded = doc ^ String.make ((4 - (String.length doc mod 4)) mod 4) '\000' in
    let os = Os.write_bytes os Os.document_base padded in
    let os, err, stamp =
      Os.enter os ~thread:th
        ~args:(Word.of_int Notary.cmd_notarize, Notary.input_va, Word.of_int (String.length padded))
    in
    if not (Errors.is_success err) then begin
      Printf.printf "notarise failed: %s\n" (Errors.show err);
      1
    end
    else begin
      let signature = Os.read_bytes os Os.shared_base 128 in
      Printf.printf "document: %d bytes\n" (String.length doc);
      Printf.printf "counter stamp: %d\n" (Word.to_int stamp);
      Printf.printf "signature: %s...\n" (String.sub (Sha256.to_hex signature) 0 32);
      Printf.printf "measurement: %s\n" (Sha256.to_hex h.Loader.measurement);
      0
    end
  in
  Cmd.v (Cmd.info "notary" ~doc:"Notarise a document with the notary enclave")
    Term.(const run $ verbosity $ seed_arg $ npages_arg $ document)

(* -- asm ------------------------------------------------------------------ *)

let asm_cmd =
  let file =
    Arg.(
      required
      & opt (some file) None
      & info [ "file"; "f" ] ~docv:"PROG.kasm" ~doc:"Program to assemble.")
  in
  let run file =
    let ic = open_in_bin file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Komodo_user.Kasm.parse src with
    | Error e ->
        Format.printf "%s: %a@." file Komodo_user.Kasm.pp_error e;
        1
    | Ok prog ->
        let flat = Komodo_machine.Insn.flatten prog in
        let words = Uprog.code_words prog in
        let pages = Uprog.to_page_images words in
        Printf.printf "%s: %d statements, %d flat ops, %d words, %d page(s)
" file
          (List.length prog) (Array.length flat) (List.length words)
          (List.length pages);
        (* The measurement a canonical single-thread image of this
           program would carry: what a verifier should expect. *)
        let img =
          Image.empty ~name:file
          |> fun img ->
          Image.add_blob img ~va:Word.zero ~w:false ~x:true pages |> fun img ->
          Image.add_thread img ~entry:Word.zero
        in
        Printf.printf "enclave measurement (code @0, one thread): %s
"
          (Sha256.to_hex (Image.expected_measurement img));
        print_endline "disassembly:";
        print_string (Komodo_user.Kasm.print prog);
        0
  in
  Cmd.v
    (Cmd.info "asm"
       ~doc:"Assemble a .kasm program, report its size and expected measurement")
    Term.(const run $ file)

(* -- campaign observability ---------------------------------------------

   --progress / --progress-out / --profile-out on `check` and `fault`.
   Progress renders to stderr and/or mirrors JSONL snapshots; profiles
   aggregate per-trial span trees into a komodo-profile/1 JSON file.
   Both are pure observers: stdout (and the campaign report) stays
   byte-identical whether they are on or off. *)

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Stream live campaign progress to stderr: trials done, trials/sec,            coverage growth, fault-class hit counts. Never touches stdout.")

let progress_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "progress-out" ] ~docv:"FILE"
        ~doc:
          "Mirror progress snapshots to $(docv), one komodo-progress/1 JSON            object per line.")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Record per-trial span trees (monitor call -> validate/commit ->            hash/ptwalk/exec) and write the aggregated profile to $(docv) as            komodo-profile/1 JSON.")

let progress_setup ~progress ~progress_out ~label ~total =
  if (not progress) && progress_out = None then (None, fun () -> ())
  else
    let jsonl =
      match progress_out with
      | None -> None
      | Some path -> (
          try Some (open_out path)
          with Sys_error e ->
            Printf.eprintf "komodo: cannot open progress file: %s\n" e;
            exit 2)
    in
    let p =
      Progress.create ?jsonl ~live:progress ~now:Unix.gettimeofday ~label ~total ()
    in
    (Some p, fun () -> Option.iter close_out jsonl)

let rec agg_to_json (a : Span.agg) =
  Json.Obj
    [
      ("name", Json.Str a.Span.a_name);
      ("count", Json.Int a.Span.a_count);
      ("cycles", Json.Int a.Span.a_cycles);
      ("wall_ns", Json.Int a.Span.a_wall_ns);
      ("children", Json.List (List.map agg_to_json a.Span.a_children));
    ]

let quantiles_json spans =
  Json.Obj
    (List.map
       (fun (name, h) ->
         ( name,
           Json.Obj
             [
               ("count", Json.Int (Hist.count h));
               ("p50", Json.Int (Hist.p50 h));
               ("p90", Json.Int (Hist.p90 h));
               ("p99", Json.Int (Hist.p99 h));
               ("p999", Json.Int (Hist.p999 h));
               ("max", Json.Int (Hist.max_value h));
             ] ))
       (Span.durations spans))

let profile_json ~label ~seed ~trials spans =
  Json.Obj
    [
      ("schema", Json.Str "komodo-profile/1");
      ("label", Json.Str label);
      ("seed", Json.Int seed);
      ("trials", Json.Int trials);
      ("total_spans", Json.Int (Span.total_spans spans));
      ("tree", Json.List (List.map agg_to_json (Span.aggregate spans)));
      ("quantiles", quantiles_json spans);
    ]

let write_json_file path j =
  match
    let oc = open_out path in
    output_string oc (Json.to_string j);
    output_char oc '\n';
    close_out oc
  with
  | () -> Printf.eprintf "[wrote %s]\n%!" path
  | exception Sys_error e ->
      Printf.eprintf "komodo: cannot write %s: %s\n" path e;
      exit 2

let write_profile ~path ~label ~seed ~trials spans =
  write_json_file path (profile_json ~label ~seed ~trials spans)

(* -- check -------------------------------------------------------------- *)

(* -j/--jobs for the two campaign subcommands: 0 (the default) means
   one worker per recommended domain. Whatever the value, the report
   is byte-identical — parallelism only changes wallclock. *)
let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the campaign (default: the machine's recommended \
           domain count). Reports are byte-identical at any -j: trial seeds are \
           derived from (seed, trial index), failures report the lowest failing \
           trial, and coverage merges are order-insensitive.")

(* Sniff the first non-blank line for the komodo-check-trace/1 schema
   tag, routing `check --replay` between explore counterexamples and
   telemetry traces. *)
let is_explore_trace path =
  match open_in path with
  | exception Sys_error _ -> false
  | ic ->
      let rec first () =
        match input_line ic with
        | line when String.trim line = "" -> first ()
        | line -> Some line
        | exception End_of_file -> None
      in
      let l = first () in
      close_in ic;
      (match l with Some l -> Komodo_spec.Explore.is_trace l | None -> false)

let check_cmd =
  let trials =
    Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc:"Differential trials to run.")
  in
  let ops =
    Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N" ~doc:"Adversarial ops per trial.")
  in
  let check_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generation seed.")
  in
  let check_pages =
    Arg.(
      value & opt int 40
      & info [ "pages" ] ~docv:"N"
          ~doc:"Secure pages per trial world (and expected by --replay).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Instead of generating trials, re-check the JSONL telemetry trace in $(docv) against the spec.")
  in
  let mutate =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"NAME"
          ~doc:
            "Run against a deliberately broken spec variant (self-test; expects a divergence). \
             One of: no-alias-check, no-monitor-image-check, drop-refcount.")
  in
  let run level trials ops seed pages replay mutate jobs metrics progress
      progress_out profile_out =
    setup_logs level;
    match replay with
    | Some path when is_explore_trace path -> (
        (* A komodo-check-trace/1 counterexample from `komodo explore`:
           replay it in differential lockstep against a fresh concrete
           world (under the trace's own mutation, so an abstract
           counterexample must reproduce as a divergence). *)
        match Komodo_spec.Explore.replay_file path with
        | Error e ->
            Printf.eprintf "komodo check: cannot replay %s: %s\n" path e;
            2
        | Ok (Komodo_spec.Explore.Clean n) ->
            Printf.printf
              "replayed %d explore ops in differential lockstep: no divergence\n"
              n;
            print_endline "trace refines the spec";
            0
        | Ok (Komodo_spec.Explore.Diverged d) ->
            Printf.printf "replayed explore counterexample DIVERGENCE:\n%s\n"
              (Komodo_spec.Diff.pp_divergence d);
            4)
    | Some path -> (
        match Komodo_spec.Trace_check.replay_file ~npages:pages path with
        | Error e ->
            Printf.eprintf "komodo check: cannot replay %s: %s\n" path e;
            2
        | Ok r ->
            Printf.printf "replayed %d events (%d monitor calls) against the spec\n"
              r.Komodo_spec.Trace_check.events r.Komodo_spec.Trace_check.calls;
            List.iter
              (fun (i, msg) -> Printf.printf "event %d: VIOLATION: %s\n" i msg)
              r.Komodo_spec.Trace_check.violations;
            if r.Komodo_spec.Trace_check.violations = [] then (
              print_endline "trace refines the spec";
              0)
            else 1)
    | None -> (
        let mutate =
          match mutate with
          | None -> None
          | Some name -> (
              match Komodo_spec.Aspec.mutation_of_string name with
              | Some m -> Some m
              | None ->
                  Printf.eprintf "komodo check: unknown mutation %S\n" name;
                  exit 2)
        in
        let prog, prog_close =
          progress_setup ~progress ~progress_out ~label:"check" ~total:trials
        in
        let o =
          Komodo_campaign.Campaign.check ?mutate ~npages:pages ~ops_per_trial:ops
            ~metrics
            ~profile:(profile_out <> None)
            ?progress:prog ~jobs ~trials ~seed ()
        in
        prog_close ();
        (match profile_out with
        | Some path ->
            write_profile ~path ~label:"check" ~seed ~trials
              o.Komodo_spec.Diff.spans
        | None -> ());
        Printf.printf "%d trials, %d lockstep ops checked\n"
          o.Komodo_spec.Diff.trials_run o.Komodo_spec.Diff.ops_run;
        List.iter print_endline (Komodo_spec.Cover.report o.Komodo_spec.Diff.cover);
        (match o.Komodo_spec.Diff.metrics with
        | Some reg -> print_endline (Json.to_string (Metrics.dump reg))
        | None -> ());
        match o.Komodo_spec.Diff.divergence with
        | None ->
            print_endline "no divergence: implementation refines the spec";
            if mutate <> None then (
              print_endline "MUTATION SURVIVED: the checker failed its self-test";
              1)
            else 0
        | Some (tseed, shrunk, d) ->
            Printf.printf "DIVERGENCE (trial seed %d), shrunk to %d calls:\n" tseed
              (List.length shrunk);
            List.iteri
              (fun i op -> Printf.printf "  %2d. %s\n" i (Komodo_spec.Diff.pp_op op))
              shrunk;
            print_endline (Komodo_spec.Diff.pp_divergence d);
            if mutate <> None then (
              print_endline "mutation caught: checker self-test passed";
              0)
            else 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differentially check the monitor against the abstract spec (adversarial call \
          sequences, lockstep comparison, shrinking), or --replay a telemetry trace. \
          Campaigns run trials on a domain pool (-j) with byte-identical reports at any \
          worker count.")
    Term.(
      const run $ verbosity $ trials $ ops $ check_seed $ check_pages $ replay $ mutate
      $ jobs_arg $ metrics_arg $ progress_arg $ progress_out_arg $ profile_out_arg)

(* -- explore ------------------------------------------------------------ *)

let explore_cmd =
  let module Explore = Komodo_spec.Explore in
  let pages =
    Arg.(
      value & opt int 6
      & info [ "pages" ] ~docv:"N"
          ~doc:
            "Secure pages in the explored world (at least 6 — the prelude \
             occupies pages 0-5; worlds above 10 pages use a symmetry-reduced \
             page-argument pool).")
  in
  let depth =
    Arg.(
      value & opt int 6
      & info [ "depth" ] ~docv:"N"
          ~doc:"BFS depth bound, in monitor calls beyond the prelude.")
  in
  let explore_seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Concrete-replay seed stamped into counterexample traces (the \
             search itself is exhaustive, not randomised).")
  in
  let mutate =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"NAME"
          ~doc:
            "Explore a deliberately broken spec variant (self-test; expects a \
             violation). One of: no-alias-check, no-monitor-image-check, \
             drop-refcount.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:
            "On violation, save the shortest counterexample as a \
             komodo-check-trace/1 JSONL file, replayable with komodo check \
             --replay (exit 4 on the reproduced divergence).")
  in
  let run level pages depth seed mutate save jobs progress progress_out =
    setup_logs level;
    let mutate =
      match mutate with
      | None -> None
      | Some name -> (
          match Komodo_spec.Aspec.mutation_of_string name with
          | Some m -> Some m
          | None ->
              Printf.eprintf "komodo explore: unknown mutation %S\n" name;
              exit 2)
    in
    let config = { Explore.pages; depth; seed; mutate } in
    let prog, prog_close =
      progress_setup ~progress ~progress_out ~label:"explore" ~total:depth
    in
    let r =
      match Komodo_campaign.Campaign.explore ?progress:prog ~jobs ~config () with
      | r -> r
      | exception Invalid_argument msg ->
          Printf.eprintf "komodo explore: %s\n" msg;
          exit 2
    in
    prog_close ();
    Printf.printf "explored %d states, %d edges checked (%d pages, depth %d)\n"
      r.Explore.x_states r.Explore.x_edges pages depth;
    Printf.printf "new states per level: %s\n"
      (String.concat " " (List.map string_of_int r.Explore.x_levels));
    List.iter print_endline (Komodo_spec.Cover.report r.Explore.x_cover);
    match r.Explore.x_violation with
    | None ->
        print_endline
          "no violation: every explored edge satisfies the lifecycle properties";
        if mutate <> None then (
          print_endline "MUTATION SURVIVED: the explorer failed its self-test";
          1)
        else 0
    | Some v ->
        List.iter print_endline (Explore.render_violation v);
        (match save with
        | Some path -> (
            match
              let oc = open_out path in
              List.iter
                (fun l ->
                  output_string oc l;
                  output_char oc '\n')
                (Explore.trace_lines config v);
              close_out oc
            with
            | () -> Printf.eprintf "[wrote %s]\n%!" path
            | exception Sys_error e ->
                Printf.eprintf "komodo explore: cannot write %s: %s\n" path e;
                exit 2)
        | None -> ());
        if mutate <> None then (
          print_endline "mutation caught: explorer self-test passed";
          0)
        else 4
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively model-check the monitor lifecycle: BFS over every \
          SMC/SVC sequence of the abstract spec up to a depth bound, checking \
          error priorities, PageDB invariants, measurement monotonicity and \
          declassification on every edge. Reports are byte-identical at any \
          -j; violations emit a shortest-path trace replayable with komodo \
          check --replay. Exits 0 clean, 4 on a violation, 1 if a --mutate \
          self-test survives, 2 on usage errors.")
    Term.(
      const run $ verbosity $ pages $ depth $ explore_seed $ mutate $ save
      $ jobs_arg $ progress_arg $ progress_out_arg)

(* -- fault -------------------------------------------------------------- *)

let fault_cmd =
  let module Drive = Komodo_fault.Drive in
  let trials =
    Arg.(value & opt int 25 & info [ "trials" ] ~docv:"N" ~doc:"Fault-injection trials to run.")
  in
  let ops =
    Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N" ~doc:"Adversarial ops per trial (before fault decoration).")
  in
  let fseed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.") in
  let fpages =
    Arg.(value & opt int 40 & info [ "pages" ] ~docv:"N" ~doc:"Secure pages per trial world.")
  in
  let faults =
    Arg.(
      value
      & opt string "irq,mem,rng,storm,crash"
      & info [ "faults" ] ~docv:"CLASSES"
          ~doc:"Comma-separated fault classes to arm: irq, mem, rng, storm, crash.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"NAME"
          ~doc:
            "Re-enable a deliberate partial-mutation bug in the monitor (self-test; \
             expects the campaign to catch it). One of: partial_map_secure, partial_remove.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run the fault campaign trace in $(docv) instead of generating trials.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"On violation, save the shrunk campaign as a replayable JSONL trace.")
  in
  let run level trials ops seed pages faults bug replay save jobs progress
      progress_out profile_out =
    setup_logs level;
    match replay with
    | Some path -> (
        let ic = open_in path in
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        let lines = read [] in
        close_in ic;
        match Drive.trace_parse lines with
        | Error e ->
            Printf.eprintf "komodo fault: cannot replay %s: %s\n" path e;
            2
        | Ok (h, fops) -> (
            match Drive.replay h fops with
            | Ok st ->
                Printf.printf "replayed %d fops (%d faults fired): no violation\n"
                  st.Drive.fops_run st.Drive.injections;
                0
            | Error v ->
                Printf.printf "replayed campaign VIOLATION:\n%s\n" (Drive.pp_violation v);
                4))
    | None -> (
        let faults =
          List.map
            (fun s ->
              match Drive.class_of_string (String.trim s) with
              | Some c -> c
              | None ->
                  Printf.eprintf "komodo fault: unknown fault class %S\n" s;
                  exit 2)
            (String.split_on_char ',' faults)
        in
        let bug =
          match bug with
          | None -> None
          | Some name -> (
              match Monitor.bug_of_string name with
              | Some b -> Some b
              | None ->
                  Printf.eprintf "komodo fault: unknown bug %S\n" name;
                  exit 2)
        in
        let prog, prog_close =
          progress_setup ~progress ~progress_out ~label:"fault" ~total:trials
        in
        let o =
          Komodo_campaign.Campaign.fault ~npages:pages ~ops_per_trial:ops
            ~profile:(profile_out <> None)
            ?progress:prog ?bug ~jobs ~faults ~trials ~seed ()
        in
        prog_close ();
        (match profile_out with
        | Some path ->
            write_profile ~path ~label:"fault" ~seed ~trials o.Drive.spans
        | None -> ());
        Printf.printf "%d trials, %d fault-decorated ops, %d faults fired\n"
          o.Drive.trials_run o.Drive.total_fops o.Drive.total_injections;
        Printf.printf "worst interrupt blackout: %d cycles (%.3f ms at 900 MHz)\n"
          o.Drive.blackout
          (Komodo_machine.Cost.cycles_to_ms o.Drive.blackout);
        match o.Drive.violation with
        | None ->
            if bug <> None then (
              print_endline "BUG SURVIVED: the fault campaign failed its self-test";
              1)
            else (
              print_endline "no violation: every call stayed atomic under injected faults";
              0)
        | Some (tseed, shrunk, v) ->
            Printf.printf "VIOLATION (trial seed %d), shrunk to %d fops:\n" tseed
              (List.length shrunk);
            List.iteri (fun i f -> Printf.printf "  %2d. %s\n" i (Drive.pp_fop f)) shrunk;
            print_endline (Drive.pp_violation v);
            (match save with
            | None -> ()
            | Some file ->
                let oc = open_out file in
                List.iter
                  (fun l -> output_string oc (l ^ "\n"))
                  (Drive.trace_lines ~seed:tseed ~npages:pages ~bug shrunk);
                close_out oc;
                Printf.printf "shrunk campaign saved to %s\n" file);
            if bug <> None then (
              print_endline "bug caught: fault-campaign self-test passed";
              0)
            else 4)
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Inject adversarial faults (spurious interrupts, concurrent-core memory writes, \
          entropy exhaustion, SMC storms, OS crash/restarts) while differentially checking \
          the monitor, asserting PageDB invariants and transactional atomicity after every \
          call. Trials run on a domain pool (-j) with byte-identical reports at any worker \
          count. Exits 0 on a clean campaign, 4 on an atomicity/invariant violation.")
    Term.(
      const run $ verbosity $ trials $ ops $ fseed $ fpages $ faults $ bug $ replay $ save
      $ jobs_arg $ progress_arg $ progress_out_arg $ profile_out_arg)

(* -- vault --------------------------------------------------------------- *)

let vault_cmd =
  let module Vaultdrive = Komodo_fault.Vaultdrive in
  let module Vault = Komodo_user.Vault in
  let trials =
    Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc:"Storage-fault trials to run.")
  in
  let ops =
    Arg.(
      value & opt int 24
      & info [ "ops" ] ~docv:"N"
          ~doc:"Vault operations per trial (before storage-fault decoration).")
  in
  let vseed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.") in
  let vpages =
    Arg.(value & opt int 48 & info [ "pages" ] ~docv:"N" ~doc:"Secure pages per trial world.")
  in
  let classes =
    Arg.(
      value
      & opt string "tamper,replay,crash"
      & info [ "classes" ] ~docv:"CLASSES"
          ~doc:"Comma-separated storage fault classes to arm: tamper, replay, crash.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"NAME"
          ~doc:
            "Re-enable a deliberate detection-disable bug in the vault enclave \
             (self-test; expects the campaign to catch it). One of: \
             accept_tampered, accept_stale.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run the vault campaign trace in $(docv) instead of generating trials.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"On violation, save the shrunk campaign as a replayable JSONL trace.")
  in
  let run level trials ops seed pages classes bug replay save jobs progress
      progress_out =
    setup_logs level;
    match replay with
    | Some path -> (
        let ic = open_in path in
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        let lines = read [] in
        close_in ic;
        match Vaultdrive.trace_parse lines with
        | Error e ->
            Printf.eprintf "komodo vault: cannot replay %s: %s\n" path e;
            2
        | Ok (h, sops) -> (
            match Vaultdrive.replay h sops with
            | Ok st ->
                Printf.printf
                  "replayed %d sops (%d probes, %d detected, %d accepted): no \
                   violation\n"
                  st.Vaultdrive.sops_run st.Vaultdrive.probes
                  st.Vaultdrive.detected st.Vaultdrive.accepted;
                0
            | Error v ->
                Printf.printf "replayed campaign VIOLATION:\n%s\n"
                  (Vaultdrive.pp_violation v);
                4))
    | None -> (
        let classes =
          List.map
            (fun s ->
              match Vaultdrive.class_of_string (String.trim s) with
              | Some c -> c
              | None ->
                  Printf.eprintf "komodo vault: unknown storage class %S\n" s;
                  exit 2)
            (String.split_on_char ',' classes)
        in
        let bug =
          match bug with
          | None -> None
          | Some name -> (
              match Vault.bug_of_string name with
              | Some b -> Some b
              | None ->
                  Printf.eprintf "komodo vault: unknown bug %S\n" name;
                  exit 2)
        in
        let prog, prog_close =
          progress_setup ~progress ~progress_out ~label:"vault" ~total:trials
        in
        let o =
          Komodo_campaign.Campaign.vault ~npages:pages ~ops_per_trial:ops
            ?progress:prog ?bug ~jobs ~classes ~trials ~seed ()
        in
        prog_close ();
        Printf.printf "%d trials, %d storage-fault-decorated vault ops\n"
          o.Vaultdrive.trials_run o.Vaultdrive.total_sops;
        Printf.printf "%d unseal probes: %d detected (tampered/stale), %d accepted\n"
          o.Vaultdrive.total_probes o.Vaultdrive.total_detected
          o.Vaultdrive.total_accepted;
        match o.Vaultdrive.violation with
        | None ->
            if bug <> None then (
              print_endline "BUG SURVIVED: the vault campaign failed its self-test";
              1)
            else (
              print_endline
                "no violation: every corruption detected, every rollback \
                 refused, no false unseals";
              0)
        | Some (tseed, shrunk, v) ->
            Printf.printf "VIOLATION (trial seed %d), shrunk to %d sops:\n" tseed
              (List.length shrunk);
            List.iteri
              (fun i s -> Printf.printf "  %2d. %s\n" i (Vaultdrive.pp_sop s))
              shrunk;
            print_endline (Vaultdrive.pp_violation v);
            (match save with
            | None -> ()
            | Some file ->
                let oc = open_out file in
                List.iter
                  (fun l -> output_string oc (l ^ "\n"))
                  (Vaultdrive.trace_lines ~seed:tseed ~npages:pages ~bug shrunk);
                close_out oc;
                Printf.printf "shrunk campaign saved to %s\n" file);
            if bug <> None then (
              print_endline "bug caught: vault-campaign self-test passed";
              0)
            else 4)
  in
  Cmd.v
    (Cmd.info "vault"
       ~doc:
         "Run sealed-storage fault campaigns: a vault enclave seals its state \
          to an adversarial block store which the campaign corrupts, rolls \
          back, reorders, truncates and wipes — across OS crashes and full \
          reboots — judging every unseal against the sealed-storage theorem. \
          Trials run on a domain pool (-j) with byte-identical reports at any \
          worker count. Exits 0 on a clean campaign, 4 on a violation (silent \
          corruption, false unseal, undetected rollback), 1 when an armed \
          --bug survives, 2 on setup errors.")
    Term.(
      const run $ verbosity $ trials $ ops $ vseed $ vpages $ classes $ bug
      $ replay $ save $ jobs_arg $ progress_arg $ progress_out_arg)

(* -- smp ----------------------------------------------------------------- *)

let smp_cmd =
  let module Smpdrive = Komodo_fault.Smpdrive in
  let module Smp = Komodo_os.Smp in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"N" ~doc:"Multi-core trials to run.")
  in
  let ops =
    Arg.(
      value & opt int 8
      & info [ "ops" ] ~docv:"N" ~doc:"Monitor calls per CPU per trial.")
  in
  let sseed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.") in
  let cpus =
    Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N" ~doc:"Cores racing in each trial.")
  in
  let spages =
    Arg.(value & opt int 32 & info [ "pages" ] ~docv:"N" ~doc:"Secure pages per trial world.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"NAME"
          ~doc:
            "Re-enable a deliberate lock-discipline bug in the stepper \
             (self-test; expects the campaign to catch it). One of: \
             missing_page_lock, lock_inversion.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Also fire the fault injector at lock acquire/release boundaries \
             (insecure-memory writes, interrupts, RNG glitches); the campaign \
             must stay clean.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run the smp campaign trace in $(docv) instead of generating trials.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"On violation, save the shrunk campaign as a replayable JSONL trace.")
  in
  let run level trials ops seed cpus pages bug faults replay save jobs progress
      progress_out =
    setup_logs level;
    match replay with
    | Some path -> (
        let ic = open_in path in
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        let lines = read [] in
        close_in ic;
        match Smpdrive.trace_parse lines with
        | Error e ->
            Printf.eprintf "komodo smp: cannot replay %s: %s\n" path e;
            2
        | Ok (h, sops) -> (
            match Smpdrive.replay h sops with
            | Ok st ->
                Printf.printf
                  "replayed %d calls on %d cpus (%d contended, %d spins): no \
                   violation\n"
                  st.Smpdrive.calls h.Smpdrive.h_cpus st.Smpdrive.contended
                  st.Smpdrive.spins;
                0
            | Error v ->
                Printf.printf "replayed campaign VIOLATION:\n%s\n"
                  (Smpdrive.pp_violation v);
                4))
    | None -> (
        let bug =
          match bug with
          | None -> None
          | Some name -> (
              match Smp.bug_of_string name with
              | Some b -> Some b
              | None ->
                  Printf.eprintf "komodo smp: unknown bug %S\n" name;
                  exit 2)
        in
        let prog, prog_close =
          progress_setup ~progress ~progress_out ~label:"smp" ~total:trials
        in
        let o =
          Komodo_campaign.Campaign.smp ~npages:pages ~cpus ~ops_per_cpu:ops
            ?progress:prog ?bug ~faults ~jobs ~trials ~seed ()
        in
        prog_close ();
        Printf.printf "%d trials, %d racing calls on %d cpus\n"
          o.Smpdrive.trials_run o.Smpdrive.total_calls cpus;
        Printf.printf
          "lock cycles %d: %d contended + %d uncontended acquisitions, %d \
           spins, %d footprint retries, %d lock-boundary faults\n"
          o.Smpdrive.total_lock_cycles o.Smpdrive.total_contended
          o.Smpdrive.total_uncontended o.Smpdrive.total_spins
          o.Smpdrive.total_retries o.Smpdrive.total_injections;
        match o.Smpdrive.violation with
        | None ->
            if bug <> None then (
              print_endline "BUG SURVIVED: the smp campaign failed its self-test";
              1)
            else (
              print_endline
                "no violation: every interleaving linearisable, no deadlock, \
                 invariants held";
              0)
        | Some (tseed, shrunk, v) ->
            Printf.printf "VIOLATION (trial seed %d), shrunk to %d calls:\n"
              tseed (List.length shrunk);
            List.iteri
              (fun i s -> Printf.printf "  %2d. %s\n" i (Smpdrive.pp_sop s))
              shrunk;
            print_endline (Smpdrive.pp_violation v);
            (match save with
            | None -> ()
            | Some file ->
                let oc = open_out file in
                List.iter
                  (fun l -> output_string oc (l ^ "\n"))
                  (Smpdrive.trace_lines ~seed:tseed ~npages:pages ~cpus ~bug
                     shrunk);
                close_out oc;
                Printf.printf "shrunk campaign saved to %s\n" file);
            if bug <> None then (
              print_endline "bug caught: smp-campaign self-test passed";
              0)
            else 4)
  in
  Cmd.v
    (Cmd.info "smp"
       ~doc:
         "Race seeded per-CPU monitor-call streams through the multi-core \
          stepper (per-CPU register banks, fine-grained per-page locks, \
          seeded interleaving scheduler) and judge every run with three \
          oracles: deadlock freedom, PageDB invariants, and \
          linearisability against the sequential abstract spec. Trials run \
          on a domain pool (-j) with byte-identical reports at any worker \
          count. Exits 0 on a clean campaign (or a caught --bug), 4 on a \
          violation with a shrunk minimal trace, 1 when an armed --bug \
          survives, 2 on setup errors.")
    Term.(
      const run $ verbosity $ trials $ ops $ sseed $ cpus $ spages $ bug
      $ faults $ replay $ save $ jobs_arg $ progress_arg $ progress_out_arg)

(* -- serve --------------------------------------------------------------- *)

let serve_cmd =
  let module Serve = Komodo_serve.Serve in
  let module Workload = Komodo_serve.Workload in
  let module Backpressure = Komodo_serve.Backpressure in
  let module Report = Komodo_serve.Report in
  let d = Serve.defaults in
  let sessions =
    Arg.(
      value & opt int d.Serve.sessions
      & info [ "sessions" ] ~docv:"N" ~doc:"Total client sessions to simulate.")
  in
  let sseed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")
  in
  let pool =
    Arg.(
      value & opt int d.Serve.slots
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Enclave pool slots per shard (clamped to the shard world's secure-page \
             budget; the clamp is reported).")
  in
  let recycle =
    Arg.(
      value & opt int d.Serve.recycle
      & info [ "recycle" ] ~docv:"N"
          ~doc:
            "Tear down and rebuild a slot's enclave every N sessions (the full \
             Create..Remove lifecycle, charged in model cycles); 0 never recycles.")
  in
  let queue =
    Arg.(
      value & opt int d.Serve.queue
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue capacity per shard; a full queue sheds arrivals.")
  in
  let deadline =
    Arg.(
      value & opt int 0
      & info [ "deadline" ] ~docv:"CYCLES"
          ~doc:
            "Shed queued sessions that waited more than $(docv) model cycles \
             (measured at dispatch); 0 disables the deadline.")
  in
  let arrival =
    Arg.(
      value
      & opt (enum [ ("poisson", Workload.Poisson); ("uniform", Workload.Uniform);
                    ("burst", Workload.Burst) ]) Workload.Poisson
      & info [ "arrival" ] ~docv:"DIST"
          ~doc:"Open-loop arrival process: $(b,poisson), $(b,uniform) or $(b,burst).")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("open", `Open); ("closed", `Closed) ]) `Open
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,open): arrivals ignore completions (open loop at --gap). \
             $(b,closed): --clients callers each reissue --think cycles after \
             their previous session completes.")
  in
  let clients =
    Arg.(
      value & opt int 64
      & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop client count.")
  in
  let think =
    Arg.(
      value & opt int 50_000
      & info [ "think" ] ~docv:"CYCLES" ~doc:"Closed-loop mean think time, model cycles.")
  in
  let gap =
    Arg.(
      value & opt int d.Serve.gap
      & info [ "gap" ] ~docv:"CYCLES"
          ~doc:"Open-loop mean inter-arrival gap in model cycles (the offered load).")
  in
  let shard_sessions =
    Arg.(
      value & opt int d.Serve.shard_sessions
      & info [ "shard-sessions" ] ~docv:"N"
          ~doc:
            "Sessions per shard. The shard count is a pure function of \
             --sessions and this value — never of -j — so reports are \
             byte-identical at any worker count.")
  in
  let everify =
    Arg.(
      value & opt int d.Serve.everify
      & info [ "enclave-verify" ] ~docv:"N"
          ~doc:
            "Route every Nth session's MAC through the in-enclave verifier \
             (Verify SVC) as well; 0 keeps verification host-side only.")
  in
  let spages =
    Arg.(
      value & opt int d.Serve.npages
      & info [ "pages" ] ~docv:"N" ~doc:"Secure pages per shard world.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as komodo-serve/1 JSON to $(docv).")
  in
  let run level sessions seed pool recycle queue deadline arrival mode clients
      think gap shard_sessions everify spages jobs progress progress_out json_out =
    setup_logs level;
    if sessions <= 0 || shard_sessions <= 0 || pool <= 0 || queue < 0
       || recycle < 0 || deadline < 0 || gap <= 0 || everify < 0
    then begin
      Printf.eprintf "komodo serve: counts must be positive (capacities non-negative)\n";
      exit 2
    end;
    if mode = `Closed && (clients <= 0 || think <= 0) then begin
      Printf.eprintf "komodo serve: closed loop needs positive --clients and --think\n";
      exit 2
    end;
    let cfg =
      {
        Serve.sessions;
        shard_sessions;
        slots = pool;
        recycle;
        queue;
        policy =
          (if deadline > 0 then Backpressure.Deadline deadline else Backpressure.Drop);
        mode =
          (match mode with
          | `Open -> Workload.Open arrival
          | `Closed -> Workload.Closed { clients; think });
        gap;
        everify;
        npages = spages;
      }
    in
    let nshards = Serve.shards ~sessions ~shard_sessions in
    let prog, prog_close =
      progress_setup ~progress ~progress_out ~label:"serve" ~total:nshards
    in
    let r =
      try Serve.run ?progress:prog ~jobs ~cfg ~seed ()
      with Failure m | Komodo_serve.Engine.Violation m ->
        prog_close ();
        Printf.eprintf "komodo serve: %s\n" m;
        exit 2
    in
    prog_close ();
    print_string (Komodo_serve.Report.render r);
    (match json_out with
    | Some path -> write_json_file path (Komodo_serve.Report.to_json r)
    | None -> ());
    if r.Report.verify_failures > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve attestation-as-a-service: multiplex up to millions of simulated \
          client sessions over recycled pools of notary/verifier enclaves, with \
          bounded admission queues and latency accounting in model cycles. \
          Sessions are sharded deterministically; the report is byte-identical \
          at any -j. Exits 0 on a clean run, 1 if any session's attestation \
          failed verification, 2 on setup errors.")
    Term.(
      const run $ verbosity $ sessions $ sseed $ pool $ recycle $ queue $ deadline
      $ arrival $ mode $ clients $ think $ gap $ shard_sessions $ everify $ spages
      $ jobs_arg $ progress_arg $ progress_out_arg $ json_out)

(* -- verify ------------------------------------------------------------- *)

let verify_cmd =
  let seeds = Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Seed count.") in
  let ops = Arg.(value & opt int 60 & info [ "ops" ] ~docv:"N" ~doc:"Adversarial ops per seed.") in
  let run level seeds ops =
    setup_logs level;
    let bad = ref 0 in
    for seed = 1 to seeds do
      (match Komodo_sec.Nonint.run_confidentiality ~seed ~nops:ops with
      | None -> Printf.printf "seed %3d: confidentiality preserved (%d ops)\n" seed ops
      | Some f ->
          incr bad;
          Format.printf "seed %3d: CONFIDENTIALITY VIOLATED: %a@." seed
            Komodo_sec.Nonint.pp_failure f);
      match Komodo_sec.Nonint.run_integrity ~seed ~nops:ops with
      | None -> Printf.printf "seed %3d: integrity preserved (%d ops)\n" seed ops
      | Some f ->
          incr bad;
          Format.printf "seed %3d: INTEGRITY VIOLATED: %a@." seed Komodo_sec.Nonint.pp_failure f
    done;
    List.iter
      (fun (name, attack) ->
        match attack () with
        | Komodo_sec.Attacks.Defended -> Printf.printf "attack defended: %s\n" name
        | Komodo_sec.Attacks.Leaked m ->
            incr bad;
            Printf.printf "ATTACK LEAKED: %s (%s)\n" name m)
      Komodo_sec.Attacks.all_komodo;
    if !bad = 0 then (print_endline "all security checks passed"; 0) else 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run the noninterference harness and attack library")
    Term.(const run $ verbosity $ seeds $ ops)


(* -- profile ------------------------------------------------------------- *)

let profile_cmd =
  let trials =
    Arg.(value & opt int 10 & info [ "trials" ] ~docv:"N" ~doc:"Trials in the profiled workload.")
  in
  let ops =
    Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N" ~doc:"Adversarial ops per trial.")
  in
  let pseed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed (the whole profile is a function of it).")
  in
  let ppages =
    Arg.(value & opt int 40 & info [ "pages" ] ~docv:"N" ~doc:"Secure pages per trial world.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("check", `Check); ("fault", `Fault) ]) `Check
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Workload to profile: the differential $(b,check) campaign or the $(b,fault) campaign.")
  in
  let folded =
    Arg.(
      value
      & opt string "komodo-profile.folded"
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write folded stacks (one 'path;to;span cycles' line each) to \
             $(docv) — feed to flamegraph.pl or speedscope.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the komodo-profile/1 JSON profile to $(docv).")
  in
  let wall =
    Arg.(
      value & flag
      & info [ "wall" ]
          ~doc:
            "Attach a wallclock to the recorder. Wallclock attribution appears \
             only in the --json output; stdout stays cycles-only and \
             deterministic.")
  in
  let run level trials ops seed pages mode folded json_out wall jobs =
    setup_logs level;
    let clock = if wall then Some Unix.gettimeofday else None in
    let label, spans =
      match mode with
      | `Check ->
          let o =
            Campaign.check ~npages:pages ~ops_per_trial:ops ~profile:true ?clock
              ~jobs ~trials ~seed ()
          in
          ("check", o.Komodo_spec.Diff.spans)
      | `Fault ->
          let o =
            Campaign.fault ~npages:pages ~ops_per_trial:ops ~profile:true ?clock
              ~jobs ~faults:Drive.all_classes ~trials ~seed ()
          in
          ("fault", o.Drive.spans)
    in
    let agg = Span.aggregate spans in
    let total_cycles =
      List.fold_left (fun a n -> a + n.Span.sp_cycles) 0 spans
    in
    Printf.printf "profile: %s campaign, seed %d, %d trials, %d spans, %d modelled cycles\n\n"
      label seed trials (Span.total_spans spans) total_cycles;
    print_string (Span.render_tree agg);
    print_newline ();
    Printf.printf "%-28s %8s %10s %10s %10s %10s\n" "span" "count" "p50" "p90"
      "p99" "max";
    List.iter
      (fun (name, h) ->
        Printf.printf "%-28s %8d %10d %10d %10d %10d\n" name (Hist.count h)
          (Hist.p50 h) (Hist.p90 h) (Hist.p99 h) (Hist.max_value h))
      (Span.durations spans);
    (match
       let oc = open_out folded in
       output_string oc (Span.to_folded spans);
       close_out oc
     with
    | () -> Printf.eprintf "[wrote %s]\n%!" folded
    | exception Sys_error e ->
        Printf.eprintf "komodo profile: cannot write %s: %s\n" folded e;
        exit 2);
    (match json_out with
    | Some path ->
        write_json_file path (profile_json ~label ~seed ~trials spans)
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a fixed-seed campaign with the hierarchical span recorder: \
          print the aggregated span tree (modelled cycles, deterministic at \
          any -j) and per-span quantiles, and write flamegraph folded stacks. \
          Wallclock attribution is opt-in (--wall) and confined to the JSON \
          output.")
    Term.(
      const run $ verbosity $ trials $ ops $ pseed $ ppages $ mode $ folded
      $ json_out $ wall $ jobs_arg)

(* -- bench --compare ------------------------------------------------------

   Regression detector over the BENCH_*.json mirrors the bench
   executable emits. Wallclock-derived metrics (seconds, rates,
   speedups, calibrated floors) vary run to run and are skipped; every
   other metric is modelled-cycle deterministic and must match the
   baseline exactly (or within --tolerance). Exit 0 clean, 1 on
   regression, 2 on schema/shape/IO problems. *)

let bench_schema = "komodo-bench/1"

let wallclock_patterns =
  [
    "second"; "speedup"; "floor"; "(s)"; "/sec"; "/s"; "cores"; "jobs measured";
    "elapsed"; "calib"; "wall";
  ]

let contains_ci hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let is_wallclock_label s =
  List.exists (fun pat -> contains_ci s pat) wallclock_patterns

(* "181.6", "1.00x", "24.5%" -> numbers; "12/12" -> None (string compare). *)
let cell_number s =
  let s = String.trim s in
  let n = String.length s in
  let s = if n > 0 && (s.[n - 1] = 'x' || s.[n - 1] = '%') then String.sub s 0 (n - 1) else s in
  float_of_string_opt s

let within_tolerance ~tolerance b f =
  Float.abs (f -. b) <= (tolerance *. Float.abs b) +. 1e-9

let strings_of_json j =
  Option.map (List.filter_map Json.to_string_opt) (Json.to_list_opt j)

let table_of_json j =
  match
    ( Option.bind (Json.member "columns" j) strings_of_json,
      Option.bind (Json.member "rows" j) Json.to_list_opt )
  with
  | Some cols, Some rows ->
      let rows = List.filter_map strings_of_json rows in
      Some (cols, rows)
  | _ -> None

let compare_tables ~tolerance ~file (bcols, brows) (fcols, frows) =
  if bcols <> fcols then
    ([ Printf.sprintf "%s: column set changed" file ], [])
  else begin
    let regs = ref [] in
    let reg fmt = Printf.ksprintf (fun m -> regs := m :: !regs) fmt in
    let label = function [] -> "" | l :: _ -> l in
    List.iter
      (fun brow ->
        let lbl = label brow in
        match List.find_opt (fun fr -> label fr = lbl) frows with
        | None -> reg "%s: row %S missing from fresh results" file lbl
        | Some frow ->
            List.iteri
              (fun i col ->
                if i > 0 && not (is_wallclock_label col)
                   && not (is_wallclock_label lbl)
                then begin
                  let b = try List.nth brow i with _ -> "" in
                  let f = try List.nth frow i with _ -> "" in
                  if b <> f then
                    match (cell_number b, cell_number f) with
                    | Some bn, Some fn when within_tolerance ~tolerance bn fn -> ()
                    | _ -> reg "%s: %s / %s: %S -> %S" file lbl col b f
                end)
              bcols)
      brows;
    ([], List.rev !regs)
  end

let rec flatten_json prefix j acc =
  match j with
  | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          flatten_json (if prefix = "" then k else prefix ^ "." ^ k) v acc)
        acc kvs
  | Json.List l ->
      snd
        (List.fold_left
           (fun (i, acc) v ->
             (i + 1, flatten_json (Printf.sprintf "%s[%d]" prefix i) v acc))
           (0, acc) l)
  | scalar -> (prefix, scalar) :: acc

let compare_generic ~tolerance ~file base fresh =
  let bkv = List.rev (flatten_json "" base []) in
  let fkv = List.rev (flatten_json "" fresh []) in
  let regs = ref [] in
  let reg fmt = Printf.ksprintf (fun m -> regs := m :: !regs) fmt in
  let scalar_str = function
    | Json.Int n -> string_of_int n
    | Json.Float f -> Printf.sprintf "%g" f
    | Json.Str s -> Printf.sprintf "%S" s
    | Json.Bool b -> string_of_bool b
    | _ -> "null"
  in
  List.iter
    (fun (path, bv) ->
      if path <> "schema" && not (is_wallclock_label path) then
        match List.assoc_opt path fkv with
        | None -> reg "%s: %s missing from fresh results" file path
        | Some fv ->
            if not (Json.equal bv fv) then begin
              let num = function
                | Json.Int n -> Some (float_of_int n)
                | Json.Float f -> Some f
                | _ -> None
              in
              match (num bv, num fv) with
              | Some bn, Some fn when within_tolerance ~tolerance bn fn -> ()
              | _ ->
                  reg "%s: %s: %s -> %s" file path (scalar_str bv)
                    (scalar_str fv)
            end)
    bkv;
  ([], List.rev !regs)

let load_bench_json path =
  match
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> (
      match Json.parse s with
      | Error e -> Error e
      | Ok j -> (
          match Json.member "schema" j with
          | Some (Json.Str v) when v = bench_schema -> Ok j
          | Some (Json.Str v) ->
              Error (Printf.sprintf "schema %S, expected %S" v bench_schema)
          | _ -> Error (Printf.sprintf "missing schema field (expected %S)" bench_schema)))

let compare_file ~tolerance ~fresh_dir ~baseline_dir name =
  match load_bench_json (Filename.concat baseline_dir name) with
  | Error e -> ([ Printf.sprintf "%s: baseline: %s" name e ], [])
  | Ok base -> (
      match load_bench_json (Filename.concat fresh_dir name) with
      | Error e -> ([ Printf.sprintf "%s: fresh: %s" name e ], [])
      | Ok fresh -> (
          match (table_of_json base, table_of_json fresh) with
          | Some bt, Some ft -> compare_tables ~tolerance ~file:name bt ft
          | None, None -> compare_generic ~tolerance ~file:name base fresh
          | _ -> ([ name ^ ": table/non-table shape changed" ], [])))

let bench_cmd =
  let compare_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "compare" ] ~docv:"DIR"
          ~doc:"Baseline directory of committed BENCH_*.json files (e.g. bench/baseline).")
  in
  let fresh_dir =
    Arg.(
      value & opt dir "."
      & info [ "fresh" ] ~docv:"DIR"
          ~doc:"Directory holding freshly generated BENCH_*.json files (default: the working directory).")
  in
  let files =
    Arg.(
      value & opt_all string []
      & info [ "file" ] ~docv:"NAME"
          ~doc:"Compare only this file (repeatable); 'throughput' expands to BENCH_throughput.json.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.0
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Relative tolerance for numeric metrics (default 0: exact). \
             Wallclock-derived metrics are always skipped.")
  in
  let run level compare_dir fresh_dir files tolerance =
    setup_logs level;
    match compare_dir with
    | None ->
        Printf.eprintf
          "komodo bench: nothing to do — pass --compare DIR (the benchmarks \
           themselves run via the bench executable: dune exec bench/main.exe)\n";
        2
    | Some baseline_dir ->
        let names =
          match files with
          | [] ->
              Sys.readdir baseline_dir |> Array.to_list
              |> List.filter (fun f ->
                     String.length f > 6
                     && String.sub f 0 6 = "BENCH_"
                     && Filename.check_suffix f ".json")
              |> List.sort compare
          | fs ->
              List.map
                (fun f ->
                  if String.length f > 6 && String.sub f 0 6 = "BENCH_" then f
                  else "BENCH_" ^ f ^ ".json")
                fs
        in
        if names = [] then begin
          Printf.eprintf "komodo bench: no BENCH_*.json files in %s\n" baseline_dir;
          2
        end
        else begin
          let errors = ref [] and regressions = ref [] in
          List.iter
            (fun name ->
              let errs, regs =
                compare_file ~tolerance ~fresh_dir ~baseline_dir name
              in
              errors := !errors @ errs;
              regressions := !regressions @ regs;
              if errs = [] && regs = [] then Printf.printf "%-36s ok\n" name)
            names;
          List.iter (fun m -> Printf.printf "ERROR: %s\n" m) !errors;
          List.iter (fun m -> Printf.printf "REGRESSION: %s\n" m) !regressions;
          if !errors <> [] then begin
            Printf.printf "bench compare: %d file error(s)\n" (List.length !errors);
            2
          end
          else if !regressions <> [] then begin
            Printf.printf "bench compare: %d regression(s) against %s\n"
              (List.length !regressions) baseline_dir;
            1
          end
          else begin
            Printf.printf "bench compare: %d file(s) match %s\n"
              (List.length names) baseline_dir;
            0
          end
        end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Compare freshly generated BENCH_*.json benchmark mirrors against a \
          committed baseline directory, skipping wallclock-derived metrics. \
          Exits 0 when clean, 1 on a metric regression, 2 on schema or IO \
          problems.")
    Term.(const run $ verbosity $ compare_dir $ fresh_dir $ files $ tolerance)

let () =
  let info =
    Cmd.info "komodo" ~version:"1.0.0"
      ~doc:"A software secure-enclave monitor (Komodo, SOSP 2017) — executable model"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; trace_cmd; asm_cmd; attest_cmd; check_cmd; explore_cmd;
            fault_cmd; vault_cmd; smp_cmd; serve_cmd; profile_cmd; bench_cmd;
            inspect_cmd; notary_cmd; verify_cmd ]))
