(* PageDB: allocation bookkeeping, refcounts, and the well-formedness
   checker (including that it detects each class of corruption). *)

module Word = Komodo_machine.Word
module Memory = Komodo_machine.Memory
module Ptable = Komodo_machine.Ptable
module Platform = Komodo_tz.Platform
module Pagedb = Komodo_core.Pagedb
module Measure = Komodo_core.Measure

let plat = Platform.make ~npages:16 ()

let addrspace ?(l1pt = 1) ?(refcount = 1) ?(state = Pagedb.Init)
    ?(measurement = Measure.initial) () =
  Pagedb.Addrspace { l1pt; refcount; state; measurement }

let final_measurement = Measure.finalise Measure.initial

let test_get_set () =
  let db = Pagedb.make ~npages:16 in
  Alcotest.(check bool) "initially free" true (Pagedb.is_free db 3);
  let db = Pagedb.set db 3 (Pagedb.SparePage { addrspace = 0 }) in
  Alcotest.(check bool) "now allocated" false (Pagedb.is_free db 3);
  let db = Pagedb.set db 3 Pagedb.Free in
  Alcotest.(check bool) "freed again" true (Pagedb.is_free db 3);
  Alcotest.check_raises "out of range" (Invalid_argument "Pagedb.get: page number out of range")
    (fun () -> ignore (Pagedb.get db 16))

let test_owner () =
  Alcotest.(check (option int)) "thread owner" (Some 5)
    (Pagedb.owner (Pagedb.Thread { addrspace = 5; entry_point = Word.zero; entered = false; ctx = None; dispatcher = None; fault_ctx = None }));
  Alcotest.(check (option reject)) "addrspace owns itself" None (Pagedb.owner (addrspace ()));
  Alcotest.(check (option reject)) "free unowned" None (Pagedb.owner Pagedb.Free)

let test_alloc_release_refcount () =
  let db = Pagedb.make ~npages:16 in
  let db = Pagedb.set db 0 (addrspace ~refcount:0 ()) in
  let db = Pagedb.alloc db 2 (Pagedb.DataPage { addrspace = 0 }) in
  let db = Pagedb.alloc db 3 (Pagedb.SparePage { addrspace = 0 }) in
  (match Pagedb.get db 0 with
  | Pagedb.Addrspace a -> Alcotest.(check int) "refcount bumped" 2 a.Pagedb.refcount
  | _ -> Alcotest.fail "addrspace vanished");
  Alcotest.(check int) "owned count" 2 (Pagedb.count_owned db 0);
  let db = Pagedb.release db 2 in
  (match Pagedb.get db 0 with
  | Pagedb.Addrspace a -> Alcotest.(check int) "refcount dropped" 1 a.Pagedb.refcount
  | _ -> Alcotest.fail "addrspace vanished");
  Alcotest.(check bool) "page freed" true (Pagedb.is_free db 2)

let test_free_count () =
  let db = Pagedb.make ~npages:16 in
  Alcotest.(check int) "all free" 16 (Pagedb.free_count db);
  let db = Pagedb.set db 0 (addrspace ~refcount:0 ()) in
  Alcotest.(check int) "one allocated" 15 (Pagedb.free_count db)

(* -- Well-formedness ----------------------------------------------------- *)

(* A minimal consistent world: addrspace at 0, L1 table at 1 (empty). *)
let consistent_world () =
  let db = Pagedb.make ~npages:16 in
  let db = Pagedb.set db 0 (addrspace ()) in
  let db = Pagedb.set db 1 (Pagedb.L1PTable { addrspace = 0 }) in
  (db, Memory.empty)

let test_wf_accepts_consistent () =
  let db, mem = consistent_world () in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Pagedb.message) (Pagedb.check plat mem db))

let test_wf_detects_bad_l1pt () =
  let db = Pagedb.make ~npages:16 in
  let db = Pagedb.set db 0 (addrspace ~l1pt:2 ()) in
  let db = Pagedb.set db 2 (Pagedb.DataPage { addrspace = 0 }) in
  Alcotest.(check bool) "flagged" false (Pagedb.wf plat Memory.empty db)

let test_wf_detects_refcount_drift () =
  let db, mem = consistent_world () in
  let db = Pagedb.set db 2 (Pagedb.DataPage { addrspace = 0 }) in
  (* refcount still 1, but the space owns 2 pages now *)
  Alcotest.(check bool) "flagged" false (Pagedb.wf plat mem db)

let test_wf_detects_orphan () =
  let db = Pagedb.make ~npages:16 in
  let db = Pagedb.set db 3 (Pagedb.SparePage { addrspace = 9 }) in
  Alcotest.(check bool) "flagged" false (Pagedb.wf plat Memory.empty db)

let test_wf_detects_entered_without_ctx () =
  let db, mem = consistent_world () in
  let db =
    Pagedb.bump_refcount
      (Pagedb.set db 2
         (Pagedb.Thread { addrspace = 0; entry_point = Word.zero; entered = true; ctx = None; dispatcher = None; fault_ctx = None }))
      0 1
  in
  Alcotest.(check bool) "flagged" false (Pagedb.wf plat mem db)

let test_wf_detects_unfinalised_with_digest () =
  let db = Pagedb.make ~npages:16 in
  let db = Pagedb.set db 0 (addrspace ~measurement:final_measurement ()) in
  let db = Pagedb.set db 1 (Pagedb.L1PTable { addrspace = 0 }) in
  Alcotest.(check bool) "flagged" false (Pagedb.wf plat Memory.empty db)

let test_wf_detects_cross_enclave_leaf () =
  (* Build a page table whose leaf points at a data page of another
     enclave — exactly the double-mapping the monitor must prevent. *)
  let db = Pagedb.make ~npages:16 in
  let db = Pagedb.set db 0 (addrspace ~l1pt:1 ~refcount:3 ()) in
  let db = Pagedb.set db 1 (Pagedb.L1PTable { addrspace = 0 }) in
  let db = Pagedb.set db 2 (Pagedb.L2PTable { addrspace = 0 }) in
  let db = Pagedb.set db 3 (Pagedb.DataPage { addrspace = 0 }) in
  let db = Pagedb.set db 4 (addrspace ~l1pt:5 ~refcount:2 ()) in
  let db = Pagedb.set db 5 (Pagedb.L1PTable { addrspace = 4 }) in
  let db = Pagedb.set db 6 (Pagedb.DataPage { addrspace = 4 }) in
  let l1_base = Platform.page_base plat 1 in
  let l2_base = Platform.page_base plat 2 in
  let mem = Memory.store Memory.empty l1_base (Ptable.make_l1e ~l2pt_base:l2_base) in
  (* Leaf maps page 6 (other enclave) instead of page 3. *)
  let mem =
    Memory.store mem l2_base
      (Ptable.make_l2e ~base:(Platform.page_base plat 6) ~ns:false Ptable.rw)
  in
  Alcotest.(check bool) "flagged" false (Pagedb.wf plat mem db);
  (* The same world with the leaf fixed is accepted. *)
  let mem_ok =
    Memory.store mem l2_base
      (Ptable.make_l2e ~base:(Platform.page_base plat 3) ~ns:false Ptable.rw)
  in
  Alcotest.(check bool) "fixed world accepted" true (Pagedb.wf plat mem_ok db)

let test_wf_detects_insecure_leaf_on_protected () =
  let db = Pagedb.make ~npages:16 in
  let db = Pagedb.set db 0 (addrspace ~l1pt:1 ~refcount:2 ()) in
  let db = Pagedb.set db 1 (Pagedb.L1PTable { addrspace = 0 }) in
  let db = Pagedb.set db 2 (Pagedb.L2PTable { addrspace = 0 }) in
  let l1_base = Platform.page_base plat 1 in
  let l2_base = Platform.page_base plat 2 in
  let mem = Memory.store Memory.empty l1_base (Ptable.make_l1e ~l2pt_base:l2_base) in
  (* NS leaf pointing into the monitor image. *)
  let mem =
    Memory.store mem l2_base
      (Ptable.make_l2e ~base:Komodo_tz.Layout.monitor_image_base ~ns:true Ptable.rw)
  in
  Alcotest.(check bool) "flagged" false (Pagedb.wf plat mem db)

let test_entry_equality () =
  let t1 = Pagedb.Thread { addrspace = 0; entry_point = Word.zero; entered = false; ctx = None; dispatcher = None; fault_ctx = None } in
  let t2 = Pagedb.Thread { addrspace = 0; entry_point = Word.zero; entered = false; ctx = None; dispatcher = None; fault_ctx = None } in
  Alcotest.(check bool) "equal threads" true (Pagedb.equal_entry t1 t2);
  let t3 = Pagedb.Thread { addrspace = 0; entry_point = Word.one; entered = false; ctx = None; dispatcher = None; fault_ctx = None } in
  Alcotest.(check bool) "entry point distinguishes" false (Pagedb.equal_entry t1 t3);
  Alcotest.(check bool) "type distinguishes" false
    (Pagedb.equal_entry t1 (Pagedb.DataPage { addrspace = 0 }))

let suite =
  [
    Alcotest.test_case "get/set" `Quick test_get_set;
    Alcotest.test_case "ownership" `Quick test_owner;
    Alcotest.test_case "alloc/release refcounts" `Quick test_alloc_release_refcount;
    Alcotest.test_case "free count" `Quick test_free_count;
    Alcotest.test_case "wf accepts consistent state" `Quick test_wf_accepts_consistent;
    Alcotest.test_case "wf: bad l1pt" `Quick test_wf_detects_bad_l1pt;
    Alcotest.test_case "wf: refcount drift" `Quick test_wf_detects_refcount_drift;
    Alcotest.test_case "wf: orphan page" `Quick test_wf_detects_orphan;
    Alcotest.test_case "wf: entered thread without ctx" `Quick test_wf_detects_entered_without_ctx;
    Alcotest.test_case "wf: premature digest" `Quick test_wf_detects_unfinalised_with_digest;
    Alcotest.test_case "wf: cross-enclave leaf" `Quick test_wf_detects_cross_enclave_leaf;
    Alcotest.test_case "wf: insecure leaf on protected memory" `Quick test_wf_detects_insecure_leaf_on_protected;
    Alcotest.test_case "entry equality" `Quick test_entry_equality;
  ]
