test/test_pagedb.ml: Alcotest Komodo_core Komodo_machine Komodo_tz List
