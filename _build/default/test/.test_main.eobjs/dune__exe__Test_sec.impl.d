test/test_sec.ml: Alcotest Komodo_core Komodo_machine Komodo_os Komodo_sec List QCheck QCheck_alcotest String
