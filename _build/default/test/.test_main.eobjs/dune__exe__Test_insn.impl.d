test/test_insn.ml: Alcotest Array Komodo_machine List Printf QCheck QCheck_alcotest
