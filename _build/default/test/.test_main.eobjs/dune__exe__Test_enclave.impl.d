test/test_enclave.ml: Alcotest Image Komodo_core Komodo_machine Komodo_user List Loader Mapping Os String Testlib Uprog
