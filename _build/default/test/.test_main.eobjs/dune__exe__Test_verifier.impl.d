test/test_verifier.ml: Alcotest Image Komodo_core Komodo_crypto Komodo_machine Komodo_user List Loader Mapping Os String Testlib Uprog
