test/test_uexec.ml: Alcotest Komodo_core Komodo_machine List Monitor Os Printf Progs QCheck QCheck_alcotest String Testlib
