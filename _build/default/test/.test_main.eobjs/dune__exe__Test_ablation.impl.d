test/test_ablation.ml: Alcotest Komodo_core Komodo_machine Komodo_user List Loader Os Printf QCheck QCheck_alcotest Testlib
