test/test_kasm.ml: Alcotest Gen Komodo_core Komodo_machine Komodo_user List Loader Os QCheck QCheck_alcotest String Testlib
