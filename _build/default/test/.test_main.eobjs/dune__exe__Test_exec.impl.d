test/test_exec.ml: Alcotest Komodo_machine List Printf QCheck QCheck_alcotest
