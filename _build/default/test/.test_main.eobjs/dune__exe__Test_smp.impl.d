test/test_smp.ml: Alcotest Komodo_core Komodo_machine Komodo_os List Os Printf QCheck QCheck_alcotest Testlib
