test/test_sgx.ml: Alcotest Komodo_machine Komodo_sec Komodo_sgx List Option String
