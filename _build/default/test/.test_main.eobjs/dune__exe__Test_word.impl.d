test/test_word.ml: Alcotest Komodo_machine List QCheck QCheck_alcotest
