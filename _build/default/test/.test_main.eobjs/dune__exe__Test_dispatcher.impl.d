test/test_dispatcher.ml: Alcotest Image Komodo_core Komodo_machine Komodo_user List Loader Mapping Os Printf String Testlib Uprog
