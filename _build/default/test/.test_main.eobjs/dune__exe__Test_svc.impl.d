test/test_svc.ml: Alcotest Komodo_core Komodo_crypto Komodo_machine Komodo_user List Loader Os String Testlib
