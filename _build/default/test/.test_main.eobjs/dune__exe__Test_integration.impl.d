test/test_integration.ml: Alcotest Image Komodo_core Komodo_crypto Komodo_machine Komodo_os Komodo_user List Loader Mapping Os String Testlib Uprog
