test/test_crypto.ml: Alcotest Char Gen Komodo_crypto Komodo_machine List QCheck QCheck_alcotest String
