test/test_tz.ml: Alcotest Komodo_machine Komodo_tz List Option String
