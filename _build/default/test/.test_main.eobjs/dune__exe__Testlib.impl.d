test/testlib.ml: Alcotest Format Komodo_core Komodo_machine Komodo_os Komodo_user List
