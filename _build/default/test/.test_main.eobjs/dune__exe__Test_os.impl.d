test/test_os.ml: Alcotest Format Image Komodo_core Komodo_crypto Komodo_machine Komodo_os List Loader Logs Mapping Os Printf Progs QCheck QCheck_alcotest String Testlib Uprog
