test/test_measure.ml: Alcotest Komodo_core Komodo_crypto Komodo_machine List QCheck QCheck_alcotest String
