test/test_smc.ml: Alcotest Komodo_core Komodo_machine Komodo_tz List Os QCheck QCheck_alcotest State String Testlib
