test/test_machine.ml: Alcotest Komodo_machine List
