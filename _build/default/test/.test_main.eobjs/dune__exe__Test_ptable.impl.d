test/test_ptable.ml: Alcotest Komodo_machine List Option QCheck QCheck_alcotest
