(* Tests for registers, status registers, modes, memory and the TLB. *)

module Word = Komodo_machine.Word
module Mode = Komodo_machine.Mode
module Psr = Komodo_machine.Psr
module Regs = Komodo_machine.Regs
module Memory = Komodo_machine.Memory
module Tlb = Komodo_machine.Tlb
module State = Komodo_machine.State
module Armexn = Komodo_machine.Armexn

let w = Word.of_int

(* -- Modes -------------------------------------------------------------- *)

let test_mode_encoding () =
  List.iter
    (fun m ->
      match Mode.decode (Mode.encode m) with
      | Some m' -> Alcotest.(check bool) (Mode.show m) true (Mode.equal m m')
      | None -> Alcotest.fail ("mode does not roundtrip: " ^ Mode.show m))
    Mode.all;
  Alcotest.(check (option reject)) "bad encoding rejected" None (Mode.decode 0b00000)

let test_mode_privilege () =
  Alcotest.(check bool) "user unprivileged" false (Mode.is_privileged Mode.User);
  List.iter
    (fun m ->
      if not (Mode.equal m Mode.User) then
        Alcotest.(check bool) (Mode.show m) true (Mode.is_privileged m))
    Mode.all;
  Alcotest.(check bool) "user has no SPSR" false (Mode.has_spsr Mode.User);
  Alcotest.(check bool) "monitor only in secure world" false
    (Mode.legal_in_world Mode.Monitor Mode.Normal)

(* -- PSR ---------------------------------------------------------------- *)

let test_psr_roundtrip () =
  List.iter
    (fun m ->
      let p = Psr.make m ~n:true ~c:true ~irq_masked:false in
      match Psr.decode (Psr.encode p) with
      | Some p' -> Alcotest.(check bool) (Mode.show m) true (Psr.equal p p')
      | None -> Alcotest.fail "PSR does not roundtrip")
    Mode.all

let test_psr_flags () =
  let p = Psr.reset in
  let p = Psr.set_flags p ~result:Word.zero ~carry:true ~overflow:false in
  Alcotest.(check bool) "zero flag" true p.Psr.z;
  Alcotest.(check bool) "carry" true p.Psr.c;
  let p = Psr.set_flags p ~result:(w 0x8000_0000) ~carry:false ~overflow:true in
  Alcotest.(check bool) "negative flag" true p.Psr.n;
  Alcotest.(check bool) "overflow" true p.Psr.v;
  Alcotest.(check bool) "zero cleared" false p.Psr.z

let test_psr_user_entry () =
  Alcotest.(check bool) "user mode" true (Mode.equal Psr.user_entry.Psr.mode Mode.User);
  Alcotest.(check bool) "interrupts enabled" false Psr.user_entry.Psr.irq_masked

(* -- Register banking --------------------------------------------------- *)

let test_gp_shared () =
  let r = Regs.write Regs.zeroed ~mode:Mode.User (Regs.R 5) (w 42) in
  Alcotest.(check int) "r5 visible from monitor mode" 42
    (Word.to_int (Regs.read r ~mode:Mode.Monitor (Regs.R 5)))

let test_sp_banked () =
  let r = Regs.write Regs.zeroed ~mode:Mode.User Regs.SP (w 0x1000) in
  let r = Regs.write r ~mode:Mode.Monitor Regs.SP (w 0x2000) in
  Alcotest.(check int) "user SP" 0x1000 (Word.to_int (Regs.read r ~mode:Mode.User Regs.SP));
  Alcotest.(check int) "monitor SP" 0x2000 (Word.to_int (Regs.read r ~mode:Mode.Monitor Regs.SP));
  Alcotest.(check int) "svc SP untouched" 0
    (Word.to_int (Regs.read r ~mode:Mode.Supervisor Regs.SP))

let test_sreg_access () =
  let r = Regs.write_sreg Regs.zeroed (Regs.LR_of Mode.Irq) (w 0xAA) in
  Alcotest.(check int) "LR_irq via sreg" 0xAA
    (Word.to_int (Regs.read r ~mode:Mode.Irq Regs.LR));
  Alcotest.check_raises "user SPSR rejected"
    (Invalid_argument "Regs.read_sreg: user mode has no SPSR") (fun () ->
      ignore (Regs.read_sreg r (Regs.SPSR_of Mode.User)))

let test_user_visible () =
  let values = List.init 15 (fun i -> w (i * 3)) in
  let r = Regs.set_user_visible Regs.zeroed values in
  Alcotest.(check (list int)) "user-visible roundtrip"
    (List.map Word.to_int values)
    (List.map Word.to_int (Regs.user_visible r));
  let r = Regs.clear_user_visible r in
  Alcotest.(check bool) "cleared" true
    (List.for_all (fun v -> Word.equal v Word.zero) (Regs.user_visible r))

let test_bad_register () =
  Alcotest.check_raises "r13 rejected"
    (Invalid_argument "Regs: general register out of range") (fun () ->
      ignore (Regs.read Regs.zeroed ~mode:Mode.User (Regs.R 13)))

(* -- Memory ------------------------------------------------------------- *)

let test_memory_basic () =
  let m = Memory.store Memory.empty (w 0x100) (w 7) in
  Alcotest.(check int) "load back" 7 (Word.to_int (Memory.load m (w 0x100)));
  Alcotest.(check int) "unmapped reads zero" 0 (Word.to_int (Memory.load m (w 0x200)))

let test_memory_alignment () =
  Alcotest.check_raises "unaligned load" (Memory.Unaligned (w 0x101)) (fun () ->
      ignore (Memory.load Memory.empty (w 0x101)))

let test_memory_zero_is_default () =
  let m = Memory.store Memory.empty (w 0x100) (w 7) in
  let m = Memory.store m (w 0x100) Word.zero in
  Alcotest.(check bool) "storing zero = erasing" true (Memory.equal m Memory.empty)

let test_memory_ranges () =
  let m = Memory.store_range Memory.empty (w 0x100) [ w 1; w 2; w 3 ] in
  Alcotest.(check (list int)) "range roundtrip" [ 1; 2; 3 ]
    (List.map Word.to_int (Memory.load_range m (w 0x100) 3));
  let m = Memory.copy_range m ~src:(w 0x100) ~dst:(w 0x200) 3 in
  Alcotest.(check (list int)) "copy" [ 1; 2; 3 ]
    (List.map Word.to_int (Memory.load_range m (w 0x200) 3));
  let m = Memory.zero_range m (w 0x100) 3 in
  Alcotest.(check (list int)) "zeroed" [ 0; 0; 0 ]
    (List.map Word.to_int (Memory.load_range m (w 0x100) 3));
  Alcotest.(check bool) "equal_range after copy+zero" true
    (Memory.equal_range m m (w 0x200) 3)

let test_memory_bytes () =
  let m = Memory.of_bytes_be Memory.empty (w 0) "\x00\x00\x00\x2A\xDE\xAD\xBE\xEF" in
  Alcotest.(check int) "word 0" 42 (Word.to_int (Memory.load m (w 0)));
  Alcotest.(check int) "word 1" 0xDEADBEEF (Word.to_int (Memory.load m (w 4)));
  Alcotest.(check string) "to_bytes_be" "\x00\x00\x00\x2A\xDE\xAD\xBE\xEF"
    (Memory.to_bytes_be m (w 0) 2)

let test_memory_restrict () =
  let m = Memory.store (Memory.store Memory.empty (w 0x100) (w 1)) (w 0x200) (w 2) in
  let low = Memory.restrict m ~f:(fun a -> a < 0x180) in
  Alcotest.(check int) "kept" 1 (Word.to_int (Memory.load low (w 0x100)));
  Alcotest.(check int) "dropped" 0 (Word.to_int (Memory.load low (w 0x200)))

(* -- TLB ---------------------------------------------------------------- *)

let test_tlb () =
  let t = Tlb.initial in
  Alcotest.(check bool) "initially inconsistent" false (Tlb.is_consistent t);
  let t = Tlb.flush t in
  Alcotest.(check bool) "flush -> consistent" true (Tlb.is_consistent t);
  let t = Tlb.mark_inconsistent t in
  Alcotest.(check bool) "PT store -> inconsistent" false (Tlb.is_consistent t)

(* -- Exceptions --------------------------------------------------------- *)

let test_exception_targets () =
  Alcotest.(check bool) "svc -> supervisor" true
    (Mode.equal (Armexn.target_mode Armexn.Svc) Mode.Supervisor);
  Alcotest.(check bool) "smc -> monitor" true
    (Mode.equal (Armexn.target_mode Armexn.Smc) Mode.Monitor);
  Alcotest.(check bool) "data abort -> abort" true
    (Mode.equal (Armexn.target_mode Armexn.Data_abort) Mode.Abort);
  Alcotest.(check bool) "fiq masks fiq" true (Armexn.masks_fiq Armexn.Fiq);
  Alcotest.(check bool) "irq does not mask fiq" false (Armexn.masks_fiq Armexn.Irq)

let test_take_exception () =
  let s = State.initial in
  let s = { s with State.cpsr = Psr.make Mode.User ~irq_masked:false ~fiq_masked:false } in
  let s' = State.take_exception s Armexn.Svc ~return_pc:(w 0x1234) in
  Alcotest.(check bool) "mode switched" true (Mode.equal (State.mode s') Mode.Supervisor);
  Alcotest.(check bool) "irq masked" true s'.State.cpsr.Psr.irq_masked;
  Alcotest.(check int) "pc banked in LR_svc" 0x1234
    (Word.to_int (State.read_reg s' Regs.LR));
  (* SPSR holds the pre-exception CPSR *)
  match Psr.decode (Regs.read_sreg s'.State.regs (Regs.SPSR_of Mode.Supervisor)) with
  | Some p -> Alcotest.(check bool) "SPSR mode = user" true (Mode.equal p.Psr.mode Mode.User)
  | None -> Alcotest.fail "SPSR undecodable"

let test_exception_return () =
  let s = State.initial in
  let s = { s with State.cpsr = Psr.make Mode.User ~irq_masked:false ~fiq_masked:false } in
  let s = State.take_exception s Armexn.Svc ~return_pc:(w 0x1234) in
  let s, pc = State.exception_return s in
  Alcotest.(check bool) "back in user mode" true (Mode.equal (State.mode s) Mode.User);
  Alcotest.(check int) "resumed pc" 0x1234 (Word.to_int pc);
  Alcotest.(check bool) "interrupts re-enabled" false s.State.cpsr.Psr.irq_masked

let test_smc_world_switch () =
  let s = { State.initial with State.world = Mode.Normal; scr_ns = true } in
  let s = { s with State.cpsr = Psr.make Mode.Supervisor } in
  let s = State.take_exception s Armexn.Smc ~return_pc:(w 0xCAFE) in
  Alcotest.(check bool) "secure world" true (Mode.equal_world s.State.world Mode.Secure);
  Alcotest.(check bool) "monitor mode" true (Mode.equal (State.mode s) Mode.Monitor);
  (* Returning with SCR.NS = 1 goes back to normal world. *)
  let s, _ = State.exception_return s in
  Alcotest.(check bool) "back to normal world" true
    (Mode.equal_world s.State.world Mode.Normal)

let test_monitor_return_secure () =
  (* With SCR.NS = 0, an exception return from monitor mode stays in the
     secure world — the enclave-entry path. *)
  let s = { State.initial with State.world = Mode.Normal; scr_ns = true } in
  let s = { s with State.cpsr = Psr.make Mode.Supervisor } in
  let s = State.take_exception s Armexn.Smc ~return_pc:Word.zero in
  let s = { s with State.scr_ns = false } in
  let s = State.write_sreg s (Regs.SPSR_of Mode.Monitor) (Psr.encode Psr.user_entry) in
  let s, _ = State.exception_return s in
  Alcotest.(check bool) "stays secure" true (Mode.equal_world s.State.world Mode.Secure);
  Alcotest.(check bool) "lands in user mode" true (Mode.equal (State.mode s) Mode.User)

let test_cycle_charging () =
  let s = State.charge 100 State.initial in
  Alcotest.(check int) "cycles accumulate" 100 s.State.cycles;
  let s = State.flush_tlb s in
  Alcotest.(check int) "flush charges" (100 + Komodo_machine.Cost.tlb_flush) s.State.cycles

let suite =
  [
    Alcotest.test_case "mode encoding roundtrip" `Quick test_mode_encoding;
    Alcotest.test_case "mode privilege" `Quick test_mode_privilege;
    Alcotest.test_case "psr roundtrip" `Quick test_psr_roundtrip;
    Alcotest.test_case "psr flags" `Quick test_psr_flags;
    Alcotest.test_case "psr user entry" `Quick test_psr_user_entry;
    Alcotest.test_case "gp registers shared" `Quick test_gp_shared;
    Alcotest.test_case "sp banked per mode" `Quick test_sp_banked;
    Alcotest.test_case "sreg access" `Quick test_sreg_access;
    Alcotest.test_case "user-visible registers" `Quick test_user_visible;
    Alcotest.test_case "bad register rejected" `Quick test_bad_register;
    Alcotest.test_case "memory load/store" `Quick test_memory_basic;
    Alcotest.test_case "memory alignment" `Quick test_memory_alignment;
    Alcotest.test_case "zero store erases" `Quick test_memory_zero_is_default;
    Alcotest.test_case "memory ranges" `Quick test_memory_ranges;
    Alcotest.test_case "memory byte encoding" `Quick test_memory_bytes;
    Alcotest.test_case "memory restrict" `Quick test_memory_restrict;
    Alcotest.test_case "tlb consistency" `Quick test_tlb;
    Alcotest.test_case "exception targets" `Quick test_exception_targets;
    Alcotest.test_case "take exception" `Quick test_take_exception;
    Alcotest.test_case "exception return" `Quick test_exception_return;
    Alcotest.test_case "smc world switch" `Quick test_smc_world_switch;
    Alcotest.test_case "monitor return to secure user" `Quick test_monitor_return_secure;
    Alcotest.test_case "cycle charging" `Quick test_cycle_charging;
  ]
