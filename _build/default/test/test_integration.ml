(* Cross-module integration: the loader against the monitor, enclave
   teardown and page reuse, measurement prediction, and the notary
   application end to end. *)

open Testlib
module Word = Komodo_machine.Word
module Errors = Komodo_core.Errors
module Pagedb = Komodo_core.Pagedb
module Monitor = Komodo_core.Monitor
module Alloc = Komodo_os.Alloc
module Notary = Komodo_user.Notary
module Sha256 = Komodo_crypto.Sha256
module Rsa = Komodo_crypto.Rsa
module Bignum = Komodo_crypto.Bignum
module Ptable = Komodo_machine.Ptable

let test_loader_produces_wf_enclave () =
  let os = boot () in
  let os, h = load_prog ~spares:2 ~shared:true os Komodo_user.Progs.add_args in
  check_wf "loaded enclave" os;
  Alcotest.(check int) "spares granted" 2 (List.length h.Loader.spares);
  match Pagedb.get os.Os.mon.Monitor.pagedb h.Loader.addrspace with
  | Pagedb.Addrspace a ->
      Alcotest.(check bool) "finalised" true
        (Pagedb.equal_addrspace_state a.Pagedb.state Pagedb.Final)
  | _ -> Alcotest.fail "addrspace missing"

let test_loader_measurement_prediction () =
  (* The OS-side expected_measurement must equal what the monitor
     computed — this is what lets a verifier trust a loaded enclave. *)
  let os = boot () in
  let os, h = load_prog os Komodo_user.Progs.sum_to_n in
  match Pagedb.get os.Os.mon.Monitor.pagedb h.Loader.addrspace with
  | Pagedb.Addrspace a -> (
      match Komodo_core.Measure.digest a.Pagedb.measurement with
      | Some d ->
          Alcotest.(check string) "prediction matches monitor"
            (Sha256.to_hex h.Loader.measurement) (Sha256.to_hex d)
      | None -> Alcotest.fail "no digest")
  | _ -> Alcotest.fail "addrspace missing"

let test_unload_returns_all_pages () =
  let os = boot () in
  let free0 = Alloc.available os.Os.alloc in
  let os, h = load_prog ~spares:1 ~shared:true os Komodo_user.Progs.add_args in
  Alcotest.(check bool) "pages consumed" true (Alloc.available os.Os.alloc < free0);
  let os =
    match Loader.unload os h with
    | Ok os -> os
    | Error e -> Alcotest.failf "unload: %a" Loader.pp_error e
  in
  Alcotest.(check int) "all pages back" free0 (Alloc.available os.Os.alloc);
  check_wf "clean state" os;
  Alcotest.(check int) "PageDB empty" 32 (Pagedb.free_count os.Os.mon.Monitor.pagedb)

let test_page_reuse_after_teardown () =
  (* Load, tear down, load a different enclave over the same pages, run
     it — no residue interferes. *)
  let os = boot () in
  let os, h1 = load_prog os Komodo_user.Progs.add_args in
  let os, e, v =
    Os.enter os ~thread:(List.hd h1.Loader.threads)
      ~args:(Word.of_int 1, Word.of_int 2, Word.of_int 3)
  in
  check_err "first enclave" Errors.Success e;
  Alcotest.(check int) "first result" 6 (Word.to_int v);
  let os =
    match Loader.unload os h1 with
    | Ok os -> os
    | Error e -> Alcotest.failf "unload: %a" Loader.pp_error e
  in
  let os, h2 = load_prog os Komodo_user.Progs.sum_to_n in
  let _, e, v =
    Os.enter os ~thread:(List.hd h2.Loader.threads)
      ~args:(Word.of_int 10, Word.zero, Word.zero)
  in
  check_err "second enclave on recycled pages" Errors.Success e;
  Alcotest.(check int) "second result" 55 (Word.to_int v)

let test_out_of_pages () =
  let os = Os.boot ~seed:1 ~npages:8 () in
  (* An 8-page system cannot host an image needing more. *)
  let big =
    let img = Image.empty ~name:"big" in
    let img =
      List.fold_left
        (fun img i ->
          Image.add_secure_page img
            ~mapping:(Mapping.make ~va:(Word.of_int ((i + 1) * 0x1000)) ~w:true ~x:false)
            ~contents:(String.make 4096 '\000'))
        img
        (List.init 10 (fun i -> i))
    in
    Image.add_thread img ~entry:(Word.of_int 0x1000)
  in
  match Loader.load os big with
  | Ok _ -> Alcotest.fail "load should have failed"
  | Error e -> check_err "out of pages" Errors.Pages_exhausted e.Loader.err

(* -- Notary end to end ---------------------------------------------------- *)

let notary_world () =
  let os = Os.boot ~seed:0x707A21 ~npages:64 () in
  let zero_page = String.make Ptable.page_size '\000' in
  let code = Uprog.to_page_images (Uprog.native_words ~id:Notary.native_id) in
  let img = Image.empty ~name:"notary" in
  let img = Image.add_blob img ~va:Notary.code_va ~w:false ~x:true code in
  let img =
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:Notary.state_va ~w:true ~x:false)
      ~contents:zero_page
  in
  let img =
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:Notary.heap_va ~w:true ~x:false)
      ~contents:zero_page
  in
  let img =
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:Notary.output_va ~w:true ~x:false)
      ~target:Os.shared_base
  in
  let img =
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:Notary.input_va ~w:false ~x:false)
      ~target:Os.document_base
  in
  let img = Image.add_thread img ~entry:Notary.code_va in
  match Loader.load os img with
  | Ok (os, h) -> (os, h, List.hd h.Loader.threads)
  | Error e -> Alcotest.failf "notary load: %a" Loader.pp_error e

let test_notary_lifecycle () =
  let os, _h, th = notary_world () in
  let os, e, _ = enter0 os ~thread:th in
  check_err "init" Errors.Success e;
  let pub = { Rsa.n = Bignum.of_bytes_be (Os.read_bytes os Os.shared_base 128); e = Rsa.default_e } in
  (* Notarise a document and verify OS-side. *)
  let doc = String.make 64 'D' in
  let os = Os.write_bytes os Os.document_base doc in
  let os, e, stamp =
    Os.enter os ~thread:th
      ~args:(Word.of_int Notary.cmd_notarize, Notary.input_va, Word.of_int 64)
  in
  check_err "notarise" Errors.Success e;
  Alcotest.(check int) "counter starts at 1" 1 (Word.to_int stamp);
  let signature = Os.read_bytes os Os.shared_base 128 in
  let digest = Sha256.digest (doc ^ Word.to_bytes_be Word.zero) in
  Alcotest.(check bool) "signature verifies" true
    (Rsa.verify pub ~digest ~signature);
  (* Counter is monotonic: same document, different digest next time. *)
  let os, e, stamp2 =
    Os.enter os ~thread:th
      ~args:(Word.of_int Notary.cmd_notarize, Notary.input_va, Word.of_int 64)
  in
  check_err "notarise again" Errors.Success e;
  Alcotest.(check int) "counter 2" 2 (Word.to_int stamp2);
  let signature2 = Os.read_bytes os Os.shared_base 128 in
  Alcotest.(check bool) "signatures differ (counter bound)" false
    (String.equal signature signature2);
  check_wf "notary world" os

let test_notary_interrupted_init_resumes () =
  (* Interrupt the notary during its (long) initialisation; resuming
     completes it correctly. *)
  let os, _h, th = notary_world () in
  let os, e, v = Os.run_thread ~budget:100 os ~thread:th ~args:(Word.zero, Word.zero, Word.zero) in
  check_err "init completes across interrupts" Errors.Success e;
  Alcotest.(check int) "init result" 0 (Word.to_int v);
  ignore os

let test_notary_rejects_bad_length () =
  let os, _h, th = notary_world () in
  let os, e, _ = enter0 os ~thread:th in
  check_err "init" Errors.Success e;
  let _, e, v =
    Os.enter os ~thread:th
      ~args:(Word.of_int Notary.cmd_notarize, Notary.input_va, Word.of_int 13)
  in
  check_err "call completes" Errors.Success e;
  Alcotest.(check int) "ragged length rejected" 1 (Word.to_int v)

let test_notary_unknown_command () =
  let os, _h, th = notary_world () in
  let os, e, _ = enter0 os ~thread:th in
  check_err "init" Errors.Success e;
  let _, e, v =
    Os.enter os ~thread:th ~args:(Word.of_int 9, Word.zero, Word.zero)
  in
  check_err "call completes" Errors.Success e;
  Alcotest.(check int) "unknown command code" 2 (Word.to_int v)

let test_monitor_cycles_accumulate_across_calls () =
  let os = boot () in
  let os, h = load_prog os Komodo_user.Progs.add_args in
  let cs =
    List.map
      (fun _ ->
        let c0 = Os.cycles os in
        let os', _, _ = enter0 os ~thread:(List.hd h.Loader.threads) in
        Os.cycles os' - c0)
      [ (); (); () ]
  in
  (* The same call from the same state costs the same — determinism of
     the cost model. *)
  match cs with
  | [ a; b; c ] ->
      Alcotest.(check int) "deterministic cost" a b;
      Alcotest.(check int) "deterministic cost 2" b c
  | _ -> assert false

let suite =
  [
    Alcotest.test_case "loader produces wf enclave" `Quick test_loader_produces_wf_enclave;
    Alcotest.test_case "measurement prediction" `Quick test_loader_measurement_prediction;
    Alcotest.test_case "unload returns pages" `Quick test_unload_returns_all_pages;
    Alcotest.test_case "page reuse after teardown" `Quick test_page_reuse_after_teardown;
    Alcotest.test_case "out of pages" `Quick test_out_of_pages;
    Alcotest.test_case "notary lifecycle" `Slow test_notary_lifecycle;
    Alcotest.test_case "notary interrupted init" `Slow test_notary_interrupted_init_resumes;
    Alcotest.test_case "notary rejects bad length" `Slow test_notary_rejects_bad_length;
    Alcotest.test_case "notary unknown command" `Slow test_notary_unknown_command;
    Alcotest.test_case "deterministic call costs" `Quick test_monitor_cycles_accumulate_across_calls;
  ]
