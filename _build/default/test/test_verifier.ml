(* The verifier enclave (remote attestation): quote issuance, forgery
   rejection, and quote semantics. *)

open Testlib
module Word = Komodo_machine.Word
module Verifier = Komodo_user.Verifier
module Sha256 = Komodo_crypto.Sha256
module Bignum = Komodo_crypto.Bignum
module Rsa = Komodo_crypto.Rsa
module Errors = Komodo_core.Errors
module Monitor = Komodo_core.Monitor

let verifier_out = Os.shared_base
let verifier_in = Word.add Os.shared_base (Word.of_int 0x1000)

let verifier_image =
  let zero_page = String.make 4096 '\000' in
  Image.empty ~name:"verifier"
  |> fun img ->
  Image.add_blob img ~va:Verifier.code_va ~w:false ~x:true
    (Uprog.to_page_images (Uprog.native_words ~id:Verifier.native_id))
  |> fun img ->
  Image.add_secure_page img
    ~mapping:(Mapping.make ~va:Verifier.state_va ~w:true ~x:false)
    ~contents:zero_page
  |> fun img ->
  Image.add_insecure_mapping img
    ~mapping:(Mapping.make ~va:Verifier.output_va ~w:true ~x:false)
    ~target:verifier_out
  |> fun img ->
  Image.add_insecure_mapping img
    ~mapping:(Mapping.make ~va:Verifier.input_va ~w:false ~x:false)
    ~target:verifier_in
  |> fun img -> Image.add_thread img ~entry:Verifier.code_va

(* Shared fixture: booted world with an initialised verifier. *)
let world () =
  let os = Os.boot ~seed:0xF00F ~npages:64 () in
  let os, h =
    match Loader.load os verifier_image with
    | Ok r -> r
    | Error e -> Alcotest.failf "verifier load: %a" Loader.pp_error e
  in
  let th = List.hd h.Loader.threads in
  let os, e, _ = enter0 os ~thread:th in
  check_err "verifier init" Errors.Success e;
  let pub =
    { Rsa.n = Bignum.of_bytes_be (Os.read_bytes os verifier_out 128); e = Rsa.default_e }
  in
  (os, h, th, pub)

let endorse os th tuple =
  let os = Os.write_bytes os verifier_in tuple in
  let os, e, verdict =
    Os.enter os ~thread:th ~args:(Word.of_int Verifier.cmd_endorse, Word.zero, Word.zero)
  in
  check_err "endorse call" Errors.Success e;
  (os, Word.to_int verdict, Os.read_bytes os verifier_out 128)

let genuine_tuple (os : Os.t) ~measurement ~data =
  let mac =
    Komodo_core.Attest.create ~key:os.Os.mon.Monitor.attest_key ~measurement ~data
  in
  data ^ measurement ^ mac

let test_init_publishes_endorsed_key () =
  let os, h, _, _ = world () in
  let key_digest = Sha256.digest (Os.read_bytes os verifier_out 128) in
  let key_mac = Os.read_bytes os (Word.add verifier_out (Word.of_int 128)) 32 in
  Alcotest.(check bool) "published key locally attested" true
    (Komodo_core.Attest.verify ~key:os.Os.mon.Monitor.attest_key
       ~measurement:h.Loader.measurement ~data:key_digest ~mac:key_mac)

let test_quote_roundtrip () =
  let os, h, th, pub = world () in
  let data = String.make 32 '\x21' in
  (* Self-endorsement: the verifier quotes its own measurement here,
     which is as good a target as any. *)
  let tuple = genuine_tuple os ~measurement:h.Loader.measurement ~data in
  let _, verdict, quote = endorse os th tuple in
  Alcotest.(check int) "endorsed" 0 verdict;
  Alcotest.(check bool) "remote check passes" true
    (Verifier.check_quote ~pub ~data ~measurement:h.Loader.measurement ~quote)

let test_forged_mac_refused () =
  let os, h, th, _ = world () in
  let data = String.make 32 '\x21' in
  let tuple = genuine_tuple os ~measurement:h.Loader.measurement ~data in
  let forged = String.mapi (fun i c -> if i = 70 then '\xFF' else c) tuple in
  let _, verdict, _ = endorse os th forged in
  Alcotest.(check int) "refused" 1 verdict

let test_quote_binds_measurement_and_data () =
  let os, h, th, pub = world () in
  let data = String.make 32 '\x33' in
  let tuple = genuine_tuple os ~measurement:h.Loader.measurement ~data in
  let _, verdict, quote = endorse os th tuple in
  Alcotest.(check int) "endorsed" 0 verdict;
  Alcotest.(check bool) "wrong measurement rejected" false
    (Verifier.check_quote ~pub ~data ~measurement:(Sha256.digest "other") ~quote);
  Alcotest.(check bool) "wrong data rejected" false
    (Verifier.check_quote ~pub ~data:(String.make 32 '\x34')
       ~measurement:h.Loader.measurement ~quote)

let test_quote_key_is_boot_specific () =
  (* A different boot has a different verifier key: quotes don't
     transfer. *)
  let _, h1, th1, pub1 = world () in
  ignore (h1, th1);
  let os2 = Os.boot ~seed:0xBEEF ~npages:64 () in
  let os2, h2 =
    match Loader.load os2 verifier_image with
    | Ok r -> r
    | Error e -> Alcotest.failf "verifier load: %a" Loader.pp_error e
  in
  let th2 = List.hd h2.Loader.threads in
  let os2, e, _ = enter0 os2 ~thread:th2 in
  check_err "init" Errors.Success e;
  let data = String.make 32 '\x44' in
  let tuple = genuine_tuple os2 ~measurement:h2.Loader.measurement ~data in
  let _, verdict, quote = endorse os2 th2 tuple in
  Alcotest.(check int) "endorsed on boot 2" 0 verdict;
  Alcotest.(check bool) "boot-1 key rejects boot-2 quote" false
    (Verifier.check_quote ~pub:pub1 ~data ~measurement:h2.Loader.measurement ~quote);
  check_wf "verifier world" os2

let test_unknown_command () =
  let os, _, th, _ = world () in
  let _, e, v = Os.enter os ~thread:th ~args:(Word.of_int 9, Word.zero, Word.zero) in
  check_err "survives" Errors.Success e;
  Alcotest.(check int) "unknown command code" 2 (Word.to_int v)

let suite =
  [
    Alcotest.test_case "init publishes endorsed key" `Slow test_init_publishes_endorsed_key;
    Alcotest.test_case "quote roundtrip" `Slow test_quote_roundtrip;
    Alcotest.test_case "forged MAC refused" `Slow test_forged_mac_refused;
    Alcotest.test_case "quote binds measurement and data" `Slow test_quote_binds_measurement_and_data;
    Alcotest.test_case "quotes are boot-specific" `Slow test_quote_key_is_boot_specific;
    Alcotest.test_case "unknown command" `Slow test_unknown_command;
  ]

(* -- Cross-enclave integration: the verifier endorses the notary -------- *)

let notary_image =
  let zero_page = String.make 4096 '\000' in
  let notary_out = Word.add Os.shared_base (Word.of_int 0x4000) in
  ( notary_out,
    Image.empty ~name:"notary"
    |> fun img ->
    Image.add_blob img ~va:Komodo_user.Notary.code_va ~w:false ~x:true
      (Uprog.to_page_images (Uprog.native_words ~id:Komodo_user.Notary.native_id))
    |> fun img ->
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:Komodo_user.Notary.state_va ~w:true ~x:false)
      ~contents:zero_page
    |> fun img ->
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:Komodo_user.Notary.heap_va ~w:true ~x:false)
      ~contents:zero_page
    |> fun img ->
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:Komodo_user.Notary.output_va ~w:true ~x:false)
      ~target:notary_out
    |> fun img -> Image.add_thread img ~entry:Komodo_user.Notary.code_va )

let test_verifier_endorses_notary () =
  (* The full trust chain of the paper's §4: the notary locally attests
     to (a hash of) its signing key; the verifier enclave checks that
     attestation inside the enclave boundary and signs a quote; a
     remote party, holding only the verifier's public key and the
     notary's expected measurement, ends up trusting the notary's
     key — across two native enclaves and an untrusted OS relay. *)
  let os = Os.boot ~seed:0xCAB1E ~npages:96 () in
  let notary_out, n_img = notary_image in
  let os, notary =
    match Loader.load os n_img with
    | Ok r -> r
    | Error e -> Alcotest.failf "notary load: %a" Loader.pp_error e
  in
  let os, verifier =
    match Loader.load os verifier_image with
    | Ok r -> r
    | Error e -> Alcotest.failf "verifier load: %a" Loader.pp_error e
  in
  let nth = List.hd notary.Loader.threads and vth = List.hd verifier.Loader.threads in
  (* Initialise both enclaves (each runs keygen via GetRandom SVCs). *)
  let os, e, _ = enter0 os ~thread:nth in
  check_err "notary init" Errors.Success e;
  let os, e, _ = enter0 os ~thread:vth in
  check_err "verifier init" Errors.Success e;
  let verifier_pub =
    { Rsa.n = Bignum.of_bytes_be (Os.read_bytes os verifier_out 128); e = Rsa.default_e }
  in
  (* The notary attests to its public key. *)
  let os, e, _ =
    Os.enter os ~thread:nth
      ~args:(Word.of_int Komodo_user.Notary.cmd_attest_key, Word.zero, Word.zero)
  in
  check_err "notary attest" Errors.Success e;
  let notary_pub_bytes = Os.read_bytes os notary_out 128 in
  let mac = Os.read_bytes os (Word.add notary_out (Word.of_int 128)) 32 in
  let data = Sha256.digest notary_pub_bytes in
  (* The OS relays (data, notary measurement, MAC) to the verifier. *)
  let os = Os.write_bytes os verifier_in (data ^ notary.Loader.measurement ^ mac) in
  let os, e, verdict =
    Os.enter os ~thread:vth ~args:(Word.of_int Verifier.cmd_endorse, Word.zero, Word.zero)
  in
  check_err "endorse" Errors.Success e;
  Alcotest.(check int) "verifier vouches for the notary" 0 (Word.to_int verdict);
  let quote = Os.read_bytes os verifier_out 128 in
  (* Remote side: the quote binds the notary's key hash to the notary's
     measurement under the verifier's key. *)
  Alcotest.(check bool) "remote party trusts the chain" true
    (Verifier.check_quote ~pub:verifier_pub ~data
       ~measurement:notary.Loader.measurement ~quote);
  (* And now the remote party can check notary signatures directly. *)
  let notary_pub = { Rsa.n = Bignum.of_bytes_be notary_pub_bytes; e = Rsa.default_e } in
  let os = Os.write_bytes os Os.document_base (String.make 64 'd') in
  let os, e, stamp =
    Os.enter os ~thread:nth
      ~args:
        ( Word.of_int Komodo_user.Notary.cmd_notarize,
          Komodo_user.Notary.input_va,
          Word.of_int 64 )
  in
  (* The notary's document window must be mapped for this to work; this
     image did not map one, so a fault here is the expected rejection
     path — tolerate either, but if it succeeded, verify the signature. *)
  (if Errors.is_success e then begin
     let signature = Os.read_bytes os notary_out 128 in
     let digest =
       Sha256.digest (String.make 64 'd' ^ Word.to_bytes_be (Word.of_int (Word.to_int stamp - 1)))
     in
     Alcotest.(check bool) "notary signature verifies under endorsed key" true
       (Rsa.verify notary_pub ~digest ~signature)
   end);
  check_wf "two native enclaves" os

let suite =
  suite
  @ [
      Alcotest.test_case "verifier endorses the notary (full chain)" `Slow
        test_verifier_endorses_notary;
    ]
