(* The dispatcher interface (paper §9.2, implemented here): fault
   upcalls, ResumeFaulted, self-paging, double faults, interrupts during
   dispatch, and the security property that the OS observes nothing. *)

open Testlib
module Word = Komodo_machine.Word
module Insn = Komodo_machine.Insn
module Errors = Komodo_core.Errors
module Pagedb = Komodo_core.Pagedb
module Monitor = Komodo_core.Monitor
module Progs = Komodo_user.Progs
open Komodo_user.Uprog

let dispatcher_va = Word.of_int 0x4000

let self_paging_image ?(dispatcher = Progs.self_paging_dispatcher) () =
  let main_pages = Uprog.to_page_images (Uprog.code_words Progs.self_paging_main) in
  let disp_pages = Uprog.to_page_images (Uprog.code_words dispatcher) in
  Image.empty ~name:"sp"
  |> fun img ->
  Image.add_blob img ~va:Word.zero ~w:false ~x:true main_pages |> fun img ->
  Image.add_blob img ~va:dispatcher_va ~w:false ~x:true disp_pages |> fun img ->
  Image.add_secure_page img
    ~mapping:(Mapping.make ~va:(Word.of_int 0x1000) ~w:true ~x:false)
    ~contents:(String.make 4096 '\000')
  |> fun img ->
  Image.add_thread img ~entry:Word.zero |> fun img -> Image.with_spares img 1

let load_sp ?dispatcher os =
  match Loader.load os (self_paging_image ?dispatcher ()) with
  | Ok r -> r
  | Error e -> Alcotest.failf "load: %a" Loader.pp_error e

let test_self_paging_happy_path () =
  let os = boot ~npages:48 () in
  let os, h = load_sp os in
  let spare = List.hd h.Loader.spares in
  let os, e, v =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, dispatcher_va, Word.zero)
  in
  check_err "one successful Enter" Errors.Success e;
  Alcotest.(check int) "demand-mapped page served the store" 0xD15E (Word.to_int v);
  check_wf "after self-paging" os;
  (* The spare became a data page, driven entirely by the enclave. *)
  match Pagedb.get os.Os.mon.Monitor.pagedb spare with
  | Pagedb.DataPage _ -> ()
  | _ -> Alcotest.fail "spare not consumed as a data page"

let test_os_sees_nothing () =
  (* During the whole fault-dispatch-resume dance, the only OS-visible
     outcome is one Success return; insecure memory is untouched. *)
  let os = boot ~npages:48 () in
  let os = Os.write_bytes os (Word.of_int 0x0700_0000) "canary!!"  in
  let os, h = load_sp os in
  let spare = List.hd h.Loader.spares in
  let os, e, _ =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, dispatcher_va, Word.zero)
  in
  check_err "fault invisible to OS" Errors.Success e;
  Alcotest.(check string) "insecure memory untouched" "canary!!"
    (Os.read_bytes os (Word.of_int 0x0700_0000) 8)

let test_double_fault_reported () =
  (* A dispatcher that fixes nothing: the retry faults forever; the
     watchdog reports a plain Fault to the OS, never hanging. *)
  let os = boot ~npages:48 () in
  let os, h = load_sp ~dispatcher:Progs.futile_dispatcher os in
  let spare = List.hd h.Loader.spares in
  let os, e, v =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, dispatcher_va, Word.zero)
  in
  check_err "reported as Fault" Errors.Fault e;
  Alcotest.(check int) "no extra information" 0 (Word.to_int v);
  check_wf "consistent after fault storm" os

let test_faulting_dispatcher_reported () =
  (* A dispatcher that itself faults (touches unmapped memory): the
     double fault exits to the OS as a plain Fault. *)
  let bad_dispatcher =
    [ Insn.I (Insn.Mov (r4, imm 0x0900_0000)); Insn.I (Insn.Ldr (r5, r4, imm 0)) ]
  in
  let os = boot ~npages:48 () in
  let os, h = load_sp ~dispatcher:bad_dispatcher os in
  let spare = List.hd h.Loader.spares in
  let os, e, _ =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, dispatcher_va, Word.zero)
  in
  check_err "double fault -> Fault" Errors.Fault e;
  check_wf "consistent" os

let test_set_dispatcher_validation () =
  (* SetDispatcher with an out-of-range entry is refused; the program
     exits with the error code. *)
  let prog =
    [
      Insn.I (Insn.Mvn (r1, imm 0)) (* 0xFFFFFFFF: beyond enclave space *);
      Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.set_dispatcher));
      Insn.I (Insn.Svc Word.zero);
    ]
    @ exit_with r0
  in
  let os = boot () in
  let os, h = load_prog os prog in
  let _, e, v = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "program ran" Errors.Success e;
  Alcotest.(check int) "Invalid_arg"
    (Word.to_int (Errors.to_word Errors.Invalid_arg))
    (Word.to_int v)

let test_deregister_dispatcher () =
  (* Register, deregister (entry 0), fault: back to the base behaviour. *)
  let prog =
    [
      Insn.I (Insn.Mov (r1, imm 0x4000));
      Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.set_dispatcher));
      Insn.I (Insn.Svc Word.zero);
      Insn.I (Insn.Mov (r1, imm 0));
      Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.set_dispatcher));
      Insn.I (Insn.Svc Word.zero);
      Insn.I (Insn.Mov (r9, imm 0x0FF0_0000));
      Insn.I (Insn.Ldr (r9, r9, imm 0)) (* unmapped: faults *);
    ]
    @ exit_with r9
  in
  let os = boot () in
  let os, h = load_prog os prog in
  let _, e, _ = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "fault reaches OS after deregistration" Errors.Fault e

let test_resume_without_fault () =
  (* ResumeFaulted with no parked context: error delivered, enclave
     continues. *)
  let prog =
    [
      Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.resume_faulted));
      Insn.I (Insn.Svc Word.zero);
    ]
    @ exit_with r0
  in
  let os = boot () in
  let os, h = load_prog os prog in
  let _, e, v = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "program survives" Errors.Success e;
  Alcotest.(check int) "Not_entered error"
    (Word.to_int (Errors.to_word Errors.Not_entered))
    (Word.to_int v)

let test_interrupt_during_dispatch () =
  (* Interrupt while the dispatcher runs: the OS sees Interrupted; a
     Resume continues the dispatcher and the whole dance completes. *)
  let os = boot ~npages:48 () in
  let os, h = load_sp os in
  let spare = List.hd h.Loader.spares in
  let th = List.hd h.Loader.threads in
  let os, e, v =
    Os.run_thread ~budget:15 os ~thread:th
      ~args:(Word.of_int spare, dispatcher_va, Word.zero)
  in
  check_err "completes across slices" Errors.Success e;
  Alcotest.(check int) "correct result despite interrupts" 0xD15E (Word.to_int v);
  check_wf "consistent" os

let test_dispatcher_fault_info_is_accurate () =
  (* The dispatcher receives the true fault class and address: have it
     publish them to a shared page for the (test-)OS to inspect. This
     is an enclave *choosing* to declassify its own fault — allowed. *)
  let publishing_dispatcher =
    [
      Insn.I (Insn.Mov (r11, imm 0x2000));
      Insn.I (Insn.Str (r0, r11, imm 0)) (* fault class *);
      Insn.I (Insn.Str (r1, r11, imm 4)) (* faulting address *);
      Insn.I (Insn.Mov (r1, imm 0x77));
    ]
    @ exit_with r1
  in
  let main =
    [
      Insn.I (Insn.Mov (r1, imm 0x4000));
      Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.set_dispatcher));
      Insn.I (Insn.Svc Word.zero);
      Insn.I (Insn.Mov (r9, imm 0x0600_4000));
      Insn.I (Insn.Ldr (r9, r9, imm 8)) (* faults at 0x06004008 *);
    ]
    @ exit_with r9
  in
  let img =
    Image.empty ~name:"pub"
    |> fun img ->
    Image.add_blob img ~va:Word.zero ~w:false ~x:true
      (Uprog.to_page_images (Uprog.code_words main))
    |> fun img ->
    Image.add_blob img ~va:dispatcher_va ~w:false ~x:true
      (Uprog.to_page_images (Uprog.code_words publishing_dispatcher))
    |> fun img ->
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:(Word.of_int 0x2000) ~w:true ~x:false)
      ~target:Os.shared_base
    |> fun img -> Image.add_thread img ~entry:Word.zero
  in
  let os = boot ~npages:48 () in
  let os, h =
    match Loader.load os img with
    | Ok r -> r
    | Error e -> Alcotest.failf "load: %a" Loader.pp_error e
  in
  let os, e, v = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "dispatcher exited for the thread" Errors.Success e;
  Alcotest.(check int) "dispatcher's exit value" 0x77 (Word.to_int v);
  Alcotest.(check int) "fault class = translation" 1
    (Word.to_int (Os.read_word os Os.shared_base));
  Alcotest.(check int) "faulting address exact" 0x0600_4008
    (Word.to_int (Os.read_word os (Word.add Os.shared_base (Word.of_int 4))))

let suite =
  [
    Alcotest.test_case "self-paging happy path" `Quick test_self_paging_happy_path;
    Alcotest.test_case "OS observes nothing" `Quick test_os_sees_nothing;
    Alcotest.test_case "double fault reported" `Quick test_double_fault_reported;
    Alcotest.test_case "faulting dispatcher reported" `Quick test_faulting_dispatcher_reported;
    Alcotest.test_case "SetDispatcher validation" `Quick test_set_dispatcher_validation;
    Alcotest.test_case "deregistration" `Quick test_deregister_dispatcher;
    Alcotest.test_case "ResumeFaulted without fault" `Quick test_resume_without_fault;
    Alcotest.test_case "interrupt during dispatch" `Quick test_interrupt_during_dispatch;
    Alcotest.test_case "fault info accurate" `Quick test_dispatcher_fault_info_is_accurate;
  ]

(* -- Full self-paging with eviction ------------------------------------ *)

let selfpager_world () =
  let img =
    Image.empty ~name:"pager"
    |> fun img ->
    Image.add_blob img ~va:Word.zero ~w:false ~x:true
      (Uprog.to_page_images (Uprog.code_words Progs.selfpager_main))
    |> fun img ->
    Image.add_blob img ~va:(Word.of_int Progs.selfpager_disp_va) ~w:false ~x:true
      (Uprog.to_page_images (Uprog.code_words Progs.selfpager_dispatcher))
    |> fun img ->
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:(Word.of_int Progs.selfpager_book) ~w:true ~x:false)
      ~contents:(String.make 4096 '\000')
    |> fun img ->
    List.fold_left
      (fun img i ->
        Image.add_insecure_mapping img
          ~mapping:
            (Mapping.make
               ~va:(Word.of_int (Progs.selfpager_swap + (i * 4096)))
               ~w:true ~x:false)
          ~target:(Word.add Os.shared_base (Word.of_int (i * 4096))))
      img
      (List.init 4 (fun i -> i))
    |> fun img ->
    Image.add_thread img ~entry:Word.zero |> fun img -> Image.with_spares img 1
  in
  let os = boot ~npages:48 () in
  match Loader.load os img with
  | Ok r -> r
  | Error e -> Alcotest.failf "pager load: %a" Loader.pp_error e

let test_selfpager_correctness () =
  let os, h = selfpager_world () in
  let spare = List.hd h.Loader.spares in
  let os, e, v =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, Word.zero, Word.zero)
  in
  check_err "single successful Enter" Errors.Success e;
  Alcotest.(check int) "all four pages round-tripped" 0x286 (Word.to_int v);
  check_wf "after paging storm" os

let test_selfpager_swap_is_ciphertext () =
  let os, h = selfpager_world () in
  let spare = List.hd h.Loader.spares in
  let os, e, _ =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, Word.zero, Word.zero)
  in
  check_err "ran" Errors.Success e;
  (* Slot 0 holds page 0's eviction image: word 0 must be the
     enciphered 0xA0, never the plaintext. *)
  let w0 = Word.to_int (Os.read_word os Os.shared_base) in
  Alcotest.(check int) "ciphertext in swap" (0xA0 lxor Progs.selfpager_key) w0;
  (* Every page gets evicted at some point in the access pattern (page
     3 during the read phase); all slots must hold ciphertext only. *)
  List.iter
    (fun i ->
      let w =
        Word.to_int (Os.read_word os (Word.add Os.shared_base (Word.of_int (i * 4096))))
      in
      Alcotest.(check int)
        (Printf.sprintf "slot %d ciphertext" i)
        ((0xA0 + i) lxor Progs.selfpager_key)
        w)
    [ 0; 1; 2; 3 ]

let test_selfpager_uses_one_frame () =
  (* Throughout the run the enclave owns exactly its static pages plus
     the one spare/data frame — 4 virtual pages never consume more. *)
  let os, h = selfpager_world () in
  let spare = List.hd h.Loader.spares in
  let before = Pagedb.free_count os.Os.mon.Monitor.pagedb in
  let os, e, _ =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, Word.zero, Word.zero)
  in
  check_err "ran" Errors.Success e;
  Alcotest.(check int) "no extra frames consumed" before
    (Pagedb.free_count os.Os.mon.Monitor.pagedb)

let suite =
  suite
  @ [
      Alcotest.test_case "self-pager: 4 pages on 1 frame" `Quick test_selfpager_correctness;
      Alcotest.test_case "self-pager: swap holds ciphertext" `Quick test_selfpager_swap_is_ciphertext;
      Alcotest.test_case "self-pager: constant frame usage" `Quick test_selfpager_uses_one_frame;
    ]
