(* The SGX baseline model: EPCM bookkeeping, the instruction lifecycle,
   the cost comparison, and the controlled channel that distinguishes it
   from Komodo. *)

module Word = Komodo_machine.Word
module Epcm = Komodo_sgx.Epcm
module L = Komodo_sgx.Lifecycle
module Channel = Komodo_sgx.Channel
module Cost = Komodo_sgx.Cost

let ok = function Ok t -> t | Error e -> Alcotest.failf "sgx: %s" (L.show_error e)
let expect_err want = function
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e -> Alcotest.(check bool) (L.show_error want) true (L.equal_error e want)

let page c = String.make 4096 c
let perms_rw = { Epcm.r = true; w = true; x = false }

let build_enclave () =
  let t = L.make ~epc_size:16 in
  let t = ok (L.ecreate t ~secs:0) in
  let t =
    ok
      (L.eadd t ~secs:0 ~index:1 ~page_type:Epcm.PT_REG ~va:(Word.of_int 0x1000)
         ~perms:perms_rw ~contents:(page 'a'))
  in
  let t =
    ok
      (L.eadd t ~secs:0 ~index:2 ~page_type:Epcm.PT_TCS ~va:(Word.of_int 0x2000)
         ~perms:perms_rw ~contents:(page 't'))
  in
  ok (L.einit t ~secs:0)

let test_lifecycle_happy_path () =
  let t = build_enclave () in
  Alcotest.(check bool) "measurement available" true (L.measurement t ~secs:0 <> None);
  let t = ok (L.eenter t ~secs:0 ~tcs:2) in
  let t = ok (L.eleave t ~secs:0 ~tcs:2 `Eexit) in
  ignore t

let test_epcm_bookkeeping () =
  let t = build_enclave () in
  Alcotest.(check int) "owned pages" 2 (List.length (Epcm.owned t.L.epcm 0));
  Alcotest.(check int) "free pages" 13 (Epcm.free_count t.L.epcm);
  Alcotest.(check bool) "slot valid" true (not (Epcm.is_free t.L.epcm 1))

let test_ecreate_errors () =
  let t = L.make ~epc_size:4 in
  expect_err L.Invalid_index (L.ecreate t ~secs:9);
  let t = ok (L.ecreate t ~secs:0) in
  expect_err L.Page_in_use (L.ecreate t ~secs:0)

let test_eadd_errors () =
  let t = L.make ~epc_size:8 in
  let t = ok (L.ecreate t ~secs:0) in
  expect_err L.Page_in_use
    (L.eadd t ~secs:0 ~index:0 ~page_type:Epcm.PT_REG ~va:Word.zero ~perms:perms_rw
       ~contents:(page 'x'));
  expect_err L.Bad_argument
    (L.eadd t ~secs:0 ~index:1 ~page_type:Epcm.PT_REG ~va:Word.zero ~perms:perms_rw
       ~contents:"short");
  expect_err L.Not_secs
    (L.eadd t ~secs:3 ~index:1 ~page_type:Epcm.PT_REG ~va:Word.zero ~perms:perms_rw
       ~contents:(page 'x'));
  let t = ok (L.einit t ~secs:0) in
  expect_err L.Already_initialised
    (L.eadd t ~secs:0 ~index:1 ~page_type:Epcm.PT_REG ~va:Word.zero ~perms:perms_rw
       ~contents:(page 'x'))

let test_enter_errors () =
  let t = L.make ~epc_size:8 in
  let t = ok (L.ecreate t ~secs:0) in
  expect_err L.Not_initialised (L.eenter t ~secs:0 ~tcs:1);
  let t = ok (L.einit t ~secs:0) in
  expect_err L.Bad_argument (L.eenter t ~secs:0 ~tcs:1);
  ignore t

let test_tcs_reentry_blocked () =
  let t = build_enclave () in
  let t = ok (L.eenter t ~secs:0 ~tcs:2) in
  expect_err L.Page_in_use (L.eenter t ~secs:0 ~tcs:2);
  (* AEX frees the TCS like EEXIT does (resumable state abstracted). *)
  let t = ok (L.eleave t ~secs:0 ~tcs:2 `Aex) in
  ignore (ok (L.eenter t ~secs:0 ~tcs:2))

let test_measurement_sensitivity () =
  let build c =
    let t = L.make ~epc_size:8 in
    let t = ok (L.ecreate t ~secs:0) in
    let t =
      ok
        (L.eadd t ~secs:0 ~index:1 ~page_type:Epcm.PT_REG ~va:(Word.of_int 0x1000)
           ~perms:perms_rw ~contents:(page c))
    in
    let t = ok (L.einit t ~secs:0) in
    Option.get (L.measurement t ~secs:0)
  in
  Alcotest.(check bool) "content changes measurement" false
    (String.equal (build 'a') (build 'b'))

let test_eaug_eaccept () =
  let t = build_enclave () in
  let t = ok (L.eaug t ~secs:0 ~index:5 ~va:(Word.of_int 0x5000)) in
  (match Epcm.get t.L.epcm 5 with
  | Epcm.Valid e -> Alcotest.(check bool) "pending until EACCEPT" true e.Epcm.pending
  | Epcm.Free -> Alcotest.fail "EAUG did not allocate");
  expect_err L.Pending_page (L.eaccept t ~secs:0 ~index:1);
  let t = ok (L.eaccept t ~secs:0 ~index:5) in
  match Epcm.get t.L.epcm 5 with
  | Epcm.Valid e -> Alcotest.(check bool) "accepted" false e.Epcm.pending
  | Epcm.Free -> Alcotest.fail "page vanished"

let test_eremove () =
  let t = build_enclave () in
  expect_err L.Page_in_use (L.eremove t ~index:0);
  let t = ok (L.eremove t ~index:1) in
  let t = ok (L.eremove t ~index:2) in
  let t = ok (L.eremove t ~index:0) in
  Alcotest.(check int) "epc empty" 16 (Epcm.free_count t.L.epcm)

let ok' = function Ok v -> v | Error e -> Alcotest.failf "sgx: %s" (L.show_error e)

let test_ereport () =
  let t = build_enclave () in
  let key = String.make 32 'k' in
  let _, mac = ok' (L.ereport t ~secs:0 ~key ~data:(String.make 32 'd')) in
  Alcotest.(check int) "mac is 32 bytes" 32 (String.length mac)

let test_cost_comparison () =
  (* The §8.1 numbers: a full SGX crossing is ~an order of magnitude
     above Komodo's 738 cycles. *)
  Alcotest.(check int) "published crossing" 7100 Cost.full_crossing;
  Alcotest.(check bool) "order of magnitude over Komodo" true
    (Cost.full_crossing > 9 * 738);
  let t = build_enclave () in
  Alcotest.(check bool) "model charges cycles" true (t.L.cycles > 0)

let test_controlled_channel_leaks () =
  let secret = [ true; true; false; true; false; false; false; true ] in
  let recovered = Komodo_sec.Attacks.sgx_controlled_channel_leak ~secret_bits:secret in
  Alcotest.(check (list bool)) "OS recovers the victim's secret" secret recovered

let test_controlled_channel_mechanics () =
  let t = L.make ~epc_size:4 in
  let t = ok (L.ecreate t ~secs:0) in
  let va = Word.of_int 0x7000 in
  let t = Channel.revoke t ~secs:0 ~va in
  Alcotest.(check bool) "revoked" true (Channel.is_revoked t ~secs:0 ~va);
  let t, outcome = Channel.enclave_access t ~secs:0 ~va in
  (match outcome with
  | `Faulted page -> Alcotest.(check int) "page-granular address leaked" 0x7000 (Word.to_int page)
  | `Ok -> Alcotest.fail "access should fault");
  Alcotest.(check int) "trace recorded" 1 (List.length (Channel.observed_trace t ~secs:0));
  let t = Channel.restore t ~secs:0 ~va in
  let _, outcome = Channel.enclave_access t ~secs:0 ~va in
  match outcome with
  | `Ok -> ()
  | `Faulted _ -> Alcotest.fail "restored mapping should not fault"

let suite =
  [
    Alcotest.test_case "lifecycle happy path" `Quick test_lifecycle_happy_path;
    Alcotest.test_case "EPCM bookkeeping" `Quick test_epcm_bookkeeping;
    Alcotest.test_case "ECREATE errors" `Quick test_ecreate_errors;
    Alcotest.test_case "EADD errors" `Quick test_eadd_errors;
    Alcotest.test_case "EENTER errors" `Quick test_enter_errors;
    Alcotest.test_case "TCS re-entry blocked" `Quick test_tcs_reentry_blocked;
    Alcotest.test_case "measurement sensitivity" `Quick test_measurement_sensitivity;
    Alcotest.test_case "EAUG/EACCEPT" `Quick test_eaug_eaccept;
    Alcotest.test_case "EREMOVE" `Quick test_eremove;
    Alcotest.test_case "EREPORT" `Quick test_ereport;
    Alcotest.test_case "cost comparison" `Quick test_cost_comparison;
    Alcotest.test_case "controlled channel leaks" `Quick test_controlled_channel_leaks;
    Alcotest.test_case "controlled channel mechanics" `Quick test_controlled_channel_mechanics;
  ]
