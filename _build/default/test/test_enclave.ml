(* Enclave execution: Enter/Resume semantics, interrupts and context
   save/restore, faults, register hygiene, multiple enclaves and
   threads — the Figure 3 state machine end to end. *)

open Testlib
module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Regs = Komodo_machine.Regs
module Insn = Komodo_machine.Insn
module Errors = Komodo_core.Errors
module Pagedb = Komodo_core.Pagedb
module Monitor = Komodo_core.Monitor
module Progs = Komodo_user.Progs
open Komodo_user.Uprog

let test_enter_args_delivered () =
  let os = boot () in
  let os, h = load_prog os Progs.add_args in
  let _, e, v =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int 100, Word.of_int 20, Word.of_int 3)
  in
  check_err "success" Errors.Success e;
  Alcotest.(check int) "args in r0-r2" 123 (Word.to_int v)

let test_enter_nonargs_zeroed () =
  (* The enclave reads r3..r12 and user SP/LR; all must be zero on a
     fresh entry even though the OS had values there. *)
  let prog =
    [ Insn.I (Insn.Mov (r6, Insn.Reg r3)) ]
    @ List.map (fun i -> Insn.I (Insn.Orr (r6, r6, Insn.Reg (Komodo_machine.Regs.R i)))) [ 4; 5; 7; 8; 9; 10; 11; 12 ]
    @ [ Insn.I (Insn.Orr (r6, r6, Insn.Reg sp)); Insn.I (Insn.Orr (r6, r6, Insn.Reg lr)) ]
    @ exit_with r6
  in
  let os = boot () in
  (* Pollute OS registers first. *)
  let mach =
    List.fold_left
      (fun m i -> State.write_reg m (Regs.R i) (Word.of_int 0xFFFF))
      os.Os.mon.Monitor.mach
      (List.init 8 (fun k -> k + 5))
  in
  let os = { os with Os.mon = { os.Os.mon with Monitor.mach = mach } } in
  let os, h = load_prog os prog in
  let _, e, v = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "success" Errors.Success e;
  Alcotest.(check int) "no residue reaches the enclave" 0 (Word.to_int v)

let test_loop_program () =
  let os = boot () in
  let os, h = load_prog os Progs.sum_to_n in
  let _, e, v =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int 100, Word.zero, Word.zero)
  in
  check_err "success" Errors.Success e;
  Alcotest.(check int) "sum 1..100" 5050 (Word.to_int v)

let test_interrupt_suspends () =
  let os = boot () in
  let os, h = load_prog os Progs.spin_forever in
  let th = List.hd h.Loader.threads in
  let os, e, _ = enter0 (set_irq_budget 100 os) ~thread:th in
  check_err "interrupted" Errors.Interrupted e;
  check_wf "suspended state" os;
  match Pagedb.get os.Os.mon.Monitor.pagedb th with
  | Pagedb.Thread t ->
      Alcotest.(check bool) "entered" true t.Pagedb.entered;
      Alcotest.(check bool) "context saved" true (t.Pagedb.ctx <> None)
  | _ -> Alcotest.fail "thread entry lost"

let test_resume_continues () =
  (* Interrupt a summation loop mid-way; resuming must complete it with
     the correct total — context save/restore is exact. *)
  let os = boot () in
  let os, h = load_prog os Progs.sum_to_n in
  let th = List.hd h.Loader.threads in
  let os, e, _ =
    Os.enter (set_irq_budget 123 os) ~thread:th
      ~args:(Word.of_int 100, Word.zero, Word.zero)
  in
  check_err "interrupted mid-loop" Errors.Interrupted e;
  let os, e, v = Os.resume (clear_irq_budget os) ~thread:th in
  check_err "resumed to completion" Errors.Success e;
  Alcotest.(check int) "exact sum" 5050 (Word.to_int v);
  match Pagedb.get os.Os.mon.Monitor.pagedb th with
  | Pagedb.Thread t ->
      Alcotest.(check bool) "no longer entered" false t.Pagedb.entered;
      Alcotest.(check bool) "context cleared" true (t.Pagedb.ctx = None)
  | _ -> Alcotest.fail "thread entry lost"

let test_repeated_interrupts () =
  (* Many tiny time slices still produce the exact result. *)
  let os = boot () in
  let os, h = load_prog os Progs.sum_to_n in
  let th = List.hd h.Loader.threads in
  let os, e, v =
    Os.run_thread ~budget:37 os ~thread:th
      ~args:(Word.of_int 200, Word.zero, Word.zero)
  in
  check_err "eventually exits" Errors.Success e;
  Alcotest.(check int) "sum 1..200 across many slices" 20100 (Word.to_int v);
  ignore os

let test_reenter_after_exit () =
  let os = boot () in
  let os, h = load_prog os Progs.add_args in
  let th = List.hd h.Loader.threads in
  let os, e, v1 =
    Os.enter os ~thread:th ~args:(Word.of_int 1, Word.of_int 1, Word.zero)
  in
  check_err "first" Errors.Success e;
  let _, e, v2 =
    Os.enter os ~thread:th ~args:(Word.of_int 2, Word.of_int 2, Word.zero)
  in
  check_err "second" Errors.Success e;
  Alcotest.(check int) "first run" 2 (Word.to_int v1);
  Alcotest.(check int) "second run" 4 (Word.to_int v2)

let test_enter_validation () =
  let os = boot () in
  let _, e, _ = enter0 os ~thread:5 in
  check_err "free page is not a thread" Errors.Invalid_thread e;
  let _, e, _ = enter0 os ~thread:99 in
  check_err "out of range" Errors.Invalid_thread e;
  let os = build_manual ~finalise:false os in
  let _, e, _ = enter0 os ~thread:4 in
  check_err "unfinalised enclave" Errors.Not_final e;
  let _, e, _ = enter0 os ~thread:0 in
  check_err "addrspace page is not a thread" Errors.Invalid_thread e

let test_fault_reports_only_type () =
  let os = boot () in
  let os, h = load_prog os Progs.fault_unmapped in
  let os, e, v = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "fault" Errors.Fault e;
  Alcotest.(check int) "no details" 0 (Word.to_int v);
  (* The thread is not suspended; it can be started again. *)
  (match Pagedb.get os.Os.mon.Monitor.pagedb (List.hd h.Loader.threads) with
  | Pagedb.Thread t -> Alcotest.(check bool) "not entered" false t.Pagedb.entered
  | _ -> Alcotest.fail "thread lost");
  let _, e, _ = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "faults again deterministically" Errors.Fault e

let test_undef_fault () =
  let os = boot () in
  let os, h = load_prog os Progs.fault_undefined in
  let _, e, _ = enter0 os ~thread:(List.hd h.Loader.threads) in
  check_err "undefined instruction -> Fault" Errors.Fault e

let test_multiple_threads () =
  (* One enclave, two threads with different entry points, suspended and
     resumed independently. *)
  let os = boot () in
  let code = Uprog.to_page_images (Uprog.code_words Progs.spin_forever) in
  let img = Image.empty ~name:"twothreads" in
  let img = Image.add_blob img ~va:Word.zero ~w:false ~x:true code in
  let img = Image.add_thread img ~entry:Word.zero in
  let img = Image.add_thread img ~entry:Word.zero in
  let os, h =
    match Loader.load os img with
    | Ok r -> r
    | Error e -> Alcotest.failf "load: %a" Loader.pp_error e
  in
  let t1 = List.nth h.Loader.threads 0 and t2 = List.nth h.Loader.threads 1 in
  let os, e, _ = enter0 (set_irq_budget 50 os) ~thread:t1 in
  check_err "t1 suspended" Errors.Interrupted e;
  let os, e, _ = enter0 (set_irq_budget 50 os) ~thread:t2 in
  check_err "t2 suspended while t1 suspended" Errors.Interrupted e;
  check_wf "both suspended" os;
  let _, e, _ = enter0 os ~thread:t1 in
  check_err "t1 re-enter refused" Errors.Already_entered e;
  let os, e, _ = Os.resume (set_irq_budget 50 os) ~thread:t2 in
  check_err "t2 resumes independently" Errors.Interrupted e;
  ignore os

let test_two_enclaves_isolated () =
  (* Two enclaves with private data pages: each stores to the same VA
     and reads back its own value — same virtual address, different
     physical pages, no cross-talk. *)
  let os = boot () in
  let mk os name =
    let code = Uprog.to_page_images (Uprog.code_words Progs.store_load) in
    let img = Image.empty ~name in
    let img = Image.add_blob img ~va:Word.zero ~w:false ~x:true code in
    let img =
      Image.add_secure_page img
        ~mapping:(Mapping.make ~va:(Word.of_int 0x1000) ~w:true ~x:false)
        ~contents:(String.make 4096 '\000')
    in
    let img = Image.add_thread img ~entry:Word.zero in
    match Loader.load os img with
    | Ok r -> r
    | Error e -> Alcotest.failf "load: %a" Loader.pp_error e
  in
  let os, ha = mk os "A" in
  let os, hb = mk os "B" in
  let os, e, va =
    Os.enter os ~thread:(List.hd ha.Loader.threads)
      ~args:(Word.of_int 0x1000, Word.of_int 0xAAAA, Word.zero)
  in
  check_err "A runs" Errors.Success e;
  let os, e, vb =
    Os.enter os ~thread:(List.hd hb.Loader.threads)
      ~args:(Word.of_int 0x1000, Word.of_int 0xBBBB, Word.zero)
  in
  check_err "B runs" Errors.Success e;
  let os, e, va2 =
    Os.enter os ~thread:(List.hd ha.Loader.threads)
      ~args:(Word.of_int 0x1000, Word.of_int 0xAAAA, Word.zero)
  in
  check_err "A runs again" Errors.Success e;
  Alcotest.(check int) "A sees its own store" 0xAAAA (Word.to_int va);
  Alcotest.(check int) "B sees its own store" 0xBBBB (Word.to_int vb);
  Alcotest.(check int) "A unaffected by B" 0xAAAA (Word.to_int va2);
  check_wf "two enclaves" os

let test_shared_page_communication () =
  (* The only legitimate channel: an insecure page mapped into the
     enclave. The enclave publishes a value; the OS reads it. *)
  let os = boot () in
  let os, h = load_prog ~shared:true os Progs.publish_to_shared in
  let os, e, _ =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int 0x2000, Word.of_int 0x5EC2E7, Word.zero)
  in
  check_err "publish" Errors.Success e;
  Alcotest.(check int) "OS reads the published word" 0x5EC2E7
    (Word.to_int (Os.read_word os Os.shared_base))

let test_enclave_reads_os_updates () =
  (* The OS writes into the shared page between runs; the enclave
     checksums it — untrusted input flows in through shared memory. *)
  let os = boot () in
  let os, h = load_prog ~shared:true os Progs.checksum in
  let th = List.hd h.Loader.threads in
  let os = Os.write_bytes os Os.shared_base "\x00\x00\x00\x01\x00\x00\x00\x02" in
  let os, e, v =
    Os.enter os ~thread:th ~args:(Word.of_int 0x2000, Word.of_int 2, Word.zero)
  in
  check_err "first checksum" Errors.Success e;
  Alcotest.(check int) "1+2" 3 (Word.to_int v);
  let os = Os.write_bytes os Os.shared_base "\x00\x00\x00\x0A\x00\x00\x00\x14" in
  let _, e, v =
    Os.enter os ~thread:th ~args:(Word.of_int 0x2000, Word.of_int 2, Word.zero)
  in
  check_err "second checksum" Errors.Success e;
  Alcotest.(check int) "10+20" 30 (Word.to_int v)

let test_cycles_monotone () =
  let os = boot () in
  let os, h = load_prog os Progs.add_args in
  let c0 = Os.cycles os in
  let os, _, _ = enter0 os ~thread:(List.hd h.Loader.threads) in
  Alcotest.(check bool) "cycles advanced" true (Os.cycles os > c0)

let suite =
  [
    Alcotest.test_case "args delivered in r0-r2" `Quick test_enter_args_delivered;
    Alcotest.test_case "non-arg registers zeroed" `Quick test_enter_nonargs_zeroed;
    Alcotest.test_case "loop program" `Quick test_loop_program;
    Alcotest.test_case "interrupt suspends" `Quick test_interrupt_suspends;
    Alcotest.test_case "resume continues exactly" `Quick test_resume_continues;
    Alcotest.test_case "repeated interrupts" `Quick test_repeated_interrupts;
    Alcotest.test_case "re-enter after exit" `Quick test_reenter_after_exit;
    Alcotest.test_case "enter validation" `Quick test_enter_validation;
    Alcotest.test_case "fault releases only the type" `Quick test_fault_reports_only_type;
    Alcotest.test_case "undefined instruction" `Quick test_undef_fault;
    Alcotest.test_case "multiple threads" `Quick test_multiple_threads;
    Alcotest.test_case "two enclaves isolated" `Quick test_two_enclaves_isolated;
    Alcotest.test_case "shared-page publication" `Quick test_shared_page_communication;
    Alcotest.test_case "OS updates visible via shared page" `Quick test_enclave_reads_os_updates;
    Alcotest.test_case "cycles monotone" `Quick test_cycles_monotone;
  ]
