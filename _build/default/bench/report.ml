(** Table rendering for the benchmark reports. *)

let rule width = String.make width '-'

let print_header title =
  Printf.printf "\n%s\n%s\n" title (rule (String.length title))

(** Print a table with left-aligned first column. *)
let print_table ~columns rows =
  let ncols = List.length columns in
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i = 0 then Printf.printf "%-*s" w cell else Printf.printf "  %*s" w cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> rule w) widths |> List.mapi (fun i s -> if i < ncols then s else s));
  List.iter print_row rows

let ratio a b = if b = 0 then "n/a" else Printf.sprintf "%.2fx" (float_of_int a /. float_of_int b)
let cycles c = Printf.sprintf "%d" c
let ms f = Printf.sprintf "%.2f" f
