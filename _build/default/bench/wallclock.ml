(** Bechamel wall-clock benchmarks.

    Simulated cycles (the Table 3 / Figure 5 numbers) are deterministic;
    these additionally measure real wall-clock time of the model itself
    — one Bechamel test per reproduced table/figure — which is the
    conventional "is the simulator usably fast" check. *)

open Bechamel
open Toolkit

module Word = Komodo_machine.Word
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs
module Insn = Komodo_machine.Insn
open Uprog

let exit0 =
  [ Insn.I (Insn.Mov (r1, imm 0)); Insn.I (Insn.Mov (r0, imm 0)); Insn.I (Insn.Svc Word.zero) ]

(* Shared fixtures, built once. *)
let fixture =
  lazy
    (let os = Os.boot ~seed:9 ~npages:64 () in
     let code = Uprog.to_page_images (Uprog.code_words exit0) in
     let img = Image.empty ~name:"wc" in
     let img = Image.add_blob img ~va:Word.zero ~w:false ~x:true code in
     let img = Image.add_thread img ~entry:Word.zero in
     match Loader.load os img with
     | Ok (os, h) -> (os, List.hd h.Loader.threads)
     | Error e -> failwith (Format.asprintf "wallclock fixture: %a" Loader.pp_error e))

let test_null_smc =
  Test.make ~name:"table3/null-smc"
    (Staged.stage (fun () ->
         let os, _ = Lazy.force fixture in
         let _, e, _ = Os.get_phys_pages os in
         assert (Errors.is_success e)))

let test_crossing =
  Test.make ~name:"table3/enter-exit"
    (Staged.stage (fun () ->
         let os, th = Lazy.force fixture in
         let _, e, _ = Os.enter os ~thread:th ~args:(Word.zero, Word.zero, Word.zero) in
         assert (Errors.is_success e)))

let test_sha_page =
  Test.make ~name:"table2/sha256-4k"
    (Staged.stage
       (let page = String.make 4096 'x' in
        fun () -> ignore (Komodo_crypto.Sha256.digest page)))

let test_notary_sign =
  Test.make ~name:"figure5/rsa-sign"
    (Staged.stage
       (let seed = ref 5 in
        let rng () =
          seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
          !seed
        in
        let key = lazy (Komodo_crypto.Rsa.generate ~rng ~bits:1024) in
        let digest = Komodo_crypto.Sha256.digest "bench" in
        fun () -> ignore (Komodo_crypto.Rsa.sign (Lazy.force key) digest)))

let test_nonint_step =
  Test.make ~name:"security/nonint-10-ops"
    (Staged.stage (fun () ->
         match Komodo_sec.Nonint.run_confidentiality ~seed:3 ~nops:10 with
         | None -> ()
         | Some f -> failwith (Format.asprintf "%a" Komodo_sec.Nonint.pp_failure f)))

let all_tests =
  [ test_null_smc; test_crossing; test_sha_page; test_notary_sign; test_nonint_step ]

let run () =
  Report.print_header "Wall-clock (Bechamel, monotonic clock)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ]) in
      let analysed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ v ] -> Printf.sprintf "%12.1f ns/run" v
            | _ -> "n/a"
          in
          Printf.printf "%-28s %s\n" name est)
        analysed)
    all_tests
