bench/main.mli:
