bench/latency.ml: Komodo_core Komodo_machine Komodo_os List Printf Report String
