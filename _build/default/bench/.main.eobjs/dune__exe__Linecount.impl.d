bench/linecount.ml: Array Filename List Printf Report String Sys
