bench/api_sweep.ml: Komodo_core Komodo_machine Komodo_os Komodo_user List Report String
