bench/main.ml: Ablations Api_sweep Array Fig5 Format Komodo_sec Latency Linecount List Microbench Printf Report String Sys Wallclock
