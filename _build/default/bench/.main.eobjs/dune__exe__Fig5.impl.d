bench/fig5.ml: Char Float Format Komodo_core Komodo_machine Komodo_os Komodo_user List Printf Report String
