(* Remote attestation via a trusted verifier enclave.

   Komodo's monitor provides only local attestation — a MAC under a
   boot-time secret that never leaves the machine (or the monitor). The
   paper defers remote attestation to "a trusted enclave (that we have
   yet to implement)" (§4); this example implements and runs it — the
   analogue of SGX's quoting enclave:

     attester enclave --Attest SVC--> local MAC
     verifier enclave --Verify SVC--> checks MAC, signs a *quote*
     remote party     --RSA verify--> trusts the quote, knowing only the
                                      verifier's public key (endorsed by
                                      its own local attestation)

   Run with: dune exec examples/remote_attestation.exe *)

module Word = Komodo_machine.Word
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Mapping = Komodo_core.Mapping
module Uprog = Komodo_user.Uprog
module Verifier = Komodo_user.Verifier
module Sha256 = Komodo_crypto.Sha256
module Bignum = Komodo_crypto.Bignum
module Rsa = Komodo_crypto.Rsa

let verifier_out = Os.shared_base
let verifier_in = Word.add Os.shared_base (Word.of_int 0x1000)
let attester_out = Word.add Os.shared_base (Word.of_int 0x2000)

let verifier_image =
  let zero_page = String.make 4096 '\000' in
  Image.empty ~name:"verifier"
  |> fun img ->
  Image.add_blob img ~va:Verifier.code_va ~w:false ~x:true
    (Uprog.to_page_images (Uprog.native_words ~id:Verifier.native_id))
  |> fun img ->
  Image.add_secure_page img
    ~mapping:(Mapping.make ~va:Verifier.state_va ~w:true ~x:false)
    ~contents:zero_page
  |> fun img ->
  Image.add_insecure_mapping img
    ~mapping:(Mapping.make ~va:Verifier.output_va ~w:true ~x:false)
    ~target:verifier_out
  |> fun img ->
  Image.add_insecure_mapping img
    ~mapping:(Mapping.make ~va:Verifier.input_va ~w:false ~x:false)
    ~target:verifier_in
  |> fun img -> Image.add_thread img ~entry:Verifier.code_va

(* The attester: any enclave that attests to some data — here the
   bytecode attest-and-publish program from the attestation example. *)
let attester_image =
  let prog =
    List.init 8 (fun i ->
        Komodo_machine.Insn.I
          (Komodo_machine.Insn.Mov (Komodo_machine.Regs.R (i + 1), Uprog.imm (i + 10))))
    @ [
        Komodo_machine.Insn.I (Komodo_machine.Insn.Mov (Uprog.r0, Uprog.imm 2));
        Komodo_machine.Insn.I (Komodo_machine.Insn.Svc Word.zero);
        Komodo_machine.Insn.I (Komodo_machine.Insn.Mov (Uprog.r12, Uprog.imm 0x2000));
      ]
    @ List.concat_map
        (fun i ->
          [
            Komodo_machine.Insn.I
              (Komodo_machine.Insn.Str (Komodo_machine.Regs.R (i + 1), Uprog.r12, Uprog.imm (4 * i)));
          ])
        (List.init 8 (fun i -> i))
    @ Uprog.exit_with Uprog.r4
  in
  Image.empty ~name:"attester"
  |> fun img ->
  Image.add_blob img ~va:Word.zero ~w:false ~x:true
    (Uprog.to_page_images (Uprog.code_words prog))
  |> fun img ->
  Image.add_insecure_mapping img
    ~mapping:(Mapping.make ~va:(Word.of_int 0x2000) ~w:true ~x:false)
    ~target:attester_out
  |> fun img -> Image.add_thread img ~entry:Word.zero

let load os img =
  match Loader.load os img with
  | Ok r -> r
  | Error e -> failwith (Format.asprintf "load: %a" Loader.pp_error e)

let () =
  let os = Os.boot ~seed:0xCA11 ~npages:64 () in
  let os, verifier = load os verifier_image in
  let os, attester = load os attester_image in
  let vth = List.hd verifier.Loader.threads in

  (* 1. Initialise the verifier: keygen + local attestation of its key. *)
  let os, err, _ = Os.enter os ~thread:vth ~args:(Word.zero, Word.zero, Word.zero) in
  assert (Errors.is_success err);
  let pub = { Rsa.n = Bignum.of_bytes_be (Os.read_bytes os verifier_out 128); e = Rsa.default_e } in
  let key_mac = Os.read_bytes os (Word.add verifier_out (Word.of_int 128)) 32 in
  (* Machine-local trust bootstrap: the published key is genuine iff its
     local attestation (under the verifier's measurement) checks out. *)
  let key_digest = Sha256.digest (Os.read_bytes os verifier_out 128) in
  let key_trusted =
    Komodo_core.Attest.verify ~key:os.Os.mon.Komodo_core.Monitor.attest_key
      ~measurement:verifier.Loader.measurement ~data:key_digest ~mac:key_mac
  in
  Printf.printf "verifier key endorsed by local attestation: %b\n" key_trusted;
  assert key_trusted;

  (* 2. The attester attests to its data. *)
  let os, err, _ =
    Os.enter os ~thread:(List.hd attester.Loader.threads)
      ~args:(Word.zero, Word.zero, Word.zero)
  in
  assert (Errors.is_success err);
  let mac = Os.read_bytes os attester_out 32 in
  let data =
    String.concat ""
      (List.map (fun i -> Word.to_bytes_be (Word.of_int (i + 10))) (List.init 8 (fun i -> i)))
  in

  (* 3. The OS relays the tuple to the verifier for endorsement. *)
  let os = Os.write_bytes os verifier_in (data ^ attester.Loader.measurement ^ mac) in
  let os, err, verdict =
    Os.enter os ~thread:vth ~args:(Word.of_int Verifier.cmd_endorse, Word.zero, Word.zero)
  in
  assert (Errors.is_success err);
  Printf.printf "verifier endorsed the attestation: %b\n" (Word.to_int verdict = 0);
  assert (Word.to_int verdict = 0);
  let quote = Os.read_bytes os verifier_out 128 in

  (* 4. The remote party checks the quote with only the public key. *)
  let remote_accepts =
    Verifier.check_quote ~pub ~data ~measurement:attester.Loader.measurement ~quote
  in
  Printf.printf "remote party accepts the quote: %b\n" remote_accepts;
  assert remote_accepts;

  (* 5. Forgeries die at the verifier: a corrupted MAC is refused. *)
  let bad_mac = String.mapi (fun i c -> if i = 5 then '\x00' else c) mac in
  let os = Os.write_bytes os verifier_in (data ^ attester.Loader.measurement ^ bad_mac) in
  let os, err, verdict =
    Os.enter os ~thread:vth ~args:(Word.of_int Verifier.cmd_endorse, Word.zero, Word.zero)
  in
  assert (Errors.is_success err);
  Printf.printf "forged attestation refused by verifier: %b\n" (Word.to_int verdict = 1);
  assert (Word.to_int verdict = 1);

  (* 6. And a quote cannot vouch for a different measurement. *)
  let other = Sha256.digest "some other enclave" in
  Printf.printf "quote rejected for a different measurement: %b\n"
    (not (Verifier.check_quote ~pub ~data ~measurement:other ~quote));
  assert (not (Verifier.check_quote ~pub ~data ~measurement:other ~quote));
  ignore os;
  print_endline "remote attestation demo: OK"
