(* A hostile OS attacks the monitor; the monitor (and the hardware
   model) hold the line.

   Replays the attack library of {!Komodo_sec.Attacks}: the two §9.1
   bug classes the paper found only through verification, the lifecycle
   attacks (double mapping, re-entry, premature deallocation), direct
   secure-memory access, register leaks, and the controlled channel —
   then demonstrates that the SGX baseline *does* lose the controlled-
   channel game, reproducing the paper's motivation.

   Run with: dune exec examples/attacks_demo.exe *)

let () =
  print_endline "== Komodo under attack ==";
  let failures =
    List.fold_left
      (fun failures (name, attack) ->
        match attack () with
        | Komodo_sec.Attacks.Defended ->
            Printf.printf "  defended: %s\n" name;
            failures
        | Komodo_sec.Attacks.Leaked msg ->
            Printf.printf "  LEAKED:   %s (%s)\n" name msg;
            failures + 1)
      0 Komodo_sec.Attacks.all_komodo
  in
  assert (failures = 0);

  print_endline "";
  print_endline "== The same game against the SGX baseline ==";
  let secret = [ true; false; true; true; false; false; true; false ] in
  let recovered = Komodo_sec.Attacks.sgx_controlled_channel_leak ~secret_bits:secret in
  let show bits = String.concat "" (List.map (fun b -> if b then "1" else "0") bits) in
  Printf.printf "  victim's secret bits:    %s\n" (show secret);
  Printf.printf "  OS recovers from faults: %s\n" (show recovered);
  assert (recovered = secret);
  print_endline "  -> controlled channel works against SGX, not against Komodo";

  print_endline "";
  print_endline "== Declassification channels behave as specified ==";
  List.iter
    (fun (name, check) ->
      match check () with
      | Komodo_sec.Declass.Ok_channel -> Printf.printf "  as specified: %s\n" name
      | Komodo_sec.Declass.Broken msg -> (
          Printf.printf "  BROKEN: %s (%s)\n" name msg;
          exit 1))
    Komodo_sec.Declass.all;
  print_endline "attacks demo: OK"
