(* Quickstart: boot the platform, build a tiny enclave, run it.

   This walks the whole Komodo stack once: the bootloader reserves
   secure memory and derives the attestation secret; the OS builds an
   enclave through the monitor's SMC API (Table 1); Enter drops into
   user mode under the enclave's page table; the enclave computes and
   exits back through the monitor.

   Run with: dune exec examples/quickstart.exe *)

module Word = Komodo_machine.Word
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs
module Sha256 = Komodo_crypto.Sha256

let () =
  (* 1. Boot: bootloader configures secure world, then Linux-alike runs. *)
  let os = Os.boot ~seed:2026 ~npages:64 () in
  let os, err, npages = Os.get_phys_pages os in
  assert (Errors.is_success err);
  Printf.printf "monitor reports %d secure pages\n" npages;

  (* 2. Describe the enclave: one code page (the add_args program), one
     thread starting at its first instruction. *)
  let code_pages = Uprog.to_page_images (Uprog.code_words Progs.add_args) in
  let image =
    Image.empty ~name:"quickstart"
    |> fun img ->
    Image.add_blob img ~va:Word.zero ~w:false ~x:true code_pages |> fun img ->
    Image.add_thread img ~entry:Word.zero
  in
  Printf.printf "image needs %d secure pages; expected measurement %s...\n"
    (Image.pages_needed image)
    (String.sub (Sha256.to_hex (Image.expected_measurement image)) 0 16);

  (* 3. Load: the untrusted OS replays the image through the monitor. *)
  let os, enclave =
    match Loader.load os image with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "load failed: %a" Loader.pp_error e)
  in
  let thread = List.hd enclave.Loader.threads in
  Printf.printf "enclave loaded: addrspace page %d, thread page %d\n"
    enclave.Loader.addrspace thread;

  (* 4. Enter with three arguments; the enclave adds them and exits. *)
  let os, err, result =
    Os.enter os ~thread ~args:(Word.of_int 40, Word.of_int 1, Word.of_int 1)
  in
  Printf.printf "Enter -> %s, result = %d\n" (Errors.show err) (Word.to_int result);
  assert (Errors.is_success err && Word.to_int result = 42);

  (* 5. Tear down: Stop, then Remove every page. *)
  let os =
    match Loader.unload os enclave with
    | Ok os -> os
    | Error e -> failwith (Format.asprintf "unload failed: %a" Loader.pp_error e)
  in
  Printf.printf "enclave torn down; %d pages free again\n"
    (Komodo_os.Alloc.available os.Os.alloc);
  print_endline "quickstart: OK"
