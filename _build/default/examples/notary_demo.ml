(* The notary enclave (paper §8.2), end to end.

   The notary assigns logical timestamps: on initialisation it draws
   entropy from the monitor, generates an RSA key pair and a monotonic
   counter, and publishes its public key; each notarise call signs
   H(document || counter) and bumps the counter. The OS verifies the
   returned signatures against the published key — and we show a
   tampered document fails.

   Run with: dune exec examples/notary_demo.exe *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Mapping = Komodo_core.Mapping
module Uprog = Komodo_user.Uprog
module Notary = Komodo_user.Notary
module Sha256 = Komodo_crypto.Sha256
module Bignum = Komodo_crypto.Bignum
module Rsa = Komodo_crypto.Rsa

let zero_page = String.make Ptable.page_size '\000'

let notary_image =
  let code = Uprog.to_page_images (Uprog.native_words ~id:Notary.native_id) in
  Image.empty ~name:"notary"
  |> fun img ->
  Image.add_blob img ~va:Notary.code_va ~w:false ~x:true code |> fun img ->
  Image.add_secure_page img
    ~mapping:(Mapping.make ~va:Notary.state_va ~w:true ~x:false)
    ~contents:zero_page
  |> fun img ->
  Image.add_secure_page img
    ~mapping:(Mapping.make ~va:Notary.heap_va ~w:true ~x:false)
    ~contents:zero_page
  |> fun img ->
  (* Shared pages: output (pubkey/signatures to the OS) and a 16 kB
     document input window. *)
  Image.add_insecure_mapping img
    ~mapping:(Mapping.make ~va:Notary.output_va ~w:true ~x:false)
    ~target:Os.shared_base
  |> fun img ->
  List.fold_left
    (fun img i ->
      Image.add_insecure_mapping img
        ~mapping:
          (Mapping.make
             ~va:(Word.add Notary.input_va (Word.of_int (i * Ptable.page_size)))
             ~w:false ~x:false)
        ~target:(Word.add Os.document_base (Word.of_int (i * Ptable.page_size))))
    img
    (List.init 4 (fun i -> i))
  |> fun img -> Image.add_thread img ~entry:Notary.code_va

let () =
  let os = Os.boot ~seed:1701 ~npages:64 () in
  let os, notary =
    match Loader.load os notary_image with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "notary load: %a" Loader.pp_error e)
  in
  let thread = List.hd notary.Loader.threads in
  Printf.printf "notary measurement: %s...\n"
    (String.sub (Sha256.to_hex notary.Loader.measurement) 0 16);

  (* Initialise: the notary collects entropy via GetRandom SVCs and
     generates its key pair (one Enter, several SVC round trips). *)
  let c0 = Os.cycles os in
  let os, err, _ = Os.enter os ~thread ~args:(Word.zero, Word.zero, Word.zero) in
  assert (Errors.is_success err);
  Printf.printf "initialised in %.1f ms (simulated)\n"
    (Komodo_machine.Cost.cycles_to_ms (Os.cycles os - c0));

  (* The public key was published to the shared page. *)
  let pub_n = Bignum.of_bytes_be (Os.read_bytes os Os.shared_base 128) in
  let pub = { Rsa.n = pub_n; e = Rsa.default_e } in
  Printf.printf "published RSA-%d public key\n" (Bignum.bits pub_n);

  (* Ask the notary to attest to its public key; check the MAC via the
     OS's knowledge of the expected measurement. (In a real deployment
     a verifier enclave would do this; the attestation key never leaves
     the monitor, so here we replay the check with the boot secret.) *)
  let os, err, _ =
    Os.enter os ~thread ~args:(Word.of_int Notary.cmd_attest_key, Word.zero, Word.zero)
  in
  assert (Errors.is_success err);
  let mac = Os.read_bytes os (Word.add Os.shared_base (Word.of_int 128)) 32 in
  let expected_data = Sha256.digest (Os.read_bytes os Os.shared_base 128) in
  let genuine =
    Komodo_core.Attest.verify ~key:os.Os.mon.Komodo_core.Monitor.attest_key
      ~measurement:notary.Loader.measurement ~data:expected_data ~mac
  in
  Printf.printf "attestation over public key verifies: %b\n" genuine;
  assert genuine;

  (* Notarise two documents. *)
  let notarise os doc =
    let padded = doc ^ String.make ((4 - (String.length doc mod 4)) mod 4) '\000' in
    let os = Os.write_bytes os Os.document_base padded in
    let os, err, stamp =
      Os.enter os ~thread
        ~args:
          ( Word.of_int Notary.cmd_notarize,
            Notary.input_va,
            Word.of_int (String.length padded) )
    in
    assert (Errors.is_success err);
    let signature = Os.read_bytes os Os.shared_base 128 in
    (os, Word.to_int stamp, padded, signature)
  in
  let os, stamp1, doc1, sig1 = notarise os "the quick brown fox " in
  let os, stamp2, _doc2, _sig2 = notarise os "jumps over the lazy dog!" in
  Printf.printf "notarised two documents: counters %d, %d\n" stamp1 stamp2;
  assert (stamp2 = stamp1 + 1);

  (* OS-side verification: counter was stamp1 - 1 when doc1 was signed. *)
  let digest1 = Sha256.digest (doc1 ^ Word.to_bytes_be (Word.of_int (stamp1 - 1))) in
  Printf.printf "signature on document 1 verifies: %b\n"
    (Rsa.verify pub ~digest:digest1 ~signature:sig1);
  assert (Rsa.verify pub ~digest:digest1 ~signature:sig1);

  (* Tampered document: must not verify. *)
  let tampered = Sha256.digest ("EVIL" ^ Word.to_bytes_be (Word.of_int (stamp1 - 1))) in
  Printf.printf "signature on tampered document verifies: %b\n"
    (Rsa.verify pub ~digest:tampered ~signature:sig1);
  assert (not (Rsa.verify pub ~digest:tampered ~signature:sig1));
  ignore os;
  print_endline "notary demo: OK"
