examples/attestation.mli:
