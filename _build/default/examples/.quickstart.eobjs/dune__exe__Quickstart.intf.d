examples/quickstart.mli:
