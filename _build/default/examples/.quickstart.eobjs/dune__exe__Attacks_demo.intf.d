examples/attacks_demo.mli:
