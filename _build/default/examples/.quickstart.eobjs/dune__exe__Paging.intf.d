examples/paging.mli:
