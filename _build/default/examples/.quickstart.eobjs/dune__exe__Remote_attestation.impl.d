examples/remote_attestation.ml: Format Komodo_core Komodo_crypto Komodo_machine Komodo_os Komodo_user List Printf String
