examples/dynamic_memory.mli:
