examples/attacks_demo.ml: Komodo_sec List Printf String
