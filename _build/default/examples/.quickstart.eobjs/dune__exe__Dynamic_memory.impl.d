examples/dynamic_memory.ml: Format Komodo_core Komodo_machine Komodo_os Komodo_sgx Komodo_user List Printf
