examples/notary_demo.mli:
