examples/self_paging.mli:
