(* Local attestation between two enclaves (paper §4 "Attestation").

   Enclave A MACs 32 bytes of data under the monitor's boot-time secret
   together with A's measurement (the Attest SVC). The OS — untrusted —
   ferries (data, measurement, MAC) to enclave B, which checks it with
   the Verify SVC. B thereby knows the data came from an enclave
   measuring as A on this machine, no matter what the OS did in
   between; we also show a forged MAC and a wrong measurement fail.

   Run with: dune exec examples/attestation.exe *)

module Word = Komodo_machine.Word
module Insn = Komodo_machine.Insn
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Mapping = Komodo_core.Mapping
module Sha256 = Komodo_crypto.Sha256
module Uprog = Komodo_user.Uprog
open Uprog

let shared_a = Os.shared_base (* A publishes its MAC here *)
let shared_b = Word.add Os.shared_base (Word.of_int 0x1000) (* B's inbox *)

(* Enclave A: attest to the data words 1..8 and publish the MAC to the
   shared page mapped at VA 0x2000. *)
let prog_attester : Insn.stmt list =
  List.init 8 (fun i -> Insn.I (Insn.Mov (Komodo_machine.Regs.R (i + 1), imm (i + 1))))
  @ [
      Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.attest));
      Insn.I (Insn.Svc Word.zero);
      Insn.I (Insn.Mov (r12, imm 0x2000));
    ]
  @ List.concat_map
      (fun i ->
        [ Insn.I (Insn.Str (Komodo_machine.Regs.R (i + 1), r12, imm (4 * i))) ])
      (List.init 8 (fun i -> i))
  @ [ Insn.I (Insn.Mov (r4, imm 0)) ]
  @ exit_with r4

(* Enclave B: run Verify over the 96-byte buffer at VA 0x2000 (its
   shared inbox) and exit with the verdict. *)
let prog_verifier : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r1, imm 0x2000));
    Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.verify));
    Insn.I (Insn.Svc Word.zero);
  ]
  @ exit_with r1

let build ~name ~prog ~shared_target =
  let code = Uprog.to_page_images (Uprog.code_words prog) in
  Image.empty ~name
  |> fun img ->
  Image.add_blob img ~va:Word.zero ~w:false ~x:true code |> fun img ->
  Image.add_insecure_mapping img
    ~mapping:(Mapping.make ~va:(Word.of_int 0x2000) ~w:true ~x:false)
    ~target:shared_target
  |> fun img -> Image.add_thread img ~entry:Word.zero

let load os img =
  match Loader.load os img with
  | Ok r -> r
  | Error e -> failwith (Format.asprintf "load: %a" Loader.pp_error e)

let () =
  let os = Os.boot ~seed:77 ~npages:64 () in
  let os, encl_a = load os (build ~name:"attester" ~prog:prog_attester ~shared_target:shared_a) in
  let os, encl_b = load os (build ~name:"verifier" ~prog:prog_verifier ~shared_target:shared_b) in

  (* A attests and publishes its MAC. *)
  let os, err, _ =
    Os.enter os ~thread:(List.hd encl_a.Loader.threads) ~args:(Word.zero, Word.zero, Word.zero)
  in
  assert (Errors.is_success err);
  let mac = Os.read_bytes os shared_a 32 in
  Printf.printf "A's attestation MAC: %s...\n" (String.sub (Sha256.to_hex mac) 0 16);

  (* The OS assembles B's inbox: data || A's measurement || MAC. *)
  let data = String.concat "" (List.map (fun i -> Word.to_bytes_be (Word.of_int (i + 1))) (List.init 8 (fun i -> i))) in
  let verify_with os ~measurement ~mac =
    let os = Os.write_bytes os shared_b (data ^ measurement ^ mac) in
    let os, err, verdict =
      Os.enter os ~thread:(List.hd encl_b.Loader.threads)
        ~args:(Word.zero, Word.zero, Word.zero)
    in
    assert (Errors.is_success err);
    (os, Word.to_int verdict = 1)
  in

  let os, genuine = verify_with os ~measurement:encl_a.Loader.measurement ~mac in
  Printf.printf "B verifies A's attestation: %b\n" genuine;
  assert genuine;

  (* Forged MAC: flip one byte. *)
  let forged = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) mac in
  let os, ok = verify_with os ~measurement:encl_a.Loader.measurement ~mac:forged in
  Printf.printf "B accepts a forged MAC: %b\n" ok;
  assert (not ok);

  (* Wrong measurement: claim the data came from B itself. *)
  let _os, ok = verify_with os ~measurement:encl_b.Loader.measurement ~mac in
  Printf.printf "B accepts a wrong measurement: %b\n" ok;
  assert (not ok);
  print_endline "attestation demo: OK"
