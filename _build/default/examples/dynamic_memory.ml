(* Dynamic memory management (paper §4 "Dynamic allocation"; SGXv2
   comparison).

   The OS grants an enclave spare pages at any time (AllocSpare); they
   become usable only when the enclave itself maps them (MapData /
   InitL2PTable SVCs), and the enclave can free data pages back into
   spares (UnmapData) for the OS to reclaim (Remove). The OS can tell
   *that* a spare was consumed — Remove fails — but not *how*; contrast
   SGXv2, where the OS chooses type, address and permissions of every
   dynamic page.

   Run with: dune exec examples/dynamic_memory.exe *)

module Word = Komodo_machine.Word
module Insn = Komodo_machine.Insn
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs
open Uprog

(* An enclave that: maps its spare page at the VA in r1, writes a value,
   reads it back, unmaps the page again, and exits with the value. *)
let grow_then_shrink : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r12, reg r1)) (* va *);
    Insn.I (Insn.Mov (r11, reg r0)) (* spare page nr *);
    (* MapData(spare, va | RW) *)
    Insn.I (Insn.Mov (r1, reg r11));
    Insn.I (Insn.Orr (r2, r12, imm 0x3));
    Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.map_data));
    Insn.I (Insn.Svc Word.zero);
    (* use the fresh page *)
    Insn.I (Insn.Mov (r5, imm 0xD47A));
    Insn.I (Insn.Str (r5, r12, imm 0));
    Insn.I (Insn.Ldr (r6, r12, imm 0));
    (* UnmapData(page, va | R) *)
    Insn.I (Insn.Mov (r1, reg r11));
    Insn.I (Insn.Orr (r2, r12, imm 0x1));
    Insn.I (Insn.Mov (r0, imm Komodo_user.Svc_nums.unmap_data));
    Insn.I (Insn.Svc Word.zero);
  ]
  @ exit_with r6

let () =
  let os = Os.boot ~seed:7 ~npages:48 () in
  let code = Uprog.to_page_images (Uprog.code_words grow_then_shrink) in
  let image =
    Image.empty ~name:"dynamic"
    |> fun img ->
    Image.add_blob img ~va:Word.zero ~w:false ~x:true code |> fun img ->
    Image.add_thread img ~entry:Word.zero |> fun img -> Image.with_spares img 1
  in
  let os, enclave =
    match Loader.load os image with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "load: %a" Loader.pp_error e)
  in
  let spare = List.hd enclave.Loader.spares in
  let thread = List.hd enclave.Loader.threads in
  Printf.printf "granted spare page %d to the enclave\n" spare;

  (* The enclave maps, uses, and frees the page in one run. *)
  let os, err, v =
    Os.enter os ~thread ~args:(Word.of_int spare, Word.of_int 0x5000, Word.zero)
  in
  Printf.printf "enclave grow/use/shrink -> %s, value %#x\n" (Errors.show err)
    (Word.to_int v);
  assert (Errors.is_success err && Word.to_int v = 0xD47A);

  (* Because the enclave freed it, the OS can reclaim the spare. *)
  let os, err = Os.remove os ~page:spare in
  Printf.printf "OS reclaims the spare: %s\n" (Errors.show err);
  assert (Errors.is_success err);

  (* The measurement never changed: dynamic pages are unmeasured. *)
  Printf.printf "measurement unchanged by dynamic allocation: %b\n"
    (match
       Komodo_core.Pagedb.get os.Os.mon.Komodo_core.Monitor.pagedb
         enclave.Loader.addrspace
     with
    | Komodo_core.Pagedb.Addrspace a ->
        Komodo_core.Measure.digest a.Komodo_core.Pagedb.measurement
        = Some enclave.Loader.measurement
    | _ -> false);

  (* SGXv2 contrast: there the OS dictates every dynamic page's type,
     address and permissions via EAUG. *)
  let sgx = Komodo_sgx.Lifecycle.make ~epc_size:8 in
  let sgx =
    match Komodo_sgx.Lifecycle.ecreate sgx ~secs:0 with Ok t -> t | Error _ -> assert false
  in
  let sgx =
    match Komodo_sgx.Lifecycle.einit sgx ~secs:0 with Ok t -> t | Error _ -> assert false
  in
  (match Komodo_sgx.Lifecycle.eaug sgx ~secs:0 ~index:3 ~va:(Word.of_int 0x5000) with
  | Ok _ ->
      print_endline
        "SGXv2 EAUG: OS chose the page, its address and its permissions \
         (the side channel Komodo closes)"
  | Error _ -> assert false);
  print_endline "dynamic memory demo: OK"
