(* Enclave self-paging through the dispatcher interface (paper §9.2).

   The paper's future work proposes replacing transparent save/restore
   with a LibOS-style dispatcher: explicit user-mode upcalls to resume a
   thread or report an exception, permitting enclave self-paging without
   exposing page faults to the untrusted OS. This repository implements
   that design; here an enclave demand-maps its own heap:

   1. the enclave registers a fault dispatcher (SetDispatcher SVC);
   2. its main code touches an unmapped page and faults;
   3. the monitor upcalls the dispatcher *inside the enclave* with the
      fault class and faulting address — the OS sees nothing;
   4. the dispatcher maps one of the enclave's spare pages at the
      faulting address (MapData SVC) and resumes (ResumeFaulted SVC);
   5. the faulting load retries, now hitting a fresh zero-filled page.

   Run with: dune exec examples/self_paging.exe *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Mapping = Komodo_core.Mapping
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs

let dispatcher_va = Word.of_int 0x4000

let () =
  let os = Os.boot ~seed:0x5E1F ~npages:48 () in
  let main_pages = Uprog.to_page_images (Uprog.code_words Progs.self_paging_main) in
  let disp_pages = Uprog.to_page_images (Uprog.code_words Progs.self_paging_dispatcher) in
  let image =
    Image.empty ~name:"self-paging"
    |> fun img ->
    Image.add_blob img ~va:Word.zero ~w:false ~x:true main_pages |> fun img ->
    Image.add_blob img ~va:dispatcher_va ~w:false ~x:true disp_pages |> fun img ->
    (* A RW stash page where main leaves the spare-page number. *)
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:(Word.of_int 0x1000) ~w:true ~x:false)
      ~contents:(String.make Ptable.page_size '\000')
    |> fun img ->
    Image.add_thread img ~entry:Word.zero |> fun img -> Image.with_spares img 1
  in
  let os, enclave =
    match Loader.load os image with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "load: %a" Loader.pp_error e)
  in
  let spare = List.hd enclave.Loader.spares in
  let thread = List.hd enclave.Loader.threads in
  Printf.printf "enclave loaded with dispatcher at %s, spare page %d\n"
    (Word.show dispatcher_va) spare;

  (* One Enter: the fault, the upcall, the demand-map and the retry all
     happen inside it. The OS observes a single successful call. *)
  let os, err, v =
    Os.enter os ~thread ~args:(Word.of_int spare, dispatcher_va, Word.zero)
  in
  Printf.printf "Enter -> %s, value = %#x\n" (Errors.show err) (Word.to_int v);
  assert (Errors.is_success err);
  assert (Word.to_int v = 0xD15E);
  print_endline "the OS never observed the page fault: no Fault code, no address";

  (* Contrast: without a dispatcher the same access pattern reports a
     bare Fault to the OS. *)
  let os2 = Os.boot ~seed:0x5E1F ~npages:48 () in
  let bare =
    Image.empty ~name:"bare"
    |> fun img ->
    Image.add_blob img ~va:Word.zero ~w:false ~x:true
      (Uprog.to_page_images (Uprog.code_words Progs.fault_unmapped))
    |> fun img -> Image.add_thread img ~entry:Word.zero
  in
  (match Loader.load os2 bare with
  | Ok (os2, h) ->
      let _, err, _ =
        Os.enter os2 ~thread:(List.hd h.Loader.threads)
          ~args:(Word.zero, Word.zero, Word.zero)
      in
      Printf.printf "without a dispatcher, the same fault exits with: %s\n"
        (Errors.show err)
  | Error e -> failwith (Format.asprintf "%a" Loader.pp_error e));
  ignore os;
  print_endline "self-paging demo: OK"
