(* Full enclave self-paging: a 4-page working set on 1 physical page.

   The paper's §9.2 motivates a dispatcher interface precisely so that
   enclaves can demand-page their own memory "without exposing page
   faults to the untrusted OS" (citing Nemesis self-paging and Eleos).
   This demo runs that whole vision on the implemented dispatcher:

   - the enclave's heap is 4 virtual pages; it owns ONE spare page;
   - every touch of a non-resident page faults into the enclave's own
     paging dispatcher (the OS sees nothing);
   - the dispatcher evicts the resident page into an insecure swap
     window — XOR-enciphered, so the OS sees only ciphertext — unmaps
     it, maps the spare at the faulting address, and decrypts any
     previously evicted contents back;
   - the program writes and reads all 4 pages and exits with the right
     answer, proving every eviction round-trip preserved the data.

   Run with: dune exec examples/paging.exe *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Pagedb = Komodo_core.Pagedb
module Monitor = Komodo_core.Monitor
module Mapping = Komodo_core.Mapping
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs

let swap_frames = Os.shared_base

let image =
  Image.empty ~name:"selfpager"
  |> fun img ->
  Image.add_blob img ~va:Word.zero ~w:false ~x:true
    (Uprog.to_page_images (Uprog.code_words Progs.selfpager_main))
  |> fun img ->
  Image.add_blob img ~va:(Word.of_int Progs.selfpager_disp_va) ~w:false ~x:true
    (Uprog.to_page_images (Uprog.code_words Progs.selfpager_dispatcher))
  |> fun img ->
  Image.add_secure_page img
    ~mapping:(Mapping.make ~va:(Word.of_int Progs.selfpager_book) ~w:true ~x:false)
    ~contents:(String.make Ptable.page_size '\000')
  |> fun img ->
  (* The 4-page insecure swap window. *)
  List.fold_left
    (fun img i ->
      Image.add_insecure_mapping img
        ~mapping:
          (Mapping.make
             ~va:(Word.of_int (Progs.selfpager_swap + (i * Ptable.page_size)))
             ~w:true ~x:false)
        ~target:(Word.add swap_frames (Word.of_int (i * Ptable.page_size))))
    img
    (List.init 4 (fun i -> i))
  |> fun img ->
  Image.add_thread img ~entry:Word.zero |> fun img -> Image.with_spares img 1

let () =
  let os = Os.boot ~seed:0x5ECE ~npages:48 () in
  let os, h =
    match Loader.load os image with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "load: %a" Loader.pp_error e)
  in
  let spare = List.hd h.Loader.spares in
  Printf.printf "4-page working set, 1 physical page (spare %d)\n" spare;

  let c0 = Os.cycles os in
  let os, err, v =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, Word.zero, Word.zero)
  in
  Printf.printf "Enter -> %s, sum = %#x (expected 0x286)\n" (Errors.show err)
    (Word.to_int v);
  assert (Errors.is_success err && Word.to_int v = 0x286);
  Printf.printf "whole run: one OS-visible call, %.2f ms simulated\n"
    (Komodo_machine.Cost.cycles_to_ms (Os.cycles os - c0));

  (* What did the OS get to see? Only ciphertext in the swap window. *)
  let plaintext0 = 0xA0 in
  let swapped0 = Word.to_int (Os.read_word os swap_frames) in
  Printf.printf "swap slot 0, word 0: %#x (plaintext would be %#x)\n" swapped0
    plaintext0;
  assert (swapped0 = plaintext0 lxor Progs.selfpager_key);
  assert (swapped0 <> plaintext0);

  (* And the one physical page is currently a data page of the enclave;
     nothing else about the paging was observable. *)
  (match Pagedb.get os.Os.mon.Monitor.pagedb spare with
  | Pagedb.DataPage _ -> print_endline "spare is resident as a data page"
  | _ -> assert false);
  print_endline "self-paging-with-eviction demo: OK"
