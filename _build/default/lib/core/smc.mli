(** Secure monitor calls: the OS-facing API (Table 1, upper half) and
    the enclave-execution state machine of Figure 3.

    {!handle} is the top level of the specification — it relates the
    machine state and PageDB just after an SMC exception to the states
    just before returning to the OS. Across every SMC the register
    discipline holds (non-volatile and banked registers preserved,
    non-return registers zeroed, insecure memory untouched), and
    Enter/Resume nest the whole user-execution/SVC loop inside one
    SMC. *)

module Word = Komodo_machine.Word

val log_src : Logs.src
(** Monitor call trace source; enable with
    [Logs.Src.set_level Smc.log_src (Some Logs.Debug)]. *)

val call_name : int -> string

(** Call numbers (r0 at SMC entry). *)

val sm_get_phys_pages : int
val sm_init_addrspace : int
val sm_init_thread : int
val sm_init_l2ptable : int
val sm_alloc_spare : int
val sm_map_secure : int
val sm_map_insecure : int
val sm_finalise : int
val sm_enter : int
val sm_resume : int
val sm_stop : int
val sm_remove : int

val handle : ?exec:Uexec.t -> Monitor.t -> Monitor.t * Errors.t * Word.t
(** Handle an SMC: the machine must be in monitor mode with the call in
    r0-r4 (just after the SMC exception). Returns with the machine back
    in the OS's mode and world, r0/r1 holding the result, and every
    other OS-visible register preserved.
    @raise Invalid_argument if not in monitor mode. *)

val invoke :
  ?exec:Uexec.t ->
  Monitor.t ->
  call:int ->
  args:Word.t list ->
  Monitor.t * Errors.t * Word.t
(** OS-side convenience: from normal world, place the call in the
    argument registers, take the SMC exception, handle, return.
    @raise Invalid_argument from the secure world or with more than
    four arguments. *)
