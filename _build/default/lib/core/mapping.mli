(** The [Mapping] argument of the page-mapping calls (Table 1).

    One word packs the page-aligned enclave virtual address with the
    requested permissions: bit 0 read (must be set), bit 1 write,
    bit 2 execute. *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable

type t = { va : Word.t;  (** page-aligned *) perms : Ptable.perms }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

val encode : t -> Word.t

val decode : Word.t -> t option
(** Validates as it decodes: the address must be page-aligned (modulo
    the permission bits), readable, inside the 1 GB enclave space, and
    carry no stray bits. *)

val make : va:Word.t -> w:bool -> x:bool -> t
(** @raise Invalid_argument on an unaligned or out-of-range address. *)
