(** Local attestation (§4).

    An attestation is a MAC, under a secret key generated at boot from
    the hardware randomness source, over the attesting enclave's
    measurement and 32 bytes of enclave-provided data — typically a
    public-key binding used to bootstrap an encrypted channel. The
    monitor offers creation and verification; remote attestation is
    deferred to a trusted enclave ({!Komodo_user.Verifier} implements
    it). *)

val data_words : int
(** 8 words (32 bytes) of enclave-provided data. *)

val mac_words : int
(** 8 words (32 bytes) of MAC. *)

val create : key:string -> measurement:string -> data:string -> string
(** The 32-byte attestation MAC.
    @raise Invalid_argument unless measurement and data are 32 bytes. *)

val verify : key:string -> measurement:string -> data:string -> mac:string -> bool
(** Does [mac] attest that an enclave measured as [measurement] vouched
    for [data] on this boot? Constant-shape comparison. *)

val mac_cycles : int
(** Cycle cost of one attestation MAC (HMAC compressions + marshalling). *)

val verify_cycles : int
