(** Local attestation (§4).

    An attestation is a MAC, under a secret key generated at boot from
    the hardware randomness source, over (i) the attesting enclave's
    measurement and (ii) 32 bytes of enclave-provided data — typically a
    public-key binding used to bootstrap an encrypted channel. The
    monitor offers enclaves both creation and verification, which
    suffices for local (same-machine) attestation; remote attestation is
    deferred to a trusted enclave, as in the paper. *)

module Word = Komodo_machine.Word
module Hmac = Komodo_crypto.Hmac
module Cost = Komodo_machine.Cost

let data_words = 8
let mac_words = 8

let message ~measurement ~data =
  if String.length measurement <> 32 then invalid_arg "Attest: measurement not 32 bytes";
  if String.length data <> 32 then invalid_arg "Attest: data not 32 bytes";
  measurement ^ data

(** [create ~key ~measurement ~data] is the 32-byte attestation MAC. *)
let create ~key ~measurement ~data = Hmac.mac ~key (message ~measurement ~data)

(** [verify ~key ~measurement ~data ~mac]: does [mac] attest that an
    enclave measured as [measurement] vouched for [data] on this boot? *)
let verify ~key ~measurement ~data ~mac =
  Hmac.verify ~key (message ~measurement ~data) mac

(** Cycle cost of one attestation MAC: the HMAC compressions over a
    64-byte message plus fixed marshalling overhead. *)
let mac_cycles =
  (Hmac.compressions 64 * Cost.sha256_block) + (Cost.mem_access * 48)

(** Verification recomputes the MAC over caller-supplied measurement and
    data (marshalled from the enclave's buffer) and adds a
    constant-shape compare. *)
let verify_cycles = mac_cycles + (Cost.alu * 64) + (Cost.mem_access * 16) + 900
