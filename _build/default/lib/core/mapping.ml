(** The [Mapping] argument of the page-mapping calls.

    A single word packs the page-aligned enclave virtual address with
    the requested permissions, exactly as the API of Table 1 passes
    them. Permissions sit in the low (page-offset) bits: bit 0 read
    (must be set), bit 1 write, bit 2 execute. *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable

type t = { va : Word.t; (* page-aligned *) perms : Ptable.perms }
[@@deriving eq, show { with_path = false }]

let encode t =
  let p =
    1 lor (if t.perms.Ptable.w then 2 else 0) lor if t.perms.Ptable.x then 4 else 0
  in
  Word.logor t.va (Word.of_int p)

(** Decode and validate: the address must be page-aligned (modulo the
    permission bits), readable, and inside the enclave's 1 GB space. *)
let decode w =
  let va = Ptable.page_base w in
  let bits = Word.to_int (Ptable.page_offset w) in
  if bits land 1 = 0 then None (* unreadable mappings are meaningless *)
  else if bits land lnot 7 <> 0 then None (* stray offset bits *)
  else if not (Word.ult va Ptable.va_limit) then None
  else Some { va; perms = { Ptable.w = bits land 2 <> 0; x = bits land 4 <> 0 } }

let make ~va ~w ~x =
  if not (Ptable.page_aligned va) then invalid_arg "Mapping.make: unaligned va";
  if not (Word.ult va Ptable.va_limit) then invalid_arg "Mapping.make: va beyond 1 GB";
  { va; perms = { Ptable.w; x } }
