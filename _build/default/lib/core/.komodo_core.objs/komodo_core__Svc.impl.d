lib/core/svc.pp.ml: Attest Errors Komodo_crypto Komodo_machine Komodo_tz List Mapping Measure Monitor Pagedb
