lib/core/attest.pp.ml: Komodo_crypto Komodo_machine String
