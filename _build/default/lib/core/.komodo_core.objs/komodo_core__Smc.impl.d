lib/core/smc.pp.ml: Errors Komodo_machine Komodo_tz List Logs Mapping Measure Monitor Option Pagedb Printf String Svc Uexec
