lib/core/mapping.pp.ml: Komodo_machine Ppx_deriving_runtime
