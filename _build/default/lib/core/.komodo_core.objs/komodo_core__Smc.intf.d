lib/core/smc.pp.mli: Errors Komodo_machine Logs Monitor Uexec
