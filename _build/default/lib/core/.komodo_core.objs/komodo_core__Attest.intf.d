lib/core/attest.pp.mli:
