lib/core/monitor.pp.ml: Errors Komodo_machine Komodo_tz Pagedb
