lib/core/errors.pp.mli: Format Komodo_machine
