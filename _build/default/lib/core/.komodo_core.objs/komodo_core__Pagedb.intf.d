lib/core/pagedb.pp.mli: Format Komodo_machine Komodo_tz Measure
