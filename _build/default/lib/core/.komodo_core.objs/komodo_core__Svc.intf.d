lib/core/svc.pp.mli: Errors Komodo_machine Monitor Pagedb
