lib/core/uexec.pp.ml: Array Komodo_crypto Komodo_machine List Printf
