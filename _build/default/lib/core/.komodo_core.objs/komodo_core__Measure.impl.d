lib/core/measure.pp.ml: Komodo_crypto Komodo_machine List Mapping String
