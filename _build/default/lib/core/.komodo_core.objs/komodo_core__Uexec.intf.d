lib/core/uexec.pp.mli: Komodo_machine
