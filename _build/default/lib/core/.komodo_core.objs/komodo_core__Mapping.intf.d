lib/core/mapping.pp.mli: Format Komodo_machine
