lib/core/measure.pp.mli: Komodo_crypto Komodo_machine Mapping
