lib/core/monitor.pp.mli: Errors Komodo_machine Komodo_tz Pagedb
