lib/core/errors.pp.ml: Komodo_machine Ppx_deriving_runtime
