lib/core/pagedb.pp.ml: Format Int Komodo_machine Komodo_tz List Map Measure Option Ppx_deriving_runtime Printf
