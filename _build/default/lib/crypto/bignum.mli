(** Arbitrary-precision natural numbers.

    Built from scratch (the sealed environment has no zarith) to support
    the RSA signatures used by the notary enclave of §8.2. Numbers are
    immutable, little-endian limb arrays in base 2^26 so limb products
    fit comfortably in OCaml's 63-bit native ints. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Failure if the value exceeds [max_int]. *)

val of_bytes_be : string -> t
val to_bytes_be : ?pad_to:int -> t -> string
(** Big-endian bytes, minimal length unless [pad_to] asks for left
    zero-padding. @raise Invalid_argument if the value needs more than
    [pad_to] bytes. *)

val of_hex : string -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val bits : t -> int
(** Position of the highest set bit + 1; [bits zero = 0]. *)

val test_bit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    @raise Division_by_zero on zero divisor. *)

val rem : t -> t -> t
val modpow : base:t -> exp:t -> modulus:t -> t
val gcd : t -> t -> t

val modinv : t -> t -> t option
(** [modinv a m] is the inverse of [a] modulo [m], if coprime. *)

val is_probable_prime : t -> bool
(** Miller-Rabin with a fixed deterministic witness set (sound for all
    64-bit values; strongly probabilistic beyond). *)

val random_bits : rng:(unit -> int) -> int -> t
(** A uniformly random [n]-bit number with the top bit set, drawing
    32-bit values from [rng]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Decimal rendering. *)
