(** Textbook RSA with PKCS#1 v1.5-style signature padding.

    Used by the notary enclave (§8.2) and the attestation-verifier
    enclave: key generation draws from a caller-supplied RNG, so the
    deterministic platform CSPRNG gives reproducible keys for testing. *)

type pub = { n : Bignum.t; e : Bignum.t }
type priv = { pub : pub; d : Bignum.t }

val default_e : Bignum.t
(** 65537. *)

val generate : rng:(unit -> int) -> bits:int -> priv
(** A key pair with a modulus of about [bits] bits; [rng] supplies
    32-bit random values. *)

val key_bytes : pub -> int
(** Modulus length in bytes = signature length. *)

val sign : priv -> string -> string
(** Sign a 32-byte digest (00 01 FF..FF 00 ‖ digest padding).
    @raise Invalid_argument if the modulus is too small. *)

val verify : pub -> digest:string -> signature:string -> bool

val sign_cycles : bits:int -> int
(** Estimated signing cost on the modelled 900 MHz core (cubic in
    modulus size; ~9 Mcycles at 1024 bits). Drives Figure 5. *)

val verify_cycles : bits:int -> int
(** Much cheaper: e = 65537 needs only 17 modular multiplications. *)
