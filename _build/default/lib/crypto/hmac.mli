(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    Komodo attestations are MACs under a boot-time secret over the
    attesting enclave's measurement and 32 bytes of enclave-provided
    data (§4); a plain MAC suffices for local attestation because both
    creation and checking happen inside the monitor. *)

val block_size : int
(** 64 bytes. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is HMAC-SHA256(key, msg), 32 raw bytes. Keys longer
    than a block are hashed down first. *)

val verify : key:string -> string -> string -> bool
(** [verify ~key msg tag]: constant-shape comparison (always scans the
    full length — the model analogue of a data-independent compare). *)

val compressions : int -> int
(** SHA-256 compressions a MAC over [n] message bytes costs; used by
    the cycle cost model for Attest/Verify. *)
