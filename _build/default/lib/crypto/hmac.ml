(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    Komodo attestations are MACs under a boot-time secret over the
    attesting enclave's measurement and 32 bytes of enclave-provided
    data (§4). The monitor both creates ([Attest]) and checks
    ([Verify]) these MACs, so a plain MAC (rather than signatures)
    suffices for local attestation. *)

let block_size = 64

let normalize_key key =
  let key =
    if String.length key > block_size then Sha256.digest key else key
  in
  key ^ String.make (block_size - String.length key) '\x00'

let xor_bytes s c = String.map (fun ch -> Char.chr (Char.code ch lxor c)) s

(** [mac ~key msg] is HMAC-SHA256(key, msg), 32 raw bytes. *)
let mac ~key msg =
  let k = normalize_key key in
  let inner = Sha256.digest (xor_bytes k 0x36 ^ msg) in
  Sha256.digest (xor_bytes k 0x5c ^ inner)

(** Constant-shape comparison (the model analogue of a data-independent
    compare: always scans the full length). *)
let verify ~key msg tag =
  let computed = mac ~key msg in
  String.length tag = String.length computed
  &&
  let diff = ref 0 in
  String.iteri
    (fun i c -> diff := !diff lor (Char.code c lxor Char.code computed.[i]))
    tag;
  !diff = 0

(** Number of SHA-256 compressions a MAC over [n] message bytes costs:
    two keyed blocks plus the padded message on the inner hash, plus the
    outer hash of two blocks (key block + padded digest). Used by the
    cycle cost model for Attest/Verify. *)
let compressions n =
  let inner = 1 + ((n + 1 + 8 + 63) / 64) in
  let outer = 1 + 1 in
  inner + outer
