(** Textbook RSA with PKCS#1 v1.5-style signature padding.

    Used by the notary enclave (§8.2): on first entry the notary
    generates an RSA key pair, and each notarisation hashes the document
    with the monotonic counter and signs the digest. Key generation draws
    primes from the caller-supplied RNG, so a deterministic RNG (the
    platform CSPRNG model) gives reproducible keys for testing. *)

type pub = { n : Bignum.t; e : Bignum.t }
type priv = { pub : pub; d : Bignum.t }

let default_e = Bignum.of_int 65537

let rec gen_prime ~rng bits =
  let candidate = Bignum.random_bits ~rng bits in
  (* Force odd. *)
  let candidate =
    if Bignum.test_bit candidate 0 then candidate
    else Bignum.add candidate Bignum.one
  in
  if Bignum.is_probable_prime candidate then candidate
  else gen_prime ~rng bits

(** Generate a key pair with a modulus of [bits] bits (e = 65537).
    [rng] supplies 32-bit random values. *)
let rec generate ~rng ~bits =
  let half = bits / 2 in
  let p = gen_prime ~rng half in
  let q = gen_prime ~rng (bits - half) in
  if Bignum.equal p q then generate ~rng ~bits
  else begin
    let n = Bignum.mul p q in
    let p1 = Bignum.sub p Bignum.one and q1 = Bignum.sub q Bignum.one in
    let phi = Bignum.mul p1 q1 in
    match Bignum.modinv default_e phi with
    | None -> generate ~rng ~bits (* e not coprime to phi; retry *)
    | Some d -> { pub = { n; e = default_e }; d }
  end

let key_bytes pub = (Bignum.bits pub.n + 7) / 8

(** EMSA-PKCS1-v1_5-style encoding of a 32-byte digest (we bind the raw
    digest rather than a DER DigestInfo; the structure — 00 01 FF..FF 00
    digest — is what matters for the model). *)
let pad_digest ~k digest =
  if String.length digest + 11 > k then invalid_arg "Rsa.pad_digest: modulus too small";
  let ps = String.make (k - String.length digest - 3) '\xFF' in
  "\x00\x01" ^ ps ^ "\x00" ^ digest

let sign priv digest =
  let k = key_bytes priv.pub in
  let m = Bignum.of_bytes_be (pad_digest ~k digest) in
  Bignum.to_bytes_be ~pad_to:k (Bignum.modpow ~base:m ~exp:priv.d ~modulus:priv.pub.n)

let verify pub ~digest ~signature =
  let k = key_bytes pub in
  String.length signature = k
  &&
  let s = Bignum.of_bytes_be signature in
  Bignum.compare s pub.n < 0
  &&
  let m = Bignum.modpow ~base:s ~exp:pub.e ~modulus:pub.n in
  String.equal (Bignum.to_bytes_be ~pad_to:k m) (pad_digest ~k digest)

(** Estimated signing cost in cycles on the modelled 900 MHz Cortex-A7.
    RSA-1024 private-key ops land near 9-10 ms on that class of core;
    cost scales cubically with modulus size. Used by the notary's cycle
    accounting for Figure 5. *)
let sign_cycles ~bits =
  let r = float_of_int bits /. 1024. in
  int_of_float (9.0e6 *. r *. r *. r)

let verify_cycles ~bits =
  (* e = 65537: 17 modular multiplications instead of ~1.5*bits. *)
  max 1 (sign_cycles ~bits * 17 / (3 * bits / 2))
