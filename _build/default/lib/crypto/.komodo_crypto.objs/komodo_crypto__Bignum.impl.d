lib/crypto/bignum.pp.ml: Array Buffer Char Format Int List String
