lib/crypto/sha256.pp.ml: Array Buffer Bytes Char Komodo_machine List Printf String
