lib/crypto/bignum.pp.mli: Format
