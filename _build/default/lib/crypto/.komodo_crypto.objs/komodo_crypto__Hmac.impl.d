lib/crypto/hmac.pp.ml: Char Sha256 String
