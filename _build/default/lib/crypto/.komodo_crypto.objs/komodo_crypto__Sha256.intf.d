lib/crypto/sha256.pp.mli: Komodo_machine
