lib/crypto/rsa.pp.ml: Bignum String
