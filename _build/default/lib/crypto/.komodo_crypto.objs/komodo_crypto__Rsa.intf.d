lib/crypto/rsa.pp.mli: Bignum
