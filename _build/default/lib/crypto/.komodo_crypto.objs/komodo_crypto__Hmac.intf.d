lib/crypto/hmac.pp.mli:
