(* Little-endian limbs in base 2^26; invariant: no trailing zero limb. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec go n acc = if n = 0 then acc else go (n lsr limb_bits) ((n land limb_mask) :: acc) in
  normalize (Array.of_list (List.rev (go n [])))

let one = of_int 1
let two = of_int 2

let to_int a =
  Array.to_list a |> List.rev
  |> List.fold_left
       (fun acc l ->
         if acc > (max_int - l) lsr limb_bits then failwith "Bignum.to_int: overflow"
         else (acc lsl limb_bits) lor l)
       0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let bits a =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * limb_bits) + width 0

let test_bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left a n =
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / limb_bits and off = n mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a n =
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / limb_bits and off = n mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let r = Array.make (la - limbs) 0 in
      for i = 0 to la - limbs - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi =
          if off > 0 && i + limbs + 1 < la then
            (a.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Knuth Algorithm D (TAOCP 4.3.1) specialised to base 2^26. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* Single-limb divisor: simple long division. *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize q, of_int !r)
  end
  else begin
    (* Normalise so the divisor's top limb has its high bit set. *)
    let shift =
      let top = b.(Array.length b - 1) in
      let rec go s = if top lsl s land (base lsr 1) <> 0 then s else go (s + 1) in
      go 0
    in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u - n in
    (* Working copy of u with one extra high limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vsecond = v.(n - 2) in
    for j = m downto 0 do
      let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let qhat = ref (min (num / vtop) (base - 1)) in
      let rhat = ref (num - (!qhat * vtop)) in
      while
        !rhat < base && !qhat * vsecond > (!rhat lsl limb_bits) lor w.(j + n - 2)
      do
        decr qhat;
        rhat := !rhat + vtop
      done;
      (* Multiply-subtract qhat * v from w[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = w.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          w.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          w.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add v back. *)
        w.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + v.(i) + !carry in
          w.(i + j) <- s land limb_mask;
          carry := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry) land limb_mask
      end
      else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r shift)
  end

let rem a b = snd (divmod a b)

let modpow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let b = rem b modulus in
    let result = ref one and b = ref b in
    let nbits = bits exp in
    for i = 0 to nbits - 1 do
      if test_bit exp i then result := rem (mul !result !b) modulus;
      if i < nbits - 1 then b := rem (mul !b !b) modulus
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid on signed limb pairs, tracked as (sign, magnitude). *)
let modinv a m =
  if is_zero m then invalid_arg "Bignum.modinv: zero modulus";
  let rec go r0 r1 (s0_neg, s0) (s1_neg, s1) =
    if is_zero r1 then
      if equal r0 one then Some (if s0_neg then sub m (rem s0 m) else rem s0 m)
      else None
    else
      let q, r = divmod r0 r1 in
      (* s2 = s0 - q * s1, in sign-magnitude form. *)
      let qs1 = mul q s1 in
      let s2 =
        if s0_neg = s1_neg then
          if compare s0 qs1 >= 0 then (s0_neg, sub s0 qs1) else (not s0_neg, sub qs1 s0)
        else (s0_neg, add s0 qs1)
      in
      go r1 r (s1_neg, s1) s2
  in
  go (rem a m) m (false, one) (false, zero)

(* Miller-Rabin with the deterministic witness set for 64-bit inputs;
   the same witnesses give overwhelming confidence for larger inputs. *)
let is_probable_prime n =
  if compare n two < 0 then false
  else if equal n two then true
  else if not (test_bit n 0) then false
  else begin
    let small = [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47 ] in
    if List.exists (fun p -> equal n (of_int p)) small then true
    else if List.exists (fun p -> is_zero (rem n (of_int p))) small then false
    else begin
      let n1 = sub n one in
      let rec split d r = if test_bit d 0 then (d, r) else split (shift_right d 1) (r + 1) in
      let d, r = split n1 0 in
      let witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ] in
      let check a =
        let a = of_int a in
        if is_zero (rem a n) then true
        else begin
          let x = ref (modpow ~base:a ~exp:d ~modulus:n) in
          if equal !x one || equal !x n1 then true
          else begin
            let ok = ref false in
            (try
               for _ = 1 to r - 1 do
                 x := rem (mul !x !x) n;
                 if equal !x n1 then begin
                   ok := true;
                   raise Exit
                 end
               done
             with Exit -> ());
            !ok
          end
        end
      in
      List.for_all check witnesses
    end
  end

let random_bits ~rng n =
  if n <= 0 then invalid_arg "Bignum.random_bits: need positive width";
  let nwords = (n + 31) / 32 in
  let acc = ref zero in
  for _ = 1 to nwords do
    acc := add (shift_left !acc 32) (of_int (rng () land 0xFFFF_FFFF))
  done;
  (* Trim to n bits and force the top bit so the width is exact. *)
  let excess = bits !acc - n in
  let v = if excess > 0 then shift_right !acc excess else !acc in
  let top = shift_left one (n - 1) in
  if test_bit v (n - 1) then v else add v top

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?pad_to a =
  let nbytes = max 1 ((bits a + 7) / 8) in
  let body =
    String.init nbytes (fun i ->
        let shift = 8 * (nbytes - 1 - i) in
        Char.chr (to_int (rem (shift_right a shift) (of_int 256))))
  in
  match pad_to with
  | None -> body
  | Some n ->
      if nbytes > n then invalid_arg "Bignum.to_bytes_be: value exceeds pad width"
      else String.make (n - nbytes) '\x00' ^ body

let of_hex s =
  let acc = ref zero in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Bignum.of_hex: bad digit"
      in
      acc := add (shift_left !acc 4) (of_int v))
    s;
  !acc

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let ten = of_int 10 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod a ten in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int r))
      end
    in
    go a;
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)
