(** Static platform (SoC) configuration.

    The boot-time facts the monitor relies on: how many secure pages
    exist, which physical addresses the TZASC-style filter (§3.2)
    isolates from the normal world, and whether physical memory attacks
    are in scope for the threat model (§3.1). *)

module Word = Komodo_machine.Word

type t = {
  npages : int;  (** secure pages available to the monitor *)
  physical_attacks_in_scope : bool;
      (** threat-model variant: when set, only the isolated region is
          trusted against bus snooping / cold boot *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

val default : t

val make : ?npages:int -> ?physical_attacks_in_scope:bool -> unit -> t
(** @raise Invalid_argument outside 4..4096 pages. *)

val normal_world_accessible : t -> Word.t -> bool
(** The hardware memory filter: secure pages and the monitor image are
    blocked; OS RAM is fair game. *)

val is_valid_insecure : t -> Word.t -> bool
(** Valid insecure memory for OS/enclave sharing — excluding the
    monitor's own image, the subtlety of §9.1. *)

val page_base : t -> int -> Word.t
val page_of_pa : t -> Word.t -> int option
val valid_page : t -> int -> bool
