(** The bootloader.

    The paper's prototype boots via a small loader that loads the
    monitor in secure world, sets up its memory map and vectors,
    reserves RAM as secure memory, derives the attestation secret, and
    switches to normal world to boot the OS (§7.2, §8.1). The monitor's
    security assumes this configuration; it is modelled as the function
    constructing the initial machine state and platform secrets. *)

val attest_key_label : string
(** Domain separation for deriving the attestation secret from raw
    entropy. *)

type t = {
  state : Komodo_machine.State.t;  (** machine as left by the bootloader *)
  plat : Platform.t;
  attest_key : string;  (** 32-byte boot-derived attestation secret *)
  rng : Rng.t;  (** hardware RNG, post key derivation *)
}

val boot : ?seed:int -> ?plat:Platform.t -> unit -> t
(** Run the boot sequence; the resulting machine is in the normal
    world, supervisor mode, with scrubbed registers. *)

val boot_entropy_words : int
