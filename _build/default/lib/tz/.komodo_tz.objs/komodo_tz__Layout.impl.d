lib/tz/layout.pp.ml: Komodo_machine Option
