lib/tz/platform.pp.mli: Format Komodo_machine
