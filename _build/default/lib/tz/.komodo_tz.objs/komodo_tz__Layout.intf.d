lib/tz/layout.pp.mli: Komodo_machine
