lib/tz/boot.pp.ml: Komodo_crypto Komodo_machine Layout Platform Rng
