lib/tz/boot.pp.mli: Komodo_machine Platform Rng
