lib/tz/rng.pp.mli: Komodo_machine
