lib/tz/platform.pp.ml: Komodo_machine Layout Ppx_deriving_runtime
