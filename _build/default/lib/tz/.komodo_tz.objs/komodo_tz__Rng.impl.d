lib/tz/rng.pp.ml: Buffer Int64 Komodo_machine Ppx_deriving_runtime String
