(** The hardware random-number source.

    Komodo requires a hardware-backed cryptographically secure source of
    randomness (§3.2); the Raspberry Pi 2 prototype used its hardware
    RNG. We model it as a deterministic keyed generator (SplitMix64
    core) so that whole-system runs are reproducible: the bootloader
    seeds it, and identical seeds give identical boots — which is also
    exactly the "same seed" hypothesis the noninterference proofs place
    on the non-determinism source (§6.3). *)

type t = { state : int64 } [@@deriving eq]

let seed n = { state = Int64.of_int n }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  let state = Int64.add t.state golden_gamma in
  (mix state, { state })

(** Draw one 32-bit word (the RDRAND-style primitive the monitor's
    GetRandom SVC exposes). *)
let next_word t =
  let v, t = next64 t in
  (Komodo_machine.Word.of_int (Int64.to_int v land 0xFFFF_FFFF), t)

(** Draw [n] bytes (used to derive the boot-time attestation secret). *)
let next_bytes t n =
  let buf = Buffer.create n in
  let rec go t =
    if Buffer.length buf >= n then (String.sub (Buffer.contents buf) 0 n, t)
    else begin
      let w, t = next_word t in
      Buffer.add_string buf (Komodo_machine.Word.to_bytes_be w);
      go t
    end
  in
  go t

(** An impure convenience wrapper for callers (like RSA keygen) that
    want a [unit -> int] source; they must thread [commit] back. *)
let as_fun t =
  let r = ref t in
  let f () =
    let w, t' = next_word !r in
    r := t';
    Komodo_machine.Word.to_int w
  in
  (f, fun () -> !r)
