(** The hardware random-number source.

    Komodo requires a hardware-backed cryptographically secure source
    of randomness (§3.2). It is modelled as a deterministic keyed
    generator so whole-system runs are reproducible — which is also the
    "same seed" hypothesis the noninterference proofs place on the
    non-determinism source (§6.3). *)

type t

val equal : t -> t -> bool
val seed : int -> t

val next64 : t -> int64 * t
val next_word : t -> Komodo_machine.Word.t * t
(** One 32-bit draw: the RDRAND-style primitive behind the GetRandom
    SVC. *)

val next_bytes : t -> int -> string * t
(** [n] bytes (boot-time attestation-secret derivation). *)

val as_fun : t -> (unit -> int) * (unit -> t)
(** An impure adapter for consumers wanting [unit -> int] (RSA keygen);
    the second function reads back the advanced state. *)
