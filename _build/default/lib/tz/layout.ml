(** Physical and secure-world virtual memory layout (Figure 4).

    The bootloader reserves a region of physical RAM as secure memory
    and configures an isolated mapping for the monitor. The monitor's
    virtual space (TTBR1, privileged-only) contains its own code and
    data plus a large direct (offset) mapping of physical memory, which
    is where secure pages are accessed; enclave spaces (TTBR0) cover
    only the low 1 GB. *)

module Word = Komodo_machine.Word

(* -- Physical layout --------------------------------------------------- *)

(** Insecure (normal-world-accessible) RAM: [0, 1 GB). *)
let insecure_base = Word.zero

let insecure_limit = Word.of_int 0x3000_0000 (* 768 MB of OS RAM *)

(** Monitor image, stack and globals: 1 MB at 0x4000_0000. *)
let monitor_image_base = Word.of_int 0x4000_0000

let monitor_image_size = 0x10_0000

(** Secure page region: directly after the monitor image. Its page
    count is a boot-time choice ([GetPhysPages] reports it). *)
let secure_region_base = Word.of_int 0x4010_0000

let default_npages = 256
let page_size = Komodo_machine.Ptable.page_size
let words_per_page = Komodo_machine.Ptable.words_per_page

(** Physical base address of secure page number [n]. *)
let page_base n = Word.add secure_region_base (Word.of_int (n * page_size))

(** The secure page number containing physical address [pa], if any. *)
let page_of_pa ~npages pa =
  let off = Word.to_int pa - Word.to_int secure_region_base in
  if off < 0 || off >= npages * page_size then None else Some (off / page_size)

let in_monitor_image pa =
  let p = Word.to_int pa and b = Word.to_int monitor_image_base in
  p >= b && p < b + monitor_image_size

let in_secure_region ~npages pa =
  Option.is_some (page_of_pa ~npages pa)

(** Is [pa] valid insecure memory for OS/enclave sharing? This check
    must exclude the monitor's own image as well as secure pages — a
    subtlety the paper reports finding only during verification (§9.1:
    the monitor's text and data exist in the direct map too). *)
let is_valid_insecure ~npages pa =
  Word.ule insecure_base pa
  && Word.ult pa insecure_limit
  && (not (in_monitor_image pa))
  && not (in_secure_region ~npages pa)

(* -- Secure-world virtual layout (monitor / TTBR1 side) --------------- *)

(** Base of the privileged direct mapping of physical memory: monitor
    virtual address = physical address + this offset. *)
let directmap_vbase = Word.of_int 0x8000_0000

let monitor_vbase = Word.of_int 0x4000_0000 (* monitor code/data VA *)
let monitor_stack_vtop = Word.of_int 0x4400_0000

let phys_to_monitor_va pa = Word.add pa directmap_vbase

let monitor_va_to_phys va =
  if Word.ule directmap_vbase va then Some (Word.sub va directmap_vbase) else None

(** Enclave virtual addresses live below this bound (TTBCR split). *)
let enclave_va_limit = Komodo_machine.Ptable.va_limit
