(** Static platform (SoC) configuration.

    Collects the boot-time facts the monitor relies on: how many secure
    pages exist, which physical addresses are isolated from the normal
    world (the TZASC-style filter of §3.2), and whether the platform is
    configured to model physical memory attacks as in-scope. *)

module Word = Komodo_machine.Word

type t = {
  npages : int;  (** secure pages available to the monitor *)
  physical_attacks_in_scope : bool;
      (** threat-model variant (§3.1): when true, only the isolated
          region is trusted against bus snooping/cold boot *)
}
[@@deriving eq, show { with_path = false }]

let default = { npages = Layout.default_npages; physical_attacks_in_scope = false }

let make ?(npages = Layout.default_npages) ?(physical_attacks_in_scope = false) () =
  if npages < 4 then invalid_arg "Platform.make: need at least 4 secure pages";
  if npages > 4096 then invalid_arg "Platform.make: secure region bounded at 16 MB";
  { npages; physical_attacks_in_scope }

(** Hardware memory filter: can normal-world software or devices access
    physical address [pa]? Secure pages and the monitor image are
    blocked; everything else (OS RAM) is fair game. *)
let normal_world_accessible t pa =
  (not (Layout.in_secure_region ~npages:t.npages pa))
  && not (Layout.in_monitor_image pa)

let is_valid_insecure t pa = Layout.is_valid_insecure ~npages:t.npages pa
let page_base (_ : t) n = Layout.page_base n
let page_of_pa t pa = Layout.page_of_pa ~npages:t.npages pa

let valid_page t n = n >= 0 && n < t.npages
