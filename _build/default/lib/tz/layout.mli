(** Physical and secure-world virtual memory layout (Figure 4).

    The bootloader reserves a region of physical RAM as secure memory
    and configures an isolated mapping for the monitor. The monitor's
    virtual space (TTBR1, privileged-only) holds its code and data plus
    a large direct mapping of physical memory; enclave spaces (TTBR0)
    cover only the low 1 GB. *)

module Word = Komodo_machine.Word

(** Physical layout. *)

val insecure_base : Word.t
val insecure_limit : Word.t  (** OS RAM: [insecure_base, insecure_limit) *)
val monitor_image_base : Word.t
val monitor_image_size : int
val secure_region_base : Word.t
val default_npages : int
val page_size : int
val words_per_page : int

val page_base : int -> Word.t
(** Physical base of secure page [n]. *)

val page_of_pa : npages:int -> Word.t -> int option
val in_monitor_image : Word.t -> bool
val in_secure_region : npages:int -> Word.t -> bool

val is_valid_insecure : npages:int -> Word.t -> bool
(** Valid insecure memory for sharing: OS RAM minus the monitor image
    minus the secure region — the §9.1 check. *)

(** Secure-world virtual layout (monitor / TTBR1 side). *)

val directmap_vbase : Word.t
(** Monitor VA = physical address + this offset. *)

val monitor_vbase : Word.t
val monitor_stack_vtop : Word.t
val phys_to_monitor_va : Word.t -> Word.t
val monitor_va_to_phys : Word.t -> Word.t option
val enclave_va_limit : Word.t
