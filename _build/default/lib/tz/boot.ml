(** The bootloader.

    The paper's prototype boots via a small loader that loads the
    monitor in secure world, sets up its memory map and exception
    vectors, reserves a configurable amount of RAM as secure memory,
    derives the attestation secret, and then switches to normal world to
    boot Linux (§7.2, §8.1). The monitor's security assumes this
    boot-time configuration; we model it as the function that constructs
    the initial machine state and platform secrets. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Mode = Komodo_machine.Mode
module Regs = Komodo_machine.Regs

type t = {
  state : State.t;  (** machine as left by the bootloader: normal world *)
  plat : Platform.t;
  attest_key : string;  (** 32-byte boot-derived attestation secret *)
  rng : Rng.t;  (** hardware RNG, post key derivation *)
}

(** Domain-separation label for deriving the attestation secret from raw
    hardware entropy. *)
let attest_key_label = "komodo-attestation-key-v1"

(** [boot ~seed ~plat] performs the boot sequence:
    1. start in secure supervisor mode with zeroed registers;
    2. reserve the secure region (modelled by [plat]);
    3. draw entropy and derive the attestation secret;
    4. install the monitor's static TTBR1 direct mapping;
    5. drop to normal world, where the OS will run and issue SMCs. *)
let boot ?(seed = 0xB007) ?(plat = Platform.default) () =
  let rng = Rng.seed seed in
  let raw_entropy, rng = Rng.next_bytes rng 32 in
  let attest_key =
    Komodo_crypto.Hmac.mac ~key:raw_entropy attest_key_label
  in
  let state = State.initial in
  (* The monitor's static page table root lives inside the monitor
     image; enclave TTBR0 starts empty (no enclave loaded). *)
  let state =
    {
      state with
      State.ttbr1_s = Layout.monitor_image_base;
      world = Mode.Normal;
      cpsr = Komodo_machine.Psr.make Mode.Supervisor ~irq_masked:false ~fiq_masked:false;
      scr_ns = true;
    }
  in
  (* Scrub boot-time register state so no entropy leaks to the OS. *)
  let state = { state with State.regs = Regs.clear_user_visible state.State.regs } in
  { state; plat; attest_key; rng }

(** Number of 32-bit words of entropy consumed at boot (cost model). *)
let boot_entropy_words = 8
