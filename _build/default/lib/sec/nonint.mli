(** The noninterference harness: an executable rendition of Theorem 6.1.

    The paper proves, by bisimulation over pairs of states related by
    ≈adv (confidentiality) or ≈enc (integrity), that every monitor call
    preserves the relation. This harness runs the *statement*: two
    whole-system states related by the relation are driven through the
    same adversarial call sequence with equal non-determinism seeds
    (the §6.3 hypothesis, via {!Komodo_core.Uexec.havoc}); after every
    call the relation must still hold and the declassified outputs
    (§6.2: error code and return value) must be equal.

    Confidentiality pairs differ only in a victim enclave's secrets;
    integrity pairs differ in adversary-controlled state (insecure
    memory, OS scratch registers, a colluding enclave's contents), and
    the victim's pages must additionally be bit-invariant. *)

module Word = Komodo_machine.Word
module Monitor = Komodo_core.Monitor
module Errors = Komodo_core.Errors
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader

type world = {
  os_a : Os.t;
  os_b : Os.t;
  victim : Loader.handle;
  adv : Loader.handle;  (** the enclave colluding with the OS *)
}

val inject_secret : Monitor.t -> Komodo_core.Pagedb.pagenr -> string -> Monitor.t
(** Test-only backdoor: write contents directly into a secure data
    page, standing in for "the enclave previously computed different
    secrets". Unreachable through any API. *)

val make_world : seed:int -> perturb:[ `Victim_secret | `Adversary_state ] -> world
(** Boot, load a victim and an adversary enclave, and make the two runs
    differ per [perturb]. *)

type op =
  | Op_smc of { call : int; args : Word.t list }
  | Op_write_insecure of { addr : Word.t; value : Word.t }

val pp_op : Format.formatter -> op -> unit

val gen_ops : seed:int -> world:world -> n:int -> op list
(** A deterministic adversarial op stream: every SMC with colliding
    page arguments, Enter/Resume aimed at the live threads, insecure
    writes. *)

type failure = { step : int; op : op; reason : string }

val pp_failure : Format.formatter -> failure -> unit

type check =
  world ->
  int ->
  op ->
  (Errors.t * Word.t) option ->
  (Errors.t * Word.t) option ->
  string option
(** Post-step predicate: given the worlds and both runs' released
    results, name a violated clause or return [None]. *)

val run_pair : world -> ops:op list -> check:check -> failure option

val confidentiality_check : check
(** ≈adv (with the colluding enclave as observer) preserved, released
    results equal. *)

val integrity_check : check
(** Victim PageDB entries and page contents bit-identical across runs,
    ≈enc (victim) preserved. *)

val run_confidentiality : seed:int -> nops:int -> failure option
val run_integrity : seed:int -> nops:int -> failure option
