(** Observational equivalence (Definitions 1 and 2 of the paper).

    Two relations characterise what different observers can see:

    - [enc_equiv] (≈enc): the view of one enclave. Its own pages
      (PageDB entries *and* concrete contents) must agree; pages outside
      its address space need only be weakly equal ([entry_weak_equal],
      Definition 1) — an enclave cannot observe data-page contents or
      thread contexts that are not its own, but page-table and
      address-space metadata (layout, measurements) are API-observable
      and must match exactly.

    - [adv_equiv] (≈adv): the view of a malicious OS colluding with an
      enclave — ≈enc for the colluding enclave plus the general-purpose
      registers, the banked registers (excluding monitor mode), and the
      entire insecure memory.

    These executable relations are exactly what the noninterference
    harness ({!Nonint}) checks before and after every monitor call. *)

module Word = Komodo_machine.Word
module Memory = Komodo_machine.Memory
module State = Komodo_machine.State
module Regs = Komodo_machine.Regs
module Mode = Komodo_machine.Mode
module Ptable = Komodo_machine.Ptable
module Monitor = Komodo_core.Monitor
module Pagedb = Komodo_core.Pagedb
module Platform = Komodo_tz.Platform
module Layout = Komodo_tz.Layout

(** Definition 1: weak equivalence of PageDB entries, the observational
    power of an enclave over pages outside its own address space. *)
let entry_weak_equal (e1 : Pagedb.entry) (e2 : Pagedb.entry) =
  match (e1, e2) with
  | Pagedb.DataPage _, Pagedb.DataPage _ -> true
  | Pagedb.SparePage _, Pagedb.SparePage _ -> true
  | Pagedb.Thread t1, Pagedb.Thread t2 -> t1.Pagedb.entered = t2.Pagedb.entered
  | ( (Pagedb.L1PTable _ | Pagedb.L2PTable _ | Pagedb.Addrspace _),
      (Pagedb.L1PTable _ | Pagedb.L2PTable _ | Pagedb.Addrspace _) ) ->
      Pagedb.equal_entry e1 e2
  | Pagedb.Free, Pagedb.Free -> true
  | _ -> false

(** The set A_enc(d): pages belonging to address space [enc], including
    the address-space page itself. *)
let owned_set (db : Pagedb.t) enc =
  enc :: Pagedb.owned_pages db enc |> List.sort_uniq Int.compare

let free_set (db : Pagedb.t) =
  List.filter (fun n -> Pagedb.is_free db n) (List.init (Pagedb.npages db) (fun i -> i))

let page_contents_equal (a : Monitor.t) (b : Monitor.t) n =
  Memory.equal_range a.Monitor.mach.State.mem b.Monitor.mach.State.mem
    (Monitor.page_pa a n) Ptable.words_per_page

(** Definition 2: ≈enc. [enc] is the observer's address-space page
    number ([None] models an observer with no enclave, e.g. a freshly
    booted system). Beyond the PageDB clauses of the definition, the
    refinement to concrete state requires the observer's page contents
    to agree (data the enclave can reach is determined by its PageDB
    pages). *)
let enc_equiv ?enc (a : Monitor.t) (b : Monitor.t) =
  let da = a.Monitor.pagedb and db_ = b.Monitor.pagedb in
  Pagedb.npages da = Pagedb.npages db_
  && free_set da = free_set db_
  &&
  let owned = match enc with None -> [] | Some e -> owned_set da e in
  (match enc with
  | None -> true
  | Some e -> owned_set da e = owned_set db_ e)
  && List.for_all
       (fun n ->
         if List.mem n owned then
           Pagedb.equal_entry (Pagedb.get da n) (Pagedb.get db_ n)
           && page_contents_equal a b n
         else entry_weak_equal (Pagedb.get da n) (Pagedb.get db_ n))
       (List.init (Pagedb.npages da) (fun i -> i))

let insecure_restrict (t : Monitor.t) =
  let plat = t.Monitor.plat in
  Memory.restrict t.Monitor.mach.State.mem ~f:(fun addr ->
      Platform.normal_world_accessible plat (Word.of_int addr))

(** Registers the OS can observe: every general-purpose register and
    the banked SP/LR/SPSR of all modes except monitor. *)
let os_visible_regs_equal (a : State.t) (b : State.t) =
  let modes = List.filter (fun m -> not (Mode.equal m Mode.Monitor)) Mode.all in
  List.for_all
    (fun i -> Word.equal (Regs.read a.State.regs ~mode:Mode.User (Regs.R i))
                (Regs.read b.State.regs ~mode:Mode.User (Regs.R i)))
    (List.init 13 (fun i -> i))
  && List.for_all
       (fun m ->
         Word.equal (Regs.read_sreg a.State.regs (Regs.SP_of m))
           (Regs.read_sreg b.State.regs (Regs.SP_of m))
         && Word.equal (Regs.read_sreg a.State.regs (Regs.LR_of m))
              (Regs.read_sreg b.State.regs (Regs.LR_of m))
         && (not (Mode.has_spsr m)
            || Word.equal (Regs.read_sreg a.State.regs (Regs.SPSR_of m))
                 (Regs.read_sreg b.State.regs (Regs.SPSR_of m))))
       modes

(** ≈adv: the malicious-OS-plus-enclave view. [enc], if given, is the
    colluding enclave's address space. *)
let adv_equiv ?enc (a : Monitor.t) (b : Monitor.t) =
  enc_equiv ?enc a b
  && os_visible_regs_equal a.Monitor.mach b.Monitor.mach
  && Memory.equal (insecure_restrict a) (insecure_restrict b)
  && Mode.equal (State.mode a.Monitor.mach) (State.mode b.Monitor.mach)
  && Mode.equal_world a.Monitor.mach.State.world b.Monitor.mach.State.world

(** Diagnostic version: name the first clause that fails. *)
let adv_equiv_explain ?enc a b =
  if not (enc_equiv ?enc a b) then Some "enc_equiv (PageDB / page contents)"
  else if not (os_visible_regs_equal a.Monitor.mach b.Monitor.mach) then
    Some "OS-visible registers"
  else if not (Memory.equal (insecure_restrict a) (insecure_restrict b)) then
    Some "insecure memory"
  else if not (Mode.equal (State.mode a.Monitor.mach) (State.mode b.Monitor.mach))
  then Some "mode"
  else None
