(** Declassification (§6.2): the released channels — and only those —
    carry information.

    Komodo's noninterference is relaxed by four delimited-release
    channels: (i) the exception type ending enclave execution, (ii) the
    Exit value, (iii) which spare pages the enclave consumed (visible
    because Remove fails on them), (iv) which data pages it freed.
    Crucially the OS cannot tell *how* a consumed spare is used (data
    vs page table) — the SGXv2 side channel the paper closes (§4).
    Each check drives the real monitor. *)

type check_result = Ok_channel | Broken of string

val exit_value_released : unit -> check_result
val exception_type_released : unit -> check_result
val spare_allocation_released : unit -> check_result

val spare_use_not_released : unit -> check_result
(** The closed channel: two enclaves consume their spare differently;
    everything the OS can observe must coincide. *)

val freed_pages_released : unit -> check_result

val all : (string * (unit -> check_result)) list
