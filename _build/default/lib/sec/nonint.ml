(** The noninterference harness: an executable rendition of Theorem 6.1.

    The paper proves, by bisimulation over pairs of states related by
    ≈adv (confidentiality) or ≈enc (integrity), that every monitor call
    preserves the relation. We cannot re-run the proof, but we can run
    the *statement*: construct two whole-system states related by the
    relation, fire the same adversarial monitor-call sequence at both
    (with equal non-determinism seeds, the paper's §6.3 hypothesis), and
    check the relation after every call — plus the stronger per-call
    observation that the declassified outputs (error code and return
    value, §6.2) are equal.

    Confidentiality runs differ only in a victim enclave's secrets
    (its data-page contents); integrity runs differ in adversary-
    controlled state (insecure memory, OS scratch registers, another
    enclave's data), and we check the victim's pages are bit-invariant.

    User-mode execution uses the {!Komodo_core.Uexec.havoc} spec model:
    updates are uninterpreted functions of visible state and seed, with
    insecure-memory updates and the terminating exception drawn from the
    seed alone. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Memory = Komodo_machine.Memory
module Regs = Komodo_machine.Regs
module Mode = Komodo_machine.Mode
module Ptable = Komodo_machine.Ptable
module Monitor = Komodo_core.Monitor
module Pagedb = Komodo_core.Pagedb
module Smc = Komodo_core.Smc
module Errors = Komodo_core.Errors
module Uexec = Komodo_core.Uexec
module Mapping = Komodo_core.Mapping
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs

(* -- Test world ---------------------------------------------------------
   A small world: a victim enclave and a colluding (adversary) enclave,
   both with a code page, a data page and a thread, plus spare pages
   and free pages for the adversary to play with. *)

type world = {
  os_a : Os.t;
  os_b : Os.t;
  victim : Loader.handle;
  adv : Loader.handle;
}

let basic_image ~name ~shared_target =
  let code = Uprog.to_page_images (Uprog.code_words Progs.add_args) in
  let img = Image.empty ~name in
  let img = Image.add_blob img ~va:Word.zero ~w:false ~x:true code in
  let img =
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:(Word.of_int 0x1000) ~w:true ~x:false)
      ~contents:(String.make Ptable.page_size '\000')
  in
  let img =
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:(Word.of_int 0x2000) ~w:true ~x:false)
      ~target:shared_target
  in
  let img = Image.add_thread img ~entry:Word.zero in
  Image.with_spares img 2

(** Write [contents] directly into secure data page [n] — a test-only
    backdoor standing in for "the enclave previously computed different
    secrets". Not reachable through any API. *)
let inject_secret (mon : Monitor.t) n contents =
  let mem =
    Memory.of_bytes_be mon.Monitor.mach.State.mem (Monitor.page_pa mon n) contents
  in
  { mon with Monitor.mach = { mon.Monitor.mach with State.mem } }

let page_of_byte c = String.make Ptable.page_size c

(** Build the paired world. [perturb] decides what differs between run
    A and run B. *)
let make_world ~seed ~(perturb : [ `Victim_secret | `Adversary_state ]) =
  let exec = Uexec.havoc ~dynamic:true ~seed () in
  let os = Os.boot ~seed ~npages:48 ~exec () in
  let victim_img =
    basic_image ~name:"victim" ~shared_target:Os.shared_base
  in
  let adv_img =
    basic_image ~name:"adversary"
      ~shared_target:(Word.add Os.shared_base (Word.of_int Ptable.page_size))
  in
  let os, victim =
    match Loader.load os victim_img with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "victim load: %a" Loader.pp_error e)
  in
  let os, adv =
    match Loader.load os adv_img with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "adversary load: %a" Loader.pp_error e)
  in
  let victim_data = List.nth victim.Loader.data_pages 1 in
  match perturb with
  | `Victim_secret ->
      (* Identical worlds except the victim's secret data page. *)
      let os_a = { os with Os.mon = inject_secret os.Os.mon victim_data (page_of_byte 'A') } in
      let os_b = { os with Os.mon = inject_secret os.Os.mon victim_data (page_of_byte 'B') } in
      { os_a; os_b; victim; adv }
  | `Adversary_state ->
      (* Identical victims; run B's adversary-controlled state differs:
         insecure memory noise, OS scratch registers, and the colluding
         enclave's data contents. *)
      let adv_data = List.nth adv.Loader.data_pages 1 in
      let os_a = os in
      let os_b =
        let os = Os.write_bytes os (Word.of_int 0x0400_0000) (String.make 256 '\xEE') in
        let mon = inject_secret os.Os.mon adv_data (page_of_byte 'Z') in
        let mach = State.write_reg mon.Monitor.mach (Regs.R 7) (Word.of_int 0x7777) in
        let mach = State.write_reg mach (Regs.R 9) (Word.of_int 0x9999) in
        { os with Os.mon = { mon with Monitor.mach = mach } }
      in
      { os_a; os_b; victim; adv }

(* -- Adversarial operations --------------------------------------------- *)

type op =
  | Op_smc of { call : int; args : Word.t list }
  | Op_write_insecure of { addr : Word.t; value : Word.t }

let pp_op fmt = function
  | Op_smc { call; args } ->
      Format.fprintf fmt "SMC(%d, [%s])" call
        (String.concat "; " (List.map Word.show args))
  | Op_write_insecure { addr; value } ->
      Format.fprintf fmt "insecure[%a] := %a" Word.pp addr Word.pp value

(** A deterministic adversarial op stream. Page arguments are drawn
    from a small domain so collisions with live pages are common; the
    victim's and adversary's thread pages are targeted explicitly so
    Enter/Resume paths fire often. *)
let gen_ops ~seed ~world ~n =
  let lcg = ref (seed * 2654435761 land 0x3FFFFFFF) in
  let next m =
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    !lcg mod m
  in
  let page () = Word.of_int (next 48) in
  let some_thread () =
    match next 3 with
    | 0 -> Word.of_int (List.hd world.victim.Loader.threads)
    | 1 -> Word.of_int (List.hd world.adv.Loader.threads)
    | _ -> page ()
  in
  let mapping () =
    Word.of_int ((next 0x40000 * 0x1000) lor 1 lor (next 2 * 2) lor (next 2 * 4))
  in
  let op _ =
    match next 16 with
    | 0 -> Op_smc { call = Smc.sm_get_phys_pages; args = [] }
    | 1 -> Op_smc { call = Smc.sm_init_addrspace; args = [ page (); page () ] }
    | 2 ->
        Op_smc
          { call = Smc.sm_init_thread; args = [ page (); page (); Word.of_int (next 0x10000) ] }
    | 3 ->
        Op_smc
          { call = Smc.sm_init_l2ptable; args = [ page (); page (); Word.of_int (next 300) ] }
    | 4 -> Op_smc { call = Smc.sm_alloc_spare; args = [ page (); page () ] }
    | 5 ->
        Op_smc
          {
            call = Smc.sm_map_secure;
            args =
              [
                page ();
                page ();
                mapping ();
                (if next 2 = 0 then Word.zero else Os.staging_base);
              ];
          }
    | 6 ->
        Op_smc
          {
            call = Smc.sm_map_insecure;
            args = [ page (); mapping (); Word.add Os.shared_base (Word.of_int 0x2000) ];
          }
    | 7 -> Op_smc { call = Smc.sm_finalise; args = [ page () ] }
    | 8 | 9 | 10 ->
        Op_smc
          {
            call = Smc.sm_enter;
            args =
              [
                some_thread ();
                Word.of_int (next 100);
                Word.of_int (next 100);
                Word.of_int (next 100);
              ];
          }
    | 11 -> Op_smc { call = Smc.sm_resume; args = [ some_thread () ] }
    | 12 -> Op_smc { call = Smc.sm_stop; args = [ page () ] }
    | 13 -> Op_smc { call = Smc.sm_remove; args = [ page () ] }
    | 14 ->
        Op_write_insecure
          {
            addr = Word.add Os.shared_base (Word.of_int (next 1024 * 4));
            value = Word.of_int (next 0xFFFF);
          }
    | _ ->
        Op_smc
          {
            call = Smc.sm_enter;
            args = [ some_thread (); Word.zero; Word.zero; Word.zero ];
          }
  in
  List.init n op

let apply_op (os : Os.t) = function
  | Op_smc { call; args } ->
      let os, err, v = Os.smc os ~call ~args in
      (os, Some (err, v))
  | Op_write_insecure { addr; value } -> (Os.write_word os addr value, None)

(* -- Bisimulation driver ------------------------------------------------ *)

type failure = {
  step : int;
  op : op;
  reason : string;
}

let pp_failure fmt f =
  Format.fprintf fmt "step %d: %a — %s" f.step pp_op f.op f.reason

type check = world -> int -> op -> (Errors.t * Word.t) option -> (Errors.t * Word.t) option -> string option

(** Run [ops] through both worlds, applying [check] after each step. *)
let run_pair (w : world) ~ops ~(check : check) : failure option =
  let rec go w i = function
    | [] -> None
    | op :: rest -> (
        let os_a, ra = apply_op w.os_a op in
        let os_b, rb = apply_op w.os_b op in
        let w = { w with os_a; os_b } in
        match check w i op ra rb with
        | Some reason -> Some { step = i; op; reason }
        | None -> go w (i + 1) rest)
  in
  go w 0 ops

(** Confidentiality: ≈adv (with the colluding enclave as observer) must
    be preserved, and the OS-visible results must be equal. *)
let confidentiality_check : check =
 fun w _i _op ra rb ->
  if ra <> rb then
    Some
      (Format.asprintf "released results differ: %s vs %s"
         (match ra with
         | None -> "-"
         | Some (e, v) -> Format.asprintf "%a/%a" Errors.pp e Word.pp v)
         (match rb with
         | None -> "-"
         | Some (e, v) -> Format.asprintf "%a/%a" Errors.pp e Word.pp v))
  else
    Option.map
      (fun clause -> "adv_equiv broken at clause: " ^ clause)
      (Obs.adv_equiv_explain ~enc:w.adv.Loader.addrspace w.os_a.Os.mon w.os_b.Os.mon)

(** Integrity: the victim's PageDB entries and page contents must be
    bit-identical across runs, and ≈enc (victim) preserved. *)
let integrity_check : check =
 fun w _i _op _ra _rb ->
  let victim = w.victim.Loader.addrspace in
  let a = w.os_a.Os.mon and b = w.os_b.Os.mon in
  let owned = Obs.owned_set a.Monitor.pagedb victim in
  let bad_page =
    List.find_opt
      (fun n ->
        (not
           (Pagedb.equal_entry (Pagedb.get a.Monitor.pagedb n) (Pagedb.get b.Monitor.pagedb n)))
        || not (Obs.page_contents_equal a b n))
      owned
  in
  match bad_page with
  | Some n -> Some (Printf.sprintf "victim page %d diverged" n)
  | None ->
      if Obs.enc_equiv ~enc:victim a b then None
      else Some "enc_equiv (victim) broken"

let run_confidentiality ~seed ~nops =
  let w = make_world ~seed ~perturb:`Victim_secret in
  let ops = gen_ops ~seed ~world:w ~n:nops in
  run_pair w ~ops ~check:confidentiality_check

let run_integrity ~seed ~nops =
  let w = make_world ~seed ~perturb:`Adversary_state in
  let ops = gen_ops ~seed ~world:w ~n:nops in
  run_pair w ~ops ~check:integrity_check
