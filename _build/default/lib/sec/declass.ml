(** Declassification (§6.2): checking the released channels — and only
    those — carry information.

    Komodo's noninterference is relaxed by four delimited-release
    channels: (i) the type of exception ending enclave execution,
    (ii) the Exit return value (and the fact an exit happened),
    (iii) which spare pages the enclave has allocated (the OS sees this
    because Remove fails on them), and (iv) which data pages it has
    freed. Crucially, the OS cannot tell *how* an allocated spare is
    being used (data vs page table) — the side channel SGXv2 has and
    Komodo deliberately closed (§4).

    Each check here drives the real monitor and reports whether the
    channel behaves as specified. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Ptable = Komodo_machine.Ptable
module Monitor = Komodo_core.Monitor
module Errors = Komodo_core.Errors
module Mapping = Komodo_core.Mapping
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Image = Komodo_os.Image
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs
module Insn = Komodo_machine.Insn

type check_result = Ok_channel | Broken of string

let load_prog ?(spares = 0) os name prog =
  let code = Uprog.to_page_images (Uprog.code_words prog) in
  let img = Image.empty ~name in
  let img = Image.add_blob img ~va:Word.zero ~w:false ~x:true code in
  let img = Image.add_thread img ~entry:Word.zero in
  let img = Image.with_spares img spares in
  match Loader.load os img with
  | Ok r -> r
  | Error e -> failwith (Format.asprintf "Declass load %s: %a" name Loader.pp_error e)

(** Channel (i)/(ii): exit value and exception type are released —
    different enclave behaviours are distinguishable exactly there. *)
let exit_value_released () =
  let os = Os.boot ~seed:42 ~npages:32 () in
  let os, h = load_prog os "adder" Progs.add_args in
  let th = List.hd h.Loader.threads in
  let os, e1, v1 = Os.enter os ~thread:th ~args:(Word.of_int 1, Word.of_int 2, Word.zero) in
  let _os, e2, v2 = Os.enter os ~thread:th ~args:(Word.of_int 5, Word.of_int 6, Word.zero) in
  if
    Errors.is_success e1 && Errors.is_success e2
    && Word.to_int v1 = 3 && Word.to_int v2 = 11
  then Ok_channel
  else Broken "exit values not faithfully released"

let exception_type_released () =
  let os = Os.boot ~seed:42 ~npages:32 () in
  let os, h1 = load_prog os "faulter" Progs.fault_unmapped in
  let os, h2 = load_prog os "undef" Progs.fault_undefined in
  let os, e1, _ = Os.enter os ~thread:(List.hd h1.Loader.threads) ~args:(Word.zero, Word.zero, Word.zero) in
  let _os, e2, _ = Os.enter os ~thread:(List.hd h2.Loader.threads) ~args:(Word.zero, Word.zero, Word.zero) in
  (* Both fault classes collapse onto the single Fault code: the OS
     learns that an exception happened (and, via Interrupted, which of
     the two *classes* it was) but nothing finer. *)
  if Errors.equal e1 Errors.Fault && Errors.equal e2 Errors.Fault then Ok_channel
  else Broken "fault classes not released as the single Fault code"

(** Channel (iii): the OS can infer spare allocation, because Remove of
    a consumed spare fails. *)
let spare_allocation_released () =
  let os = Os.boot ~seed:42 ~npages:32 () in
  let os, h = load_prog ~spares:1 os "dyn" Progs.map_and_use_spare in
  let spare = List.hd h.Loader.spares in
  let th = List.hd h.Loader.threads in
  (* Before the enclave consumes it, the spare is removable — probe on a
     copy of the state. *)
  let _probe, err_before = Os.remove os ~page:spare in
  let os, err_run, v =
    Os.enter os ~thread:th
      ~args:(Word.of_int spare, Word.of_int 0x3000, Word.zero)
  in
  let _os, err_after = Os.remove os ~page:spare in
  if not (Errors.is_success err_before) then
    Broken "unconsumed spare page not removable"
  else if not (Errors.is_success err_run && Word.to_int v = 0xBEEF) then
    Broken "dynamic-memory enclave failed"
  else if Errors.is_success err_after then
    Broken "consumed spare page still removable (channel under-releases)"
  else Ok_channel

(** The closed channel: whether a spare became a data page or a page
    table is *not* observable. Two enclaves consume their spare
    differently; everything the OS can see must coincide. *)
let spare_use_not_released () =
  (* Enclave A: spare -> data page (MapData). *)
  let prog_data = Progs.map_and_use_spare in
  (* Enclave B: spare -> second-level page table (InitL2PTable). *)
  let prog_pt =
    [
      Insn.I (Insn.Mov (Uprog.r1, Insn.Reg Uprog.r0)) (* spare page nr *);
      Insn.I (Insn.Mov (Uprog.r2, Insn.Imm (Word.of_int 7))) (* free slot *);
      Insn.I (Insn.Mov (Uprog.r0, Insn.Imm (Word.of_int Komodo_user.Svc_nums.init_l2ptable)));
      Insn.I (Insn.Svc Word.zero);
      Insn.I (Insn.Mov (Uprog.r6, Insn.Imm (Word.of_int 0xBEEF)));
    ]
    @ Uprog.exit_with Uprog.r6
  in
  let observe prog =
    let os = Os.boot ~seed:42 ~npages:32 () in
    let os, h = load_prog ~spares:1 os "dyn" prog in
    let spare = List.hd h.Loader.spares in
    let os, err, v =
      Os.enter os ~thread:(List.hd h.Loader.threads)
        ~args:(Word.of_int spare, Word.of_int 0x3000, Word.zero)
    in
    (* Everything the OS can subsequently observe about the spare: the
       result of trying to reclaim it, and of re-granting it. *)
    let _, remove_err = Os.remove os ~page:spare in
    let _, regrant_err = Os.alloc_spare os ~addrspace:h.Loader.addrspace ~spare in
    (err, v, remove_err, regrant_err)
  in
  let e1, v1, r1, g1 = observe prog_data in
  let e2, v2, r2, g2 = observe prog_pt in
  if not (Errors.is_success e1 && Errors.is_success e2) then
    Broken "dynamic enclaves failed to run"
  else if Word.to_int v1 <> 0xBEEF || Word.to_int v2 <> 0xBEEF then
    Broken "enclaves did not complete their allocation"
  else if Errors.equal r1 r2 && Errors.equal g1 g2 then Ok_channel
  else
    Broken
      (Printf.sprintf
         "OS distinguishes spare usage: remove %s/%s, regrant %s/%s"
         (Errors.show r1) (Errors.show r2) (Errors.show g1) (Errors.show g2))

(** Channel (iv): freed data pages are observable (UnmapData turns them
    back into removable spares). *)
let freed_pages_released () =
  let prog =
    (* Map the spare at the VA in r1, then unmap it again. *)
    [
      Insn.I (Insn.Mov (Uprog.r12, Insn.Reg Uprog.r1)) (* va *);
      Insn.I (Insn.Mov (Uprog.r11, Insn.Reg Uprog.r0)) (* spare nr *);
      Insn.I (Insn.Mov (Uprog.r1, Insn.Reg Uprog.r11));
      Insn.I (Insn.Orr (Uprog.r2, Uprog.r12, Insn.Imm (Word.of_int 0x3)));
      Insn.I (Insn.Mov (Uprog.r0, Insn.Imm (Word.of_int Komodo_user.Svc_nums.map_data)));
      Insn.I (Insn.Svc Word.zero);
      Insn.I (Insn.Mov (Uprog.r1, Insn.Reg Uprog.r11));
      Insn.I (Insn.Orr (Uprog.r2, Uprog.r12, Insn.Imm (Word.of_int 0x1)));
      Insn.I (Insn.Mov (Uprog.r0, Insn.Imm (Word.of_int Komodo_user.Svc_nums.unmap_data)));
      Insn.I (Insn.Svc Word.zero);
      Insn.I (Insn.Mov (Uprog.r6, Insn.Imm (Word.of_int 0))) ;
    ]
    @ Uprog.exit_with Uprog.r6
  in
  let os = Os.boot ~seed:42 ~npages:32 () in
  let os, h = load_prog ~spares:1 os "dyn" prog in
  let spare = List.hd h.Loader.spares in
  let os, err, _ =
    Os.enter os ~thread:(List.hd h.Loader.threads)
      ~args:(Word.of_int spare, Word.of_int 0x3000, Word.zero)
  in
  if not (Errors.is_success err) then Broken "map/unmap enclave failed"
  else begin
    (* After unmapping, the page is a spare again: removable. *)
    let _os, err = Os.remove os ~page:spare in
    if Errors.is_success err then Ok_channel
    else Broken "freed page not reclaimable (channel missing)"
  end

let all =
  [
    ("exit-value-released", exit_value_released);
    ("exception-type-released", exception_type_released);
    ("spare-allocation-released", spare_allocation_released);
    ("spare-use-not-released", spare_use_not_released);
    ("freed-pages-released", freed_pages_released);
  ]
