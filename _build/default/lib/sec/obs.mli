(** Observational equivalence (Definitions 1 and 2 of the paper).

    - {!enc_equiv} (≈enc): one enclave's view — its own pages (PageDB
      entries and concrete contents) must agree; outside pages need
      only be weakly equal ({!entry_weak_equal}, Definition 1): an
      enclave cannot observe foreign data-page contents or thread
      contexts, but page-table and address-space metadata are
      API-observable and must match exactly.
    - {!adv_equiv} (≈adv): a malicious OS colluding with an enclave —
      ≈enc for the colluding enclave, plus the general-purpose
      registers, the banked registers excluding monitor mode, and the
      entire insecure memory.

    These are exactly the relations {!Nonint} checks before and after
    every monitor call. *)

module Memory = Komodo_machine.Memory
module State = Komodo_machine.State
module Monitor = Komodo_core.Monitor
module Pagedb = Komodo_core.Pagedb

val entry_weak_equal : Pagedb.entry -> Pagedb.entry -> bool
(** Definition 1: the observational power of an enclave over pages
    outside its address space. *)

val owned_set : Pagedb.t -> Pagedb.pagenr -> Pagedb.pagenr list
(** A_enc(d): pages of an address space, including its own page. *)

val free_set : Pagedb.t -> Pagedb.pagenr list

val page_contents_equal : Monitor.t -> Monitor.t -> Pagedb.pagenr -> bool

val enc_equiv : ?enc:Pagedb.pagenr -> Monitor.t -> Monitor.t -> bool
(** Definition 2. [enc] is the observer's address-space page ([None]
    models an observer with no enclave yet). *)

val insecure_restrict : Monitor.t -> Memory.t
(** Memory the normal world can address. *)

val os_visible_regs_equal : State.t -> State.t -> bool
(** General-purpose registers plus every non-monitor bank. *)

val adv_equiv : ?enc:Pagedb.pagenr -> Monitor.t -> Monitor.t -> bool

val adv_equiv_explain : ?enc:Pagedb.pagenr -> Monitor.t -> Monitor.t -> string option
(** Like {!adv_equiv} but names the first violated clause. *)
