lib/sec/nonint.pp.mli: Format Komodo_core Komodo_machine Komodo_os
