lib/sec/attacks.pp.ml: Format Komodo_core Komodo_machine Komodo_os Komodo_sgx Komodo_tz Komodo_user List Option Printf String
