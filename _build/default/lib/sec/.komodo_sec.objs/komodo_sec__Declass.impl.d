lib/sec/declass.pp.ml: Format Komodo_core Komodo_machine Komodo_os Komodo_user List Printf
