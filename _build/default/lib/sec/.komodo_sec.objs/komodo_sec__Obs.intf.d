lib/sec/obs.pp.mli: Komodo_core Komodo_machine
