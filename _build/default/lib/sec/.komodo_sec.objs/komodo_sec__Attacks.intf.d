lib/sec/attacks.pp.mli:
