lib/sec/nonint.pp.ml: Format Komodo_core Komodo_machine Komodo_os Komodo_user List Obs Option Printf String
