lib/sec/declass.pp.mli:
