lib/sec/obs.pp.ml: Int Komodo_core Komodo_machine Komodo_tz List
