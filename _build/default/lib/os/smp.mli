(** Multi-core execution with a global monitor lock (paper §9.2).

    The paper's proposed route to multi-core support is "a single
    shared lock around all monitor activities", preserving the
    sequential reasoning of its proofs. Modelled here: several OS cores
    each hold a queue of monitor calls; a seeded scheduler interleaves
    them; every call acquires the one lock (charging acquisition
    cycles, plus spin cycles under contention). Because the lock
    serialises all monitor activity, per-call semantics are exactly the
    sequential ones — which the interleaving-independence tests
    check. *)

module Word = Komodo_machine.Word
module Errors = Komodo_core.Errors

type call = { call : int; args : Word.t list }

type stats = {
  total_calls : int;
  contended_acquisitions : int;
      (** acquisitions while another core had pending work *)
  lock_cycles : int;
}

val lock_cost : int
(** Uncontended acquire/release pair (LDREX/STREX + barrier). *)

val spin_cost : int
(** One spin iteration while waiting. *)

val run :
  ?seed:int ->
  Os.t ->
  scripts:call list list ->
  Os.t * (int * (Errors.t * Word.t) list) list * stats
(** Run one script per core against the shared monitor; returns the
    final state, per-core results in issue order, and lock stats. *)

val build_script : pages:int * int * int * int * int -> call list
(** A construction script for a minimal enclave out of the given
    (addrspace, l1pt, l2pt, data, thread) pages. *)
