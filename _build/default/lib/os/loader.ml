(** The enclave loader: replays an {!Image} through the monitor API.

    Allocation order mirrors the measurement: second-level tables first
    (unmeasured), then data pages in image order, then threads, then
    finalisation, then any spare pages. Initial contents are staged
    into insecure memory and passed to MapSecure by physical address,
    exactly as a real driver hands the monitor pages to copy in. *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable
module Errors = Komodo_core.Errors
module Mapping = Komodo_core.Mapping

type handle = {
  name : string;
  addrspace : int;
  l1pt : int;
  l2pts : (int * int) list;  (** (first-level index, page nr) *)
  data_pages : int list;
  threads : int list;  (** thread page numbers, in image order *)
  spares : int list;
  measurement : string;  (** as predicted from the image *)
}

type error = { failed_call : string; err : Errors.t }

let pp_error fmt e =
  Format.fprintf fmt "%s failed: %s" e.failed_call (Errors.show e.err)

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let step name (t, err) = if Errors.is_success err then Ok t else Error { failed_call = name; err }

(** Load [img], drawing secure pages from the OS allocator. On success
    the enclave is finalised and ready to enter. *)
let load (t : Os.t) (img : Image.t) : (Os.t * handle, error) result =
  let need = Image.pages_needed img in
  if Alloc.available t.Os.alloc < need then
    Error { failed_call = "alloc"; err = Errors.Pages_exhausted }
  else begin
    let take t =
      let n, alloc = Alloc.take_exn t.Os.alloc in
      ({ t with Os.alloc }, n)
    in
    let t, as_pg = take t in
    let t, l1_pg = take t in
    let* t = step "InitAddrspace" (Os.init_addrspace t ~addrspace:as_pg ~l1pt:l1_pg) in
    (* Second-level tables for every needed slot. *)
    let* t, l2pts =
      List.fold_left
        (fun acc l1index ->
          let* t, l2pts = acc in
          let t, l2_pg = take t in
          let* t =
            step "InitL2PTable" (Os.init_l2ptable t ~addrspace:as_pg ~l2pt:l2_pg ~l1index)
          in
          Ok (t, (l1index, l2_pg) :: l2pts))
        (Ok (t, []))
        (Image.l1_indices img)
    in
    let l2pts = List.rev l2pts in
    (* Secure data pages, staged through insecure memory. *)
    let* t, data_pages =
      List.fold_left
        (fun acc (p : Image.secure_page) ->
          let* t, pages = acc in
          let t, data_pg = take t in
          let t = Os.write_bytes t Os.staging_base p.Image.contents in
          let* t =
            step "MapSecure"
              (Os.map_secure t ~addrspace:as_pg ~data:data_pg ~mapping:p.Image.mapping
                 ~content:Os.staging_base)
          in
          Ok (t, data_pg :: pages))
        (Ok (t, []))
        img.Image.secure_pages
    in
    let data_pages = List.rev data_pages in
    (* Insecure shared mappings. *)
    let* t =
      List.fold_left
        (fun acc (m : Image.insecure_mapping) ->
          let* t = acc in
          step "MapInsecure"
            (Os.map_insecure t ~addrspace:as_pg ~mapping:m.Image.mapping
               ~target:m.Image.target))
        (Ok t) img.Image.insecure_mappings
    in
    (* Threads. *)
    let* t, threads =
      List.fold_left
        (fun acc entry ->
          let* t, ths = acc in
          let t, th_pg = take t in
          let* t = step "InitThread" (Os.init_thread t ~addrspace:as_pg ~thread:th_pg ~entry) in
          Ok (t, th_pg :: ths))
        (Ok (t, []))
        img.Image.threads
    in
    let threads = List.rev threads in
    let* t = step "Finalise" (Os.finalise t ~addrspace:as_pg) in
    (* Spare pages for dynamic allocation (post-finalise is fine). *)
    let* t, spares =
      List.fold_left
        (fun acc _ ->
          let* t, sps = acc in
          let t, sp_pg = take t in
          let* t = step "AllocSpare" (Os.alloc_spare t ~addrspace:as_pg ~spare:sp_pg) in
          Ok (t, sp_pg :: sps))
        (Ok (t, []))
        (List.init img.Image.spares (fun i -> i))
    in
    Ok
      ( t,
        {
          name = img.Image.name;
          addrspace = as_pg;
          l1pt = l1_pg;
          l2pts;
          data_pages;
          threads;
          spares = List.rev spares;
          measurement = Image.expected_measurement img;
        } )
  end

(** Tear an enclave down: Stop, then Remove every owned page and the
    address space, returning the pages to the allocator. *)
let unload (t : Os.t) (h : handle) : (Os.t, error) result =
  let* t = step "Stop" (Os.stop t ~addrspace:h.addrspace) in
  let owned =
    h.spares @ h.threads @ h.data_pages @ List.map snd h.l2pts @ [ h.l1pt ]
  in
  let* t =
    List.fold_left
      (fun acc pg ->
        let* t = acc in
        let* t = step "Remove" (Os.remove t ~page:pg) in
        Ok { t with Os.alloc = Alloc.put t.Os.alloc pg })
      (Ok t) owned
  in
  let* t = step "Remove(addrspace)" (Os.remove t ~page:h.addrspace) in
  Ok { t with Os.alloc = Alloc.put t.Os.alloc h.addrspace }
