(** Enclave images: what the OS loads.

    An image lists the secure pages (virtual address, permissions,
    initial contents), insecure shared mappings, threads, and spare
    pages of an enclave — everything the measurement covers plus the
    unmeasured shared windows. {!expected_measurement} predicts the
    measurement the monitor will compute, which is how a verifier
    decides what to trust. *)

module Word = Komodo_machine.Word
module Mapping = Komodo_core.Mapping

type secure_page = { mapping : Mapping.t; contents : string (* 4096 bytes *) }
type insecure_mapping = { mapping : Mapping.t; target : Word.t (* physical *) }

type t = {
  name : string;
  secure_pages : secure_page list;
  insecure_mappings : insecure_mapping list;
  threads : Word.t list;  (** entry points *)
  spares : int;  (** spare pages granted after finalisation *)
}

val empty : name:string -> t

val add_secure_page : t -> mapping:Mapping.t -> contents:string -> t
(** @raise Invalid_argument unless contents are exactly one page. *)

val add_blob : t -> va:Word.t -> w:bool -> x:bool -> string list -> t
(** A multi-page blob of consecutive pages starting at [va] (e.g. an
    assembled program). *)

val add_insecure_mapping : t -> mapping:Mapping.t -> target:Word.t -> t
val add_thread : t -> entry:Word.t -> t
val with_spares : t -> int -> t

val l1_indices : t -> int list
(** The distinct first-level slots the image's addresses need. *)

val pages_needed : t -> int
(** Secure pages to host the enclave: address space + L1 table + one L2
    table per slot + data pages + threads + spares. *)

val expected_measurement : t -> string
(** The measurement the monitor will compute, assuming the loader's
    call order. *)
