lib/os/alloc.pp.mli:
