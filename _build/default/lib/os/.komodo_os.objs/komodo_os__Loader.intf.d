lib/os/loader.pp.mli: Format Image Komodo_core Os
