lib/os/smp.pp.ml: Komodo_core Komodo_machine List Os
