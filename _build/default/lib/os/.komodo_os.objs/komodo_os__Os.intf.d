lib/os/os.pp.mli: Alloc Komodo_core Komodo_machine
