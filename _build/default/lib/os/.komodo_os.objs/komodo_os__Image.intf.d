lib/os/image.pp.mli: Komodo_core Komodo_machine
