lib/os/os.pp.ml: Alloc Komodo_core Komodo_machine Komodo_tz Komodo_user String
