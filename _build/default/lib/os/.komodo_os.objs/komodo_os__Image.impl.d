lib/os/image.pp.ml: Int Komodo_core Komodo_crypto Komodo_machine List String
