lib/os/smp.pp.mli: Komodo_core Komodo_machine Os
