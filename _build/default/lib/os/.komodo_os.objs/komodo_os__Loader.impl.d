lib/os/loader.pp.ml: Alloc Format Image Komodo_core Komodo_machine List Os
