lib/os/alloc.pp.ml: List
