(** The OS's secure-page allocator.

    Komodo's monitor does no allocation of its own: the OS must choose
    pages it knows to be free, or calls fail (§4). Being untrusted it
    may be wrong — the monitor rejects bad choices — but the honest OS
    keeps this book-keeping accurate. *)

type t

val make : npages:int -> t
val take : t -> (int * t) option

val take_exn : t -> int * t
(** @raise Failure when out of pages. *)

val put : t -> int -> t
(** Return a page after a successful Remove.
    @raise Invalid_argument on double free. *)

val available : t -> int
