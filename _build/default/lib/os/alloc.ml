(** The OS's secure-page allocator.

    Komodo's monitor does no allocation of its own: the OS must choose
    pages it knows to be free, or API calls fail (§4). This is the OS's
    book-keeping of which secure page numbers it has handed out. Being
    untrusted, it can of course be wrong — the monitor rejects bad
    choices — but the honest OS keeps it accurate. *)

type t = { free : int list; total : int }

let make ~npages = { free = List.init npages (fun i -> i); total = npages }

let take t =
  match t.free with
  | [] -> None
  | n :: free -> Some (n, { t with free })

let take_exn t =
  match take t with
  | Some r -> r
  | None -> failwith "Alloc.take_exn: out of secure pages"

(** Return page [n] to the free list (after a successful Remove). *)
let put t n =
  if List.mem n t.free then invalid_arg "Alloc.put: double free";
  { t with free = n :: t.free }

let available t = List.length t.free
