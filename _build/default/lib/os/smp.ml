(** Multi-core execution with a global monitor lock (paper §9.2).

    Komodo's prototype restricts the monitor and enclaves to a single
    core while the OS may run on many. The paper's proposed route to
    multi-core support is "a single shared lock around all monitor
    activities, which would preserve the sequential (Floyd-Hoare)
    reasoning used in our current proofs", noting microkernel experience
    that coarse locking need not hurt performance.

    This module implements that design at the model level: several OS
    cores each hold a queue of monitor calls; a seeded scheduler
    interleaves them; every call acquires the single monitor lock
    (charging acquisition cycles, and spinning — with cycles charged —
    when another core holds it). Because the lock serialises all
    monitor activity, the per-call semantics are exactly the verified
    sequential ones — which the interleaving-independence tests check. *)

module Word = Komodo_machine.Word
module Errors = Komodo_core.Errors
module Monitor = Komodo_core.Monitor

type call = { call : int; args : Word.t list }

type core = {
  id : int;
  mutable queue : call list;
  mutable results : (Errors.t * Word.t) list;  (** reverse order *)
}

type stats = {
  total_calls : int;
  contended_acquisitions : int;
      (** lock acquisitions while another core had work pending *)
  lock_cycles : int;  (** cycles spent acquiring/releasing the lock *)
}

(** Cost of an uncontended acquire/release pair (LDREX/STREX + barrier)
    and of each spin iteration while waiting. *)
let lock_cost = 40

let spin_cost = 12

(** Run [scripts] (one per core) against the shared monitor, with the
    scheduler choosing the next core by [seed]. Returns the final OS
    state, per-core results in issue order, and lock statistics. *)
let run ?(seed = 1) (os : Os.t) ~(scripts : call list list) =
  let cores =
    List.mapi (fun id queue -> { id; queue; results = [] }) scripts
  in
  let lcg = ref (((seed * 2654435761) lor 1) land 0x3FFFFFFF) in
  let next_choice n =
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    !lcg mod n
  in
  let total = ref 0 and contended = ref 0 and lock_cycles = ref 0 in
  let rec step os =
    let ready = List.filter (fun c -> c.queue <> []) cores in
    match ready with
    | [] -> os
    | _ ->
        let core = List.nth ready (next_choice (List.length ready)) in
        (match core.queue with
        | [] -> assert false
        | op :: rest ->
            core.queue <- rest;
            incr total;
            (* Lock acquisition: contended when any other core also has
               pending monitor work at this instant; the loser spins. *)
            let others_waiting = List.length ready > 1 in
            let spin = if others_waiting then spin_cost * (1 + next_choice 4) else 0 in
            if others_waiting then incr contended;
            lock_cycles := !lock_cycles + lock_cost + spin;
            let os = { os with Os.mon = Monitor.charge (lock_cost + spin) os.Os.mon } in
            let os, err, v = Os.smc os ~call:op.call ~args:op.args in
            core.results <- (err, v) :: core.results;
            step os)
  in
  let os = step os in
  let results = List.map (fun c -> (c.id, List.rev c.results)) cores in
  ( os,
    results,
    { total_calls = !total; contended_acquisitions = !contended; lock_cycles = !lock_cycles }
  )

(** Convenience: a construction script building a minimal enclave out of
    the five given pages (addrspace, l1pt, l2pt, data, thread). *)
let build_script ~pages:(asp, l1, l2, data, thread) =
  [
    { call = Komodo_core.Smc.sm_init_addrspace; args = [ Word.of_int asp; Word.of_int l1 ] };
    {
      call = Komodo_core.Smc.sm_init_l2ptable;
      args = [ Word.of_int asp; Word.of_int l2; Word.zero ];
    };
    {
      call = Komodo_core.Smc.sm_map_secure;
      args =
        [
          Word.of_int asp;
          Word.of_int data;
          Word.of_int 0x1003 (* va 0x1000 | RW *);
          Word.zero;
        ];
    };
    {
      call = Komodo_core.Smc.sm_init_thread;
      args = [ Word.of_int asp; Word.of_int thread; Word.zero ];
    };
    { call = Komodo_core.Smc.sm_finalise; args = [ Word.of_int asp ] };
  ]
