(** The enclave loader: replays an {!Image} through the monitor API.

    Allocation order mirrors the measurement: second-level tables
    (unmeasured), then data pages in image order, then threads, then
    finalisation, then spare pages. Initial contents are staged into
    insecure memory and passed to MapSecure by physical address, as a
    real driver hands the monitor pages to copy in. *)

module Errors = Komodo_core.Errors

type handle = {
  name : string;
  addrspace : int;
  l1pt : int;
  l2pts : (int * int) list;  (** (first-level slot, page number) *)
  data_pages : int list;  (** in image order *)
  threads : int list;  (** thread pages, in image order *)
  spares : int list;
  measurement : string;  (** as predicted from the image *)
}

type error = { failed_call : string; err : Errors.t }

val pp_error : Format.formatter -> error -> unit

val load : Os.t -> Image.t -> (Os.t * handle, error) result
(** On success the enclave is finalised and ready to enter. *)

val unload : Os.t -> handle -> (Os.t, error) result
(** Stop, Remove every owned page and the address space, and return
    the pages to the allocator. *)
