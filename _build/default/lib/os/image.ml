(** Enclave images: what the OS loads.

    An image lists the secure pages (virtual address, permissions,
    initial contents), the insecure shared mappings, and the threads
    (entry points) of an enclave — everything the measurement covers,
    plus the unmeasured insecure mappings. The loader replays the image
    through the monitor API; {!expected_measurement} predicts the
    measurement the monitor will compute, which is how a remote party
    (or test) decides what to trust. *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable
module Mapping = Komodo_core.Mapping
module Measure = Komodo_core.Measure
module Sha256 = Komodo_crypto.Sha256

type secure_page = { mapping : Mapping.t; contents : string (* 4096 bytes *) }
type insecure_mapping = { mapping : Mapping.t; target : Word.t (* physical *) }

type t = {
  name : string;
  secure_pages : secure_page list;
  insecure_mappings : insecure_mapping list;
  threads : Word.t list;  (** entry points *)
  spares : int;  (** spare pages to allocate after finalisation *)
}

let empty ~name =
  { name; secure_pages = []; insecure_mappings = []; threads = []; spares = 0 }

let add_secure_page img ~mapping ~contents =
  if String.length contents <> Ptable.page_size then
    invalid_arg "Image.add_secure_page: contents must be one page";
  { img with secure_pages = img.secure_pages @ [ { mapping; contents } ] }

(** Add a multi-page blob starting at [va] (e.g. an assembled program). *)
let add_blob img ~va ~w ~x pages =
  List.fold_left
    (fun (img, va) contents ->
      let mapping = Mapping.make ~va ~w ~x in
      ( add_secure_page img ~mapping ~contents,
        Word.add va (Word.of_int Ptable.page_size) ))
    (img, va) pages
  |> fst

let add_insecure_mapping img ~mapping ~target =
  { img with insecure_mappings = img.insecure_mappings @ [ { mapping; target } ] }

let add_thread img ~entry = { img with threads = img.threads @ [ entry ] }
let with_spares img n = { img with spares = n }

(** The distinct first-level table slots the image's virtual addresses
    need (both secure and insecure mappings), in increasing order. *)
let l1_indices img =
  let of_mapping (m : Mapping.t) = Ptable.l1_index m.Mapping.va in
  let idxs =
    List.map (fun (p : secure_page) -> of_mapping p.mapping) img.secure_pages
    @ List.map (fun (p : insecure_mapping) -> of_mapping p.mapping) img.insecure_mappings
  in
  List.sort_uniq Int.compare idxs

(** Secure pages needed to host the enclave: address space + L1 table +
    one L2 table per slot + data pages + thread pages + spares. *)
let pages_needed img =
  2 + List.length (l1_indices img)
  + List.length img.secure_pages
  + List.length img.threads + img.spares

(** Predict the measurement the monitor will compute for this image,
    assuming the loader's call order (threads after data pages). *)
let expected_measurement img =
  let m = Measure.initial in
  let m =
    List.fold_left
      (fun m (p : secure_page) ->
        Measure.add_data_page m ~mapping:p.mapping ~contents:p.contents)
      m img.secure_pages
  in
  let m =
    List.fold_left (fun m entry -> Measure.add_thread m ~entry_point:entry) m img.threads
  in
  match Measure.digest (Measure.finalise m) with
  | Some d -> d
  | None -> assert false
