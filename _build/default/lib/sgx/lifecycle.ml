(** The SGX instruction-level enclave lifecycle (baseline model).

    Implements the enclave-management instruction set sketched in §2 as
    a state machine over the {!Epcm}: ECREATE/EADD/EEXTEND/EINIT build
    and measure an enclave, EENTER/ERESUME/EEXIT/AEX cross into and out
    of it, EAUG/EACCEPT add the SGXv2 dynamic pages, EREMOVE reclaims.
    Costs come from {!Cost}, giving the comparison series for Table 3.

    Deliberately mirrored differences from Komodo (used by the tests and
    the controlled-channel demonstration in {!Channel}):
    - the OS controls type, address and permissions of dynamic (EAUG)
      allocations, where Komodo's spare pages hide that choice (§4);
    - enclave page faults are reported to the OS with the faulting page
      address, and the OS can revoke mappings to induce them — the
      controlled channel (§2). *)

module Word = Komodo_machine.Word
module Sha256 = Komodo_crypto.Sha256

type error =
  | Invalid_index
  | Page_in_use
  | Not_secs
  | Already_initialised
  | Not_initialised
  | Pending_page
  | Bad_argument
[@@deriving eq, show { with_path = false }]

type secs_state = Building of Sha256.ctx | Initialised of Sha256.digest

type enclave = {
  secs : int;
  state : secs_state;
  tcs_entered : (int * bool) list;  (** TCS EPC index -> entered *)
}

type t = {
  epcm : Epcm.t;
  enclaves : (int * enclave) list;  (** keyed by SECS index *)
  cycles : int;
  (* Controlled-channel state: which enclave pages the OS has revoked
     from the page tables, and the fault trace it observes. *)
  revoked : (int * Word.t) list;  (** (secs, va) with PTE removed *)
  fault_trace : (int * Word.t) list;  (** (secs, faulting va) seen by OS *)
}

let make ~epc_size =
  {
    epcm = Epcm.make ~size:epc_size;
    enclaves = [];
    cycles = 0;
    revoked = [];
    fault_trace = [];
  }

let charge n t = { t with cycles = t.cycles + n }
let enclave t secs = List.assoc_opt secs t.enclaves

let update_enclave t secs e =
  { t with enclaves = (secs, e) :: List.remove_assoc secs t.enclaves }

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let need_building t secs =
  match enclave t secs with
  | None -> Error Not_secs
  | Some e -> (
      match e.state with
      | Building ctx -> Ok (e, ctx)
      | Initialised _ -> Error Already_initialised)

(** ECREATE: allocate a SECS page and begin the measurement. *)
let ecreate t ~secs =
  if not (Epcm.valid_index t.epcm secs) then Error Invalid_index
  else if not (Epcm.is_free t.epcm secs) then Error Page_in_use
  else begin
    let epcm =
      Epcm.set t.epcm secs
        (Epcm.Valid
           {
             Epcm.page_type = Epcm.PT_SECS;
             owner = secs;
             va = Word.zero;
             perms = { Epcm.r = false; w = false; x = false };
             pending = false;
           })
    in
    let e = { secs; state = Building Sha256.init; tcs_entered = [] } in
    Ok (charge Cost.ecreate (update_enclave { t with epcm } secs e))
  end

(** EADD: add a page (REG or TCS) with contents, measuring the metadata;
    EEXTEND (16x) then measures the contents — we fold both in, as
    drivers invariably pair them. *)
let eadd t ~secs ~index ~page_type ~va ~perms ~contents =
  let* e, ctx = need_building t secs in
  if not (Epcm.valid_index t.epcm index) then Error Invalid_index
  else if not (Epcm.is_free t.epcm index) then Error Page_in_use
  else if String.length contents <> 4096 then Error Bad_argument
  else begin
    let epcm =
      Epcm.set t.epcm index
        (Epcm.Valid { Epcm.page_type; owner = secs; va; perms; pending = false })
    in
    let ctx =
      Sha256.absorb ctx
        (Word.to_bytes_be va
        ^ (match page_type with Epcm.PT_TCS -> "tcs!" | _ -> "reg!")
        ^ contents)
    in
    let e =
      {
        e with
        state = Building ctx;
        tcs_entered =
          (match page_type with
          | Epcm.PT_TCS -> (index, false) :: e.tcs_entered
          | _ -> e.tcs_entered);
      }
    in
    Ok
      (charge
         (Cost.eadd + Cost.eextend_per_page)
         (update_enclave { t with epcm } secs e))
  end

(** EINIT: finalise the measurement; the enclave becomes executable. *)
let einit t ~secs =
  let* e, ctx = need_building t secs in
  let e = { e with state = Initialised (Sha256.finalize ctx) } in
  Ok (charge Cost.einit (update_enclave t secs e))

let measurement t ~secs =
  match enclave t secs with
  | Some { state = Initialised d; _ } -> Some d
  | _ -> None

let need_initialised t secs =
  match enclave t secs with
  | None -> Error Not_secs
  | Some e -> (
      match e.state with
      | Initialised _ -> Ok e
      | Building _ -> Error Not_initialised)

(** EENTER through a TCS. *)
let eenter t ~secs ~tcs =
  let* e = need_initialised t secs in
  match List.assoc_opt tcs e.tcs_entered with
  | None -> Error Bad_argument
  | Some true -> Error Page_in_use
  | Some false ->
      let e =
        { e with tcs_entered = (tcs, true) :: List.remove_assoc tcs e.tcs_entered }
      in
      Ok (charge Cost.eenter (update_enclave t secs e))

let exit_kind_cost = function `Eexit -> Cost.eexit | `Aex -> Cost.aex

(** EEXIT or AEX: leave the enclave, freeing the TCS for re-entry
    (AEX leaves resumable state; we track only entered-ness). *)
let eleave t ~secs ~tcs kind =
  let* e = need_initialised t secs in
  match List.assoc_opt tcs e.tcs_entered with
  | Some true ->
      let e =
        { e with tcs_entered = (tcs, false) :: List.remove_assoc tcs e.tcs_entered }
      in
      Ok (charge (exit_kind_cost kind) (update_enclave t secs e))
  | _ -> Error Bad_argument

(** SGXv2 dynamic allocation: the OS chooses everything (type, address,
    permissions) — the side channel Komodo chose not to mirror (§4). *)
let eaug t ~secs ~index ~va =
  let* _ = need_initialised t secs in
  if not (Epcm.valid_index t.epcm index) then Error Invalid_index
  else if not (Epcm.is_free t.epcm index) then Error Page_in_use
  else begin
    let epcm =
      Epcm.set t.epcm index
        (Epcm.Valid
           {
             Epcm.page_type = Epcm.PT_REG;
             owner = secs;
             va;
             perms = { Epcm.r = true; w = true; x = false };
             pending = true;
           })
    in
    Ok (charge Cost.eaug { t with epcm })
  end

(** EACCEPT from inside the enclave. *)
let eaccept t ~secs ~index =
  let* _ = need_initialised t secs in
  match Epcm.get t.epcm index with
  | Epcm.Valid ({ pending = true; owner; _ } as e) when owner = secs ->
      let epcm = Epcm.set t.epcm index (Epcm.Valid { e with Epcm.pending = false }) in
      Ok (charge Cost.eaccept { t with epcm })
  | _ -> Error Pending_page

let eremove t ~index =
  match Epcm.get t.epcm index with
  | Epcm.Free -> Error Invalid_index
  | Epcm.Valid { page_type = Epcm.PT_SECS; owner; _ } ->
      if Epcm.owned t.epcm owner <> [] then Error Page_in_use
      else Ok (charge Cost.eremove { t with epcm = Epcm.set t.epcm index Epcm.Free })
  | Epcm.Valid _ ->
      Ok (charge Cost.eremove { t with epcm = Epcm.set t.epcm index Epcm.Free })

(** EREPORT-style local attestation MAC over measurement and user data. *)
let ereport t ~secs ~key ~data =
  match measurement t ~secs with
  | None -> Error Not_initialised
  | Some m -> Ok (charge Cost.ereport t, Komodo_crypto.Hmac.mac ~key (m ^ data))
