(** The SGX enclave page cache map (EPCM), modelled for the baseline.

    SGX's EPCM is the hardware-maintained analogue of Komodo's PageDB
    (§2): metadata for every encrypted page — allocation state, type,
    owning enclave, permissions and virtual address — consulted on every
    TLB miss to enforce enclave protections. We model enough of it to
    mirror the comparison the paper draws: the same reference-monitor
    state machine, implemented as instructions rather than monitor
    calls. *)

module Word = Komodo_machine.Word

type page_type =
  | PT_SECS  (** enclave control structure *)
  | PT_REG  (** regular enclave page *)
  | PT_TCS  (** thread control structure *)
[@@deriving eq, show { with_path = false }]

type perms = { r : bool; w : bool; x : bool } [@@deriving eq, show { with_path = false }]

type entry = {
  page_type : page_type;
  owner : int;  (** EPC index of the owning SECS *)
  va : Word.t;  (** enclave linear address *)
  perms : perms;
  pending : bool;  (** EAUG'd, awaiting EACCEPT (SGXv2) *)
}
[@@deriving eq, show { with_path = false }]

type slot = Free | Valid of entry [@@deriving eq, show { with_path = false }]

type t = { slots : slot array; size : int }

let make ~size = { slots = Array.make size Free; size }
let valid_index t i = i >= 0 && i < t.size

let get t i =
  if not (valid_index t i) then invalid_arg "Epcm.get: EPC index out of range";
  t.slots.(i)

let set t i s =
  if not (valid_index t i) then invalid_arg "Epcm.set: EPC index out of range";
  let slots = Array.copy t.slots in
  slots.(i) <- s;
  { t with slots }

let is_free t i = match get t i with Free -> true | Valid _ -> false

(** Pages owned by SECS [secs] (excluding the SECS itself). *)
let owned t secs =
  let acc = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Valid e when e.owner = secs && i <> secs -> acc := i :: !acc
      | _ -> ())
    t.slots;
  List.rev !acc

let free_count t =
  Array.fold_left (fun n s -> match s with Free -> n + 1 | Valid _ -> n) 0 t.slots
