(** Published SGX latencies used for the §8.1 comparison.

    Orenbach et al. (Eleos), cited by the paper, report EENTER ≈ 3,800
    and EEXIT ≈ 3,300 cycles (2 GHz Skylake) — ~7,100 for a full
    crossing, an order of magnitude above Komodo's 738 (Table 3
    discussion). Other figures are ballpark values from the SGX
    literature so the baseline has the right relative shape. *)

val cpu_hz : int
val eenter : int
val eexit : int
val eresume : int
val aex : int
val full_crossing : int
val ecreate : int
val eadd : int
val eextend : int
val eextend_per_page : int
val einit : int
val eaug : int
val eaccept : int
val eremove : int
val ereport : int
val cycles_to_ms : int -> float
