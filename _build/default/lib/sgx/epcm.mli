(** The SGX enclave page cache map (EPCM), for the baseline model.

    SGX's hardware-maintained analogue of Komodo's PageDB (§2):
    metadata for every encrypted page — type, owning enclave,
    permissions, linear address — consulted on every TLB miss. Modelled
    far enough to mirror the comparison the paper draws. *)

module Word = Komodo_machine.Word

type page_type =
  | PT_SECS  (** enclave control structure *)
  | PT_REG  (** regular enclave page *)
  | PT_TCS  (** thread control structure *)

val equal_page_type : page_type -> page_type -> bool
val pp_page_type : Format.formatter -> page_type -> unit
val show_page_type : page_type -> string

type perms = { r : bool; w : bool; x : bool }

val equal_perms : perms -> perms -> bool
val pp_perms : Format.formatter -> perms -> unit
val show_perms : perms -> string

type entry = {
  page_type : page_type;
  owner : int;  (** EPC index of the owning SECS *)
  va : Word.t;
  perms : perms;
  pending : bool;  (** EAUG'd, awaiting EACCEPT (SGXv2) *)
}

val equal_entry : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit
val show_entry : entry -> string

type slot = Free | Valid of entry

val equal_slot : slot -> slot -> bool
val pp_slot : Format.formatter -> slot -> unit
val show_slot : slot -> string

type t

val make : size:int -> t
val valid_index : t -> int -> bool

val get : t -> int -> slot
(** @raise Invalid_argument out of range. *)

val set : t -> int -> slot -> t
val is_free : t -> int -> bool

val owned : t -> int -> int list
(** Pages owned by a SECS, excluding the SECS itself. *)

val free_count : t -> int
