(** The SGX instruction-level enclave lifecycle (baseline model).

    The enclave-management instruction set sketched in the paper's §2
    as a state machine over the {!Epcm}: ECREATE/EADD/EEXTEND/EINIT
    build and measure an enclave, EENTER/ERESUME/EEXIT/AEX cross in and
    out, EAUG/EACCEPT add SGXv2 dynamic pages, EREMOVE reclaims. Costs
    come from {!Cost}, giving the Table 3 comparison series.

    Deliberately mirrored differences from Komodo (exercised by tests
    and {!Channel}): the OS controls the type, address and permissions
    of dynamic allocations (the side channel Komodo closes, §4), and
    enclave page faults are visible to — and inducible by — the OS (the
    controlled channel, §2). *)

module Word = Komodo_machine.Word
module Sha256 = Komodo_crypto.Sha256

type error =
  | Invalid_index
  | Page_in_use
  | Not_secs
  | Already_initialised
  | Not_initialised
  | Pending_page
  | Bad_argument

val equal_error : error -> error -> bool
val pp_error : Format.formatter -> error -> unit
val show_error : error -> string

type secs_state = Building of Sha256.ctx | Initialised of Sha256.digest

type enclave = {
  secs : int;
  state : secs_state;
  tcs_entered : (int * bool) list;
}

type t = {
  epcm : Epcm.t;
  enclaves : (int * enclave) list;
  cycles : int;
  revoked : (int * Word.t) list;  (** (secs, va) whose PTE the OS removed *)
  fault_trace : (int * Word.t) list;  (** (secs, faulting page) the OS saw *)
}

val make : epc_size:int -> t
val charge : int -> t -> t
val enclave : t -> int -> enclave option

val ecreate : t -> secs:int -> (t, error) result

val eadd :
  t ->
  secs:int ->
  index:int ->
  page_type:Epcm.page_type ->
  va:Word.t ->
  perms:Epcm.perms ->
  contents:string ->
  (t, error) result
(** EADD + the 16 EEXTENDs measuring the page, as drivers pair them. *)

val einit : t -> secs:int -> (t, error) result
val measurement : t -> secs:int -> Sha256.digest option
val eenter : t -> secs:int -> tcs:int -> (t, error) result
val eleave : t -> secs:int -> tcs:int -> [ `Eexit | `Aex ] -> (t, error) result
val eaug : t -> secs:int -> index:int -> va:Word.t -> (t, error) result
val eaccept : t -> secs:int -> index:int -> (t, error) result
val eremove : t -> index:int -> (t, error) result

val ereport : t -> secs:int -> key:string -> data:string -> (t * string, error) result
(** EREPORT-style local attestation MAC. *)
