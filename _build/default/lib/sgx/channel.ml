(** The controlled channel (§2), demonstrated on the baseline.

    In SGX, the OS manages enclave page tables: it can revoke a PTE, let
    the enclave fault, observe the faulting page address, and repeat —
    deterministically reconstructing the enclave's page-granular access
    trace (Xu et al., cited by the paper). Komodo is immune by design:
    the OS neither builds the enclave's page table (the monitor does)
    nor learns anything but the bare exception type on a fault (§3.1).

    This module makes the asymmetry executable: the same secret-
    dependent access pattern leaks the secret through the SGX model's
    fault trace, and provably cannot leak through the Komodo API —
    the tests drive both sides. *)

module Word = Komodo_machine.Word

(** The OS revokes the mapping for [va] of enclave [secs]. In SGX this
    is an ordinary page-table write the hardware cannot prevent. *)
let revoke (t : Lifecycle.t) ~secs ~va =
  { t with Lifecycle.revoked = (secs, va) :: t.Lifecycle.revoked }

let restore (t : Lifecycle.t) ~secs ~va =
  {
    t with
    Lifecycle.revoked =
      List.filter (fun r -> r <> (secs, va)) t.Lifecycle.revoked;
  }

let is_revoked (t : Lifecycle.t) ~secs ~va = List.mem (secs, va) t.Lifecycle.revoked

(** Model the enclave touching [va]: if revoked, the access faults, and
    SGX delivers the *full faulting address's page* to the OS handler. *)
let enclave_access (t : Lifecycle.t) ~secs ~va =
  if is_revoked t ~secs ~va then
    let page = Word.of_int (Word.to_int va land lnot 0xFFF) in
    ( { t with Lifecycle.fault_trace = (secs, page) :: t.Lifecycle.fault_trace },
      `Faulted page )
  else (t, `Ok)

(** What the OS has learned: the page-granular access trace. *)
let observed_trace (t : Lifecycle.t) ~secs =
  List.rev
    (List.filter_map
       (fun (s, va) -> if s = secs then Some va else None)
       t.Lifecycle.fault_trace)

(** The attack from the paper's motivation: a victim whose memory
    accesses depend on a secret bit (e.g. branching to one of two
    functions). The OS revokes both candidate pages, lets the victim
    run, and reads the secret off the fault trace. Returns the
    recovered bits. *)
let infer_secret_bits t ~secs ~page_a ~page_b ~accesses =
  let t = revoke t ~secs ~va:page_a in
  let t = revoke t ~secs ~va:page_b in
  let recovered, t =
    List.fold_left
      (fun (bits, t) secret_bit ->
        (* The victim touches page_a for a 0 bit, page_b for a 1 bit. *)
        let target = if secret_bit then page_b else page_a in
        let t, _ = enclave_access t ~secs ~va:target in
        let bit =
          match observed_trace t ~secs with
          | [] -> false
          | trace -> Word.equal (List.nth trace (List.length trace - 1)) page_b
        in
        (bit :: bits, t))
      ([], t) accesses
  in
  (List.rev recovered, t)
