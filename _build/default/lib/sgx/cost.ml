(** Published SGX latencies used for the §8.1 comparison.

    Orenbach et al. (Eleos, EuroSys'17), cited by the paper, report
    EENTER at about 3,800 and EEXIT at about 3,300 cycles on a 2 GHz
    Skylake, i.e. ~7,100 cycles for a full enclave crossing — an order
    of magnitude above Komodo's 738 (Table 3 discussion). Other numbers
    are ballpark figures from the SGX literature, present so the
    baseline's costs have the right relative shape. *)

let cpu_hz = 2_000_000_000
let eenter = 3_800
let eexit = 3_300
let eresume = 3_900
let aex = 3_300 (* asynchronous exit *)
let full_crossing = eenter + eexit

let ecreate = 10_000
let eadd = 12_000 (* includes copying the page into EPC *)
let eextend = 2_000 (* measures 256 bytes per invocation *)
let eextend_per_page = 16 * eextend
let einit = 60_000 (* launch-token & measurement finalisation *)
let eaug = 10_000
let eaccept = 4_000
let eremove = 2_000

(** EREPORT-style local attestation. *)
let ereport = 15_000

let cycles_to_ms cycles = float_of_int cycles /. (float_of_int cpu_hz /. 1000.)
