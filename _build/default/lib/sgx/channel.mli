(** The controlled channel (§2), demonstrated on the SGX baseline.

    In SGX the OS manages enclave page tables: it can revoke a PTE, let
    the enclave fault, observe the faulting page, and repeat —
    deterministically reconstructing the enclave's page-granular access
    trace (Xu et al.). Komodo is immune by design: the monitor builds
    the enclave's table and reveals only the bare exception type on a
    fault. This module makes the asymmetry executable. *)

module Word = Komodo_machine.Word

val revoke : Lifecycle.t -> secs:int -> va:Word.t -> Lifecycle.t
(** The OS removes the mapping — an ordinary page-table write SGX
    hardware cannot prevent. *)

val restore : Lifecycle.t -> secs:int -> va:Word.t -> Lifecycle.t
val is_revoked : Lifecycle.t -> secs:int -> va:Word.t -> bool

val enclave_access :
  Lifecycle.t -> secs:int -> va:Word.t -> Lifecycle.t * [ `Faulted of Word.t | `Ok ]
(** The enclave touches [va]; if revoked, the fault delivers the
    page-granular address to the OS handler. *)

val observed_trace : Lifecycle.t -> secs:int -> Word.t list
(** What the OS has learned: the access trace. *)

val infer_secret_bits :
  Lifecycle.t ->
  secs:int ->
  page_a:Word.t ->
  page_b:Word.t ->
  accesses:bool list ->
  bool list * Lifecycle.t
(** The attack: a victim whose accesses depend on secret bits touches
    [page_a] for 0 and [page_b] for 1; the OS revokes both and reads
    the bits off its fault trace. *)
