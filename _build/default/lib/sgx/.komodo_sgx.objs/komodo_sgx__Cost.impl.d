lib/sgx/cost.pp.ml:
