lib/sgx/channel.pp.mli: Komodo_machine Lifecycle
