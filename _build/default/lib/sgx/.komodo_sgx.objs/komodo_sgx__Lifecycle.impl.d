lib/sgx/lifecycle.pp.ml: Cost Epcm Komodo_crypto Komodo_machine List Ppx_deriving_runtime String
