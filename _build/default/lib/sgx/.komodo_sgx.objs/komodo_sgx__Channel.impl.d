lib/sgx/channel.pp.ml: Komodo_machine Lifecycle List
