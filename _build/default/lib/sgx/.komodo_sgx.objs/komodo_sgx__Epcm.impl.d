lib/sgx/epcm.pp.ml: Array Komodo_machine List Ppx_deriving_runtime
