lib/sgx/lifecycle.pp.mli: Epcm Format Komodo_crypto Komodo_machine
