lib/sgx/cost.pp.mli:
