lib/sgx/epcm.pp.mli: Format Komodo_machine
