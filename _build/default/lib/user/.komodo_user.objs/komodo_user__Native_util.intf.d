lib/user/native_util.pp.mli: Komodo_crypto Komodo_machine
