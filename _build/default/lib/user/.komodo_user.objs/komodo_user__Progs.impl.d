lib/user/progs.pp.ml: Komodo_machine Svc_nums Uprog
