lib/user/verifier.pp.ml: Komodo_core Komodo_crypto Komodo_machine List Native_util Notary String Svc_nums
