lib/user/uprog.pp.mli: Komodo_machine
