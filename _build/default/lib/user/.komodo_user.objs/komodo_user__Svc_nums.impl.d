lib/user/svc_nums.pp.ml: Komodo_core
