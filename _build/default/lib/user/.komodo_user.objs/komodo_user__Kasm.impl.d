lib/user/kasm.pp.ml: Buffer Char Format Komodo_machine List Printf String Svc_nums
