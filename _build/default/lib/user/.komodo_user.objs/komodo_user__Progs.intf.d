lib/user/progs.pp.mli: Komodo_machine
