lib/user/uprog.pp.ml: Buffer Komodo_machine List String Svc_nums
