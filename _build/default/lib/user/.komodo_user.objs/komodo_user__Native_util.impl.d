lib/user/native_util.pp.ml: Komodo_crypto Komodo_machine List String Svc_nums
