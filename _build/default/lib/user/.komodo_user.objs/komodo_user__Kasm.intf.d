lib/user/kasm.pp.mli: Format Komodo_machine
