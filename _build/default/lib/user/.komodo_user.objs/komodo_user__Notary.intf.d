lib/user/notary.pp.mli: Komodo_core Komodo_crypto Komodo_machine
