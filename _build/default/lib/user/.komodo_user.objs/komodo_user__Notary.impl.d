lib/user/notary.pp.ml: Komodo_core Komodo_crypto Komodo_machine List Native_util String Svc_nums
