lib/user/svc_nums.pp.mli:
