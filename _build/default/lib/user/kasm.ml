module Insn = Komodo_machine.Insn
module Regs = Komodo_machine.Regs
module Word = Komodo_machine.Word

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Parse_error of error

let fail line message = raise (Parse_error { line; message })

(* -- Lexical helpers ----------------------------------------------------- *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize line =
  (* Split on whitespace and commas; brackets become their own tokens. *)
  let buf = Buffer.create 8 and toks = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | '[' | ']' ->
          flush ();
          toks := String.make 1 c :: !toks
      | c -> Buffer.add_char buf (Char.lowercase_ascii c))
    line;
  flush ();
  List.rev !toks

let parse_reg ln = function
  | "sp" -> Regs.SP
  | "lr" -> Regs.LR
  | tok ->
      if String.length tok >= 2 && tok.[0] = 'r' then begin
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some n when n >= 0 && n <= 12 -> Regs.R n
        | Some _ | None -> fail ln (Printf.sprintf "bad register %S" tok)
      end
      else fail ln (Printf.sprintf "expected register, got %S" tok)

let parse_imm ?(syms = []) ln tok =
  if String.length tok < 2 || tok.[0] <> '#' then
    fail ln (Printf.sprintf "expected immediate, got %S" tok)
  else
    let body = String.sub tok 1 (String.length tok - 1) in
    match int_of_string_opt body with
    | Some n -> Word.of_int n
    | None -> (
        match List.assoc_opt body syms with
        | Some w -> w
        | None -> fail ln (Printf.sprintf "bad immediate or unknown symbol %S" tok))

let parse_operand ?syms ln tok =
  if String.length tok > 0 && tok.[0] = '#' then Insn.Imm (parse_imm ?syms ln tok)
  else Insn.Reg (parse_reg ln tok)

let parse_cond ln = function
  | "eq" -> Insn.EQ
  | "ne" -> Insn.NE
  | "cs" | "hs" -> Insn.CS
  | "cc" | "lo" -> Insn.CC
  | "mi" -> Insn.MI
  | "pl" -> Insn.PL
  | "hi" -> Insn.HI
  | "ls" -> Insn.LS
  | "ge" -> Insn.GE
  | "lt" -> Insn.LT
  | "gt" -> Insn.GT
  | "le" -> Insn.LE
  | "al" -> Insn.AL
  | tok -> fail ln (Printf.sprintf "bad condition %S" tok)

(** Memory operand: "[" rn "]" or "[" rn (#ofs | rm) "]". *)
let parse_mem ?syms ln = function
  | [ "["; rn; "]" ] -> (parse_reg ln rn, Insn.Imm Word.zero)
  | [ "["; rn; op; "]" ] -> (parse_reg ln rn, parse_operand ?syms ln op)
  | _ -> fail ln "expected memory operand [rn], [rn, #ofs] or [rn, rm]"

(* -- Instruction parsing -------------------------------------------------- *)

let parse_insn ?syms ln mnemonic operands =
  let two mk =
    match operands with
    | [ rd; op ] -> mk (parse_reg ln rd) (parse_operand ?syms ln op)
    | _ -> fail ln (mnemonic ^ " takes: rd, operand")
  in
  let three mk =
    match operands with
    | [ rd; rn; op ] -> mk (parse_reg ln rd) (parse_reg ln rn) (parse_operand ?syms ln op)
    | _ -> fail ln (mnemonic ^ " takes: rd, rn, operand")
  in
  let mem mk =
    match operands with
    | rd :: rest ->
        let rn, ofs = parse_mem ?syms ln rest in
        mk (parse_reg ln rd) rn ofs
    | [] -> fail ln (mnemonic ^ " takes: rd, [rn, ofs]")
  in
  match mnemonic with
  | "mov" -> two (fun rd op -> Insn.Mov (rd, op))
  | "mvn" -> two (fun rd op -> Insn.Mvn (rd, op))
  | "add" -> three (fun rd rn op -> Insn.Add (rd, rn, op))
  | "sub" -> three (fun rd rn op -> Insn.Sub (rd, rn, op))
  | "rsb" -> three (fun rd rn op -> Insn.Rsb (rd, rn, op))
  | "mul" -> (
      match operands with
      | [ rd; rn; rm ] -> Insn.Mul (parse_reg ln rd, parse_reg ln rn, parse_reg ln rm)
      | _ -> fail ln "mul takes: rd, rn, rm")
  | "and" -> three (fun rd rn op -> Insn.And_ (rd, rn, op))
  | "orr" -> three (fun rd rn op -> Insn.Orr (rd, rn, op))
  | "eor" -> three (fun rd rn op -> Insn.Eor (rd, rn, op))
  | "bic" -> three (fun rd rn op -> Insn.Bic (rd, rn, op))
  | "lsl" -> three (fun rd rn op -> Insn.Lsl (rd, rn, op))
  | "lsr" -> three (fun rd rn op -> Insn.Lsr (rd, rn, op))
  | "asr" -> three (fun rd rn op -> Insn.Asr (rd, rn, op))
  | "ror" -> three (fun rd rn op -> Insn.Ror (rd, rn, op))
  | "cmp" -> two (fun rn op -> Insn.Cmp (rn, op))
  | "cmn" -> two (fun rn op -> Insn.Cmn (rn, op))
  | "tst" -> two (fun rn op -> Insn.Tst (rn, op))
  | "ldr" -> mem (fun rd rn op -> Insn.Ldr (rd, rn, op))
  | "str" -> mem (fun rd rn op -> Insn.Str (rd, rn, op))
  | "svc" -> (
      match operands with
      | [] -> Insn.Svc Word.zero
      | [ imm ] -> Insn.Svc (parse_imm ?syms ln imm)
      | _ -> fail ln "svc takes at most one immediate")
  | "udf" -> Insn.Udf
  | "nop" -> Insn.Nop
  | m -> fail ln (Printf.sprintf "unknown mnemonic %S" m)

(* -- Block structure ------------------------------------------------------ *)

type frame =
  | Top of Insn.stmt list
  | In_if of int * Insn.cond * Insn.stmt list  (** collecting then-block *)
  | In_else of int * Insn.cond * Insn.stmt list * Insn.stmt list
  | In_while of int * Insn.cond * Insn.stmt list

(** Symbols predefined for every program: the SVC call numbers. *)
let builtin_syms =
  [
    ("svc_exit", Word.of_int Svc_nums.exit);
    ("svc_get_random", Word.of_int Svc_nums.get_random);
    ("svc_attest", Word.of_int Svc_nums.attest);
    ("svc_verify", Word.of_int Svc_nums.verify);
    ("svc_init_l2ptable", Word.of_int Svc_nums.init_l2ptable);
    ("svc_map_data", Word.of_int Svc_nums.map_data);
    ("svc_unmap_data", Word.of_int Svc_nums.unmap_data);
    ("svc_set_dispatcher", Word.of_int Svc_nums.set_dispatcher);
    ("svc_resume_faulted", Word.of_int Svc_nums.resume_faulted);
  ]

let parse text =
  let lines = String.split_on_char '\n' text in
  let syms = ref builtin_syms in
  let push stmt = function
    | Top acc -> Top (stmt :: acc)
    | In_if (l, c, acc) -> In_if (l, c, stmt :: acc)
    | In_else (l, c, t, acc) -> In_else (l, c, t, stmt :: acc)
    | In_while (l, c, acc) -> In_while (l, c, stmt :: acc)
  in
  try
    let stack =
      List.fold_left
        (fun (ln, stack) raw ->
          let ln = ln + 1 in
          match tokenize (strip_comment raw) with
          | [] -> (ln, stack)
          | [ ".equ"; name; value ] ->
              let w =
                match int_of_string_opt value with
                | Some n -> Word.of_int n
                | None -> fail ln (Printf.sprintf ".equ %s: bad value %S" name value)
              in
              syms := (name, w) :: !syms;
              (ln, stack)
          | ".if" :: rest -> (
              match rest with
              | [ c ] -> (ln, In_if (ln, parse_cond ln c, []) :: stack)
              | _ -> fail ln ".if takes one condition")
          | [ ".else" ] -> (
              match stack with
              | In_if (l, c, then_acc) :: below ->
                  (ln, In_else (l, c, List.rev then_acc, []) :: below)
              | _ -> fail ln ".else without .if")
          | [ ".endif" ] -> (
              let close stmt below =
                match below with
                | top :: rest -> (ln, push stmt top :: rest)
                | [] -> fail ln "internal: empty stack"
              in
              match stack with
              | In_if (_, c, then_acc) :: below ->
                  close (Insn.If (c, List.rev then_acc, [])) below
              | In_else (_, c, then_b, else_acc) :: below ->
                  close (Insn.If (c, then_b, List.rev else_acc)) below
              | _ -> fail ln ".endif without .if")
          | ".while" :: rest -> (
              match rest with
              | [ c ] -> (ln, In_while (ln, parse_cond ln c, []) :: stack)
              | _ -> fail ln ".while takes one condition")
          | [ ".endwhile" ] -> (
              match stack with
              | In_while (_, c, body) :: below -> (
                  let stmt = Insn.While (c, List.rev body) in
                  match below with
                  | top :: rest -> (ln, push stmt top :: rest)
                  | [] -> fail ln "internal: empty stack")
              | _ -> fail ln ".endwhile without .while")
          | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
              fail ln (Printf.sprintf "unknown directive %S" tok)
          | mnemonic :: operands ->
              let stmt = Insn.I (parse_insn ~syms:!syms ln mnemonic operands) in
              (match stack with
              | top :: rest -> (ln, push stmt top :: rest)
              | [] -> fail ln "internal: empty stack"))
        (0, [ Top [] ])
        lines
      |> snd
    in
    match stack with
    | [ Top acc ] -> Ok (List.rev acc)
    | In_if (l, _, _) :: _ | In_else (l, _, _, _) :: _ ->
        Error { line = l; message = "unterminated .if" }
    | In_while (l, _, _) :: _ -> Error { line = l; message = "unterminated .while" }
    | _ -> Error { line = 0; message = "internal: bad parser stack" }
  with Parse_error e -> Error e

(* -- Printing -------------------------------------------------------------- *)

let reg_name = function Regs.R n -> Printf.sprintf "r%d" n | Regs.SP -> "sp" | Regs.LR -> "lr"

let operand_text = function
  | Insn.Reg r -> reg_name r
  | Insn.Imm w ->
      let n = Word.to_int w in
      if n > 255 then Printf.sprintf "#0x%x" n else Printf.sprintf "#%d" n

let cond_name = function
  | Insn.EQ -> "eq"
  | Insn.NE -> "ne"
  | Insn.CS -> "cs"
  | Insn.CC -> "cc"
  | Insn.MI -> "mi"
  | Insn.PL -> "pl"
  | Insn.HI -> "hi"
  | Insn.LS -> "ls"
  | Insn.GE -> "ge"
  | Insn.LT -> "lt"
  | Insn.GT -> "gt"
  | Insn.LE -> "le"
  | Insn.AL -> "al"

let insn_text i =
  let two m rd op = Printf.sprintf "%-5s %s, %s" m (reg_name rd) (operand_text op) in
  let three m rd rn op =
    Printf.sprintf "%-5s %s, %s, %s" m (reg_name rd) (reg_name rn) (operand_text op)
  in
  let mem m rd rn op =
    match op with
    | Insn.Imm w when Word.equal w Word.zero ->
        Printf.sprintf "%-5s %s, [%s]" m (reg_name rd) (reg_name rn)
    | _ -> Printf.sprintf "%-5s %s, [%s, %s]" m (reg_name rd) (reg_name rn) (operand_text op)
  in
  match i with
  | Insn.Mov (rd, op) -> two "mov" rd op
  | Insn.Mvn (rd, op) -> two "mvn" rd op
  | Insn.Add (rd, rn, op) -> three "add" rd rn op
  | Insn.Sub (rd, rn, op) -> three "sub" rd rn op
  | Insn.Rsb (rd, rn, op) -> three "rsb" rd rn op
  | Insn.Mul (rd, rn, rm) ->
      Printf.sprintf "%-5s %s, %s, %s" "mul" (reg_name rd) (reg_name rn) (reg_name rm)
  | Insn.And_ (rd, rn, op) -> three "and" rd rn op
  | Insn.Orr (rd, rn, op) -> three "orr" rd rn op
  | Insn.Eor (rd, rn, op) -> three "eor" rd rn op
  | Insn.Bic (rd, rn, op) -> three "bic" rd rn op
  | Insn.Lsl (rd, rn, op) -> three "lsl" rd rn op
  | Insn.Lsr (rd, rn, op) -> three "lsr" rd rn op
  | Insn.Asr (rd, rn, op) -> three "asr" rd rn op
  | Insn.Ror (rd, rn, op) -> three "ror" rd rn op
  | Insn.Cmp (rn, op) -> two "cmp" rn op
  | Insn.Cmn (rn, op) -> two "cmn" rn op
  | Insn.Tst (rn, op) -> two "tst" rn op
  | Insn.Ldr (rd, rn, op) -> mem "ldr" rd rn op
  | Insn.Str (rd, rn, op) -> mem "str" rd rn op
  | Insn.Svc w ->
      if Word.equal w Word.zero then "svc" else Printf.sprintf "svc   #%d" (Word.to_int w)
  | Insn.Udf -> "udf"
  | Insn.Nop -> "nop"

let print stmts =
  let buf = Buffer.create 256 in
  let rec go indent stmts =
    let pad = String.make (indent * 4) ' ' in
    List.iter
      (fun stmt ->
        match stmt with
        | Insn.I i -> Buffer.add_string buf (pad ^ insn_text i ^ "\n")
        | Insn.If (c, then_b, else_b) ->
            Buffer.add_string buf (Printf.sprintf "%s.if %s\n" pad (cond_name c));
            go (indent + 1) then_b;
            if else_b <> [] then begin
              Buffer.add_string buf (pad ^ ".else\n");
              go (indent + 1) else_b
            end;
            Buffer.add_string buf (pad ^ ".endif\n")
        | Insn.While (c, body) ->
            Buffer.add_string buf (Printf.sprintf "%s.while %s\n" pad (cond_name c));
            go (indent + 1) body;
            Buffer.add_string buf (pad ^ ".endwhile\n"))
      stmts
  in
  go 1 stmts;
  Buffer.contents buf
