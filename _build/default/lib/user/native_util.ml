(** Shared machinery for native enclave services.

    Native services (the notary, the attestation verifier) run as
    event-driven state machines: each entry to user mode invokes the
    service once, it performs work against its MMU-translated view of
    memory, and ends its burst with an Exit or another SVC. This module
    collects the register/memory access helpers, the event constructors,
    and the entropy-seeding state machine every such service starts
    with. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Regs = Komodo_machine.Regs
module Exec = Komodo_machine.Exec
module Sha256 = Komodo_crypto.Sha256
module Bignum = Komodo_crypto.Bignum
module Rsa = Komodo_crypto.Rsa

exception Enclave_fault of Exec.fault

let ureg s i = State.read_reg s (Regs.R i)
let set_ureg s i v = State.write_reg s (Regs.R i) v

let load s va =
  match Exec.Uview.load s va with Ok w -> w | Error f -> raise (Enclave_fault f)

let store s va v =
  match Exec.Uview.store s va v with Ok s -> s | Error f -> raise (Enclave_fault f)

let read_words s va n = List.init n (fun i -> load s (Word.add va (Word.of_int (4 * i))))

let write_words s va ws =
  List.fold_left
    (fun (s, i) w -> (store s (Word.add va (Word.of_int (4 * i))) w, i + 1))
    (s, 0) ws
  |> fst

let words_to_bytes ws = String.concat "" (List.map Word.to_bytes_be ws)

let bytes_to_words s =
  if String.length s mod 4 <> 0 then invalid_arg "Native_util.bytes_to_words";
  List.init (String.length s / 4) (fun i -> Word.of_bytes_be s (4 * i))

(* -- Burst-ending events ------------------------------------------------- *)

(** Exit to the OS with [retval]. *)
let exit_with s retval =
  let s = set_ureg (set_ureg s 0 (Word.of_int Svc_nums.exit)) 1 retval in
  { Exec.nstate = s; nevent = Exec.Ev_svc Word.zero }

(** Issue an SVC with call number and arguments in r1... *)
let svc s call args =
  let s = set_ureg s 0 (Word.of_int call) in
  let s, _ = List.fold_left (fun (s, i) v -> (set_ureg s i v, i + 1)) (s, 1) args in
  { Exec.nstate = s; nevent = Exec.Ev_svc Word.zero }

(* -- Deterministic key generation from monitor entropy -------------------- *)

(** Expand seed words into an RSA key pair: SHA-256 in counter mode
    drives {!Rsa.generate}, so identical entropy gives identical keys
    (the reproducibility the whole-system tests rely on). *)
let generate_key ?(bits = 1024) seed_words =
  let key = words_to_bytes seed_words in
  let ctr = ref 0 and buf = ref "" and off = ref 32 in
  let rng () =
    if !off >= 32 then begin
      buf := Sha256.digest (key ^ string_of_int !ctr);
      incr ctr;
      off := 0
    end;
    let w = Word.to_int (Word.of_bytes_be !buf !off) in
    off := !off + 4;
    w
  in
  Rsa.generate ~rng ~bits

let key_words bits = bits / 32

let bignum_to_words ~bits b =
  let bytes = Bignum.to_bytes_be ~pad_to:(4 * key_words bits) b in
  bytes_to_words bytes

let words_to_bignum ws = Bignum.of_bytes_be (words_to_bytes ws)

(* -- Entropy-seeding state machine ----------------------------------------
   Every key-bearing service begins identically: gather four words of
   monitor entropy via GetRandom SVCs, tracked by a phase word in the
   service's state page. [seeding_step] runs one step; it either
   requests more entropy (returning the event) or hands the collected
   seed to [done_] once all four words are in. *)

type seeding = {
  state_va : Word.t;  (** state page base *)
  off_phase : int;  (** word offset of the phase *)
  off_seed : int;  (** word offset of the 4 seed words *)
}

let seeding_phase_ready = 5

let seeding_step cfg s ~phase ~(done_ : State.t -> Word.t list -> Exec.native_outcome) =
  let state_word i = load s (Word.add cfg.state_va (Word.of_int (4 * i))) in
  let set_state_word s i v = store s (Word.add cfg.state_va (Word.of_int (4 * i))) v in
  (* Bank the random word delivered in r1 (none on the very first call). *)
  let s =
    if phase >= 1 then set_state_word s (cfg.off_seed + phase - 1) (ureg s 1) else s
  in
  if phase < 4 then begin
    let s = set_state_word s cfg.off_phase (Word.of_int (phase + 1)) in
    svc (State.charge 32 s) Svc_nums.get_random []
  end
  else begin
    let seed = List.init 4 (fun i -> state_word (cfg.off_seed + i)) in
    done_ s seed
  end
