(** A textual assembly format for enclave programs.

    The structured instruction set ({!Komodo_machine.Insn.stmt}) gets a
    human-writable surface syntax, so enclave programs can live in
    files and be assembled, measured and run by the CLI:

    {v
    ; sum the integers 1..r0
        mov   r3, #0        ; accumulator
        mov   r4, #1
        cmp   r4, r0
    .while ls
        add   r3, r3, r4
        add   r4, r4, #1
        cmp   r4, r0
    .endwhile
        mov   r1, r3
        mov   r0, #0        ; SVC 0 = exit
        svc
    v}

    Registers are [r0]-[r12], [sp], [lr]; immediates are [#n] (decimal,
    hex [#0x..], or negative) or [#NAME] for a symbol defined by
    [.equ NAME value] — the SVC call numbers ([#svc_exit],
    [#svc_map_data], ...) are predefined. Memory operands are [\[rn\]] or
    [\[rn, #ofs\]] or [\[rn, rm\]]. Control flow uses [.if <cond>] /
    [.else] / [.endif] and [.while <cond>] / [.endwhile] with the ARM
    condition codes. [;] starts a comment. {!print} renders programs
    back to this syntax ([parse] ∘ [print] is the identity, up to
    layout — property-tested). *)

module Insn = Komodo_machine.Insn

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Insn.stmt list, error) result
(** Assemble source text. *)

val print : Insn.stmt list -> string
(** Render a program in the same syntax (a disassembler for the
    structured form). *)
