(** Shared machinery for native enclave services.

    Native services (the notary, the verifier) are event-driven state
    machines: each entry to user mode invokes the service once; it works
    against its MMU-translated view of memory and ends its burst with an
    Exit or another SVC. This module holds the register/memory helpers,
    the event constructors, and the entropy-seeding state machine every
    key-bearing service starts with. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Exec = Komodo_machine.Exec
module Bignum = Komodo_crypto.Bignum
module Rsa = Komodo_crypto.Rsa

exception Enclave_fault of Exec.fault
(** Raised by the accessors on a bad access; the service's top level
    converts it to a fault event, as hardware would. *)

val ureg : State.t -> int -> Word.t
val set_ureg : State.t -> int -> Word.t -> State.t

val load : State.t -> Word.t -> Word.t
(** Through the page table. @raise Enclave_fault. *)

val store : State.t -> Word.t -> Word.t -> State.t
val read_words : State.t -> Word.t -> int -> Word.t list
val write_words : State.t -> Word.t -> Word.t list -> State.t
val words_to_bytes : Word.t list -> string

val bytes_to_words : string -> Word.t list
(** @raise Invalid_argument on ragged length. *)

val exit_with : State.t -> Word.t -> Exec.native_outcome
(** End the burst by exiting to the OS with a value. *)

val svc : State.t -> int -> Word.t list -> Exec.native_outcome
(** End the burst with an SVC (call number + args in r1..). *)

val generate_key : ?bits:int -> Word.t list -> Rsa.priv
(** Deterministic RSA keygen from seed words (SHA-256 counter-mode
    expansion), so identical entropy gives identical keys. *)

val key_words : int -> int
val bignum_to_words : bits:int -> Bignum.t -> Word.t list
val words_to_bignum : Word.t list -> Bignum.t

(** The seeding state machine: gather four words of monitor entropy via
    GetRandom SVCs, tracked by a phase word in the service's state
    page. *)
type seeding = { state_va : Word.t; off_phase : int; off_seed : int }

val seeding_phase_ready : int
(** The phase value once seeding has finished (5). *)

val seeding_step :
  seeding ->
  State.t ->
  phase:int ->
  done_:(State.t -> Word.t list -> Exec.native_outcome) ->
  Exec.native_outcome
(** Run one seeding step: request more entropy, or hand the collected
    seed words to [done_]. *)
