(** SVC call numbers as seen from enclave program texts (re-exports of
    {!Komodo_core.Svc}). *)

val exit : int
val get_random : int
val attest : int
val verify : int
val init_l2ptable : int
val map_data : int
val unmap_data : int
val set_dispatcher : int
val resume_faulted : int
