(** SVC call numbers as seen from enclave code (mirrors {!Komodo_core.Svc}). *)

let exit = Komodo_core.Svc.sv_exit
let get_random = Komodo_core.Svc.sv_get_random
let attest = Komodo_core.Svc.sv_attest
let verify = Komodo_core.Svc.sv_verify
let init_l2ptable = Komodo_core.Svc.sv_init_l2ptable
let map_data = Komodo_core.Svc.sv_map_data
let unmap_data = Komodo_core.Svc.sv_unmap_data
let set_dispatcher = Komodo_core.Svc.sv_set_dispatcher
let resume_faulted = Komodo_core.Svc.sv_resume_faulted
