(** Building enclave code pages.

    Enclave code is ordinary measured page content: a header word
    identifying the format, then either the encoded bytecode program or
    a native-service id (see {!Komodo_machine.Exec}). This module
    assembles structured programs into page images and provides the
    register short-hands used when writing them. *)

module Word = Komodo_machine.Word
module Insn = Komodo_machine.Insn
module Exec = Komodo_machine.Exec
module Regs = Komodo_machine.Regs
module Ptable = Komodo_machine.Ptable

(* Register short-hands for program texts. *)
let r0 = Regs.R 0
let r1 = Regs.R 1
let r2 = Regs.R 2
let r3 = Regs.R 3
let r4 = Regs.R 4
let r5 = Regs.R 5
let r6 = Regs.R 6
let r7 = Regs.R 7
let r8 = Regs.R 8
let r9 = Regs.R 9
let r10 = Regs.R 10
let r11 = Regs.R 11
let r12 = Regs.R 12
let sp = Regs.SP
let lr = Regs.LR

let imm n = Insn.Imm (Word.of_int n)
let reg r = Insn.Reg r

(** SVC call numbers, re-exported for program texts. *)
let svc_exit = Svc_nums.exit

(** Exit the enclave with the value in register [r]. *)
let exit_with r =
  [
    Insn.I (Insn.Mov (r1, reg r));
    Insn.I (Insn.Mov (r0, imm Svc_nums.exit));
    Insn.I (Insn.Svc Word.zero);
  ]

(** Assemble a structured program into the words of a code page image
    (header + encoded body). @raise Invalid_argument if the program
    exceeds the given page budget. *)
let code_words ?(max_pages = 4) (prog : Insn.stmt list) : Word.t list =
  let body = Insn.encode_program prog in
  let n = List.length body in
  if 2 + n > max_pages * Ptable.words_per_page then
    invalid_arg "Uprog.code_words: program too large";
  Exec.code_magic :: Word.of_int n :: body

(** Words of a native-service code page. *)
let native_words ~id : Word.t list = [ Exec.native_magic; Word.of_int id ]

(** Pad a word list to whole pages (4096-byte multiples) of zeroes and
    split it into page-sized byte strings, ready for staging/mapping. *)
let to_page_images (ws : Word.t list) : string list =
  let page_words = Ptable.words_per_page in
  let n = List.length ws in
  let npages = max 1 ((n + page_words - 1) / page_words) in
  let padded = ws @ List.init ((npages * page_words) - n) (fun _ -> Word.zero) in
  let buf = Buffer.create (4 * npages * page_words) in
  List.iter (fun w -> Buffer.add_string buf (Word.to_bytes_be w)) padded;
  let s = Buffer.contents buf in
  List.init npages (fun i -> String.sub s (i * Ptable.page_size) Ptable.page_size)
