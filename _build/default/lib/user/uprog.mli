(** Building enclave code pages.

    Enclave code is ordinary measured page content: a header word
    identifying the format, then either encoded bytecode or a native-
    service id (see {!Komodo_machine.Exec}). This module assembles
    structured programs into page images, and provides the register
    short-hands program texts use. *)

module Word = Komodo_machine.Word
module Insn = Komodo_machine.Insn
module Regs = Komodo_machine.Regs

(** Register short-hands. *)

val r0 : Regs.reg
val r1 : Regs.reg
val r2 : Regs.reg
val r3 : Regs.reg
val r4 : Regs.reg
val r5 : Regs.reg
val r6 : Regs.reg
val r7 : Regs.reg
val r8 : Regs.reg
val r9 : Regs.reg
val r10 : Regs.reg
val r11 : Regs.reg
val r12 : Regs.reg
val sp : Regs.reg
val lr : Regs.reg

val imm : int -> Insn.operand
val reg : Regs.reg -> Insn.operand

val svc_exit : int

val exit_with : Regs.reg -> Insn.stmt list
(** Exit the enclave with the value in the given register. *)

val code_words : ?max_pages:int -> Insn.stmt list -> Word.t list
(** Assemble a structured program into code-page words (header +
    encoded body).
    @raise Invalid_argument if it exceeds the page budget. *)

val native_words : id:int -> Word.t list
(** Words of a native-service code page. *)

val to_page_images : Word.t list -> string list
(** Pad to whole pages and split into page-sized byte strings ready for
    staging and mapping. *)
