(** 32-bit machine words.

    The ARMv7 model manipulates 32-bit words exclusively (the paper's
    machine state maps word-aligned addresses to 32-bit values, §5.1).
    Words are represented as OCaml [int]s masked to 32 bits, which is
    exact on a 64-bit host. All arithmetic wraps modulo 2^32. *)

type t = private int
(** A 32-bit word; the representation invariant is [0 <= w < 2^32]. *)

val zero : t
val one : t
val max_word : t
(** [max_word] is [0xFFFF_FFFF]. *)

val of_int : int -> t
(** [of_int n] truncates [n] to its low 32 bits (two's complement for
    negative arguments). *)

val to_int : t -> int
(** [to_int w] is the unsigned integer value of [w], in [0, 2^32). *)

val to_signed : t -> int
(** [to_signed w] interprets [w] as a two's-complement 32-bit integer. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val udiv : t -> t -> t
(** Unsigned division. @raise Division_by_zero on zero divisor. *)

val urem : t -> t -> t
(** Unsigned remainder. @raise Division_by_zero on zero divisor. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** [shift_left w n] for [n >= 32] is [zero]. *)

val shift_right_logical : t -> int -> t
(** Logical (zero-filling) right shift; [n >= 32] gives [zero]. *)

val shift_right_arith : t -> int -> t
(** Arithmetic (sign-extending) right shift. *)

val rotate_right : t -> int -> t
(** Rotate right by [n mod 32] bits. *)

val bit : t -> int -> bool
(** [bit w i] is bit [i] (0 = least significant) of [w]. *)

val set_bit : t -> int -> bool -> t

val extract : t -> hi:int -> lo:int -> t
(** [extract w ~hi ~lo] is the bit-field [w\[hi:lo\]], right-aligned. *)

val insert : t -> hi:int -> lo:int -> t -> t
(** [insert w ~hi ~lo v] replaces the field [w\[hi:lo\]] with the low bits
    of [v]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison. *)

val ult : t -> t -> bool
(** Unsigned less-than. *)

val ule : t -> t -> bool
val slt : t -> t -> bool
(** Signed less-than. *)

val is_aligned : t -> bool
(** Word (4-byte) alignment: the paper's memory model only admits aligned
    accesses, which keeps distinct addresses independent. *)

val align_down : t -> t
val word_size : int
(** Bytes per word (4). *)

val of_bytes_be : string -> int -> t
(** [of_bytes_be s off] reads 4 bytes big-endian at offset [off]. *)

val to_bytes_be : t -> string
(** 4-byte big-endian encoding. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0xdeadbeef]. *)

val show : t -> string
