(** The ARMv7 register file with banking.

    Core registers R0-R12 are shared across modes. SP, LR and SPSR are
    banked according to the current mode: user-mode accesses to SP refer
    to a concrete register SP_usr, monitor-mode code accesses SP_mon, etc.
    Following the paper (§5.1) we model all banked registers except the
    FIQ-only banks of R8-R12, which Komodo never needs. *)

type reg =
  | R of int  (** general-purpose R0..R12 *)
  | SP  (** stack pointer, banked by mode *)
  | LR  (** link register, banked by mode *)
[@@deriving eq, ord]

let pp_reg fmt = function
  | R n -> Format.fprintf fmt "r%d" n
  | SP -> Format.pp_print_string fmt "sp"
  | LR -> Format.pp_print_string fmt "lr"

let show_reg r = Format.asprintf "%a" pp_reg r

(** Special (banked/status) registers addressable by MRS/MSR. *)
type sreg =
  | SP_of of Mode.t
  | LR_of of Mode.t
  | SPSR_of of Mode.t  (** invalid for [Mode.User] *)
[@@deriving eq, ord]

let pp_sreg fmt = function
  | SP_of m -> Format.fprintf fmt "sp_%s" (Mode.show m)
  | LR_of m -> Format.fprintf fmt "lr_%s" (Mode.show m)
  | SPSR_of m -> Format.fprintf fmt "spsr_%s" (Mode.show m)

let show_sreg r = Format.asprintf "%a" pp_sreg r

module Mode_map = Map.Make (struct
  type t = Mode.t

  let compare = Mode.compare
end)

type t = {
  gp : Word.t array;  (** r0..r12; functional updates copy *)
  sp : Word.t Mode_map.t;
  lr : Word.t Mode_map.t;
  spsr : Word.t Mode_map.t;  (** exception modes only *)
}

let num_gp = 13

let init_banked value =
  List.fold_left (fun m md -> Mode_map.add md value m) Mode_map.empty Mode.all

let zeroed =
  {
    gp = Array.make num_gp Word.zero;
    sp = init_banked Word.zero;
    lr = init_banked Word.zero;
    spsr =
      List.fold_left
        (fun m md -> if Mode.has_spsr md then Mode_map.add md Word.zero m else m)
        Mode_map.empty Mode.all;
  }

let gp_index = function
  | R n ->
      if n < 0 || n >= num_gp then invalid_arg "Regs: general register out of range";
      n
  | SP | LR -> invalid_arg "Regs.gp_index: banked register"

(** [read t ~mode r] reads [r] as seen from [mode]. *)
let read t ~mode = function
  | R _ as r -> t.gp.(gp_index r)
  | SP -> Mode_map.find mode t.sp
  | LR -> Mode_map.find mode t.lr

let write t ~mode r v =
  match r with
  | R _ as r ->
      let gp = Array.copy t.gp in
      gp.(gp_index r) <- v;
      { t with gp }
  | SP -> { t with sp = Mode_map.add mode v t.sp }
  | LR -> { t with lr = Mode_map.add mode v t.lr }

(** Banked-register access by explicit mode (the MRS/MSR path used by the
    monitor to save and restore other modes' registers). *)
let read_sreg t = function
  | SP_of m -> Mode_map.find m t.sp
  | LR_of m -> Mode_map.find m t.lr
  | SPSR_of m -> (
      match Mode_map.find_opt m t.spsr with
      | Some v -> v
      | None -> invalid_arg "Regs.read_sreg: user mode has no SPSR")

let write_sreg t sr v =
  match sr with
  | SP_of m -> { t with sp = Mode_map.add m v t.sp }
  | LR_of m -> { t with lr = Mode_map.add m v t.lr }
  | SPSR_of m ->
      if not (Mode.has_spsr m) then
        invalid_arg "Regs.write_sreg: user mode has no SPSR";
      { t with spsr = Mode_map.add m v t.spsr }

(** All user-visible registers (r0-r12, sp_usr, lr_usr) as a list, in
    architectural order. Used when entering/leaving enclaves. *)
let user_visible t =
  Array.to_list t.gp @ [ Mode_map.find Mode.User t.sp; Mode_map.find Mode.User t.lr ]

(** Replace every user-visible register. [values] must have length 15. *)
let set_user_visible t values =
  if List.length values <> 15 then invalid_arg "Regs.set_user_visible: need 15 words";
  let gp = Array.of_list (List.filteri (fun i _ -> i < num_gp) values) in
  let sp_usr = List.nth values 13 and lr_usr = List.nth values 14 in
  {
    t with
    gp;
    sp = Mode_map.add Mode.User sp_usr t.sp;
    lr = Mode_map.add Mode.User lr_usr t.lr;
  }

(** Zero r0-r12 and user SP/LR; entry state for a freshly started enclave
    thread (non-argument registers are cleared to prevent leaks). *)
let clear_user_visible t = set_user_visible t (List.init 15 (fun _ -> Word.zero))

let equal a b =
  Array.for_all2 Word.equal a.gp b.gp
  && Mode_map.equal Word.equal a.sp b.sp
  && Mode_map.equal Word.equal a.lr b.lr
  && Mode_map.equal Word.equal a.spsr b.spsr

let pp fmt t =
  Array.iteri (fun i v -> Format.fprintf fmt "r%d=%a@ " i Word.pp v) t.gp;
  Mode_map.iter
    (fun m v -> Format.fprintf fmt "sp_%s=%a@ " (Mode.show m) Word.pp v)
    t.sp
