(** Cycle cost model.

    The paper evaluates on a 900 MHz Cortex-A7 and reports monitor-call
    latencies in cycles (Table 3). The interpreter and the monitor
    charge cycles for every architectural operation using these
    constants, calibrated so the *shape* of Table 3 holds (see
    DESIGN.md on what calibration means here). *)

val cpu_hz : int
(** 900 MHz: the modelled clock, used to convert cycles to wall time
    (Figure 5). *)

val cycles_to_ms : int -> float

(** Per-instruction costs charged by the interpreter. *)

val alu : int
val mul : int
val mem_access : int
val branch : int
val banked_access : int
val svc_trap : int
val smc_trap : int
val exception_return : int
val irq_trap : int

(** Memory-management costs. *)

val ttbr_load : int
val tlb_flush : int
val barrier : int

(** Cryptography. *)

val sha256_block : int
(** One SHA-256 compression of a 64-byte block. *)

val rng_word : int
(** Hardware RNG read of one 32-bit word. *)

(** Helpers. *)

val reg_save : int -> int
(** Saving or restoring [n] registers (LDM/STM-style). *)

val word_copy : int -> int
val word_zero : int -> int

val sha256_bytes : ?finalise:bool -> int -> int
(** Hashing [n] bytes (block count rounded up; [finalise] adds the
    padding block). *)

(** Monitor-path overheads, calibrated against Table 3. *)

val enter_validate : int
val exit_path : int
val resume_ctx : int
val banked_save_full : int
val banked_save_opt : int
val smc_body_small : int
