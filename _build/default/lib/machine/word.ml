type t = int

let mask = 0xFFFF_FFFF
let zero = 0
let one = 1
let max_word = mask
let of_int n = n land mask
let to_int w = w

let to_signed w = if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask
let neg a = (-a) land mask
let udiv a b = a / b
let urem a b = a mod b
let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land mask

let shift_left w n = if n >= 32 then 0 else (w lsl n) land mask
let shift_right_logical w n = if n >= 32 then 0 else w lsr n

let shift_right_arith w n =
  if n >= 32 then if w land 0x8000_0000 <> 0 then mask else 0
  else (to_signed w asr n) land mask

let rotate_right w n =
  let n = n land 31 in
  if n = 0 then w else ((w lsr n) lor (w lsl (32 - n))) land mask

let bit w i = (w lsr i) land 1 = 1

let set_bit w i b = if b then w lor (1 lsl i) else w land lnot (1 lsl i) land mask

let extract w ~hi ~lo = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let insert w ~hi ~lo v =
  let width = hi - lo + 1 in
  let field_mask = ((1 lsl width) - 1) lsl lo in
  (w land lnot field_mask land mask) lor ((v lsl lo) land field_mask)

let equal = Int.equal
let compare = Int.compare
let ult a b = a < b
let ule a b = a <= b
let slt a b = to_signed a < to_signed b

let word_size = 4
let is_aligned w = w land 3 = 0
let align_down w = w land lnot 3

let of_bytes_be s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let to_bytes_be w =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((w lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((w lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((w lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (w land 0xFF));
  Bytes.unsafe_to_string b

let pp fmt w = Format.fprintf fmt "0x%08x" w
let show w = Format.asprintf "%a" pp w
