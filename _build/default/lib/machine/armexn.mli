(** ARM exception kinds and their vectoring behaviour.

    Taking an exception switches to the exception's mode, banks the
    pre-exception PC into that mode's LR, copies CPSR into the mode's
    SPSR, and masks IRQs (FIQ and SMC entry also mask FIQs). SMCs are
    taken in monitor mode and switch to the secure world — the control
    transfer into the Komodo monitor. *)

type kind =
  | Undefined_instr
  | Svc  (** supervisor call: enclave -> monitor API *)
  | Prefetch_abort
  | Data_abort
  | Irq
  | Fiq
  | Smc  (** secure monitor call: OS -> monitor API *)

val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int
val pp_kind : Format.formatter -> kind -> unit
val show_kind : kind -> string

val target_mode : kind -> Mode.t
val masks_fiq : kind -> bool
val cycle_cost : kind -> int
