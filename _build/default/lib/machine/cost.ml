(** Cycle cost model.

    The paper evaluates on a 900 MHz Cortex-A7 (Raspberry Pi 2) and
    reports monitor-call latencies in cycles (Table 3). We cannot measure
    silicon, so the interpreter and the monitor charge cycles for every
    architectural operation using the constants below. They are
    calibrated so the *shape* of Table 3 holds — a null SMC costs ~a
    hundred cycles, a full crossing several hundred, attestation is
    dominated by SHA-256 compressions, MapData by the page zero-fill —
    without claiming cycle-exact fidelity (see DESIGN.md). *)

(** Clock frequency used to convert cycles to wall time (Figure 5). *)
let cpu_hz = 900_000_000

let cycles_to_ms cycles = float_of_int cycles /. (float_of_int cpu_hz /. 1000.)

(* -- Per-instruction costs charged by the interpreter --------------- *)

let alu = 1
let mul = 2
let mem_access = 3 (* LDR/STR hitting L1 *)
let branch = 2
let banked_access = 2 (* MRS/MSR of a banked or status register *)
let svc_trap = 25 (* SVC exception entry from user mode *)
let smc_trap = 35 (* SMC exception entry including world switch *)
let exception_return = 30 (* MOVS PC, LR / exception return *)
let irq_trap = 28

(* -- Memory-management costs ---------------------------------------- *)

let ttbr_load = 12
let tlb_flush = 200 (* full-TLB invalidate + barriers *)
let barrier = 8 (* DSB/ISB *)

(* -- Cryptography ----------------------------------------------------
   One SHA-256 compression of a 64-byte block. The verified OpenSSL-
   derived routine the paper inherits runs around 20-30 cycles/byte on a
   Cortex-A7; with padding and scheduling overhead a block lands near
   1,900 cycles, which reproduces Attest ~ 12.4 kcycles (6 compressions
   plus monitor overhead). *)

let sha256_block = 2400

(** Hardware RNG read of one 32-bit word. *)
let rng_word = 45

(* -- Helpers ---------------------------------------------------------- *)

(** Cost of saving or restoring [n] registers to/from memory: STM/LDM
    multi-register transfers retire about one register per cycle plus
    address generation. *)
let reg_save n = n * 2

(** Cost of copying [n] words memory-to-memory. *)
let word_copy n = n * (2 * mem_access)

(** Cost of zero-filling [n] words (store + write-allocate traffic). *)
let word_zero n = n * (mem_access + 2)

(* -- Monitor-path overheads --------------------------------------------
   Fixed costs of the monitor's hot paths beyond the register and MMU
   work charged above: argument validation and PageDB walks on Enter,
   the Exit return path, and restoring a suspended thread's context.
   Calibrated against Table 3 (see DESIGN.md on what calibration means
   here). *)

let enter_validate = 150 (* thread/addrspace lookups + PT representation *)
let exit_path = 100 (* Exit SVC processing and branch-back *)
let resume_ctx = 115 (* thread-page context loads beyond the LDM itself *)
let banked_save_full = 30 (* every banked register, 5 modes x SP/LR/SPSR *)
let banked_save_opt = 18 (* FIQ/IRQ banks skipped (proven unchanged) *)
let smc_body_small = 110 (* PageDB update of a simple construction call *)

(** Cost of hashing [n] bytes (block count rounded up, +1 block for
    padding/finalisation when [finalise] is set). *)
let sha256_bytes ?(finalise = false) n =
  let blocks = ((n + 63) / 64) + if finalise then 1 else 0 in
  blocks * sha256_block
