(** The whole-machine state.

    Execution is a series of immutable machine states, each containing
    everything architecturally visible: registers with banking, status
    registers, the current world, memory, banked MMU base registers,
    TLB consistency, the fault-address register, interrupt pending-ness,
    and the cycle counter driving the cost model. The program counter is
    not modelled for privileged code (structured control flow instead,
    §5.1); the user program counter {!t.upc} exists so the hardware can
    bank it into LR on exceptions taken from user mode. *)

type t = {
  regs : Regs.t;
  cpsr : Psr.t;
  world : Mode.world;
  mem : Memory.t;
  ttbr0_s : Word.t;  (** secure-world enclave table base *)
  ttbr1_s : Word.t;  (** secure-world monitor static table base *)
  ttbr0_ns : Word.t;  (** normal-world OS table base (uninterpreted) *)
  tlb : Tlb.t;
  scr_ns : bool;
      (** SCR.NS: selects the world entered when monitor mode performs
          an exception return *)
  upc : Word.t;  (** user-mode program counter *)
  far : Word.t;
      (** fault address register (DFAR): the data address whose access
          aborted; read by the dispatcher interface, never released to
          the OS *)
  cycles : int;
  irq_budget : int option;
      (** when [Some n], an external interrupt (non-deterministic in the
          paper's model) fires after [n] further user-mode steps *)
}

val initial : t
(** Secure supervisor mode, everything zeroed, TLB inconsistent. *)

val mode : t -> Mode.t
val charge : int -> t -> t
(** Add cycles to the cost counter. *)

val read_reg : t -> Regs.reg -> Word.t
(** Access in the current mode (banking applies). *)

val write_reg : t -> Regs.reg -> Word.t -> t
val read_sreg : t -> Regs.sreg -> Word.t
val write_sreg : t -> Regs.sreg -> Word.t -> t
val load : t -> Word.t -> Word.t
val store : t -> Word.t -> Word.t -> t

val set_ttbr0_s : t -> Word.t -> t
(** Loading a table base marks the TLB inconsistent. *)

val flush_tlb : t -> t
(** Marks consistent and charges {!Cost.tlb_flush}. *)

val take_exception : t -> Armexn.kind -> return_pc:Word.t -> t
(** Vector to the exception's mode: bank [return_pc] into its LR and
    the CPSR into its SPSR, mask interrupts, switch worlds for SMC,
    charge the trap cost. *)

val exception_return : t -> t * Word.t
(** [MOVS PC, LR]-style return: restore CPSR from the current mode's
    SPSR and transfer to LR, returning the resumed PC. From monitor
    mode the destination world follows [scr_ns].
    @raise Invalid_argument from user mode or with a malformed SPSR. *)

val equal : t -> t -> bool
(** Architectural equality (ignores [cycles] and [irq_budget]). *)

val pp : Format.formatter -> t -> unit
