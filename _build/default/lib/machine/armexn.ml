(** ARM exception kinds and their vectoring behaviour.

    Taking an exception switches to the exception's mode, banks the
    pre-exception PC into that mode's LR, copies CPSR into the mode's
    SPSR, and masks IRQs (FIQ and SMC entry also mask FIQs). SMC
    exceptions are taken in monitor mode and switch to the secure world;
    this is the control-transfer path into the Komodo monitor. *)

type kind =
  | Undefined_instr
  | Svc  (** supervisor call — enclave -> monitor API *)
  | Prefetch_abort
  | Data_abort
  | Irq
  | Fiq
  | Smc  (** secure monitor call — OS -> monitor API *)
[@@deriving eq, ord, show { with_path = false }]

let target_mode = function
  | Undefined_instr -> Mode.Undefined
  | Svc -> Mode.Supervisor
  | Prefetch_abort | Data_abort -> Mode.Abort
  | Irq -> Mode.Irq
  | Fiq -> Mode.Fiq
  | Smc -> Mode.Monitor

(** Does taking this exception also mask FIQs? *)
let masks_fiq = function Fiq | Smc -> true | _ -> false

let cycle_cost = function
  | Smc -> Cost.smc_trap
  | Svc -> Cost.svc_trap
  | Irq | Fiq -> Cost.irq_trap
  | Undefined_instr | Prefetch_abort | Data_abort -> Cost.svc_trap
