(** Privilege modes and TrustZone worlds (Figure 1 of the paper).

    A TrustZone processor runs in one of two worlds; each world has user
    mode and five equally-privileged exception modes, and secure world has
    a sixth [Monitor] mode used to switch worlds. *)

type t =
  | User
  | Fiq
  | Irq
  | Supervisor
  | Abort
  | Undefined
  | Monitor  (** Secure world only; entered by SMC and world switches. *)
[@@deriving eq, ord, show { with_path = false }]

type world = Normal | Secure [@@deriving eq, ord, show { with_path = false }]

let all = [ User; Fiq; Irq; Supervisor; Abort; Undefined; Monitor ]

let is_privileged = function User -> false | _ -> true

(** Modes with their own banked SPSR (every exception mode; user mode has
    no SPSR). *)
let has_spsr = function User -> false | _ -> true

(** ARMv7 CPSR.M field encodings (ARM ARM B1.3.1). *)
let encode = function
  | User -> 0b10000
  | Fiq -> 0b10001
  | Irq -> 0b10010
  | Supervisor -> 0b10011
  | Monitor -> 0b10110
  | Abort -> 0b10111
  | Undefined -> 0b11011

let decode = function
  | 0b10000 -> Some User
  | 0b10001 -> Some Fiq
  | 0b10010 -> Some Irq
  | 0b10011 -> Some Supervisor
  | 0b10110 -> Some Monitor
  | 0b10111 -> Some Abort
  | 0b11011 -> Some Undefined
  | _ -> None

(** A mode is legal in a given world; [Monitor] exists only in secure
    world (it *is* the world-switch mechanism). *)
let legal_in_world mode world =
  match (mode, world) with Monitor, Normal -> false | _ -> true
