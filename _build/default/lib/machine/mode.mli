(** Privilege modes and TrustZone worlds (Figure 1 of the paper).

    A TrustZone processor runs in one of two {!world}s: normal world,
    where a regular OS and applications live, and secure world. Each
    world contains user mode and five equally-privileged exception
    modes; secure world adds a sixth, {!Monitor}, used to switch
    worlds — an SMC instruction in normal world traps into it. *)

type t =
  | User
  | Fiq
  | Irq
  | Supervisor
  | Abort
  | Undefined
  | Monitor  (** secure world only; entered by SMC and world switches *)

type world = Normal | Secure

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string
val equal_world : world -> world -> bool
val compare_world : world -> world -> int
val pp_world : Format.formatter -> world -> unit
val show_world : world -> string

val all : t list
(** Every mode, in a fixed order. *)

val is_privileged : t -> bool
(** All modes except [User]. *)

val has_spsr : t -> bool
(** Modes with their own banked saved program status register: every
    exception mode; user mode has none. *)

val encode : t -> int
(** The architectural CPSR.M field encoding (ARM ARM B1.3.1). *)

val decode : int -> t option
(** Inverse of {!encode}; [None] for the reserved encodings. *)

val legal_in_world : t -> world -> bool
(** [Monitor] exists only in the secure world; every other mode exists
    in both. *)
