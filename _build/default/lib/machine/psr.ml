(** Program status registers (CPSR / SPSR).

    The paper models "portions of the current and saved program status
    registers": the mode field, the condition flags used by structured
    control flow, and the IRQ/FIQ mask bits that the interrupt model
    depends on (§5.1, §7.2). *)

type t = {
  mode : Mode.t;
  n : bool;  (** negative flag *)
  z : bool;  (** zero flag *)
  c : bool;  (** carry flag *)
  v : bool;  (** overflow flag *)
  irq_masked : bool;  (** CPSR.I: 1 = IRQs disabled *)
  fiq_masked : bool;  (** CPSR.F: 1 = FIQs disabled *)
}
[@@deriving eq, show { with_path = false }]

let make ?(n = false) ?(z = false) ?(c = false) ?(v = false)
    ?(irq_masked = true) ?(fiq_masked = true) mode =
  { mode; n; z; c; v; irq_masked; fiq_masked }

(** Reset state: supervisor mode, interrupts masked, flags clear. *)
let reset = make Mode.Supervisor

(** User-mode entry state used by [MOVS PC, LR]-style returns: interrupts
    are enabled while an enclave executes (§7.2). *)
let user_entry = make Mode.User ~irq_masked:false ~fiq_masked:false

let with_mode t mode = { t with mode }

(** Encode to the architectural 32-bit layout: N,Z,C,V at bits 31..28,
    I at bit 7, F at bit 6, M at bits 4..0. *)
let encode t =
  let b v i w = if v then Word.set_bit w i true else w in
  Word.of_int (Mode.encode t.mode)
  |> b t.n 31 |> b t.z 30 |> b t.c 29 |> b t.v 28 |> b t.irq_masked 7
  |> b t.fiq_masked 6

let decode w =
  match Mode.decode (Word.to_int (Word.extract w ~hi:4 ~lo:0)) with
  | None -> None
  | Some mode ->
      Some
        {
          mode;
          n = Word.bit w 31;
          z = Word.bit w 30;
          c = Word.bit w 29;
          v = Word.bit w 28;
          irq_masked = Word.bit w 7;
          fiq_masked = Word.bit w 6;
        }

(** Update the NZCV flags from a computed result and carry/overflow. *)
let set_flags t ~result ~carry ~overflow =
  {
    t with
    n = Word.bit result 31;
    z = Word.equal result Word.zero;
    c = carry;
    v = overflow;
  }
