(** The ARMv7 register file with banking.

    Core registers R0-R12 are shared across modes; SP, LR and SPSR are
    banked according to the current mode — user-mode accesses to SP
    refer to SP_usr, monitor-mode code accesses SP_mon, and so on.
    Following the paper (§5.1), all banked registers are modelled except
    the FIQ-only banks of R8-R12, which Komodo never needs. The file is
    immutable; writes return a new file. *)

type reg =
  | R of int  (** general-purpose R0..R12 *)
  | SP  (** stack pointer, banked by mode *)
  | LR  (** link register, banked by mode *)

val equal_reg : reg -> reg -> bool
val compare_reg : reg -> reg -> int
val pp_reg : Format.formatter -> reg -> unit
val show_reg : reg -> string

(** Special (banked/status) registers addressable via MRS/MSR-style
    access, independent of the current mode. *)
type sreg =
  | SP_of of Mode.t
  | LR_of of Mode.t
  | SPSR_of of Mode.t  (** invalid for {!Mode.User} *)

val equal_sreg : sreg -> sreg -> bool
val compare_sreg : sreg -> sreg -> int
val pp_sreg : Format.formatter -> sreg -> unit
val show_sreg : sreg -> string

type t

val num_gp : int
(** Number of shared general-purpose registers (13: r0-r12). *)

val zeroed : t
(** All registers, in every bank, zero. *)

val read : t -> mode:Mode.t -> reg -> Word.t
(** [read t ~mode r] reads [r] as seen from [mode].
    @raise Invalid_argument for general registers outside r0-r12. *)

val write : t -> mode:Mode.t -> reg -> Word.t -> t

val read_sreg : t -> sreg -> Word.t
(** Banked access by explicit mode — the path the monitor uses to save
    and restore other modes' registers.
    @raise Invalid_argument for [SPSR_of User]. *)

val write_sreg : t -> sreg -> Word.t -> t

val user_visible : t -> Word.t list
(** The 15 user-visible registers (r0-r12, SP_usr, LR_usr) in
    architectural order — the state saved/restored around enclave
    execution. *)

val set_user_visible : t -> Word.t list -> t
(** Replace every user-visible register.
    @raise Invalid_argument unless given exactly 15 words. *)

val clear_user_visible : t -> t
(** Zero r0-r12 and user SP/LR: fresh-entry state for an enclave thread
    (non-argument registers are cleared to prevent leaks). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
