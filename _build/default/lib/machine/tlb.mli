(** TLB consistency, modelled as in §5.1 of the paper.

    A TLB flush marks the TLB consistent; loading a page-table base
    register or storing into a live page table marks it inconsistent.
    The monitor may then either flush before entering an enclave or
    prove its stores never touched the tables. Only whole-TLB flushes
    exist (no tag- or region-based flushes). *)

type t = Consistent | Inconsistent

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

val initial : t
(** Inconsistent: nothing is known at reset. *)

val flush : t -> t
val mark_inconsistent : t -> t
val is_consistent : t -> bool
