(** The whole-machine state.

    Execution is modelled as a series of machine states, where a state
    includes everything architecturally visible: registers (with banking),
    status registers, the current world, memory, the banked MMU base
    registers, TLB consistency, interrupt pending-ness, and the cycle
    counter used by the cost model. The program counter is not modelled
    for privileged code (structured control flow instead, §5.1); the user
    program counter [upc] exists so that the hardware can bank it into LR
    on exceptions taken from user mode. *)

type t = {
  regs : Regs.t;
  cpsr : Psr.t;
  world : Mode.world;
  mem : Memory.t;
  ttbr0_s : Word.t;  (** secure-world user/enclave table base *)
  ttbr1_s : Word.t;  (** secure-world monitor static table base *)
  ttbr0_ns : Word.t;  (** normal-world OS table base (uninterpreted) *)
  tlb : Tlb.t;
  scr_ns : bool;
      (** Secure Configuration Register NS bit: selects the world entered
          when monitor mode performs an exception return. *)
  upc : Word.t;  (** user-mode program counter (banked into LR on traps) *)
  far : Word.t;
      (** fault address register (ARM DFAR): the data address whose
          access aborted. Read by the monitor's dispatcher interface;
          never released to the OS. *)
  cycles : int;
  irq_budget : int option;
      (** If [Some n], an external interrupt (non-deterministic in the
          paper's model) fires after [n] further user-mode steps. *)
}

let initial =
  {
    regs = Regs.zeroed;
    cpsr = Psr.reset;
    world = Mode.Secure;
    mem = Memory.empty;
    ttbr0_s = Word.zero;
    ttbr1_s = Word.zero;
    ttbr0_ns = Word.zero;
    tlb = Tlb.initial;
    scr_ns = false;
    upc = Word.zero;
    far = Word.zero;
    cycles = 0;
    irq_budget = None;
  }

let mode t = t.cpsr.Psr.mode
let charge n t = { t with cycles = t.cycles + n }

(* -- Register access in the current mode ----------------------------- *)

let read_reg t r = Regs.read t.regs ~mode:(mode t) r
let write_reg t r v = { t with regs = Regs.write t.regs ~mode:(mode t) r v }
let read_sreg t sr = Regs.read_sreg t.regs sr
let write_sreg t sr v = { t with regs = Regs.write_sreg t.regs sr v }

(* -- Memory ----------------------------------------------------------- *)

let load t a = Memory.load t.mem a
let store t a v = { t with mem = Memory.store t.mem a v }

(* -- MMU -------------------------------------------------------------- *)

let set_ttbr0_s t v =
  { t with ttbr0_s = v; tlb = Tlb.mark_inconsistent t.tlb }

let flush_tlb t = charge Cost.tlb_flush { t with tlb = Tlb.flush t.tlb }

(* -- Exceptions ------------------------------------------------------- *)

(** Take exception [k]: bank PC and CPSR, switch mode (and world for
    SMC), mask interrupts, charge the trap cost. [return_pc] is the
    value banked into the target mode's LR — for traps from user mode
    this is [upc]; for SMCs from the OS it is an opaque normal-world
    return token. *)
let take_exception t k ~return_pc =
  let target = Armexn.target_mode k in
  let regs = Regs.write_sreg t.regs (Regs.SPSR_of target) (Psr.encode t.cpsr) in
  let regs = Regs.write_sreg regs (Regs.LR_of target) return_pc in
  let cpsr =
    {
      t.cpsr with
      Psr.mode = target;
      irq_masked = true;
      fiq_masked = t.cpsr.Psr.fiq_masked || Armexn.masks_fiq k;
    }
  in
  let world = if Armexn.equal_kind k Armexn.Smc then Mode.Secure else t.world in
  charge (Armexn.cycle_cost k) { t with regs; cpsr; world }

(** Exception return ([MOVS PC, LR] and friends): restore CPSR from the
    current mode's SPSR and transfer to [LR]; for the monitor this is
    the only way to reach user mode. Returns the new state and the
    resumed PC. *)
let exception_return t =
  let m = mode t in
  if not (Mode.has_spsr m) then invalid_arg "State.exception_return from user mode";
  let spsr = Regs.read_sreg t.regs (Regs.SPSR_of m) in
  let pc = Regs.read_sreg t.regs (Regs.LR_of m) in
  match Psr.decode spsr with
  | None -> invalid_arg "State.exception_return: malformed SPSR"
  | Some cpsr ->
      (* Leaving monitor mode enters the world selected by SCR.NS; other
         exception returns stay in the current world. *)
      let world =
        if Mode.equal m Mode.Monitor then
          if t.scr_ns then Mode.Normal else Mode.Secure
        else t.world
      in
      (charge Cost.exception_return { t with cpsr; world; upc = pc }, pc)

(* -- Equality / diffing (noninterference harness) --------------------- *)

let equal a b =
  Regs.equal a.regs b.regs
  && Psr.equal a.cpsr b.cpsr
  && Mode.equal_world a.world b.world
  && Memory.equal a.mem b.mem
  && Word.equal a.ttbr0_s b.ttbr0_s
  && Word.equal a.ttbr1_s b.ttbr1_s
  && Word.equal a.ttbr0_ns b.ttbr0_ns

let pp fmt t =
  Format.fprintf fmt "@[<v>mode=%s world=%s cycles=%d upc=%a@ regs: %a@]"
    (Mode.show (mode t))
    (Mode.show_world t.world)
    t.cycles Word.pp t.upc Regs.pp t.regs
