(** TLB consistency, modelled as in §5.1 of the paper.

    Executing a TLB flush marks the TLB consistent. Loading a page-table
    base register, or storing to an address inside a live first- or
    second-level page table, marks it inconsistent. This gives the
    monitor the choice the paper describes: either flush before entering
    an enclave, or prove its stores never touched the tables. Only
    whole-TLB flushes are modelled (no tag- or region-based flushes). *)

type t = Consistent | Inconsistent [@@deriving eq, show { with_path = false }]

let initial = Inconsistent
let flush _ = Consistent
let mark_inconsistent _ = Inconsistent
let is_consistent = function Consistent -> true | Inconsistent -> false
