lib/machine/mode.pp.ml: Ppx_deriving_runtime
