lib/machine/word.pp.ml: Bytes Char Format Int String
