lib/machine/regs.pp.ml: Array Format List Map Mode Ppx_deriving_runtime Word
