lib/machine/state.pp.mli: Armexn Format Memory Mode Psr Regs Tlb Word
