lib/machine/insn.pp.mli: Format Psr Regs Word
