lib/machine/insn.pp.ml: Array Cost Fmt List Option Ppx_deriving_runtime Psr Regs Word
