lib/machine/regs.pp.mli: Format Mode Word
