lib/machine/exec.pp.ml: Array Insn List Memory Option Ppx_deriving_runtime Psr Ptable State Word
