lib/machine/word.pp.mli: Format
