lib/machine/cost.pp.mli:
