lib/machine/ptable.pp.mli: Format Memory Word
