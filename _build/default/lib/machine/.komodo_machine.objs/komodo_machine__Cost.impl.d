lib/machine/cost.pp.ml:
