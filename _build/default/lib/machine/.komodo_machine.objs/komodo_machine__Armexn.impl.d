lib/machine/armexn.pp.ml: Cost Mode Ppx_deriving_runtime
