lib/machine/ptable.pp.ml: List Memory Ppx_deriving_runtime Word
