lib/machine/tlb.pp.ml: Ppx_deriving_runtime
