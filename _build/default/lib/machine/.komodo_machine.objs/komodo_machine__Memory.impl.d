lib/machine/memory.pp.ml: Buffer Format Int List Map String Word
