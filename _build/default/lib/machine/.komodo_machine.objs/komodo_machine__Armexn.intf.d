lib/machine/armexn.pp.mli: Format Mode
