lib/machine/memory.pp.mli: Format Word
