lib/machine/mode.pp.mli: Format
