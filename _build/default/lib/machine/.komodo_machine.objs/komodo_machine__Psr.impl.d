lib/machine/psr.pp.ml: Mode Ppx_deriving_runtime Word
