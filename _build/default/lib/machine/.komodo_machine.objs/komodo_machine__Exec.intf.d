lib/machine/exec.pp.mli: Format Insn Ptable State Word
