lib/machine/state.pp.ml: Armexn Cost Format Memory Mode Psr Regs Tlb Word
