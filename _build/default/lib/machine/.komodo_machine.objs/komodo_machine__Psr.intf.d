lib/machine/psr.pp.mli: Format Mode Word
