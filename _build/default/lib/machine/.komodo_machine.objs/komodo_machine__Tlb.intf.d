lib/machine/tlb.pp.mli: Format
