(** ARM short-descriptor page tables, as used by Komodo enclaves.

    Enclave address spaces cover only the low 1 GB of virtual memory:
    the enclave table is loaded into TTBR0 (TTBCR-split) while TTBR1
    holds the monitor's static table (Figure 4). As in the paper
    (§5.1), exactly one format is modelled — 4 kB small pages in the
    short-descriptor format — and nothing is said about user execution
    under any other encoding, which forces implementations to build
    conforming tables.

    Model layout (mirroring Komodo's grouping of four ARM coarse tables
    per second-level page): a first-level table has 256 entries of 4 MB
    each; a second-level table page has 1024 entries of 4 kB each; VA
    bits [29:22] index the first level, [21:12] the second, [11:0] the
    page offset. *)

val page_size : int
(** 4096 bytes. *)

val words_per_page : int
(** 1024 words. *)

val l1_entries : int
(** 256 first-level slots (4 MB each). *)

val l2_entries : int
(** 1024 second-level entries (4 kB each). *)

val va_limit : Word.t
(** Exclusive upper bound of enclave virtual addresses: 1 GB. *)

val page_aligned : Word.t -> bool
val page_base : Word.t -> Word.t
(** Round down to a page boundary. *)

type perms = { w : bool; x : bool }
(** Read permission is implicit in presence. *)

val equal_perms : perms -> perms -> bool
val pp_perms : Format.formatter -> perms -> unit
val show_perms : perms -> string

val r_only : perms
val rw : perms
val rx : perms
val rwx : perms

val l1_index : Word.t -> int
val l2_index : Word.t -> int
val page_offset : Word.t -> Word.t

val make_l1e : l2pt_base:Word.t -> Word.t
(** First-level entry pointing at a second-level table page.
    @raise Invalid_argument on an unaligned base. *)

val decode_l1e : Word.t -> Word.t option
(** The second-level table base, if the entry is present. *)

val make_l2e : base:Word.t -> ns:bool -> perms -> Word.t
(** Second-level (small page) entry; [ns] marks insecure/shared frames.
    @raise Invalid_argument on an unaligned base. *)

val decode_l2e : Word.t -> (Word.t * bool * perms) option
(** [(frame base, ns, perms)] if present. *)

type frame = { pa : Word.t; ns : bool; perms : perms }
(** Result of a successful translation. *)

val translate : Memory.t -> ttbr:Word.t -> Word.t -> frame option
(** Walk the table rooted at [ttbr] for a virtual address; [None]
    models a translation fault. *)

val writable_pages : Memory.t -> ttbr:Word.t -> (Word.t * Word.t * bool) list
(** Every [(virtual page, physical page, ns)] mapped writable — the set
    the paper's user-execution model havocs. *)

val all_mappings : Memory.t -> ttbr:Word.t -> (Word.t * Word.t * bool * perms) list
(** All present leaf mappings (PageDB well-formedness checking). *)
