(** Program status registers (CPSR / SPSR).

    The model covers the portions the paper's machine model covers
    (§5.1): the mode field, the NZCV condition flags driving structured
    control flow, and the IRQ/FIQ mask bits the interrupt model depends
    on (§7.2). *)

type t = {
  mode : Mode.t;
  n : bool;  (** negative flag *)
  z : bool;  (** zero flag *)
  c : bool;  (** carry flag *)
  v : bool;  (** overflow flag *)
  irq_masked : bool;  (** CPSR.I: true = IRQs disabled *)
  fiq_masked : bool;  (** CPSR.F: true = FIQs disabled *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

val make :
  ?n:bool ->
  ?z:bool ->
  ?c:bool ->
  ?v:bool ->
  ?irq_masked:bool ->
  ?fiq_masked:bool ->
  Mode.t ->
  t
(** Flags default to clear and interrupts to masked. *)

val reset : t
(** Reset state: supervisor mode, interrupts masked, flags clear. *)

val user_entry : t
(** The status installed when the monitor drops into an enclave:
    user mode with interrupts enabled (§7.2). *)

val with_mode : t -> Mode.t -> t

val encode : t -> Word.t
(** Architectural 32-bit layout: N,Z,C,V at bits 31..28, I at 7, F at
    6, M at 4..0. *)

val decode : Word.t -> t option
(** [None] if the mode field is a reserved encoding. *)

val set_flags : t -> result:Word.t -> carry:bool -> overflow:bool -> t
(** Update NZCV from an ALU result (N and Z derived from [result]). *)
