(** Physical memory: a map from word-aligned addresses to 32-bit values.

    Matches the paper's memory model (§5.1): only aligned word accesses
    exist, so distinct addresses are independent; unmapped addresses
    read as zero. The map is immutable, making whole-machine snapshots
    and comparisons (as the noninterference harness performs constantly)
    cheap. *)

type t

val empty : t

exception Unaligned of Word.t
(** Raised by any access to a non-word-aligned address. *)

val load : t -> Word.t -> Word.t
val store : t -> Word.t -> Word.t -> t
(** Storing zero erases the binding, so states that read equal are
    structurally equal. *)

val load_range : t -> Word.t -> int -> Word.t list
(** [load_range t a n] reads [n] consecutive words from [a]. *)

val store_range : t -> Word.t -> Word.t list -> t

val zero_range : t -> Word.t -> int -> t
(** Zero [n] words from the given address — page scrubbing. *)

val copy_range : t -> src:Word.t -> dst:Word.t -> int -> t

val to_bytes_be : t -> Word.t -> int -> string
(** Big-endian serialisation of [n] words — the form fed to the
    measurement hash. *)

val of_bytes_be : t -> Word.t -> string -> t
(** @raise Invalid_argument if the string length is not a multiple
    of 4. *)

val equal_range : t -> t -> Word.t -> int -> bool
(** Do two memories agree on the [n] words from the given base?
    (Page-level observational equivalence.) *)

val equal : t -> t -> bool

val restrict : t -> f:(int -> bool) -> t
(** Keep only words whose address satisfies [f] — e.g. "insecure memory
    only" when building the adversary's view. *)

val fold : (int -> Word.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over explicitly-stored (nonzero) words. *)

val cardinal : t -> int
(** Number of explicitly-stored words (debugging aid). *)

val pp : Format.formatter -> t -> unit
