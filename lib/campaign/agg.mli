(** Deterministic reduction of per-trial results into one campaign
    report.

    Reduces exactly the trials a sequential run would have executed —
    indices [0..k], [k] the lowest failing index — using only
    order-insensitive merges (counter sums, histogram multisets, max),
    so a parallel campaign's report is byte-identical to the
    sequential one. *)

module Cover = Komodo_spec.Cover
module Metrics = Komodo_telemetry.Metrics
module Diff = Komodo_spec.Diff
module Explore = Komodo_spec.Explore
module Drive = Komodo_fault.Drive
module Vaultdrive = Komodo_fault.Vaultdrive
module Smpdrive = Komodo_fault.Smpdrive

val covers : Cover.t list -> Cover.t
(** Merge per-trial coverage tables into a fresh one. *)

val metrics : Metrics.t list -> Metrics.t
(** Merge per-trial telemetry registries into a fresh one. *)

type check_failure = {
  cf_index : int;  (** lowest failing trial index *)
  cf_seed : int;  (** that trial's derived seed *)
  cf_trial : Diff.trial;
  cf_shrunk : Diff.op list * Diff.divergence;
      (** recomputed from [cf_seed] on one domain *)
}

val check :
  prefix:Diff.trial array -> failure:check_failure option -> Diff.outcome
(** [prefix] is trials [0..k-1] in index order; the failing trial (if
    any) rides in [failure]. Reproduces the sequential report exactly:
    [trials_run = k+1], [ops_run] summed over trials [0..k], coverage
    and metrics merged over the same set. *)

type fault_failure = {
  ff_index : int;
  ff_seed : int;
  ff_trial : Drive.trial;
  ff_shrunk : Drive.fop list * Drive.violation;
}

val fault :
  prefix:Drive.trial array -> failure:fault_failure option -> Drive.outcome
(** Fault-campaign reduction: fop/injection totals are sums, blackout
    is a max, the violation reports the lowest failing trial. *)

type vault_failure = {
  vf_index : int;
  vf_seed : int;
  vf_trial : Vaultdrive.trial;
  vf_shrunk : Vaultdrive.sop list * Vaultdrive.violation;
}

val vault :
  prefix:Vaultdrive.trial array ->
  failure:vault_failure option ->
  Vaultdrive.outcome
(** Storage-campaign reduction: sop/probe/detected/accepted totals are
    sums, the violation reports the lowest failing trial. *)

type smp_failure = {
  sf_index : int;
  sf_seed : int;
  sf_trial : Smpdrive.trial;
  sf_shrunk : Smpdrive.sop list * Smpdrive.violation;
}

val smp :
  prefix:Smpdrive.trial array ->
  failure:smp_failure option ->
  Smpdrive.outcome
(** Multi-core campaign reduction: call/lock-statistic totals are sums,
    the violation reports the lowest failing trial. *)

(** One merged BFS level of the exhaustive explorer. *)
type explore_level = {
  el_edges : int;  (** edges checked across the level's shards *)
  el_new : (string * Explore.snode * int * Explore.xop) list;
      (** newly discovered states, deduplicated across shards
          first-writer-wins in shard order *)
  el_cover : Cover.t;
  el_violation : (int * Explore.xop * string) option;
      (** the lowest failing shard's violation, if any *)
}

val explore : Explore.shard list -> explore_level
(** Merge one level's shards (the pool's completed prefix, plus the
    lowest failing shard if the level stopped), in slice order. *)
