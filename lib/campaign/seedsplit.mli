(** Splittable seed derivation — re-exported from {!Komodo_rand.Seedsplit}.

    The implementation moved to [lib/rand] so that layers below the
    campaign engine (the SMP scheduler in [lib/os]) can share the
    splittable-seed determinism discipline; campaign callers keep this
    historical path. The derivation is frozen by golden-value tests
    ({!test/test_seedsplit.ml}) and must never change. *)

val derive : root:int -> int -> int
(** [derive ~root index] is trial [index]'s seed under [root]. See
    {!Komodo_rand.Seedsplit.derive}. *)

val mix64 : int64 -> int64
(** The raw splitmix64 finalizer (exposed for tests). Bijective. *)

type stream = Komodo_rand.Seedsplit.stream
(** A sequential reader of one root's derived seeds. *)

val stream : root:int -> unit -> stream
val next : stream -> int
(** [next s] is [derive ~root i] for consecutive [i] starting at 0. *)
