(** A fixed pool of domains running independent trials 0..n-1 through a
    sharded (atomic-counter) work queue, with deterministic, schedule-
    independent readout.

    The caller must make each trial a pure function of its index (all
    randomness derived via {!Seedsplit}); the pool then guarantees the
    *report* is independent of scheduling:

    - results come back in trial-index order;
    - a failing campaign fails at the {e lowest} failing index, not the
      first to finish;
    - every trial below that index is run to completion (cancellation
      only skips higher indices), so the surviving prefix is exactly
      what a sequential run would have produced. *)

exception Trial_error of { index : int; msg : string }
(** A trial raised instead of returning a value. All domains are joined
    before this is rethrown (no orphaned workers), and [index] is the
    lowest raising index; [msg] is [label index ^ " raised: <exn>"]. *)

type 'a run =
  | Completed of 'a array  (** all [trials] results, in index order *)
  | Stopped of { prefix : 'a array; index : int; failure : 'a }
      (** the lowest failing trial: [prefix] holds the completed
          results of trials [0..index-1], all non-failing *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val run :
  ?label:(int -> string) ->
  ?on_trial:(int -> 'a -> unit) ->
  jobs:int ->
  trials:int ->
  failed:('a -> bool) ->
  (int -> 'a) ->
  'a run
(** [run ~jobs ~trials ~failed f] evaluates [f i] for [i = 0..trials-1]
    on [min jobs trials] domains ([jobs <= 1] runs in-process with
    identical semantics) and stops early once a failing index bounds
    the remaining work. [label] renders a trial for error messages
    (callers include the derived seed). [on_trial i r] is fired after
    trial [i]'s result is published, on whichever domain ran it — it
    must be thread-safe, it only observes (exceptions it raises are
    swallowed), and it must not influence trial content.
    @raise Trial_error if a trial raises (lowest index wins).
    @raise Invalid_argument on a negative trial count. *)
