(** Domain-parallel campaign engine for the two checking campaigns.

    A campaign of [trials] trials under root seed [seed] is the same
    mathematical object at any [jobs]: trial [i] runs on seed
    [Seedsplit.derive ~root:seed i], the report covers trials [0..k]
    where [k] is the lowest failing index, and all merges are
    order-insensitive (see {!Agg}). [jobs] only chooses how many
    domains race through the index queue — `-j 1` and `-j N` emit
    byte-identical reports.

    On failure, higher-index trials are cancelled
    ({!Pool}), and the lowest failing trial is shrunk once, serially,
    on the calling domain. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], floored at 1 — the `-j`
    default. *)

val trial_seed : root:int -> int -> int
(** The seed trial [index] runs on under [root] (the {!Seedsplit}
    derivation; exposed so reports and replays can name it). *)

val check :
  ?mutate:Komodo_spec.Aspec.mutation ->
  ?npages:int ->
  ?ops_per_trial:int ->
  ?metrics:bool ->
  ?profile:bool ->
  ?clock:Komodo_telemetry.Span.clock ->
  ?progress:Progress.t ->
  ?jobs:int ->
  trials:int ->
  seed:int ->
  unit ->
  Komodo_spec.Diff.outcome
(** The differential refinement campaign (`komodo check`). [metrics]
    collects a per-trial telemetry registry and merges them into
    [outcome.metrics]. [profile] records per-trial span trees,
    concatenated in index order into [outcome.spans] (clock-free unless
    [clock] is given, hence identical at any [-j]). [progress] streams
    per-trial observations to a reporter; it only observes, so reports
    are unchanged. [jobs] defaults to {!default_jobs} (values
    [<= 0] also mean the default).
    @raise Pool.Trial_error if a trial raises (e.g. a prelude
    divergence), naming the lowest raising trial and its seed.
    @raise Failure if a divergence does not reproduce when its trial
    is re-run for shrinking (a determinism bug). *)

val fault :
  ?npages:int ->
  ?ops_per_trial:int ->
  ?profile:bool ->
  ?clock:Komodo_telemetry.Span.clock ->
  ?progress:Progress.t ->
  ?bug:Komodo_core.Monitor.bug ->
  ?jobs:int ->
  faults:Komodo_fault.Drive.fault_class list ->
  trials:int ->
  seed:int ->
  unit ->
  Komodo_fault.Drive.outcome
(** The fault-injection campaign (`komodo fault`), same engine and
    guarantees. *)

val vault :
  ?npages:int ->
  ?ops_per_trial:int ->
  ?progress:Progress.t ->
  ?bug:Komodo_user.Vault.bug ->
  ?jobs:int ->
  classes:Komodo_fault.Vaultdrive.storage_class list ->
  trials:int ->
  seed:int ->
  unit ->
  Komodo_fault.Vaultdrive.outcome
(** The sealed-storage fault campaign (`komodo vault`), same engine
    and guarantees: each trial boots a vault world from its derived
    seed, injects storage faults, and judges every unseal against
    {!Komodo_spec.Sealspec}. [bug] arms a detection-disable bug in the
    vault enclave (self-test). *)

val smp :
  ?npages:int ->
  ?cpus:int ->
  ?ops_per_cpu:int ->
  ?progress:Progress.t ->
  ?bug:Komodo_os.Smp.bug ->
  ?faults:bool ->
  ?jobs:int ->
  trials:int ->
  seed:int ->
  unit ->
  Komodo_fault.Smpdrive.outcome
(** The multi-core lock-discipline campaign (`komodo smp`), same
    engine and guarantees: each trial races seeded per-CPU call
    streams through the interleaved stepper and judges the run with
    the deadlock, PageDB-invariant, and linearisability oracles
    ({!Komodo_fault.Smpdrive}). [bug] re-arms a seeded
    lock-discipline bug (self-test); [faults] additionally fires the
    injector at lock acquire/release boundaries. *)

val explore :
  ?progress:Progress.t ->
  ?jobs:int ->
  config:Komodo_spec.Explore.config ->
  unit ->
  Komodo_spec.Explore.report
(** The bounded exhaustive search (`komodo explore`): BFS levels over
    {!Komodo_spec.Explore.expand_range}, each level's frontier sharded
    across the pool in fixed slices. Shards are pure up to the
    read-only visited set and merged in slice order ({!Agg.explore}),
    so states, edges, coverage and any counterexample are byte-identical
    at any [jobs]. On a violation the recorded BFS parent chain (a
    shortest path) is completed with the violating op and the prelude
    prepended; deeper levels are not explored.
    @raise Invalid_argument if the config is out of range
    (fewer than {!Komodo_spec.Explore.min_pages} pages, negative
    depth). *)
