(** Streaming campaign observability.

    A reporter fed from {!Pool}'s [on_trial] hook: each completed trial
    updates shared counters (trials/sec, coverage growth, fault-class
    hit counts, merged per-call cycle histograms when the campaign
    collects metrics) under a mutex, and periodic snapshots go to a
    live [\r]-rewritten stderr line and/or a JSONL mirror, one
    ["komodo-progress/1"] object per line.

    The reporter only observes: it never influences trial content or
    the campaign report, so `-j 1` / `-j N` stdout stays byte-identical
    with progress on. The clock is injected (no unix dependency here);
    wallclock-derived fields exist only inside snapshots. *)

val schema : string
(** The snapshot schema tag, ["komodo-progress/1"]. *)

type t

val create :
  ?interval:float ->
  ?live:bool ->
  ?jsonl:out_channel ->
  now:(unit -> float) ->
  label:string ->
  total:int ->
  unit ->
  t
(** [interval] is the minimum seconds between emitted snapshots
    (default 0.5; 0 emits one per trial); [live] renders the stderr
    line; [jsonl] mirrors snapshots to a channel (flushed on
    {!finish}). [now] supplies wallclock seconds. *)

val check_trial : t -> int -> Komodo_spec.Diff.trial -> unit
(** Fold one finished differential trial in; thread-safe, made to be
    passed as [Pool.run ~on_trial]. *)

val fault_trial : t -> int -> Komodo_fault.Drive.trial -> unit

val vault_trial : t -> int -> Komodo_fault.Vaultdrive.trial -> unit
(** Fold one finished storage-fault trial in. Switches snapshots and
    the live line to the vault rendering: probe/detected/accepted
    totals, detection rate, per-class op counts. Check/fault/serve
    snapshot output is unchanged. *)

val smp_trial : t -> int -> Komodo_fault.Smpdrive.trial -> unit
(** Fold one finished multi-core trial in. Switches snapshots and the
    live line to the smp rendering: calls, lock cycles,
    contended/uncontended acquisitions, spins, violations. Other
    campaigns' snapshot output is unchanged. *)

val serve_trial :
  t ->
  int ->
  served:int ->
  shed:int ->
  warm:int ->
  cold:int ->
  enter:Komodo_telemetry.Hist.t ->
  attest:Komodo_telemetry.Hist.t ->
  unit
(** Fold one finished serve shard in (scalars and histograms rather
    than a serve report, keeping this library independent of
    [komodo.serve]). Switches snapshots and the live line to the serve
    rendering: sessions/sec, pool hit rate, p50/p99 enter and attest
    latency. Check/fault snapshot output is unchanged. *)

val finish : t -> unit
(** Emit a final snapshot unconditionally, terminate the live line,
    flush the JSONL channel. *)

val snapshots : t -> int
(** Snapshots emitted so far (tests). *)

val explore_level :
  t -> depth:int -> states:int -> edges:int -> violation:bool -> unit
(** Fold one completed BFS level of the exhaustive explorer in
    ([states]/[edges] are running totals, not deltas). Switches
    snapshots and the live line to the explore rendering: depth versus
    the bound, distinct states, edges checked. Check/fault/serve/vault
    snapshot output is unchanged. *)
