(* Domain-parallel campaign entry points for the two checking
   campaigns (`komodo check`, `komodo fault`).

   Trials are independent worlds keyed only by a seed, derived purely
   from (root_seed, trial_index) via Seedsplit, run on a Pool of
   domains, and reduced by Agg with sequential semantics. On failure,
   remaining (higher-index) trials are cancelled and the lowest failing
   trial is re-shrunk from its seed on the calling domain — shrinking
   is a serial greedy loop and parallel workers would only race it. *)

module Diff = Komodo_spec.Diff
module Drive = Komodo_fault.Drive
module Vaultdrive = Komodo_fault.Vaultdrive

let default_jobs = Pool.default_jobs
let trial_seed ~root index = Seedsplit.derive ~root index

let resolve_jobs = function Some j when j > 0 -> j | _ -> default_jobs ()

let label what tseed i = Printf.sprintf "%s trial %d (seed %d)" what i (tseed i)

let check ?mutate ?npages ?ops_per_trial ?(metrics = false) ?(profile = false)
    ?clock ?progress ?jobs ~trials ~seed () =
  let jobs = resolve_jobs jobs in
  let tseed = trial_seed ~root:seed in
  let run i =
    Diff.run_trial ?mutate ?npages ?ops_per_trial ~metrics ~profile ?clock
      ~seed:(tseed i) ()
  in
  let on_trial = Option.map (fun p i t -> Progress.check_trial p i t) progress in
  let finish r = Option.iter Progress.finish progress; r in
  finish
  @@
  match
    Pool.run ~label:(label "check" tseed) ?on_trial ~jobs ~trials
      ~failed:(fun t -> t.Diff.t_divergence <> None)
      run
  with
  | Pool.Completed prefix -> Agg.check ~prefix ~failure:None
  | Pool.Stopped { prefix; index; failure } ->
      let cf_seed = tseed index in
      let cf_shrunk =
        match Diff.shrink_trial ?mutate ?npages ?ops_per_trial ~seed:cf_seed () with
        | Some r -> r
        | None ->
            failwith
              (Printf.sprintf
                 "campaign: check trial %d (seed %d) diverged in the pool but \
                  not when re-run for shrinking — the trial is not a pure \
                  function of its seed"
                 index cf_seed)
      in
      Agg.check ~prefix
        ~failure:(Some { Agg.cf_index = index; cf_seed; cf_trial = failure; cf_shrunk })

let fault ?npages ?ops_per_trial ?(profile = false) ?clock ?progress ?bug ?jobs
    ~faults ~trials ~seed () =
  let jobs = resolve_jobs jobs in
  let tseed = trial_seed ~root:seed in
  let run i =
    Drive.run_trial ?npages ?ops_per_trial ~profile ?clock ?bug ~faults
      ~seed:(tseed i) ()
  in
  let on_trial = Option.map (fun p i t -> Progress.fault_trial p i t) progress in
  let finish r = Option.iter Progress.finish progress; r in
  finish
  @@
  match
    Pool.run ~label:(label "fault" tseed) ?on_trial ~jobs ~trials
      ~failed:(fun t -> t.Drive.t_violation <> None)
      run
  with
  | Pool.Completed prefix -> Agg.fault ~prefix ~failure:None
  | Pool.Stopped { prefix; index; failure } ->
      let ff_seed = tseed index in
      let ff_shrunk =
        match
          Drive.shrink_trial ?npages ?ops_per_trial ?bug ~faults ~seed:ff_seed ()
        with
        | Some r -> r
        | None ->
            failwith
              (Printf.sprintf
                 "campaign: fault trial %d (seed %d) violated in the pool but \
                  not when re-run for shrinking — the trial is not a pure \
                  function of its seed"
                 index ff_seed)
      in
      Agg.fault ~prefix
        ~failure:(Some { Agg.ff_index = index; ff_seed; ff_trial = failure; ff_shrunk })

let vault ?npages ?ops_per_trial ?progress ?bug ?jobs ~classes ~trials ~seed ()
    =
  let jobs = resolve_jobs jobs in
  let tseed = trial_seed ~root:seed in
  let run i =
    Vaultdrive.run_trial ?npages ?ops_per_trial ?bug ~classes ~seed:(tseed i) ()
  in
  let on_trial = Option.map (fun p i t -> Progress.vault_trial p i t) progress in
  let finish r = Option.iter Progress.finish progress; r in
  finish
  @@
  match
    Pool.run ~label:(label "vault" tseed) ?on_trial ~jobs ~trials
      ~failed:(fun t -> t.Vaultdrive.t_violation <> None)
      run
  with
  | Pool.Completed prefix -> Agg.vault ~prefix ~failure:None
  | Pool.Stopped { prefix; index; failure } ->
      let vf_seed = tseed index in
      let vf_shrunk =
        match
          Vaultdrive.shrink_trial ?npages ?ops_per_trial ?bug ~classes
            ~seed:vf_seed ()
        with
        | Some r -> r
        | None ->
            failwith
              (Printf.sprintf
                 "campaign: vault trial %d (seed %d) violated in the pool but \
                  not when re-run for shrinking — the trial is not a pure \
                  function of its seed"
                 index vf_seed)
      in
      Agg.vault ~prefix
        ~failure:(Some { Agg.vf_index = index; vf_seed; vf_trial = failure; vf_shrunk })
