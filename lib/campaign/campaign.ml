(* Domain-parallel campaign entry points for the two checking
   campaigns (`komodo check`, `komodo fault`).

   Trials are independent worlds keyed only by a seed, derived purely
   from (root_seed, trial_index) via Seedsplit, run on a Pool of
   domains, and reduced by Agg with sequential semantics. On failure,
   remaining (higher-index) trials are cancelled and the lowest failing
   trial is re-shrunk from its seed on the calling domain — shrinking
   is a serial greedy loop and parallel workers would only race it. *)

module Diff = Komodo_spec.Diff
module Drive = Komodo_fault.Drive
module Vaultdrive = Komodo_fault.Vaultdrive
module Smpdrive = Komodo_fault.Smpdrive

let default_jobs = Pool.default_jobs
let trial_seed ~root index = Seedsplit.derive ~root index

let resolve_jobs = function Some j when j > 0 -> j | _ -> default_jobs ()

let label what tseed i = Printf.sprintf "%s trial %d (seed %d)" what i (tseed i)

let check ?mutate ?npages ?ops_per_trial ?(metrics = false) ?(profile = false)
    ?clock ?progress ?jobs ~trials ~seed () =
  let jobs = resolve_jobs jobs in
  let tseed = trial_seed ~root:seed in
  let run i =
    Diff.run_trial ?mutate ?npages ?ops_per_trial ~metrics ~profile ?clock
      ~seed:(tseed i) ()
  in
  let on_trial = Option.map (fun p i t -> Progress.check_trial p i t) progress in
  let finish r = Option.iter Progress.finish progress; r in
  finish
  @@
  match
    Pool.run ~label:(label "check" tseed) ?on_trial ~jobs ~trials
      ~failed:(fun t -> t.Diff.t_divergence <> None)
      run
  with
  | Pool.Completed prefix -> Agg.check ~prefix ~failure:None
  | Pool.Stopped { prefix; index; failure } ->
      let cf_seed = tseed index in
      let cf_shrunk =
        match Diff.shrink_trial ?mutate ?npages ?ops_per_trial ~seed:cf_seed () with
        | Some r -> r
        | None ->
            failwith
              (Printf.sprintf
                 "campaign: check trial %d (seed %d) diverged in the pool but \
                  not when re-run for shrinking — the trial is not a pure \
                  function of its seed"
                 index cf_seed)
      in
      Agg.check ~prefix
        ~failure:(Some { Agg.cf_index = index; cf_seed; cf_trial = failure; cf_shrunk })

let fault ?npages ?ops_per_trial ?(profile = false) ?clock ?progress ?bug ?jobs
    ~faults ~trials ~seed () =
  let jobs = resolve_jobs jobs in
  let tseed = trial_seed ~root:seed in
  let run i =
    Drive.run_trial ?npages ?ops_per_trial ~profile ?clock ?bug ~faults
      ~seed:(tseed i) ()
  in
  let on_trial = Option.map (fun p i t -> Progress.fault_trial p i t) progress in
  let finish r = Option.iter Progress.finish progress; r in
  finish
  @@
  match
    Pool.run ~label:(label "fault" tseed) ?on_trial ~jobs ~trials
      ~failed:(fun t -> t.Drive.t_violation <> None)
      run
  with
  | Pool.Completed prefix -> Agg.fault ~prefix ~failure:None
  | Pool.Stopped { prefix; index; failure } ->
      let ff_seed = tseed index in
      let ff_shrunk =
        match
          Drive.shrink_trial ?npages ?ops_per_trial ?bug ~faults ~seed:ff_seed ()
        with
        | Some r -> r
        | None ->
            failwith
              (Printf.sprintf
                 "campaign: fault trial %d (seed %d) violated in the pool but \
                  not when re-run for shrinking — the trial is not a pure \
                  function of its seed"
                 index ff_seed)
      in
      Agg.fault ~prefix
        ~failure:(Some { Agg.ff_index = index; ff_seed; ff_trial = failure; ff_shrunk })

let vault ?npages ?ops_per_trial ?progress ?bug ?jobs ~classes ~trials ~seed ()
    =
  let jobs = resolve_jobs jobs in
  let tseed = trial_seed ~root:seed in
  let run i =
    Vaultdrive.run_trial ?npages ?ops_per_trial ?bug ~classes ~seed:(tseed i) ()
  in
  let on_trial = Option.map (fun p i t -> Progress.vault_trial p i t) progress in
  let finish r = Option.iter Progress.finish progress; r in
  finish
  @@
  match
    Pool.run ~label:(label "vault" tseed) ?on_trial ~jobs ~trials
      ~failed:(fun t -> t.Vaultdrive.t_violation <> None)
      run
  with
  | Pool.Completed prefix -> Agg.vault ~prefix ~failure:None
  | Pool.Stopped { prefix; index; failure } ->
      let vf_seed = tseed index in
      let vf_shrunk =
        match
          Vaultdrive.shrink_trial ?npages ?ops_per_trial ?bug ~classes
            ~seed:vf_seed ()
        with
        | Some r -> r
        | None ->
            failwith
              (Printf.sprintf
                 "campaign: vault trial %d (seed %d) violated in the pool but \
                  not when re-run for shrinking — the trial is not a pure \
                  function of its seed"
                 index vf_seed)
      in
      Agg.vault ~prefix
        ~failure:(Some { Agg.vf_index = index; vf_seed; vf_trial = failure; vf_shrunk })

(* -- multi-core lock-discipline campaigns (komodo smp) ------------------- *)

let smp ?npages ?cpus ?ops_per_cpu ?progress ?bug ?(faults = false) ?jobs
    ~trials ~seed () =
  let jobs = resolve_jobs jobs in
  let tseed = trial_seed ~root:seed in
  let run i =
    Smpdrive.run_trial ?npages ?cpus ?ops_per_cpu ?bug ~faults ~seed:(tseed i)
      ()
  in
  let on_trial = Option.map (fun p i t -> Progress.smp_trial p i t) progress in
  let finish r = Option.iter Progress.finish progress; r in
  finish
  @@
  match
    Pool.run ~label:(label "smp" tseed) ?on_trial ~jobs ~trials
      ~failed:(fun t -> t.Smpdrive.t_violation <> None)
      run
  with
  | Pool.Completed prefix -> Agg.smp ~prefix ~failure:None
  | Pool.Stopped { prefix; index; failure } ->
      let sf_seed = tseed index in
      let sf_shrunk =
        match
          Smpdrive.shrink_trial ?npages ?cpus ?ops_per_cpu ?bug ~faults
            ~seed:sf_seed ()
        with
        | Some r -> r
        | None ->
            failwith
              (Printf.sprintf
                 "campaign: smp trial %d (seed %d) violated in the pool but \
                  not when re-run for shrinking — the trial is not a pure \
                  function of its seed"
                 index sf_seed)
      in
      Agg.smp ~prefix
        ~failure:(Some { Agg.sf_index = index; sf_seed; sf_trial = failure; sf_shrunk })

(* -- exhaustive exploration (komodo explore) ----------------------------- *)

module Explore = Komodo_spec.Explore
module Cover = Komodo_spec.Cover

(* Frontier slice size per pool shard. Small enough that violation
   localisation stays tight, large enough that shard overhead is noise
   against ~1k checked edges per node. *)
let explore_chunk = 64

let explore ?progress ?jobs ~(config : Explore.config) () : Explore.report =
  let jobs = resolve_jobs jobs in
  let w = Explore.make_world config in
  let cover = Cover.create () in
  Cover.merge_into cover (Explore.prelude_cover w);
  let root = Explore.root w in
  let root_key = Explore.node_key root in
  (* visited: key -> unit, written only between levels; parents: key ->
     (parent key, op) for shortest-path reconstruction. BFS discovery
     order guarantees the recorded parent chain is a shortest path. *)
  let visited = Hashtbl.create 4096 in
  let parents = Hashtbl.create 4096 in
  Hashtbl.add visited root_key ();
  let path_to key =
    let rec go key acc =
      match Hashtbl.find_opt parents key with
      | None -> acc
      | Some (pk, x) -> go pk (x :: acc)
    in
    go key []
  in
  let edges = ref (Explore.prelude_edges w) in
  let levels = ref [] in
  let violation = ref (Explore.prelude_violation w) in
  let frontier = ref [| root |] in
  let depth = ref 0 in
  while !violation = None && !depth < config.depth && Array.length !frontier > 0 do
    incr depth;
    let front = !frontier in
    let n = Array.length front in
    let nshards = (n + explore_chunk - 1) / explore_chunk in
    let run i =
      let lo = i * explore_chunk and hi = min n ((i + 1) * explore_chunk) in
      Explore.expand_range w ~visited:(Hashtbl.mem visited) ~frontier:front ~lo
        ~hi
    in
    let shards =
      match
        Pool.run
          ~label:(fun i -> Printf.sprintf "explore level %d shard %d" !depth i)
          ~jobs ~trials:nshards
          ~failed:(fun sh -> sh.Explore.sh_violation <> None)
          run
      with
      | Pool.Completed arr -> Array.to_list arr
      | Pool.Stopped { prefix; failure; _ } ->
          Array.to_list prefix @ [ failure ]
    in
    let lvl = Agg.explore shards in
    edges := !edges + lvl.Agg.el_edges;
    Cover.merge_into cover lvl.Agg.el_cover;
    List.iter
      (fun (key, _, pi, x) ->
        Hashtbl.add visited key ();
        Hashtbl.add parents key (Explore.node_key front.(pi), x))
      lvl.Agg.el_new;
    levels := List.length lvl.Agg.el_new :: !levels;
    (match lvl.Agg.el_violation with
    | None -> ()
    | Some (pi, x, reason) ->
        let pkey = Explore.node_key front.(pi) in
        violation :=
          Some
            {
              Explore.v_prelude = false;
              v_depth = !depth;
              v_reason = reason;
              v_ops = Explore.prelude_xops w @ path_to pkey @ [ x ];
            });
    frontier :=
      Array.of_list (List.map (fun (_, nd, _, _) -> nd) lvl.Agg.el_new);
    Option.iter
      (fun p ->
        Progress.explore_level p ~depth:!depth
          ~states:(Hashtbl.length visited) ~edges:!edges
          ~violation:(lvl.Agg.el_violation <> None))
      progress
  done;
  Option.iter Progress.finish progress;
  {
    Explore.x_states = Hashtbl.length visited;
    x_edges = !edges;
    x_levels = List.rev !levels;
    x_cover = cover;
    x_violation = !violation;
  }
