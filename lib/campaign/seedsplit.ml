(* Re-export of the splittable seed derivation, which moved to
   [lib/rand] (the bottom of the dependency graph) so that layers below
   the campaign engine — notably the SMP scheduler in [lib/os] — can
   draw from the same determinism discipline. Campaign callers keep
   their historical path [Komodo_campaign.Seedsplit]. *)

include Komodo_rand.Seedsplit
