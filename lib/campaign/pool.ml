(* A fixed pool of domains working through trial indices 0..trials-1.

   The queue is a single atomic counter: workers claim the next unrun
   index, run it, and publish the result into a per-index slot. Nothing
   about the *content* of a trial may depend on the schedule — callers
   derive all per-trial randomness from the index (see Seedsplit) — so
   the pool only has to make the *report* schedule-independent:

   - results are read out in index order after every domain has joined;
   - on failure, the campaign's failure is the failing trial with the
     LOWEST index, never the first to finish;
   - cancellation never skips an index below the lowest known failure,
     so the merged prefix 0..k-1 is always complete and equal to what a
     sequential run would have produced.

   Cancellation invariant: [bound] only decreases, and it is only
   lowered by the worker that ran (and failed) that index. A worker
   skips index i only when i > bound at claim time, hence only when
   some failing index < i exists; contrapositive, every index <= the
   final bound was claimed and run to completion. The readout scan
   therefore never finds an empty slot below the first failure. *)

exception
  Trial_error of { index : int; msg : string }
      (** A trial raised instead of returning. The pool joins every
          domain first — a crashing worker never strands the others —
          then rethrows on the coordinating domain, for the lowest
          raising index. *)

let () =
  Printexc.register_printer (function
    | Trial_error { index; msg } ->
        Some (Printf.sprintf "Pool.Trial_error(trial %d: %s)" index msg)
    | _ -> None)

type 'a run =
  | Completed of 'a array
  | Stopped of { prefix : 'a array; index : int; failure : 'a }

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* A finished slot: the trial's value, or the exception it raised
   (rendered in the worker — exception values need not cross domains). *)
type 'a slot = Value of 'a | Raised of string

let run ?label ?on_trial ~jobs ~trials ~failed run_trial =
  let label =
    match label with Some f -> f | None -> Printf.sprintf "trial %d"
  in
  if trials < 0 then invalid_arg "Pool.run: negative trial count";
  if trials = 0 then Completed [||]
  else begin
    let results : 'a slot option array = Array.make trials None in
    let jobs = max 1 (min jobs trials) in
    let attempt i = try Value (run_trial i) with e -> Raised (Printexc.to_string e) in
    (* Observation hook: fired after a trial's result is published, on
       the domain that ran it. Must be thread-safe; must not affect
       trial content (the report stays schedule-independent because
       the hook only observes). *)
    let observe i r =
      match (on_trial, r) with
      | Some f, Value a -> ( try f i a with _ -> ())
      | _ -> ()
    in
    let is_failure = function
      | Raised _ -> true
      | Value a -> failed a
    in
    if jobs = 1 then begin
      (* In-process fast path: identical semantics (stop at the first
         failing index; later trials never run), no domain overhead. *)
      let rec go i =
        if i < trials then begin
          let r = attempt i in
          results.(i) <- Some r;
          observe i r;
          if not (is_failure r) then go (i + 1)
        end
      in
      go 0
    end
    else begin
      let next = Atomic.make 0 in
      let bound = Atomic.make max_int in
      let rec lower i =
        let b = Atomic.get bound in
        if i < b && not (Atomic.compare_and_set bound b i) then lower i
      in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < trials && i <= Atomic.get bound then begin
          let r = attempt i in
          results.(i) <- Some r;
          observe i r;
          if is_failure r then lower i;
          worker ()
        end
      in
      let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join helpers
    end;
    (* Deterministic readout: scan up from index 0 for the first
       failure. The cancellation invariant guarantees every slot below
       it is filled. *)
    let value_at j =
      match results.(j) with
      | Some (Value a) -> a
      | _ -> assert false (* scan stopped before j, or cancellation bug *)
    in
    let rec scan i =
      if i >= trials then None
      else
        match results.(i) with
        | Some r when is_failure r -> Some (i, r)
        | Some (Value _) -> scan (i + 1)
        | Some (Raised _) | None -> assert false (* slot below the lowest failure left unrun *)
    in
    match scan 0 with
    | None -> Completed (Array.init trials value_at)
    | Some (i, Raised msg) ->
        raise (Trial_error { index = i; msg = label i ^ " raised: " ^ msg })
    | Some (i, Value failure) ->
        Stopped { prefix = Array.init i value_at; index = i; failure }
  end
