(* Deterministic reduction of per-trial results into one campaign
   report.

   The contract that makes `-j N` byte-identical to `-j 1`: the report
   is a function of the trial results for indices 0..k only, where k is
   the lowest failing index (or trials-1 on a clean campaign) — exactly
   the set a sequential run would have produced — and every merge used
   here is order-insensitive (coverage and metrics counters are sums,
   cycle histograms are multisets, blackout is a max). The failing
   trial is reported by index, never by finish order, and its shrunk
   trace is recomputed deterministically from its seed. *)

module Cover = Komodo_spec.Cover
module Metrics = Komodo_telemetry.Metrics
module Diff = Komodo_spec.Diff
module Explore = Komodo_spec.Explore
module Drive = Komodo_fault.Drive
module Vaultdrive = Komodo_fault.Vaultdrive
module Smpdrive = Komodo_fault.Smpdrive

let covers cs =
  let c = Cover.create () in
  List.iter (fun src -> Cover.merge_into c src) cs;
  c

let metrics ms =
  let m = Metrics.create () in
  List.iter (fun src -> Metrics.merge_into m src) ms;
  m

let opt_metrics trials =
  match List.filter_map Fun.id trials with [] -> None | ms -> Some (metrics ms)

(* -- differential (check) campaigns -------------------------------------- *)

type check_failure = {
  cf_index : int;  (** lowest failing trial index *)
  cf_seed : int;  (** that trial's derived seed *)
  cf_trial : Diff.trial;
  cf_shrunk : Diff.op list * Diff.divergence;
}

let check ~(prefix : Diff.trial array) ~(failure : check_failure option) :
    Diff.outcome =
  let all =
    Array.to_list prefix
    @ match failure with None -> [] | Some f -> [ f.cf_trial ]
  in
  let cover = covers (List.map (fun t -> t.Diff.t_cover) all) in
  let metrics = opt_metrics (List.map (fun t -> t.Diff.t_metrics) all) in
  let ops_run = List.fold_left (fun a t -> a + t.Diff.t_ops_run) 0 all in
  let spans = List.concat_map (fun t -> t.Diff.t_spans) all in
  match failure with
  | None ->
      {
        Diff.trials_run = Array.length prefix;
        ops_run;
        divergence = None;
        cover;
        metrics;
        spans;
      }
  | Some f ->
      let shrunk, d = f.cf_shrunk in
      {
        Diff.trials_run = f.cf_index + 1;
        ops_run;
        divergence = Some (f.cf_seed, shrunk, d);
        cover;
        metrics;
        spans;
      }

(* -- fault campaigns ----------------------------------------------------- *)

(* -- vault (storage fault) campaigns ------------------------------------- *)

type vault_failure = {
  vf_index : int;
  vf_seed : int;
  vf_trial : Vaultdrive.trial;
  vf_shrunk : Vaultdrive.sop list * Vaultdrive.violation;
}

let vault ~(prefix : Vaultdrive.trial array) ~(failure : vault_failure option) :
    Vaultdrive.outcome =
  let all =
    Array.to_list prefix
    @ match failure with None -> [] | Some f -> [ f.vf_trial ]
  in
  let sum f = List.fold_left (fun a t -> a + f t) 0 all in
  let total_sops = sum (fun t -> t.Vaultdrive.t_sops_run) in
  let total_probes = sum (fun t -> t.Vaultdrive.t_probes) in
  let total_detected = sum (fun t -> t.Vaultdrive.t_detected) in
  let total_accepted = sum (fun t -> t.Vaultdrive.t_accepted) in
  match failure with
  | None ->
      {
        Vaultdrive.trials_run = Array.length prefix;
        total_sops;
        total_probes;
        total_detected;
        total_accepted;
        violation = None;
      }
  | Some f ->
      let shrunk, v = f.vf_shrunk in
      {
        Vaultdrive.trials_run = f.vf_index + 1;
        total_sops;
        total_probes;
        total_detected;
        total_accepted;
        violation = Some (f.vf_seed, shrunk, v);
      }

type fault_failure = {
  ff_index : int;
  ff_seed : int;
  ff_trial : Drive.trial;
  ff_shrunk : Drive.fop list * Drive.violation;
}

let fault ~(prefix : Drive.trial array) ~(failure : fault_failure option) :
    Drive.outcome =
  let all =
    Array.to_list prefix
    @ match failure with None -> [] | Some f -> [ f.ff_trial ]
  in
  let sum f = List.fold_left (fun a t -> a + f t) 0 all in
  let total_fops = sum (fun t -> t.Drive.t_fops_run) in
  let total_injections = sum (fun t -> t.Drive.t_injections) in
  let blackout = List.fold_left (fun a t -> max a t.Drive.t_blackout) 0 all in
  let spans = List.concat_map (fun t -> t.Drive.t_spans) all in
  match failure with
  | None ->
      {
        Drive.trials_run = Array.length prefix;
        total_fops;
        total_injections;
        blackout;
        violation = None;
        spans;
      }
  | Some f ->
      let shrunk, v = f.ff_shrunk in
      {
        Drive.trials_run = f.ff_index + 1;
        total_fops;
        total_injections;
        blackout;
        violation = Some (f.ff_seed, shrunk, v);
        spans;
      }

(* -- multi-core (smp) campaigns ------------------------------------------ *)

type smp_failure = {
  sf_index : int;
  sf_seed : int;
  sf_trial : Smpdrive.trial;
  sf_shrunk : Smpdrive.sop list * Smpdrive.violation;
}

let smp ~(prefix : Smpdrive.trial array) ~(failure : smp_failure option) :
    Smpdrive.outcome =
  let all =
    Array.to_list prefix
    @ match failure with None -> [] | Some f -> [ f.sf_trial ]
  in
  let sum f = List.fold_left (fun a t -> a + f t) 0 all in
  let total_calls = sum (fun t -> t.Smpdrive.t_calls) in
  let total_contended = sum (fun t -> t.Smpdrive.t_contended) in
  let total_uncontended = sum (fun t -> t.Smpdrive.t_uncontended) in
  let total_spins = sum (fun t -> t.Smpdrive.t_spins) in
  let total_retries = sum (fun t -> t.Smpdrive.t_retries) in
  let total_lock_cycles = sum (fun t -> t.Smpdrive.t_lock_cycles) in
  let total_injections = sum (fun t -> t.Smpdrive.t_injections) in
  match failure with
  | None ->
      {
        Smpdrive.trials_run = Array.length prefix;
        total_calls;
        total_contended;
        total_uncontended;
        total_spins;
        total_retries;
        total_lock_cycles;
        total_injections;
        violation = None;
      }
  | Some f ->
      let shrunk, v = f.sf_shrunk in
      {
        Smpdrive.trials_run = f.sf_index + 1;
        total_calls;
        total_contended;
        total_uncontended;
        total_spins;
        total_retries;
        total_lock_cycles;
        total_injections;
        violation = Some (f.sf_seed, shrunk, v);
      }

(* -- exhaustive-exploration (explore) levels ----------------------------- *)

type explore_level = {
  el_edges : int;
  el_new : (string * Explore.snode * int * Explore.xop) list;
  el_cover : Cover.t;
  el_violation : (int * Explore.xop * string) option;
}

let explore (shards : Explore.shard list) : explore_level =
  (* Shards arrive in slice order (the pool's Stopped prefix plus the
     lowest failing shard). Cross-shard key collisions are resolved
     first-writer-wins in that order, so the merged level — and hence
     the whole search — is independent of how many domains ran it. *)
  let seen = Hashtbl.create 256 in
  let news = ref [] in
  let edges = ref 0 in
  let cover = Cover.create () in
  let violation = ref None in
  List.iter
    (fun (sh : Explore.shard) ->
      edges := !edges + sh.Explore.sh_edges;
      Cover.merge_into cover sh.Explore.sh_cover;
      List.iter
        (fun ((key, _, _, _) as entry) ->
          if not (Hashtbl.mem seen key) then (
            Hashtbl.add seen key ();
            news := entry :: !news))
        sh.Explore.sh_new;
      if !violation = None then violation := sh.Explore.sh_violation)
    shards;
  {
    el_edges = !edges;
    el_new = List.rev !news;
    el_cover = cover;
    el_violation = !violation;
  }
