(* Streaming campaign observability: a mutex-protected reporter fed
   from Pool's [on_trial] hook (any domain), emitting periodic
   snapshots to a live stderr line and/or a JSONL mirror.

   Strictly an observer: it never touches trial content or the campaign
   report, so enabling it cannot perturb the byte-identical `-j 1` /
   `-j N` contract. The clock is injected — the library takes no unix
   dependency, and tests drive it with a fake clock for deterministic
   snapshot streams. All wallclock-derived fields (elapsed, trials/s)
   live only in the snapshots, never in campaign output. *)

module Cover = Komodo_spec.Cover
module Metrics = Komodo_telemetry.Metrics
module Hist = Komodo_telemetry.Hist
module Json = Komodo_telemetry.Json
module Diff = Komodo_spec.Diff
module Drive = Komodo_fault.Drive
module Vaultdrive = Komodo_fault.Vaultdrive
module Smpdrive = Komodo_fault.Smpdrive

let schema = "komodo-progress/1"

type t = {
  now : unit -> float;
  interval : float;
  live : bool;
  jsonl : out_channel option;
  label : string;
  total : int;
  mu : Mutex.t;
  started : float;
  mutable trials_done : int;
  mutable ops : int;
  mutable failures : int;  (** divergences or violations seen *)
  mutable injections : int;
  mutable blackout : int;
  mutable classes : (string * int) list;  (** fault-class armed counts *)
  cover : Cover.t;
  metrics : Metrics.t;  (** merged per-trial registries, when collected *)
  mutable have_metrics : bool;
  (* Serve-campaign counters (komodo serve); [have_serve] gates their
     appearance so check/fault snapshots are byte-for-byte unchanged. *)
  mutable s_served : int;
  mutable s_shed : int;
  mutable s_warm : int;
  mutable s_cold : int;
  s_enter : Hist.t;  (** merged enter-latency histogram, model cycles *)
  s_attest : Hist.t;  (** merged service-latency histogram, model cycles *)
  mutable have_serve : bool;
  (* Vault (storage fault) campaign counters, gated by [have_vault]. *)
  mutable v_probes : int;
  mutable v_detected : int;
  mutable v_accepted : int;
  mutable have_vault : bool;
  (* Multi-core (smp) campaign counters, gated by [have_smp]. *)
  mutable m_contended : int;
  mutable m_uncontended : int;
  mutable m_spins : int;
  mutable m_lock_cycles : int;
  mutable m_injections : int;
  mutable have_smp : bool;
  (* Exhaustive-exploration (explore) counters, gated by
     [have_explore]; [total] is the depth bound, [trials_done] the
     levels folded in. *)
  mutable x_depth : int;
  mutable x_states : int;
  mutable x_edges : int;
  mutable have_explore : bool;
  mutable last_emit : float;
  mutable emitted : int;
}

let create ?(interval = 0.5) ?(live = false) ?jsonl ~now ~label ~total () =
  {
    now;
    interval;
    live;
    jsonl;
    label;
    total;
    mu = Mutex.create ();
    started = now ();
    trials_done = 0;
    ops = 0;
    failures = 0;
    injections = 0;
    blackout = 0;
    classes = [];
    cover = Cover.create ();
    metrics = Metrics.create ();
    have_metrics = false;
    s_served = 0;
    s_shed = 0;
    s_warm = 0;
    s_cold = 0;
    s_enter = Hist.create ();
    s_attest = Hist.create ();
    have_serve = false;
    v_probes = 0;
    v_detected = 0;
    v_accepted = 0;
    have_vault = false;
    m_contended = 0;
    m_uncontended = 0;
    m_spins = 0;
    m_lock_cycles = 0;
    m_injections = 0;
    have_smp = false;
    x_depth = 0;
    x_states = 0;
    x_edges = 0;
    have_explore = false;
    last_emit = neg_infinity;
    emitted = 0;
  }

let covered l = List.length (List.filter (fun (_, n) -> n > 0) l)

let merge_classes t cs =
  if t.classes = [] then t.classes <- cs
  else
    t.classes <-
      List.map
        (fun (k, n) ->
          (k, n + (try List.assoc k cs with Not_found -> 0)))
        t.classes

let snapshot_json t elapsed =
  let tps = if elapsed > 0. then float_of_int t.trials_done /. elapsed else 0. in
  let base =
    [
      ("schema", Json.Str schema);
      ("label", Json.Str t.label);
      ("done", Json.Int t.trials_done);
      ("total", Json.Int t.total);
      ("elapsed_s", Json.Float elapsed);
      ("trials_per_s", Json.Float tps);
      ("ops", Json.Int t.ops);
      ("failures", Json.Int t.failures);
      ( "cover",
        Json.Obj
          [
            ("smc_calls", Json.Int (covered (Cover.smc_covered t.cover)));
            ("svc_calls", Json.Int (covered (Cover.svc_covered t.cover)));
            ("errors", Json.Int (List.length (Cover.errors_covered t.cover)));
            ("transitions", Json.Int (List.length (Cover.transitions t.cover)));
          ] );
    ]
  in
  let fault =
    if t.have_vault || (t.classes = [] && t.injections = 0 && t.blackout = 0)
    then []
    else
      [
        ("injections", Json.Int t.injections);
        ("blackout", Json.Int t.blackout);
        ( "fault_classes",
          Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) t.classes) );
      ]
  in
  let cycles =
    if not t.have_metrics then []
    else
      [
        ( "cycles",
          Json.Obj
            (List.filter_map
               (fun name ->
                 match Metrics.stats t.metrics name with
                 | None -> None
                 | Some s ->
                     Some
                       ( name,
                         Json.Obj
                           [
                             ("count", Json.Int s.Metrics.count);
                             ("p50", Json.Int s.Metrics.p50);
                             ("p90", Json.Int s.Metrics.p90);
                             ("p99", Json.Int s.Metrics.p99);
                             ("max", Json.Int s.Metrics.max);
                           ] ))
               (Metrics.call_names t.metrics)) );
      ]
  in
  let serve =
    if not t.have_serve then []
    else
      let total = t.s_warm + t.s_cold in
      let hit = if total = 0 then 1.0 else float_of_int t.s_warm /. float_of_int total in
      let sps = if elapsed > 0. then float_of_int t.s_served /. elapsed else 0. in
      [
        ( "serve",
          Json.Obj
            [
              ("served", Json.Int t.s_served);
              ("shed", Json.Int t.s_shed);
              ("sessions_per_s", Json.Float sps);
              ("pool_hit_rate", Json.Float hit);
              ("enter_p50", Json.Int (Hist.p50 t.s_enter));
              ("enter_p99", Json.Int (Hist.p99 t.s_enter));
              ("attest_p50", Json.Int (Hist.p50 t.s_attest));
              ("attest_p99", Json.Int (Hist.p99 t.s_attest));
            ] );
      ]
  in
  let vault =
    if not t.have_vault then []
    else
      let rate =
        let refusals = t.v_probes - t.v_accepted in
        if refusals = 0 then 1.0
        else float_of_int t.v_detected /. float_of_int refusals
      in
      [
        ( "vault",
          Json.Obj
            [
              ("probes", Json.Int t.v_probes);
              ("detected", Json.Int t.v_detected);
              ("accepted", Json.Int t.v_accepted);
              ("detection_rate", Json.Float rate);
              ( "storage_classes",
                Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) t.classes)
              );
            ] );
      ]
  in
  let smp =
    if not t.have_smp then []
    else
      [
        ( "smp",
          Json.Obj
            [
              ("contended", Json.Int t.m_contended);
              ("uncontended", Json.Int t.m_uncontended);
              ("spins", Json.Int t.m_spins);
              ("lock_cycles", Json.Int t.m_lock_cycles);
              ("injections", Json.Int t.m_injections);
            ] );
      ]
  in
  let explore =
    if not t.have_explore then []
    else
      [
        ( "explore",
          Json.Obj
            [
              ("depth", Json.Int t.x_depth);
              ("states", Json.Int t.x_states);
              ("edges", Json.Int t.x_edges);
            ] );
      ]
  in
  Json.Obj (base @ fault @ cycles @ serve @ vault @ smp @ explore)

let live_line t elapsed =
  if t.have_explore then begin
    ignore elapsed;
    Printf.sprintf
      "\rkomodo %s: depth %d/%d, %d states, %d edges checked, %d violations"
      t.label t.x_depth t.total t.x_states t.x_edges t.failures
  end
  else if t.have_smp then begin
    let tps =
      if elapsed > 0. then float_of_int t.trials_done /. elapsed else 0.
    in
    Printf.sprintf
      "\rkomodo %s: %d/%d trials, %.1f trials/s, %d calls, lock cyc %d \
       (%d contended, %d spins), %d violations"
      t.label t.trials_done t.total tps t.ops t.m_lock_cycles t.m_contended
      t.m_spins t.failures
  end
  else if t.have_vault then begin
    let tps =
      if elapsed > 0. then float_of_int t.trials_done /. elapsed else 0.
    in
    Printf.sprintf
      "\rkomodo %s: %d/%d trials, %.1f trials/s, %d probes (%d detected, %d \
       accepted), %d violations"
      t.label t.trials_done t.total tps t.v_probes t.v_detected t.v_accepted
      t.failures
  end
  else if t.have_serve then begin
    let total = t.s_warm + t.s_cold in
    let hit = if total = 0 then 100.0 else 100.0 *. float_of_int t.s_warm /. float_of_int total in
    let sps = if elapsed > 0. then float_of_int t.s_served /. elapsed else 0. in
    Printf.sprintf
      "\rkomodo %s: %d/%d shards, %d sessions (%.0f/s), hit %.1f%%, enter \
       p50/p99 %d/%d, attest p50/p99 %d/%d"
      t.label t.trials_done t.total t.s_served sps hit (Hist.p50 t.s_enter)
      (Hist.p99 t.s_enter) (Hist.p50 t.s_attest) (Hist.p99 t.s_attest)
  end
  else
  let tps = if elapsed > 0. then float_of_int t.trials_done /. elapsed else 0. in
  let cover =
    Printf.sprintf "cover smc %d svc %d"
      (covered (Cover.smc_covered t.cover))
      (covered (Cover.svc_covered t.cover))
  in
  let tail =
    if t.injections > 0 || t.classes <> [] then
      Printf.sprintf ", %d injections, blackout %d" t.injections t.blackout
    else Printf.sprintf ", %d ops" t.ops
  in
  Printf.sprintf "\rkomodo %s: %d/%d trials, %.1f trials/s, %s%s" t.label
    t.trials_done t.total tps cover tail

(* Caller holds the mutex. *)
let emit t ~final =
  let now = t.now () in
  if final || now -. t.last_emit >= t.interval || t.trials_done >= t.total
  then begin
    t.last_emit <- now;
    t.emitted <- t.emitted + 1;
    let elapsed = now -. t.started in
    if t.live then begin
      output_string stderr (live_line t elapsed);
      if final then output_string stderr "\n";
      flush stderr
    end;
    match t.jsonl with
    | None -> ()
    | Some oc ->
        output_string oc (Json.to_string (snapshot_json t elapsed));
        output_char oc '\n';
        if final then flush oc
  end

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let check_trial t _index (tr : Diff.trial) =
  locked t (fun () ->
      t.trials_done <- t.trials_done + 1;
      t.ops <- t.ops + tr.Diff.t_ops_run;
      if tr.Diff.t_divergence <> None then t.failures <- t.failures + 1;
      Cover.merge_into t.cover tr.Diff.t_cover;
      (match tr.Diff.t_metrics with
      | None -> ()
      | Some m ->
          t.have_metrics <- true;
          Metrics.merge_into t.metrics m);
      emit t ~final:false)

let fault_trial t _index (tr : Drive.trial) =
  locked t (fun () ->
      t.trials_done <- t.trials_done + 1;
      t.ops <- t.ops + tr.Drive.t_fops_run;
      t.injections <- t.injections + tr.Drive.t_injections;
      t.blackout <- max t.blackout tr.Drive.t_blackout;
      merge_classes t tr.Drive.t_classes;
      if tr.Drive.t_violation <> None then t.failures <- t.failures + 1;
      emit t ~final:false)

(* Fold one finished serve shard in. Takes plain scalars and histograms
   rather than a serve report so the campaign library stays downstream
   of nothing but telemetry (komodo.serve depends on komodo.campaign,
   not the other way round). *)
let serve_trial t _index ~served ~shed ~warm ~cold ~enter ~attest =
  locked t (fun () ->
      t.trials_done <- t.trials_done + 1;
      t.have_serve <- true;
      t.s_served <- t.s_served + served;
      t.s_shed <- t.s_shed + shed;
      t.s_warm <- t.s_warm + warm;
      t.s_cold <- t.s_cold + cold;
      Hist.merge_into t.s_enter enter;
      Hist.merge_into t.s_attest attest;
      emit t ~final:false)

let vault_trial t _index (tr : Vaultdrive.trial) =
  locked t (fun () ->
      t.trials_done <- t.trials_done + 1;
      t.have_vault <- true;
      t.ops <- t.ops + tr.Vaultdrive.t_sops_run;
      t.v_probes <- t.v_probes + tr.Vaultdrive.t_probes;
      t.v_detected <- t.v_detected + tr.Vaultdrive.t_detected;
      t.v_accepted <- t.v_accepted + tr.Vaultdrive.t_accepted;
      merge_classes t tr.Vaultdrive.t_classes;
      if tr.Vaultdrive.t_violation <> None then t.failures <- t.failures + 1;
      emit t ~final:false)

let smp_trial t _index (tr : Smpdrive.trial) =
  locked t (fun () ->
      t.trials_done <- t.trials_done + 1;
      t.have_smp <- true;
      t.ops <- t.ops + tr.Smpdrive.t_calls;
      t.m_contended <- t.m_contended + tr.Smpdrive.t_contended;
      t.m_uncontended <- t.m_uncontended + tr.Smpdrive.t_uncontended;
      t.m_spins <- t.m_spins + tr.Smpdrive.t_spins;
      t.m_lock_cycles <- t.m_lock_cycles + tr.Smpdrive.t_lock_cycles;
      t.m_injections <- t.m_injections + tr.Smpdrive.t_injections;
      if tr.Smpdrive.t_violation <> None then t.failures <- t.failures + 1;
      emit t ~final:false)

(* Fold one completed BFS level of the exhaustive explorer in. The
   totals are running (already summed by the level loop), not deltas. *)
let explore_level t ~depth ~states ~edges ~violation =
  locked t (fun () ->
      t.trials_done <- t.trials_done + 1;
      t.have_explore <- true;
      t.x_depth <- depth;
      t.x_states <- states;
      t.x_edges <- edges;
      if violation then t.failures <- t.failures + 1;
      emit t ~final:false)

let finish t =
  locked t (fun () -> emit t ~final:true)

let snapshots t = locked t (fun () -> t.emitted)
