(** Multi-core lock-discipline campaigns over the interleaved stepper.

    Each trial boots the platform, runs a sequential prelude giving
    every CPU its own unfinalised address space, then races a seeded
    per-CPU stream of construction calls over a small shared page pool
    through {!Komodo_os.Smp.run}. Three oracles judge the run: the
    stepper's deadlock detector (any wait-for cycle is a violation —
    the ascending acquisition order excludes them by construction),
    {!Komodo_core.Pagedb.check} on the final shared state, and
    {!Komodo_spec.Linz.check} (some sequential order must explain the
    observed results and final abstract state). Violations shrink to a
    1-minimal op list and serialise to JSONL replay traces. *)

module Smp = Komodo_os.Smp

type sop = { s_cpu : int; s_call : int; s_args : int list }

val pp_sop : sop -> string

type violation = {
  index : int;  (** last op index of the violating run (for shrinking) *)
  kind : string;  (** ["deadlock"] | ["invariant"] | ["linearisability"] *)
  reason : string;
}

val pp_violation : violation -> string

val asp_page : int -> int
(** The prelude address-space page of a CPU (pages [3c .. 3c+2] are cpu
    [c]'s addrspace / l1pt / l2pt). *)

val pool_base : cpus:int -> int
(** First page of the contended pool (the 8 pages every CPU races on). *)

val pool_pages : int

val boot_world : seed:int -> npages:int -> cpus:int -> Komodo_os.Os.t
(** Boot and run the per-CPU preludes. Exposed for tests.
    @raise Invalid_argument if [npages] cannot hold the preludes + pool.
    @raise Failure if a prelude call fails (harness bug). *)

val gen_faults : seed:int -> n:int -> Inject.plan_item list
(** A seeded lock-boundary fault plan ({!Inject.Lockstep} points only):
    insecure-window writes, interrupts, RNG glitches. *)

type stats = {
  calls : int;
  contended : int;
  uncontended : int;
  spins : int;
  retries : int;
  lock_cycles : int;
  injections : int;  (** lock-boundary faults actually fired *)
}

val run_sops :
  ?bug:Smp.bug ->
  ?faults:bool ->
  seed:int ->
  npages:int ->
  cpus:int ->
  sop list ->
  (stats, violation) result
(** Deterministic: rebuilds the whole world from [seed] each call. *)

val gen_sops : seed:int -> npages:int -> cpus:int -> ops_per_cpu:int -> sop list

type trial = {
  t_calls : int;
  t_contended : int;
  t_uncontended : int;
  t_spins : int;
  t_retries : int;
  t_lock_cycles : int;
  t_injections : int;
  t_violation : violation option;
}

val default_npages : int
val default_cpus : int
val default_ops : int

val run_trial :
  ?npages:int ->
  ?cpus:int ->
  ?ops_per_cpu:int ->
  ?bug:Smp.bug ->
  ?faults:bool ->
  seed:int ->
  unit ->
  trial

val shrink_trial :
  ?npages:int ->
  ?cpus:int ->
  ?ops_per_cpu:int ->
  ?bug:Smp.bug ->
  ?faults:bool ->
  seed:int ->
  unit ->
  (sop list * violation) option
(** [None] if the trial does not violate when re-run from its seed. *)

type outcome = {
  trials_run : int;
  total_calls : int;
  total_contended : int;
  total_uncontended : int;
  total_spins : int;
  total_retries : int;
  total_lock_cycles : int;
  total_injections : int;
  violation : (int * sop list * violation) option;
}

(** {2 Replay traces} (JSONL, like {!Drive}'s) *)

type header = {
  h_seed : int;
  h_npages : int;
  h_cpus : int;
  h_bug : Smp.bug option;
}

val trace_lines :
  seed:int -> npages:int -> cpus:int -> bug:Smp.bug option -> sop list ->
  string list

val trace_parse : string list -> (header * sop list, string) result
val replay : header -> sop list -> (stats, violation) result
