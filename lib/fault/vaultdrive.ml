(* Storage fault campaigns over the sealed-storage vault (see the
   interface for the big picture).

   The driver plays both sides, like [Drive]: as the adversarial OS
   it owns a [Blockstore] and corrupts / rolls back / reorders /
   truncates / wipes it, crashes the OS, and reboots the whole
   platform; as the trusted judge it holds the ground truth the
   theorem quantifies over — the genuine seal history and the
   monotonic NV counter (the RPMB-style hardware §9 assumes) — and
   after {e every} injected storage fault it presents the disk's
   current contents to the vault and compares the verdict against
   {!Sealspec.classify}. Any mismatch, in either direction, ends the
   trial as a violation. *)

module Word = Komodo_machine.Word
module Sha256 = Komodo_crypto.Sha256
module Errors = Komodo_core.Errors
module Os = Komodo_os.Os
module Image = Komodo_os.Image
module Loader = Komodo_os.Loader
module Blockstore = Komodo_os.Blockstore
module Mapping = Komodo_core.Mapping
module Vault = Komodo_user.Vault
module Uprog = Komodo_user.Uprog
module Sealspec = Komodo_spec.Sealspec
module Json = Komodo_telemetry.Json

(* -- Storage fault classes ----------------------------------------------- *)

type storage_class = S_tamper | S_replay | S_crash

let class_name = function
  | S_tamper -> "tamper"
  | S_replay -> "replay"
  | S_crash -> "crash"

let all_classes = [ S_tamper; S_replay; S_crash ]

let class_of_string s =
  List.find_opt (fun c -> String.equal (class_name c) s) all_classes

(* -- Campaign operations -------------------------------------------------- *)

type sop =
  | V_update of { index : int; value : int }  (** mutate the secret state *)
  | V_seal  (** seal under NV+1 and persist the blob *)
  | V_probe  (** present the disk to the vault, no fault injected *)
  | A_tamper of { block : int; byte : int; bit : int }
  | A_rollback of { block : int; depth : int }  (** partial (torn) rollback *)
  | A_rollback_blob of { depth : int }  (** consistent whole-blob rollback *)
  | A_swap of { a : int; b : int }
  | A_truncate of { keep : int }
  | A_wipe
  | V_crash_os of { seed : int }  (** OS crash: disk and enclave survive *)
  | V_reboot  (** full platform reboot: only disk and NV survive *)

let pp_sop = function
  | V_update { index; value } -> Printf.sprintf "update(state[%d] := %d)" index value
  | V_seal -> "seal"
  | V_probe -> "probe"
  | A_tamper { block; byte; bit } ->
      Printf.sprintf "tamper(block %d, byte %d, bit %d)" block byte bit
  | A_rollback { block; depth } ->
      Printf.sprintf "rollback(block %d, depth %d)" block depth
  | A_rollback_blob { depth } -> Printf.sprintf "rollback_blob(depth %d)" depth
  | A_swap { a; b } -> Printf.sprintf "swap(%d, %d)" a b
  | A_truncate { keep } -> Printf.sprintf "truncate(keep %d)" keep
  | A_wipe -> "wipe"
  | V_crash_os { seed } -> Printf.sprintf "crash_os(seed=%d)" seed
  | V_reboot -> "reboot"

(** Does this operation disturb storage or platform state (and so
    mandate an immediate unseal check)? *)
let is_fault = function
  | V_update _ | V_seal | V_probe -> false
  | A_tamper _ | A_rollback _ | A_rollback_blob _ | A_swap _ | A_truncate _
  | A_wipe | V_crash_os _ | V_reboot ->
      true

type violation = { index : int; sop : sop; reason : string }

let pp_violation v =
  Printf.sprintf "sop %d: %s\n  %s" v.index (pp_sop v.sop) v.reason

(* -- The world ------------------------------------------------------------ *)

(* Store geometry: small blocks so a sealed blob (92 bytes + length
   prefix = 96) spans three of them — partial rollbacks, swaps inside
   the blob, and truncations all hit distinct failure shapes. *)
let store_nblocks = 8
let store_block_size = 32
let blob_at = 0

let vault_out = Os.shared_base
let vault_in = Word.add Os.shared_base (Word.of_int 0x1000)

let vault_image =
  let zero_page = String.make 4096 '\000' in
  let img = Image.empty ~name:"vault" in
  let img =
    Image.add_blob img ~va:Vault.code_va ~w:false ~x:true
      (Uprog.to_page_images (Uprog.native_words ~id:Vault.native_id))
  in
  let img =
    Image.add_secure_page img
      ~mapping:(Mapping.make ~va:Vault.state_va ~w:true ~x:false)
      ~contents:zero_page
  in
  let img =
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:Vault.input_va ~w:false ~x:false)
      ~target:vault_in
  in
  let img =
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:Vault.output_va ~w:true ~x:false)
      ~target:vault_out
  in
  Image.add_thread img ~entry:Vault.code_va

(** Boot the platform and bring up an initialised vault. Raises
    [Failure] on setup errors — those are harness bugs, not theorem
    violations. *)
let boot_vault ~seed ~npages ~bug =
  let os = Os.boot ~seed ~npages ~exec:(Vault.executor ?bug ()) () in
  let os, h =
    match Loader.load os vault_image with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "vault load: %a" Loader.pp_error e)
  in
  let thread = List.hd h.Loader.threads in
  let os, err, ret =
    Os.enter os ~thread ~args:(Word.of_int Vault.cmd_init, Word.zero, Word.zero)
  in
  if not (Errors.is_success err) || not (Word.equal ret Word.zero) then
    failwith
      (Format.asprintf "vault init: %a (exit %d)" Errors.pp err (Word.to_int ret));
  (os, thread)

type ctx = { boot_seed : int; npages : int; bug : Vault.bug option }

let zero_state = String.make Vault.state_bytes '\x00'

type wstate = {
  os : Os.t;
  thread : int;
  store : Blockstore.t;
  nv : int;  (** the trusted monotonic counter *)
  genuine : Sealspec.genuine list;  (** newest first *)
  states : (int * string) list;  (** epoch -> sealed state bytes *)
  mirror : string;  (** the driver's copy of the vault's live state *)
}

type probe_stats = {
  mutable probes : int;
  mutable detected : int;  (** correctly refused (tampered or stale) *)
  mutable accepted : int;  (** correctly accepted *)
}

(* Pad or clip whatever the disk returned to the vault's fixed blob
   size: the enclave always reads exactly [blob_words] words. *)
let fit blob =
  let n = Vault.blob_bytes in
  if String.length blob >= n then String.sub blob 0 n
  else blob ^ String.make (n - String.length blob) '\x00'

let enter ws ~cmd ~a1 =
  Os.enter ws.os ~thread:ws.thread
    ~args:(Word.of_int cmd, Word.of_int a1, Word.zero)

(** Present the disk's current contents to the vault and judge the
    verdict against the spec. *)
let probe st ws i sop : (wstate, violation) result =
  let fail reason = Error { index = i; sop; reason } in
  let present = fit (Blockstore.read_blob ws.store ~at:blob_at) in
  let ws = { ws with os = Os.write_bytes ws.os vault_in present } in
  let os, err, ret = enter ws ~cmd:Vault.cmd_unseal ~a1:ws.nv in
  if not (Errors.is_success err) then
    fail (Format.asprintf "unseal Enter refused: %a" Errors.pp err)
  else begin
    let verdict = Word.to_int ret in
    let ws = { ws with os } in
    let expectation =
      Sealspec.classify ~genuine:ws.genuine ~nv:ws.nv ~blob:present
    in
    st.probes <- st.probes + 1;
    (* On a claimed accept of the expected blob, also audit the
       restored state through the vault's published digest. *)
    let ws, digest =
      match (expectation, verdict) with
      | Sealspec.Must_accept _, v when v = Vault.verdict_accept ->
          let os, err, _ = enter ws ~cmd:Vault.cmd_digest ~a1:0 in
          if not (Errors.is_success err) then (ws, None)
          else ({ ws with os }, Some (Os.read_bytes os vault_out 32))
      | _ -> (ws, None)
    in
    match Sealspec.judge expectation ~verdict ~digest with
    | Some reason ->
        fail
          (Printf.sprintf "sealed-storage theorem: %s (spec: %s, vault: %s)"
             reason
             (Sealspec.pp_expectation expectation)
             (Sealspec.verdict_name verdict))
    | None -> (
        st.detected <-
          (st.detected
          + if verdict <> Vault.verdict_accept then 1 else 0);
        st.accepted <-
          (st.accepted + if verdict = Vault.verdict_accept then 1 else 0);
        match expectation with
        | Sealspec.Must_accept g ->
            (* The vault reloaded the sealed state; track it. *)
            let mirror =
              match List.assoc_opt g.Sealspec.g_epoch ws.states with
              | Some s -> s
              | None -> ws.mirror
            in
            Ok { ws with mirror }
        | _ -> Ok ws)
  end

(* Which blocks the sealed blob occupies (for consistent whole-blob
   rollback). *)
let blob_blocks =
  let packed = 4 + Vault.blob_bytes in
  (packed + store_block_size - 1) / store_block_size

let step ctx st ws i sop : (wstate, violation) result =
  let fail reason = Error { index = i; sop; reason } in
  let after ws = if is_fault sop then probe st ws i sop else Ok ws in
  match sop with
  | V_update { index; value } ->
      let os, err, ret =
        Os.enter ws.os ~thread:ws.thread
          ~args:
            (Word.of_int Vault.cmd_update, Word.of_int index, Word.of_int value)
      in
      if not (Errors.is_success err) then
        fail (Format.asprintf "update Enter refused: %a" Errors.pp err)
      else if not (Word.equal ret Word.zero) then
        fail (Printf.sprintf "update refused (exit %d)" (Word.to_int ret))
      else
        let mirror =
          String.mapi
            (fun j c ->
              if j / 4 = index then
                (Word.to_bytes_be (Word.of_int value)).[j mod 4]
              else c)
            ws.mirror
        in
        Ok { ws with os; mirror }
  | V_seal ->
      let os, err, ret = enter ws ~cmd:Vault.cmd_seal ~a1:ws.nv in
      if not (Errors.is_success err) then
        fail (Format.asprintf "seal Enter refused: %a" Errors.pp err)
      else if not (Word.equal ret Word.zero) then
        fail (Printf.sprintf "seal refused (exit %d)" (Word.to_int ret))
      else begin
        let blob = Os.read_bytes os vault_out Vault.blob_bytes in
        ignore (Blockstore.write_blob ws.store ~at:blob_at blob);
        let epoch = ws.nv + 1 in
        let g =
          {
            Sealspec.g_epoch = epoch;
            g_blob = blob;
            g_digest = Sha256.digest ws.mirror;
          }
        in
        Ok
          {
            ws with
            os;
            nv = epoch;
            genuine = g :: ws.genuine;
            states = (epoch, ws.mirror) :: ws.states;
          }
      end
  | V_probe -> probe st ws i sop
  | A_tamper { block; byte; bit } ->
      Blockstore.tamper ws.store ~block ~byte ~bit;
      after ws
  | A_rollback { block; depth } ->
      Blockstore.rollback ws.store ~block ~depth;
      after ws
  | A_rollback_blob { depth } ->
      for b = blob_at to blob_at + blob_blocks - 1 do
        Blockstore.rollback ws.store ~block:b ~depth
      done;
      after ws
  | A_swap { a; b } ->
      Blockstore.swap ws.store a b;
      after ws
  | A_truncate { keep } ->
      Blockstore.truncate ws.store ~keep;
      after ws
  | A_wipe ->
      Blockstore.wipe ws.store;
      after ws
  | V_crash_os { seed } ->
      after { ws with os = Os.crash_reboot ~seed ws.os }
  | V_reboot ->
      (* Volatile state dies; the disk and the NV counter are the
         only survivors. Same boot seed: same boot secret, so the
         same measurement derives the same seal key. *)
      let os, thread = boot_vault ~seed:ctx.boot_seed ~npages:ctx.npages ~bug:ctx.bug in
      after { ws with os; thread; mirror = zero_state }

type stats = {
  sops_run : int;
  probes : int;
  detected : int;
  accepted : int;
}

let run_sops ?bug ?(npages = 48) ~seed sops : (stats, violation) result =
  let ctx = { boot_seed = seed; npages; bug } in
  let os, thread = boot_vault ~seed ~npages ~bug in
  let ws0 =
    {
      os;
      thread;
      store = Blockstore.create ~nblocks:store_nblocks ~block_size:store_block_size ();
      nv = 0;
      genuine = [];
      states = [];
      mirror = zero_state;
    }
  in
  let st = { probes = 0; detected = 0; accepted = 0 } in
  let rec go ws i = function
    | [] ->
        Ok
          {
            sops_run = i;
            probes = st.probes;
            detected = st.detected;
            accepted = st.accepted;
          }
    | sop :: rest -> (
        match step ctx st ws i sop with
        | Error v -> Error v
        | Ok ws' -> go ws' (i + 1) rest)
  in
  go ws0 0 sops

(* -- Campaign generation -------------------------------------------------- *)

let lcg s = ((s * 1103515245) + 12345) land 0x3fffffff

let gen_sops ~classes ~seed ~n =
  let has c = List.mem c classes in
  let g = ref ((seed lxor 0x5ea1ed) land 0x3fffffff) in
  let rnd n =
    g := lcg !g;
    if n <= 0 then 0 else !g mod n
  in
  let faults_for () =
    let fs = ref [] in
    let add f = fs := f :: !fs in
    if has S_tamper then begin
      if rnd 3 = 0 then
        add
          (A_tamper
             { block = rnd store_nblocks; byte = rnd store_block_size; bit = rnd 8 });
      if rnd 6 = 0 then add (A_swap { a = rnd store_nblocks; b = rnd store_nblocks });
      if rnd 8 = 0 then add (A_truncate { keep = rnd (blob_blocks + 1) });
      if rnd 14 = 0 then add A_wipe
    end;
    if has S_replay then begin
      if rnd 3 = 0 then add (A_rollback_blob { depth = 1 + rnd 3 });
      if rnd 5 = 0 then
        add (A_rollback { block = rnd store_nblocks; depth = 1 + rnd 3 })
    end;
    if has S_crash then begin
      if rnd 4 = 0 then add (V_crash_os { seed = rnd 1_000_000 });
      if rnd 6 = 0 then add V_reboot;
      if rnd 10 = 0 then begin
        (* A crash storm: reboots and OS crashes back to back, the
           recovery path exercised repeatedly in one trial. *)
        add (V_crash_os { seed = rnd 1_000_000 });
        add V_reboot;
        add (V_crash_os { seed = rnd 1_000_000 })
      end
    end;
    List.rev !fs
  in
  List.concat
    (List.init n (fun _ ->
         let base =
           match rnd 6 with
           | 0 | 1 ->
               [ V_update { index = rnd Vault.state_words; value = rnd 0xffffff } ]
           | 2 | 3 -> [ V_seal ]
           | 4 -> [ V_update { index = rnd Vault.state_words; value = rnd 0xffffff }; V_seal ]
           | _ -> [ V_probe ]
         in
         base @ faults_for ()))

(* -- Trials --------------------------------------------------------------- *)

type trial = {
  t_sops_run : int;
  t_probes : int;
  t_detected : int;
  t_accepted : int;
  t_classes : (string * int) list;
  t_violation : violation option;
}

let class_of_sop = function
  | A_tamper _ | A_swap _ | A_truncate _ | A_wipe -> Some S_tamper
  | A_rollback _ | A_rollback_blob _ -> Some S_replay
  | V_crash_os _ | V_reboot -> Some S_crash
  | V_update _ | V_seal | V_probe -> None

let class_counts sops =
  let counts = Array.make (List.length all_classes) 0 in
  let bump c =
    List.iteri (fun k c' -> if c' = c then counts.(k) <- counts.(k) + 1) all_classes
  in
  List.iter (fun s -> Option.iter bump (class_of_sop s)) sops;
  List.mapi (fun i c -> (class_name c, counts.(i))) all_classes

let no_classes = List.map (fun c -> (class_name c, 0)) all_classes

let run_trial ?(npages = 48) ?(ops_per_trial = 24) ?bug ~classes ~seed () =
  let sops = gen_sops ~classes ~seed ~n:ops_per_trial in
  match run_sops ?bug ~npages ~seed sops with
  | Ok st ->
      {
        t_sops_run = st.sops_run;
        t_probes = st.probes;
        t_detected = st.detected;
        t_accepted = st.accepted;
        t_classes = class_counts sops;
        t_violation = None;
      }
  | Error v ->
      (* A violating trial contributes only its pre-violation sop
         count, as [Drive] does. *)
      {
        t_sops_run = v.index;
        t_probes = 0;
        t_detected = 0;
        t_accepted = 0;
        t_classes = no_classes;
        t_violation = Some v;
      }

let shrink_trial ?(npages = 48) ?(ops_per_trial = 24) ?bug ~classes ~seed () =
  let sops = gen_sops ~classes ~seed ~n:ops_per_trial in
  match run_sops ?bug ~npages ~seed sops with
  | Ok _ -> None
  | Error _ ->
      Some
        (Komodo_spec.Diff.shrink_seq
           ~run:(run_sops ?bug ~npages ~seed)
           ~index:(fun (v : violation) -> v.index)
           sops)

type outcome = {
  trials_run : int;
  total_sops : int;
  total_probes : int;
  total_detected : int;
  total_accepted : int;
  violation : (int * sop list * violation) option;
}

(* -- Replay traces -------------------------------------------------------- *)

type header = { h_seed : int; h_npages : int; h_bug : Vault.bug option }

let sop_to_json = function
  | V_update { index; value } ->
      Json.Obj
        [ ("update", Json.Obj [ ("index", Json.Int index); ("value", Json.Int value) ]) ]
  | V_seal -> Json.Str "seal"
  | V_probe -> Json.Str "probe"
  | A_tamper { block; byte; bit } ->
      Json.Obj
        [
          ( "tamper",
            Json.Obj
              [ ("block", Json.Int block); ("byte", Json.Int byte); ("bit", Json.Int bit) ] );
        ]
  | A_rollback { block; depth } ->
      Json.Obj
        [ ("rollback", Json.Obj [ ("block", Json.Int block); ("depth", Json.Int depth) ]) ]
  | A_rollback_blob { depth } ->
      Json.Obj [ ("rollback_blob", Json.Obj [ ("depth", Json.Int depth) ]) ]
  | A_swap { a; b } ->
      Json.Obj [ ("swap", Json.Obj [ ("a", Json.Int a); ("b", Json.Int b) ]) ]
  | A_truncate { keep } ->
      Json.Obj [ ("truncate", Json.Obj [ ("keep", Json.Int keep) ]) ]
  | A_wipe -> Json.Str "wipe"
  | V_crash_os { seed } -> Json.Obj [ ("crash", Json.Int seed) ]
  | V_reboot -> Json.Str "reboot"

let trace_lines ~seed ~npages ~bug sops =
  let header =
    Json.Obj
      [
        ("komodo_vault_trace", Json.Int 1);
        ("seed", Json.Int seed);
        ("npages", Json.Int npages);
        ( "bug",
          match bug with None -> Json.Null | Some b -> Json.Str (Vault.bug_name b) );
      ]
  in
  Json.to_string header :: List.map (fun s -> Json.to_string (sop_to_json s)) sops

let ( let* ) = Result.bind
let req what = function Some v -> Ok v | None -> Error ("missing/ill-typed " ^ what)
let int_field name j = req name (Option.bind (Json.member name j) Json.to_int_opt)

let sop_of_json j =
  match j with
  | Json.Str "seal" -> Ok V_seal
  | Json.Str "probe" -> Ok V_probe
  | Json.Str "wipe" -> Ok A_wipe
  | Json.Str "reboot" -> Ok V_reboot
  | Json.Obj _ -> (
      let member name = Json.member name j in
      match
        ( member "update", member "tamper", member "rollback",
          member "rollback_blob", member "swap", member "truncate",
          member "crash" )
      with
      | Some u, _, _, _, _, _, _ ->
          let* index = int_field "index" u in
          let* value = int_field "value" u in
          Ok (V_update { index; value })
      | _, Some t, _, _, _, _, _ ->
          let* block = int_field "block" t in
          let* byte = int_field "byte" t in
          let* bit = int_field "bit" t in
          Ok (A_tamper { block; byte; bit })
      | _, _, Some r, _, _, _, _ ->
          let* block = int_field "block" r in
          let* depth = int_field "depth" r in
          Ok (A_rollback { block; depth })
      | _, _, _, Some r, _, _, _ ->
          let* depth = int_field "depth" r in
          Ok (A_rollback_blob { depth })
      | _, _, _, _, Some s, _, _ ->
          let* a = int_field "a" s in
          let* b = int_field "b" s in
          Ok (A_swap { a; b })
      | _, _, _, _, _, Some t, _ ->
          let* keep = int_field "keep" t in
          Ok (A_truncate { keep })
      | _, _, _, _, _, _, Some c ->
          let* seed = req "crash seed" (Json.to_int_opt c) in
          Ok (V_crash_os { seed })
      | _ -> Error "unknown vault sop")
  | _ -> Error "bad vault sop"

let trace_parse lines =
  match List.filter (fun l -> String.trim l <> "") lines with
  | [] -> Error "empty trace"
  | hline :: rest ->
      let* h = Result.map_error (fun e -> "header: " ^ e) (Json.parse hline) in
      let* () =
        match Json.member "komodo_vault_trace" h with
        | Some (Json.Int 1) -> Ok ()
        | _ -> Error "not a komodo vault trace (bad or missing magic)"
      in
      let* h_seed = int_field "seed" h in
      let* h_npages = int_field "npages" h in
      let* h_bug =
        match Json.member "bug" h with
        | None | Some Json.Null -> Ok None
        | Some (Json.Str s) -> (
            match Vault.bug_of_string s with
            | Some b -> Ok (Some b)
            | None -> Error ("unknown bug " ^ s))
        | Some _ -> Error "bad bug field"
      in
      let* sops =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* j = Result.map_error (fun e -> "sop: " ^ e) (Json.parse line) in
            let* s = sop_of_json j in
            Ok (s :: acc))
          (Ok []) rest
      in
      Ok ({ h_seed; h_npages; h_bug }, List.rev sops)

let replay h sops = run_sops ?bug:h.h_bug ~npages:h.h_npages ~seed:h.h_seed sops
