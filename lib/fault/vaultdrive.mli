(** Storage fault campaigns over the sealed-storage vault.

    Each trial boots the platform, loads the vault enclave, and runs
    a seeded sequence of vault operations (update / seal / probe)
    interleaved with storage faults drawn from three classes:

    - {b tamper}: bit flips, block swaps (reordering), truncation,
      and full wipes of the OS's block device;
    - {b replay}: rollback of the whole sealed blob to a stale
      generation, and partial (torn) rollbacks of single blocks;
    - {b crash}: OS crash-reboots (disk and enclave survive) and full
      platform reboots (only the disk and the trusted NV counter
      survive), including back-to-back crash storms.

    After {e every} injected fault the driver presents the disk's
    contents to the vault and judges the verdict against
    {!Komodo_spec.Sealspec} — the theorem that sealed data unseals
    only as the latest genuine blob under the live NV counter, stale
    replays are reported stale, and everything else is reported
    tampered. Any mismatch is a violation; violations shrink greedily
    and serialise to JSONL replay traces, exactly like {!Drive}. *)

module Vault = Komodo_user.Vault

type storage_class = S_tamper | S_replay | S_crash

val class_name : storage_class -> string
val all_classes : storage_class list
val class_of_string : string -> storage_class option

val vault_in : Komodo_machine.Word.t
(** Physical base of the OS->vault input window. *)

val vault_out : Komodo_machine.Word.t
(** Physical base of the vault->OS output window. *)

val boot_vault :
  seed:int -> npages:int -> bug:Vault.bug option -> Komodo_os.Os.t * int
(** Boot the platform, load the vault enclave, run its init command;
    returns the OS and the vault's thread page. Raises [Failure] on
    setup errors (harness bugs, not theorem violations). Exposed for
    the bench harness and tests. *)

type sop =
  | V_update of { index : int; value : int }
  | V_seal
  | V_probe
  | A_tamper of { block : int; byte : int; bit : int }
  | A_rollback of { block : int; depth : int }
  | A_rollback_blob of { depth : int }
  | A_swap of { a : int; b : int }
  | A_truncate of { keep : int }
  | A_wipe
  | V_crash_os of { seed : int }
  | V_reboot

val pp_sop : sop -> string

type violation = { index : int; sop : sop; reason : string }

val pp_violation : violation -> string

type stats = {
  sops_run : int;
  probes : int;  (** unseal checks performed *)
  detected : int;  (** correctly refused (tampered or stale) *)
  accepted : int;  (** correctly accepted *)
}

val run_sops :
  ?bug:Vault.bug -> ?npages:int -> seed:int -> sop list -> (stats, violation) result
(** Deterministic: rebuilds the whole world from [seed] each call. *)

val gen_sops : classes:storage_class list -> seed:int -> n:int -> sop list

type trial = {
  t_sops_run : int;
  t_probes : int;
  t_detected : int;
  t_accepted : int;
  t_classes : (string * int) list;
  t_violation : violation option;
}

val class_counts : sop list -> (string * int) list

val run_trial :
  ?npages:int ->
  ?ops_per_trial:int ->
  ?bug:Vault.bug ->
  classes:storage_class list ->
  seed:int ->
  unit ->
  trial

val shrink_trial :
  ?npages:int ->
  ?ops_per_trial:int ->
  ?bug:Vault.bug ->
  classes:storage_class list ->
  seed:int ->
  unit ->
  (sop list * violation) option
(** [None] if the trial does not violate when re-run from its seed. *)

type outcome = {
  trials_run : int;
  total_sops : int;
  total_probes : int;
  total_detected : int;
  total_accepted : int;
  violation : (int * sop list * violation) option;
}

(** {2 Replay traces} (JSONL, like {!Drive}'s) *)

type header = { h_seed : int; h_npages : int; h_bug : Vault.bug option }

val trace_lines :
  seed:int -> npages:int -> bug:Vault.bug option -> sop list -> string list

val trace_parse : string list -> (header * sop list, string) result
val replay : header -> sop list -> (stats, violation) result
