(** Fault-injection campaigns over the differential lockstep checker.

    Each trial builds a {!Komodo_spec.Diff} world (booted platform,
    probe + workload + mid-construction enclaves), installs the
    {!Inject} hooks into the monitor and the user-mode executor, and
    then steps an adversarial op sequence decorated with faults:
    spurious IRQ/FIQ at commit points and instruction boundaries,
    concurrent-core stores to insecure memory mid-SMC, entropy
    exhaustion and reseeding, SMC storms of malformed calls, and
    crash/restarts of the untrusted OS with enclaves live.

    After every step the driver asserts, on top of the lockstep spec
    comparison {!Komodo_spec.Diff.apply_op} already performs:

    - the PageDB invariants ({!Komodo_core.Pagedb.check}) still hold;
    - transactional atomicity: a call that returned an error left the
      PageDB *and* the concrete contents of every secure page exactly
      as they were (Enter/Resume excepted — they commit before running
      opaque enclave code, whose suspension is a legal effect).

    A violating campaign is shrunk with the checker's generic
    1-minimal shrinker. Everything is seed-deterministic, and a shrunk
    campaign serialises to a JSONL trace that replays exactly. *)

module Monitor = Komodo_core.Monitor
module Diff = Komodo_spec.Diff
module Span = Komodo_telemetry.Span

(** The five fault classes of the campaign generator. *)
type fault_class =
  | F_irq  (** spurious IRQ/FIQ at commit points and instruction boundaries *)
  | F_mem  (** concurrent-core/DMA stores to insecure memory mid-call *)
  | F_rng  (** entropy-source exhaustion and glitch reseeds *)
  | F_storm  (** bursts of malformed SMCs on the monitor interface *)
  | F_crash  (** crash/restart of the untrusted OS with enclaves live *)

val class_name : fault_class -> string
val class_of_string : string -> fault_class option
val all_classes : fault_class list

(** One campaign step: a checked lockstep op with faults armed, or an
    OS crash/restart between calls. *)
type fop =
  | Op of { op : Diff.op; inj : Inject.plan_item list }
  | Crash of { seed : int }

val pp_fop : fop -> string

type violation = { index : int; fop : fop; reason : string }

val pp_violation : violation -> string

type stats = {
  fops_run : int;
  injections : int;  (** faults actually fired *)
  worst_blackout : int;
      (** widest window (cycles) between a commit-point interrupt
          assertion and the OS regaining control *)
}

val run_fops :
  ?bug:Monitor.bug -> Diff.world -> fop list -> (stats, violation) result
(** Run one campaign from the world's initial state. [bug] re-enables a
    deliberate partial-mutation bug in the monitor (checker
    self-test). *)

val gen_fops :
  Diff.world -> faults:fault_class list -> seed:int -> n:int -> fop list
(** Decorate an adversarial op sequence with faults drawn from the
    enabled classes; deterministic in [seed]. *)

(** {2 Campaign trials}

    One fault trial is a pure function of its seed; the campaign loop
    lives in [Komodo_campaign.Campaign] (seed-split trial derivation,
    domain pool, deterministic reduction) — this module supplies the
    per-trial unit. *)

type trial = {
  t_fops_run : int;
      (** fops stepped; on violation, only those before it *)
  t_injections : int;  (** 0 on a violating trial (report convention) *)
  t_blackout : int;  (** 0 on a violating trial *)
  t_classes : (string * int) list;
      (** armed plan items per fault class (crash fops under ["crash"];
          storms are malformed ops, not injections, so ["storm"] stays
          0); all-zero on a violating trial *)
  t_spans : Span.node list;
      (** per-trial profile spans ([[]] unless profiling) *)
  t_violation : violation option;
}

val run_trial :
  ?npages:int ->
  ?ops_per_trial:int ->
  ?profile:bool ->
  ?clock:Span.clock ->
  ?bug:Monitor.bug ->
  faults:fault_class list ->
  seed:int ->
  unit ->
  trial
(** Run one fault-decorated trial, deterministically from [seed].
    [profile] records a span tree into [t_spans]; without [clock] the
    tree is a pure function of the seed. *)

val shrink_trial :
  ?npages:int ->
  ?ops_per_trial:int ->
  ?bug:Monitor.bug ->
  faults:fault_class list ->
  seed:int ->
  unit ->
  (fop list * violation) option
(** Regenerate trial [seed] and shrink its violation to a 1-minimal
    campaign; [None] if the trial does not actually violate. *)

type outcome = {
  trials_run : int;
  total_fops : int;
  total_injections : int;
  blackout : int;  (** worst over all trials, cycles *)
  violation : (int * fop list * violation) option;
      (** trial seed, shrunk campaign, violation *)
  spans : Span.node list;
      (** per-trial span trees concatenated in trial-index order *)
}
(** A whole-campaign report, assembled by the campaign engine's
    reducer with sequential semantics (lowest failing index wins). *)

(* -- replay traces (JSONL) --------------------------------------------- *)

type header = { h_seed : int; h_npages : int; h_bug : Monitor.bug option }

val trace_lines :
  seed:int -> npages:int -> bug:Monitor.bug option -> fop list -> string list
(** Serialise a campaign: a header line then one JSON object per fop. *)

val trace_parse : string list -> (header * fop list, string) result

val replay : header -> fop list -> (stats, violation) result
(** Rebuild the world from the header and re-run the campaign. *)
