(** Fault-injection campaigns over the differential lockstep checker
    (see the interface for the big picture).

    The driver owns the two invariants the lockstep comparison alone
    does not check:

    - {b PageDB well-formedness} after every step, faulted or not —
      the paper proves every SMC and SVC preserves it, so a fault that
      breaks it is a monitor bug, full stop;
    - {b transactional atomicity}: an error return must leave the
      abstract PageDB *and* the concrete bytes of every secure page
      untouched. The concrete half matters: {!Pagedb.check} does not
      require free pages to be zeroed, so a handler that copies data
      in and then fails (the re-enabled [Bug_partial_map_secure]) is
      invisible abstractly and caught only here. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Memory = Komodo_machine.Memory
module Regs = Komodo_machine.Regs
module Ptable = Komodo_machine.Ptable
module Platform = Komodo_tz.Platform
module Monitor = Komodo_core.Monitor
module Pagedb = Komodo_core.Pagedb
module Os = Komodo_os.Os
module Aspec = Komodo_spec.Aspec
module Diff = Komodo_spec.Diff
module Json = Komodo_telemetry.Json
module Span = Komodo_telemetry.Span

type fault_class = F_irq | F_mem | F_rng | F_storm | F_crash

let class_name = function
  | F_irq -> "irq"
  | F_mem -> "mem"
  | F_rng -> "rng"
  | F_storm -> "storm"
  | F_crash -> "crash"

let all_classes = [ F_irq; F_mem; F_rng; F_storm; F_crash ]

let class_of_string s =
  List.find_opt (fun c -> String.equal (class_name c) s) all_classes

type fop = Op of { op : Diff.op; inj : Inject.plan_item list } | Crash of { seed : int }

let pp_fop = function
  | Crash { seed } -> Printf.sprintf "crash_reboot(seed=%d)" seed
  | Op { op; inj = [] } -> Diff.pp_op op
  | Op { op; inj } ->
      Printf.sprintf "%s  +{%s}" (Diff.pp_op op)
        (String.concat "; " (List.map Inject.pp_item inj))

type violation = { index : int; fop : fop; reason : string }

let pp_violation v =
  Printf.sprintf "fop %d: %s\n  %s" v.index (pp_fop v.fop) v.reason

type stats = { fops_run : int; injections : int; worst_blackout : int }

(* -- one campaign ------------------------------------------------------- *)

let secure_pages_equal (plat : Platform.t) before after =
  let rec go n =
    if n >= plat.Platform.npages then None
    else if
      Memory.equal_range before after (Platform.page_base plat n)
        Ptable.words_per_page
    then go (n + 1)
    else Some n
  in
  go 0

let is_exec_call call = call = Aspec.smc_enter || call = Aspec.smc_resume

let has_commit_action pred items =
  List.exists
    (fun i ->
      (match i.Inject.point with
      | Inject.Commit -> true
      | Inject.Insn _ | Inject.Lockstep _ -> false)
      && pred i.Inject.action)
    items

let has_insn_point items =
  List.exists
    (fun i ->
      match i.Inject.point with
      | Inject.Insn _ -> true
      | Inject.Commit | Inject.Lockstep _ -> false)
    items

let step inj ~worst rs i fop : (Diff.rstate, violation) result =
  let fail reason = Error { index = i; fop; reason } in
  match fop with
  | Crash { seed } -> Ok { rs with Diff.os = Os.crash_reboot ~seed rs.Diff.os }
  | Op { op; inj = items } -> (
      Inject.arm inj items;
      (* A concurrent store at the commit point makes MapSecure's staged
         contents unknowable in advance; instruction-level injection
         makes a probe run unpredictable; an armed exhaustion tells the
         entropy oracle the source will be dry by the time GetRandom
         looks. *)
      let opaque_contents =
        has_commit_action (function Inject.Mem_write _ -> true | _ -> false) items
      in
      let opaque_probe =
        has_insn_point items
        || (match op with
           | Diff.Smc { call; _ } when is_exec_call call ->
               (* A commit-point interrupt assertion preempts the probe
                  at its first instruction. *)
               has_commit_action
                 (function Inject.Irq | Inject.Fiq -> true | _ -> false)
                 items
           | _ -> false)
      in
      let rng_exhausted =
        if has_commit_action (function Inject.Rng_exhaust -> true | _ -> false) items
        then Some true
        else None
      in
      let before = rs.Diff.os.Os.mon in
      let r =
        Diff.apply_op ~opaque_contents ~opaque_probe ?rng_exhausted rs i op
      in
      Inject.disarm inj;
      match r with
      | Error d -> fail ("lockstep divergence: " ^ d.Diff.reason)
      | Ok rs' -> (
          let mon' = rs'.Diff.os.Os.mon in
          (match Inject.take_blackout inj with
          | Some c0 -> worst := max !worst (Os.cycles rs'.Diff.os - c0)
          | None -> ());
          match
            Pagedb.check mon'.Monitor.plat mon'.Monitor.mach.State.mem
              mon'.Monitor.pagedb
          with
          | _ :: _ as vs ->
              fail
                (Printf.sprintf "PageDB invariant broken:\n  %s"
                   (String.concat "\n  "
                      (List.map
                         (fun v -> Format.asprintf "%a" Pagedb.pp_violation v)
                         vs)))
          | [] -> (
              (* Transactional atomicity on error returns. Enter/Resume
                 are exempt: they commit before running opaque enclave
                 code, and an Interrupted/Fault return legitimately
                 carries the suspension. *)
              match op with
              | Diff.Write_ins _ -> Ok rs'
              | Diff.Smc { call; _ } when is_exec_call call -> Ok rs'
              | Diff.Smc _ ->
                  let err =
                    Word.to_int (State.read_reg mon'.Monitor.mach (Regs.R 0))
                  in
                  if err = Aspec.e_success then Ok rs'
                  else if not (Pagedb.equal before.Monitor.pagedb mon'.Monitor.pagedb)
                  then
                    fail
                      (Printf.sprintf
                         "atomicity: %s returned %s but mutated the PageDB"
                         (pp_fop fop) (Aspec.err_name err))
                  else
                    (match
                       secure_pages_equal mon'.Monitor.plat
                         before.Monitor.mach.State.mem mon'.Monitor.mach.State.mem
                     with
                    | None -> Ok rs'
                    | Some pg ->
                        fail
                          (Printf.sprintf
                             "atomicity: %s returned %s but mutated secure page %d"
                             (pp_fop fop) (Aspec.err_name err) pg)))))

let run_fops ?bug w fops =
  let rs0 = Diff.initial_rstate w in
  let plat = rs0.Diff.os.Os.mon.Monitor.plat in
  let inj = Inject.create ~plat () in
  let mon0 =
    { rs0.Diff.os.Os.mon with Monitor.inject = Some (Inject.hook inj); Monitor.bug = bug }
  in
  let exec = Komodo_user.Verifier.executor ~inject:(Inject.exec_inject inj) () in
  let rs0 = { rs0 with Diff.os = { rs0.Diff.os with Os.mon = mon0; Os.exec = exec } } in
  let worst = ref 0 in
  let rec go rs i = function
    | [] ->
        Ok { fops_run = i; injections = Inject.fired_count inj; worst_blackout = !worst }
    | fop :: rest -> (
        match step inj ~worst rs i fop with
        | Error v -> Error v
        | Ok rs' -> go rs' (i + 1) rest)
  in
  go rs0 0 fops

(* -- campaign generation ------------------------------------------------ *)

let lcg s = ((s * 1103515245) + 12345) land 0x3fffffff

let gen_fops w ~faults ~seed ~n =
  ignore w;
  let has c = List.mem c faults in
  let g = ref ((seed lxor 0xfa17) land 0x3fffffff) in
  let rnd n =
    g := lcg !g;
    if n <= 0 then 0 else !g mod n
  in
  let pick l = List.nth l (rnd (List.length l)) in
  let staging = Word.to_int Os.staging_base in
  let shared = Word.to_int Os.shared_base in
  let document = Word.to_int Os.document_base in
  let ins_addr () =
    (* OS-owned insecure windows the monitor actually reads from, plus
       the shared page enclaves map: the spots where a concurrent
       writer hurts most. *)
    pick
      [
        staging + (4 * rnd 4096);
        shared + (4 * rnd 1024);
        document + (4 * rnd 1024);
      ]
  in
  let irq_or_fiq () = if rnd 2 = 0 then Inject.Irq else Inject.Fiq in
  let inj_for (op : Diff.op) =
    let items = ref [] in
    let add point action = items := { Inject.point; action } :: !items in
    (match op with
    | Diff.Smc { call; _ } ->
        let exec = is_exec_call call in
        if has F_irq && rnd 4 = 0 then add Inject.Commit (irq_or_fiq ());
        if has F_irq && exec && rnd 3 = 0 then
          add (Inject.Insn (rnd 40)) (irq_or_fiq ());
        if has F_mem && rnd 4 = 0 then
          add Inject.Commit
            (Inject.Mem_write { addr = ins_addr (); value = rnd 0x40000000 });
        if has F_mem && exec && rnd 4 = 0 then
          add (Inject.Insn (rnd 40))
            (Inject.Mem_write { addr = ins_addr (); value = rnd 0x40000000 });
        if has F_rng && rnd 6 = 0 then
          add Inject.Commit
            (if rnd 3 = 0 then Inject.Rng_reseed (rnd 1_000_000)
             else Inject.Rng_exhaust)
    | Diff.Write_ins _ -> ());
    List.rev !items
  in
  let storm () =
    (* A burst of malformed calls: bad call numbers, wild page numbers,
       misaligned and out-of-range addresses. All still checked in
       lockstep — the spec predicts every rejection. *)
    List.init
      (2 + rnd 4)
      (fun _ ->
        let call =
          pick
            [ 0; 13; 42; 99; Aspec.smc_map_secure; Aspec.smc_init_addrspace;
              Aspec.smc_remove; Aspec.smc_enter ]
        in
        let garbage () =
          pick [ 0; 1; 0x3fffffff; 0x1001; staging; rnd 0x40000000; 255 ]
        in
        Op
          {
            op =
              Diff.Smc
                {
                  call;
                  args = [ garbage (); garbage (); garbage (); garbage () ];
                  budget = None;
                };
            inj = [];
          })
  in
  let dirty_map_secure () =
    (* Junk in an insecure window, then a MapSecure whose mapping
       argument fails *after* the content checks: the sequence that
       exposes a handler copying contents in before it is sure the call
       succeeds (the [Bug_partial_map_secure] shape). *)
    [
      Op
        {
          op = Diff.Write_ins { addr = staging + (4 * rnd 64); value = 1 + rnd 0xffffff };
          inj = [];
        };
      Op
        {
          op =
            Diff.Smc
              {
                call = Aspec.smc_map_secure;
                args =
                  [
                    17;
                    20 + rnd 16;
                    pick [ 0x5; 0x1003; 0x400005; 0x2000 ];
                    pick [ staging; shared; document ];
                  ];
                budget = None;
              };
          inj = [];
        };
    ]
  in
  let base = Diff.gen_ops w ~seed ~n in
  List.concat_map
    (fun op ->
      let pre = if has F_storm && rnd 10 = 0 then storm () else [] in
      let pre = if has F_storm && rnd 12 = 0 then pre @ dirty_map_secure () else pre in
      let crash =
        if has F_crash && rnd 16 = 0 then [ Crash { seed = rnd 1_000_000 } ]
        else []
      in
      pre @ crash @ [ Op { op; inj = inj_for op } ])
    base

(* -- trials ------------------------------------------------------------- *)

type trial = {
  t_fops_run : int;
  t_injections : int;
  t_blackout : int;
  t_classes : (string * int) list;
  t_spans : Span.node list;
  t_violation : violation option;
}

(* Armed-plan attribution for the progress reporter: which fault class
   produced each plan item. Storms are malformed *ops*, not injections,
   so they never appear here. *)
let class_of_action = function
  | Inject.Irq | Inject.Fiq -> F_irq
  | Inject.Mem_write _ -> F_mem
  | Inject.Rng_reseed _ | Inject.Rng_exhaust -> F_rng

let class_counts fops =
  let counts = Array.make (List.length all_classes) 0 in
  let bump c =
    let i = ref 0 in
    List.iteri (fun k c' -> if c' = c then i := k) all_classes;
    counts.(!i) <- counts.(!i) + 1
  in
  List.iter
    (function
      | Crash _ -> bump F_crash
      | Op { inj; _ } ->
          List.iter (fun it -> bump (class_of_action it.Inject.action)) inj)
    fops;
  List.mapi (fun i c -> (class_name c, counts.(i))) all_classes

let no_classes = List.map (fun c -> (class_name c, 0)) all_classes

let run_trial ?(npages = 40) ?(ops_per_trial = 40) ?(profile = false) ?clock
    ?bug ~faults ~seed () =
  let recorder = if profile then Span.create ?clock () else Span.null in
  let spans = if profile then Some recorder else None in
  let w = Diff.make_world ~npages ?spans ~seed () in
  let campaign = gen_fops w ~faults ~seed ~n:ops_per_trial in
  let r = run_fops ?bug w campaign in
  let t_spans = Span.roots recorder in
  match r with
  | Ok st ->
      {
        t_fops_run = st.fops_run;
        t_injections = st.injections;
        t_blackout = st.worst_blackout;
        t_classes = class_counts campaign;
        t_spans;
        t_violation = None;
      }
  | Error v ->
      (* A violating trial contributes only its pre-violation fop count
         to the campaign totals — injections and blackout stay out of
         the report, exactly as the sequential driver always counted. *)
      {
        t_fops_run = v.index;
        t_injections = 0;
        t_blackout = 0;
        t_classes = no_classes;
        t_spans;
        t_violation = Some v;
      }

let shrink_trial ?(npages = 40) ?(ops_per_trial = 40) ?bug ~faults ~seed () =
  let w = Diff.make_world ~npages ~seed () in
  let campaign = gen_fops w ~faults ~seed ~n:ops_per_trial in
  match run_fops ?bug w campaign with
  | Ok _ -> None
  | Error _ ->
      Some
        (Diff.shrink_seq ~run:(run_fops ?bug w) ~index:(fun v -> v.index) campaign)

type outcome = {
  trials_run : int;
  total_fops : int;
  total_injections : int;
  blackout : int;
  violation : (int * fop list * violation) option;
  spans : Span.node list;
      (** per-trial span trees concatenated in trial-index order *)
}

(* -- replay traces ------------------------------------------------------ *)

type header = { h_seed : int; h_npages : int; h_bug : Monitor.bug option }

let point_to_json = function
  | Inject.Commit -> Json.Str "commit"
  | Inject.Insn n -> Json.Obj [ ("insn", Json.Int n) ]
  | Inject.Lockstep n -> Json.Obj [ ("lock", Json.Int n) ]

let action_to_json = function
  | Inject.Irq -> Json.Str "irq"
  | Inject.Fiq -> Json.Str "fiq"
  | Inject.Mem_write { addr; value } ->
      Json.Obj [ ("mem_write", Json.Obj [ ("addr", Json.Int addr); ("value", Json.Int value) ]) ]
  | Inject.Rng_reseed n -> Json.Obj [ ("rng_reseed", Json.Int n) ]
  | Inject.Rng_exhaust -> Json.Str "rng_exhaust"

let item_to_json (i : Inject.plan_item) =
  Json.Obj [ ("point", point_to_json i.Inject.point); ("action", action_to_json i.Inject.action) ]

let op_to_json = function
  | Diff.Smc { call; args; budget } ->
      Json.Obj
        [
          ("call", Json.Int call);
          ("args", Json.List (List.map (fun a -> Json.Int a) args));
          ("budget", match budget with None -> Json.Null | Some b -> Json.Int b);
        ]
  | Diff.Write_ins { addr; value } ->
      Json.Obj
        [ ("write_ins", Json.Obj [ ("addr", Json.Int addr); ("value", Json.Int value) ]) ]

let fop_to_json = function
  | Crash { seed } -> Json.Obj [ ("crash", Json.Int seed) ]
  | Op { op; inj } ->
      Json.Obj [ ("op", op_to_json op); ("inj", Json.List (List.map item_to_json inj)) ]

let trace_lines ~seed ~npages ~bug fops =
  let header =
    Json.Obj
      [
        ("komodo_fault_trace", Json.Int 1);
        ("seed", Json.Int seed);
        ("npages", Json.Int npages);
        ("bug", match bug with None -> Json.Null | Some b -> Json.Str (Monitor.bug_name b));
      ]
  in
  Json.to_string header :: List.map (fun f -> Json.to_string (fop_to_json f)) fops

let ( let* ) = Result.bind
let req what = function Some v -> Ok v | None -> Error ("missing/ill-typed " ^ what)

let int_field name j = req name (Option.bind (Json.member name j) Json.to_int_opt)

let point_of_json j =
  match j with
  | Json.Str "commit" -> Ok Inject.Commit
  | Json.Obj _ -> (
      match Option.bind (Json.member "insn" j) Json.to_int_opt with
      | Some n -> Ok (Inject.Insn n)
      | None ->
          let* n = int_field "lock" j in
          Ok (Inject.Lockstep n))
  | _ -> Error "bad injection point"

let action_of_json j =
  match j with
  | Json.Str "irq" -> Ok Inject.Irq
  | Json.Str "fiq" -> Ok Inject.Fiq
  | Json.Str "rng_exhaust" -> Ok Inject.Rng_exhaust
  | Json.Obj _ -> (
      match Json.member "mem_write" j with
      | Some mw ->
          let* addr = int_field "addr" mw in
          let* value = int_field "value" mw in
          Ok (Inject.Mem_write { addr; value })
      | None ->
          let* n = int_field "rng_reseed" j in
          Ok (Inject.Rng_reseed n))
  | _ -> Error "bad injection action"

let item_of_json j =
  let* pj = req "point" (Json.member "point" j) in
  let* point = point_of_json pj in
  let* aj = req "action" (Json.member "action" j) in
  let* action = action_of_json aj in
  Ok { Inject.point; action }

let op_of_json j =
  match Json.member "write_ins" j with
  | Some wi ->
      let* addr = int_field "addr" wi in
      let* value = int_field "value" wi in
      Ok (Diff.Write_ins { addr; value })
  | None ->
      let* call = int_field "call" j in
      let* args = req "args" (Option.bind (Json.member "args" j) Json.to_list_opt) in
      let* args =
        List.fold_left
          (fun acc a ->
            let* acc = acc in
            let* n = req "arg" (Json.to_int_opt a) in
            Ok (n :: acc))
          (Ok []) args
      in
      let budget =
        match Json.member "budget" j with
        | Some (Json.Int b) -> Some b
        | _ -> None
      in
      Ok (Diff.Smc { call; args = List.rev args; budget })

let fop_of_json j =
  match Json.member "crash" j with
  | Some s ->
      let* seed = req "crash seed" (Json.to_int_opt s) in
      Ok (Crash { seed })
  | None ->
      let* oj = req "op" (Json.member "op" j) in
      let* op = op_of_json oj in
      let* inj = req "inj" (Option.bind (Json.member "inj" j) Json.to_list_opt) in
      let* inj =
        List.fold_left
          (fun acc i ->
            let* acc = acc in
            let* it = item_of_json i in
            Ok (it :: acc))
          (Ok []) inj
      in
      Ok (Op { op; inj = List.rev inj })

let trace_parse lines =
  match List.filter (fun l -> String.trim l <> "") lines with
  | [] -> Error "empty trace"
  | hline :: rest ->
      let* h = Result.map_error (fun e -> "header: " ^ e) (Json.parse hline) in
      let* () =
        match Json.member "komodo_fault_trace" h with
        | Some (Json.Int 1) -> Ok ()
        | _ -> Error "not a komodo fault trace (bad or missing magic)"
      in
      let* h_seed = int_field "seed" h in
      let* h_npages = int_field "npages" h in
      let* h_bug =
        match Json.member "bug" h with
        | None | Some Json.Null -> Ok None
        | Some (Json.Str s) -> (
            match Monitor.bug_of_string s with
            | Some b -> Ok (Some b)
            | None -> Error ("unknown bug " ^ s))
        | Some _ -> Error "bad bug field"
      in
      let* fops =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* j = Result.map_error (fun e -> "fop: " ^ e) (Json.parse line) in
            let* f = fop_of_json j in
            Ok (f :: acc))
          (Ok []) rest
      in
      Ok ({ h_seed; h_npages; h_bug }, List.rev fops)

let replay h fops =
  let w = Diff.make_world ~npages:h.h_npages ~seed:h.h_seed () in
  run_fops ?bug:h.h_bug w fops
