(** The seeded, deterministic fault injector (see the interface for the
    threat-model framing). The injector is the *environment*: it may
    write OS-owned insecure memory, perturb the entropy source, and
    assert interrupt lines, but the modelled TZASC blocks anything
    aimed at secure memory — the injector cannot do what the hardware
    promises the environment cannot. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Exec = Komodo_machine.Exec
module Platform = Komodo_tz.Platform
module Rng = Komodo_tz.Rng
module Monitor = Komodo_core.Monitor
module Event = Komodo_telemetry.Event

type action =
  | Irq
  | Fiq
  | Mem_write of { addr : int; value : int }
  | Rng_reseed of int
  | Rng_exhaust

type point = Commit | Insn of int | Lockstep of int

type plan_item = { point : point; action : action }

let action_name = function
  | Irq -> "irq"
  | Fiq -> "fiq"
  | Mem_write { addr; value } -> Printf.sprintf "mem_write:0x%x<-0x%x" addr value
  | Rng_reseed n -> Printf.sprintf "rng_reseed:%d" n
  | Rng_exhaust -> "rng_exhaust"

let pp_item { point; action } =
  let at =
    match point with
    | Commit -> "commit"
    | Insn n -> Printf.sprintf "insn %d" n
    | Lockstep n -> Printf.sprintf "lock %d" n
  in
  Printf.sprintf "%s@%s" (action_name action) at

type t = {
  plat : Platform.t;
  mutable armed : plan_item list;
  mutable insns : int;  (** instruction boundaries seen in the current call *)
  mutable locksteps : int;  (** lock acquire/release boundaries seen in the current call *)
  mutable log : (string * string) list;  (** fired (point, action), newest first *)
  mutable blackout_start : int option;
      (** cycles at the first commit-point IRQ/FIQ since last {!take_blackout} *)
}

let create ~plat () =
  { plat; armed = []; insns = 0; locksteps = 0; log = []; blackout_start = None }

let arm t items =
  t.armed <- items;
  t.insns <- 0;
  t.locksteps <- 0

let disarm t = t.armed <- []
let fired t = List.rev t.log
let fired_count t = List.length t.log

let take_blackout t =
  let b = t.blackout_start in
  t.blackout_start <- None;
  b

let is_commit i = match i.point with Commit -> true | Insn _ | Lockstep _ -> false

(* -- monitor-boundary firing (commit and lock points) ------------------- *)

(** Apply one monitor-level action; shared by commit-point and
    lock-boundary firing, so the TZASC gate and interrupt pend
    semantics are identical at both. *)
let apply_monitor_action inj ~point (t : Monitor.t) action =
  let record t what =
    inj.log <- (point, what) :: inj.log;
    if Monitor.telemetry_on t then
      Monitor.emit t (Event.Fault_injected { point; action = what })
  in
  match action with
  | Irq | Fiq ->
      (* Interrupts are masked in monitor mode, so the assertion pends
         across the rest of the call — but if the call goes on to run
         enclave code, the line preempts it at the first instruction
         boundary (arm the interrupt source with a zero budget). Record
         when it was raised so the driver can measure the blackout
         until the OS runs again. *)
      record t (action_name action);
      if inj.blackout_start = None then
        inj.blackout_start <- Some (Monitor.cycles t);
      { t with Monitor.mach = { t.Monitor.mach with State.irq_budget = Some 0 } }
  | Mem_write { addr; value } ->
      let a = Word.of_int addr in
      if Platform.normal_world_accessible t.Monitor.plat a then begin
        record t (action_name action);
        { t with Monitor.mach = State.store t.Monitor.mach a (Word.of_int value) }
      end
      else t (* TZASC: the environment cannot reach secure memory *)
  | Rng_reseed n ->
      record t (action_name action);
      { t with Monitor.rng = Rng.seed n }
  | Rng_exhaust ->
      record t (action_name action);
      { t with Monitor.rng = Rng.with_budget t.Monitor.rng (Some 0) }

let hook inj (p : Monitor.phase) (t : Monitor.t) =
  match p with
  | Monitor.Ph_commit { smc; call } -> (
      let now, later = List.partition is_commit inj.armed in
      match now with
      | [] -> t
      | _ ->
          (* Fire-once: a deterministic plan must not re-fire at the
             later commits of a multi-phase call (Enter commits, then
             the probe's SVC commits). *)
          inj.armed <- later;
          let point =
            Printf.sprintf "commit:%s:%d" (if smc then "smc" else "svc") call
          in
          List.fold_left
            (fun t item -> apply_monitor_action inj ~point t item.action)
            t now)
  | Monitor.Ph_lock { acquire; cpu; page; call } -> (
      let n = inj.locksteps in
      inj.locksteps <- n + 1;
      let hit = function Lockstep k -> k = n | Commit | Insn _ -> false in
      let now, later = List.partition (fun i -> hit i.point) inj.armed in
      match now with
      | [] -> t
      | _ ->
          inj.armed <- later;
          let point =
            Printf.sprintf "lock:%s:%d:cpu%d:pg%d:%d"
              (if acquire then "acq" else "rel")
              n cpu page call
          in
          List.fold_left
            (fun t item -> apply_monitor_action inj ~point t item.action)
            t now)

(* -- instruction-boundary firing --------------------------------------- *)

let exec_inject inj (s : State.t) =
  let n = inj.insns in
  inj.insns <- n + 1;
  let hit = function Insn k -> k = n | Commit | Lockstep _ -> false in
  let now, later = List.partition (fun i -> hit i.point) inj.armed in
  match now with
  | [] -> (s, None)
  | _ ->
      inj.armed <- later;
      let point = Printf.sprintf "insn:%d" n in
      let record what = inj.log <- (point, what) :: inj.log in
      List.fold_left
        (fun (s, forced) item ->
          match item.action with
          | Irq ->
              record (action_name item.action);
              (s, Some Exec.Ev_irq)
          | Fiq ->
              record (action_name item.action);
              (s, Some Exec.Ev_fiq)
          | Mem_write { addr; value } ->
              let a = Word.of_int addr in
              if Platform.normal_world_accessible inj.plat a then begin
                record (action_name item.action);
                ({ s with State.mem = Komodo_machine.Memory.store s.State.mem a (Word.of_int value) }, forced)
              end
              else (s, forced)
          | Rng_reseed _ | Rng_exhaust ->
              (* The entropy source lives in the monitor, not the
                 machine; these only make sense at commit points. *)
              (s, forced))
        (s, None) now
