(** The seeded, deterministic fault injector.

    Models the adversarial environment of the paper's threat model
    (§3.1): everything *outside* the secure world may misbehave at any
    instant — a concurrent core or DMA engine storing to OS-owned
    insecure memory mid-SMC, the interrupt controller asserting
    IRQ/FIQ at an arbitrary instruction boundary, the hardware entropy
    source running dry. The injector can do exactly those things and
    nothing more: an action aimed at secure memory is silently blocked,
    as the TZASC would block it.

    Faults land at two kinds of {!point}:

    - {!Commit} — the boundary between a monitor call's validation
      phase and its single atomic commit (see {!Komodo_core.Monitor.phase}),
      the worst instant for a concurrent-writer fault;
    - [Insn n] — the [n]th instruction boundary of enclave user-mode
      execution within the current call, via the machine layer's
      {!Komodo_machine.Exec.run_bytecode} hook.

    One injector instance is armed with a plan per monitor call and
    fires deterministically, so whole fault campaigns replay exactly
    from a seed. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Exec = Komodo_machine.Exec
module Platform = Komodo_tz.Platform
module Monitor = Komodo_core.Monitor

type action =
  | Irq  (** assert IRQ (recorded; serviced when the monitor unmasks) *)
  | Fiq  (** assert FIQ *)
  | Mem_write of { addr : int; value : int }
      (** concurrent-core/DMA store to insecure memory; blocked by the
          modelled TZASC if [addr] is secure *)
  | Rng_reseed of int  (** the entropy source glitches to a new state *)
  | Rng_exhaust  (** the entropy source runs dry (budget 0) *)

type point =
  | Commit  (** the validate/commit boundary of the current call *)
  | Insn of int  (** the [n]th user instruction boundary of the call *)
  | Lockstep of int
      (** the [n]th lock acquire/release boundary of the current call,
          as fired by the multi-core stepper
          ({!Komodo_core.Monitor.phase}[ Ph_lock]) — the instants where
          another core's effects become visible to the holder *)

type plan_item = { point : point; action : action }

val action_name : action -> string
val pp_item : plan_item -> string

type t
(** Mutable injector state: the armed plan, the per-call instruction
    counter, and the log of fired injections. *)

val create : plat:Platform.t -> unit -> t

val arm : t -> plan_item list -> unit
(** Install the plan for the next monitor call and reset the
    instruction counter. *)

val disarm : t -> unit
(** Drop anything still armed (call ended before it could fire). *)

val fired : t -> (string * string) list
(** Everything fired so far, oldest first, as [(point, action)]
    strings — e.g. [("commit:smc:6", "mem_write:0x10000040")]. *)

val fired_count : t -> int

val take_blackout : t -> int option
(** Monitor cycle count at the first commit-point IRQ/FIQ assertion
    since the last call to this function; the driver subtracts it from
    the post-call cycle count to get the interrupt-blackout window. *)

val hook : t -> Monitor.phase -> Monitor.t -> Monitor.t
(** The {!Komodo_core.Monitor.t}[.inject] hook: fires every armed
    [Commit]-point action at the first commit boundary encountered,
    then disarms them (fire-once, so a deterministic plan stays
    predictable across the several commits of one Enter); counts
    [Ph_lock] boundaries and fires armed [Lockstep] actions at the
    matching index, with identical action semantics (the TZASC gate
    applies at lock boundaries too). *)

val exec_inject : t -> State.t -> State.t * Exec.event option
(** The machine-layer hook for {!Komodo_machine.Exec.run}: counts
    instruction boundaries and fires armed [Insn]-point actions.
    [Irq]/[Fiq] force the corresponding event, ending the burst;
    [Mem_write] perturbs insecure memory under the enclave's feet; RNG
    actions are commit-point-only and ignored here. *)
