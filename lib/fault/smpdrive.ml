(** Multi-core lock-discipline campaigns over the interleaved stepper.

    Each trial boots the platform, runs a short sequential prelude
    giving every CPU its own unfinalised address space, then races a
    seeded per-CPU stream of construction calls over a small shared
    page pool through {!Komodo_os.Smp.run}. Three oracles judge the
    run:

    - {b deadlock}: the stepper's wait-for cycle detector fired — with
      the ascending acquisition order this is impossible by
      construction, so any cycle is a violation;
    - {b invariant}: {!Komodo_core.Pagedb.check} on the final shared
      state (lost updates from under-locking corrupt the PageDB);
    - {b linearisability}: {!Komodo_spec.Linz.check} — the retired
      calls must admit a sequential order through the abstract spec
      explaining every observed result and the final abstract state.

    Violations shrink greedily ({!Komodo_spec.Diff.shrink_seq}) to a
    1-minimal flattened op list and serialise to JSONL replay traces,
    exactly like {!Drive}'s. With [~faults:true] the trial also arms
    the fault injector with {!Inject.Lockstep}-point plans — insecure
    memory writes, interrupts, RNG glitches at lock boundaries — which
    the construction-call alphabet cannot observe, so fault campaigns
    must stay violation-free. *)

module Word = Komodo_machine.Word
module Memory = Komodo_machine.Memory
module Platform = Komodo_tz.Platform
module Monitor = Komodo_core.Monitor
module Pagedb = Komodo_core.Pagedb
module Smc = Komodo_core.Smc
module Errors = Komodo_core.Errors
module Os = Komodo_os.Os
module Smp = Komodo_os.Smp
module Abs = Komodo_spec.Abs
module Aspec = Komodo_spec.Aspec
module Linz = Komodo_spec.Linz
module Diff = Komodo_spec.Diff
module Json = Komodo_telemetry.Json
module Seedsplit = Komodo_rand.Seedsplit

type sop = { s_cpu : int; s_call : int; s_args : int list }

let pp_sop s =
  Printf.sprintf "cpu%d %s(%s)" s.s_cpu
    (Smc.call_name s.s_call)
    (String.concat "," (List.map string_of_int s.s_args))

type violation = {
  index : int;  (** last op index of the violating run (for shrinking) *)
  kind : string;  (** ["deadlock"] | ["invariant"] | ["linearisability"] *)
  reason : string;
}

let pp_violation v = Printf.sprintf "%s: %s" v.kind v.reason

(* -- World construction -------------------------------------------------- *)

(* Per-CPU prelude pages: cpu [c] owns addrspace page [3c], l1pt
   [3c+1], l2pt [3c+2]. The contended pool starts right after. *)
let asp_page c = 3 * c
let pool_base ~cpus = 3 * cpus
let pool_pages = 8

let prelude_calls ~cpus =
  List.concat
    (List.init cpus (fun c ->
         let a = asp_page c in
         [
           (Smc.sm_init_addrspace, [ a; a + 1 ]);
           (Smc.sm_init_l2ptable, [ a; a + 2; 0 ]);
         ]))

let apply_prelude os ~cpus =
  List.fold_left
    (fun os (call, args) ->
      let os, err, _ = Os.smc os ~call ~args:(List.map Word.of_int args) in
      if not (Errors.is_success err) then
        failwith "Smpdrive: prelude call failed";
      os)
    os (prelude_calls ~cpus)

(* The spec's view of the prelude: [Abs.abs] renders unfinalised
   measurements as completed digests, which the spec cannot extend, so
   the initial abstract state must be built by stepping the spec over
   the prelude from the (addrspace-free) boot state. *)
let spec_prelude st ~cpus =
  List.fold_left
    (fun st (call, args) ->
      match
        Aspec.step_smc st ~probe:(fun _ _ -> false) ~contents:None ~call ~args
      with
      | Aspec.Done (st', err, _) when err = Aspec.e_success -> st'
      | _ -> failwith "Smpdrive: spec prelude failed")
    st (prelude_calls ~cpus)

let check_geometry ~npages ~cpus =
  if cpus < 1 then invalid_arg "Smpdrive: cpus must be >= 1";
  if npages < pool_base ~cpus + pool_pages then
    invalid_arg "Smpdrive: npages too small for the per-cpu preludes"

let boot_world ~seed ~npages ~cpus =
  check_geometry ~npages ~cpus;
  apply_prelude (Os.boot ~seed ~npages ()) ~cpus

(* -- Fault plans at lock boundaries -------------------------------------- *)

let gen_faults ~seed ~n =
  let st = Seedsplit.stream ~root:(Seedsplit.derive ~root:seed 0x10CF) () in
  let rnd k = Seedsplit.next st mod k in
  List.init
    (2 + rnd 4)
    (fun _ ->
      let point = Inject.Lockstep (rnd (4 * (n + 1))) in
      let action =
        match rnd 4 with
        | 0 ->
            Inject.Mem_write
              {
                addr = Word.to_int Os.staging_base + (4 * rnd 1024);
                value = rnd 0x3FFF_FFFF;
              }
        | 1 ->
            Inject.Mem_write
              {
                addr = Word.to_int Os.shared_base + (4 * rnd 1024);
                value = rnd 0x3FFF_FFFF;
              }
        | 2 -> Inject.Irq
        | _ -> Inject.Rng_reseed (rnd 0x3FFF_FFFF)
      in
      { Inject.point; action })

(* -- Running a flattened op list ----------------------------------------- *)

let scripts_of_sops ~cpus sops =
  List.init cpus (fun c ->
      List.filter_map
        (fun s ->
          if s.s_cpu = c then
            Some { Smp.call = s.s_call; args = List.map Word.of_int s.s_args }
          else None)
        sops)

type stats = {
  calls : int;
  contended : int;
  uncontended : int;
  spins : int;
  retries : int;
  lock_cycles : int;
  injections : int;
}

let run_sops ?bug ?(faults = false) ~seed ~npages ~cpus sops =
  check_geometry ~npages ~cpus;
  let os0 = Os.boot ~seed ~npages () in
  let init_abs = spec_prelude (Abs.abs os0.Os.mon) ~cpus in
  let os = apply_prelude os0 ~cpus in
  let os, inj =
    if not faults then (os, None)
    else begin
      let inj = Inject.create ~plat:os.Os.mon.Monitor.plat () in
      Inject.arm inj (gen_faults ~seed ~n:(List.length sops));
      let mon =
        { os.Os.mon with Monitor.inject = Some (Inject.hook inj) }
      in
      ({ os with Os.mon }, Some inj)
    end
  in
  let outcome = Smp.run ~seed ?bug os ~scripts:(scripts_of_sops ~cpus sops) in
  let last = List.length sops - 1 in
  let fail kind reason = Error { index = last; kind; reason } in
  match outcome.Smp.deadlock with
  | Some dl ->
      let member w =
        Printf.sprintf "cpu%d holds {%s} wants %d" w.Smp.w_cpu
          (String.concat "," (List.map string_of_int w.Smp.w_holds))
          w.Smp.w_wants
      in
      fail "deadlock"
        (Printf.sprintf "wait-for cycle: %s"
           (String.concat " -> " (List.map member dl.Smp.dl_cycle)))
  | None -> (
      let mon = outcome.Smp.os.Os.mon in
      match
        Pagedb.check mon.Monitor.plat mon.Monitor.mach.Komodo_machine.State.mem
          mon.Monitor.pagedb
      with
      | pv :: _ ->
          fail "invariant"
            (Format.asprintf "final PageDB ill-formed: %a" Pagedb.pp_violation
               pv)
      | [] -> (
          match
            Linz.check ~init:init_abs ~final:(Abs.abs mon) outcome.Smp.events
          with
          | Linz.Violation { reason } -> fail "linearisability" reason
          | Linz.Inconclusive _ | Linz.Linearisable _ ->
              let st = outcome.Smp.stats in
              Ok
                {
                  calls = st.Smp.total_calls;
                  contended = st.Smp.contended_acquisitions;
                  uncontended = st.Smp.uncontended_acquisitions;
                  spins = st.Smp.spin_iterations;
                  retries = st.Smp.retries;
                  lock_cycles = st.Smp.lock_cycles;
                  injections =
                    (match inj with
                    | Some inj -> Inject.fired_count inj
                    | None -> 0);
                }))

(* -- Seeded op generation ------------------------------------------------ *)

(* Weighted construction-call templates over the shared pool. MapSecure
   dominates (the racing-allocation shape both seeded bugs need);
   content is always 0 so the spec replay is exact. *)
let gen_sops ~seed ~npages ~cpus ~ops_per_cpu =
  ignore npages;
  let pb = pool_base ~cpus in
  List.concat
    (List.init cpus (fun c ->
         let st =
           Seedsplit.stream ~root:(Seedsplit.derive ~root:seed (c + 1)) ()
         in
         let rnd k = Seedsplit.next st mod k in
         let pool () = pb + rnd pool_pages in
         let va () = ((1 + rnd 12) * 0x1000) lor 3 in
         List.init ops_per_cpu (fun _ ->
             let a = asp_page c in
             let call, args =
               match rnd 12 with
               | 0 | 1 | 2 | 3 | 4 ->
                   (Smc.sm_map_secure, [ a; pool (); va (); 0 ])
               | 5 | 6 -> (Smc.sm_remove, [ pool () ])
               | 7 -> (Smc.sm_init_thread, [ a; pool (); va () land lnot 3 ])
               | 8 -> (Smc.sm_alloc_spare, [ a; pool () ])
               | 9 -> (Smc.sm_get_phys_pages, [])
               | 10 -> (Smc.sm_map_insecure, [ a; rnd 4; va () ])
               | _ ->
                   (* racing Remove of another cpu's addrspace page *)
                   (Smc.sm_remove, [ asp_page (rnd cpus) ])
             in
             { s_cpu = c; s_call = call; s_args = args })))

(* -- Trials -------------------------------------------------------------- *)

type trial = {
  t_calls : int;
  t_contended : int;
  t_uncontended : int;
  t_spins : int;
  t_retries : int;
  t_lock_cycles : int;
  t_injections : int;
  t_violation : violation option;
}

let default_npages = 32
let default_cpus = 4
let default_ops = 8

let run_trial ?(npages = default_npages) ?(cpus = default_cpus)
    ?(ops_per_cpu = default_ops) ?bug ?(faults = false) ~seed () =
  let sops = gen_sops ~seed ~npages ~cpus ~ops_per_cpu in
  match run_sops ?bug ~faults ~seed ~npages ~cpus sops with
  | Ok s ->
      {
        t_calls = s.calls;
        t_contended = s.contended;
        t_uncontended = s.uncontended;
        t_spins = s.spins;
        t_retries = s.retries;
        t_lock_cycles = s.lock_cycles;
        t_injections = s.injections;
        t_violation = None;
      }
  | Error v ->
      {
        t_calls = 0;
        t_contended = 0;
        t_uncontended = 0;
        t_spins = 0;
        t_retries = 0;
        t_lock_cycles = 0;
        t_injections = 0;
        t_violation = Some v;
      }

let shrink_trial ?(npages = default_npages) ?(cpus = default_cpus)
    ?(ops_per_cpu = default_ops) ?bug ?(faults = false) ~seed () =
  let sops = gen_sops ~seed ~npages ~cpus ~ops_per_cpu in
  let run ops = run_sops ?bug ~faults ~seed ~npages ~cpus ops in
  match run sops with
  | Ok _ -> None
  | Error _ ->
      let shrunk, v = Diff.shrink_seq ~run ~index:(fun v -> v.index) sops in
      Some (shrunk, v)

type outcome = {
  trials_run : int;
  total_calls : int;
  total_contended : int;
  total_uncontended : int;
  total_spins : int;
  total_retries : int;
  total_lock_cycles : int;
  total_injections : int;
  violation : (int * sop list * violation) option;
}

(* -- Replay traces (JSONL, like Drive's) --------------------------------- *)

type header = {
  h_seed : int;
  h_npages : int;
  h_cpus : int;
  h_bug : Smp.bug option;
}

let trace_lines ~seed ~npages ~cpus ~bug sops =
  let header =
    Json.Obj
      [
        ("komodo_smp_trace", Json.Int 1);
        ("seed", Json.Int seed);
        ("npages", Json.Int npages);
        ("cpus", Json.Int cpus);
        ( "bug",
          match bug with
          | None -> Json.Null
          | Some b -> Json.Str (Smp.bug_name b) );
      ]
  in
  let line s =
    Json.Obj
      [
        ("cpu", Json.Int s.s_cpu);
        ("call", Json.Int s.s_call);
        ("args", Json.List (List.map (fun a -> Json.Int a) s.s_args));
      ]
  in
  Json.to_string header :: List.map (fun s -> Json.to_string (line s)) sops

let trace_parse lines =
  let ( let* ) = Result.bind in
  let int_field obj name =
    match Json.member name obj with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "missing int field %S" name)
  in
  match List.filter (fun l -> String.trim l <> "") lines with
  | [] -> Error "empty trace"
  | hline :: rest ->
      let* h = Json.parse hline in
      let* () =
        match Json.member "komodo_smp_trace" h with
        | Some (Json.Int 1) -> Ok ()
        | _ -> Error "not a komodo smp trace (bad header)"
      in
      let* h_seed = int_field h "seed" in
      let* h_npages = int_field h "npages" in
      let* h_cpus = int_field h "cpus" in
      let* h_bug =
        match Json.member "bug" h with
        | Some Json.Null | None -> Ok None
        | Some (Json.Str s) -> (
            match Smp.bug_of_string s with
            | Some b -> Ok (Some b)
            | None -> Error (Printf.sprintf "unknown bug %S" s))
        | Some _ -> Error "bad bug field"
      in
      let* sops =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* j = Json.parse line in
            let* s_cpu = int_field j "cpu" in
            let* s_call = int_field j "call" in
            let* s_args =
              match Json.member "args" j with
              | Some (Json.List items) ->
                  List.fold_left
                    (fun acc item ->
                      let* acc = acc in
                      match item with
                      | Json.Int n -> Ok (n :: acc)
                      | _ -> Error "bad args element")
                    (Ok []) items
                  |> Result.map List.rev
              | _ -> Error "missing args"
            in
            Ok ({ s_cpu; s_call; s_args } :: acc))
          (Ok []) rest
        |> Result.map List.rev
      in
      Ok ({ h_seed; h_npages; h_cpus; h_bug }, sops)

let replay h sops =
  run_sops ?bug:h.h_bug ~seed:h.h_seed ~npages:h.h_npages ~cpus:h.h_cpus sops
