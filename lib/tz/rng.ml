(** The hardware random-number source.

    Komodo requires a hardware-backed cryptographically secure source of
    randomness (§3.2); the Raspberry Pi 2 prototype used its hardware
    RNG. We model it as a deterministic keyed generator (SplitMix64
    core) so that whole-system runs are reproducible: the bootloader
    seeds it, and identical seeds give identical boots — which is also
    exactly the "same seed" hypothesis the noninterference proofs place
    on the non-determinism source (§6.3).

    Real hardware sources can stall or run dry (an attacker draining the
    entropy pool, a failed conditioning self-test). The fault model
    captures this with an optional draw budget: when it reaches zero the
    source is exhausted and further draws raise {!Exhausted}. The
    monitor never lets that exception escape — it checks {!exhausted}
    before drawing and returns a defined error to the enclave. *)

type t = {
  state : int64;
  remaining : int option;
      (** draws left before the source reads as exhausted; [None] is the
          normal unbounded hardware source *)
}
[@@deriving eq]

exception Exhausted
(** Raised by a draw from an exhausted source. Monitor code must test
    {!exhausted} first; this escaping into a handler is a bug. *)

let seed n = { state = Int64.of_int n; remaining = None }

(** Arm a draw budget (fault injection); [None] removes it. *)
let with_budget t remaining = { t with remaining }

let exhausted t = t.remaining = Some 0

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  if exhausted t then raise Exhausted;
  let state = Int64.add t.state golden_gamma in
  let remaining = Option.map (fun n -> n - 1) t.remaining in
  (mix state, { state; remaining })

(** Draw one 32-bit word (the RDRAND-style primitive the monitor's
    GetRandom SVC exposes). *)
let next_word t =
  let v, t = next64 t in
  (Komodo_machine.Word.of_int (Int64.to_int v land 0xFFFF_FFFF), t)

(** Draw [n] bytes (used to derive the boot-time attestation secret). *)
let next_bytes t n =
  let buf = Buffer.create n in
  let rec go t =
    if Buffer.length buf >= n then (String.sub (Buffer.contents buf) 0 n, t)
    else begin
      let w, t = next_word t in
      Buffer.add_string buf (Komodo_machine.Word.to_bytes_be w);
      go t
    end
  in
  go t

(** An impure convenience wrapper for callers (like RSA keygen) that
    want a [unit -> int] source; they must thread [commit] back. *)
let as_fun t =
  let r = ref t in
  let f () =
    let w, t' = next_word !r in
    r := t';
    Komodo_machine.Word.to_int w
  in
  (f, fun () -> !r)
