(** The hardware random-number source.

    Komodo requires a hardware-backed cryptographically secure source
    of randomness (§3.2). It is modelled as a deterministic keyed
    generator so whole-system runs are reproducible — which is also the
    "same seed" hypothesis the noninterference proofs place on the
    non-determinism source (§6.3).

    For the fault model the source carries an optional draw budget:
    when it hits zero the source is {!exhausted} and draws raise
    {!Exhausted}. Monitor code checks {!exhausted} before drawing. *)

type t

val equal : t -> t -> bool
val seed : int -> t

exception Exhausted
(** A draw was attempted from an exhausted source. The monitor guards
    every draw with {!exhausted}, so this escaping is a bug. *)

val with_budget : t -> int option -> t
(** Arm a draw budget (fault injection); [None] removes it. *)

val exhausted : t -> bool
(** The budget has run out: the next draw would raise {!Exhausted}. *)

val next64 : t -> int64 * t
val next_word : t -> Komodo_machine.Word.t * t
(** One 32-bit draw: the RDRAND-style primitive behind the GetRandom
    SVC. *)

val next_bytes : t -> int -> string * t
(** [n] bytes (boot-time attestation-secret derivation). *)

val as_fun : t -> (unit -> int) * (unit -> t)
(** An impure adapter for consumers wanting [unit -> int] (RSA keygen);
    the second function reads back the advanced state. *)
