(** User-mode execution.

    Runs flat programs ({!Insn.fop}) fetched from enclave memory through
    the page table — code pages are ordinary measured data pages — with
    every data access translated and permission-checked, and external
    interrupts modelled by [State.irq_budget]. A burst of user execution
    always ends with an {!event}, which the monitor's Enter/Resume loop
    turns into the corresponding ARM exception.

    Native services: a code page beginning with {!native_magic} names a
    registered native function instead of bytecode. These model
    enclaves (the notary, the verifier) whose inner loops would be
    impractical in bytecode; they receive the same translated view of
    memory and must keep any resumable state in registers and enclave
    memory, like real code. *)

type fault = Alignment | Translation | Permission | Prefetch | Undef_insn

val equal_fault : fault -> fault -> bool
val pp_fault : Format.formatter -> fault -> unit
val show_fault : fault -> string

type event =
  | Ev_svc of Word.t  (** SVC taken; the immediate is a call hint *)
  | Ev_irq
  | Ev_fiq
  | Ev_fault of fault

val equal_event : event -> event -> bool
val pp_event : Format.formatter -> event -> unit
val show_event : event -> string

val code_magic : Word.t
(** First word of a bytecode code page ("KODC"). *)

val native_magic : Word.t
(** First word of a native-service code page ("KONV"). *)

(** Loads and stores as issued by user-mode code: virtual addresses
    translated through TTBR0, permission-checked. Also the only memory
    access native services may use, which keeps them honest. *)
module Uview : sig
  val translate : State.t -> Word.t -> (Ptable.frame, fault) result
  val load : State.t -> Word.t -> (Word.t, fault) result
  val store : State.t -> Word.t -> Word.t -> (State.t, fault) result

  val fetch : State.t -> Word.t -> (Word.t, fault) result
  (** Instruction fetch: requires execute permission. *)
end

type native_outcome = { nstate : State.t; nevent : event }

type native = State.t -> native_outcome
(** A native service invocation: one burst of execution ending in an
    event. *)

type code_image = Bytecode of Insn.fop array | Native_ref of int | Bad_image

val fetch_image : State.t -> entry_va:Word.t -> code_image
(** Read and decode the program at [entry_va] (header: magic, length,
    body), fetching through the page table. One translation and one
    bulk load per virtual page. *)

type image_cache
(** A small per-executor memo of decoded bytecode programs, keyed on
    entry point. A hit requires every page the image was fetched from
    to still translate to the same executable frame backed by the same
    (immutable) memory chunk — so a hit is provably identical to
    refetching, and any store to a code page, remapping, or table edit
    invalidates by construction. *)

val image_cache : unit -> image_cache

val run_bytecode :
  ?probe:(steps:int -> unit) ->
  ?inject:(State.t -> State.t * event option) ->
  State.t ->
  Insn.fop array ->
  start_pc:int ->
  fuel:int ->
  State.t * event
(** Interpret from flat index [start_pc] until an event; [fuel] bounds
    total steps (exhaustion models a timer interrupt). On return,
    [State.upc] holds the flat index at which execution stopped — the
    resumption PC (for SVCs, past the SVC; for faults, the faulting
    instruction itself so it can be retried). [probe] observes the
    number of instructions retired in the burst (telemetry hook; never
    affects execution or cycle charging). [inject] is the
    fault-injection hook, consulted at every instruction boundary: it
    may perturb the state (asynchronous hardware writes to memory the
    attacker owns) and force an event ending the burst, exactly as a
    real interrupt would. *)

val run :
  ?probe:(steps:int -> unit) ->
  ?inject:(State.t -> State.t * event option) ->
  ?cache:image_cache ->
  State.t ->
  entry_va:Word.t ->
  start_pc:int ->
  fuel:int ->
  native:(int -> native option) ->
  State.t * event
(** Execute user code at [entry_va], dispatching native services through
    [native]. An undecodable image is a prefetch abort. Native bursts
    report zero retired instructions to [probe]. [cache] memoises
    decoded bytecode across bursts (see {!image_cache}). *)
