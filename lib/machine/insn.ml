(** The modelled instruction set.

    The paper models ~25 ARMv7 instructions plus a limited form of
    structured control flow (if/while/calls) instead of a program counter
    (§5.1). We mirror that split:

    - [stmt] is the structured source form programs are written in
      (the analogue of Vale procedures);
    - [fop] is a flat form with explicit branch targets, produced by
      {!flatten} — the analogue of the assembly the trusted printer
      emits. Flat programs have a real program counter (an index), which
      is what gets banked into LR when an exception interrupts user code;
    - {!encode_flat}/{!decode_flat} give flat programs a word-level
      binary encoding so enclave code is stored in (and measured as part
      of) ordinary data pages. *)

type cond = EQ | NE | CS | CC | MI | PL | HI | LS | GE | LT | GT | LE | AL
[@@deriving eq, ord, show { with_path = false }]

type operand = Reg of Regs.reg | Imm of Word.t [@@deriving eq]

let pp_operand fmt = function
  | Reg r -> Regs.pp_reg fmt r
  | Imm w -> Fmt.pf fmt "#%a" Word.pp w

type insn =
  | Mov of Regs.reg * operand
  | Mvn of Regs.reg * operand  (** bitwise-not move *)
  | Add of Regs.reg * Regs.reg * operand
  | Sub of Regs.reg * Regs.reg * operand
  | Rsb of Regs.reg * Regs.reg * operand  (** reverse subtract *)
  | Mul of Regs.reg * Regs.reg * Regs.reg
  | And_ of Regs.reg * Regs.reg * operand
  | Orr of Regs.reg * Regs.reg * operand
  | Eor of Regs.reg * Regs.reg * operand
  | Bic of Regs.reg * Regs.reg * operand  (** bit clear *)
  | Lsl of Regs.reg * Regs.reg * operand
  | Lsr of Regs.reg * Regs.reg * operand
  | Asr of Regs.reg * Regs.reg * operand
  | Ror of Regs.reg * Regs.reg * operand
  | Cmp of Regs.reg * operand  (** sets NZCV *)
  | Cmn of Regs.reg * operand  (** compare negative: flags from rn + op *)
  | Tst of Regs.reg * operand  (** sets NZ from AND *)
  | Ldr of Regs.reg * Regs.reg * operand  (** rd := \[rn + ofs\] *)
  | Str of Regs.reg * Regs.reg * operand  (** \[rn + ofs\] := rd *)
  | Svc of Word.t  (** supervisor call into the monitor *)
  | Udf  (** permanently-undefined instruction (faults) *)
  | Nop
[@@deriving eq]

type stmt =
  | I of insn
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
[@@deriving eq]

(** Flat micro-ops: straight-line instructions plus explicit branches.
    Targets are absolute indices into the flat program. *)
type fop = FI of insn | FJmp of int | FJcc of cond * int [@@deriving eq]

let negate = function
  | EQ -> NE
  | NE -> EQ
  | CS -> CC
  | CC -> CS
  | MI -> PL
  | PL -> MI
  | HI -> LS
  | LS -> HI
  | GE -> LT
  | LT -> GE
  | GT -> LE
  | LE -> GT
  | AL -> invalid_arg "Insn.negate: AL has no negation"

(** Evaluate a condition against the NZCV flags. *)
let holds cond (p : Psr.t) =
  match cond with
  | EQ -> p.Psr.z
  | NE -> not p.Psr.z
  | CS -> p.Psr.c
  | CC -> not p.Psr.c
  | MI -> p.Psr.n
  | PL -> not p.Psr.n
  | HI -> p.Psr.c && not p.Psr.z
  | LS -> (not p.Psr.c) || p.Psr.z
  | GE -> p.Psr.n = p.Psr.v
  | LT -> p.Psr.n <> p.Psr.v
  | GT -> (not p.Psr.z) && p.Psr.n = p.Psr.v
  | LE -> p.Psr.z || p.Psr.n <> p.Psr.v
  | AL -> true

(* -- Flattening ------------------------------------------------------- *)

(** Compile structured statements to flat form. [If] becomes a
    conditional branch over the then-block; [While] a backward loop. *)
let flatten (stmts : stmt list) : fop array =
  let buf = ref [] and len = ref 0 in
  let emit op =
    buf := op :: !buf;
    incr len
  in
  (* Emit a placeholder branch; patch its target once known. *)
  let emit_patch mk =
    let at = !len in
    emit (mk 0);
    at
  in
  let patch at target =
    buf :=
      List.mapi
        (fun i op ->
          if i = !len - 1 - at then
            match op with
            | FJmp _ -> FJmp target
            | FJcc (c, _) -> FJcc (c, target)
            | FI _ -> op
          else op)
        !buf
  in
  let rec go = function
    | [] -> ()
    | I i :: rest ->
        emit (FI i);
        go rest
    | If (c, then_b, else_b) :: rest ->
        if equal_cond c AL then (
          List.iter (fun s -> go [ s ]) then_b;
          go rest)
        else begin
          let jcc = emit_patch (fun t -> FJcc (negate c, t)) in
          List.iter (fun s -> go [ s ]) then_b;
          (match else_b with
          | [] -> patch jcc !len
          | _ ->
              let jend = emit_patch (fun t -> FJmp t) in
              patch jcc !len;
              List.iter (fun s -> go [ s ]) else_b;
              patch jend !len);
          go rest
        end
    | While (c, body) :: rest ->
        let top = !len in
        if equal_cond c AL then begin
          List.iter (fun s -> go [ s ]) body;
          emit (FJmp top)
        end
        else begin
          let jcc = emit_patch (fun t -> FJcc (negate c, t)) in
          List.iter (fun s -> go [ s ]) body;
          emit (FJmp top);
          patch jcc !len
        end;
        go rest
  in
  go stmts;
  Array.of_list (List.rev !buf)

(* -- Binary encoding --------------------------------------------------
   One or two words per flat op:
     word0 bits [31:24] opcode, [23:16] rd, [15:8] rn, [7] operand-is-
     immediate, [6:0] rm. When bit 7 is set a second word carries the
     immediate. Branches pack cond in [23:20] and target in [19:0]. *)

let tag_of_insn = function
  | Mov _ -> 0x01
  | Mvn _ -> 0x02
  | Add _ -> 0x03
  | Sub _ -> 0x04
  | Rsb _ -> 0x05
  | Mul _ -> 0x06
  | And_ _ -> 0x07
  | Orr _ -> 0x08
  | Eor _ -> 0x09
  | Bic _ -> 0x0A
  | Lsl _ -> 0x0B
  | Lsr _ -> 0x0C
  | Asr _ -> 0x0D
  | Ror _ -> 0x0E
  | Cmp _ -> 0x0F
  | Tst _ -> 0x10
  | Ldr _ -> 0x11
  | Str _ -> 0x12
  | Svc _ -> 0x13
  | Nop -> 0x14
  | Udf -> 0x15
  | Cmn _ -> 0x16

let tag_jmp = 0x20
let tag_jcc = 0x21

let encode_reg = function Regs.R n -> n | Regs.SP -> 13 | Regs.LR -> 14

let decode_reg = function
  | n when n >= 0 && n <= 12 -> Some (Regs.R n)
  | 13 -> Some Regs.SP
  | 14 -> Some Regs.LR
  | _ -> None

let encode_cond = function
  | EQ -> 0
  | NE -> 1
  | CS -> 2
  | CC -> 3
  | MI -> 4
  | PL -> 5
  | HI -> 6
  | LS -> 7
  | GE -> 8
  | LT -> 9
  | GT -> 10
  | LE -> 11
  | AL -> 12

let decode_cond = function
  | 0 -> Some EQ
  | 1 -> Some NE
  | 2 -> Some CS
  | 3 -> Some CC
  | 4 -> Some MI
  | 5 -> Some PL
  | 6 -> Some HI
  | 7 -> Some LS
  | 8 -> Some GE
  | 9 -> Some LT
  | 10 -> Some GT
  | 11 -> Some LE
  | 12 -> Some AL
  | _ -> None

let pack ~tag ?(rd = 0) ?(rn = 0) operand =
  match operand with
  | None -> [ Word.of_int ((tag lsl 24) lor (rd lsl 16) lor (rn lsl 8)) ]
  | Some (Reg r) ->
      [ Word.of_int ((tag lsl 24) lor (rd lsl 16) lor (rn lsl 8) lor encode_reg r) ]
  | Some (Imm w) ->
      [ Word.of_int ((tag lsl 24) lor (rd lsl 16) lor (rn lsl 8) lor 0x80); w ]

let encode_insn i =
  let tag = tag_of_insn i in
  match i with
  | Mov (rd, op) | Mvn (rd, op) ->
      pack ~tag ~rd:(encode_reg rd) (Some op)
  | Add (rd, rn, op)
  | Sub (rd, rn, op)
  | Rsb (rd, rn, op)
  | And_ (rd, rn, op)
  | Orr (rd, rn, op)
  | Eor (rd, rn, op)
  | Bic (rd, rn, op)
  | Lsl (rd, rn, op)
  | Lsr (rd, rn, op)
  | Asr (rd, rn, op)
  | Ror (rd, rn, op)
  | Ldr (rd, rn, op)
  | Str (rd, rn, op) ->
      pack ~tag ~rd:(encode_reg rd) ~rn:(encode_reg rn) (Some op)
  | Mul (rd, rn, rm) ->
      pack ~tag ~rd:(encode_reg rd) ~rn:(encode_reg rn) (Some (Reg rm))
  | Cmp (rn, op) | Cmn (rn, op) | Tst (rn, op) ->
      pack ~tag ~rn:(encode_reg rn) (Some op)
  | Svc imm -> [ Word.of_int ((tag lsl 24) lor (Word.to_int imm land 0xFFFFFF)) ]
  | Nop | Udf -> pack ~tag None

let encode_fop = function
  | FI i -> encode_insn i
  | FJmp t -> [ Word.of_int ((tag_jmp lsl 24) lor (t land 0xFFFFF)) ]
  | FJcc (c, t) ->
      [ Word.of_int ((tag_jcc lsl 24) lor (encode_cond c lsl 20) lor (t land 0xFFFFF)) ]

let encode_flat (prog : fop array) : Word.t list =
  Array.to_list prog |> List.concat_map encode_fop

let encode_program stmts = encode_flat (flatten stmts)

(** Decode a word array back to a flat program; [None] on any malformed
    word (unknown opcode, bad register field, truncated immediate).
    Array-indexed so image fetch can decode straight out of a bulk page
    read without building a list. *)
let decode_flat_array (ws : Word.t array) : fop array option =
  let ( let* ) = Option.bind in
  let len = Array.length ws in
  let rec go acc j =
    if j >= len then Some (Array.of_list (List.rev acc))
    else
      let w = ws.(j) in
      let rest = j + 1 in
      let tag = Word.to_int (Word.extract w ~hi:31 ~lo:24) in
      if tag = tag_jmp then
        go (FJmp (Word.to_int (Word.extract w ~hi:19 ~lo:0)) :: acc) rest
      else if tag = tag_jcc then
        let* c = decode_cond (Word.to_int (Word.extract w ~hi:23 ~lo:20)) in
        go (FJcc (c, Word.to_int (Word.extract w ~hi:19 ~lo:0)) :: acc) rest
      else if tag = 0x13 then
        go (FI (Svc (Word.extract w ~hi:23 ~lo:0)) :: acc) rest
      else if tag = 0x14 then go (FI Nop :: acc) rest
      else if tag = 0x15 then go (FI Udf :: acc) rest
      else
        let rd = Word.to_int (Word.extract w ~hi:23 ~lo:16) in
        let rn = Word.to_int (Word.extract w ~hi:15 ~lo:8) in
        let is_imm = Word.bit w 7 in
        let rm = Word.to_int (Word.extract w ~hi:6 ~lo:0) in
        let op_and_rest =
          if is_imm then
            if rest >= len then None else Some (Imm ws.(rest), rest + 1)
          else
            let* r = decode_reg rm in
            Some (Reg r, rest)
        in
        let* operand, rest = op_and_rest in
          let two mk =
            let* rd = decode_reg rd in
            Some (mk rd operand)
          in
          let three mk =
            let* rd = decode_reg rd in
            let* rn = decode_reg rn in
            Some (mk rd rn operand)
          in
          let cmpish mk =
            let* rn = decode_reg rn in
            Some (mk rn operand)
          in
          let* i =
            match tag with
            | 0x01 -> two (fun rd op -> Mov (rd, op))
            | 0x02 -> two (fun rd op -> Mvn (rd, op))
            | 0x03 -> three (fun rd rn op -> Add (rd, rn, op))
            | 0x04 -> three (fun rd rn op -> Sub (rd, rn, op))
            | 0x05 -> three (fun rd rn op -> Rsb (rd, rn, op))
            | 0x06 -> (
                match operand with
                | Reg rm ->
                    let* rd = decode_reg rd in
                    let* rn = decode_reg rn in
                    Some (Mul (rd, rn, rm))
                | Imm _ -> None)
            | 0x07 -> three (fun rd rn op -> And_ (rd, rn, op))
            | 0x08 -> three (fun rd rn op -> Orr (rd, rn, op))
            | 0x09 -> three (fun rd rn op -> Eor (rd, rn, op))
            | 0x0A -> three (fun rd rn op -> Bic (rd, rn, op))
            | 0x0B -> three (fun rd rn op -> Lsl (rd, rn, op))
            | 0x0C -> three (fun rd rn op -> Lsr (rd, rn, op))
            | 0x0D -> three (fun rd rn op -> Asr (rd, rn, op))
            | 0x0E -> three (fun rd rn op -> Ror (rd, rn, op))
            | 0x0F -> cmpish (fun rn op -> Cmp (rn, op))
            | 0x16 -> cmpish (fun rn op -> Cmn (rn, op))
            | 0x10 -> cmpish (fun rn op -> Tst (rn, op))
            | 0x11 -> three (fun rd rn op -> Ldr (rd, rn, op))
            | 0x12 -> three (fun rd rn op -> Str (rd, rn, op))
            | _ -> None
          in
        go (FI i :: acc) rest
  in
  go [] 0

(** List-input variant of {!decode_flat_array}, kept for callers that
    hold encoded programs as lists. *)
let decode_flat (ws : Word.t list) : fop array option =
  decode_flat_array (Array.of_list ws)

let insn_cost = function
  | Mul _ -> Cost.mul
  | Ldr _ | Str _ -> Cost.mem_access
  | Svc _ -> Cost.alu (* trap cost charged separately *)
  | _ -> Cost.alu

let fop_cost = function FI i -> insn_cost i | FJmp _ | FJcc _ -> Cost.branch
