(** N-CPU machine state: per-CPU register banks sharing one memory.

    The paper's machine model (§5.1) is single-core; its proposed
    multi-core route (§9.2) keeps one memory and replicates the
    architectural per-CPU state. This module is exactly that split of
    {!State.t}: everything except [mem] — general registers with their
    banking, PSR/mode/world, the MMU base registers and TLB, the user
    PC, fault address, cycle counter and interrupt budget — becomes a
    per-CPU {e bank}; the copy-on-write {!Memory.t} is shared.

    [view] assembles a full [State.t] for one CPU (bank + shared
    memory), so the whole single-core monitor runs unchanged against a
    per-CPU view; [commit_bank] writes a resulting state's bank fields
    back (deliberately {e not} its memory — memory effects are
    published separately, page by page, by the stepper's commit phase,
    which is what makes racy lost updates expressible when a lock is
    missing). *)

type bank = {
  regs : Regs.t;
  cpsr : Psr.t;
  world : Mode.world;
  ttbr0_s : Word.t;
  ttbr1_s : Word.t;
  ttbr0_ns : Word.t;
  tlb : Tlb.t;
  scr_ns : bool;
  upc : Word.t;
  far : Word.t;
  cycles : int;
  irq_budget : int option;
}

type t = { banks : bank array; mem : Memory.t }

let bank_of_state (s : State.t) =
  {
    regs = s.State.regs;
    cpsr = s.State.cpsr;
    world = s.State.world;
    ttbr0_s = s.State.ttbr0_s;
    ttbr1_s = s.State.ttbr1_s;
    ttbr0_ns = s.State.ttbr0_ns;
    tlb = s.State.tlb;
    scr_ns = s.State.scr_ns;
    upc = s.State.upc;
    far = s.State.far;
    cycles = s.State.cycles;
    irq_budget = s.State.irq_budget;
  }

(** Boot an [cpus]-core machine from a single-core state: every CPU
    starts with a copy of the boot bank (as secondary cores released
    from the boot hold pen would), memory is shared. *)
let create ~cpus (s : State.t) =
  if cpus < 1 then invalid_arg "Multicore.create: at least one CPU";
  { banks = Array.init cpus (fun _ -> bank_of_state s); mem = s.State.mem }

let cpus t = Array.length t.banks

let check_cpu t c =
  if c < 0 || c >= Array.length t.banks then
    invalid_arg (Printf.sprintf "Multicore: no CPU %d" c)

(** The full architectural state CPU [c] observes: its bank plus the
    shared memory. *)
let view t c : State.t =
  check_cpu t c;
  let b = t.banks.(c) in
  {
    State.regs = b.regs;
    cpsr = b.cpsr;
    world = b.world;
    mem = t.mem;
    ttbr0_s = b.ttbr0_s;
    ttbr1_s = b.ttbr1_s;
    ttbr0_ns = b.ttbr0_ns;
    tlb = b.tlb;
    scr_ns = b.scr_ns;
    upc = b.upc;
    far = b.far;
    cycles = b.cycles;
    irq_budget = b.irq_budget;
  }

(** Publish CPU [c]'s bank-local effects from a resulting state. The
    state's memory is ignored — memory is committed page-wise via
    {!set_mem}/{!Memory.blit_page} by whoever owns the locks. *)
let commit_bank t c (s : State.t) =
  check_cpu t c;
  let banks = Array.copy t.banks in
  banks.(c) <- bank_of_state s;
  { t with banks }

let set_mem t mem = { t with mem }

let cycles t c =
  check_cpu t c;
  t.banks.(c).cycles

(** Charge cycles to one CPU's bank without building a full view. *)
let charge t c n =
  check_cpu t c;
  let banks = Array.copy t.banks in
  banks.(c) <- { banks.(c) with cycles = banks.(c).cycles + n };
  { t with banks }

let max_cycles t =
  Array.fold_left (fun a b -> max a b.cycles) 0 t.banks

let total_cycles t = Array.fold_left (fun a b -> a + b.cycles) 0 t.banks
