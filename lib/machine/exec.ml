(** User-mode execution.

    The paper's machine model runs enclave code in user mode under the
    page table in TTBR0, taking an exception (SVC, interrupt, or fault)
    to end each burst of execution. Here we execute flat programs
    ({!Insn.fop}) fetched from enclave memory through the page table —
    code pages are ordinary measured data pages — with every data access
    translated and permission-checked, and external interrupts modelled
    by a step budget ([State.irq_budget]).

    Native programs: a page beginning with {!native_magic} names a
    registered native service by id instead of carrying bytecode. These
    model enclaves (like the notary) whose inner loops would be
    impractical in bytecode; they receive the same translated view of
    memory and must encode any resumable state into registers and enclave
    memory, exactly as real code would. *)

type fault = Alignment | Translation | Permission | Prefetch | Undef_insn
[@@deriving eq, show { with_path = false }]

type event =
  | Ev_svc of Word.t  (** SVC taken; immediate is the call hint *)
  | Ev_irq
  | Ev_fiq
  | Ev_fault of fault
[@@deriving eq, show { with_path = false }]

(** First word of an enclave code page: bytecode program ("KODC"). *)
let code_magic = Word.of_int 0x4B4F4443

(** First word of a native-service code page ("KONV"). *)
let native_magic = Word.of_int 0x4B4F4E56

(* -- Translated user view of memory ----------------------------------- *)

module Uview = struct
  (** Loads and stores as issued by user-mode code: virtual addresses,
      translated through the enclave table in TTBR0, permission-checked.
      Also usable by native programs, which keeps them honest: they can
      only touch memory their page table maps. *)

  let translate s va =
    match Ptable.translate s.State.mem ~ttbr:s.State.ttbr0_s va with
    | None -> Error Translation
    | Some f -> Ok f

  let load s va =
    if not (Word.is_aligned va) then Error Alignment
    else
      match translate s va with
      | Error f -> Error f
      | Ok f -> Ok (Memory.load s.State.mem f.Ptable.pa)

  let store s va v =
    if not (Word.is_aligned va) then Error Alignment
    else
      match translate s va with
      | Error f -> Error f
      | Ok f ->
          if not f.Ptable.perms.Ptable.w then Error Permission
          else Ok (State.store s f.Ptable.pa v)

  (** Fetch one word with execute permission (instruction fetch). *)
  let fetch s va =
    if not (Word.is_aligned va) then Error Prefetch
    else
      match translate s va with
      | Error _ -> Error Prefetch
      | Ok f ->
          if not f.Ptable.perms.Ptable.x then Error Prefetch
          else Ok (Memory.load s.State.mem f.Ptable.pa)
end

type native_outcome = { nstate : State.t; nevent : event }

(** A native service: runs on the machine state (accessing memory only
    through {!Uview}) and reports how its burst of execution ended. *)
type native = State.t -> native_outcome

(** What an entry-point page contains. *)
type code_image =
  | Bytecode of Insn.fop array
  | Native_ref of int
  | Bad_image  (** unrecognised or undecodable — prefetch abort *)

(* -- Image fetch and the decoded-program cache ------------------------- *)

(* What one page-sized piece of an image fetch depended on: the virtual
   address we translated, where it landed, and the identity of the
   memory chunk backing that physical page. Replaying the translation
   and finding the same frame and the same (never-mutated) chunk proves
   a cached decode would come out identical. *)
type image_dep = { fp_va : Word.t; fp_pa : Word.t; fp_page : Memory.page option }

type cache_entry = {
  ce_entry_va : Word.t;
  ce_deps : image_dep list;
  ce_image : code_image;
}

type image_cache = { mutable entries : cache_entry list (* MRU first *) }

let image_cache () = { entries = [] }

(* Keep a handful of programs: the refinement harness stages a few probe
   programs per world and re-enters them for every trial burst. *)
let cache_capacity = 8

exception Fetch_fail

(* Fetch [n] execute-permitted words from word-aligned [va], one
   translation and one bulk load per virtual page. Equivalent to [n]
   single-word [Uview.fetch]es: translation and the execute bit are
   per-page properties, and any per-word failure is a per-page failure. *)
let fetch_exec_range s va n =
  let out = Array.make n Word.zero in
  let deps = ref [] in
  let cur = ref (Word.to_int va) and pos = ref 0 and left = ref n in
  while !left > 0 do
    let off = (!cur lsr 2) land (Ptable.words_per_page - 1) in
    let span = min (Ptable.words_per_page - off) !left in
    let va_w = Word.of_int !cur in
    (match Uview.translate s va_w with
    | Error _ -> raise Fetch_fail
    | Ok f ->
        if not f.Ptable.perms.Ptable.x then raise Fetch_fail;
        let pa = f.Ptable.pa in
        let ws = Memory.load_range_array s.State.mem pa span in
        Array.blit ws 0 out !pos span;
        deps :=
          { fp_va = va_w; fp_pa = pa; fp_page = Memory.page_at s.State.mem pa }
          :: !deps);
    cur := (!cur + (4 * span)) land 0xFFFF_FFFF;
    pos := !pos + span;
    left := !left - span
  done;
  (out, List.rev !deps)

(** Read and decode the program at [entry_va] (header: magic, length in
    words, then the body), fetching through the page table. *)
let fetch_image_deps s ~entry_va =
  if not (Word.is_aligned entry_va) then (Bad_image, [])
  else
    match fetch_exec_range s entry_va 2 with
    | exception Fetch_fail -> (Bad_image, [])
    | hdr, hdeps ->
        if Word.equal hdr.(0) native_magic then (Native_ref (Word.to_int hdr.(1)), hdeps)
        else if Word.equal hdr.(0) code_magic then begin
          let n = Word.to_int hdr.(1) in
          if n < 0 || n > 4 * Ptable.words_per_page then (Bad_image, [])
          else
            match fetch_exec_range s (Word.add entry_va (Word.of_int 8)) n with
            | exception Fetch_fail -> (Bad_image, [])
            | body, bdeps -> (
                match Insn.decode_flat_array body with
                | Some prog -> (Bytecode prog, hdeps @ bdeps)
                | None -> (Bad_image, []))
        end
        else (Bad_image, [])

let fetch_image s ~entry_va = fst (fetch_image_deps s ~entry_va)

(* A cached image is reusable iff every page it was read from still
   translates to the same frame with execute permission and is still
   backed by the same chunk. Pure validation — chunk identity implies
   identical contents, hence an identical fetch-and-decode. *)
let deps_valid s deps =
  List.for_all
    (fun d ->
      match Uview.translate s d.fp_va with
      | Error _ -> false
      | Ok f ->
          f.Ptable.perms.Ptable.x
          && Word.equal f.Ptable.pa d.fp_pa
          && Memory.same_page (Memory.page_at s.State.mem d.fp_pa) d.fp_page)
    deps

let fetch_image_cached cache s ~entry_va =
  match
    List.find_opt
      (fun e -> Word.equal e.ce_entry_va entry_va && deps_valid s e.ce_deps)
      cache.entries
  with
  | Some e ->
      if not (match cache.entries with e' :: _ -> e' == e | [] -> false) then
        cache.entries <- e :: List.filter (fun e' -> e' != e) cache.entries;
      e.ce_image
  | None ->
      let image, deps = fetch_image_deps s ~entry_va in
      (* Only decoded bytecode is worth remembering; header-only images
         and failures are cheap to refetch. *)
      (match image with
      | Bytecode _ ->
          let keep =
            List.filteri
              (fun i e ->
                i < cache_capacity - 1
                && not (Word.equal e.ce_entry_va entry_va))
              cache.entries
          in
          cache.entries <- { ce_entry_va = entry_va; ce_deps = deps; ce_image = image } :: keep
      | Native_ref _ | Bad_image -> ());
      image

(* -- Bytecode interpretation ------------------------------------------ *)

let operand_value s = function
  | Insn.Reg r -> State.read_reg s r
  | Insn.Imm w -> w

let add_with_flags a b =
  let result = Word.add a b in
  let carry = Word.to_int a + Word.to_int b > 0xFFFF_FFFF in
  let sa = Word.bit a 31 and sb = Word.bit b 31 and sr = Word.bit result 31 in
  let overflow = sa = sb && sr <> sa in
  (result, carry, overflow)

let sub_with_flags a b =
  let result = Word.sub a b in
  let carry = Word.to_int a >= Word.to_int b (* NOT borrow *) in
  let sa = Word.bit a 31 and sb = Word.bit b 31 and sr = Word.bit result 31 in
  let overflow = sa <> sb && sr <> sa in
  (result, carry, overflow)

(** Execute one non-control instruction. [Ok] is the next state; SVC and
    faults surface as [Error] carrying the event and the state at the
    event (with the fault-address register set for data aborts). *)
let step_insn s (i : Insn.insn) : (State.t, event * State.t) result =
  let binop rd rn op f =
    let v = f (State.read_reg s rn) (operand_value s op) in
    Ok (State.write_reg s rd v)
  in
  let shift rd rn op f =
    let amount = Word.to_int (operand_value s op) land 0xFF in
    Ok (State.write_reg s rd (f (State.read_reg s rn) amount))
  in
  match i with
  | Mov (rd, op) -> Ok (State.write_reg s rd (operand_value s op))
  | Mvn (rd, op) -> Ok (State.write_reg s rd (Word.lognot (operand_value s op)))
  | Add (rd, rn, op) -> binop rd rn op Word.add
  | Sub (rd, rn, op) -> binop rd rn op Word.sub
  | Rsb (rd, rn, op) ->
      Ok (State.write_reg s rd (Word.sub (operand_value s op) (State.read_reg s rn)))
  | Mul (rd, rn, rm) ->
      Ok (State.write_reg s rd (Word.mul (State.read_reg s rn) (State.read_reg s rm)))
  | And_ (rd, rn, op) -> binop rd rn op Word.logand
  | Orr (rd, rn, op) -> binop rd rn op Word.logor
  | Eor (rd, rn, op) -> binop rd rn op Word.logxor
  | Bic (rd, rn, op) -> binop rd rn op (fun a b -> Word.logand a (Word.lognot b))
  | Lsl (rd, rn, op) -> shift rd rn op Word.shift_left
  | Lsr (rd, rn, op) -> shift rd rn op Word.shift_right_logical
  | Asr (rd, rn, op) -> shift rd rn op Word.shift_right_arith
  | Ror (rd, rn, op) -> shift rd rn op Word.rotate_right
  | Cmp (rn, op) ->
      let result, carry, overflow =
        sub_with_flags (State.read_reg s rn) (operand_value s op)
      in
      Ok { s with State.cpsr = Psr.set_flags s.State.cpsr ~result ~carry ~overflow }
  | Cmn (rn, op) ->
      let result, carry, overflow =
        add_with_flags (State.read_reg s rn) (operand_value s op)
      in
      Ok { s with State.cpsr = Psr.set_flags s.State.cpsr ~result ~carry ~overflow }
  | Tst (rn, op) ->
      let result = Word.logand (State.read_reg s rn) (operand_value s op) in
      let cpsr =
        Psr.set_flags s.State.cpsr ~result ~carry:s.State.cpsr.Psr.c
          ~overflow:s.State.cpsr.Psr.v
      in
      Ok { s with State.cpsr }
  | Ldr (rd, rn, op) -> (
      let va = Word.add (State.read_reg s rn) (operand_value s op) in
      match Uview.load s va with
      | Error f -> Error (Ev_fault f, { s with State.far = va })
      | Ok v -> Ok (State.write_reg s rd v))
  | Str (rd, rn, op) -> (
      let va = Word.add (State.read_reg s rn) (operand_value s op) in
      match Uview.store s va (State.read_reg s rd) with
      | Error f -> Error (Ev_fault f, { s with State.far = va })
      | Ok s -> Ok s)
  | Svc imm -> Error (Ev_svc imm, s)
  | Udf -> Error (Ev_fault Undef_insn, s)
  | Nop -> Ok s

(** Run the bytecode program from flat index [start_pc] until an event.
    [fuel] bounds total steps (exhaustion models a timer interrupt).
    On return, [State.upc] holds the flat index at which execution
    stopped — the resumption PC. [probe], if given, observes the number
    of instructions retired in this burst — the machine layer's
    telemetry hook (it never affects execution or cycle charging).
    [inject] is the fault-injection hook, consulted at every
    instruction boundary before the interrupt check: it may perturb
    the machine state (modelling asynchronous hardware) and force an
    event, which ends the burst exactly as a real interrupt would. *)
let run_bytecode ?probe ?inject s (prog : Insn.fop array) ~start_pc ~fuel =
  let retired = ref 0 in
  let finish (s, ev) =
    (match probe with Some f -> f ~steps:!retired | None -> ());
    (s, ev)
  in
  let n = Array.length prog in
  let rec loop s pc fuel =
    let s, forced =
      match inject with None -> (s, None) | Some f -> f s
    in
    match forced with
    | Some ev -> ({ s with State.upc = Word.of_int pc }, ev)
    | None ->
    if fuel <= 0 then ({ s with State.upc = Word.of_int pc }, Ev_irq)
    else
      match s.State.irq_budget with
      | Some 0 -> ({ s with State.upc = Word.of_int pc }, Ev_irq)
      | budget ->
          let s = { s with State.irq_budget = Option.map (fun b -> b - 1) budget } in
          if pc < 0 || pc >= n then
            ({ s with State.upc = Word.of_int pc }, Ev_fault Prefetch)
          else
            let op = prog.(pc) in
            let s = State.charge (Insn.fop_cost op) s in
            incr retired;
            (match op with
            | Insn.FJmp t -> loop s t (fuel - 1)
            | Insn.FJcc (c, t) ->
                if Insn.holds c s.State.cpsr then loop s t (fuel - 1)
                else loop s (pc + 1) (fuel - 1)
            | Insn.FI i -> (
                match step_insn s i with
                | Ok s -> loop s (pc + 1) (fuel - 1)
                | Error (ev, s) ->
                    (* For SVC the banked PC points past the SVC so a
                       return resumes after it; faults report the
                       faulting instruction itself (so a dispatcher can
                       fix the mapping and retry it). *)
                    let resume_pc =
                      match ev with Ev_svc _ -> pc + 1 | _ -> pc
                    in
                    ({ s with State.upc = Word.of_int resume_pc }, ev)))
  in
  finish (loop s start_pc fuel)

(** Execute user code at/under [entry_va] starting from flat index
    [start_pc], dispatching native services through [native]. [cache],
    if given, memoises decoded bytecode across bursts (validated against
    the page table and page chunk identity on every entry). *)
let run ?probe ?inject ?cache s ~entry_va ~start_pc ~fuel
    ~(native : int -> native option) =
  let image =
    match cache with
    | Some c -> fetch_image_cached c s ~entry_va
    | None -> fetch_image s ~entry_va
  in
  match image with
  | Bad_image -> (s, Ev_fault Prefetch)
  | Native_ref id -> (
      match native id with
      | None -> (s, Ev_fault Undef_insn)
      | Some prog ->
          let { nstate; nevent } = prog s in
          (* Native bursts retire no modelled instructions. *)
          (match probe with Some f -> f ~steps:0 | None -> ());
          (nstate, nevent))
  | Bytecode prog -> run_bytecode ?probe ?inject s prog ~start_pc ~fuel
