(** Physical memory: page-granular, copy-on-write.

    Matches the paper's memory model (§5.1): only aligned word accesses
    exist, so distinct addresses are independent; unmapped addresses
    read as zero. The representation is an immutable map from page
    number to immutable 1024-word chunks: [store] copies the affected
    chunk, whole-page operations swap chunks, and an all-zero chunk is
    never stored (canonical form), so states that read equal are
    structurally equal and whole-machine snapshots and comparisons (as
    the noninterference harness performs constantly) stay cheap. *)

type t

val empty : t

val page_words : int
(** Words per page (1024 — a 4 kB page of 32-bit words). Mirrors
    [Ptable.words_per_page]; kept separately because [Ptable] depends
    on this module. *)

exception Unaligned of Word.t
(** Raised by any access to a non-word-aligned address. *)

val load : t -> Word.t -> Word.t
val store : t -> Word.t -> Word.t -> t
(** Storing zero erases the word, so states that read equal are
    structurally equal. *)

val load_range : t -> Word.t -> int -> Word.t list
(** [load_range t a n] reads [n] consecutive words from [a]. *)

val load_range_array : t -> Word.t -> int -> Word.t array
(** As [load_range], but returning a fresh array — preferred for
    callers that index or iterate (page-table walks, image decode). *)

val store_range : t -> Word.t -> Word.t list -> t
val store_range_array : t -> Word.t -> Word.t array -> t
(** [store_range_array t a ws] stores all of [ws] from [a] with one
    chunk copy per touched page (page-aligned full pages don't copy the
    old chunk at all). The caller keeps ownership of [ws]. *)

val zero_range : t -> Word.t -> int -> t
(** Zero [n] words from the given address — page scrubbing. Whole-page
    spans drop the chunk outright. *)

val copy_range : t -> src:Word.t -> dst:Word.t -> int -> t
(** Word-by-word forward copy semantics; page-aligned whole-page copies
    share the source chunk physically. *)

val to_bytes_be : t -> Word.t -> int -> string
(** Big-endian serialisation of [n] words — the form fed to the
    measurement hash. Single pass, one allocation. *)

val of_bytes_be : t -> Word.t -> string -> t
(** @raise Invalid_argument if the string length is not a multiple
    of 4. *)

val absorb_range :
  t -> Word.t -> int -> init:'a -> f:('a -> Word.t array -> int -> int -> 'a) -> 'a
(** [absorb_range t a n ~init ~f] folds [f acc words first count] over
    the page segments covering [n] words from [a], exposing each page's
    word array directly (a shared all-zero array for absent pages) so
    hashing needs no intermediate strings. [f] must not mutate the
    array or retain it beyond the call. *)

val equal_range : t -> t -> Word.t -> int -> bool
(** Do two memories agree on the [n] words from the given base?
    (Page-level observational equivalence.) Physically shared chunks
    compare in O(1). *)

val equal : t -> t -> bool

val restrict : t -> f:(int -> bool) -> t
(** Keep only words whose address satisfies [f] — e.g. "insecure memory
    only" when building the adversary's view. Pages left intact keep
    their chunk physically. *)

val fold : (int -> Word.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over explicitly-stored (nonzero) words in address order. *)

val cardinal : t -> int
(** Number of explicitly-stored words (debugging aid). *)

val pp : Format.formatter -> t -> unit

val diff_pages : t -> t -> int list
(** Page numbers on which the two memories differ, ascending. Pages
    whose chunks are physically shared are skipped without comparison,
    so diffing a state against the snapshot it was derived from costs
    O(pages written). Page numbers are physical-address page indices
    ([pa lsr 12]), not PageDB page numbers. *)

val blit_page : src:t -> t -> int -> t
(** [blit_page ~src dst pg] rebinds (physical) page [pg] of [dst] to
    [src]'s chunk for that page, sharing it physically — the write-set
    install primitive of the multi-core stepper. *)

(** {2 Page identity}

    Chunk identity for content-keyed caches: if [same_page] holds for
    the pages backing an address at two points in time, the page's
    contents are unchanged ([store] never mutates a published chunk).
    The converse is false — contents may match across distinct chunks —
    so identity may only be used to {e validate} cached work, never to
    distinguish states. *)

type page

val page_at : t -> Word.t -> page option
(** The chunk backing the page containing the given address; [None] for
    the canonical all-zero page. *)

val same_page : page option -> page option -> bool
(** Physical identity of chunks ([None] = the zero page). *)
