(** N-CPU machine state: per-CPU register banks sharing one
    copy-on-write memory.

    The split of {!State.t} the multi-core monitor steps over: each CPU
    owns a {e bank} (registers, PSR/mode/world, MMU base registers,
    TLB, user PC, fault address, cycles, interrupt budget); {!Memory.t}
    is shared. [view] assembles a single-core [State.t] for one CPU so
    the unmodified monitor runs against it; [commit_bank] publishes the
    bank-local half of a resulting state, while memory effects are
    published page-by-page by the stepper's commit phase. *)

type bank = {
  regs : Regs.t;
  cpsr : Psr.t;
  world : Mode.world;
  ttbr0_s : Word.t;
  ttbr1_s : Word.t;
  ttbr0_ns : Word.t;
  tlb : Tlb.t;
  scr_ns : bool;
  upc : Word.t;
  far : Word.t;
  cycles : int;
  irq_budget : int option;
}

type t = { banks : bank array; mem : Memory.t }

val create : cpus:int -> State.t -> t
(** Boot an N-core machine from a single-core state: every CPU starts
    with a copy of the boot bank; memory is shared.
    @raise Invalid_argument when [cpus < 1]. *)

val cpus : t -> int

val view : t -> int -> State.t
(** The full architectural state CPU [c] observes (bank + shared
    memory). @raise Invalid_argument on an unknown CPU. *)

val commit_bank : t -> int -> State.t -> t
(** Publish CPU [c]'s bank from a resulting state; the state's memory
    is deliberately ignored. *)

val set_mem : t -> Memory.t -> t
val cycles : t -> int -> int
val charge : t -> int -> int -> t
(** [charge t c n] adds [n] cycles to CPU [c]'s bank. *)

val max_cycles : t -> int
(** The wall-clock of the parallel execution under the cycle model: the
    maximum over CPUs. *)

val total_cycles : t -> int
(** Aggregate work: the sum over CPUs. *)
