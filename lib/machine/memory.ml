(** Physical memory: page-granular, copy-on-write.

    Matching the paper's memory model (§5.1): reasoning (and here,
    execution) only ever touches aligned words, so accesses to distinct
    addresses are independent; unmapped addresses read as zero, modelling
    RAM with unconstrained-but-fixed initial contents.

    The monitor's semantics are page-granular — the PageDB tracks 4 kB
    pages, MapSecure hashes whole pages, Remove scrubs them — so the
    representation is too: an immutable map from page number to an
    immutable 1024-word chunk. [store] copies the affected chunk
    (copy-on-write); everything else is persistent, so whole-machine
    snapshots are O(1) and the noninterference harness can compare
    states cheaply.

    Canonical form: an all-zero chunk is never stored (each chunk
    carries its nonzero-word count so stores that zero the last live
    word drop the binding in O(1) beyond the copy). Two memories that
    read equal therefore have equal key sets and [equal] stays both
    semantic and structural, exactly as with the old per-word map.
    Chunks are never mutated after being published in a map, so
    whole-page copies share chunks physically and [equal]/[equal_range]
    short-circuit on physical equality. *)

module Page_map = Map.Make (Int)

(** Words per 4 kB page. Kept here (not in [Ptable], which depends on
    this module) and asserted equal to [Ptable.words_per_page] by the
    machine test suite. *)
let page_words = 1024

let page_shift = 12
let byte_mask = 0xFFFF_FFFF

(* A page's contents plus its nonzero-word count. [data] is immutable
   by convention: never written after the chunk is added to a map. *)
type chunk = { data : Word.t array; nz : int }

type t = chunk Page_map.t

(** Chunk identity, for callers that cache work keyed on page contents
    (e.g. the decoded-program cache in [Uexec]): physical equality of
    chunks implies equal contents. *)
type page = chunk

let empty : t = Page_map.empty

exception Unaligned of Word.t

let check_aligned a = if not (Word.is_aligned a) then raise (Unaligned a)

(* The canonical all-zero page, handed out read-only wherever an absent
   page must be observed wordwise. Never stored in a map, never written. *)
let zero_data : Word.t array = Array.make page_words Word.zero

let page_of ai = ai lsr page_shift
let word_index ai = (ai lsr 2) land (page_words - 1)

let load t a =
  check_aligned a;
  let ai = Word.to_int a in
  match Page_map.find_opt (page_of ai) t with
  | None -> Word.zero
  | Some c -> c.data.(word_index ai)

let store t a v =
  check_aligned a;
  let ai = Word.to_int a in
  let pg = page_of ai and i = word_index ai in
  match Page_map.find_opt pg t with
  | None ->
      if Word.equal v Word.zero then t
      else begin
        let data = Array.make page_words Word.zero in
        data.(i) <- v;
        Page_map.add pg { data; nz = 1 } t
      end
  | Some c ->
      let old = c.data.(i) in
      if Word.equal old v then t
      else
        let nz =
          c.nz
          + (if Word.equal v Word.zero then 0 else 1)
          - if Word.equal old Word.zero then 0 else 1
        in
        if nz = 0 then Page_map.remove pg t
        else begin
          let data = Array.copy c.data in
          data.(i) <- v;
          Page_map.add pg { data; nz } t
        end

(* Walk the [n] words from [a] as (page, first word index, word count)
   segments, in address order. Address arithmetic wraps at 2^32 exactly
   as repeated [Word.add] did. Callers check [n > 0]. *)
let iter_segments a n f =
  check_aligned a;
  let addr = ref (Word.to_int a) and left = ref n in
  while !left > 0 do
    let ai = !addr in
    let i = word_index ai in
    let span = min (page_words - i) !left in
    f (page_of ai) i span;
    addr := (ai + (4 * span)) land byte_mask;
    left := !left - span
  done

let count_nz data =
  let n = ref 0 in
  Array.iter (fun w -> if not (Word.equal w Word.zero) then incr n) data;
  !n

(* Rebind page [pg] to the freshly built [data] (ownership transferred),
   keeping the no-all-zero-chunk canonical form. *)
let put_page t pg data =
  let nz = count_nz data in
  if nz = 0 then Page_map.remove pg t else Page_map.add pg { data; nz } t

(* A fresh mutable copy of page [pg]'s contents. *)
let page_copy t pg =
  match Page_map.find_opt pg t with
  | None -> Array.make page_words Word.zero
  | Some c -> Array.copy c.data

let load_range_array t a n =
  if n <= 0 then [||]
  else begin
    let out = Array.make n Word.zero in
    let pos = ref 0 in
    iter_segments a n (fun pg i span ->
        (match Page_map.find_opt pg t with
        | None -> ()
        | Some c -> Array.blit c.data i out !pos span);
        pos := !pos + span);
    out
  end

(** [load_range t a n] reads [n] consecutive words starting at [a]. *)
let load_range t a n = Array.to_list (load_range_array t a n)

let store_range_array t a ws =
  let n = Array.length ws in
  if n = 0 then t
  else begin
    let m = ref t and pos = ref 0 in
    iter_segments a n (fun pg i span ->
        let data =
          if i = 0 && span = page_words then Array.sub ws !pos page_words
          else begin
            let d = page_copy !m pg in
            Array.blit ws !pos d i span;
            d
          end
        in
        m := put_page !m pg data;
        pos := !pos + span);
    !m
  end

let store_range t a ws = store_range_array t a (Array.of_list ws)

(** Zero [n] words from [a] — e.g. scrubbing a page before handing it to
    an enclave ([MapData] zero-fills, §4). Whole-page spans just drop
    the chunk. *)
let zero_range t a n =
  if n <= 0 then t
  else begin
    let m = ref t in
    iter_segments a n (fun pg i span ->
        if i = 0 && span = page_words then m := Page_map.remove pg !m
        else
          match Page_map.find_opt pg !m with
          | None -> ()
          | Some c ->
              let live = ref 0 in
              for j = i to i + span - 1 do
                if not (Word.equal c.data.(j) Word.zero) then incr live
              done;
              if !live > 0 then
                if !live = c.nz then m := Page_map.remove pg !m
                else begin
                  let d = Array.copy c.data in
                  Array.fill d i span Word.zero;
                  m := Page_map.add pg { data = d; nz = c.nz - !live } !m
                end);
    !m
  end

let copy_range t ~src ~dst n =
  if n <= 0 then t
  else if
    Word.to_int src land (page_words * 4 - 1) = 0
    && Word.to_int dst land (page_words * 4 - 1) = 0
    && n mod page_words = 0
  then begin
    (* Whole aligned pages: rebind the destination to the source chunk —
       physical sharing, so a later [equal_range] of the two pages
       short-circuits. Pages are copied in ascending order reading from
       the updated memory, which coincides with the old word-by-word
       forward copy (within one iteration source and destination pages
       are distinct unless identical). *)
    let m = ref t in
    let pg_mask = byte_mask lsr page_shift in
    for k = 0 to (n / page_words) - 1 do
      let spg = (page_of (Word.to_int src) + k) land pg_mask
      and dpg = (page_of (Word.to_int dst) + k) land pg_mask in
      (m :=
         match Page_map.find_opt spg !m with
         | None -> Page_map.remove dpg !m
         | Some c -> Page_map.add dpg c !m)
    done;
    !m
  end
  else
    (* Rare unaligned/partial copies keep the exact word-by-word forward
       semantics (overlapping ranges propagate). *)
    let rec go t src dst i =
      if i = n then t
      else
        go
          (store t dst (load t src))
          (Word.add src (Word.of_int 4))
          (Word.add dst (Word.of_int 4))
          (i + 1)
    in
    go t src dst 0

(** Big-endian byte serialisation of [n] words from [a]; used to feed
    page contents into the measurement hash. Single pass, one
    allocation. *)
let to_bytes_be t a n =
  if n <= 0 then ""
  else begin
    let b = Bytes.make (4 * n) '\000' in
    let pos = ref 0 in
    iter_segments a n (fun pg i span ->
        (match Page_map.find_opt pg t with
        | None -> ()
        | Some c ->
            for j = 0 to span - 1 do
              let v = Word.to_int c.data.(i + j) in
              let off = 4 * (!pos + j) in
              Bytes.unsafe_set b off (Char.unsafe_chr ((v lsr 24) land 0xFF));
              Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
              Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
              Bytes.unsafe_set b (off + 3) (Char.unsafe_chr (v land 0xFF))
            done);
        pos := !pos + span);
    Bytes.unsafe_to_string b
  end

let of_bytes_be t a s =
  if String.length s mod 4 <> 0 then invalid_arg "Memory.of_bytes_be: ragged length";
  let n = String.length s / 4 in
  if n = 0 then t
  else begin
    let m = ref t and pos = ref 0 in
    iter_segments a n (fun pg i span ->
        let d =
          if i = 0 && span = page_words then Array.make page_words Word.zero
          else page_copy !m pg
        in
        for j = 0 to span - 1 do
          d.(i + j) <- Word.of_bytes_be s (4 * (!pos + j))
        done;
        m := put_page !m pg d;
        pos := !pos + span);
    !m
  end

(** Feed [n] words from [a] into an accumulator one page segment at a
    time: [f acc words first count] sees the chunk's array directly
    (the canonical zero page for absent pages) — no intermediate
    strings. The array must not be mutated. *)
let absorb_range t a n ~init ~f =
  if n <= 0 then init
  else begin
    let acc = ref init in
    iter_segments a n (fun pg i span ->
        let data =
          match Page_map.find_opt pg t with
          | None -> zero_data
          | Some c -> c.data
        in
        acc := f !acc data i span);
    !acc
  end

(** [equal_range a b base n]: do [a] and [b] agree on the [n] words from
    [base]? Used by page-level observational equivalence. Chunks shared
    physically (snapshots, whole-page copies) compare in O(1). *)
let equal_range ma mb base n =
  if n <= 0 then true
  else begin
    let ok = ref true in
    (try
       iter_segments base n (fun pg i span ->
           match (Page_map.find_opt pg ma, Page_map.find_opt pg mb) with
           | None, None -> ()
           | Some ca, Some cb when ca == cb || ca.data == cb.data -> ()
           | oa, ob ->
               let da = match oa with Some c -> c.data | None -> zero_data
               and db = match ob with Some c -> c.data | None -> zero_data in
               for j = i to i + span - 1 do
                 if not (Word.equal da.(j) db.(j)) then begin
                   ok := false;
                   raise Exit
                 end
               done)
     with Exit -> ());
    !ok
  end

let chunk_equal c1 c2 =
  c1 == c2 || c1.data == c2.data
  || c1.nz = c2.nz
     &&
     let rec go i =
       i >= page_words || (Word.equal c1.data.(i) c2.data.(i) && go (i + 1))
     in
     go 0

(* Canonical form (no all-zero chunk) makes semantic equality structural:
   equal memories have equal page sets. *)
let equal = Page_map.equal chunk_equal

(** Keep only the words whose address satisfies [f] (e.g. "insecure
    memory only" when comparing adversary-visible state). Unmapped
    words read as zero, so explicit zero stores never survive a store
    round-trip and restriction is well-defined on the quotient. Pages
    whose live words all survive keep their chunk physically. *)
let restrict t ~f =
  Page_map.filter_map
    (fun pg c ->
      let base = pg lsl page_shift in
      let dropped = ref 0 in
      Array.iteri
        (fun i w ->
          if not (Word.equal w Word.zero) && not (f (base lor (4 * i))) then
            incr dropped)
        c.data;
      if !dropped = 0 then Some c
      else if !dropped = c.nz then None
      else begin
        let d = Array.copy c.data in
        Array.iteri
          (fun i w ->
            if not (Word.equal w Word.zero) && not (f (base lor (4 * i))) then
              d.(i) <- Word.zero)
          c.data;
        Some { data = d; nz = c.nz - !dropped }
      end)
    t

(** Fold over explicitly-stored (nonzero) words in address order. *)
let fold f t acc =
  Page_map.fold
    (fun pg c acc ->
      let base = pg lsl page_shift in
      let acc = ref acc in
      Array.iteri
        (fun i w ->
          if not (Word.equal w Word.zero) then acc := f (base lor (4 * i)) w !acc)
        c.data;
      !acc)
    t acc

(** Number of explicitly-stored (nonzero) words; a debugging aid. *)
let cardinal t = Page_map.fold (fun _ c n -> n + c.nz) t 0

let pp fmt t =
  Page_map.iter
    (fun pg c ->
      Array.iteri
        (fun i w ->
          if not (Word.equal w Word.zero) then
            Format.fprintf fmt "[%a]=%a@ " Word.pp
              (Word.of_int ((pg lsl page_shift) lor (4 * i)))
              Word.pp w)
        c.data)
    t

(** Page numbers on which two memories may differ, ascending. Physically
    shared chunks are skipped in O(1) without comparing contents, so
    diffing a state against a snapshot it was derived from costs O(pages
    actually written). The result can overapproximate (distinct chunks
    with equal contents are reported only when a word differs — the
    word-level comparison below keeps it exact). *)
let diff_pages ma mb =
  let out = ref [] in
  ignore
    (Page_map.merge
       (fun pg oa ob ->
         (match (oa, ob) with
         | None, None -> ()
         | Some ca, Some cb when chunk_equal ca cb -> ()
         | _ -> out := pg :: !out);
         None)
       ma mb);
  List.rev !out

(** [blit_page ~src dst pg] rebinds page [pg] of [dst] to [src]'s chunk
    for that page — O(log pages), sharing the chunk physically. The
    write-set install primitive: commit a validated page image into the
    current global memory without touching any other page. *)
let blit_page ~src dst pg =
  match Page_map.find_opt pg src with
  | None -> Page_map.remove pg dst
  | Some c -> Page_map.add pg c dst

let page_at t a = Page_map.find_opt (page_of (Word.to_int a)) t

let same_page p q =
  match (p, q) with
  | None, None -> true
  | Some a, Some b -> a == b || a.data == b.data
  | _ -> false
