(** The modelled instruction set.

    Mirrors the paper's split (§5.1) between structured source programs
    and the assembly a trusted printer emits:

    - {!stmt} is the structured form programs are written in (the
      analogue of Vale procedures): straight-line instructions plus
      if/while with condition-code guards;
    - {!fop} is the flat form with explicit branch targets produced by
      {!flatten}; flat programs have a real program counter (an index),
      which is what gets banked into LR when an exception interrupts
      user code;
    - {!encode_flat}/{!decode_flat} give flat programs a word-level
      binary encoding, so enclave code lives in — and is measured as
      part of — ordinary data pages. *)

type cond = EQ | NE | CS | CC | MI | PL | HI | LS | GE | LT | GT | LE | AL

val equal_cond : cond -> cond -> bool
val compare_cond : cond -> cond -> int
val pp_cond : Format.formatter -> cond -> unit
val show_cond : cond -> string

type operand = Reg of Regs.reg | Imm of Word.t

val equal_operand : operand -> operand -> bool
val pp_operand : Format.formatter -> operand -> unit

type insn =
  | Mov of Regs.reg * operand
  | Mvn of Regs.reg * operand  (** bitwise-not move *)
  | Add of Regs.reg * Regs.reg * operand
  | Sub of Regs.reg * Regs.reg * operand
  | Rsb of Regs.reg * Regs.reg * operand  (** reverse subtract *)
  | Mul of Regs.reg * Regs.reg * Regs.reg
  | And_ of Regs.reg * Regs.reg * operand
  | Orr of Regs.reg * Regs.reg * operand
  | Eor of Regs.reg * Regs.reg * operand
  | Bic of Regs.reg * Regs.reg * operand  (** bit clear *)
  | Lsl of Regs.reg * Regs.reg * operand
  | Lsr of Regs.reg * Regs.reg * operand
  | Asr of Regs.reg * Regs.reg * operand
  | Ror of Regs.reg * Regs.reg * operand
  | Cmp of Regs.reg * operand  (** sets NZCV *)
  | Cmn of Regs.reg * operand  (** compare negative: flags from rn + op *)
  | Tst of Regs.reg * operand  (** sets NZ from AND *)
  | Ldr of Regs.reg * Regs.reg * operand  (** rd := \[rn + ofs\] *)
  | Str of Regs.reg * Regs.reg * operand  (** \[rn + ofs\] := rd *)
  | Svc of Word.t  (** supervisor call into the monitor *)
  | Udf  (** permanently-undefined instruction (faults) *)
  | Nop

val equal_insn : insn -> insn -> bool

type stmt =
  | I of insn
  | If of cond * stmt list * stmt list
  | While of cond * stmt list

val equal_stmt : stmt -> stmt -> bool

(** Flat micro-ops: straight-line instructions plus explicit branches
    whose targets are absolute indices into the flat program. *)
type fop = FI of insn | FJmp of int | FJcc of cond * int

val equal_fop : fop -> fop -> bool

val negate : cond -> cond
(** @raise Invalid_argument on [AL]. *)

val holds : cond -> Psr.t -> bool
(** Evaluate a condition against the NZCV flags. *)

val flatten : stmt list -> fop array
(** Compile structured statements to flat form: [If] becomes a
    conditional branch over the then-block, [While] a backward loop. *)

val encode_flat : fop array -> Word.t list
val encode_program : stmt list -> Word.t list
(** [flatten] then [encode_flat]. *)

val decode_flat_array : Word.t array -> fop array option
(** [None] on any malformed word (unknown opcode, bad register field,
    truncated immediate): a guessed or corrupted code page never
    executes as garbage, it refuses to decode. Array-indexed so image
    fetch decodes straight from a bulk page read. *)

val decode_flat : Word.t list -> fop array option
(** List-input variant of {!decode_flat_array}. *)

val insn_cost : insn -> int
val fop_cost : fop -> int
