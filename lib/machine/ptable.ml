(** ARM short-descriptor page tables, as used by Komodo enclaves.

    Enclave address spaces cover the low 1 GB of virtual memory only: the
    enclave page table is loaded into TTBR0 which is configured (TTBCR.N)
    to translate just that range, while TTBR1 holds the monitor's static
    table (Figure 4). As in the paper, the model recognises exactly one
    format — 4 kB "small" pages in the short-descriptor format — and says
    nothing about user execution under any other encoding, which forces
    implementations to build conforming tables (§5.1).

    Model-level layout (mirroring Komodo's [KOM_DIR_ENTRIES] grouping of
    four coarse tables per second-level page):
    - a first-level table is 256 word entries, each covering 4 MB;
    - a second-level table page is 1024 word entries, each a 4 kB page;
    - VA bits: [29:22] first-level index, [21:12] second-level index,
      [11:0] page offset. *)

let page_size = 4096
let words_per_page = 1024
let l1_entries = 256
let l2_entries = 1024

(** Upper bound (exclusive) of enclave virtual addresses: 1 GB. *)
let va_limit = Word.of_int 0x4000_0000

let page_aligned w = Word.to_int w land (page_size - 1) = 0
let page_base w = Word.of_int (Word.to_int w land lnot (page_size - 1))

type perms = { w : bool; x : bool } [@@deriving eq, show { with_path = false }]

let r_only = { w = false; x = false }
let rw = { w = true; x = false }
let rx = { w = false; x = true }
let rwx = { w = true; x = true }

let l1_index va = Word.to_int (Word.extract va ~hi:29 ~lo:22)
let l2_index va = Word.to_int (Word.extract va ~hi:21 ~lo:12)
let page_offset va = Word.extract va ~hi:11 ~lo:0

(** First-level entry: bit 0 = present (coarse-table descriptor), bits
    [31:12] = physical base of the second-level table page. *)
let make_l1e ~l2pt_base =
  if not (page_aligned l2pt_base) then invalid_arg "Ptable.make_l1e: unaligned base";
  Word.logor l2pt_base Word.one

let decode_l1e e = if Word.bit e 0 then Some (page_base e) else None

(** Second-level (small page) entry.
    bit 1 = present, bit 0 = XN (execute never), bits [5:4] = AP
    (0b11 user read-write, 0b10 user read-only), bit 3 = NS
    (model-specific: set when the frame is insecure/shared memory),
    bits [31:12] = physical page base. *)
let make_l2e ~base ~ns perms =
  if not (page_aligned base) then invalid_arg "Ptable.make_l2e: unaligned base";
  let ap = if perms.w then 0b11 else 0b10 in
  Word.to_int base lor 2
  lor (if perms.x then 0 else 1)
  lor (ap lsl 4)
  lor (if ns then 8 else 0)
  |> Word.of_int

let decode_l2e e =
  if not (Word.bit e 1) then None
  else
    let base = page_base e in
    let ap = Word.to_int (Word.extract e ~hi:5 ~lo:4) in
    let perms = { w = ap = 0b11; x = not (Word.bit e 0) } in
    Some (base, Word.bit e 3, perms)

(** Result of a successful translation. *)
type frame = { pa : Word.t; ns : bool; perms : perms }

(** Walk the table rooted at [ttbr] (a physical page base holding the
    first-level table) for virtual address [va]. [None] models a
    translation fault. *)
let translate mem ~ttbr va =
  if not (Word.ult va va_limit) then None
  else
    let l1e = Memory.load mem (Word.add ttbr (Word.of_int (4 * l1_index va))) in
    match decode_l1e l1e with
    | None -> None
    | Some l2_base -> (
        let l2e = Memory.load mem (Word.add l2_base (Word.of_int (4 * l2_index va))) in
        match decode_l2e l2e with
        | None -> None
        | Some (pa_base, ns, perms) ->
            Some { pa = Word.add pa_base (page_offset va); ns; perms })

(** Every (virtual page base, physical page base, ns) mapped writable:
    the set the paper's user-mode model havocs when enclave code runs. *)
(* Both table walks read each table page as one bulk array rather than
   issuing 256×1024 single-word loads. *)
let walk_tables mem ~ttbr ~f =
  let l1 = Memory.load_range_array mem ttbr l1_entries in
  for i1 = 0 to l1_entries - 1 do
    match decode_l1e l1.(i1) with
    | None -> ()
    | Some l2_base ->
        let l2 = Memory.load_range_array mem l2_base l2_entries in
        for i2 = 0 to l2_entries - 1 do
          match decode_l2e l2.(i2) with
          | None -> ()
          | Some (pa, ns, perms) ->
              let va = Word.of_int ((i1 lsl 22) lor (i2 lsl 12)) in
              f ~va ~pa ~ns ~perms
        done
  done

let writable_pages mem ~ttbr =
  let acc = ref [] in
  walk_tables mem ~ttbr ~f:(fun ~va ~pa ~ns ~perms ->
      if perms.w then acc := (va, pa, ns) :: !acc);
  List.rev !acc

(** All present leaf mappings (used by PageDB well-formedness checks). *)
let all_mappings mem ~ttbr =
  let acc = ref [] in
  walk_tables mem ~ttbr ~f:(fun ~va ~pa ~ns ~perms ->
      acc := (va, pa, ns, perms) :: !acc);
  List.rev !acc
