(** Metrics registry: per-call counters, error-code counters, and
    cycle-cost histograms, aggregated from the event stream.

    Attach {!sink} to a monitor (alone or fanned out with a trace
    writer) and every [Smc_exit] / [Svc_exit] event updates a counter
    keyed ["smc.<Name>"] / ["svc.<Name>"] plus that key's cycle
    histogram; error names count separately. {!dump} renders the whole
    registry as JSON — the machine-readable face of the paper's
    Table 3 / Figure 5 measurements. *)

type hist = { mutable samples : int list; mutable n : int }

type t = {
  calls : (string, int ref) Hashtbl.t;
  errors : (string, int ref) Hashtbl.t;
  cycles : (string, hist) Hashtbl.t;
  events : (string, int ref) Hashtbl.t;  (** every event, by kind *)
}

let create () =
  {
    calls = Hashtbl.create 16;
    errors = Hashtbl.create 16;
    cycles = Hashtbl.create 16;
    events = Hashtbl.create 8;
  }

let incr_tbl tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let add_sample t key v =
  let h =
    match Hashtbl.find_opt t.cycles key with
    | Some h -> h
    | None ->
        let h = { samples = []; n = 0 } in
        Hashtbl.add t.cycles key h;
        h
  in
  h.samples <- v :: h.samples;
  h.n <- h.n + 1

(** Count an out-of-band occurrence (e.g. retired user instructions)
    under [key] in the event table. *)
let add_count t key n =
  match Hashtbl.find_opt t.events key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.events key (ref n)

let observe t (sev : Event.stamped) =
  incr_tbl t.events (Event.kind_name sev.Event.ev);
  match sev.Event.ev with
  | Event.Smc_exit { name; err_name; cycles; _ } ->
      let key = "smc." ^ name in
      incr_tbl t.calls key;
      incr_tbl t.errors err_name;
      add_sample t key cycles
  | Event.Svc_exit { name; err_name; cycles; _ } ->
      let key = "svc." ^ name in
      incr_tbl t.calls key;
      incr_tbl t.errors err_name;
      add_sample t key cycles
  | Event.Exception { kind } -> incr_tbl t.events ("exception." ^ kind)
  | _ -> ()

let sink t = Sink.make (observe t)

let merge_counters dst src =
  Hashtbl.iter
    (fun k r ->
      match Hashtbl.find_opt dst k with
      | Some d -> d := !d + !r
      | None -> Hashtbl.add dst k (ref !r))
    src

let merge_into dst src =
  merge_counters dst.calls src.calls;
  merge_counters dst.errors src.errors;
  merge_counters dst.events src.events;
  Hashtbl.iter
    (fun k (h : hist) ->
      match Hashtbl.find_opt dst.cycles k with
      | Some d ->
          d.samples <- h.samples @ d.samples;
          d.n <- d.n + h.n
      | None -> Hashtbl.add dst.cycles k { samples = h.samples; n = h.n })
    src.cycles

(* -- Readout ------------------------------------------------------------ *)

let call_count t name =
  match Hashtbl.find_opt t.calls name with Some r -> !r | None -> 0

let error_count t err_name =
  match Hashtbl.find_opt t.errors err_name with Some r -> !r | None -> 0

let event_count t kind =
  match Hashtbl.find_opt t.events kind with Some r -> !r | None -> 0

type stats = { count : int; p50 : int; p95 : int; max : int; mean : float }

let percentile sorted n q =
  (* Nearest-rank on the sorted sample array. *)
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let stats t name =
  match Hashtbl.find_opt t.cycles name with
  | None -> None
  | Some { samples; n } when n > 0 ->
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      Some
        {
          count = n;
          p50 = percentile sorted n 0.50;
          p95 = percentile sorted n 0.95;
          max = sorted.(n - 1);
          mean = float_of_int (List.fold_left ( + ) 0 samples) /. float_of_int n;
        }
  | Some _ -> None

let call_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.calls [] |> List.sort compare

(* -- JSON dump ---------------------------------------------------------- *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare

let dump t =
  let counter_obj tbl =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (sorted_bindings tbl))
  in
  let hist_obj =
    Json.Obj
      (List.filter_map
         (fun name ->
           match stats t name with
           | None -> None
           | Some s ->
               Some
                 ( name,
                   Json.Obj
                     [
                       ("count", Json.Int s.count);
                       ("p50", Json.Int s.p50);
                       ("p95", Json.Int s.p95);
                       ("max", Json.Int s.max);
                       ("mean", Json.Float s.mean);
                     ] ))
         (call_names t))
  in
  Json.Obj
    [
      ("calls", counter_obj t.calls);
      ("errors", counter_obj t.errors);
      ("cycles", hist_obj);
      ("events", counter_obj t.events);
    ]
