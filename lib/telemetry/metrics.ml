(** Metrics registry: per-call counters, error-code counters, and
    cycle-cost histograms, aggregated from the event stream.

    Attach {!sink} to a monitor (alone or fanned out with a trace
    writer) and every [Smc_exit] / [Svc_exit] event updates a counter
    keyed ["smc.<Name>"] / ["svc.<Name>"] plus that key's cycle
    histogram; error names count separately. Histograms are
    log-bucketed ({!Hist}), so a registry stays small over arbitrarily
    long campaigns and merges order-insensitively. {!dump} renders the
    whole registry as JSON — the machine-readable face of the paper's
    Table 3 / Figure 5 measurements. *)

type t = {
  calls : (string, int ref) Hashtbl.t;
  errors : (string, int ref) Hashtbl.t;
  cycles : (string, Hist.t) Hashtbl.t;
  events : (string, int ref) Hashtbl.t;  (** every event, by kind *)
}

let create () =
  {
    calls = Hashtbl.create 16;
    errors = Hashtbl.create 16;
    cycles = Hashtbl.create 16;
    events = Hashtbl.create 8;
  }

let incr_tbl tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let hist_for t key =
  match Hashtbl.find_opt t.cycles key with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.add t.cycles key h;
      h

let add_sample t key v = Hist.record (hist_for t key) v

(** Count an out-of-band occurrence (e.g. retired user instructions)
    under [key] in the event table. *)
let add_count t key n =
  match Hashtbl.find_opt t.events key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.events key (ref n)

let observe t (sev : Event.stamped) =
  incr_tbl t.events (Event.kind_name sev.Event.ev);
  match sev.Event.ev with
  | Event.Smc_exit { name; err_name; cycles; _ } ->
      let key = "smc." ^ name in
      incr_tbl t.calls key;
      incr_tbl t.errors err_name;
      add_sample t key cycles
  | Event.Svc_exit { name; err_name; cycles; _ } ->
      let key = "svc." ^ name in
      incr_tbl t.calls key;
      incr_tbl t.errors err_name;
      add_sample t key cycles
  | Event.Exception { kind } -> incr_tbl t.events ("exception." ^ kind)
  | _ -> ()

let sink t = Sink.make (observe t)

let merge_counters dst src =
  Hashtbl.iter
    (fun k r ->
      match Hashtbl.find_opt dst k with
      | Some d -> d := !d + !r
      | None -> Hashtbl.add dst k (ref !r))
    src

let merge_into dst src =
  merge_counters dst.calls src.calls;
  merge_counters dst.errors src.errors;
  merge_counters dst.events src.events;
  Hashtbl.iter (fun k h -> Hist.merge_into (hist_for dst k) h) src.cycles

(* -- Readout ------------------------------------------------------------ *)

let call_count t name =
  match Hashtbl.find_opt t.calls name with Some r -> !r | None -> 0

let error_count t err_name =
  match Hashtbl.find_opt t.errors err_name with Some r -> !r | None -> 0

let event_count t kind =
  match Hashtbl.find_opt t.events kind with Some r -> !r | None -> 0

type stats = {
  count : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
  max : int;
  mean : float;
}

let stats t name =
  match Hashtbl.find_opt t.cycles name with
  | Some h when Hist.count h > 0 ->
      Some
        {
          count = Hist.count h;
          p50 = Hist.p50 h;
          p90 = Hist.p90 h;
          p95 = Hist.p95 h;
          p99 = Hist.p99 h;
          max = Hist.max_value h;
          mean = Hist.mean h;
        }
  | _ -> None

let call_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.calls [] |> List.sort compare

(* -- JSON dump ---------------------------------------------------------- *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare

let dump t =
  let counter_obj tbl =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (sorted_bindings tbl))
  in
  let hist_obj =
    Json.Obj
      (List.filter_map
         (fun name ->
           match stats t name with
           | None -> None
           | Some s ->
               Some
                 ( name,
                   Json.Obj
                     [
                       ("count", Json.Int s.count);
                       ("p50", Json.Int s.p50);
                       ("p90", Json.Int s.p90);
                       ("p95", Json.Int s.p95);
                       ("p99", Json.Int s.p99);
                       ("max", Json.Int s.max);
                       ("mean", Json.Float s.mean);
                     ] ))
         (call_names t))
  in
  Json.Obj
    [
      ("calls", counter_obj t.calls);
      ("errors", counter_obj t.errors);
      ("cycles", hist_obj);
      ("events", counter_obj t.events);
    ]
