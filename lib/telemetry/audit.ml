(** Lifecycle audit log: replay a trace and check its orderliness.

    The event stream is a checkable record of the monitor's behaviour,
    in the way Guardian validates SGX enclave orderliness from the
    ecall/ocall sequence: a well-behaved run never Enters an enclave
    before Finalise, never touches an enclave after Remove, only
    Removes what was Stopped, and every page retyping starts from the
    type the page actually had. [check] replays a stamped event list
    against that state machine and returns every violation (empty =
    orderly). It is pure — it never consults the monitor — so it can
    audit a live ring buffer, a parsed JSONL file, or a hand-built
    trace in a test. *)

type violation = { index : int; at : int; message : string }

let pp_violation fmt v =
  Format.fprintf fmt "event %d (cycle %d): %s" v.index v.at v.message

(** Lifecycle states an address space moves through, as witnessed by
    [Enclave_lifecycle] events. *)
type asp_state = A_init | A_final | A_stopped | A_removed

let state_name = function
  | A_init -> "init"
  | A_final -> "final"
  | A_stopped -> "stopped"
  | A_removed -> "removed"

let check (trace : Event.stamped list) : violation list =
  let violations = ref [] in
  let page_types : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let asp_states : (int, asp_state) Hashtbl.t = Hashtbl.create 8 in
  (* The SMC currently open (events nest inside an Smc_entry/Smc_exit
     pair; Enter/Resume wrap the whole SVC loop, Figure 3). *)
  let open_smc = ref None in
  let prev_at = ref min_int in
  let report index at fmt = Printf.ksprintf (fun message -> violations := { index; at; message } :: !violations) fmt in
  let page_type page =
    match Hashtbl.find_opt page_types page with Some ty -> ty | None -> "free"
  in
  let asp_status asp = Hashtbl.find_opt asp_states asp in
  List.iteri
    (fun index { Event.at; ev } ->
      let bad fmt = report index at fmt in
      if at < !prev_at then
        bad "cycle stamp %d regresses below %d" at !prev_at;
      prev_at := at;
      (match ev with
      | Event.Smc_entry { call; name; _ } -> (
          match !open_smc with
          | Some (_, open_name) ->
              bad "SMC %s begins inside unfinished SMC %s" name open_name
          | None -> open_smc := Some (call, name))
      | Event.Smc_exit { call; name; _ } -> (
          match !open_smc with
          | Some (open_call, _) when open_call = call -> open_smc := None
          | Some (_, open_name) ->
              bad "SMC %s exits while %s is open" name open_name;
              open_smc := None
          | None -> bad "SMC %s exits without a matching entry" name)
      | Event.Svc_entry { name; _ } | Event.Svc_exit { name; _ } ->
          if !open_smc = None then bad "SVC %s outside any SMC" name
      | Event.Exception _ ->
          if !open_smc = None then bad "user exception outside any SMC"
      | Event.Page_transition { page; from_type; to_type } ->
          let cur = page_type page in
          if not (String.equal cur from_type) then
            bad "page %d retyped %s -> %s but its type is %s" page from_type
              to_type cur;
          Hashtbl.replace page_types page to_type
      | Event.Enclave_lifecycle { addrspace; stage } -> (
          let set s = Hashtbl.replace asp_states addrspace s in
          match stage with
          | Event.Ls_init -> (
              match asp_status addrspace with
              | Some (A_init | A_final | A_stopped) ->
                  bad "addrspace %d re-initialised while %s" addrspace
                    (state_name (Option.get (asp_status addrspace)));
                  set A_init
              | Some A_removed | None -> set A_init)
          | Event.Ls_finalise -> (
              match asp_status addrspace with
              | Some A_init -> set A_final
              | Some s ->
                  bad "addrspace %d finalised while %s" addrspace (state_name s)
              | None -> bad "addrspace %d finalised before init" addrspace)
          | Event.Ls_enter | Event.Ls_resume -> (
              let what = Event.stage_name stage in
              match asp_status addrspace with
              | Some A_final -> ()
              | Some A_removed ->
                  bad "addrspace %d %s after Remove" addrspace what
              | Some s ->
                  bad "addrspace %d %s before Finalise (state %s)" addrspace
                    what (state_name s)
              | None -> bad "addrspace %d %s before init" addrspace what)
          | Event.Ls_stop -> (
              match asp_status addrspace with
              | Some (A_final | A_stopped) -> set A_stopped
              | Some A_removed -> bad "addrspace %d stopped after Remove" addrspace
              | Some A_init ->
                  bad "addrspace %d stopped before Finalise" addrspace
              | None -> bad "addrspace %d stopped before init" addrspace)
          | Event.Ls_remove -> (
              match asp_status addrspace with
              | Some A_stopped -> set A_removed
              | Some A_removed ->
                  bad "addrspace %d removed twice" addrspace
              | Some s ->
                  bad "addrspace %d removed before Stop (state %s)" addrspace
                    (state_name s);
                  set A_removed
              | None -> bad "addrspace %d removed before init" addrspace))
      | Event.Fault_injected _ ->
          (* Injected faults are environment actions, not monitor
             lifecycle steps; orderliness constraints do not apply. *)
          ());
      ())
    trace;
  (match !open_smc with
  | Some (_, name) ->
      report (List.length trace) !prev_at "trace ends inside SMC %s" name
  | None -> ());
  List.rev !violations

let orderly trace = check trace = []
