(** Log-bucketed HDR-style histograms for cycle costs.

    Values below [2 * 32] are recorded exactly; each power-of-two range
    above is split into 32 sub-buckets, so quantiles carry at most ~3%
    relative error while the histogram is a small int array however
    large the samples. Count, sum, min and max are exact.

    {!merge_into} is an elementwise sum — commutative and associative
    — so per-worker histograms from a domain-parallel campaign reduce
    identically in any order (the `-j 1` / `-j N` byte-identity
    contract of {!Campaign.Agg}). *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one sample (negative values clamp to 0). *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** Exact (not bucketed). *)

val mean : t -> float
(** Exact ([sum/count]); 0.0 when empty. *)

val quantile : t -> float -> int
(** Nearest-rank quantile, reported as the containing bucket's upper
    bound (capped at the exact maximum): never understates. An empty
    histogram reports 0 — convenient for byte-diffed reports, but
    indistinguishable from a genuine 0-cycle quantile; callers that
    need the distinction use {!quantile_opt}.
    @raise Invalid_argument if the rank is outside [0, 1] (or NaN). *)

val quantile_opt : t -> float -> int option
(** As {!quantile}, but [None] on an empty histogram.
    @raise Invalid_argument if the rank is outside [0, 1] (or NaN). *)

val p50 : t -> int
val p90 : t -> int
val p95 : t -> int
val p99 : t -> int
val p999 : t -> int

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s buckets into [dst]; [src] is
    unchanged and shares no state with [dst] afterwards. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same bucket counts and exact stats, regardless of how either
    histogram was built or merged. *)

val bucket_of : int -> int
(** The bucket index a value lands in (exposed for tests). *)

val bucket_value : int -> int
(** Inclusive upper bound of a bucket (exposed for tests); monotone in
    the index and exact below 64. *)

val to_json : t -> Json.t
(** [{"count":..,"sum":..,"min":..,"max":..,"buckets":[[i,c],..]}] with
    buckets sparse and index-sorted. *)

val of_json : Json.t -> (t, string) result
