(** Pluggable event sinks.

    A sink is where the instrumented monitor sends its events. The
    [Null] sink is a distinguished constructor, not a no-op closure, so
    instrumentation sites can test {!is_null} with one branch and skip
    building the event entirely — the verified-path semantics (and the
    bench cycle numbers) are bit-for-bit unchanged when telemetry is
    off.

    Sinks are mutable objects shared by every copy of the (otherwise
    purely functional) monitor state; emission is the one side effect
    of the telemetry layer and charges no modelled cycles.

    A sink also carries a [flush] action so buffered backends (JSONL
    channels) can be drained at quiesce points — {!Os.teardown} and
    campaign completion call {!flush}, guaranteeing trace files are
    complete even if the process is about to exit. *)

let log_src = Logs.Src.create "komodo.telemetry" ~doc:"Komodo telemetry event stream"

module Log = (val Logs.src_log log_src)

type t = Null | Emit of { emit : Event.stamped -> unit; flush : unit -> unit }

let null = Null
let is_null = function Null -> true | Emit _ -> false
let emit t ev = match t with Null -> () | Emit { emit; _ } -> emit ev
let flush = function Null -> () | Emit { flush; _ } -> flush ()
let make ?(flush = fun () -> ()) f = Emit { emit = f; flush }

(** Fan one event stream out to several sinks ([Null]s are dropped);
    flushing the fanout flushes every live member. *)
let fanout sinks =
  match List.filter (fun s -> not (is_null s)) sinks with
  | [] -> Null
  | [ s ] -> s
  | live ->
      Emit
        {
          emit = (fun ev -> List.iter (fun s -> emit s ev) live);
          flush = (fun () -> List.iter flush live);
        }

(** Accumulate every event in order; the second component returns the
    events seen so far. *)
let collect () =
  let events = ref [] in
  (make (fun ev -> events := ev :: !events), fun () -> List.rev !events)

(** Keep only the last [capacity] events (a flight recorder). *)
let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  let buf = Array.make capacity None in
  let next = ref 0 in
  let total = ref 0 in
  let sink =
    make (fun ev ->
        buf.(!next) <- Some ev;
        next := (!next + 1) mod capacity;
        incr total)
  in
  let contents () =
    let n = min !total capacity in
    let start = if !total <= capacity then 0 else !next in
    List.init n (fun i ->
        match buf.((start + i) mod capacity) with
        | Some ev -> ev
        | None -> assert false)
  in
  (sink, contents)

(** Stream events to [oc] as JSONL, one event per line; {!flush}
    drains the channel (the caller still closes it). *)
let jsonl oc =
  make
    ~flush:(fun () -> Stdlib.flush oc)
    (fun ev ->
      output_string oc (Event.to_jsonl_line ev);
      output_char oc '\n')

(** Human-readable event lines on [ppf]. *)
let console ppf =
  make
    ~flush:(fun () -> Format.pp_print_flush ppf ())
    (fun ev -> Format.fprintf ppf "%a@." Event.pp_stamped ev)

(** Events as [Logs] debug messages on {!log_src}, interleaving with
    the monitor-call log under the CLI's [-v] control. *)
let logs () = make (fun ev -> Log.debug (fun m -> m "%a" Event.pp_stamped ev))
