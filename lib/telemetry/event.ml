(** Typed trace events.

    Every observable step of the monitor — SMC and SVC entry/exit, the
    exception ending each burst of user execution, PageDB type changes,
    and enclave lifecycle milestones — is one of these constructors,
    stamped with the monitor's modelled cycle counter. The layer is
    deliberately *below* the monitor: events carry only integers and
    strings (call numbers, error codes, page-type names), so the core
    library can depend on telemetry without a cycle.

    The event stream is exactly the paper's evaluation surface (§8,
    Table 3 / Figure 5): per-call latencies come from entry/exit cycle
    deltas, and the enclave lifecycle breakdown is the ordered
    [Enclave_lifecycle] / [Page_transition] subsequence — which
    {!Audit} can replay and check for orderliness. *)

type lifecycle_stage = Ls_init | Ls_finalise | Ls_enter | Ls_resume | Ls_stop | Ls_remove

let stage_name = function
  | Ls_init -> "init"
  | Ls_finalise -> "finalise"
  | Ls_enter -> "enter"
  | Ls_resume -> "resume"
  | Ls_stop -> "stop"
  | Ls_remove -> "remove"

let stage_of_name = function
  | "init" -> Some Ls_init
  | "finalise" -> Some Ls_finalise
  | "enter" -> Some Ls_enter
  | "resume" -> Some Ls_resume
  | "stop" -> Some Ls_stop
  | "remove" -> Some Ls_remove
  | _ -> None

type t =
  | Smc_entry of { call : int; name : string; args : int list }
  | Smc_exit of { call : int; name : string; err : int; err_name : string; retval : int; cycles : int }
      (** [cycles] is the handler's cycle cost (exit stamp − entry stamp). *)
  | Svc_entry of { call : int; name : string }
  | Svc_exit of { call : int; name : string; err : int; err_name : string; cycles : int }
  | Exception of { kind : string }
      (** The exception ending a burst of user execution:
          ["svc"], ["irq"], ["fiq"], or ["fault:<class>"]. *)
  | Page_transition of { page : int; from_type : string; to_type : string }
      (** A PageDB retyping (e.g. free → addrspace, datapage → free). *)
  | Enclave_lifecycle of { addrspace : int; stage : lifecycle_stage }
  | Fault_injected of { point : string; action : string }
      (** The fault injector acted: [point] names the injection point
          (e.g. ["commit:smc:6"], ["insn:12"]), [action] the fault
          (["irq"], ["mem_write:0x..."], ["rng_exhaust"], ...). *)

(** An event stamped with the monitor's cycle counter at emission. *)
type stamped = { at : int; ev : t }

let equal (a : t) (b : t) = a = b
let equal_stamped (a : stamped) (b : stamped) = a = b

let kind_name = function
  | Smc_entry _ -> "smc_entry"
  | Smc_exit _ -> "smc_exit"
  | Svc_entry _ -> "svc_entry"
  | Svc_exit _ -> "svc_exit"
  | Exception _ -> "exception"
  | Page_transition _ -> "page_transition"
  | Enclave_lifecycle _ -> "enclave_lifecycle"
  | Fault_injected _ -> "fault_injected"

let pp fmt = function
  | Smc_entry { name; args; _ } ->
      Format.fprintf fmt "SMC %s(%s)" name
        (String.concat ", " (List.map (Printf.sprintf "0x%x") args))
  | Smc_exit { name; err_name; retval; cycles; _ } ->
      Format.fprintf fmt "SMC %s -> %s, 0x%x (%d cycles)" name err_name retval cycles
  | Svc_entry { name; _ } -> Format.fprintf fmt "SVC %s" name
  | Svc_exit { name; err_name; cycles; _ } ->
      Format.fprintf fmt "SVC %s -> %s (%d cycles)" name err_name cycles
  | Exception { kind } -> Format.fprintf fmt "exception %s" kind
  | Page_transition { page; from_type; to_type } ->
      Format.fprintf fmt "page %d: %s -> %s" page from_type to_type
  | Enclave_lifecycle { addrspace; stage } ->
      Format.fprintf fmt "enclave %d: %s" addrspace (stage_name stage)
  | Fault_injected { point; action } ->
      Format.fprintf fmt "fault injected at %s: %s" point action

let pp_stamped fmt { at; ev } = Format.fprintf fmt "@[[%8d] %a@]" at pp ev

(* -- JSON (one object per event; a trace file is JSONL) ----------------- *)

let to_json { at; ev } =
  let base kind rest = Json.Obj (("at", Json.Int at) :: ("kind", Json.Str kind) :: rest) in
  match ev with
  | Smc_entry { call; name; args } ->
      base "smc_entry"
        [
          ("call", Json.Int call);
          ("name", Json.Str name);
          ("args", Json.List (List.map (fun a -> Json.Int a) args));
        ]
  | Smc_exit { call; name; err; err_name; retval; cycles } ->
      base "smc_exit"
        [
          ("call", Json.Int call);
          ("name", Json.Str name);
          ("err", Json.Int err);
          ("err_name", Json.Str err_name);
          ("retval", Json.Int retval);
          ("cycles", Json.Int cycles);
        ]
  | Svc_entry { call; name } ->
      base "svc_entry" [ ("call", Json.Int call); ("name", Json.Str name) ]
  | Svc_exit { call; name; err; err_name; cycles } ->
      base "svc_exit"
        [
          ("call", Json.Int call);
          ("name", Json.Str name);
          ("err", Json.Int err);
          ("err_name", Json.Str err_name);
          ("cycles", Json.Int cycles);
        ]
  | Exception { kind } -> base "exception" [ ("exn", Json.Str kind) ]
  | Page_transition { page; from_type; to_type } ->
      base "page_transition"
        [
          ("page", Json.Int page);
          ("from", Json.Str from_type);
          ("to", Json.Str to_type);
        ]
  | Enclave_lifecycle { addrspace; stage } ->
      base "enclave_lifecycle"
        [ ("addrspace", Json.Int addrspace); ("stage", Json.Str (stage_name stage)) ]
  | Fault_injected { point; action } ->
      base "fault_injected" [ ("point", Json.Str point); ("action", Json.Str action) ]

let of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed event" in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let* at = int "at" in
  let* kind = str "kind" in
  let ok ev = Ok { at; ev } in
  match kind with
  | "smc_entry" ->
      let* call = int "call" in
      let* name = str "name" in
      let* args = Option.bind (Json.member "args" j) Json.to_list_opt in
      let args = List.filter_map Json.to_int_opt args in
      ok (Smc_entry { call; name; args })
  | "smc_exit" ->
      let* call = int "call" in
      let* name = str "name" in
      let* err = int "err" in
      let* err_name = str "err_name" in
      let* retval = int "retval" in
      let* cycles = int "cycles" in
      ok (Smc_exit { call; name; err; err_name; retval; cycles })
  | "svc_entry" ->
      let* call = int "call" in
      let* name = str "name" in
      ok (Svc_entry { call; name })
  | "svc_exit" ->
      let* call = int "call" in
      let* name = str "name" in
      let* err = int "err" in
      let* err_name = str "err_name" in
      let* cycles = int "cycles" in
      ok (Svc_exit { call; name; err; err_name; cycles })
  | "exception" ->
      let* kind = str "exn" in
      ok (Exception { kind })
  | "page_transition" ->
      let* page = int "page" in
      let* from_type = str "from" in
      let* to_type = str "to" in
      ok (Page_transition { page; from_type; to_type })
  | "enclave_lifecycle" ->
      let* addrspace = int "addrspace" in
      let* stage_s = str "stage" in
      let* stage = stage_of_name stage_s in
      ok (Enclave_lifecycle { addrspace; stage })
  | "fault_injected" ->
      let* point = str "point" in
      let* action = str "action" in
      ok (Fault_injected { point; action })
  | k -> Error (Printf.sprintf "unknown event kind %S" k)

let to_jsonl_line ev = Json.to_string (to_json ev)

let of_jsonl_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> of_json j

(** Parse a whole JSONL trace, skipping blank lines. *)
let parse_trace s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else (
          match of_jsonl_line line with
          | Ok ev -> go (ev :: acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines
