(** Log-bucketed cycle histograms (HDR-style).

    Cycle costs span five orders of magnitude (a Stop is ~70 cycles, a
    MapSecure with measurement is ~160k), so the registry cannot keep
    raw samples for 10^5-trial campaigns. Instead each sample lands in
    a bucket whose width grows with magnitude: values below
    [2 * sub_count] are recorded exactly, and every power-of-two range
    above that is split into [sub_count] sub-buckets, bounding the
    relative quantile error at [1 / sub_count] (~3% at 32) while the
    whole histogram stays a small int array.

    Everything is deterministic and order-insensitive: {!merge_into}
    is an elementwise sum, so per-worker histograms from a parallel
    campaign reduce to the same object in any order — the property the
    campaign reducer ({!Campaign.Agg}) relies on for byte-identical
    `-j 1` / `-j N` reports. Count, sum, min and max are tracked
    exactly, so {!mean} and {!max_value} carry no bucketing error. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* sub-buckets per power of two *)
let linear_limit = 2 * sub_count (* values below this are exact *)

type t = {
  mutable counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int; (* max_int when empty *)
  mutable max_v : int;
}

let create () =
  { counts = Array.make linear_limit 0; count = 0; sum = 0; min_v = max_int; max_v = 0 }

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Position of the highest set bit (v >= 1). *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of v =
  if v < linear_limit then v
  else
    let k = msb v in
    ((k - sub_bits) * sub_count) + (v lsr (k - sub_bits))

(** Inclusive upper bound of bucket [i] — what quantile readout
    reports, so quantiles never understate a latency. *)
let bucket_value i =
  if i < linear_limit then i
  else
    let q = (i lsr sub_bits) - 1 in
    let m = i - (q * sub_count) in
    ((m + 1) lsl q) - 1

let ensure t i =
  let len = Array.length t.counts in
  if i >= len then begin
    let counts = Array.make (max (i + 1) (2 * len)) 0 in
    Array.blit t.counts 0 counts 0 len;
    t.counts <- counts
  end

let record t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  ensure t i;
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let merge_into dst src =
  let len = Array.length src.counts in
  if len > 0 then ensure dst (len - 1);
  for i = 0 to len - 1 do
    if src.counts.(i) <> 0 then dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let copy t =
  let fresh = create () in
  merge_into fresh t;
  fresh

(* An empty histogram has no quantiles. [quantile] keeps the historical
   0 (callers render it as a plain number in reports that are diffed
   byte-for-byte); [quantile_opt] makes emptiness unmistakable for
   callers that must distinguish "p99 = 0 cycles" from "no samples". *)
let quantile_opt t q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg (Printf.sprintf "Hist.quantile: %g outside [0, 1]" q);
  if t.count = 0 then None
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    let acc = ref 0 and result = ref t.max_v and found = ref false in
    (try
       for i = 0 to Array.length t.counts - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           result := min (bucket_value i) t.max_v;
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    Some (if !found then !result else t.max_v)
  end

let quantile t q = Option.value (quantile_opt t q) ~default:0

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let equal a b =
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  &&
  let la = Array.length a.counts and lb = Array.length b.counts in
  let ok = ref true in
  for i = 0 to max la lb - 1 do
    let ca = if i < la then a.counts.(i) else 0 in
    let cb = if i < lb then b.counts.(i) else 0 in
    if ca <> cb then ok := false
  done;
  !ok

(* -- JSON --------------------------------------------------------------- *)

let to_json t =
  let buckets =
    let acc = ref [] in
    for i = Array.length t.counts - 1 downto 0 do
      if t.counts.(i) <> 0 then
        acc := Json.List [ Json.Int i; Json.Int t.counts.(i) ] :: !acc
    done;
    !acc
  in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.max_v);
      ("buckets", Json.List buckets);
    ]

let of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed histogram" in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let* count = int "count" in
  let* sum = int "sum" in
  let* mn = int "min" in
  let* mx = int "max" in
  let* buckets = Option.bind (Json.member "buckets" j) Json.to_list_opt in
  let t = create () in
  t.count <- count;
  t.sum <- sum;
  t.min_v <- (if count = 0 then max_int else mn);
  t.max_v <- mx;
  let ok =
    List.for_all
      (function
        | Json.List [ Json.Int i; Json.Int c ] when i >= 0 && c > 0 ->
            ensure t i;
            t.counts.(i) <- t.counts.(i) + c;
            true
        | _ -> false)
      buckets
  in
  if ok then Ok t else Error "malformed histogram bucket"
