(** Typed trace events, stamped with the monitor's modelled cycle
    counter. Events carry only integers and strings (call numbers,
    error codes, page-type names) so this layer sits *below* the core
    monitor — {!Komodo_core} depends on telemetry, never the reverse. *)

type lifecycle_stage = Ls_init | Ls_finalise | Ls_enter | Ls_resume | Ls_stop | Ls_remove

val stage_name : lifecycle_stage -> string
val stage_of_name : string -> lifecycle_stage option

type t =
  | Smc_entry of { call : int; name : string; args : int list }
  | Smc_exit of { call : int; name : string; err : int; err_name : string; retval : int; cycles : int }
      (** [cycles] is the handler's cycle cost (exit stamp − entry stamp). *)
  | Svc_entry of { call : int; name : string }
  | Svc_exit of { call : int; name : string; err : int; err_name : string; cycles : int }
  | Exception of { kind : string }
      (** The exception ending a burst of user execution:
          ["svc"], ["irq"], ["fiq"], or ["fault:<class>"]. *)
  | Page_transition of { page : int; from_type : string; to_type : string }
      (** A PageDB retyping (e.g. free → addrspace, datapage → free). *)
  | Enclave_lifecycle of { addrspace : int; stage : lifecycle_stage }
  | Fault_injected of { point : string; action : string }
      (** The fault injector acted: [point] names the injection point
          (["commit:smc:6"], ["insn:12"], ...), [action] the fault. *)

type stamped = { at : int; ev : t }
(** [at] is the monitor cycle counter at emission. *)

val equal : t -> t -> bool
val equal_stamped : stamped -> stamped -> bool
val kind_name : t -> string
val pp : Format.formatter -> t -> unit
val pp_stamped : Format.formatter -> stamped -> unit

(** JSON encoding: one object per event; a trace file is JSONL. The
    encoding round-trips: [of_json (to_json e) = Ok e]. *)

val to_json : stamped -> Json.t
val of_json : Json.t -> (stamped, string) result
val to_jsonl_line : stamped -> string
val of_jsonl_line : string -> (stamped, string) result

val parse_trace : string -> (stamped list, string) result
(** Parse a whole JSONL trace (blank lines skipped); the error names
    the offending line. *)
