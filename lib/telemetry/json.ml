(** A minimal JSON value type, printer, and parser.

    The container image carries no JSON library, and the telemetry
    layer needs only enough JSON to emit JSONL traces and metrics
    dumps and to parse them back in tests and tooling — so this is a
    small, dependency-free implementation. Integers are kept distinct
    from floats (cycle counters and page numbers are exact). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
      List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
  | _ -> false

(* -- Printing ----------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          (* Control characters must be escaped; bytes >= 0x7f are
             escaped too so the output is pure ASCII and arbitrary
             byte strings round-trip exactly (\u00XX = that byte). *)
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* -- Parsing ------------------------------------------------------------ *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                   pos := !pos + 4;
                   (* {!write} only emits \u00XX (single bytes), which
                      must decode back to that byte for round-tripping;
                      higher code points (foreign input) decode as
                      UTF-8. *)
                   if code <= 0xFF then Buffer.add_char buf (Char.chr code)
                   else if code <= 0x7FF then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec members acc =
            let kv = member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number () else fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* -- Accessors ---------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
