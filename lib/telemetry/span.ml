(** Hierarchical span profiler.

    A span covers one phase of monitor work — a whole SMC/SVC handler,
    its validation or commit half, a measurement hash, a page-table
    walk, a burst of user execution — and is attributed both in
    modelled cycles (the paper's currency, deterministic) and in
    wallclock nanoseconds (host cost, only when a [clock] is
    injected). Spans nest: the recorder keeps a stack of open frames
    and each closed frame becomes a child of the one below it.

    Mirroring {!Sink}, [Null] is a distinguished constructor: every
    instrumentation site guards on {!is_null} with a single branch,
    builds nothing, and charges no modelled cycles — with profiling
    off, cycle reports are bit-for-bit identical.

    The recorder is intentionally clock-free by default: without an
    injected [clock], wallclock fields are 0 and a recorded tree is a
    pure function of the instrumented execution — the determinism
    `komodo profile` relies on when diffing span trees across `-j`
    levels (wallclock fields are excluded from that identity).

    Error-path robustness: handlers unwind through early returns, so
    call sites snapshot {!depth} on entry and close with {!exit_to}
    rather than pairing every [enter] with an [exit_]. *)

type clock = unit -> float

(** One completed span. [sp_cycles] is the modelled-cycle delta across
    the span; [sp_wall_ns] is 0 unless the recorder has a clock.
    Children are in execution order. *)
type node = {
  sp_name : string;
  sp_start : int;
  sp_cycles : int;
  sp_wall_ns : int;
  sp_children : node list;
}

type frame = {
  f_name : string;
  f_start : int;
  f_wall : float;
  mutable f_children : node list; (* reversed *)
}

type state = {
  clock : clock option;
  mutable stack : frame list;
  mutable finished : node list; (* reversed completed roots *)
}

type recorder = Null | Rec of state

let null = Null
let create ?clock () = Rec { clock; stack = []; finished = [] }
let is_null = function Null -> true | Rec _ -> false

let now st = match st.clock with None -> 0.0 | Some c -> c ()

let enter r ~name ~cycles =
  match r with
  | Null -> ()
  | Rec st ->
      st.stack <-
        { f_name = name; f_start = cycles; f_wall = now st; f_children = [] }
        :: st.stack

let close st f ~cycles =
  let wall_ns =
    match st.clock with
    | None -> 0
    | Some c -> max 0 (int_of_float ((c () -. f.f_wall) *. 1e9))
  in
  let node =
    {
      sp_name = f.f_name;
      sp_start = f.f_start;
      sp_cycles = max 0 (cycles - f.f_start);
      sp_wall_ns = wall_ns;
      sp_children = List.rev f.f_children;
    }
  in
  match st.stack with
  | parent :: _ -> parent.f_children <- node :: parent.f_children
  | [] -> st.finished <- node :: st.finished

let exit_ r ~cycles =
  match r with
  | Null -> ()
  | Rec st -> (
      match st.stack with
      | [] -> () (* tolerated: unmatched exit on an error path *)
      | f :: rest ->
          st.stack <- rest;
          close st f ~cycles)

let depth = function Null -> 0 | Rec st -> List.length st.stack

let rec exit_to r ~depth:d ~cycles =
  match r with
  | Null -> ()
  | Rec st ->
      if List.length st.stack > d then begin
        exit_ r ~cycles;
        exit_to r ~depth:d ~cycles
      end

(** Close the current frame and open a sibling in one step — the
    validate-to-commit transition inside a handler. *)
let mark r ~name ~cycles =
  match r with
  | Null -> ()
  | Rec _ ->
      exit_ r ~cycles;
      enter r ~name ~cycles

let roots = function Null -> [] | Rec st -> List.rev st.finished

let reset = function
  | Null -> ()
  | Rec st ->
      st.stack <- [];
      st.finished <- []

(* -- Readout ------------------------------------------------------------ *)

let rec total_spans nodes =
  List.fold_left (fun a n -> a + 1 + total_spans n.sp_children) 0 nodes

let self_cycles n =
  let child = List.fold_left (fun a c -> a + c.sp_cycles) 0 n.sp_children in
  max 0 (n.sp_cycles - child)

(** Folded stacks, flamegraph-compatible: one ["a;b;c cycles"] line per
    distinct path, self cycles only, paths sorted — deterministic
    however the spans were collected. Zero-self paths are dropped. *)
let fold_stacks nodes =
  let tbl = Hashtbl.create 64 in
  let rec go prefix n =
    let path = if prefix = "" then n.sp_name else prefix ^ ";" ^ n.sp_name in
    let self = self_cycles n in
    if self > 0 then
      Hashtbl.replace tbl path
        ((match Hashtbl.find_opt tbl path with Some c -> c | None -> 0) + self);
    List.iter (go path) n.sp_children
  in
  List.iter (go "") nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let to_folded nodes =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, cycles) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" path cycles))
    (fold_stacks nodes);
  Buffer.contents buf

(** The span tree aggregated by path: same-named siblings merge, counts
    and attributions sum, children sort by name — the canonical
    deterministic rendering of a profile. *)
type agg = {
  a_name : string;
  a_count : int;
  a_cycles : int;
  a_wall_ns : int;
  a_children : agg list;
}

let rec aggregate nodes =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun n ->
      (match Hashtbl.find_opt tbl n.sp_name with
      | None ->
          order := n.sp_name :: !order;
          Hashtbl.add tbl n.sp_name (1, n.sp_cycles, n.sp_wall_ns, [ n ])
      | Some (c, cy, w, ns) ->
          Hashtbl.replace tbl n.sp_name
            (c + 1, cy + n.sp_cycles, w + n.sp_wall_ns, n :: ns)))
    nodes;
  Hashtbl.fold
    (fun name (c, cy, w, ns) acc ->
      {
        a_name = name;
        a_count = c;
        a_cycles = cy;
        a_wall_ns = w;
        a_children =
          aggregate (List.concat_map (fun n -> n.sp_children) (List.rev ns));
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.a_name b.a_name)

(** Render an aggregated tree, one span per line, cycles only (the
    deterministic face); [wall] adds a wallclock-microseconds column. *)
let render_tree ?(wall = false) aggs =
  let buf = Buffer.create 256 in
  let rec go indent aggs =
    List.iter
      (fun a ->
        let label = String.make (2 * indent) ' ' ^ a.a_name in
        Buffer.add_string buf
          (Printf.sprintf "%-44s %8d %14d" label a.a_count a.a_cycles);
        if wall then
          Buffer.add_string buf
            (Printf.sprintf " %12.1f" (float_of_int a.a_wall_ns /. 1e3));
        Buffer.add_char buf '\n';
        go (indent + 1) a.a_children)
      aggs
  in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %8s %14s%s\n" "span" "count" "cycles"
       (if wall then Printf.sprintf " %12s" "wall (us)" else ""));
  go 0 aggs;
  Buffer.contents buf

(** Per-span-name cycle histograms (every occurrence at any depth), for
    quantile tables; name-sorted. *)
let durations nodes =
  let tbl = Hashtbl.create 16 in
  let hist name =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        Hashtbl.add tbl name h;
        h
  in
  let rec go n =
    Hist.record (hist n.sp_name) n.sp_cycles;
    List.iter go n.sp_children
  in
  List.iter go nodes;
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) tbl [] |> List.sort compare

(* -- JSON --------------------------------------------------------------- *)

let rec node_to_json ?(wall = true) n =
  Json.Obj
    (("name", Json.Str n.sp_name)
    :: ("start", Json.Int n.sp_start)
    :: ("cycles", Json.Int n.sp_cycles)
    :: ((if wall then [ ("wall_ns", Json.Int n.sp_wall_ns) ] else [])
       @ [ ("children", Json.List (List.map (node_to_json ~wall) n.sp_children)) ]))

let to_json ?(wall = true) nodes = Json.List (List.map (node_to_json ~wall) nodes)
