(** Lifecycle audit log: replay a trace and check its orderliness — no
    Enter before Finalise, no access after Remove, Remove only after
    Stop, every page retyping consistent with the page's tracked type,
    SMC entry/exit properly bracketed, cycle stamps monotone. Pure:
    works on a live ring buffer, a parsed JSONL file, or a hand-built
    trace. *)

type violation = { index : int; at : int; message : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Event.stamped list -> violation list
(** All orderliness violations in the trace, in order; [[]] means the
    trace is orderly. *)

val orderly : Event.stamped list -> bool
