(** A minimal, dependency-free JSON value type, printer, and parser —
    just enough for JSONL traces and metrics dumps. Integers stay
    distinct from floats (cycle counters and page numbers are exact). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool

val to_string : t -> string
(** Compact single-line rendering (no interior newlines: one value per
    line is valid JSONL). *)

exception Parse_error of string

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val parse : string -> (t, string) result

(** Accessors for picking results apart in tests and tooling. *)

val member : string -> t -> t option
val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
