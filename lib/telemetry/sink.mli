(** Pluggable event sinks. [Null] is a distinguished constructor so
    instrumentation sites can test {!is_null} with one branch and skip
    building events entirely — telemetry off costs one comparison and
    zero allocation, and charges no modelled cycles. *)

val log_src : Logs.src
(** Telemetry log source ("komodo.telemetry"); the {!logs} sink and
    internal diagnostics report through it. *)

type t = Null | Emit of { emit : Event.stamped -> unit; flush : unit -> unit }

val null : t
val is_null : t -> bool
val emit : t -> Event.stamped -> unit

val flush : t -> unit
(** Drain any buffering behind the sink (a no-op for unbuffered
    backends). Called at quiesce points — [Os.teardown], campaign
    completion — so JSONL traces are complete on disk. *)

val make : ?flush:(unit -> unit) -> (Event.stamped -> unit) -> t

val fanout : t list -> t
(** Send every event to each sink; [Null]s are dropped, and an
    all-[Null] list collapses back to [Null]. Flushing the fanout
    flushes every member. *)

val collect : unit -> t * (unit -> Event.stamped list)
(** Accumulate every event; the closure returns them in order. *)

val ring : capacity:int -> t * (unit -> Event.stamped list)
(** Flight recorder: keep only the last [capacity] events.
    @raise Invalid_argument on a non-positive capacity. *)

val jsonl : out_channel -> t
(** Stream events as JSONL, one event per line; {!flush} drains the
    channel (caller closes). *)

val console : Format.formatter -> t
(** Human-readable event lines. *)

val logs : unit -> t
(** Events as [Logs] debug messages on {!log_src}. *)
