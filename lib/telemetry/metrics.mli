(** Metrics registry: per-call counters, error-code counters, and
    cycle-cost histograms aggregated from the event stream. Attach
    {!sink} to a monitor and read the registry back directly or as a
    JSON {!dump}. *)

type t

val create : unit -> t

val observe : t -> Event.stamped -> unit
(** Feed one event into the registry ([Smc_exit]/[Svc_exit] update the
    call counter and cycle histogram keyed ["smc.<Name>"] /
    ["svc.<Name>"]; every event bumps its kind counter). *)

val sink : t -> Sink.t
(** A sink that feeds this registry. *)

val add_count : t -> string -> int -> unit
(** Count an out-of-band occurrence (e.g. retired user instructions). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s counters into [dst] and sums the
    cycle histograms bucketwise ({!Hist.merge_into}) — commutative and
    associative, so {!stats} and {!dump} of the merge are independent
    of merge order (the campaign reducer relies on this). [src] is
    untouched and shares no state with [dst] afterwards. *)

val call_count : t -> string -> int
(** Completed calls under a key such as ["smc.Enter"] or
    ["svc.MapData"]. *)

val error_count : t -> string -> int
(** Results carrying the given error name (e.g. ["Success"]). *)

val event_count : t -> string -> int
(** Events of a kind (["smc_exit"], ["exception.irq"], ...). *)

type stats = {
  count : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
  max : int;
  mean : float;
}

val stats : t -> string -> stats option
(** Cycle-cost histogram summary for one call key. Quantiles are
    nearest-rank over the log-bucketed histogram (bucket upper bounds,
    <= ~3% relative error); [count], [max] and [mean] are exact. *)

val call_names : t -> string list
(** All call keys seen, sorted. *)

val dump : t -> Json.t
(** The whole registry: [{"calls": {...}, "errors": {...},
    "cycles": {key: {count,p50,p90,p95,p99,max,mean}}, "events":
    {...}}]. *)
