(** Metrics registry: per-call counters, error-code counters, and
    cycle-cost histograms aggregated from the event stream. Attach
    {!sink} to a monitor and read the registry back directly or as a
    JSON {!dump}. *)

type t

val create : unit -> t

val observe : t -> Event.stamped -> unit
(** Feed one event into the registry ([Smc_exit]/[Svc_exit] update the
    call counter and cycle histogram keyed ["smc.<Name>"] /
    ["svc.<Name>"]; every event bumps its kind counter). *)

val sink : t -> Sink.t
(** A sink that feeds this registry. *)

val add_count : t -> string -> int -> unit
(** Count an out-of-band occurrence (e.g. retired user instructions). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s counters into [dst] and unions
    the cycle histograms (sample multisets concatenate, so {!stats}
    and {!dump} of the merge are independent of merge order — the
    campaign reducer relies on this). [src] is not modified, but
    histograms share sample lists with [dst] afterwards: do not keep
    feeding [src]. *)

val call_count : t -> string -> int
(** Completed calls under a key such as ["smc.Enter"] or
    ["svc.MapData"]. *)

val error_count : t -> string -> int
(** Results carrying the given error name (e.g. ["Success"]). *)

val event_count : t -> string -> int
(** Events of a kind (["smc_exit"], ["exception.irq"], ...). *)

type stats = { count : int; p50 : int; p95 : int; max : int; mean : float }

val stats : t -> string -> stats option
(** Cycle-cost histogram summary for one call key. *)

val call_names : t -> string list
(** All call keys seen, sorted. *)

val dump : t -> Json.t
(** The whole registry: [{"calls": {...}, "errors": {...},
    "cycles": {key: {count,p50,p95,max,mean}}, "events": {...}}]. *)
