(** Hierarchical span profiler: monitor call -> validate/commit phase
    -> hash / page-table walk / exec, attributed in modelled cycles
    (deterministic) and wallclock nanoseconds (only when a [clock] is
    injected; 0 otherwise, keeping recorded trees pure functions of
    the instrumented execution).

    [Null] mirrors {!Sink.Null}: a distinguished constructor so every
    instrumentation site is one {!is_null} branch when profiling is
    off — no allocation, no modelled cycles, bit-identical cycle
    reports. *)

type clock = unit -> float
(** Wallclock source in seconds (e.g. [Unix.gettimeofday]); kept
    abstract so the telemetry library needs no unix dependency. *)

type node = {
  sp_name : string;
  sp_start : int;  (** cycle counter at entry *)
  sp_cycles : int;  (** modelled-cycle delta across the span *)
  sp_wall_ns : int;  (** 0 without a clock *)
  sp_children : node list;  (** execution order *)
}

type recorder

val null : recorder
val create : ?clock:clock -> unit -> recorder
val is_null : recorder -> bool

val enter : recorder -> name:string -> cycles:int -> unit
val exit_ : recorder -> cycles:int -> unit
(** Close the innermost open span (no-op on an empty stack). *)

val depth : recorder -> int
(** Open-frame count; snapshot on handler entry, restore with
    {!exit_to} — robust across error-path unwinds. *)

val exit_to : recorder -> depth:int -> cycles:int -> unit

val mark : recorder -> name:string -> cycles:int -> unit
(** Close the current span and open a same-depth sibling: the
    validate-to-commit transition. *)

val roots : recorder -> node list
(** Completed top-level spans in execution order (open frames are not
    included). *)

val reset : recorder -> unit

(* Readout *)

val total_spans : node list -> int
val self_cycles : node -> int
(** A span's cycles minus its children's (clamped at 0). *)

val fold_stacks : node list -> (string * int) list
(** Flamegraph-folded: [("a;b;c", self_cycles)] per distinct path,
    path-sorted, zero-self paths dropped. *)

val to_folded : node list -> string
(** {!fold_stacks} as one ["path cycles\n"] line per entry. *)

type agg = {
  a_name : string;
  a_count : int;
  a_cycles : int;
  a_wall_ns : int;
  a_children : agg list;
}

val aggregate : node list -> agg list
(** Merge same-named siblings recursively (counts and attributions
    sum), children name-sorted — the canonical deterministic tree. *)

val render_tree : ?wall:bool -> agg list -> string
(** One line per aggregated span with count and cycles; [wall] adds a
    wallclock column (excluded by default so output is deterministic). *)

val durations : node list -> (string * Hist.t) list
(** Per-name cycle histograms over every occurrence, name-sorted. *)

val to_json : ?wall:bool -> node list -> Json.t
val node_to_json : ?wall:bool -> node -> Json.t
