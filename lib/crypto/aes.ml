(* AES-256 (FIPS 197), forward cipher only.

   The vault enclave seals its persistent state with AES-256-GCM, and
   GCM needs nothing but the forward block transform (CTR mode for
   confidentiality, one block over zero for the GHASH subkey), so the
   inverse cipher is deliberately absent. Tables are derived at module
   load from the GF(2^8) generator rather than pasted in, keeping the
   implementation auditable the same way [Sha256]'s constants are. *)

let block_size = 16
let key_size = 32
let rounds = 14

(* -- GF(2^8) arithmetic ---------------------------------------------------- *)

(* Log/antilog tables over the AES field x^8 + x^4 + x^3 + x + 1,
   built from the generator 3. *)
let exp_table, log_table =
  let exp = Array.make 256 0 and log = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log.(!x) <- i;
    (* multiply by the generator 0x03 = x * 2 xor x *)
    let x2 = !x lsl 1 in
    let x2 = if x2 land 0x100 <> 0 then x2 lxor 0x11b else x2 in
    x := x2 lxor !x
  done;
  exp.(255) <- exp.(0);
  (exp, log)

let gf_inv b = if b = 0 then 0 else exp_table.(255 - log_table.(b))

(* S-box: multiplicative inverse followed by the affine transform. *)
let sbox =
  Array.init 256 (fun b ->
      let x = gf_inv b in
      let rotl8 v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
      x lxor rotl8 x 1 lxor rotl8 x 2 lxor rotl8 x 3 lxor rotl8 x 4 lxor 0x63)

let xtime b =
  let b2 = b lsl 1 in
  if b2 land 0x100 <> 0 then (b2 lxor 0x11b) land 0xff else b2

(* -- Key schedule ---------------------------------------------------------- *)

type key = int array
(** 60 expanded round-key words (4 * (rounds + 1)), each 32-bit. *)

let mask = 0xFFFF_FFFF

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land mask

let rcon =
  let r = Array.make 10 0 in
  let c = ref 1 in
  for i = 0 to 9 do
    r.(i) <- !c lsl 24;
    c := xtime !c
  done;
  r

let expand key =
  if String.length key <> key_size then
    invalid_arg "Aes.expand: key must be 32 bytes";
  let nk = key_size / 4 in
  let w = Array.make (4 * (rounds + 1)) 0 in
  for i = 0 to nk - 1 do
    w.(i) <-
      (Char.code key.[4 * i] lsl 24)
      lor (Char.code key.[(4 * i) + 1] lsl 16)
      lor (Char.code key.[(4 * i) + 2] lsl 8)
      lor Char.code key.[(4 * i) + 3]
  done;
  for i = nk to (4 * (rounds + 1)) - 1 do
    let t = w.(i - 1) in
    let t =
      if i mod nk = 0 then sub_word (rot_word t) lxor rcon.((i / nk) - 1)
      else if i mod nk = 4 then sub_word t
      else t
    in
    w.(i) <- w.(i - nk) lxor t
  done;
  w

(* -- Forward cipher -------------------------------------------------------- *)

let add_round_key st w round =
  for c = 0 to 3 do
    let k = w.((round * 4) + c) in
    st.((4 * c) + 0) <- st.((4 * c) + 0) lxor ((k lsr 24) land 0xff);
    st.((4 * c) + 1) <- st.((4 * c) + 1) lxor ((k lsr 16) land 0xff);
    st.((4 * c) + 2) <- st.((4 * c) + 2) lxor ((k lsr 8) land 0xff);
    st.((4 * c) + 3) <- st.((4 * c) + 3) lxor (k land 0xff)
  done

let sub_bytes st =
  for i = 0 to 15 do
    st.(i) <- sbox.(st.(i))
  done

(* State is column-major: st.(4*c + r) is row r of column c. *)
let shift_rows st =
  let at r c = st.((4 * c) + r) in
  let row r s =
    let v = Array.init 4 (fun c -> at r ((c + s) mod 4)) in
    for c = 0 to 3 do
      st.((4 * c) + r) <- v.(c)
    done
  in
  row 1 1;
  row 2 2;
  row 3 3

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c)
    and a1 = st.((4 * c) + 1)
    and a2 = st.((4 * c) + 2)
    and a3 = st.((4 * c) + 3) in
    let m2 x = xtime x and m3 x = xtime x lxor x in
    st.(4 * c) <- m2 a0 lxor m3 a1 lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor m2 a1 lxor m3 a2 lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor m2 a2 lxor m3 a3;
    st.((4 * c) + 3) <- m3 a0 lxor a1 lxor a2 lxor m2 a3
  done

(** [encrypt_block w block] applies the forward cipher to one 16-byte
    block under the expanded key [w]. *)
let encrypt_block w block =
  if String.length block <> block_size then
    invalid_arg "Aes.encrypt_block: block must be 16 bytes";
  let st = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key st w 0;
  for round = 1 to rounds - 1 do
    sub_bytes st;
    shift_rows st;
    mix_columns st;
    add_round_key st w round
  done;
  sub_bytes st;
  shift_rows st;
  add_round_key st w rounds;
  String.init 16 (fun i -> Char.chr st.(i))
