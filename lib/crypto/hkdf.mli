(** HKDF-SHA256 (RFC 5869), built on [Hmac].

    Extract-then-expand key derivation. The vault feeds its
    measurement-bound root secret through this to obtain the sealing
    key and nonce schedule, with domain separation carried in [info]
    — the model analogue of SGX's EGETKEY derivation. *)

val hash_len : int
(** 32 bytes. *)

val extract : ?salt:string -> string -> string
(** [extract ~salt ikm] is the 32-byte PRK; an absent salt is the
    RFC's zero-filled default. *)

val expand : prk:string -> info:string -> int -> string
(** [expand ~prk ~info len]: the first [len] bytes of the T-chain.
    @raise Invalid_argument if [len] exceeds 255 * 32. *)

val derive : ?salt:string -> ikm:string -> info:string -> int -> string
(** Extract-then-expand in one step. *)

val compressions : ikm_len:int -> info_len:int -> int -> int
(** SHA-256 compressions a derivation costs (cost model, like
    [Hmac.compressions]). *)
