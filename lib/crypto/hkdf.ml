(* HKDF-SHA256 (RFC 5869).

   The vault derives its sealing material the way SGX's EGETKEY does:
   a measurement-bound secret (here the monitor's local-attestation
   MAC over a fixed domain-separation constant) goes in as the IKM,
   and extract-then-expand turns it into independent keys for the
   cipher and the nonce schedule. Domain separation lives in [info],
   so one root secret safely feeds several uses. *)

let hash_len = 32

(** [extract ~salt ikm] is PRK = HMAC-SHA256(salt, IKM); an absent
    salt is the RFC's zero-filled default. *)
let extract ?(salt = String.make hash_len '\x00') ikm =
  Hmac.mac ~key:salt ikm

(** [expand ~prk ~info len] is the first [len] bytes of the T(1) ‖
    T(2) ‖ ... chain. @raise Invalid_argument if [len] exceeds the
    RFC bound of 255 * 32 bytes. *)
let expand ~prk ~info len =
  if len < 0 || len > 255 * hash_len then
    invalid_arg "Hkdf.expand: length out of range";
  let buf = Buffer.create len in
  let t = ref "" in
  let i = ref 1 in
  while Buffer.length buf < len do
    t := Hmac.mac ~key:prk (!t ^ info ^ String.make 1 (Char.chr !i));
    Buffer.add_string buf !t;
    incr i
  done;
  String.sub (Buffer.contents buf) 0 len

(** Extract-then-expand in one step. *)
let derive ?salt ~ikm ~info len = expand ~prk:(extract ?salt ikm) ~info len

(** SHA-256 compressions a derivation of [len] bytes from [ikm_len]
    bytes of keying material costs (cost model). *)
let compressions ~ikm_len ~info_len len =
  let n = (len + hash_len - 1) / hash_len in
  Hmac.compressions ikm_len
  + (n * Hmac.compressions (hash_len + info_len + 1))
