module Word = Komodo_machine.Word

type digest = string

(* FIPS 180-4 constants: first 32 bits of the fractional parts of the
   cube roots of the first 64 primes. *)
let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let h0 =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

type ctx = {
  h : int array;  (** 8-element chaining state, each in [0, 2^32) *)
  buffered : string;  (** pending partial block, < 64 bytes *)
  length : int;  (** total bytes absorbed *)
  blocks : int;  (** compressions performed *)
}

let init = { h = Array.copy h0; buffered = ""; length = 0; blocks = 0 }
let blocks_absorbed c = c.blocks

let mask = 0xFFFF_FFFF
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* Schedule expansion + 64 rounds over [w], whose first 16 entries hold
   the message block. Shared by the string- and word-sourced absorbers. *)
let compress_rounds h w =
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let a = ref h.(0)
  and b = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4)
  and f = ref h.(5)
  and g = ref h.(6)
  and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land mask land !g) in
    let temp1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  [|
    (h.(0) + !a) land mask; (h.(1) + !b) land mask; (h.(2) + !c) land mask;
    (h.(3) + !d) land mask; (h.(4) + !e) land mask; (h.(5) + !f) land mask;
    (h.(6) + !g) land mask; (h.(7) + !hh) land mask;
  |]

(* One compression of a 64-byte block, starting at [off] in [msg]. *)
let compress h msg off =
  let w = Array.make 64 0 in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    w.(i) <-
      (Char.code msg.[j] lsl 24)
      lor (Char.code msg.[j + 1] lsl 16)
      lor (Char.code msg.[j + 2] lsl 8)
      lor Char.code msg.[j + 3]
  done;
  compress_rounds h w

(* One compression of 16 words starting at [off] in [ws] — words are
   already the big-endian 32-bit lanes, so no byte shuffling at all. *)
let compress_words h ws off =
  let w = Array.make 64 0 in
  for i = 0 to 15 do
    w.(i) <- Word.to_int ws.(off + i)
  done;
  compress_rounds h w

let absorb ctx data =
  let input = ctx.buffered ^ data in
  let n = String.length input in
  let full = n / 64 in
  let h = ref ctx.h and blocks = ref ctx.blocks in
  for i = 0 to full - 1 do
    h := compress !h input (64 * i);
    incr blocks
  done;
  {
    h = !h;
    buffered = String.sub input (64 * full) (n - (64 * full));
    length = ctx.length + String.length data;
    blocks = !blocks;
  }

let bytes_of_words ws pos len =
  let b = Bytes.create (4 * len) in
  for i = 0 to len - 1 do
    let v = Word.to_int ws.(pos + i) in
    Bytes.unsafe_set b (4 * i) (Char.unsafe_chr ((v lsr 24) land 0xFF));
    Bytes.unsafe_set b ((4 * i) + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set b ((4 * i) + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set b ((4 * i) + 3) (Char.unsafe_chr (v land 0xFF))
  done;
  Bytes.unsafe_to_string b

let absorb_words ctx ws pos len =
  if len <= 0 then ctx
  else if ctx.buffered = "" then begin
    (* Block-aligned context: compress straight from the word array, 16
       words per block, identical to absorbing their big-endian bytes. *)
    let h = ref ctx.h and blocks = ref ctx.blocks in
    let p = ref pos and left = ref len in
    while !left >= 16 do
      h := compress_words !h ws !p;
      incr blocks;
      p := !p + 16;
      left := !left - 16
    done;
    let ctx' =
      { h = !h; buffered = ""; length = ctx.length + (4 * (len - !left)); blocks = !blocks }
    in
    if !left = 0 then ctx' else absorb ctx' (bytes_of_words ws !p !left)
  end
  else absorb ctx (bytes_of_words ws pos len)

let absorb_word ctx w =
  let bl = String.length ctx.buffered in
  if bl + 4 < 64 then begin
    (* Stays a partial block: extend the buffer in one allocation. *)
    let v = Word.to_int w in
    let b = Bytes.create (bl + 4) in
    Bytes.blit_string ctx.buffered 0 b 0 bl;
    Bytes.unsafe_set b bl (Char.unsafe_chr ((v lsr 24) land 0xFF));
    Bytes.unsafe_set b (bl + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set b (bl + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set b (bl + 3) (Char.unsafe_chr (v land 0xFF));
    { ctx with buffered = Bytes.unsafe_to_string b; length = ctx.length + 4 }
  end
  else absorb ctx (Word.to_bytes_be w)

let absorb_block ctx block =
  if String.length block <> 64 then
    invalid_arg "Sha256.absorb_block: block must be 64 bytes";
  if ctx.buffered <> "" then
    invalid_arg "Sha256.absorb_block: context holds a partial block";
  absorb ctx block

let finalize ctx =
  let len_bits = ctx.length * 8 in
  let pad_len =
    let rem = (ctx.length + 1 + 8) mod 64 in
    if rem = 0 then 1 + 8 else 1 + 8 + (64 - rem)
  in
  let padding = Bytes.make pad_len '\x00' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding
      (pad_len - 1 - i)
      (Char.chr ((len_bits lsr (8 * i)) land 0xFF))
  done;
  let final = absorb ctx (Bytes.unsafe_to_string padding) in
  assert (final.buffered = "");
  let out = Bytes.create 32 in
  Array.iteri
    (fun i v ->
      Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
      Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
      Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
      Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF)))
    final.h;
  Bytes.unsafe_to_string out

let digest s = finalize (absorb init s)

let digest_words ws =
  let buf = Buffer.create (4 * List.length ws) in
  List.iter (fun w -> Buffer.add_string buf (Word.to_bytes_be w)) ws;
  digest (Buffer.contents buf)

let equal_ctx a b =
  a.h = b.h && a.buffered = b.buffered && a.length = b.length

let to_hex d =
  String.concat "" (List.init (String.length d) (fun i -> Printf.sprintf "%02x" (Char.code d.[i])))

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Sha256.of_hex: odd length";
  String.init (n / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let digest_words_of d =
  if String.length d <> 32 then invalid_arg "Sha256.digest_words_of: need 32 bytes";
  List.init 8 (fun i -> Word.of_bytes_be d (4 * i))

let digest_of_words ws =
  if List.length ws <> 8 then invalid_arg "Sha256.digest_of_words: need 8 words";
  let buf = Buffer.create 32 in
  List.iter (fun w -> Buffer.add_string buf (Word.to_bytes_be w)) ws;
  Buffer.contents buf
