(** SHA-256 (FIPS 180-4), implemented from scratch.

    Komodo uses SHA-256 twice: to build the enclave measurement as pages
    and threads are added during construction, and (as HMAC-SHA256) for
    local attestation MACs. The incremental interface mirrors the
    monitor's usage: the measurement context lives in the address-space
    page and absorbs data across many monitor calls before being
    finalised by [Finalise].

    The implementation additionally exposes a whole-block absorb path
    because the monitor only ever hashes block-aligned data — the paper
    leverages that precondition to avoid reasoning about padding
    mid-stream (§7.2). *)

type ctx
(** An in-progress hash. Immutable; absorbing returns a new context. *)

type digest = string
(** 32-byte raw digest. *)

val init : ctx

val absorb : ctx -> string -> ctx
(** Absorb arbitrary bytes. *)

val absorb_words : ctx -> Komodo_machine.Word.t array -> int -> int -> ctx
(** [absorb_words ctx ws pos len] absorbs the big-endian bytes of
    [ws.(pos .. pos+len-1)], bit-identical to [absorb] of the same
    bytes. When the context is block-aligned the words are compressed
    directly, with no intermediate string — the shape produced by
    [Memory.absorb_range]. *)

val absorb_word : ctx -> Komodo_machine.Word.t -> ctx
(** Absorb one word's big-endian bytes (single allocation while the
    running block stays partial). *)

val absorb_block : ctx -> string -> ctx
(** Absorb exactly one 64-byte block; checks the monitor's block-aligned
    precondition. @raise Invalid_argument if not 64 bytes or the context
    has buffered a partial block. *)

val finalize : ctx -> digest
(** Pad and produce the digest. The context may be reused/finalised more
    than once (finalisation does not mutate). *)

val digest : string -> digest
(** One-shot hash. *)

val digest_words : Komodo_machine.Word.t list -> digest
(** Hash a word list in big-endian byte order (how the monitor hashes
    page contents and call parameters). *)

val blocks_absorbed : ctx -> int
(** Number of 64-byte compressions performed so far (cost accounting). *)

val equal_ctx : ctx -> ctx -> bool

val to_hex : digest -> string
val of_hex : string -> digest
(** @raise Invalid_argument on non-hex or odd-length input. *)

val digest_words_of : digest -> Komodo_machine.Word.t list
(** The digest as 8 big-endian words — the form stored in the PageDB and
    passed through the attestation SVCs ([u32 data\[8\]]). *)

val digest_of_words : Komodo_machine.Word.t list -> digest
(** Inverse of {!digest_words_of}. @raise Invalid_argument unless given
    exactly 8 words. *)
