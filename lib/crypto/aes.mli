(** AES-256 (FIPS 197), forward cipher only.

    GCM is built entirely from the forward block transform (CTR mode
    plus one encryption of the zero block for the GHASH subkey), so
    the inverse cipher is deliberately absent — the vault never needs
    it, and leaving it out keeps the trusted surface smaller. *)

val block_size : int
(** 16 bytes. *)

val key_size : int
(** 32 bytes (AES-256). *)

val rounds : int
(** 14. *)

type key
(** An expanded key schedule (60 round-key words). *)

val expand : string -> key
(** Expand a 32-byte key. @raise Invalid_argument otherwise. *)

val encrypt_block : key -> string -> string
(** Forward-cipher one 16-byte block.
    @raise Invalid_argument if the block is not 16 bytes. *)
