(* AES-256-GCM (NIST SP 800-38D).

   The vault's sealing primitive: authenticated encryption whose tag
   covers both the ciphertext and the caller's additional data, so a
   sealed blob that the OS flips a single bit of — data, header, or
   tag — fails to open rather than silently decrypting to garbage.
   Only 96-bit nonces are supported (the J0 = IV ‖ 0^31 ‖ 1 fast
   path); the vault derives its nonces from HKDF output and an epoch
   counter, never reusing one under a key. *)

let tag_size = 16
let nonce_size = 12

(* -- GF(2^128) ------------------------------------------------------------- *)

(* A block is (hi, lo), big-endian: bit 0 of the GCM spec is the MSB
   of [hi]. *)
type block = int64 * int64

let zero_block = (0L, 0L)

let xor_block (ah, al) (bh, bl) = (Int64.logxor ah bh, Int64.logxor al bl)

let block_of_bytes s off =
  let b i = Int64.of_int (Char.code s.[off + i]) in
  let word j =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (b (j + i))
    done;
    !v
  in
  (word 0, word 8)

let bytes_of_block (hi, lo) =
  String.init 16 (fun i ->
      let w = if i < 8 then hi else lo in
      let shift = 8 * (7 - (i mod 8)) in
      Char.chr (Int64.to_int (Int64.shift_right_logical w shift) land 0xff))

(* Right shift of the 128-bit value by one bit. *)
let shift_right (hi, lo) =
  let lo' =
    Int64.logor (Int64.shift_right_logical lo 1) (Int64.shift_left hi 63)
  in
  (Int64.shift_right_logical hi 1, lo')

(* The reduction polynomial R = 11100001 ‖ 0^120. *)
let r_poly = 0xe100000000000000L

(* Block multiplication, SP 800-38D algorithm 1: bit-serial, MSB
   first. 128 iterations per block — the model favours audit over
   speed, like the rest of lib/crypto. *)
let gmul x (yh, yl) =
  let z = ref zero_block and v = ref x in
  let step bit =
    if bit then z := xor_block !z !v;
    let _, vl = !v in
    let shifted = shift_right !v in
    v :=
      (if Int64.logand vl 1L = 1L then
         let sh, sl = shifted in
         (Int64.logxor sh r_poly, sl)
       else shifted)
  in
  for i = 0 to 63 do
    step (Int64.logand (Int64.shift_right_logical yh (63 - i)) 1L = 1L)
  done;
  for i = 0 to 63 do
    step (Int64.logand (Int64.shift_right_logical yl (63 - i)) 1L = 1L)
  done;
  !z

(* GHASH absorb of arbitrary bytes, zero-padded to a block boundary. *)
let ghash_absorb h acc s =
  let n = String.length s in
  let acc = ref acc in
  let i = ref 0 in
  while !i < n do
    let block =
      if n - !i >= 16 then block_of_bytes s !i
      else
        block_of_bytes (String.sub s !i (n - !i) ^ String.make (16 - (n - !i)) '\x00') 0
    in
    acc := gmul h (xor_block !acc block);
    i := !i + 16
  done;
  !acc

let len_block aad_len ct_len =
  (Int64.of_int (8 * aad_len), Int64.of_int (8 * ct_len))

(* -- Counter mode ---------------------------------------------------------- *)

type key = { sched : Aes.key; h : block }

let of_secret secret =
  let sched = Aes.expand secret in
  { sched; h = block_of_bytes (Aes.encrypt_block sched (String.make 16 '\x00')) 0 }

let inc32 (hi, lo) =
  let low32 = Int64.logand (Int64.add lo 1L) 0xFFFFFFFFL in
  (hi, Int64.logor (Int64.logand lo 0xFFFFFFFF00000000L) low32)

let gctr sched icb s =
  let n = String.length s in
  let out = Bytes.create n in
  let cb = ref icb in
  let i = ref 0 in
  while !i < n do
    let ks = Aes.encrypt_block sched (bytes_of_block !cb) in
    let m = min 16 (n - !i) in
    for j = 0 to m - 1 do
      Bytes.set out (!i + j)
        (Char.chr (Char.code s.[!i + j] lxor Char.code ks.[j]))
    done;
    cb := inc32 !cb;
    i := !i + 16
  done;
  Bytes.to_string out

let j0 nonce =
  if String.length nonce <> nonce_size then
    invalid_arg "Gcm: nonce must be 12 bytes";
  block_of_bytes (nonce ^ "\x00\x00\x00\x01") 0

let tag_of key ~nonce ~aad ct =
  let s = ghash_absorb key.h zero_block aad in
  let s = ghash_absorb key.h s ct in
  let s = gmul key.h (xor_block s (len_block (String.length aad) (String.length ct))) in
  gctr key.sched (j0 nonce) (bytes_of_block s)

(** [encrypt ~key ~nonce ~aad pt] is [(ciphertext, tag)]; the 16-byte
    tag authenticates [aad] and the ciphertext. *)
let encrypt ~key ~nonce ~aad pt =
  let ct = gctr key.sched (inc32 (j0 nonce)) pt in
  (ct, tag_of key ~nonce ~aad ct)

(** Constant-shape tag comparison, as [Hmac.verify]: always scans the
    full length. Tags that are not exactly 16 bytes never verify —
    truncated tags are rejected outright, not compared prefix-wise. *)
let decrypt ~key ~nonce ~aad ~tag ct =
  let expected = tag_of key ~nonce ~aad ct in
  let ok =
    String.length tag = tag_size
    &&
    let diff = ref 0 in
    String.iteri
      (fun i c -> diff := !diff lor (Char.code c lxor Char.code expected.[i]))
      tag;
    !diff = 0
  in
  if ok then Some (gctr key.sched (inc32 (j0 nonce)) ct) else None

(* -- Cost model ------------------------------------------------------------ *)

let blocks n = (n + 15) / 16

(** AES block-cipher invocations a seal/open of [len] payload bytes
    costs: one for the GHASH subkey amortised out, one for the tag
    mask, one per payload block. *)
let aes_blocks ~len = 1 + blocks len

(** GF(2^128) multiplications: one per padded AAD block, one per
    padded payload block, one for the length block. *)
let ghash_blocks ~aad ~len = blocks aad + blocks len + 1
