(** AES-256-GCM (NIST SP 800-38D), from scratch like [Sha256].

    The vault enclave's sealing primitive: the tag authenticates both
    the ciphertext and the caller's additional data, so any OS-side
    bit-flip — payload, header, or tag — makes the blob refuse to
    open instead of silently decrypting to garbage. Only 96-bit
    nonces are supported (the J0 = IV ‖ 0^31 ‖ 1 fast path). *)

val tag_size : int
(** 16 bytes. *)

val nonce_size : int
(** 12 bytes. *)

type key
(** An AES-256 key schedule plus the precomputed GHASH subkey. *)

val of_secret : string -> key
(** @raise Invalid_argument unless the secret is 32 bytes. *)

val encrypt :
  key:key -> nonce:string -> aad:string -> string -> string * string
(** [encrypt ~key ~nonce ~aad pt] is [(ciphertext, tag)]. Never reuse
    a nonce under a key. @raise Invalid_argument unless the nonce is
    12 bytes. *)

val decrypt :
  key:key -> nonce:string -> aad:string -> tag:string -> string -> string option
(** [None] if the tag does not authenticate [aad] and the ciphertext.
    Comparison is constant-shape ([Hmac.verify]-style); tags that are
    not exactly 16 bytes never verify. *)

val aes_blocks : len:int -> int
(** AES invocations sealing/opening [len] payload bytes costs (cost
    model, like [Hmac.compressions]). *)

val ghash_blocks : aad:int -> len:int -> int
(** GF(2^128) multiplications the same operation costs. *)
