(** Supervisor calls: the enclave-facing monitor API (Table 1, lower
    half).

    Invoked by the SVC instruction while an enclave executes; the call
    number is in the enclave's r0 with arguments in r1.., and results
    come back in r0 (error code) and r1.. — the handler then returns to
    the enclave, except for [Exit], which the Enter/Resume loop in
    {!Smc} intercepts. Attest passes its 32 bytes of data in r1-r8 and
    returns the MAC in r1-r8; Verify's 96 bytes of input are read
    through the enclave's own page table from a buffer in r1. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Regs = Komodo_machine.Regs
module Mode = Komodo_machine.Mode
module Exec = Komodo_machine.Exec
module Cost = Komodo_machine.Cost
module Ptable = Komodo_machine.Ptable
module Rng = Komodo_tz.Rng
module Sha256 = Komodo_crypto.Sha256

let sv_exit = 0
let sv_get_random = 1
let sv_attest = 2
let sv_verify = 3
let sv_init_l2ptable = 4
let sv_map_data = 5
let sv_unmap_data = 6

(* Dispatcher interface (paper §9.2 future work, implemented here):
   enclaves may register a fault-handler entry point; faults then upcall
   into the enclave instead of exiting to the OS, enabling enclave
   self-paging without exposing page faults to the untrusted OS. *)
let sv_set_dispatcher = 7
let sv_resume_faulted = 8 (* intercepted by the Enter/Resume loop *)

let call_name call =
  if call = sv_exit then "Exit"
  else if call = sv_get_random then "GetRandom"
  else if call = sv_attest then "Attest"
  else if call = sv_verify then "Verify"
  else if call = sv_init_l2ptable then "InitL2PTable"
  else if call = sv_map_data then "MapData"
  else if call = sv_unmap_data then "UnmapData"
  else if call = sv_set_dispatcher then "SetDispatcher"
  else if call = sv_resume_faulted then "ResumeFaulted"
  else Printf.sprintf "Unknown(%d)" call

(** How a fault is described to the enclave's dispatcher (r0 of the
    upcall). The OS never sees these — it is told only [Fault]. *)
let fault_code = function
  | Exec.Translation -> Word.of_int 1
  | Exec.Permission -> Word.of_int 2
  | Exec.Alignment -> Word.of_int 3
  | Exec.Prefetch -> Word.of_int 4
  | Exec.Undef_insn -> Word.of_int 5

(** Read the enclave's register r[i]. *)
let ureg (t : Monitor.t) i = State.read_reg t.mach (Regs.R i)

let set_ureg (t : Monitor.t) i v =
  { t with Monitor.mach = State.write_reg t.mach (Regs.R i) v }

let set_results t err values =
  let t = set_ureg t 0 (Errors.to_word err) in
  List.fold_left (fun (t, i) v -> (set_ureg t i v, i + 1)) (t, 1) values |> fst

(* -- Individual calls ---------------------------------------------------
   Like the SMC handlers, each call is validate-then-commit: a pure
   validation prefix, then one atomic commit at which the fault
   injector's hook fires ([Monitor.phase]). Result registers are part
   of the return discipline, not enclave state, so setting them on an
   error path does not break atomicity. *)

(** Fire the commit-point injection hook, then run the commit [k]. The
    profiler's validate span ends here and the commit span opens. *)
let commit ~call t k =
  let t = Monitor.phase t (Monitor.Ph_commit { smc = false; call }) in
  Monitor.span_mark t "commit";
  k t

let get_random (t : Monitor.t) =
  (* A drained entropy source is a defined error, not a trap: the
     enclave learns the source failed and nothing else (fault model).
     The check repeats inside the commit because the injector may drain
     the source at the commit point itself. *)
  if Rng.exhausted t.Monitor.rng then
    (set_results t Errors.Entropy_exhausted [], Errors.Entropy_exhausted)
  else
    commit ~call:sv_get_random t @@ fun t ->
    if Rng.exhausted t.Monitor.rng then
      (set_results t Errors.Entropy_exhausted [], Errors.Entropy_exhausted)
    else
      let w, rng = Rng.next_word t.Monitor.rng in
      let t = Monitor.charge Cost.rng_word { t with Monitor.rng } in
      (set_results t Errors.Success [ w ], Errors.Success)

let attest (t : Monitor.t) ~cur_asp =
  match Pagedb.get t.Monitor.pagedb cur_asp with
  | Pagedb.Addrspace a -> (
      match Measure.digest a.Pagedb.measurement with
      | None -> (set_results t Errors.Not_final [], Errors.Not_final)
      | Some measurement ->
          commit ~call:sv_attest t @@ fun t ->
          Monitor.span_enter t "hash";
          let data =
            Sha256.digest_of_words (List.init 8 (fun i -> ureg t (i + 1)))
          in
          let mac = Attest.create ~key:t.Monitor.attest_key ~measurement ~data in
          let t = Monitor.charge Attest.mac_cycles t in
          Monitor.span_exit t;
          ( set_results t Errors.Success (Sha256.digest_words_of mac),
            Errors.Success ))
  | _ -> (set_results t Errors.Invalid_addrspace [], Errors.Invalid_addrspace)

(** Read [n] words from enclave virtual memory (through the live page
    table); [None] if any address is unmapped — the monitor validates
    rather than faulting. *)
let read_user_words (t : Monitor.t) va n =
  let rec go acc i =
    if i = n then Some (List.rev acc)
    else
      match Exec.Uview.load t.Monitor.mach (Word.add va (Word.of_int (4 * i))) with
      | Error _ -> None
      | Ok w -> go (w :: acc) (i + 1)
  in
  go [] 0

let verify (t : Monitor.t) =
  let buf = ureg t 1 in
  match read_user_words t buf 24 with
  | None -> (set_results t Errors.Invalid_arg [], Errors.Invalid_arg)
  | Some ws ->
      commit ~call:sv_verify t @@ fun t ->
      let take n l = List.filteri (fun i _ -> i < n) l
      and drop n l = List.filteri (fun i _ -> i >= n) l in
      let data = Sha256.digest_of_words (take 8 ws) in
      let measurement = Sha256.digest_of_words (take 8 (drop 8 ws)) in
      let mac = Sha256.digest_of_words (drop 16 ws) in
      Monitor.span_enter t "hash";
      let ok = Attest.verify ~key:t.Monitor.attest_key ~measurement ~data ~mac in
      let t = Monitor.charge (Attest.verify_cycles + (24 * Cost.mem_access)) t in
      Monitor.span_exit t;
      ( set_results t Errors.Success [ (if ok then Word.one else Word.zero) ],
        Errors.Success )

(** Shared validation for the dynamic-memory SVCs: argument page must be
    a page of the *current* address space with the expected type. *)
let own_page (t : Monitor.t) ~cur_asp w =
  match Monitor.valid_pagenr t w with
  | None -> Error Errors.Invalid_pageno
  | Some n -> (
      match Pagedb.get t.Monitor.pagedb n with
      | e when Pagedb.owner e = Some cur_asp -> Ok (n, e)
      | Pagedb.Free -> Error Errors.Invalid_pageno
      | _ -> Error Errors.Invalid_pageno)

let l1pt_of (t : Monitor.t) cur_asp =
  match Pagedb.get t.Monitor.pagedb cur_asp with
  | Pagedb.Addrspace a -> a.Pagedb.l1pt
  | _ -> invalid_arg "Svc: current addrspace vanished"

let init_l2ptable (t : Monitor.t) ~cur_asp =
  let spare = ureg t 1 and l1index = Word.to_int (ureg t 2) in
  let result =
    match own_page t ~cur_asp spare with
    | Error e -> Error e
    | Ok (n, Pagedb.SparePage _) ->
        if l1index < 0 || l1index >= Ptable.l1_entries then Error Errors.Invalid_mapping
        else begin
          let l1pt = l1pt_of t cur_asp in
          let l1e = Monitor.load_page_word t l1pt l1index in
          match Ptable.decode_l1e l1e with
          | Some _ -> Error Errors.Addr_in_use
          | None -> Ok (n, l1pt)
        end
    | Ok _ -> Error Errors.Page_in_use
  in
  match result with
  | Error e -> (set_results t e [], e)
  | Ok (n, l1pt) ->
      commit ~call:sv_init_l2ptable t @@ fun t ->
      let t = Monitor.zero_page t n in
      let t =
        {
          t with
          Monitor.pagedb =
            Pagedb.set t.Monitor.pagedb n (Pagedb.L2PTable { addrspace = cur_asp });
        }
      in
      let t = Monitor.install_l1e t ~l1pt ~l2pt:n ~i1:l1index in
      (set_results t Errors.Success [], Errors.Success)

let map_data (t : Monitor.t) ~cur_asp =
  let spare = ureg t 1 and mapping_w = ureg t 2 in
  let result =
    match Mapping.decode mapping_w with
    | None -> Error Errors.Invalid_mapping
    | Some mapping -> (
        match own_page t ~cur_asp spare with
        | Error e -> Error e
        | Ok (n, Pagedb.SparePage _) -> (
            let l1pt = l1pt_of t cur_asp in
            match Monitor.l2pt_for t ~l1pt mapping.Mapping.va with
            | None -> Error Errors.Invalid_mapping
            | Some l2pt -> (
                match Ptable.decode_l2e (Monitor.read_l2e t ~l2pt mapping.Mapping.va) with
                | Some _ -> Error Errors.Addr_in_use
                | None -> Ok (n, l2pt, mapping)))
        | Ok _ -> Error Errors.Page_in_use)
  in
  match result with
  | Error e -> (set_results t e [], e)
  | Ok (n, l2pt, mapping) ->
      commit ~call:sv_map_data t @@ fun t ->
      (* Zero-fill, retype, then publish the mapping. *)
      let t = Monitor.charge (Cost.smc_body_small * 5) t in
      let t = Monitor.zero_page t n in
      let t =
        {
          t with
          Monitor.pagedb =
            Pagedb.set t.Monitor.pagedb n (Pagedb.DataPage { addrspace = cur_asp });
        }
      in
      let pte =
        Ptable.make_l2e ~base:(Monitor.page_pa t n) ~ns:false mapping.Mapping.perms
      in
      let t = Monitor.write_l2e t ~l2pt mapping.Mapping.va pte in
      (set_results t Errors.Success [], Errors.Success)

let unmap_data (t : Monitor.t) ~cur_asp =
  let page = ureg t 1 and mapping_w = ureg t 2 in
  let result =
    match Mapping.decode mapping_w with
    | None -> Error Errors.Invalid_mapping
    | Some mapping -> (
        match own_page t ~cur_asp page with
        | Error e -> Error e
        | Ok (n, Pagedb.DataPage _) -> (
            let l1pt = l1pt_of t cur_asp in
            match Monitor.l2pt_for t ~l1pt mapping.Mapping.va with
            | None -> Error Errors.Invalid_mapping
            | Some l2pt -> (
                match Ptable.decode_l2e (Monitor.read_l2e t ~l2pt mapping.Mapping.va) with
                | Some (pa, false, _) when Word.equal pa (Monitor.page_pa t n) ->
                    Ok (n, l2pt, mapping)
                | _ -> Error Errors.Invalid_mapping))
        | Ok _ -> Error Errors.Invalid_pageno)
  in
  match result with
  | Error e -> (set_results t e [], e)
  | Ok (n, l2pt, mapping) ->
      commit ~call:sv_unmap_data t @@ fun t ->
      let t = Monitor.write_l2e t ~l2pt mapping.Mapping.va Word.zero in
      let t =
        {
          t with
          Monitor.pagedb =
            Pagedb.set t.Monitor.pagedb n (Pagedb.SparePage { addrspace = cur_asp });
        }
      in
      (set_results t Errors.Success [], Errors.Success)

let set_dispatcher (t : Monitor.t) ~cur_thread =
  let entry = ureg t 1 in
  match Pagedb.get t.Monitor.pagedb cur_thread with
  | Pagedb.Thread th ->
      if not (Word.ult entry Ptable.va_limit) then
        (set_results t Errors.Invalid_arg [], Errors.Invalid_arg)
      else begin
        commit ~call:sv_set_dispatcher t @@ fun t ->
        (* Entry 0 deregisters (reverting to exit-with-Fault). *)
        let dispatcher = if Word.equal entry Word.zero then None else Some entry in
        let db =
          Pagedb.set t.Monitor.pagedb cur_thread
            (Pagedb.Thread { th with Pagedb.dispatcher })
        in
        let t = Monitor.charge 24 { t with Monitor.pagedb = db } in
        (set_results t Errors.Success [], Errors.Success)
      end
  | _ -> (set_results t Errors.Invalid_thread [], Errors.Invalid_thread)

(** Dispatch a non-Exit SVC. Returns the updated monitor (with the
    enclave's result registers set) and the error code (for logging;
    the enclave sees it in r0). [sv_resume_faulted] is control flow,
    not a request, and is intercepted by the Enter/Resume loop. *)
let handle (t : Monitor.t) ~cur_asp ~cur_thread =
  let call = Word.to_int (ureg t 0) in
  let t = Monitor.charge Cost.svc_trap t in
  let traced = Monitor.telemetry_on t in
  let entry_cycles = Monitor.cycles t and db0 = t.Monitor.pagedb in
  if traced then
    Monitor.emit t (Komodo_telemetry.Event.Svc_entry { call; name = call_name call });
  let sdepth = Monitor.span_depth t in
  Monitor.span_enter t ("svc." ^ call_name call);
  Monitor.span_enter t "validate";
  let t, err =
    if call = sv_get_random then get_random t
    else if call = sv_attest then attest t ~cur_asp
    else if call = sv_verify then verify t
    else if call = sv_init_l2ptable then init_l2ptable t ~cur_asp
    else if call = sv_map_data then map_data t ~cur_asp
    else if call = sv_unmap_data then unmap_data t ~cur_asp
    else if call = sv_set_dispatcher then set_dispatcher t ~cur_thread
    else (set_results t Errors.Invalid_arg [], Errors.Invalid_arg)
  in
  let t = Monitor.charge Cost.exception_return t in
  Monitor.span_exit_to t sdepth;
  if traced then begin
    List.iter
      (fun (page, from_type, to_type) ->
        Monitor.emit t
          (Komodo_telemetry.Event.Page_transition { page; from_type; to_type }))
      (Pagedb.diff_types db0 t.Monitor.pagedb);
    Monitor.emit t
      (Komodo_telemetry.Event.Svc_exit
         {
           call;
           name = call_name call;
           err = Word.to_int (Errors.to_word err);
           err_name = Errors.show err;
           cycles = Monitor.cycles t - entry_cycles;
         })
  end;
  (t, err)
