(** The PageDB: Komodo's analogue of the SGX enclave page cache map.

    For every secure page it stores the allocation state and, if
    allocated, the page's type and owning address space (§4, §5.2). The
    abstract representation here deliberately omits page *contents* —
    those live in machine memory — mirroring the paper's split between
    the abstract PageDB and the concrete state related by refinement.

    A valid PageDB satisfies internal-consistency invariants (reference
    counts correct, internal references well-typed and intra-enclave,
    page-table leaves pointing only at same-enclave data pages or
    insecure memory); {!wf} checks them all and is exercised after every
    monitor call by the test suite, as the paper proves of every SMC and
    SVC. *)

module Word = Komodo_machine.Word
module Memory = Komodo_machine.Memory
module Ptable = Komodo_machine.Ptable
module Platform = Komodo_tz.Platform
module Layout = Komodo_tz.Layout

type pagenr = int

type addrspace_state = Init | Final | Stopped
[@@deriving eq, show { with_path = false }]

(** Saved user context of a suspended (entered) thread: r0-r12, SP, LR,
    the resumption PC (code image base + flat index), and the saved
    CPSR. *)
type thread_ctx = {
  regs : Word.t list;
  image : Word.t;  (** code-image base VA the PC indexes into *)
  pc : Word.t;
  cpsr : Word.t;
}

let equal_thread_ctx a b =
  List.equal Word.equal a.regs b.regs
  && Word.equal a.image b.image
  && Word.equal a.pc b.pc && Word.equal a.cpsr b.cpsr

type addrspace_info = {
  l1pt : pagenr;
  refcount : int;  (** pages owned by this space, excluding itself *)
  state : addrspace_state;
  measurement : Measure.t;
}

type thread_info = {
  addrspace : pagenr;
  entry_point : Word.t;
  entered : bool;  (** suspended mid-execution; context saved *)
  ctx : thread_ctx option;
  dispatcher : Word.t option;
      (** LibOS-style fault-handler entry point registered by the enclave
          (the dispatcher interface of the paper's §9.2); [None] gives
          the base behaviour of exiting with [Fault]. *)
  fault_ctx : thread_ctx option;
      (** context saved when control was upcalled to the dispatcher;
          restored by the ResumeFaulted SVC to retry the access *)
}

type entry =
  | Free
  | Addrspace of addrspace_info
  | Thread of thread_info
  | L1PTable of { addrspace : pagenr }
  | L2PTable of { addrspace : pagenr }
  | DataPage of { addrspace : pagenr }
  | SparePage of { addrspace : pagenr }

let type_name = function
  | Free -> "free"
  | Addrspace _ -> "addrspace"
  | Thread _ -> "thread"
  | L1PTable _ -> "l1ptable"
  | L2PTable _ -> "l2ptable"
  | DataPage _ -> "datapage"
  | SparePage _ -> "sparepage"

(** Owning address space of an allocated page ([None] for [Free] and for
    address-space pages themselves, which own themselves). *)
let owner = function
  | Free | Addrspace _ -> None
  | Thread { addrspace; _ }
  | L1PTable { addrspace }
  | L2PTable { addrspace }
  | DataPage { addrspace }
  | SparePage { addrspace } ->
      Some addrspace

module Pmap = Map.Make (Int)

type t = { entries : entry Pmap.t; npages : int }

let make ~npages = { entries = Pmap.empty; npages }
let npages t = t.npages
let valid_pagenr t n = n >= 0 && n < t.npages

let get t n =
  if not (valid_pagenr t n) then invalid_arg "Pagedb.get: page number out of range";
  match Pmap.find_opt n t.entries with Some e -> e | None -> Free

let set t n e =
  if not (valid_pagenr t n) then invalid_arg "Pagedb.set: page number out of range";
  let entries =
    match e with Free -> Pmap.remove n t.entries | _ -> Pmap.add n e t.entries
  in
  { t with entries }

let is_free t n = match get t n with Free -> true | _ -> false

let addrspace_of t n =
  match get t n with
  | Addrspace a -> Some (n, a)
  | _ -> None

(** All page numbers owned by address space [asp] (excluding the
    address-space page itself). *)
let owned_pages t asp =
  Pmap.fold
    (fun n e acc -> if owner e = Some asp then n :: acc else acc)
    t.entries []
  |> List.rev

let count_owned t asp = List.length (owned_pages t asp)

(** Number of free pages remaining. *)
let free_count t =
  t.npages - Pmap.cardinal t.entries

let all_addrspaces t =
  Pmap.fold
    (fun n e acc -> match e with Addrspace a -> (n, a) :: acc | _ -> acc)
    t.entries []
  |> List.rev

(** Pages whose *type* differs between [before] and [after], as
    [(page, old_type_name, new_type_name)] in page order — the raw
    material of telemetry's page-transition events. Content-only
    changes (e.g. a thread's saved context) are not transitions. *)
let diff_types before after =
  let tagged m =
    Pmap.map (fun e -> type_name e) m.entries
  in
  let b = tagged before and a = tagged after in
  Pmap.merge
    (fun _n tb ta ->
      let tb = Option.value tb ~default:"free"
      and ta = Option.value ta ~default:"free" in
      if String.equal tb ta then None else Some (tb, ta))
    b a
  |> Pmap.bindings
  |> List.map (fun (n, (tb, ta)) -> (n, tb, ta))

(* -- Reference-count maintenance -------------------------------------- *)

let bump_refcount t asp delta =
  match get t asp with
  | Addrspace a ->
      let refcount = a.refcount + delta in
      assert (refcount >= 0);
      set t asp (Addrspace { a with refcount })
  | _ -> invalid_arg "Pagedb.bump_refcount: not an address space"

(** Allocate page [n] (must be free) as [e], maintaining the owner's
    refcount. *)
let alloc t n e =
  assert (is_free t n);
  let t = set t n e in
  match owner e with Some asp -> bump_refcount t asp 1 | None -> t

(** Free page [n], maintaining the owner's refcount. *)
let release t n =
  let e = get t n in
  let t = set t n Free in
  match owner e with Some asp -> bump_refcount t asp (-1) | None -> t

(* -- Well-formedness --------------------------------------------------- *)

type violation = { page : pagenr; message : string }

let pp_violation fmt v = Format.fprintf fmt "page %d: %s" v.page v.message

(** Check every PageDB invariant against the concrete memory [mem]
    (needed to inspect page-table contents). Returns all violations;
    the empty list means well-formed. *)
let check (plat : Platform.t) (mem : Memory.t) (t : t) : violation list =
  let bad = ref [] in
  let err page message = bad := { page; message } :: !bad in
  let page_pa n = Platform.page_base plat n in
  (* Per-entry structural checks. *)
  Pmap.iter
    (fun n e ->
      if not (valid_pagenr t n) then err n "page number out of range";
      match e with
      | Free -> err n "Free entry explicitly stored"
      | Addrspace a -> begin
          (* Stopped spaces are mid-teardown: Remove may reclaim the
             first-level table page before the addrspace page itself,
             so the l1pt reference only has to be well-typed while the
             space could still run (Komodo's stopped-addrspace
             exception). *)
          (match get t a.l1pt with
          | L1PTable { addrspace } when addrspace = n -> ()
          | _ when equal_addrspace_state a.state Stopped -> ()
          | L1PTable _ -> err n "l1pt owned by another address space"
          | _ -> err n "l1pt is not an L1PTable");
          if a.refcount <> count_owned t n then
            err n
              (Printf.sprintf "refcount %d but owns %d pages" a.refcount
                 (count_owned t n));
          match (a.state, Measure.digest a.measurement) with
          | Init, Some _ -> err n "unfinalised space with measurement digest"
          | (Final | Stopped), None -> err n "final space lacking measurement"
          | _ -> ()
        end
      | Thread th -> begin
          (match get t th.addrspace with
          | Addrspace _ -> ()
          | _ -> err n "thread's addrspace is not an Addrspace");
          (match (th.entered, th.ctx) with
          | true, None -> err n "entered thread without saved context"
          | false, Some _ -> err n "idle thread with stale context"
          | _ -> ());
          List.iter
            (fun ctx ->
              match ctx with
              | Some c when List.length c.regs <> 15 ->
                  err n "thread context must hold 15 registers"
              | _ -> ())
            [ th.ctx; th.fault_ctx ]
        end
      | L1PTable { addrspace }
      | L2PTable { addrspace }
      | DataPage { addrspace }
      | SparePage { addrspace } -> (
          match get t addrspace with
          | Addrspace _ -> ()
          | _ -> err n "owner is not an Addrspace"))
    t.entries;
  (* Page-table content checks: every present first-level entry points
     at an L2PTable of the same space; every leaf maps a same-space
     data page (secure) or valid insecure memory. *)
  List.iter
    (fun (asn, (a : _)) ->
      match a with
      | { state = Stopped; _ } ->
          (* A stopped space can never be entered again, so its tables
             are dead: Remove reclaims them one page at a time, and a
             first-level entry may dangle over a freed second-level
             table mid-teardown. Komodo's invariant makes exactly this
             exception for stopped address spaces. *)
          ()
      | { l1pt; _ } when not (valid_pagenr t l1pt) -> err asn "l1pt out of range"
      | { l1pt; _ } ->
          let l1 = Memory.load_range_array mem (page_pa l1pt) Ptable.l1_entries in
          for i1 = 0 to Ptable.l1_entries - 1 do
            begin match Ptable.decode_l1e l1.(i1) with
            | None -> ()
            | Some l2_base -> (
                match Platform.page_of_pa plat l2_base with
                | None -> err l1pt "first-level entry points outside secure region"
                | Some l2n -> (
                    match get t l2n with
                    | L2PTable { addrspace } when addrspace = asn ->
                        let l2 =
                          Memory.load_range_array mem l2_base Ptable.l2_entries
                        in
                        let check_leaf i2 =
                          match Ptable.decode_l2e l2.(i2) with
                          | None -> ()
                          | Some (pa, ns, _) ->
                              if ns then begin
                                if not (Platform.is_valid_insecure plat pa) then
                                  err l2n "insecure leaf maps protected memory"
                              end
                              else begin
                                match Platform.page_of_pa plat pa with
                                | None -> err l2n "secure leaf outside secure region"
                                | Some dn -> (
                                    match get t dn with
                                    | DataPage { addrspace } when addrspace = asn ->
                                        ()
                                    | DataPage _ ->
                                        err l2n
                                          "leaf maps a data page of another enclave"
                                    | e ->
                                        err l2n
                                          (Printf.sprintf
                                             "leaf maps a %s page as data"
                                             (type_name e)))
                              end
                        in
                        for i2 = 0 to Ptable.l2_entries - 1 do
                          check_leaf i2
                        done
                    | L2PTable _ -> err l1pt "first-level entry crosses enclaves"
                    | e ->
                        err l1pt
                          (Printf.sprintf "first-level entry maps a %s page"
                             (type_name e))))
            end
          done)
    (all_addrspaces t);
  List.rev !bad

let wf plat mem t = check plat mem t = []

(* -- Equality ----------------------------------------------------------- *)

let equal_entry a b =
  match (a, b) with
  | Free, Free -> true
  | Addrspace x, Addrspace y ->
      x.l1pt = y.l1pt && x.refcount = y.refcount
      && equal_addrspace_state x.state y.state
      && Measure.equal x.measurement y.measurement
  | Thread x, Thread y ->
      x.addrspace = y.addrspace
      && Word.equal x.entry_point y.entry_point
      && x.entered = y.entered
      && Option.equal equal_thread_ctx x.ctx y.ctx
      && Option.equal Word.equal x.dispatcher y.dispatcher
      && Option.equal equal_thread_ctx x.fault_ctx y.fault_ctx
  | L1PTable x, L1PTable y -> x.addrspace = y.addrspace
  | L2PTable x, L2PTable y -> x.addrspace = y.addrspace
  | DataPage x, DataPage y -> x.addrspace = y.addrspace
  | SparePage x, SparePage y -> x.addrspace = y.addrspace
  | _ -> false

let equal a b =
  a.npages = b.npages && Pmap.equal equal_entry a.entries b.entries

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Pmap.iter
    (fun n e -> Format.fprintf fmt "%4d: %s@ " n (type_name e))
    t.entries;
  Format.fprintf fmt "@]"
