(** User-mode executors.

    The monitor's Enter/Resume path is parametric in *how* user code
    runs, mirroring the paper's two levels:

    - {!concrete} actually interprets the enclave's code (bytecode or a
      registered native service) through the page table;
    - {!havoc} is the specification model (§5.1, §6.3): user execution
      trashes all user-visible registers and all user-writable pages,
      as uninterpreted-but-deterministic functions of the user-visible
      state and a non-determinism seed. Updates to *insecure* writable
      pages, and the exception ending the burst, depend on the seed
      alone — equal seeds therefore give equal declassified outputs,
      the paper's "same seed for the observer enclave" hypothesis.

    The noninterference harness runs the monitor with {!havoc}; the
    examples and benchmarks run it with {!concrete}. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Exec = Komodo_machine.Exec

type result = { mach : State.t; event : Exec.event }

type t = {
  name : string;
  run : State.t -> entry_va:Word.t -> start_pc:int -> iter:int -> result;
      (** [iter] counts SVC round-trips within one Enter, giving the
          havoc model a fresh seed per burst. *)
}

val concrete :
  ?fuel:int ->
  ?native:(int -> Exec.native option) ->
  ?probe:(steps:int -> unit) ->
  ?inject:(State.t -> State.t * Exec.event option) ->
  unit ->
  t
(** [probe] observes the instructions retired per burst — the machine
    layer's telemetry hook (e.g. feed it into a metrics registry with
    {!Komodo_telemetry.Metrics.add_count}). [inject] is the
    fault-injection hook threaded down to {!Exec.run_bytecode}. *)

val visible_state_key : State.t -> string
(** Digest of the user-visible state (registers, flags, PC, every
    writable page reachable through the current table): the input of
    the havoc model's uninterpreted update functions. *)

val havoc : ?dynamic:bool -> seed:int -> unit -> t
(** The spec-level executor. With [dynamic] the modelled enclave also
    issues dynamic-memory SVCs (the declassification channel of
    §6.2). *)
