(** Enclave measurement (§4, "Attestation").

    As an enclave is constructed the monitor hashes the sequence of
    page-allocation calls and their parameters: the virtual address,
    permissions and initial contents of each secure data page, and the
    entry point of every thread. When the enclave is finalised the hash
    becomes its immutable measurement. The OS may build enclaves in any
    order, but any change in layout changes the measurement.

    Records are padded to 64-byte blocks so the monitor only ever runs
    SHA-256 on block-aligned data — the precondition the paper exploits
    to avoid reasoning about padding (§7.2). *)

module Word = Komodo_machine.Word
module Sha256 = Komodo_crypto.Sha256

type t = In_progress of Sha256.ctx | Finalised of Sha256.digest

val initial : t

val add_thread : t -> entry_point:Word.t -> t
(** Extend with a thread creation.
    @raise Invalid_argument if already finalised. *)

val add_data_page : t -> mapping:Mapping.t -> contents:string -> t
(** Extend with a secure data page: the mapping word (address and
    permissions) then the page's 4096-byte initial contents.
    @raise Invalid_argument if finalised or [contents] is not one
    page. *)

val add_data_page_mem :
  t -> mapping:Mapping.t -> mem:Komodo_machine.Memory.t -> pa:Word.t -> t
(** As {!add_data_page}, reading the page directly from memory at
    physical address [pa] with no intermediate strings. Digest is
    bit-identical to {!add_data_page} on the serialised page.
    @raise Invalid_argument if already finalised. *)

val finalise : t -> t
(** @raise Invalid_argument if already finalised. *)

val digest : t -> Sha256.digest option
(** The measurement, available only once finalised. *)

val current_digest : t -> Sha256.digest
(** The digest of the transcript so far, whether or not finalised
    (finalisation does not mutate the context). Used by the refinement
    checker's abstraction function to compare in-progress transcripts. *)

val is_finalised : t -> bool

val equal : t -> t -> bool

val extend_cycles : content_bytes:int -> int
(** Cycles charged for one measurement extension (header block plus
    content blocks). *)

val finalise_cycles : int
