(** User-mode executors.

    The monitor's Enter/Resume path is parametric in *how* user code
    runs, mirroring the two levels at which the paper treats enclave
    execution:

    - {!concrete} actually interprets the enclave's code (bytecode or a
      registered native service) through the page table — what the
      hardware does;
    - {!havoc} is the paper's specification model (§5.1, §6.3): user
      execution trashes all user-visible registers and all user-writable
      pages, modelled as uninterpreted-but-deterministic functions of
      (i) the user-visible state and (ii) a non-determinism seed.
      Updates to *insecure* writable pages depend only on the seed, not
      on user state, capturing that a correct specification cannot let
      secrets flow to insecure memory implicitly. The exception ending
      execution is likewise drawn from the seed alone, so equal seeds
      give equal declassified outputs — the paper's "same seed for the
      observer enclave" hypothesis.

    The noninterference harness runs the monitor with {!havoc}; the
    examples and benchmarks run it with {!concrete}. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Memory = Komodo_machine.Memory
module Regs = Komodo_machine.Regs
module Ptable = Komodo_machine.Ptable
module Exec = Komodo_machine.Exec
module Sha256 = Komodo_crypto.Sha256

type result = { mach : State.t; event : Exec.event }

type t = {
  name : string;
  run : State.t -> entry_va:Word.t -> start_pc:int -> iter:int -> result;
}

(* -- Concrete interpretation ------------------------------------------ *)

let concrete ?(fuel = 2_000_000) ?(native = fun _ -> None) ?probe ?inject () =
  (* One decoded-program cache per executor (one executor per booted
     world): probe programs are re-entered for every burst, and the
     cache revalidates against page chunk identity on each entry. *)
  let cache = Exec.image_cache () in
  let run mach ~entry_va ~start_pc ~iter:_ =
    let mach, event =
      Exec.run ?probe ?inject ~cache mach ~entry_va ~start_pc ~fuel ~native
    in
    { mach; event }
  in
  { name = "concrete"; run }

(* -- Specification-level havoc model ---------------------------------- *)

(** A deterministic word stream expanded from a SHA-256 key by counter
    mode. *)
module Stream = struct
  type s = { key : string; mutable block : string; mutable ctr : int; mutable off : int }

  let make key = { key; block = ""; ctr = 0; off = 32 }

  let next t =
    if t.off >= 32 then begin
      t.block <- Sha256.digest (t.key ^ string_of_int t.ctr);
      t.ctr <- t.ctr + 1;
      t.off <- 0
    end;
    let w = Word.of_bytes_be t.block t.off in
    t.off <- t.off + 4;
    w
end

(** Serialise the user-visible state: user registers, flags, the PC, and
    the (virtual address, contents) of every page reachable writable
    through the current page table. This is the input of the paper's
    uninterpreted update functions. *)
let visible_state_key mach =
  let ctx = Sha256.init in
  let ctx =
    List.fold_left Sha256.absorb_word ctx (Regs.user_visible mach.State.regs)
  in
  let ctx = Sha256.absorb_word ctx (Komodo_machine.Psr.encode mach.State.cpsr) in
  let ctx = Sha256.absorb_word ctx mach.State.upc in
  let writable = Ptable.writable_pages mach.State.mem ~ttbr:mach.State.ttbr0_s in
  let ctx =
    List.fold_left
      (fun ctx (va, pa, ns) ->
        let ctx = Sha256.absorb_word ctx va in
        let ctx = Sha256.absorb ctx (if ns then "ns" else "s!") in
        Memory.absorb_range mach.State.mem pa Ptable.words_per_page ~init:ctx
          ~f:Sha256.absorb_words)
      ctx writable
  in
  Sha256.finalize ctx

(** Which exception the havocked execution ends with, and with what
    call/arguments. Chosen from the seed alone (see above). *)
type havoc_event =
  | H_exit of Word.t
  | H_interrupt
  | H_fault
  | H_svc of Word.t array  (** r0 = call number, r1.. = args *)

let choose_event ~dynamic stream =
  let w = Word.to_int (Stream.next stream) in
  match w mod (if dynamic then 11 else 4) with
  | 0 | 1 -> H_exit (Stream.next stream)
  | 2 -> H_interrupt
  | 3 -> H_fault
  | 4 ->
      (* GetRandom *)
      H_svc [| Word.of_int 1 |]
  | 5 ->
      (* MapData of a seed-chosen spare page at a seed-chosen address *)
      let spare = Stream.next stream in
      let va =
        Word.of_int
          ((Word.to_int (Stream.next stream) land 0x3FFF_F000) lor 0x3 (* rw *))
      in
      H_svc [| Word.of_int 5; spare; va |]
  | 6 ->
      (* UnmapData *)
      let pg = Stream.next stream in
      let va =
        Word.of_int ((Word.to_int (Stream.next stream) land 0x3FFF_F000) lor 0x1)
      in
      H_svc [| Word.of_int 6; pg; va |]
  | 7 ->
      (* InitL2PTable from a spare page *)
      let spare = Stream.next stream in
      let idx = Word.of_int (Word.to_int (Stream.next stream) land 0xFF) in
      H_svc [| Word.of_int 4; spare; idx |]
  | 8 ->
      (* Attest to seed-chosen data; the MAC depends only on the boot
         key and the enclave's measurement. *)
      H_svc (Array.append [| Word.of_int 2 |] (Array.init 8 (fun _ -> Stream.next stream)))
  | 9 ->
      (* SetDispatcher at a seed-chosen address (often invalid). *)
      let va = Word.of_int (Word.to_int (Stream.next stream) land 0x3FFF_F000) in
      H_svc [| Word.of_int 7; va |]
  | _ ->
      (* ResumeFaulted (usually with nothing parked: the error path;
         with a dispatcher registered, the full upcall machinery). *)
      H_svc [| Word.of_int 8 |]

(** The havoc executor. [seed] is the non-determinism source; [dynamic]
    additionally lets the modelled enclave issue dynamic-memory SVCs
    (the declassification channel of §6.2). *)
let havoc ?(dynamic = false) ~seed () =
  let run mach ~entry_va ~start_pc ~iter =
    let tag = Printf.sprintf "|%d|%d|%d" seed start_pc iter in
    let secret_stream =
      Stream.make (Sha256.digest (visible_state_key mach ^ Word.to_bytes_be entry_va ^ tag))
    in
    let public_stream = Stream.make (Sha256.digest ("public" ^ tag)) in
    (* Havoc every user-visible register from the secret stream. *)
    let regs =
      Regs.set_user_visible mach.State.regs
        (List.init 15 (fun _ -> Stream.next secret_stream))
    in
    let mach = { mach with State.regs } in
    (* Havoc all writable pages: secure from the secret stream, insecure
       from the public stream (contents written to insecure memory must
       not depend on user state in the spec model). *)
    let writable = Ptable.writable_pages mach.State.mem ~ttbr:mach.State.ttbr0_s in
    let mach =
      List.fold_left
        (fun mach (_va, pa, ns) ->
          let stream = if ns then public_stream else secret_stream in
          (* Draw the whole page from the stream (in address order, as
             the per-word loop did) and store it as one chunk swap. *)
          let ws = Array.make Ptable.words_per_page Word.zero in
          for i = 0 to Ptable.words_per_page - 1 do
            ws.(i) <- Stream.next stream
          done;
          { mach with State.mem = Memory.store_range_array mach.State.mem pa ws })
        mach writable
    in
    let mach = { mach with State.upc = Word.of_int (Word.to_int (Stream.next public_stream) land 0xFFFF) } in
    let mach = State.charge 64 mach in
    match choose_event ~dynamic public_stream with
    | H_exit v ->
        let regs = Regs.write mach.State.regs ~mode:Komodo_machine.Mode.User (Regs.R 0) Word.zero in
        let regs = Regs.write regs ~mode:Komodo_machine.Mode.User (Regs.R 1) v in
        ({ mach = { mach with State.regs }; event = Exec.Ev_svc Word.zero })
    | H_interrupt -> { mach; event = Exec.Ev_irq }
    | H_fault -> { mach; event = Exec.Ev_fault Exec.Translation }
    | H_svc args ->
        let regs =
          Array.to_list args
          |> List.mapi (fun i v -> (i, v))
          |> List.fold_left
               (fun regs (i, v) ->
                 Regs.write regs ~mode:Komodo_machine.Mode.User (Regs.R i) v)
               mach.State.regs
        in
        { mach = { mach with State.regs }; event = Exec.Ev_svc Word.zero }
  in
  { name = (if dynamic then "havoc-dynamic" else "havoc"); run }
