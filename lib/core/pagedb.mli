(** The PageDB: Komodo's analogue of the SGX enclave page cache map.

    For every secure page it stores the allocation state and, if
    allocated, the page's type and owning address space (§4, §5.2). The
    abstract representation deliberately omits page *contents* — those
    live in machine memory — mirroring the paper's split between the
    abstract PageDB and the concrete state related by refinement.

    A valid PageDB satisfies internal-consistency invariants (reference
    counts correct, internal references well-typed and intra-enclave,
    page-table leaves pointing only at same-enclave data pages or
    insecure memory); {!check} verifies them all and is exercised after
    every monitor call by the test suite, as the paper proves of every
    SMC and SVC. *)

module Word = Komodo_machine.Word
module Memory = Komodo_machine.Memory
module Platform = Komodo_tz.Platform

type pagenr = int

type addrspace_state = Init | Final | Stopped

val equal_addrspace_state : addrspace_state -> addrspace_state -> bool
val pp_addrspace_state : Format.formatter -> addrspace_state -> unit
val show_addrspace_state : addrspace_state -> string

(** Saved user context of a suspended thread: the 15 user-visible
    registers, the code image + flat index forming the PC, and the
    saved CPSR. *)
type thread_ctx = {
  regs : Word.t list;
  image : Word.t;  (** code-image base VA the PC indexes into *)
  pc : Word.t;
  cpsr : Word.t;
}

val equal_thread_ctx : thread_ctx -> thread_ctx -> bool

type addrspace_info = {
  l1pt : pagenr;
  refcount : int;  (** pages owned by this space, excluding itself *)
  state : addrspace_state;
  measurement : Measure.t;
}

type thread_info = {
  addrspace : pagenr;
  entry_point : Word.t;
  entered : bool;  (** suspended mid-execution; context saved *)
  ctx : thread_ctx option;
  dispatcher : Word.t option;
      (** LibOS-style fault-handler entry registered by the enclave
          (dispatcher interface, §9.2); [None] = exit with Fault *)
  fault_ctx : thread_ctx option;
      (** context parked during a dispatcher upcall; restored by
          ResumeFaulted *)
}

type entry =
  | Free
  | Addrspace of addrspace_info
  | Thread of thread_info
  | L1PTable of { addrspace : pagenr }
  | L2PTable of { addrspace : pagenr }
  | DataPage of { addrspace : pagenr }
  | SparePage of { addrspace : pagenr }

val type_name : entry -> string
val equal_entry : entry -> entry -> bool

val owner : entry -> pagenr option
(** Owning address space of an allocated page ([None] for [Free] and
    for address-space pages, which own themselves). *)

type t

val make : npages:int -> t
(** All pages free. *)

val npages : t -> int
val valid_pagenr : t -> pagenr -> bool

val get : t -> pagenr -> entry
(** @raise Invalid_argument on an out-of-range page number. *)

val set : t -> pagenr -> entry -> t
val is_free : t -> pagenr -> bool
val addrspace_of : t -> pagenr -> (pagenr * addrspace_info) option

val owned_pages : t -> pagenr -> pagenr list
(** Pages owned by an address space (excluding its own page). *)

val count_owned : t -> pagenr -> int
val free_count : t -> int
val all_addrspaces : t -> (pagenr * addrspace_info) list

val diff_types : t -> t -> (pagenr * string * string) list
(** Pages whose type differs between the two PageDBs, as
    [(page, old_type_name, new_type_name)] in page order — the raw
    material of telemetry's page-transition events. *)

val bump_refcount : t -> pagenr -> int -> t
(** @raise Invalid_argument if the page is not an address space. *)

val alloc : t -> pagenr -> entry -> t
(** Allocate a free page, maintaining the owner's refcount. *)

val release : t -> pagenr -> t
(** Free a page, maintaining the owner's refcount. *)

type violation = { page : pagenr; message : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Platform.t -> Memory.t -> t -> violation list
(** Every invariant violation (the concrete memory is needed to inspect
    page-table contents); empty means well-formed. *)

val wf : Platform.t -> Memory.t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
