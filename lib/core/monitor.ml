(** Monitor state and shared helpers.

    The verified artefact in the paper is the relation
    [smchandler(s, d, s', d')] over machine states [s] and abstract
    PageDBs [d]; accordingly the monitor state here is exactly that pair
    plus the boot-time platform facts (secure-region geometry, the
    attestation secret, the RNG). SMC and SVC handlers live in
    {!Smc} and {!Svc}; this module holds the state type and the
    page-access and register-discipline helpers they share. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Memory = Komodo_machine.Memory
module Regs = Komodo_machine.Regs
module Mode = Komodo_machine.Mode
module Psr = Komodo_machine.Psr
module Ptable = Komodo_machine.Ptable
module Cost = Komodo_machine.Cost
module Platform = Komodo_tz.Platform
module Layout = Komodo_tz.Layout
module Rng = Komodo_tz.Rng

(** Points in a handler where the fault injector may act. The commit
    point sits between a call's validation phase and its (single,
    atomic) commit — exactly where a concurrent core's write to
    insecure memory, an interrupt assertion, or an entropy-source
    failure would land on real hardware. Lock boundaries are the
    multi-core analogue: the instants just after an acquisition and
    just before a release, where another core's effects become visible
    to (or hidden from) the holder. *)
type phase =
  | Ph_commit of { smc : bool; call : int }
  | Ph_lock of { acquire : bool; cpu : int; page : int; call : int }

(** Deliberately re-enabled partial-mutation bugs, for checker
    self-tests: each breaks the validate-then-commit discipline the
    paper's proofs (and our transactional handlers) rule out. *)
type bug =
  | Bug_partial_map_secure
      (** MapSecure copies the page contents in, then fails — leaving
          secure memory mutated on an error return *)
  | Bug_partial_remove
      (** Remove of a final addrspace releases the page before the
          refcount check fails — PageDB mutated on an error return *)

let bug_name = function
  | Bug_partial_map_secure -> "partial_map_secure"
  | Bug_partial_remove -> "partial_remove"

let bugs = [ Bug_partial_map_secure; Bug_partial_remove ]

let bug_of_string s =
  List.find_opt (fun b -> String.equal (bug_name b) s) bugs

type t = {
  mach : State.t;
  pagedb : Pagedb.t;
  plat : Platform.t;
  attest_key : string;
  rng : Rng.t;
  optimised : bool;
      (** Ablation switch (§8.1): when set, the monitor skips the
          conservative FIQ/IRQ banked-register save/restore and the
          unconditional TLB flush — the lemma-justified optimisations
          the paper proposes. Functional behaviour is unchanged. *)
  sink : Komodo_telemetry.Sink.t;
      (** Telemetry sink the instrumented hot paths report to. The
          default {!Komodo_telemetry.Sink.null} makes every
          instrumentation site a single branch: no events are built,
          no cycles charged, and the verified-path semantics are
          unchanged. *)
  spans : Komodo_telemetry.Span.recorder;
      (** Span recorder for the hierarchical profiler; shared, mutable,
          and {!Komodo_telemetry.Span.null} by default — profiling off
          is one branch per site, like the sink. *)
  inject : (phase -> t -> t) option;
      (** Fault-injection hook, fired at every {!phase} boundary. The
          injector may only do what the threat model allows the
          environment to do: write insecure memory, perturb the
          entropy source, assert interrupts. [None] (the default) is
          fault-free execution. *)
  bug : bug option;
      (** Re-enabled partial-mutation bug for self-tests; [None] is the
          correct monitor. *)
}

let of_boot ?(optimised = false) ?(sink = Komodo_telemetry.Sink.null)
    ?(spans = Komodo_telemetry.Span.null) (b : Komodo_tz.Boot.t) =
  {
    mach = b.Komodo_tz.Boot.state;
    pagedb = Pagedb.make ~npages:b.Komodo_tz.Boot.plat.Platform.npages;
    plat = b.Komodo_tz.Boot.plat;
    attest_key = b.Komodo_tz.Boot.attest_key;
    rng = b.Komodo_tz.Boot.rng;
    optimised;
    sink;
    spans;
    inject = None;
    bug = None;
  }

(** Fire the fault-injection hook at a phase boundary (identity when no
    injector is installed). *)
let phase t p = match t.inject with None -> t | Some f -> f p t

let charge n t = { t with mach = State.charge n t.mach }
let cycles t = t.mach.State.cycles

(* -- Telemetry ---------------------------------------------------------- *)

(** Guard for instrumentation sites: when false (the null sink), skip
    building the event altogether. *)
let telemetry_on t = not (Komodo_telemetry.Sink.is_null t.sink)

(** Emit one event, stamped with the current cycle counter. Emission is
    a side effect of the shared sink and charges no modelled cycles. *)
let emit t ev =
  Komodo_telemetry.Sink.emit t.sink { Komodo_telemetry.Event.at = cycles t; ev }

(* -- Spans -------------------------------------------------------------- *)

module Span = Komodo_telemetry.Span

(** Guard for span sites: when false (the null recorder), every helper
    below is one branch — no frames, no allocation, no cycles. *)
let spans_on t = not (Span.is_null t.spans)

let span_enter t name =
  if spans_on t then Span.enter t.spans ~name ~cycles:(cycles t)

let span_exit t = if spans_on t then Span.exit_ t.spans ~cycles:(cycles t)

(** Close the open span and start a sibling — a handler's
    validate-to-commit transition. *)
let span_mark t name =
  if spans_on t then Span.mark t.spans ~name ~cycles:(cycles t)

let span_depth t = Span.depth t.spans

(** Unwind to a depth snapshot taken at handler entry; robust across
    error-path early returns that skipped interior exits. *)
let span_exit_to t d =
  if spans_on t then Span.exit_to t.spans ~depth:d ~cycles:(cycles t)

(* -- Secure-page access ------------------------------------------------ *)

let page_pa t n = Platform.page_base t.plat n

let load_page_word t n idx =
  Memory.load t.mach.State.mem (Word.add (page_pa t n) (Word.of_int (4 * idx)))

let store_page_word t n idx v =
  let mach =
    State.store t.mach (Word.add (page_pa t n) (Word.of_int (4 * idx))) v
  in
  { t with mach }

(** All of secure page [n]'s words as a fresh array — one bulk read
    instead of 1024 [load_page_word] calls (page-table decoding in the
    abstraction function is a hot path of the refinement checker). *)
let load_page_words t n =
  Memory.load_range_array t.mach.State.mem (page_pa t n) Ptable.words_per_page

(** Whole-page contents as bytes (big-endian words), e.g. for
    measurement. *)
let page_bytes t n =
  Memory.to_bytes_be t.mach.State.mem (page_pa t n) Ptable.words_per_page

let zero_page t n =
  let mach =
    {
      t.mach with
      State.mem =
        Memory.zero_range t.mach.State.mem (page_pa t n) Ptable.words_per_page;
    }
  in
  charge (Cost.word_zero Ptable.words_per_page) { t with mach }

(** Copy one page of insecure memory (physical address [src], already
    validated) into secure page [n]; [src = 0] means zero-fill, as in
    the Komodo sources. *)
let fill_page_from_insecure t n ~src =
  if Word.equal src Word.zero then zero_page t n
  else begin
    let mach =
      {
        t.mach with
        State.mem =
          Memory.copy_range t.mach.State.mem ~src ~dst:(page_pa t n)
            Ptable.words_per_page;
      }
    in
    charge (Cost.word_copy Ptable.words_per_page) { t with mach }
  end

(** Mark the TLB inconsistent after a store into a live page table. *)
let dirty_tlb t =
  { t with mach = { t.mach with State.tlb = Komodo_machine.Tlb.mark_inconsistent t.mach.State.tlb } }

(* -- Page-table manipulation ------------------------------------------ *)

(** Install first-level entry [i1] of address space table page [l1pt] to
    point at second-level table page [l2pt]. *)
let install_l1e t ~l1pt ~l2pt ~i1 =
  let t = store_page_word t l1pt i1 (Ptable.make_l1e ~l2pt_base:(page_pa t l2pt)) in
  charge Cost.mem_access (dirty_tlb t)

(** Read the second-level table page for [va] out of [l1pt], if present. *)
let l2pt_for t ~l1pt va =
  span_enter t "ptwalk";
  let l1e = load_page_word t l1pt (Ptable.l1_index va) in
  let r =
    match Ptable.decode_l1e l1e with
    | None -> None
    | Some l2_base -> Platform.page_of_pa t.plat l2_base
  in
  span_exit t;
  r

let read_l2e t ~l2pt va = load_page_word t l2pt (Ptable.l2_index va)

let write_l2e t ~l2pt va e =
  let t = store_page_word t l2pt (Ptable.l2_index va) e in
  charge Cost.mem_access (dirty_tlb t)

(* -- Register discipline ------------------------------------------------
   Across every SMC: non-volatile registers are preserved, other
   non-return registers are zeroed (to prevent information leaks),
   insecure memory is invariant, and we return in the correct mode
   (§5.2). The prototype achieves preservation by conservatively saving
   and restoring every non-volatile and banked register (§8.1). *)

(** Snapshot of everything the monitor must restore before returning to
    the OS. *)
type os_context = { regs : Regs.t }

let save_os_context t =
  (* Non-volatile GP registers only; banked registers are saved on the
     enclave-entry path, where the enclave could clobber them. *)
  let cost = Cost.reg_save (9 (* r4-r12 *) + 2 (* sp,lr *)) in
  (charge cost t, { regs = t.mach.State.regs })

(** Restore the OS's registers, then apply the return-value discipline:
    r0 = error code, r1 = result, r2-r3 zeroed. *)
let restore_os_context t (saved : os_context) ~err ~retval =
  let cost = Cost.reg_save 11 + (4 * Cost.alu) (* volatile clears *) in
  let regs = saved.regs in
  let mode = Mode.Monitor in
  let regs = Regs.write regs ~mode (Regs.R 0) (Errors.to_word err) in
  let regs = Regs.write regs ~mode (Regs.R 1) retval in
  let regs = Regs.write regs ~mode (Regs.R 2) Word.zero in
  let regs = Regs.write regs ~mode (Regs.R 3) Word.zero in
  charge cost { t with mach = { t.mach with State.regs } }

(** Read SMC argument register r[i] (as captured at SMC entry). *)
let arg t i = State.read_reg t.mach (Regs.R i)

(* -- Validation helpers ------------------------------------------------ *)

let valid_pagenr t w =
  let n = Word.to_int w in
  if Word.to_int w < t.plat.Platform.npages then Some n else None

(** The page number argument [w], provided it denotes a free page. *)
let free_page t w =
  match valid_pagenr t w with
  | None -> Error Errors.Invalid_pageno
  | Some n -> if Pagedb.is_free t.pagedb n then Ok n else Error Errors.Page_in_use

(** The page number argument [w], provided it is an address space in
    state [want] (any state if [want] is [None]). *)
let addrspace_page t ?want w =
  match valid_pagenr t w with
  | None -> Error Errors.Invalid_addrspace
  | Some n -> (
      match Pagedb.get t.pagedb n with
      | Pagedb.Addrspace a -> (
          match want with
          | None -> Ok (n, a)
          | Some s ->
              if Pagedb.equal_addrspace_state a.Pagedb.state s then Ok (n, a)
              else
                Error
                  (match s with
                  | Pagedb.Init -> Errors.Already_final
                  | Pagedb.Final -> Errors.Not_final
                  | Pagedb.Stopped -> Errors.Not_stopped))
      | _ -> Error Errors.Invalid_addrspace)
