(** Secure monitor calls: the OS-facing API (Table 1, upper half) and
    the enclave-execution state machine of Figure 3.

    [handle] is the top level of the specification: it relates the
    machine state and PageDB just after an SMC exception to the states
    just before returning to the OS. Across every SMC the register
    discipline holds (non-volatile and banked registers preserved,
    non-return registers zeroed, insecure memory untouched), and Enter/
    Resume nest the whole user-execution/SVC loop inside a single SMC. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Regs = Komodo_machine.Regs
module Mode = Komodo_machine.Mode
module Psr = Komodo_machine.Psr
module Exec = Komodo_machine.Exec
module Cost = Komodo_machine.Cost
module Ptable = Komodo_machine.Ptable
module Armexn = Komodo_machine.Armexn
module Platform = Komodo_tz.Platform

(** Monitor call trace: enable with
    [Logs.Src.set_level Smc.log_src (Some Logs.Debug)]. Records every
    SMC with its arguments and result — the audit trail a deployment
    would hang off the secure world. *)
let log_src = Logs.Src.create "komodo.monitor" ~doc:"Komodo monitor call trace"

module Log = (val Logs.src_log log_src)

(* Call numbers (r0 at SMC entry). *)
let sm_get_phys_pages = 1
let sm_init_addrspace = 2
let sm_init_thread = 3
let sm_init_l2ptable = 4
let sm_alloc_spare = 5
let sm_map_secure = 6
let sm_map_insecure = 7
let sm_finalise = 8
let sm_enter = 9
let sm_resume = 10
let sm_stop = 11
let sm_remove = 12

let ok retval t = (t, Errors.Success, retval)
let fail err t = (t, err, Word.zero)

(* -- Transactional discipline -------------------------------------------
   Every handler below is written in validate-then-commit shape: a pure
   validation prefix that only reads state and can only [fail], then a
   single [commit] performing every mutation (PageDB, secure memory,
   cycle charges). The commit point is also where the fault injector may
   act — [Monitor.phase] fires there — so the shape makes the paper's
   atomicity claim (§4: every call completes or leaves state untouched)
   checkable under injected faults: validation facts concern secure
   state the environment cannot touch, so they survive the hook. *)

(** Fire the commit-point injection hook, then run the commit [k] — the
    handler's single atomic mutation. The profiler's validate span ends
    here and the commit span opens. *)
let commit ~call t k =
  let t = Monitor.phase t (Monitor.Ph_commit { smc = true; call }) in
  Monitor.span_mark t "commit";
  k t

(* -- Construction calls ------------------------------------------------- *)

let get_phys_pages (t : Monitor.t) =
  commit ~call:sm_get_phys_pages t @@ fun t ->
  ok (Word.of_int t.Monitor.plat.Platform.npages) (Monitor.charge 10 t)

let init_addrspace (t : Monitor.t) =
  let as_w = Monitor.arg t 1 and l1_w = Monitor.arg t 2 in
  match (Monitor.free_page t as_w, Monitor.free_page t l1_w) with
  | Error e, _ | _, Error e -> fail e t
  | Ok as_pg, Ok l1_pg ->
      (* The two arguments must be distinct pages — the aliasing bug the
         paper found in its unverified prototype (§9.1). *)
      if as_pg = l1_pg then fail Errors.Page_in_use t
      else
        commit ~call:sm_init_addrspace t @@ fun t ->
        let t = Monitor.zero_page t l1_pg in
        let db = t.Monitor.pagedb in
        let db =
          Pagedb.set db as_pg
            (Pagedb.Addrspace
               {
                 l1pt = l1_pg;
                 refcount = 1;
                 state = Pagedb.Init;
                 measurement = Measure.initial;
               })
        in
        let db = Pagedb.set db l1_pg (Pagedb.L1PTable { addrspace = as_pg }) in
        ok Word.zero (Monitor.charge 24 { t with Monitor.pagedb = db })

let init_thread (t : Monitor.t) =
  let as_w = Monitor.arg t 1
  and th_w = Monitor.arg t 2
  and entry = Monitor.arg t 3 in
  match Monitor.addrspace_page t ~want:Pagedb.Init as_w with
  | Error e -> fail e t
  | Ok (as_pg, a) -> (
      match Monitor.free_page t th_w with
      | Error e -> fail e t
      | Ok th_pg ->
          commit ~call:sm_init_thread t @@ fun t ->
          let db =
            Pagedb.alloc t.Monitor.pagedb th_pg
              (Pagedb.Thread
                 {
                   addrspace = as_pg;
                   entry_point = entry;
                   entered = false;
                   ctx = None;
                   dispatcher = None;
                   fault_ctx = None;
                 })
          in
          Monitor.span_enter t "hash";
          let measurement = Measure.add_thread a.Pagedb.measurement ~entry_point:entry in
          let t = Monitor.charge (Measure.extend_cycles ~content_bytes:0) t in
          Monitor.span_exit t;
          let db =
            Pagedb.set db as_pg
              (Pagedb.Addrspace
                 {
                   a with
                   Pagedb.measurement;
                   refcount = a.Pagedb.refcount + 1;
                 })
          in
          let t = Monitor.charge 20 t in
          ok Word.zero { t with Monitor.pagedb = db })

let init_l2ptable (t : Monitor.t) =
  let as_w = Monitor.arg t 1
  and l2_w = Monitor.arg t 2
  and l1index = Word.to_int (Monitor.arg t 3) in
  match Monitor.addrspace_page t ~want:Pagedb.Init as_w with
  | Error e -> fail e t
  | Ok (as_pg, a) -> (
      match Monitor.free_page t l2_w with
      | Error e -> fail e t
      | Ok l2_pg ->
          if l1index < 0 || l1index >= Ptable.l1_entries then
            fail Errors.Invalid_mapping t
          else begin
            let l1pt = a.Pagedb.l1pt in
            match Ptable.decode_l1e (Monitor.load_page_word t l1pt l1index) with
            | Some _ -> fail Errors.Addr_in_use t
            | None ->
                commit ~call:sm_init_l2ptable t @@ fun t ->
                let t = Monitor.zero_page t l2_pg in
                let db =
                  Pagedb.alloc t.Monitor.pagedb l2_pg
                    (Pagedb.L2PTable { addrspace = as_pg })
                in
                let t = { t with Monitor.pagedb = db } in
                let t = Monitor.install_l1e t ~l1pt ~l2pt:l2_pg ~i1:l1index in
                ok Word.zero (Monitor.charge 20 t)
          end)

let alloc_spare (t : Monitor.t) =
  let as_w = Monitor.arg t 1 and sp_w = Monitor.arg t 2 in
  match Monitor.addrspace_page t as_w with
  | Error e -> fail e t
  | Ok (as_pg, a) -> (
      if Pagedb.equal_addrspace_state a.Pagedb.state Pagedb.Stopped then
        fail Errors.Not_final t
      else
        match Monitor.free_page t sp_w with
        | Error e -> fail e t
        | Ok sp_pg ->
            commit ~call:sm_alloc_spare t @@ fun t ->
            let db =
              Pagedb.alloc t.Monitor.pagedb sp_pg
                (Pagedb.SparePage { addrspace = as_pg })
            in
            ok Word.zero (Monitor.charge Cost.smc_body_small { t with Monitor.pagedb = db }))

let map_secure (t : Monitor.t) =
  let as_w = Monitor.arg t 1
  and data_w = Monitor.arg t 2
  and mapping_w = Monitor.arg t 3
  and content = Monitor.arg t 4 in
  match Monitor.addrspace_page t ~want:Pagedb.Init as_w with
  | Error e -> fail e t
  | Ok (as_pg, a) -> (
      match Monitor.free_page t data_w with
      | Error e -> fail e t
      | Ok data_pg -> (
          match Mapping.decode mapping_w with
          | None -> fail Errors.Invalid_mapping t
          | Some mapping -> (
              (* Initial contents come from insecure memory; the address
                 must be page-aligned and genuinely insecure — in
                 particular not the monitor's own direct-mapped image
                 (the validation the paper reports getting wrong before
                 verification, §9.1). [0] means zero-fill. *)
              let content_ok =
                Word.equal content Word.zero
                || (Ptable.page_aligned content
                   && Platform.is_valid_insecure t.Monitor.plat content)
              in
              if not content_ok then fail Errors.Invalid_arg t
              else
                (* [Bug_partial_map_secure] resurrects the naive handler
                   ordering: copy the contents in before the
                   mapping-slot checks, so a late failure returns an
                   error with secure memory already mutated. *)
                let buggy = t.Monitor.bug = Some Monitor.Bug_partial_map_secure in
                let fill t = Monitor.fill_page_from_insecure t data_pg ~src:content in
                let t_err = if buggy then fill t else t in
                match Monitor.l2pt_for t ~l1pt:a.Pagedb.l1pt mapping.Mapping.va with
                | None -> fail Errors.Invalid_mapping t_err
                | Some l2pt -> (
                    match
                      Ptable.decode_l2e (Monitor.read_l2e t ~l2pt mapping.Mapping.va)
                    with
                    | Some _ -> fail Errors.Addr_in_use t_err
                    | None ->
                        commit ~call:sm_map_secure t @@ fun t ->
                        let t = fill t in
                        (* The measurement hash and its cycle charge sit
                           together inside one span so the profiler
                           attributes the extend cost to "hash". *)
                        Monitor.span_enter t "hash";
                        let measurement =
                          Measure.add_data_page_mem a.Pagedb.measurement ~mapping
                            ~mem:t.Monitor.mach.State.mem
                            ~pa:(Monitor.page_pa t data_pg)
                        in
                        let t =
                          Monitor.charge
                            (Measure.extend_cycles ~content_bytes:Ptable.page_size)
                            t
                        in
                        Monitor.span_exit t;
                        let db =
                          Pagedb.alloc t.Monitor.pagedb data_pg
                            (Pagedb.DataPage { addrspace = as_pg })
                        in
                        let db =
                          Pagedb.set db as_pg
                            (Pagedb.Addrspace
                               {
                                 a with
                                 Pagedb.measurement;
                                 refcount = a.Pagedb.refcount + 1;
                               })
                        in
                        let t = { t with Monitor.pagedb = db } in
                        let pte =
                          Ptable.make_l2e ~base:(Monitor.page_pa t data_pg) ~ns:false
                            mapping.Mapping.perms
                        in
                        let t = Monitor.write_l2e t ~l2pt mapping.Mapping.va pte in
                        ok Word.zero t))))

let map_insecure (t : Monitor.t) =
  let as_w = Monitor.arg t 1
  and mapping_w = Monitor.arg t 2
  and target = Monitor.arg t 3 in
  match Monitor.addrspace_page t ~want:Pagedb.Init as_w with
  | Error e -> fail e t
  | Ok (_, a) -> (
      match Mapping.decode mapping_w with
      | None -> fail Errors.Invalid_mapping t
      | Some mapping ->
          if mapping.Mapping.perms.Ptable.x then fail Errors.Invalid_mapping t
          else if
            not
              (Ptable.page_aligned target
              && Platform.is_valid_insecure t.Monitor.plat target)
          then fail Errors.Invalid_arg t
          else (
            match Monitor.l2pt_for t ~l1pt:a.Pagedb.l1pt mapping.Mapping.va with
            | None -> fail Errors.Invalid_mapping t
            | Some l2pt -> (
                match
                  Ptable.decode_l2e (Monitor.read_l2e t ~l2pt mapping.Mapping.va)
                with
                | Some _ -> fail Errors.Addr_in_use t
                | None ->
                    commit ~call:sm_map_insecure t @@ fun t ->
                    let pte =
                      Ptable.make_l2e ~base:target ~ns:true mapping.Mapping.perms
                    in
                    let t = Monitor.write_l2e t ~l2pt mapping.Mapping.va pte in
                    ok Word.zero (Monitor.charge 18 t))))

let finalise (t : Monitor.t) =
  let as_w = Monitor.arg t 1 in
  match Monitor.addrspace_page t ~want:Pagedb.Init as_w with
  | Error e -> fail e t
  | Ok (as_pg, a) ->
      commit ~call:sm_finalise t @@ fun t ->
      Monitor.span_enter t "hash";
      let measurement = Measure.finalise a.Pagedb.measurement in
      let t = Monitor.charge Measure.finalise_cycles t in
      Monitor.span_exit t;
      let db =
        Pagedb.set t.Monitor.pagedb as_pg
          (Pagedb.Addrspace { a with Pagedb.state = Pagedb.Final; measurement })
      in
      ok Word.zero { t with Monitor.pagedb = db }

let stop (t : Monitor.t) =
  let as_w = Monitor.arg t 1 in
  match Monitor.addrspace_page t as_w with
  | Error e -> fail e t
  | Ok (as_pg, a) ->
      if Pagedb.equal_addrspace_state a.Pagedb.state Pagedb.Init then
        fail Errors.Not_final t
      else begin
        commit ~call:sm_stop t @@ fun t ->
        let measurement =
          match a.Pagedb.state with
          | Pagedb.Init -> assert false
          | Pagedb.Final | Pagedb.Stopped -> a.Pagedb.measurement
        in
        let db =
          Pagedb.set t.Monitor.pagedb as_pg
            (Pagedb.Addrspace { a with Pagedb.state = Pagedb.Stopped; measurement })
        in
        ok Word.zero (Monitor.charge 12 { t with Monitor.pagedb = db })
      end

let remove (t : Monitor.t) =
  let pg_w = Monitor.arg t 1 in
  match Monitor.valid_pagenr t pg_w with
  | None -> fail Errors.Invalid_pageno t
  | Some pg -> (
      let db = t.Monitor.pagedb in
      let stopped asp =
        match Pagedb.get db asp with
        | Pagedb.Addrspace { state = Pagedb.Stopped; _ } -> true
        | _ -> false
      in
      match Pagedb.get db pg with
      | Pagedb.Free -> fail Errors.Invalid_pageno t
      | Pagedb.SparePage _ ->
          (* Spare pages may be reclaimed from any enclave at any time;
             this is the OS-visible face of dynamic allocation (§4). *)
          commit ~call:sm_remove t @@ fun t ->
          ok Word.zero
            (Monitor.charge 14 { t with Monitor.pagedb = Pagedb.release t.Monitor.pagedb pg })
      | Pagedb.Addrspace a ->
          if not (Pagedb.equal_addrspace_state a.Pagedb.state Pagedb.Stopped) then
            fail Errors.Not_stopped t
          else if a.Pagedb.refcount > 0 then
            (* [Bug_partial_remove] resurrects the naive ordering:
               release the page before the refcount check, so the
               [In_use] error returns with the PageDB already mutated. *)
            if t.Monitor.bug = Some Monitor.Bug_partial_remove then
              fail Errors.In_use
                { t with Monitor.pagedb = Pagedb.set db pg Pagedb.Free }
            else fail Errors.In_use t
          else
            commit ~call:sm_remove t @@ fun t ->
            ok Word.zero
              (Monitor.charge 14
                 { t with Monitor.pagedb = Pagedb.set t.Monitor.pagedb pg Pagedb.Free })
      | (Pagedb.Thread _ | Pagedb.L1PTable _ | Pagedb.L2PTable _ | Pagedb.DataPage _)
        as e ->
          let asp = Option.get (Pagedb.owner e) in
          if not (stopped asp) then fail Errors.Not_stopped t
          else
            commit ~call:sm_remove t @@ fun t ->
            ok Word.zero
              (Monitor.charge 14
                 { t with Monitor.pagedb = Pagedb.release t.Monitor.pagedb pg }))

(* -- Enclave execution (Enter / Resume) -------------------------------- *)

let exec_event_to_exn = function
  | Exec.Ev_svc _ -> Armexn.Svc
  | Exec.Ev_irq -> Armexn.Irq
  | Exec.Ev_fiq -> Armexn.Fiq
  | Exec.Ev_fault Exec.Prefetch -> Armexn.Prefetch_abort
  | Exec.Ev_fault Exec.Undef_insn -> Armexn.Undefined_instr
  | Exec.Ev_fault _ -> Armexn.Data_abort

let exec_event_kind = function
  | Exec.Ev_svc _ -> "svc"
  | Exec.Ev_irq -> "irq"
  | Exec.Ev_fiq -> "fiq"
  | Exec.Ev_fault f -> "fault:" ^ String.lowercase_ascii (Exec.show_fault f)

(** Trace the intercepted control-flow SVCs (Exit, ResumeFaulted) that
    never reach {!Svc.handle}. *)
let emit_intercepted_svc t ~call ~err ~entry_cycles =
  Monitor.emit t
    (Komodo_telemetry.Event.Svc_exit
       {
         call;
         name = Svc.call_name call;
         err = Word.to_int (Errors.to_word err);
         err_name = Errors.show err;
         cycles = Monitor.cycles t - entry_cycles;
       })

(** Fetch the thread argument for Enter/Resume, validating that it is a
    thread of a finalised enclave. *)
let thread_page (t : Monitor.t) w =
  match Monitor.valid_pagenr t w with
  | None -> Error Errors.Invalid_thread
  | Some n -> (
      match Pagedb.get t.Monitor.pagedb n with
      | Pagedb.Thread th -> (
          match Pagedb.get t.Monitor.pagedb th.Pagedb.addrspace with
          | Pagedb.Addrspace { state = Pagedb.Final; _ } as a -> (
              match a with
              | Pagedb.Addrspace a -> Ok (n, th, a)
              | _ -> assert false)
          | Pagedb.Addrspace _ -> Error Errors.Not_final
          | _ -> Error Errors.Invalid_thread)
      | _ -> Error Errors.Invalid_thread)

(** Capture the current user context (registers, code image, PC, CPSR). *)
let capture_ctx (t : Monitor.t) ~image =
  let mach = t.Monitor.mach in
  {
    Pagedb.regs = Regs.user_visible mach.State.regs;
    image;
    pc = mach.State.upc;
    cpsr = Psr.encode mach.State.cpsr;
  }

(** Save the suspended thread's user context into its PageDB entry. *)
let suspend (t : Monitor.t) th_pg (th : _) ~image =
  let ctx = capture_ctx t ~image in
  let db =
    Pagedb.set t.Monitor.pagedb th_pg
      (Pagedb.Thread { th with Pagedb.entered = true; ctx = Some ctx })
  in
  let t = Monitor.charge (Cost.reg_save 17) t in
  { t with Monitor.pagedb = db }

(** Restore a captured user context into the machine. *)
let restore_ctx (t : Monitor.t) (ctx : Pagedb.thread_ctx) =
  let regs = Regs.set_user_visible t.Monitor.mach.State.regs ctx.Pagedb.regs in
  let cpsr =
    match Psr.decode ctx.Pagedb.cpsr with
    | Some p -> p
    | None -> Psr.user_entry (* saved by the monitor; always decodable *)
  in
  let mach = { t.Monitor.mach with State.regs; cpsr; upc = ctx.Pagedb.pc } in
  { t with Monitor.mach = mach }

(** The enter/resume state machine: repeatedly drop to user mode and
    handle the exception that comes back, until the enclave exits, is
    interrupted, or faults (Figure 3). *)
let rec execution_loop ~(exec : Uexec.t) (t : Monitor.t) ~th_pg ~th ~entry_va ~start_pc
    ~iter =
  (* Watchdog: a runaway SVC/dispatcher loop is surfaced to the OS as a
     fault rather than hanging the monitor. *)
  if iter > 10_000 then begin
    let db =
      Pagedb.set t.Monitor.pagedb th_pg
        (Pagedb.Thread { th with Pagedb.entered = false; ctx = None; fault_ctx = None })
    in
    ({ t with Monitor.pagedb = db }, Errors.Fault, Word.zero)
  end
  else begin
  (* MOVS PC, LR: leave monitor mode for user mode. *)
  let t = Monitor.charge Cost.exception_return t in
  let user_psr = { (Psr.user_entry) with Psr.n = t.Monitor.mach.State.cpsr.Psr.n;
                   z = t.Monitor.mach.State.cpsr.Psr.z;
                   c = t.Monitor.mach.State.cpsr.Psr.c;
                   v = t.Monitor.mach.State.cpsr.Psr.v } in
  let mach = { t.Monitor.mach with State.cpsr = user_psr } in
  let t = { t with Monitor.mach = mach } in
  Monitor.span_enter t "exec";
  let { Uexec.mach; event } = exec.Uexec.run t.Monitor.mach ~entry_va ~start_pc ~iter in
  (* The exception traps back to privileged mode, banking the user PC. *)
  let mach = State.take_exception mach (exec_event_to_exn event) ~return_pc:mach.State.upc in
  let t = { t with Monitor.mach = mach } in
  Monitor.span_exit t;
  let traced = Monitor.telemetry_on t in
  if traced then
    Monitor.emit t (Komodo_telemetry.Event.Exception { kind = exec_event_kind event });
  match event with
  | Exec.Ev_svc _ ->
      let call = Word.to_int (State.read_reg mach (Regs.R 0)) in
      if call = Svc.sv_exit then begin
        (* Exit: registers are not saved; the thread may be re-entered. *)
        let entry_cycles = Monitor.cycles t in
        if traced then
          Monitor.emit t (Komodo_telemetry.Event.Svc_entry { call; name = Svc.call_name call });
        let retval = State.read_reg mach (Regs.R 1) in
        let db =
          Pagedb.set t.Monitor.pagedb th_pg
            (Pagedb.Thread { th with Pagedb.entered = false; ctx = None; fault_ctx = None })
        in
        let banked =
          if t.Monitor.optimised then Cost.banked_save_opt else Cost.banked_save_full
        in
        let t = Monitor.charge (Cost.exit_path + banked) t in
        if traced then emit_intercepted_svc t ~call ~err:Errors.Success ~entry_cycles;
        ({ t with Monitor.pagedb = db }, Errors.Success, retval)
      end
      else if call = Svc.sv_resume_faulted then begin
        (* Dispatcher done: restore the faulting context and retry the
           interrupted access. *)
        let entry_cycles = Monitor.cycles t in
        if traced then
          Monitor.emit t (Komodo_telemetry.Event.Svc_entry { call; name = Svc.call_name call });
        match th.Pagedb.fault_ctx with
        | Some fctx ->
            let th = { th with Pagedb.fault_ctx = None } in
            let db = Pagedb.set t.Monitor.pagedb th_pg (Pagedb.Thread th) in
            let t = restore_ctx { t with Monitor.pagedb = db } fctx in
            let t = Monitor.charge (Cost.reg_save 17 + Cost.svc_trap) t in
            if traced then emit_intercepted_svc t ~call ~err:Errors.Success ~entry_cycles;
            execution_loop ~exec t ~th_pg ~th ~entry_va:fctx.Pagedb.image
              ~start_pc:(Word.to_int fctx.Pagedb.pc) ~iter:(iter + 1)
        | None ->
            (* Nothing to resume: report the error and continue. *)
            let mach =
              State.write_reg t.Monitor.mach (Regs.R 0)
                (Errors.to_word Errors.Not_entered)
            in
            let t = { t with Monitor.mach = mach } in
            if traced then emit_intercepted_svc t ~call ~err:Errors.Not_entered ~entry_cycles;
            execution_loop ~exec t ~th_pg ~th ~entry_va
              ~start_pc:(Word.to_int t.Monitor.mach.State.upc) ~iter:(iter + 1)
      end
      else begin
        let t, _err = Svc.handle t ~cur_asp:th.Pagedb.addrspace ~cur_thread:th_pg in
        (* The SVC may have changed this thread's PageDB entry
           (SetDispatcher); reload it before continuing. *)
        let th =
          match Pagedb.get t.Monitor.pagedb th_pg with
          | Pagedb.Thread th -> th
          | _ -> th
        in
        let start_pc = Word.to_int t.Monitor.mach.State.upc in
        execution_loop ~exec t ~th_pg ~th ~entry_va ~start_pc ~iter:(iter + 1)
      end
  | Exec.Ev_irq | Exec.Ev_fiq ->
      (* Save context and report the interrupt to the OS; the thread is
         marked entered so it cannot be re-entered, only resumed. *)
      let t = suspend t th_pg th ~image:entry_va in
      (t, Errors.Interrupted, Word.zero)
  | Exec.Ev_fault f -> (
      match (th.Pagedb.dispatcher, th.Pagedb.fault_ctx) with
      | Some dispatcher_va, None ->
          (* Dispatcher interface: upcall into the enclave's own fault
             handler with the fault class and address — which never
             reach the OS. The faulting context is parked for
             ResumeFaulted. *)
          let fctx = capture_ctx t ~image:entry_va in
          let th = { th with Pagedb.fault_ctx = Some fctx } in
          let db = Pagedb.set t.Monitor.pagedb th_pg (Pagedb.Thread th) in
          let mach = t.Monitor.mach in
          let mach = State.write_reg mach (Regs.R 0) (Svc.fault_code f) in
          let mach = State.write_reg mach (Regs.R 1) mach.State.far in
          let t =
            Monitor.charge (Cost.reg_save 17 + Cost.svc_trap)
              { t with Monitor.pagedb = db; mach }
          in
          execution_loop ~exec t ~th_pg ~th ~entry_va:dispatcher_va ~start_pc:0
            ~iter:(iter + 1)
      | _ ->
          (* No dispatcher (or a double fault inside the dispatcher):
             the thread exits with an error code but no other
             information, to avoid side-channel leaks; the OS cannot
             observe *which* address faulted, and cannot induce the
             fault (§3.1, §4). *)
          let db =
            Pagedb.set t.Monitor.pagedb th_pg
              (Pagedb.Thread
                 { th with Pagedb.entered = false; ctx = None; fault_ctx = None })
          in
          ({ t with Monitor.pagedb = db }, Errors.Fault, Word.zero))
  end

(** Load the enclave's translation context: page-table base register and
    (unless provably unnecessary) a TLB flush. The specification demands
    a consistent TLB and a matching table at user entry (§5.2). *)
let load_enclave_mmu (t : Monitor.t) (a : _) =
  let target = Monitor.page_pa t a.Pagedb.l1pt in
  let mach = t.Monitor.mach in
  let mach =
    if
      (* Optimised path (§8.1): repeated invocation of the same enclave
         can skip the TTBR reload — and hence, when no page table was
         touched meanwhile, the TLB flush. Proven-safe only because a
         matching TTBR plus a consistent TLB already satisfy the entry
         specification. *)
      t.Monitor.optimised
      && Word.equal mach.State.ttbr0_s target
    then mach
    else State.charge Cost.ttbr_load (State.set_ttbr0_s mach target)
  in
  let mach =
    if t.Monitor.optimised && Komodo_machine.Tlb.is_consistent mach.State.tlb then mach
    else State.flush_tlb mach
  in
  { t with Monitor.mach = mach }

let enter ~exec (t : Monitor.t) =
  let th_w = Monitor.arg t 1 in
  let a1 = Monitor.arg t 2 and a2 = Monitor.arg t 3 and a3 = Monitor.arg t 4 in
  match thread_page t th_w with
  | Error e -> fail e t
  | Ok (th_pg, th, a) ->
      if th.Pagedb.entered then fail Errors.Already_entered t
      else begin
        commit ~call:sm_enter t @@ fun t ->
        if Monitor.telemetry_on t then
          Monitor.emit t
            (Komodo_telemetry.Event.Enclave_lifecycle
               { addrspace = th.Pagedb.addrspace; stage = Komodo_telemetry.Event.Ls_enter });
        let t = load_enclave_mmu t a in
        (* Fresh entry: argument registers set, everything else zeroed. *)
        let regs = Regs.clear_user_visible t.Monitor.mach.State.regs in
        let regs = Regs.write regs ~mode:Mode.User (Regs.R 0) a1 in
        let regs = Regs.write regs ~mode:Mode.User (Regs.R 1) a2 in
        let regs = Regs.write regs ~mode:Mode.User (Regs.R 2) a3 in
        (* Flags start clear on a fresh entry (no OS residue). *)
        let mach =
          {
            t.Monitor.mach with
            State.regs;
            cpsr = Psr.user_entry;
            upc = Word.zero;
            scr_ns = false;
          }
        in
        let banked =
          if t.Monitor.optimised then Cost.banked_save_opt else Cost.banked_save_full
        in
        let t =
          Monitor.charge
            (Cost.enter_validate + banked + Cost.reg_save 17)
            { t with Monitor.mach = mach }
        in
        execution_loop ~exec t ~th_pg ~th ~entry_va:th.Pagedb.entry_point ~start_pc:0
          ~iter:0
      end

let resume ~exec (t : Monitor.t) =
  let th_w = Monitor.arg t 1 in
  match thread_page t th_w with
  | Error e -> fail e t
  | Ok (th_pg, th, a) -> (
      match (th.Pagedb.entered, th.Pagedb.ctx) with
      | false, _ | _, None -> fail Errors.Not_entered t
      | true, Some ctx ->
          commit ~call:sm_resume t @@ fun t ->
          if Monitor.telemetry_on t then
            Monitor.emit t
              (Komodo_telemetry.Event.Enclave_lifecycle
                 { addrspace = th.Pagedb.addrspace; stage = Komodo_telemetry.Event.Ls_resume });
          let t = load_enclave_mmu t a in
          let t = restore_ctx t ctx in
          let t = { t with Monitor.mach = { t.Monitor.mach with State.scr_ns = false } } in
          let banked =
            if t.Monitor.optimised then Cost.banked_save_opt else Cost.banked_save_full
          in
          let t =
            Monitor.charge
              (Cost.enter_validate + banked + Cost.reg_save 17 + Cost.resume_ctx)
              t
          in
          (* The thread is live again: clear the suspended context. *)
          let th' = { th with Pagedb.entered = false; ctx = None } in
          let db = Pagedb.set t.Monitor.pagedb th_pg (Pagedb.Thread th') in
          let t = { t with Monitor.pagedb = db } in
          execution_loop ~exec t ~th_pg ~th:th' ~entry_va:ctx.Pagedb.image
            ~start_pc:(Word.to_int ctx.Pagedb.pc) ~iter:0)

(* -- Top level ----------------------------------------------------------- *)

let call_name call =
  if call = sm_get_phys_pages then "GetPhysPages"
  else if call = sm_init_addrspace then "InitAddrspace"
  else if call = sm_init_thread then "InitThread"
  else if call = sm_init_l2ptable then "InitL2PTable"
  else if call = sm_alloc_spare then "AllocSpare"
  else if call = sm_map_secure then "MapSecure"
  else if call = sm_map_insecure then "MapInsecure"
  else if call = sm_finalise then "Finalise"
  else if call = sm_enter then "Enter"
  else if call = sm_resume then "Resume"
  else if call = sm_stop then "Stop"
  else if call = sm_remove then "Remove"
  else Printf.sprintf "Unknown(%d)" call

let dispatch ~exec (t : Monitor.t) =
  let call = Word.to_int (Monitor.arg t 0) in
  if call = sm_get_phys_pages then get_phys_pages t
  else if call = sm_init_addrspace then init_addrspace t
  else if call = sm_init_thread then init_thread t
  else if call = sm_init_l2ptable then init_l2ptable t
  else if call = sm_alloc_spare then alloc_spare t
  else if call = sm_map_secure then map_secure t
  else if call = sm_map_insecure then map_insecure t
  else if call = sm_finalise then finalise t
  else if call = sm_enter then enter ~exec t
  else if call = sm_resume then resume ~exec t
  else if call = sm_stop then stop t
  else if call = sm_remove then remove t
  else fail Errors.Invalid_arg t

(** Handle an SMC: the machine must be in monitor mode with the OS's
    call in r0-r4 (i.e. just after the SMC exception). Returns with the
    machine back in the OS's mode and world, r0/r1 holding the result,
    and every other OS register preserved. *)
let handle ?(exec = Uexec.concrete ()) (t : Monitor.t) =
  if not (Mode.equal (State.mode t.Monitor.mach) Mode.Monitor) then
    invalid_arg "Smc.handle: not in monitor mode";
  let t, saved = Monitor.save_os_context t in
  let t = { t with Monitor.mach = { t.Monitor.mach with State.scr_ns = false } } in
  let call = Word.to_int (Monitor.arg t 0) in
  let args = List.init 4 (fun i -> Monitor.arg t (i + 1)) in
  let traced = Monitor.telemetry_on t in
  let entry_cycles = Monitor.cycles t and db0 = t.Monitor.pagedb in
  if traced then
    Monitor.emit t
      (Komodo_telemetry.Event.Smc_entry
         { call; name = call_name call; args = List.map Word.to_int args });
  (* Profiling: the whole handler is one span; validation runs until
     the handler's [commit] marks the transition. Depth is snapshotted
     so error returns that skip the commit still unwind cleanly. *)
  let sdepth = Monitor.span_depth t in
  Monitor.span_enter t ("smc." ^ call_name call);
  Monitor.span_enter t "validate";
  let t, err, retval = dispatch ~exec t in
  Log.debug (fun m ->
      m "%s(%s) -> %s, %a" (call_name call)
        (String.concat ", " (List.map Word.show args))
        (Errors.show err) Word.pp retval);
  (* Whatever exception handler ran last (Figure 3's state machine ends
     in SVC/IRQ/abort mode after enclave execution), control flows back
     to the SMC handler's return path in monitor mode. *)
  let t =
    {
      t with
      Monitor.mach =
        { t.Monitor.mach with State.cpsr = Psr.with_mode t.Monitor.mach.State.cpsr Mode.Monitor };
    }
  in
  let t = Monitor.restore_os_context t saved ~err ~retval in
  let t = { t with Monitor.mach = { t.Monitor.mach with State.scr_ns = true } } in
  let mach, _pc = State.exception_return t.Monitor.mach in
  let t = { t with Monitor.mach = mach } in
  Monitor.span_exit_to t sdepth;
  if traced then begin
    (* Page retypings at SMC granularity; inside Enter/Resume the SVC
       handler has already reported its own, so skip the outer diff. *)
    if call <> sm_enter && call <> sm_resume then
      List.iter
        (fun (page, from_type, to_type) ->
          Monitor.emit t
            (Komodo_telemetry.Event.Page_transition { page; from_type; to_type }))
        (Pagedb.diff_types db0 t.Monitor.pagedb);
    (* Lifecycle milestones of the construction/teardown calls; Enter
       and Resume emit theirs inline, before the SVC loop runs. *)
    if Errors.is_success err then begin
      let lifecycle stage addrspace =
        Monitor.emit t
          (Komodo_telemetry.Event.Enclave_lifecycle { addrspace; stage })
      in
      let arg1 = Word.to_int (List.hd args) in
      if call = sm_init_addrspace then lifecycle Komodo_telemetry.Event.Ls_init arg1
      else if call = sm_finalise then lifecycle Komodo_telemetry.Event.Ls_finalise arg1
      else if call = sm_stop then lifecycle Komodo_telemetry.Event.Ls_stop arg1
      else if call = sm_remove then
        match Pagedb.get db0 arg1 with
        | Pagedb.Addrspace _ -> lifecycle Komodo_telemetry.Event.Ls_remove arg1
        | _ -> ()
    end;
    Monitor.emit t
      (Komodo_telemetry.Event.Smc_exit
         {
           call;
           name = call_name call;
           err = Word.to_int (Errors.to_word err);
           err_name = Errors.show err;
           retval = Word.to_int retval;
           cycles = Monitor.cycles t - entry_cycles;
         })
  end;
  (t, err, retval)

(** Convenience wrapper for OS-side callers: from normal world, place
    the call in the argument registers, trap, handle, and return. *)
let invoke ?exec (t : Monitor.t) ~call ~args =
  if List.length args > 4 then invalid_arg "Smc.invoke: at most 4 arguments";
  let mach = t.Monitor.mach in
  if Mode.equal_world mach.State.world Mode.Secure then
    invalid_arg "Smc.invoke: SMCs come from the normal world";
  let mach = State.write_reg mach (Regs.R 0) (Word.of_int call) in
  let mach, _ =
    List.fold_left
      (fun (m, i) v -> (State.write_reg m (Regs.R i) v, i + 1))
      (mach, 1) args
  in
  (* Zero unused argument registers so results are reproducible. *)
  let mach =
    List.fold_left
      (fun m i -> State.write_reg m (Regs.R i) Word.zero)
      mach
      (List.init (4 - List.length args) (fun k -> k + 1 + List.length args))
  in
  let mach = State.take_exception mach Armexn.Smc ~return_pc:(Word.of_int 0xDEAD) in
  handle ?exec { t with Monitor.mach }
