(** Fine-grained PageDB locking for the multi-core monitor.

    Two kinds of locks, one per secure page:

    - an {e addrspace lock} — the lock on an address space's own page —
      guards the addrspace entry (lifecycle state, refcount,
      measurement) {e and} the contents of all its page-table pages:
      every call that writes an L1/L2 slot of enclave [a] holds
      [addrspace a]'s lock, so table walks under that lock read a
      frozen table;
    - a {e page lock} guards a single page's PageDB entry and contents
      (the page being retyped, filled, or freed).

    Lock identity is the page number; the kind is an annotation (an
    argument is locked at addrspace level when the call treats it as an
    address space). Mutual exclusion is per page, so a page racing to
    {e become} an address space is serialised with calls that already
    treat it as one.

    Acquisition order — the deadlock-freedom argument — is the page
    number total order, ascending. Every call computes its complete
    footprint up front (no lock coupling) and acquires in that order;
    any two calls therefore order every pair of locks identically and
    no wait-for cycle can form. The stepper's acquisition histories are
    checked against exactly this claim by a qcheck suite
    ({!acyclic}). *)

module Smc = struct
  (* Call numbers, restated to avoid a cycle: [Smc] depends on
     [Monitor] which may carry lock phases. Asserted equal to
     [Smc.sm_*] by the core test suite. *)
  let get_phys_pages = 1
  let init_addrspace = 2
  let init_thread = 3
  let init_l2ptable = 4
  let alloc_spare = 5
  let map_secure = 6
  let map_insecure = 7
  let finalise = 8
  let enter = 9
  let resume = 10
  let stop = 11
  let remove = 12
end

type level = Addrspace | Page

type t = { level : level; page : int }

let level_name = function Addrspace -> "A" | Page -> "P"
let name l = Printf.sprintf "%s%d" (level_name l.level) l.page

(* Identity and mutual exclusion are by page; [level] is reporting
   metadata. The global acquisition order is ascending page number. *)
let same a b = a.page = b.page
let compare_order a b = Int.compare a.page b.page

let sort_footprint ls = List.sort_uniq compare_order ls

(* -- Footprints ---------------------------------------------------------

   The complete lock set of one SMC, computed syntactically from the
   call and its arguments, plus one PageDB read for calls whose guard
   set depends on ownership (Remove frees a page *and* decrements its
   owner's refcount; Enter/Resume mutate a thread and read its
   addrspace). Out-of-range page arguments take no lock: the handler
   fails validation on them without touching mutable state.

   A footprint read through an unlocked PageDB can be stale; the
   stepper re-computes it after acquisition and restarts when the sets
   differ (optimistic lock acquisition). *)

let footprint (db : Pagedb.t) ~npages ~call ~(args : int list) =
  let arg i = match List.nth_opt args i with Some v -> v land 0xFFFFFFFF | None -> 0 in
  let valid p = p >= 0 && p < npages in
  let a lvl p = if valid p then [ { level = lvl; page = p } ] else [] in
  let raw =
    if call = Smc.get_phys_pages then []
    else if
      call = Smc.init_addrspace || call = Smc.init_thread
      || call = Smc.init_l2ptable || call = Smc.alloc_spare
      || call = Smc.map_secure
    then a Addrspace (arg 0) @ a Page (arg 1)
    else if call = Smc.map_insecure || call = Smc.finalise || call = Smc.stop
    then a Addrspace (arg 0)
    else if call = Smc.enter || call = Smc.resume then begin
      let th = arg 0 in
      let owner =
        if not (valid th) then []
        else
          match Pagedb.get db th with
          | Pagedb.Thread { addrspace; _ } -> a Addrspace addrspace
          | _ -> []
      in
      owner @ a Page th
    end
    else if call = Smc.remove then begin
      let pg = arg 0 in
      if not (valid pg) then []
      else
        match Pagedb.get db pg with
        | Pagedb.Addrspace _ -> a Addrspace pg
        | e -> (
            match Pagedb.owner e with
            | Some asp -> a Addrspace asp @ a Page pg
            | None -> a Page pg)
    end
    else []
  in
  sort_footprint raw

(* -- The lock table ------------------------------------------------------ *)

module Imap = Map.Make (Int)

(** Owner CPU per held page lock. Functional, so stepper snapshots and
    replays are cheap. *)
type table = int Imap.t

let empty : table = Imap.empty
let owner tbl l = Imap.find_opt l.page tbl

let acquire tbl l ~cpu =
  match Imap.find_opt l.page tbl with
  | Some o when o <> cpu -> Error o
  | Some _ -> invalid_arg (Printf.sprintf "Lock.acquire: %s re-entered" (name l))
  | None -> Ok (Imap.add l.page cpu tbl)

let release tbl l ~cpu =
  match Imap.find_opt l.page tbl with
  | Some o when o = cpu -> Imap.remove l.page tbl
  | Some o ->
      invalid_arg
        (Printf.sprintf "Lock.release: %s held by CPU %d, released by %d" (name l) o cpu)
  | None -> invalid_arg (Printf.sprintf "Lock.release: %s not held" (name l))

let held_by tbl ~cpu =
  Imap.fold (fun page o acc -> if o = cpu then { level = Page; page } :: acc else acc) tbl []

(* -- Acquisition-order consistency --------------------------------------

   One history per completed call: its locks in the order they were
   acquired. The global-order claim is that some total order on locks
   is consistent with *every* history — i.e. the union of
   held-before-acquired edges is acyclic. (With the ascending-page
   discipline the order is [compare_order]; the checker does not assume
   it, so a lock-order-inversion bug shows up as a genuine cycle.) *)

let acyclic (histories : t list list) =
  (* Edges u -> v when u was acquired before v within one call. *)
  let succs = Hashtbl.create 64 in
  let add_edge u v =
    let l = try Hashtbl.find succs u.page with Not_found -> [] in
    if not (List.mem v.page l) then Hashtbl.replace succs u.page (v.page :: l)
  in
  List.iter
    (fun hist ->
      let rec pairs = function
        | u :: (v :: _ as rest) ->
            add_edge u v;
            pairs rest
        | _ -> ()
      in
      pairs hist)
    histories;
  (* DFS cycle detection over the edge set. *)
  let state = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let rec dfs n =
    match Hashtbl.find_opt state n with
    | Some 1 -> false
    | Some _ -> true
    | None ->
        Hashtbl.replace state n 1;
        let ok =
          List.for_all dfs (try Hashtbl.find succs n with Not_found -> [])
        in
        Hashtbl.replace state n 2;
        ok
  in
  Hashtbl.fold (fun n _ ok -> ok && dfs n) succs true
