(** Fine-grained PageDB locking for the multi-core monitor.

    One lock per secure page. The {e level} records how a call treats
    the page — [Addrspace] locks guard an address space's entry,
    lifecycle, refcount, measurement and all its page-table contents;
    [Page] locks guard a single page's entry and contents — but lock
    {e identity} (and hence mutual exclusion) is the page number alone,
    so a page racing to become an address space is serialised with
    calls already treating it as one.

    Deadlock freedom is by construction: every call computes its
    complete footprint up front and acquires in ascending page-number
    order ({!compare_order}), so no wait-for cycle can form. {!acyclic}
    checks observed acquisition histories against that claim without
    assuming the order. *)

type level = Addrspace | Page

type t = { level : level; page : int }

val name : t -> string
(** ["A7"] / ["P12"] — level initial + page number. *)

val same : t -> t -> bool
(** Same page (levels are ignored — they are reporting metadata). *)

val compare_order : t -> t -> int
(** The global acquisition order: ascending page number. *)

val sort_footprint : t list -> t list
(** Sort into acquisition order, dropping same-page duplicates. *)

val footprint : Pagedb.t -> npages:int -> call:int -> args:int list -> t list
(** The complete lock set of one SMC, in acquisition order. Computed
    from the call number and arguments plus a PageDB read for
    ownership-dependent guards (Remove locks the page {e and} its
    owning address space; Enter/Resume lock the thread page and its
    address space). Out-of-range arguments take no lock — the handler
    rejects them without touching shared state. A footprint read
    without holding locks may be stale; callers re-derive it after
    acquisition and retry on mismatch. *)

(** {2 The lock table} *)

type table
(** Owner CPU per held lock. Functional. *)

val empty : table

val owner : table -> t -> int option

val acquire : table -> t -> cpu:int -> (table, int) result
(** [Error holder] when contended.
    @raise Invalid_argument on re-entry by the same CPU. *)

val release : table -> t -> cpu:int -> table
(** @raise Invalid_argument if not held by [cpu]. *)

val held_by : table -> cpu:int -> t list

(** {2 Acquisition-order consistency} *)

val acyclic : t list list -> bool
(** Is the union of held-before-acquired edges over the given
    acquisition histories (one per completed call, locks in acquisition
    order) cycle-free — i.e. is there {e some} total order consistent
    with every history? The correct monitor always satisfies this; the
    [lock_inversion] bug does not. *)
