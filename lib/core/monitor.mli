(** Monitor state and shared helpers.

    The verified artefact in the paper is the relation
    [smchandler(s, d, s', d')] over machine states and abstract PageDBs;
    accordingly the monitor state here is exactly that pair plus the
    boot-time platform facts. The SMC and SVC handlers live in {!Smc}
    and {!Svc}; this module holds the state type and the page-access and
    register-discipline helpers they share. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Regs = Komodo_machine.Regs
module Platform = Komodo_tz.Platform
module Rng = Komodo_tz.Rng

(** Fault-injection points inside a handler: the commit point sits
    between a call's pure validation phase and its single atomic
    commit, where asynchronous environment actions (concurrent-core
    stores, interrupt assertion, entropy failure) would land; lock
    boundaries (fired by the multi-core stepper, [acquire] true just
    after an acquisition, false just before a release) are where a
    concurrent core's effects become visible to the holder. *)
type phase =
  | Ph_commit of { smc : bool; call : int }
  | Ph_lock of { acquire : bool; cpu : int; page : int; call : int }

(** Deliberately re-enabled partial-mutation bugs for checker
    self-tests (the analogue of {!Aspec.mutation} on the
    implementation side). *)
type bug = Bug_partial_map_secure | Bug_partial_remove

val bug_name : bug -> string
val bug_of_string : string -> bug option
val bugs : bug list

type t = {
  mach : State.t;
  pagedb : Pagedb.t;
  plat : Platform.t;
  attest_key : string;  (** 32-byte boot-derived attestation secret *)
  rng : Rng.t;
  optimised : bool;
      (** §8.1 ablation switch: skip the conservative FIQ/IRQ
          banked-register saves and redundant TTBR reload + TLB flush.
          Functionally identical (property-tested). *)
  sink : Komodo_telemetry.Sink.t;
      (** Telemetry sink for the instrumented hot paths; the default
          null sink makes instrumentation a single branch with no
          allocation and no modelled-cycle cost. *)
  spans : Komodo_telemetry.Span.recorder;
      (** Shared mutable span recorder for the hierarchical profiler;
          the default null recorder costs one branch per site. *)
  inject : (phase -> t -> t) option;
      (** Fault-injection hook fired at every phase boundary; [None]
          (the default) is fault-free execution. The injector is bound
          by the threat model: insecure memory, the entropy source and
          interrupt lines only. *)
  bug : bug option;  (** re-enabled partial-mutation bug; [None] = correct *)
}

val of_boot :
  ?optimised:bool ->
  ?sink:Komodo_telemetry.Sink.t ->
  ?spans:Komodo_telemetry.Span.recorder ->
  Komodo_tz.Boot.t ->
  t

val phase : t -> phase -> t
(** Fire the fault-injection hook at a phase boundary (identity when no
    injector is installed). *)
val charge : int -> t -> t
val cycles : t -> int

(* Telemetry *)

val telemetry_on : t -> bool
(** True unless the sink is null — instrumentation sites guard on this
    before building events. *)

val emit : t -> Komodo_telemetry.Event.t -> unit
(** Emit one event stamped with the current cycle counter. Side effect
    of the shared sink; charges no modelled cycles. *)

(* Spans: hierarchical profiling hooks. All are single-branch no-ops
   when the recorder is null; none charges modelled cycles. *)

val spans_on : t -> bool
val span_enter : t -> string -> unit
val span_exit : t -> unit

val span_mark : t -> string -> unit
(** Close the open span and start a same-depth sibling (the
    validate-to-commit transition inside a handler). *)

val span_depth : t -> int
val span_exit_to : t -> int -> unit
(** Unwind to a depth snapshot taken at handler entry — robust across
    error-path early returns. *)

(* Secure-page access *)

val page_pa : t -> Pagedb.pagenr -> Word.t
val load_page_word : t -> Pagedb.pagenr -> int -> Word.t
val store_page_word : t -> Pagedb.pagenr -> int -> Word.t -> t

val load_page_words : t -> Pagedb.pagenr -> Word.t array
(** All of a secure page's words in one bulk read — for page-table
    decoding in the abstraction function. *)

val page_bytes : t -> Pagedb.pagenr -> string
(** Whole-page contents, big-endian (for measurement). *)

val zero_page : t -> Pagedb.pagenr -> t
(** Scrub a page, charging the zero-fill cost. *)

val fill_page_from_insecure : t -> Pagedb.pagenr -> src:Word.t -> t
(** Copy one page from (already-validated) insecure memory; [src = 0]
    means zero-fill, as in the Komodo sources. *)

val dirty_tlb : t -> t
(** Mark the TLB inconsistent after a store into a live page table. *)

(* Page-table manipulation *)

val install_l1e : t -> l1pt:Pagedb.pagenr -> l2pt:Pagedb.pagenr -> i1:int -> t
val l2pt_for : t -> l1pt:Pagedb.pagenr -> Word.t -> Pagedb.pagenr option
val read_l2e : t -> l2pt:Pagedb.pagenr -> Word.t -> Word.t
val write_l2e : t -> l2pt:Pagedb.pagenr -> Word.t -> Word.t -> t

(* Register discipline (§5.2): non-volatile registers preserved across
   every SMC, non-return registers zeroed, insecure memory invariant. *)

type os_context

val save_os_context : t -> t * os_context
val restore_os_context : t -> os_context -> err:Errors.t -> retval:Word.t -> t

val arg : t -> int -> Word.t
(** SMC argument register r{i} as captured at SMC entry. *)

(* Validation helpers *)

val valid_pagenr : t -> Word.t -> int option

val free_page : t -> Word.t -> (int, Errors.t) result
(** The argument as a page number, provided it denotes a free page. *)

val addrspace_page :
  t -> ?want:Pagedb.addrspace_state -> Word.t -> (int * Pagedb.addrspace_info, Errors.t) result
(** The argument as an address space, optionally in a required state. *)
