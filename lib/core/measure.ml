(** Enclave measurement (§4, "Attestation").

    As an enclave is constructed the monitor hashes the sequence of
    page-allocation calls and their parameters: the virtual address,
    permissions and initial contents of each secure data page, and the
    entry point of every thread. When the enclave is finalised the hash
    becomes its immutable measurement. The OS may build enclaves in any
    order, but any change in layout changes the measurement.

    Records are padded to 64-byte blocks so the monitor only ever
    invokes SHA-256 on block-aligned data — the precondition the paper
    exploits to avoid reasoning about padding (§7.2). *)

module Word = Komodo_machine.Word
module Sha256 = Komodo_crypto.Sha256

type t = In_progress of Sha256.ctx | Finalised of Sha256.digest

let tag_thread = Word.of_int 0x7468_7264 (* "thrd" *)
let tag_data = Word.of_int 0x6461_7461 (* "data" *)

let initial = In_progress Sha256.init

let record_block words =
  if List.length words > 16 then invalid_arg "Measure.record_block: too long";
  let b = Bytes.make 64 '\000' in
  List.iteri
    (fun i w ->
      let v = Word.to_int w in
      Bytes.set b (4 * i) (Char.chr ((v lsr 24) land 0xFF));
      Bytes.set b ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
      Bytes.set b ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
      Bytes.set b ((4 * i) + 3) (Char.chr (v land 0xFF)))
    words;
  Bytes.unsafe_to_string b

let absorb_record ctx words = Sha256.absorb_block ctx (record_block words)

(** Extend with a thread creation: tag + entry point. *)
let add_thread t ~entry_point =
  match t with
  | Finalised _ -> invalid_arg "Measure.add_thread: already finalised"
  | In_progress ctx -> In_progress (absorb_record ctx [ tag_thread; entry_point ])

(** Extend with a secure data page: tag + mapping word (address and
    permissions), then the page's 4096-byte initial contents. *)
let add_data_page t ~mapping ~contents =
  match t with
  | Finalised _ -> invalid_arg "Measure.add_data_page: already finalised"
  | In_progress ctx ->
      if String.length contents <> Komodo_machine.Ptable.page_size then
        invalid_arg "Measure.add_data_page: need exactly one page of contents";
      let ctx = absorb_record ctx [ tag_data; Mapping.encode mapping ] in
      let rec absorb ctx off =
        if off >= String.length contents then ctx
        else absorb (Sha256.absorb_block ctx (String.sub contents off 64)) (off + 64)
      in
      In_progress (absorb ctx 0)

(** As {!add_data_page}, but reading the page straight out of [mem] at
    physical address [pa] via [Memory.absorb_range] — no 4096-byte
    string, no 64-byte block copies. The record ends block-aligned, so
    [Sha256.absorb_words] takes its direct-compression path; the digest
    is bit-identical to {!add_data_page} on [Memory.to_bytes_be]. *)
let add_data_page_mem t ~mapping ~mem ~pa =
  match t with
  | Finalised _ -> invalid_arg "Measure.add_data_page: already finalised"
  | In_progress ctx ->
      let ctx = absorb_record ctx [ tag_data; Mapping.encode mapping ] in
      let ctx =
        Komodo_machine.Memory.absorb_range mem pa
          Komodo_machine.Memory.page_words ~init:ctx ~f:Sha256.absorb_words
      in
      In_progress ctx

let finalise = function
  | Finalised _ -> invalid_arg "Measure.finalise: already finalised"
  | In_progress ctx -> Finalised (Sha256.finalize ctx)

let digest = function
  | Finalised d -> Some d
  | In_progress _ -> None

(** The digest of the transcript so far, finalised or not. Finalisation
    does not mutate the context, so this is observable at any stage —
    the hook the refinement checker's abstraction function uses to
    compare in-progress transcripts without replaying them. *)
let current_digest = function
  | Finalised d -> d
  | In_progress ctx -> Sha256.finalize ctx

let is_finalised = function Finalised _ -> true | In_progress _ -> false

let equal a b =
  match (a, b) with
  | Finalised x, Finalised y -> String.equal x y
  | In_progress x, In_progress y -> Sha256.equal_ctx x y
  | _ -> false

(** Cycles charged for one measurement extension over [bytes] bytes of
    content (header block + content blocks). *)
let extend_cycles ~content_bytes =
  Komodo_machine.Cost.sha256_block * (1 + ((content_bytes + 63) / 64))

let finalise_cycles = Komodo_machine.Cost.sha256_block
