(** Monitor call result codes.

    Mirrors the error set of the public Komodo sources. Every SMC and
    SVC returns one of these in r0; a few calls also return a value in
    r1 (the §5.2 register discipline). *)

type t =
  | Success
  | Invalid_pageno  (** page number out of range or page free *)
  | Page_in_use  (** target page is not free *)
  | Invalid_addrspace  (** page is not an address space in a usable state *)
  | Already_final  (** construction call on a finalised enclave *)
  | Not_final  (** execution attempted before Finalise *)
  | Invalid_mapping  (** malformed mapping word / missing second-level table *)
  | Addr_in_use  (** virtual address already mapped *)
  | Not_stopped  (** deallocation before Stop *)
  | Interrupted  (** enclave execution suspended by an interrupt *)
  | Fault  (** enclave faulted (only the exception type is released) *)
  | Already_entered  (** Enter on a suspended thread *)
  | Not_entered  (** Resume on a thread with no saved context *)
  | Invalid_thread  (** page is not a thread of a finalised enclave *)
  | Pages_exhausted  (** no secure page available *)
  | In_use  (** reference count prevents removal *)
  | Invalid_arg  (** malformed argument (alignment, insecure range, ...) *)
  | Entropy_exhausted  (** the hardware randomness source ran dry *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

val to_word : t -> Komodo_machine.Word.t
val of_word : Komodo_machine.Word.t -> t option
val is_success : t -> bool
