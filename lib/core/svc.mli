(** Supervisor calls: the enclave-facing monitor API (Table 1, lower
    half), plus the dispatcher interface of §9.2.

    Invoked by the SVC instruction while an enclave executes: call
    number in the enclave's r0, arguments in r1.., results in r0
    (error code) and r1... The handler returns to the enclave — except
    [sv_exit] and [sv_resume_faulted], which are control flow and are
    intercepted by the Enter/Resume loop in {!Smc}. *)

module Word = Komodo_machine.Word
module Exec = Komodo_machine.Exec

(** Call numbers. *)

val sv_exit : int
val sv_get_random : int

val sv_attest : int
(** Data in r1-r8; MAC returned in r1-r8. *)

val sv_verify : int
(** r1 points at a 96-byte buffer (data ‖ measurement ‖ MAC) readable
    through the enclave's own page table; verdict in r1. *)

val sv_init_l2ptable : int
val sv_map_data : int
val sv_unmap_data : int

val sv_set_dispatcher : int
(** r1 = fault-handler entry VA; 0 deregisters. (§9.2 extension.) *)

val sv_resume_faulted : int
(** Restore the context parked by a fault upcall and retry. *)

val call_name : int -> string

val fault_code : Exec.fault -> Word.t
(** How a fault is described to the dispatcher (r0 of the upcall); the
    OS is never told more than [Fault]. *)

val handle :
  Monitor.t -> cur_asp:Pagedb.pagenr -> cur_thread:Pagedb.pagenr -> Monitor.t * Errors.t
(** Dispatch a non-Exit, non-ResumeFaulted SVC: returns the updated
    monitor (result registers set) and the error code the enclave sees
    in r0. *)
