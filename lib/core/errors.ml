(** Monitor call result codes.

    Mirrors the error set of the public Komodo sources. Every SMC and
    SVC returns one of these in r0; a few calls also return a value in
    r1 (§5.2's register discipline). *)

module Word = Komodo_machine.Word

type t =
  | Success
  | Invalid_pageno  (** page number out of range *)
  | Page_in_use  (** target page is not free *)
  | Invalid_addrspace  (** page is not an address space in a usable state *)
  | Already_final  (** construction call on a finalised enclave *)
  | Not_final  (** execution attempted before [Finalise] *)
  | Invalid_mapping  (** malformed mapping word / missing L2 table *)
  | Addr_in_use  (** virtual address already mapped *)
  | Not_stopped  (** deallocation before [Stop] *)
  | Interrupted  (** enclave execution suspended by an interrupt *)
  | Fault  (** enclave faulted (only the exception type is released) *)
  | Already_entered  (** Enter on a suspended thread *)
  | Not_entered  (** Resume on a thread with no saved context *)
  | Invalid_thread  (** page is not a thread of a final enclave *)
  | Pages_exhausted  (** no secure page available *)
  | In_use  (** refcount prevents removal *)
  | Invalid_arg  (** malformed argument (alignment, insecure range, ...) *)
  | Entropy_exhausted  (** the hardware randomness source ran dry *)
[@@deriving eq, show { with_path = false }]

let to_word = function
  | Success -> Word.zero
  | Invalid_pageno -> Word.of_int 1
  | Page_in_use -> Word.of_int 2
  | Invalid_addrspace -> Word.of_int 3
  | Already_final -> Word.of_int 4
  | Not_final -> Word.of_int 5
  | Invalid_mapping -> Word.of_int 6
  | Addr_in_use -> Word.of_int 7
  | Not_stopped -> Word.of_int 8
  | Interrupted -> Word.of_int 9
  | Fault -> Word.of_int 10
  | Already_entered -> Word.of_int 11
  | Not_entered -> Word.of_int 12
  | Invalid_thread -> Word.of_int 13
  | Pages_exhausted -> Word.of_int 14
  | In_use -> Word.of_int 15
  | Invalid_arg -> Word.of_int 16
  | Entropy_exhausted -> Word.of_int 17

let of_word w =
  match Word.to_int w with
  | 0 -> Some Success
  | 1 -> Some Invalid_pageno
  | 2 -> Some Page_in_use
  | 3 -> Some Invalid_addrspace
  | 4 -> Some Already_final
  | 5 -> Some Not_final
  | 6 -> Some Invalid_mapping
  | 7 -> Some Addr_in_use
  | 8 -> Some Not_stopped
  | 9 -> Some Interrupted
  | 10 -> Some Fault
  | 11 -> Some Already_entered
  | 12 -> Some Not_entered
  | 13 -> Some Invalid_thread
  | 14 -> Some Pages_exhausted
  | 15 -> Some In_use
  | 16 -> Some Invalid_arg
  | 17 -> Some Entropy_exhausted
  | _ -> None

let is_success = function Success -> true | _ -> false
