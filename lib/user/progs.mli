(** Sample bytecode enclave programs.

    Small programs in the modelled instruction set, used by the
    quickstart example, the execution tests, and the CLI. Each is a
    structured program ready for {!Uprog.code_words}. *)

module Insn = Komodo_machine.Insn

val add_args : Insn.stmt list
(** Exit with a1 + a2 + a3 (entry arguments arrive in r0-r2). *)

val sum_to_n : Insn.stmt list
(** Exit with the sum 1..r0 (a loop). *)

val store_load : Insn.stmt list
(** Store r1 at the VA in r0, read it back, exit with it. *)

val checksum : Insn.stmt list
(** Sum r1 words at VA r0 — e.g. over a mapped insecure buffer. *)

val svc_probe : Insn.stmt list
(** Issue one SVC (call in entry r0, arguments in r1/r2), then exit
    with the SVC's r0 error code — the refinement checker's probe
    enclave, making SVC error semantics observable at the SMC
    boundary. *)

val random_word : Insn.stmt list
(** One GetRandom SVC; exit with the word. *)

val attest_zero : Insn.stmt list
(** Attest to 32 zero bytes; exit with the first MAC word. *)

val fault_unmapped : Insn.stmt list
(** Dereference an unmapped address (data-abort path). *)

val fault_undefined : Insn.stmt list
(** Execute an undefined instruction. *)

val spin_forever : Insn.stmt list
(** Loop until interrupted (suspend/resume path). *)

val publish_to_shared : Insn.stmt list
(** Write r1 to the shared page at VA r0 — the only legitimate
    enclave-to-OS channel. *)

val map_and_use_spare : Insn.stmt list
(** MapData the spare in r0 at the VA in r1, store/load a sentinel,
    exit with it (0xBEEF on success, 0xDEAD on failure). *)

(** Dispatcher-interface programs (paper §9.2, implemented). *)

val register_dispatcher : Insn.stmt list
val self_paging_main : Insn.stmt list
val self_paging_dispatcher : Insn.stmt list

val futile_dispatcher : Insn.stmt list
(** Resumes without fixing anything: the double-fault path. *)

(** Demand paging with eviction: a 4-page working set on one physical
    frame, evictions enciphered into an insecure swap window. *)

val selfpager_disp_va : int
val selfpager_book : int
val selfpager_swap : int
val selfpager_heap : int
val selfpager_key : int
val selfpager_dispatcher : Insn.stmt list

val selfpager_main : Insn.stmt list
(** Expected exit value: 0xA0+0xA1+0xA2+0xA3 = 0x286. *)
