(** The trusted notary enclave (§8.2).

    Ported (conceptually) from Ironclad: the notary assigns logical
    timestamps to documents. When first entered it gathers entropy from
    the monitor, constructs an RSA key pair and a monotonic counter, and
    publishes (and can attest to) its public key. On each notarise call
    it hashes the provided document with the current counter value,
    signs the hash, increments the counter, and returns the stamp.

    The notary runs as a *native service* (see {!Komodo_machine.Exec}):
    its inner loops (SHA-256, RSA) execute as OCaml but all of its state
    lives in enclave memory, every access goes through its page table,
    and monitor services are obtained by taking real SVC exceptions —
    an event-driven state machine exactly like compiled enclave code,
    with its phase tracked in a state page rather than a program
    counter. Cycle costs for hashing, signing and copying are charged
    explicitly so Figure 5 can be reproduced. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Exec = Komodo_machine.Exec
module Cost = Komodo_machine.Cost
module Sha256 = Komodo_crypto.Sha256
module Rsa = Komodo_crypto.Rsa
open Native_util

let native_id = 1
let rsa_bits = 1024

(* -- Virtual-address layout (fixed by the notary's image) -------------- *)

let code_va = Word.zero
let state_va = Word.of_int 0x1000 (* secure RW state page *)
let heap_va = Word.of_int 0x2000 (* second secure RW page for key material *)
let input_va = Word.of_int 0x10_0000 (* insecure: document buffer *)
let output_va = Word.of_int 0x20_0000 (* insecure: results to the OS *)

(* State-page word offsets. *)
let off_phase = 0
let off_counter = 1
let off_seed = 4 (* 4 words *)
let off_n = 16 (* modulus, 32 words *)
let off_d = 48 (* private exponent, 32 words *)

(* Phases: 0 = fresh, 1..4 = collecting entropy, 5 = ready, 6 = a key
   attestation is in flight. *)
let ph_ready = seeding_phase_ready
let ph_attesting = 6

(* Entry commands (r0 of Enter while ready). *)
let cmd_init = 0
let cmd_notarize = 1
let cmd_attest_key = 2

let seeding = { state_va; off_phase; off_seed }

let state_word s i = load s (Word.add state_va (Word.of_int (4 * i)))
let set_state_word s i v = store s (Word.add state_va (Word.of_int (4 * i))) v

let read_key s =
  let at off = Word.add state_va (Word.of_int (4 * off)) in
  let n = words_to_bignum (read_words s (at off_n) (key_words rsa_bits)) in
  let d = words_to_bignum (read_words s (at off_d) (key_words rsa_bits)) in
  { Rsa.pub = { Rsa.n; e = Rsa.default_e }; d }

(** Public-key digest: what the notary attests to. *)
let pubkey_digest s =
  let at = Word.add state_va (Word.of_int (4 * off_n)) in
  Sha256.digest (words_to_bytes (read_words s at (key_words rsa_bits)))

(* -- Phase handlers ------------------------------------------------------ *)

(** All four entropy words collected: build and store the key pair,
    reset the counter, publish the public key. *)
let finish_init s seed =
  let key = generate_key ~bits:rsa_bits seed in
  let at off = Word.add state_va (Word.of_int (4 * off)) in
  let s = write_words s (at off_n) (bignum_to_words ~bits:rsa_bits key.Rsa.pub.Rsa.n) in
  let s = write_words s (at off_d) (bignum_to_words ~bits:rsa_bits key.Rsa.d) in
  let s = set_state_word s off_counter Word.zero in
  let s = set_state_word s off_phase (Word.of_int ph_ready) in
  let s = write_words s output_va (bignum_to_words ~bits:rsa_bits key.Rsa.pub.Rsa.n) in
  (* Keygen dominates everything else; a multi-signing-cost estimate
     stands in for the prime search. *)
  let s = State.charge (Rsa.sign_cycles ~bits:rsa_bits * 12) s in
  exit_with s Word.zero

let handle_notarize s =
  let doc_va = ureg s 1 and len = Word.to_int (ureg s 2) in
  if len < 0 || len > 0x40_0000 || len mod 4 <> 0 then exit_with s Word.one
  else begin
    let words = read_words s doc_va (len / 4) in
    let counter = state_word s off_counter in
    (* Hash document || counter, sign, bump the counter. *)
    let digest = Sha256.digest (words_to_bytes words ^ Word.to_bytes_be counter) in
    let key = read_key s in
    let signature = Rsa.sign key digest in
    let s = set_state_word s off_counter (Word.add counter Word.one) in
    let s = write_words s output_va (bytes_to_words signature) in
    (* Cycle accounting: document copy-in + hash + sign + copy-out. *)
    let s = State.charge (Cost.mem_access * (len / 4)) s in
    let s = State.charge (Cost.sha256_bytes ~finalise:true (len + 4)) s in
    let s = State.charge (Rsa.sign_cycles ~bits:rsa_bits) s in
    let s = State.charge (Cost.word_copy (String.length signature / 4)) s in
    exit_with s (Word.add counter Word.one)
  end

let handle_attest_key s =
  let s = set_state_word s off_phase (Word.of_int ph_attesting) in
  let data = Sha256.digest_words_of (pubkey_digest s) in
  svc (State.charge 64 s) Svc_nums.attest data

let handle_attest_result s =
  (* MAC delivered in r1-r8; publish it after the public key. *)
  let mac = List.init 8 (fun i -> ureg s (i + 1)) in
  let s = write_words s (Word.add output_va (Word.of_int (4 * key_words rsa_bits))) mac in
  let s = set_state_word s off_phase (Word.of_int ph_ready) in
  exit_with (State.charge 64 s) Word.zero

(** The notary's top-level dispatch: invoked on every entry to user
    mode (fresh Enter or return from an SVC). *)
let native : Exec.native =
 fun s ->
  try
    let phase = Word.to_int (state_word s off_phase) in
    if phase < ph_ready then seeding_step seeding s ~phase ~done_:finish_init
    else if phase = ph_attesting then handle_attest_result s
    else begin
      let cmd = Word.to_int (ureg s 0) in
      if cmd = cmd_notarize then handle_notarize s
      else if cmd = cmd_attest_key then handle_attest_key s
      else if cmd = cmd_init then exit_with s Word.zero (* already initialised *)
      else exit_with s (Word.of_int 2)
    end
  with Enclave_fault f -> { Exec.nstate = s; nevent = Exec.Ev_fault f }

let registry id = if id = native_id then Some native else None

(** An executor with the notary registered. *)
let executor ?fuel ?probe () = Komodo_core.Uexec.concrete ?fuel ~native:registry ?probe ()

(* -- Native-process baseline (Figure 5) ---------------------------------
   The same workload running as an ordinary process: identical compute
   (hash + sign + copies), no enclave crossings, no monitor. *)

type baseline = { key : Rsa.priv; mutable counter : int }

let baseline_create ~seed =
  let words = List.init 4 (fun i -> Word.of_int (seed + i)) in
  { key = generate_key ~bits:rsa_bits words; counter = 0 }

let baseline_notarize b document =
  let digest =
    Sha256.digest (document ^ Word.to_bytes_be (Word.of_int b.counter))
  in
  let signature = Rsa.sign b.key digest in
  b.counter <- b.counter + 1;
  let len = String.length document in
  let cycles =
    (Cost.mem_access * (len / 4))
    + Cost.sha256_bytes ~finalise:true (len + 4)
    + Rsa.sign_cycles ~bits:rsa_bits
    + Cost.word_copy (String.length signature / 4)
  in
  (signature, cycles)
