(** Sample bytecode enclave programs.

    Small programs in the modelled instruction set, used by the
    quickstart example and the execution tests. Each is a structured
    program ([Insn.stmt list]) ready for {!Uprog.code_words}. *)

module Insn = Komodo_machine.Insn
module Word = Komodo_machine.Word
open Uprog

(** Return [a1 + a2 + a3] (entry arguments arrive in r0-r2). *)
let add_args : Insn.stmt list =
  [
    Insn.I (Insn.Add (r3, r0, reg r1));
    Insn.I (Insn.Add (r3, r3, reg r2));
  ]
  @ exit_with r3

(** Sum the integers 1..r0 by looping. *)
let sum_to_n : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r3, imm 0)) (* acc *);
    Insn.I (Insn.Mov (r4, imm 1)) (* i *);
    Insn.I (Insn.Cmp (r4, reg r0));
    Insn.While
      ( Insn.LS,
        [
          Insn.I (Insn.Add (r3, r3, reg r4));
          Insn.I (Insn.Add (r4, r4, imm 1));
          Insn.I (Insn.Cmp (r4, reg r0));
        ] );
  ]
  @ exit_with r3

(** Store r1 at the virtual address in r0, read it back, exit with it. *)
let store_load : Insn.stmt list =
  [
    Insn.I (Insn.Str (r1, r0, imm 0));
    Insn.I (Insn.Ldr (r5, r0, imm 0));
  ]
  @ exit_with r5

(** Compute a simple checksum (sum of words) over [r1] words at VA [r0];
    exits with the checksum. Demonstrates reading a mapped insecure
    buffer from inside an enclave. *)
let checksum : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r3, imm 0)) (* acc *);
    Insn.I (Insn.Mov (r4, imm 0)) (* index *);
    Insn.I (Insn.Cmp (r4, reg r1));
    Insn.While
      ( Insn.CC,
        [
          Insn.I (Insn.Lsl (r5, r4, imm 2));
          Insn.I (Insn.Add (r5, r5, reg r0));
          Insn.I (Insn.Ldr (r6, r5, imm 0));
          Insn.I (Insn.Add (r3, r3, reg r6));
          Insn.I (Insn.Add (r4, r4, imm 1));
          Insn.I (Insn.Cmp (r4, reg r1));
        ] );
  ]
  @ exit_with r3

(** Issue one SVC — call number arriving in entry r0, arguments in
    r1/r2 — then exit with the SVC's r0 error code. The refinement
    checker's probe enclave: every SVC's error semantics become
    observable (and predictable) at the SMC boundary, as the Enter
    return value. *)
let svc_probe : Insn.stmt list =
  [ Insn.I (Insn.Svc Word.zero) ] @ exit_with r0

(** Ask the monitor for a random word, exit with it. *)
let random_word : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r0, imm Svc_nums.get_random));
    Insn.I (Insn.Svc Word.zero);
    (* Result arrives in r1 with the error code in r0. *)
  ]
  @ exit_with r1

(** Attest to the 32 bytes of zeroes in r1-r8, exit with the first MAC
    word — a minimal in-bytecode use of the attestation SVC. *)
let attest_zero : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r1, imm 0));
    Insn.I (Insn.Mov (r2, imm 0));
    Insn.I (Insn.Mov (r3, imm 0));
    Insn.I (Insn.Mov (r4, imm 0));
    Insn.I (Insn.Mov (r5, imm 0));
    Insn.I (Insn.Mov (r6, imm 0));
    Insn.I (Insn.Mov (r7, imm 0));
    Insn.I (Insn.Mov (r8, imm 0));
    Insn.I (Insn.Mov (r0, imm Svc_nums.attest));
    Insn.I (Insn.Svc Word.zero);
  ]
  @ exit_with r1

(** Deliberately dereference an unmapped address: exercises the
    fault-exit path (the OS sees only [Fault]). *)
let fault_unmapped : Insn.stmt list =
  [ Insn.I (Insn.Ldr (r0, r0, imm 0x0FFF_F000)) ] @ exit_with r0

(** Deliberately execute an undefined instruction. *)
let fault_undefined : Insn.stmt list = [ Insn.I Insn.Udf ] @ exit_with r0

(** Spin forever; only an interrupt ends it (exercises suspend/resume). *)
let spin_forever : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r3, imm 0));
    Insn.While (Insn.AL, [ Insn.I (Insn.Add (r3, r3, imm 1)) ]);
  ]

(** Write r1 to the insecure shared page mapped at VA r0, then exit 0 —
    the explicit (and only) way an enclave publishes data to the OS. *)
let publish_to_shared : Insn.stmt list =
  [
    Insn.I (Insn.Str (r1, r0, imm 0));
    Insn.I (Insn.Mov (r4, imm 0));
  ]
  @ exit_with r4

(** Dynamic memory demo: turn the spare page named in r0 into a data
    page mapped read-write at the VA in r1 (via the MapData SVC), store
    a sentinel there, and exit with the sentinel read back. *)
let map_and_use_spare : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r12, reg r1)) (* stash target VA *);
    Insn.I (Insn.Mov (r1, reg r0)) (* spare page nr *);
    Insn.I (Insn.Orr (r2, r12, imm 0x3)) (* mapping word: va | RW *);
    Insn.I (Insn.Mov (r0, imm Svc_nums.map_data));
    Insn.I (Insn.Svc Word.zero);
    (* r0 = error code; bail out with 0xdead on failure. *)
    Insn.I (Insn.Cmp (r0, imm 0));
    Insn.If
      ( Insn.NE,
        [ Insn.I (Insn.Mov (r6, imm 0xDEAD)) ],
        [
          Insn.I (Insn.Mov (r5, imm 0xBEEF));
          Insn.I (Insn.Str (r5, r12, imm 0));
          Insn.I (Insn.Ldr (r6, r12, imm 0));
        ] );
  ]
  @ exit_with r6

(* -- Dispatcher-interface programs (paper §9.2, implemented) ----------- *)

(** Register the dispatcher at the VA in r1, then exit 0. *)
let register_dispatcher : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r0, imm Svc_nums.set_dispatcher));
    Insn.I (Insn.Svc Word.zero);
  ]
  @ exit_with r0

(** The self-paging main program. Entry args: r0 = spare page number,
    r1 = dispatcher entry VA. It registers the dispatcher, stashes the
    spare page number at VA 0x1000 for the dispatcher's use, touches the
    deliberately-unmapped page at 0x6000 (faulting into the dispatcher,
    which maps it), then stores and reloads a sentinel there. *)
let self_paging_main : Insn.stmt list =
  [
    (* Stash the spare page number where the dispatcher can find it. *)
    Insn.I (Insn.Mov (r11, imm 0x1000));
    Insn.I (Insn.Str (r0, r11, imm 0));
    (* SetDispatcher(r1). *)
    Insn.I (Insn.Mov (r0, imm Svc_nums.set_dispatcher));
    Insn.I (Insn.Svc Word.zero);
    (* Touch the unmapped page: faults, dispatcher maps it, retry runs. *)
    Insn.I (Insn.Mov (r10, imm 0x6000));
    Insn.I (Insn.Ldr (r5, r10, imm 0)) (* 0 after zero-fill *);
    Insn.I (Insn.Mov (r6, imm 0xD15E));
    Insn.I (Insn.Str (r6, r10, imm 0));
    Insn.I (Insn.Ldr (r7, r10, imm 0));
    (* Exit with sentinel + first-read value (must be 0xD15E + 0). *)
    Insn.I (Insn.Add (r7, r7, Insn.Reg r5));
  ]
  @ exit_with r7

(** The dispatcher: upcalled with r0 = fault class, r1 = faulting
    address. Demand-maps the enclave's stashed spare page at the
    faulting page and resumes the faulting instruction. *)
let self_paging_dispatcher : Insn.stmt list =
  [
    (* mapping word = page(FAR) | RW *)
    Insn.I (Insn.Lsr (r2, r1, imm 12));
    Insn.I (Insn.Lsl (r2, r2, imm 12));
    Insn.I (Insn.Orr (r2, r2, imm 0x3));
    (* spare page number from the stash at 0x1000 *)
    Insn.I (Insn.Mov (r11, imm 0x1000));
    Insn.I (Insn.Ldr (r1, r11, imm 0));
    Insn.I (Insn.Mov (r0, imm Svc_nums.map_data));
    Insn.I (Insn.Svc Word.zero);
    (* Resume the faulting access (retries the load/store). *)
    Insn.I (Insn.Mov (r0, imm Svc_nums.resume_faulted));
    Insn.I (Insn.Svc Word.zero);
  ]

(** A dispatcher that handles nothing and just resumes: the access
    faults again, and the double fault is reported to the OS. *)
let futile_dispatcher : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r0, imm Svc_nums.resume_faulted));
    Insn.I (Insn.Svc Word.zero);
  ]

(* -- Demand paging with eviction (the full §9.2 self-paging vision) ----
   A working set of four virtual pages backed by a single physical
   spare page. Every touch of a non-resident page faults into the
   dispatcher, which evicts the resident page — XOR-"encrypting" it
   into an insecure swap window so the OS sees only ciphertext — then
   maps the spare at the faulting address and decrypts any previously
   evicted contents back in. The OS observes no faults at all, only
   the enclave's MapData/UnmapData allocation pattern (§6.2's
   declassified channel).

   Enclave layout: main code at 0, dispatcher at [selfpager_disp_va];
   bookkeeping page at 0x1000 ([0] spare page nr, [4] resident va,
   [8] evicted bitmap); 4-page insecure swap window at 0x20000; the
   virtual heap at 0x10000..0x13fff. *)

let selfpager_disp_va = 0x4000
let selfpager_book = 0x1000
let selfpager_swap = 0x20_000
let selfpager_heap = 0x10_000

(** The demo "cipher" key. A real self-pager would use an authenticated
    cipher keyed from GetRandom; the XOR stream demonstrates where it
    slots in while keeping the bytecode readable. *)
let selfpager_key = 0x5EC2_2E75

(* Copy 1024 words from the page at [src] to the page at [dst], XORing
   each word with the key in r4. Clobbers r5, r6, r7. *)
let xor_copy_page ~src ~dst : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r5, imm 0));
    Insn.I (Insn.Cmp (r5, imm 4096));
    Insn.While
      ( Insn.CC,
        [
          Insn.I (Insn.Add (r6, src, reg r5));
          Insn.I (Insn.Ldr (r7, r6, imm 0));
          Insn.I (Insn.Eor (r7, r7, reg r4));
          Insn.I (Insn.Add (r6, dst, reg r5));
          Insn.I (Insn.Str (r7, r6, imm 0));
          Insn.I (Insn.Add (r5, r5, imm 4));
          Insn.I (Insn.Cmp (r5, imm 4096));
        ] );
  ]

(* r6 := swap-slot VA for the heap page in [page_va]; clobbers r6. *)
let swap_slot_of ~page_va : Insn.stmt list =
  [
    Insn.I (Insn.Sub (r6, page_va, imm selfpager_heap));
    Insn.I (Insn.Add (r6, r6, imm selfpager_swap));
  ]

(** The paging dispatcher. Upcalled with r0 = fault class, r1 = FAR.
    All of main's registers are parked in the fault context, so the
    dispatcher may clobber freely; ResumeFaulted restores them. *)
let selfpager_dispatcher : Insn.stmt list =
  [
    (* r12 = faulting page VA; r9 = bookkeeping base; r4 = cipher key. *)
    Insn.I (Insn.Lsr (r12, r1, imm 12));
    Insn.I (Insn.Lsl (r12, r12, imm 12));
    Insn.I (Insn.Mov (r9, imm selfpager_book));
    Insn.I (Insn.Mov (r4, imm selfpager_key));
    (* Evict the resident page, if any. *)
    Insn.I (Insn.Ldr (r11, r9, imm 4));
    Insn.I (Insn.Cmp (r11, imm 0));
    Insn.If
      ( Insn.NE,
        swap_slot_of ~page_va:r11
        @ [ Insn.I (Insn.Mov (r10, reg r6)) ]
        @ xor_copy_page ~src:r11 ~dst:r10
        @ [
            (* Mark it evicted: bitmap |= 1 << page-index. *)
            Insn.I (Insn.Sub (r6, r11, imm selfpager_heap));
            Insn.I (Insn.Lsr (r6, r6, imm 12));
            Insn.I (Insn.Mov (r7, imm 1));
            Insn.I (Insn.Lsl (r7, r7, reg r6));
            Insn.I (Insn.Ldr (r6, r9, imm 8));
            Insn.I (Insn.Orr (r6, r6, reg r7));
            Insn.I (Insn.Str (r6, r9, imm 8));
            (* UnmapData(spare, resident | R): the frame is free again. *)
            Insn.I (Insn.Ldr (r1, r9, imm 0));
            Insn.I (Insn.Orr (r2, r11, imm 1));
            Insn.I (Insn.Mov (r0, imm Svc_nums.unmap_data));
            Insn.I (Insn.Svc Word.zero);
          ],
        [] );
    (* Map the spare at the faulting page (zero-filled by the monitor). *)
    Insn.I (Insn.Ldr (r1, r9, imm 0));
    Insn.I (Insn.Orr (r2, r12, imm 3));
    Insn.I (Insn.Mov (r0, imm Svc_nums.map_data));
    Insn.I (Insn.Svc Word.zero);
    (* If this page was evicted before, decrypt it back in. *)
    Insn.I (Insn.Sub (r6, r12, imm selfpager_heap));
    Insn.I (Insn.Lsr (r6, r6, imm 12));
    Insn.I (Insn.Mov (r7, imm 1));
    Insn.I (Insn.Lsl (r7, r7, reg r6));
    Insn.I (Insn.Ldr (r6, r9, imm 8));
    Insn.I (Insn.Tst (r6, reg r7));
    Insn.If
      ( Insn.NE,
        swap_slot_of ~page_va:r12
        @ [ Insn.I (Insn.Mov (r10, reg r6)) ]
        @ xor_copy_page ~src:r10 ~dst:r12,
        [] );
    (* Book-keep the new resident and retry the faulting access. *)
    Insn.I (Insn.Str (r12, r9, imm 4));
    Insn.I (Insn.Mov (r0, imm Svc_nums.resume_faulted));
    Insn.I (Insn.Svc Word.zero);
  ]

(** The self-paging main program. Entry arg r0 = spare page number.
    Writes a distinct value into each of four virtual pages (working
    set 4x the physical memory), then reads them all back and exits
    with the sum — correct only if every eviction round-trip preserved
    the data. Expected exit: 0xA0+0xA1+0xA2+0xA3 = 0x286. *)
let selfpager_main : Insn.stmt list =
  [
    (* Stash the spare page number; register the dispatcher. *)
    Insn.I (Insn.Mov (r11, imm selfpager_book));
    Insn.I (Insn.Str (r0, r11, imm 0));
    Insn.I (Insn.Mov (r1, imm selfpager_disp_va));
    Insn.I (Insn.Mov (r0, imm Svc_nums.set_dispatcher));
    Insn.I (Insn.Svc Word.zero);
    (* Write phase: page i gets value 0xA0 + i. *)
    Insn.I (Insn.Mov (r8, imm 0));
    Insn.I (Insn.Cmp (r8, imm 4));
    Insn.While
      ( Insn.CC,
        [
          Insn.I (Insn.Lsl (r6, r8, imm 12));
          Insn.I (Insn.Add (r6, r6, imm selfpager_heap));
          Insn.I (Insn.Add (r7, r8, imm 0xA0));
          Insn.I (Insn.Str (r7, r6, imm 0)) (* faults when non-resident *);
          Insn.I (Insn.Add (r8, r8, imm 1));
          Insn.I (Insn.Cmp (r8, imm 4));
        ] );
    (* Read phase: sum the four values back. *)
    Insn.I (Insn.Mov (r3, imm 0));
    Insn.I (Insn.Mov (r8, imm 0));
    Insn.I (Insn.Cmp (r8, imm 4));
    Insn.While
      ( Insn.CC,
        [
          Insn.I (Insn.Lsl (r6, r8, imm 12));
          Insn.I (Insn.Add (r6, r6, imm selfpager_heap));
          Insn.I (Insn.Ldr (r7, r6, imm 0)) (* faults when non-resident *);
          Insn.I (Insn.Add (r3, r3, reg r7));
          Insn.I (Insn.Add (r8, r8, imm 1));
          Insn.I (Insn.Cmp (r8, imm 4));
        ] );
  ]
  @ exit_with r3
