(** The attestation-verifier enclave: remote attestation as the paper
    defers it (§4) — the analogue of SGX's quoting enclave.

    At initialisation it generates an RSA signing key, publishes the
    public key and locally attests to its hash, so machine-local
    parties can check the key belongs to an enclave measuring as the
    verifier. Its endorse command takes a local attestation tuple
    (data ‖ measurement ‖ MAC) from its input page, checks it with the
    monitor's Verify SVC, and — only if genuine — signs a *quote* a
    remote party can check knowing just the verifier's public key. *)

module Word = Komodo_machine.Word
module Exec = Komodo_machine.Exec
module Rsa = Komodo_crypto.Rsa

val native_id : int
val rsa_bits : int

val code_va : Word.t
val state_va : Word.t
val input_va : Word.t  (** insecure: attestation tuples in *)
val output_va : Word.t  (** insecure: public key / quotes out *)

val cmd_init : int

val cmd_endorse : int
(** Exit value 0 = quote written to the output page; 1 = the local
    attestation did not verify. *)

val quote_prefix : string
val quote_body : data:string -> measurement:string -> string

val check_quote : pub:Rsa.pub -> data:string -> measurement:string -> quote:string -> bool
(** The remote party's side. *)

val native : Exec.native

val registry : int -> Exec.native option
(** Covers both native services (verifier and notary). *)

val executor :
  ?fuel:int ->
  ?probe:(steps:int -> unit) ->
  ?inject:
    (Komodo_machine.State.t ->
    Komodo_machine.State.t * Komodo_machine.Exec.event option) ->
  unit ->
  Komodo_core.Uexec.t
