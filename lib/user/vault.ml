(* The sealed-storage vault enclave.

   Komodo's monitor protects enclave memory but leaves persistence to
   the untrusted OS (§9): anything that must survive a reboot goes to
   a disk the OS controls. The vault is the enclave-side answer — a
   native service that keeps a small secret state and can *seal* it
   into a blob safe to hand to the OS, and later *unseal* a blob the
   OS hands back, refusing loudly rather than silently accepting
   anything the disk lied about.

   Sealing key derivation mirrors SGX's EGETKEY using only the
   monitor services the paper already has: the enclave asks the
   monitor to Attest a fixed domain-separation constant, and the
   returned MAC — HMAC(boot secret, measurement ‖ constant), a value
   the OS never sees — is the measurement-bound root secret. HKDF
   expands it into an AES-256-GCM key and a nonce base. A different
   measurement (or a different boot secret) derives a different key,
   so blobs are bound to both the platform and the exact enclave.

   Freshness cannot come from inside the enclave (its RAM dies with
   the platform), so each seal takes the current value of a trusted
   monotonic counter — the RPMB-style NV counter the paper's §9
   assumes — and binds epoch = counter + 1 into both the GCM nonce
   and the authenticated header. Unseal distinguishes three verdicts:
   accept (0), tampered (2: authentication failed — any bit flip,
   reorder, truncation, or wipe), and stale (3: a genuine blob from
   an earlier epoch — a rollback). It never silently accepts. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Exec = Komodo_machine.Exec
module Cost = Komodo_machine.Cost
module Sha256 = Komodo_crypto.Sha256
module Gcm = Komodo_crypto.Gcm
module Hkdf = Komodo_crypto.Hkdf
open Native_util

let native_id = 3

(* -- Virtual-address layout (fixed by the vault's image) ---------------- *)

let code_va = Word.zero
let state_va = Word.of_int 0x1000 (* secure RW state page *)
let input_va = Word.of_int 0x10_0000 (* insecure: blobs from the OS *)
let output_va = Word.of_int 0x20_0000 (* insecure: blobs to the OS *)

(* State-page word offsets. *)
let off_phase = 0
let off_epoch = 1 (* last sealed/unsealed epoch (informational) *)
let off_key = 2 (* AES-256-GCM key, 8 words *)
let off_nonce = 10 (* nonce base, 3 words *)
let off_state = 16 (* the secret state, [state_words] words *)

let state_words = 16
let state_bytes = 4 * state_words

(* Phases: 0 = fresh, 1 = key-derivation attestation in flight,
   5 = ready (aligned with the other services' ready value). *)
let ph_fresh = 0
let ph_deriving = 1
let ph_ready = seeding_phase_ready

(* Entry commands (r0 of Enter while ready). *)
let cmd_init = 0
let cmd_update = 1
let cmd_seal = 2
let cmd_unseal = 3
let cmd_digest = 4

(* Unseal verdicts (the enclave's exit value). *)
let verdict_accept = 0
let verdict_tampered = 2
let verdict_stale = 3

(* -- Blob format --------------------------------------------------------- *)

(* magic ‖ epoch ‖ ct(epoch ‖ state) ‖ tag, all word-aligned:
   2 + 17 + 4 = 23 words. The clear header is authenticated as GCM
   AAD, and the epoch is repeated inside the plaintext, so a header
   tweak breaks authentication twice over. *)

let blob_magic = Word.of_bytes_be "KVLT" 0
let ct_bytes = 4 + state_bytes (* inner epoch + state *)
let blob_words = 2 + (ct_bytes / 4) + (Gcm.tag_size / 4)
let blob_bytes = 4 * blob_words

let aad_label = "komodo-vault-blob-v1"
let root_constant = "komodo-vault-seal-root-v1"
let key_info = "komodo-vault-seal-key-v1"
let nonce_info = "komodo-vault-nonce-v1"

(** The nonce for [epoch]: the derived base with the epoch folded
    into the trailing 32 bits — unique per epoch under one key,
    because the NV counter never repeats a value. *)
let nonce_for ~base epoch =
  String.mapi
    (fun i c ->
      if i < 8 then c
      else
        Char.chr
          (Char.code c
          lxor (Word.to_int (Word.shift_right_logical epoch (8 * (11 - i)))
                land 0xff)))
    base

let aad_for ~epoch = aad_label ^ Word.to_bytes_be blob_magic ^ Word.to_bytes_be epoch

(* -- Cost model ----------------------------------------------------------
   AES and GHASH cycle constants in the spirit of [Cost]: an unrolled
   software AES round is ~10 ALU+table ops per round, GHASH one
   table-driven multiply per block. *)

let aes_block_cycles = 160
let ghash_block_cycles = 96

let seal_cycles ~aad ~len =
  (Gcm.aes_blocks ~len * aes_block_cycles)
  + (Gcm.ghash_blocks ~aad ~len * ghash_block_cycles)

let derive_cycles =
  Cost.sha256_block
  * (Hkdf.compressions ~ikm_len:32 ~info_len:(String.length key_info) 32
    + Hkdf.compressions ~ikm_len:32 ~info_len:(String.length nonce_info) 12)

(* -- Detection-disable self-test bugs ------------------------------------ *)

(** Re-armable detection bugs ([Monitor.bug]-style): each disables one
    of the two checks unseal's refuse-and-report behaviour rests on,
    so campaigns can prove they would catch a vault that silently
    accepts corrupt or stale blobs. *)
type bug =
  | Bug_accept_tampered  (** ignore GCM authentication failure *)
  | Bug_accept_stale  (** skip the epoch freshness check *)

let bug_name = function
  | Bug_accept_tampered -> "accept_tampered"
  | Bug_accept_stale -> "accept_stale"

let bugs = [ Bug_accept_tampered; Bug_accept_stale ]
let bug_of_string s = List.find_opt (fun b -> bug_name b = s) bugs

(* -- State-page access --------------------------------------------------- *)

let state_word s i = load s (Word.add state_va (Word.of_int (4 * i)))
let set_state_word s i v = store s (Word.add state_va (Word.of_int (4 * i))) v

let state_at i = Word.add state_va (Word.of_int (4 * i))

let read_secret s = words_to_bytes (read_words s (state_at off_state) state_words)
let gcm_key s = Gcm.of_secret (words_to_bytes (read_words s (state_at off_key) 8))

let nonce_base s =
  words_to_bytes (read_words s (state_at off_nonce) 3)

(* -- Phase handlers ------------------------------------------------------ *)

(** Fresh vault: ask the monitor to MAC the domain-separation
    constant under our measurement — the seal root. *)
let start_derive s =
  let s = set_state_word s off_phase (Word.of_int ph_deriving) in
  svc (State.charge 64 s) Svc_nums.attest
    (Sha256.digest_words_of (Sha256.digest root_constant))

(** MAC delivered in r1-r8: expand it into key material and go ready. *)
let finish_derive s =
  let root = words_to_bytes (List.init 8 (fun i -> ureg s (i + 1))) in
  let key = Hkdf.derive ~ikm:root ~info:key_info 32 in
  let nonce = Hkdf.derive ~ikm:root ~info:nonce_info 12 in
  let s = write_words s (state_at off_key) (bytes_to_words key) in
  let s = write_words s (state_at off_nonce) (bytes_to_words nonce) in
  let s = set_state_word s off_epoch Word.zero in
  let s = set_state_word s off_phase (Word.of_int ph_ready) in
  exit_with (State.charge derive_cycles s) Word.zero

(** Update one word of the secret state: r1 = index, r2 = value. *)
let handle_update s =
  let i = Word.to_int (ureg s 1) in
  if i < 0 || i >= state_words then exit_with s Word.one
  else
    let s = set_state_word s (off_state + i) (ureg s 2) in
    exit_with (State.charge Cost.mem_access s) Word.zero

(** Seal under epoch = NV counter (r1) + 1 and publish the blob. *)
let handle_seal s =
  let epoch = Word.add (ureg s 1) Word.one in
  let pt = Word.to_bytes_be epoch ^ read_secret s in
  let ct, tag =
    Gcm.encrypt ~key:(gcm_key s)
      ~nonce:(nonce_for ~base:(nonce_base s) epoch)
      ~aad:(aad_for ~epoch) pt
  in
  let blob = Word.to_bytes_be blob_magic ^ Word.to_bytes_be epoch ^ ct ^ tag in
  let s = write_words s output_va (bytes_to_words blob) in
  let s = set_state_word s off_epoch epoch in
  let s =
    State.charge
      (seal_cycles ~aad:(String.length (aad_for ~epoch)) ~len:(String.length pt)
      + Cost.word_copy blob_words)
      s
  in
  exit_with s Word.zero

(** Unseal the blob on the input page against the trusted NV counter
    value (r1). Verdicts: 0 accept (state restored), 2 tampered,
    3 stale. [bug] disables one detection for self-tests. *)
let handle_unseal ~bug s =
  let refuse s v = exit_with s (Word.of_int v) in
  let blob = words_to_bytes (read_words s input_va blob_words) in
  let expected = ureg s 1 in
  let magic = Word.of_bytes_be blob 0 in
  let epoch = Word.of_bytes_be blob 4 in
  let ct = String.sub blob 8 ct_bytes in
  let tag = String.sub blob (8 + ct_bytes) Gcm.tag_size in
  let s =
    State.charge
      (seal_cycles
         ~aad:(String.length (aad_for ~epoch))
         ~len:ct_bytes)
      s
  in
  if not (Word.equal magic blob_magic) then
    if bug = Some Bug_accept_tampered then refuse s verdict_accept
    else refuse s verdict_tampered
  else
    match
      Gcm.decrypt ~key:(gcm_key s)
        ~nonce:(nonce_for ~base:(nonce_base s) epoch)
        ~aad:(aad_for ~epoch) ~tag ct
    with
    | None ->
        (* Authentication failed: any bit of the blob was altered
           (or it was assembled from mismatched pieces). *)
        if bug = Some Bug_accept_tampered then refuse s verdict_accept
        else refuse s verdict_tampered
    | Some pt ->
        let inner = Word.of_bytes_be pt 0 in
        if not (Word.equal inner epoch) then refuse s verdict_tampered
        else if (not (Word.equal epoch expected)) && bug <> Some Bug_accept_stale
        then
          (* Genuine but not the epoch the NV counter vouches for:
             a replayed (rolled-back) blob. *)
          refuse s verdict_stale
        else
          let s =
            write_words s (state_at off_state)
              (bytes_to_words (String.sub pt 4 state_bytes))
          in
          let s = set_state_word s off_epoch epoch in
          refuse (State.charge (Cost.word_copy state_words) s) verdict_accept

(** Publish SHA-256(secret state) so a trusted party can check a
    restore without the state itself crossing to the OS in clear. *)
let handle_digest s =
  let d = Sha256.digest (read_secret s) in
  let s = write_words s output_va (bytes_to_words d) in
  exit_with
    (State.charge (Cost.sha256_bytes ~finalise:true state_bytes) s)
    Word.zero

(** Top-level dispatch, one burst per entry (fresh Enter or SVC
    return), parameterised on the armed self-test bug. *)
let native_with ?bug () : Exec.native =
 fun s ->
  try
    let phase = Word.to_int (state_word s off_phase) in
    if phase = ph_fresh then start_derive s
    else if phase = ph_deriving then finish_derive s
    else begin
      let cmd = Word.to_int (ureg s 0) in
      if cmd = cmd_update then handle_update s
      else if cmd = cmd_seal then handle_seal s
      else if cmd = cmd_unseal then handle_unseal ~bug s
      else if cmd = cmd_digest then handle_digest s
      else if cmd = cmd_init then exit_with s Word.zero
      else exit_with s (Word.of_int 10)
    end
  with Enclave_fault f -> { Exec.nstate = s; nevent = Exec.Ev_fault f }

let native = native_with ()

(** Registry covering all three native services. *)
let registry ?bug id =
  if id = native_id then Some (native_with ?bug ()) else Verifier.registry id

let executor ?fuel ?probe ?inject ?bug () =
  Komodo_core.Uexec.concrete ?fuel ~native:(registry ?bug) ?probe ?inject ()
