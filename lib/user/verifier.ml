(** The attestation-verifier enclave: remote attestation as the paper
    defers it.

    Komodo's monitor implements only *local* attestation (a MAC under a
    boot secret that never leaves the monitor); the paper's design
    "defers remote attestation to a trusted enclave (that we have yet
    to implement)" (§4). This is that enclave — the analogue of SGX's
    quoting enclave:

    - at initialisation it gathers entropy, generates an RSA signing
      key, publishes the public key, and locally attests to its hash —
      so anyone on the machine can check the key belongs to an enclave
      measuring as the verifier;
    - its [cmd_endorse] command takes a local attestation tuple
      (data, measurement, MAC) from its input page, checks it with the
      monitor's Verify SVC, and — only if genuine — signs
      "komodo-quote" || data || measurement with its key, producing a
      *quote* checkable by a remote party who holds (a hash of) the
      verifier's public key.

    The OS relays all the bytes, but can forge nothing: the MAC check
    happens inside the enclave, and the signing key never leaves its
    secure pages. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Exec = Komodo_machine.Exec
module Cost = Komodo_machine.Cost
module Sha256 = Komodo_crypto.Sha256
module Rsa = Komodo_crypto.Rsa
open Native_util

let native_id = 2
let rsa_bits = 1024

(* Virtual-address layout. *)
let code_va = Word.zero
let state_va = Word.of_int 0x1000 (* secure RW: phase, seed, key *)
let input_va = Word.of_int 0x10_0000 (* insecure: attestation tuples in *)
let output_va = Word.of_int 0x20_0000 (* insecure: pubkey/quotes out *)

(* State-page word offsets. *)
let off_phase = 0
let off_seed = 4
let off_n = 16 (* modulus, 32 words *)
let off_d = 48 (* private exponent, 32 words *)

let ph_attesting = 6

(* Commands (r0 of Enter once ready). *)
let cmd_init = 0
let cmd_endorse = 1

(** The domain-separation prefix of quotes. *)
let quote_prefix = "komodo-quote"

let seeding = { state_va; off_phase; off_seed }

let state_word s i = load s (Word.add state_va (Word.of_int (4 * i)))
let set_state_word s i v = store s (Word.add state_va (Word.of_int (4 * i))) v

let read_key s =
  let n = words_to_bignum (read_words s (Word.add state_va (Word.of_int (4 * off_n))) 32) in
  let d = words_to_bignum (read_words s (Word.add state_va (Word.of_int (4 * off_d))) 32) in
  { Rsa.pub = { Rsa.n; e = Rsa.default_e }; d }

let pubkey_words s = read_words s (Word.add state_va (Word.of_int (4 * off_n))) 32

(** Quote body: what gets hashed and signed. *)
let quote_body ~data ~measurement = quote_prefix ^ data ^ measurement

(** OS/remote-side check of a quote against the verifier's public key. *)
let check_quote ~pub ~data ~measurement ~quote =
  Rsa.verify pub ~digest:(Sha256.digest (quote_body ~data ~measurement)) ~signature:quote

(* -- Phase handlers ------------------------------------------------------- *)

let finish_init s seed =
  let key = generate_key ~bits:rsa_bits seed in
  let s = write_words s (Word.add state_va (Word.of_int (4 * off_n))) (bignum_to_words ~bits:rsa_bits key.Rsa.pub.Rsa.n) in
  let s = write_words s (Word.add state_va (Word.of_int (4 * off_d))) (bignum_to_words ~bits:rsa_bits key.Rsa.d) in
  (* Publish the public key, then locally attest to its hash: the local
     attestation is the root that lets machine-local parties trust the
     published key. *)
  let s = write_words s output_va (bignum_to_words ~bits:rsa_bits key.Rsa.pub.Rsa.n) in
  let s = set_state_word s off_phase (Word.of_int ph_attesting) in
  let data = Sha256.digest_words_of (Sha256.digest (words_to_bytes (pubkey_words s))) in
  let s = State.charge (Rsa.sign_cycles ~bits:rsa_bits * 12) s in
  svc s Svc_nums.attest data

let finish_attest s =
  (* MAC over (pubkey hash, our measurement) delivered in r1-r8. *)
  let mac = List.init 8 (fun i -> ureg s (i + 1)) in
  let s = write_words s (Word.add output_va (Word.of_int 128)) mac in
  let s = set_state_word s off_phase (Word.of_int seeding_phase_ready) in
  exit_with (State.charge 64 s) Word.zero

(** Endorse: input page carries data[32] ‖ measurement[32] ‖ mac[32].
    Verify locally, and if genuine sign the quote. Exit value: 0 =
    quote written, 1 = attestation did not verify. *)
let handle_endorse s =
  (* The Verify SVC reads the tuple through our page table; the input
     page is mapped read-only into our space, so no staging is needed. *)
  svc (State.charge 64 (set_state_word s off_phase (Word.of_int 7))) Svc_nums.verify
    [ input_va ]

let finish_endorse s =
  (* r0 = Verify error, r1 = verdict. *)
  let ok = Word.to_int (ureg s 0) = 0 && Word.to_int (ureg s 1) = 1 in
  let s = set_state_word s off_phase (Word.of_int seeding_phase_ready) in
  if not ok then exit_with s Word.one
  else begin
    let tuple = read_words s input_va 24 in
    let bytes = words_to_bytes tuple in
    let data = String.sub bytes 0 32 in
    let measurement = String.sub bytes 32 32 in
    let key = read_key s in
    let quote = Rsa.sign key (Sha256.digest (quote_body ~data ~measurement)) in
    let s = write_words s output_va (bytes_to_words quote) in
    let s = State.charge (Rsa.sign_cycles ~bits:rsa_bits + Cost.sha256_bytes ~finalise:true 76) s in
    exit_with s Word.zero
  end

let native : Exec.native =
 fun s ->
  try
    let phase = Word.to_int (state_word s off_phase) in
    if phase < 5 then seeding_step seeding s ~phase ~done_:finish_init
    else if phase = ph_attesting then finish_attest s
    else if phase = 7 then finish_endorse s
    else begin
      let cmd = Word.to_int (ureg s 0) in
      if cmd = cmd_endorse then handle_endorse s
      else if cmd = cmd_init then exit_with s Word.zero
      else exit_with s (Word.of_int 2)
    end
  with Enclave_fault f -> { Exec.nstate = s; nevent = Exec.Ev_fault f }

(** Registry covering both native services (notary and verifier). *)
let registry id =
  if id = native_id then Some native else Notary.registry id

let executor ?fuel ?probe ?inject () =
  Komodo_core.Uexec.concrete ?fuel ~native:registry ?probe ?inject ()
