(** The trusted notary enclave (paper §8.2).

    Ported conceptually from Ironclad: assigns logical timestamps so
    documents can be conclusively ordered. When first entered it
    gathers entropy from the monitor, builds an RSA key pair and a
    monotonic counter, and publishes its public key; each notarise call
    hashes the document with the current counter, signs it, increments
    the counter and returns the stamp.

    Runs as a native service: its inner loops (SHA-256, RSA) execute as
    OCaml, but all state lives in enclave memory, every access goes
    through its page table, and monitor services are obtained via real
    SVC exceptions — an event-driven state machine like compiled
    enclave code, with cycle costs charged explicitly so Figure 5
    reproduces. *)

module Word = Komodo_machine.Word
module Exec = Komodo_machine.Exec
module Rsa = Komodo_crypto.Rsa

val native_id : int
val rsa_bits : int

(** Virtual-address layout (fixed by the notary's image). *)

val code_va : Word.t
val state_va : Word.t  (** secure RW state page *)
val heap_va : Word.t  (** second secure RW page *)
val input_va : Word.t  (** insecure: document buffer *)
val output_va : Word.t  (** insecure: results to the OS *)

(** Entry commands (r0 of Enter once initialised). *)

val cmd_init : int
val cmd_notarize : int  (** r1 = document VA, r2 = byte length *)
val cmd_attest_key : int

val native : Exec.native
val registry : int -> Exec.native option
val executor : ?fuel:int -> ?probe:(steps:int -> unit) -> unit -> Komodo_core.Uexec.t

(** The native-process baseline of Figure 5: identical compute (hash +
    sign + copies), no enclave crossings, no monitor. *)

type baseline

val baseline_create : seed:int -> baseline

val baseline_notarize : baseline -> string -> string * int
(** [(signature, cycles charged)]. *)
