(** The sealed-storage vault enclave.

    A native service keeping a small secret state it can {e seal}
    into a blob safe to hand to the untrusted OS and later {e unseal}
    from whatever the OS hands back — refusing loudly (never silently
    accepting) when the disk lied. The sealing key is derived
    EGETKEY-style from the monitor's local-attestation MAC over a
    fixed constant, so it is bound to both the boot secret and this
    enclave's exact measurement; freshness comes from a trusted
    monotonic NV counter whose current value the caller passes in
    (the RPMB-style hardware assumption of §9). *)

module Word = Komodo_machine.Word
module Exec = Komodo_machine.Exec

val native_id : int
(** 3 (notary = 1, verifier = 2). *)

val code_va : Word.t
val state_va : Word.t
val input_va : Word.t  (** insecure: blobs from the OS *)
val output_va : Word.t  (** insecure: blobs / digests to the OS *)

val state_words : int
(** Words of secret state (16). *)

val state_bytes : int

(** Entry commands (r0 of Enter while ready). *)

val cmd_init : int
val cmd_update : int  (** r1 = word index, r2 = value *)
val cmd_seal : int  (** r1 = current NV counter; seals epoch = r1+1 *)
val cmd_unseal : int  (** r1 = current NV counter (expected epoch) *)
val cmd_digest : int  (** publish SHA-256(state) on the output page *)

(** Unseal verdicts (the enclave's exit value). *)

val verdict_accept : int  (** 0: state restored *)
val verdict_tampered : int  (** 2: authentication failed *)
val verdict_stale : int  (** 3: genuine but rolled back *)

val blob_words : int
(** Sealed-blob size in words (magic ‖ epoch ‖ ct ‖ tag). *)

val blob_bytes : int
val blob_magic : Word.t

val seal_cycles : aad:int -> len:int -> int
(** Model cycles one seal/unseal of [len] payload bytes charges. *)

val derive_cycles : int
(** Model cycles the one-time HKDF seal-key derivation charges. *)

(** Re-armable detection-disable bugs ([Monitor.bug]-style): each
    turns off one of the checks refuse-and-report rests on, so
    campaigns can prove they would catch a vault that silently
    accepts corrupt or stale blobs. *)
type bug =
  | Bug_accept_tampered  (** ignore GCM authentication failure *)
  | Bug_accept_stale  (** skip the epoch freshness check *)

val bug_name : bug -> string
val bug_of_string : string -> bug option
val bugs : bug list

val native : Exec.native
val native_with : ?bug:bug -> unit -> Exec.native

val registry : ?bug:bug -> int -> Exec.native option
(** Covers all three native services (vault, verifier, notary). *)

val executor :
  ?fuel:int ->
  ?probe:(steps:int -> unit) ->
  ?inject:
    (Komodo_machine.State.t ->
    Komodo_machine.State.t * Komodo_machine.Exec.event option) ->
  ?bug:bug ->
  unit ->
  Komodo_core.Uexec.t
