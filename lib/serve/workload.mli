(** Deterministic client workload generation.

    All randomness the serving engine consumes — inter-arrival gaps,
    think times, session nonces — comes from a splitmix64 stream
    derived from the shard seed, making each shard a pure function of
    (root seed, shard index): the determinism foundation for
    byte-identical `-j 1` / `-j N` serve reports. Time is model
    cycles throughout. *)

type rng

val rng : seed:int -> rng

val uniform : rng -> float
(** Uniform in [0, 1), exact in 53 bits. *)

val int_below : rng -> int -> int
(** Uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)

val nonce : rng -> string
(** A fresh 32-byte session nonce. *)

type arrival = Poisson | Uniform | Burst

val arrival_name : arrival -> string
val arrival_of_string : string -> arrival option

type mode =
  | Open of arrival  (** open loop: arrivals ignore completions *)
  | Closed of { clients : int; think : int }
      (** closed loop: each client reissues [think] mean cycles after
          its previous session completes *)

val mode_name : mode -> string

val gaps : arrival -> mean_gap:int -> rng -> unit -> int
(** An open-loop gap generator with long-run mean [mean_gap] model
    cycles between arrivals; every gap is at least one cycle. [Burst]
    emits bursts of 16 near-back-to-back arrivals separated by long
    idle gaps with the same overall mean. *)

val think_gap : rng -> mean:int -> int
(** A closed-loop think-time draw: uniform in [0.5, 1.5) x mean. *)
