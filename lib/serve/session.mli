(** Per-session attestation flow: stage a nonce, enter a notary
    enclave, obtain the monitor's MAC (Attest SVC), verify it —
    host-side with {!Komodo_core.Attest.verify} or in-enclave through
    the Verify SVC — and confirm tampered MACs are rejected. Latencies
    are model cycles. *)

module Word = Komodo_machine.Word
module Os = Komodo_os.Os
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors

val shared_va : Word.t
(** VA both programs map their insecure shared window at. *)

val nonce_bytes : int

val notary_image : shared_target:Word.t -> Image.t
(** The notary enclave: MACs the nonce staged in its shared window. *)

val verifier_image : shared_target:Word.t -> Image.t
(** The verifier enclave: checks (nonce, measurement, MAC) from its
    inbox via the Verify SVC. *)

val pages_per_enclave : int
(** Secure pages one serving enclave consumes (address space, L1, L2,
    code, thread) — the unit of the pool's page-budget admission. *)

type verdict = {
  v_err : Errors.t;
  v_enter_cycles : int;
  v_verify_cycles : int;
  v_mac_ok : bool;
  v_tamper_rejected : bool;
}

val attest :
  os:Os.t ->
  thread:int ->
  shared:Word.t ->
  measurement:string ->
  nonce:string ->
  Os.t * verdict
(** One full session on a notary slot. @raise Invalid_argument unless
    the nonce is 32 bytes. *)

val enclave_verify :
  os:Os.t ->
  thread:int ->
  shared:Word.t ->
  measurement:string ->
  nonce:string ->
  mac:string ->
  Os.t * int * bool
(** [(os, enter cycles, accepted)] for the in-enclave verify path. *)

val published_mac : Os.t -> shared:Word.t -> string
(** The 32-byte MAC a notary slot last published. *)
