(* The serve campaign report: per-shard results and their
   order-insensitive reduction.

   The contract mirrors {!Komodo_campaign.Agg}: every field is a sum, a
   max, or a histogram multiset, so shard reports merge to the same
   aggregate whatever order the domains finished in, and the rendered
   report is byte-identical at any `-j`. Latency is model cycles only —
   wallclock never appears here (sessions/sec lives in progress
   snapshots and `wall_`-prefixed bench keys). *)

module Hist = Komodo_telemetry.Hist
module Json = Komodo_telemetry.Json

type t = {
  mutable shards : int;
  mutable offered : int;  (** sessions that arrived (served + shed) *)
  mutable served : int;
  mutable verify_failures : int;
      (** genuine MAC rejected, tampered MAC accepted, enclave verifier
          disagreed, or an Enter failed — any is a serving bug *)
  mutable enclave_verified : int;  (** sessions re-checked in-enclave *)
  mutable shed_full : int;
  mutable shed_deadline : int;
  mutable queue_peak : int;  (** max queue depth over all shards *)
  mutable pool_slots : int;  (** slots per shard (post-clamp) *)
  mutable pool_requested : int;
  mutable warm : int;
  mutable cold : int;
  mutable rebuilds : int;
  mutable churn_cycles : int;
  mutable busy_cycles : int;  (** slot-busy model cycles, all shards *)
  mutable capacity_cycles : int;  (** slots x makespan, summed over shards *)
  mutable makespan : int;  (** max shard makespan, model cycles *)
  h_enter : Hist.t;  (** notary Enter crossing *)
  h_attest : Hist.t;  (** full service: churn + enter + verify *)
  h_wait : Hist.t;  (** admission-queue wait *)
  h_sojourn : Hist.t;  (** wait + service *)
}

let create () =
  {
    shards = 0;
    offered = 0;
    served = 0;
    verify_failures = 0;
    enclave_verified = 0;
    shed_full = 0;
    shed_deadline = 0;
    queue_peak = 0;
    pool_slots = 0;
    pool_requested = 0;
    warm = 0;
    cold = 0;
    rebuilds = 0;
    churn_cycles = 0;
    busy_cycles = 0;
    capacity_cycles = 0;
    makespan = 0;
    h_enter = Hist.create ();
    h_attest = Hist.create ();
    h_wait = Hist.create ();
    h_sojourn = Hist.create ();
  }

let shed t = t.shed_full + t.shed_deadline

let hit_rate t =
  let total = t.warm + t.cold in
  if total = 0 then 1.0 else float_of_int t.warm /. float_of_int total

let utilization t =
  if t.capacity_cycles = 0 then 0.0
  else float_of_int t.busy_cycles /. float_of_int t.capacity_cycles

(** Fold [src] (typically a one-shard report) into [dst]. Commutative
    and associative up to the fields' own merge laws (sums, maxes,
    histogram merges), so any merge order yields the same report. *)
let merge_into dst src =
  dst.shards <- dst.shards + src.shards;
  dst.offered <- dst.offered + src.offered;
  dst.served <- dst.served + src.served;
  dst.verify_failures <- dst.verify_failures + src.verify_failures;
  dst.enclave_verified <- dst.enclave_verified + src.enclave_verified;
  dst.shed_full <- dst.shed_full + src.shed_full;
  dst.shed_deadline <- dst.shed_deadline + src.shed_deadline;
  dst.queue_peak <- max dst.queue_peak src.queue_peak;
  dst.pool_slots <- max dst.pool_slots src.pool_slots;
  dst.pool_requested <- max dst.pool_requested src.pool_requested;
  dst.warm <- dst.warm + src.warm;
  dst.cold <- dst.cold + src.cold;
  dst.rebuilds <- dst.rebuilds + src.rebuilds;
  dst.churn_cycles <- dst.churn_cycles + src.churn_cycles;
  dst.busy_cycles <- dst.busy_cycles + src.busy_cycles;
  dst.capacity_cycles <- dst.capacity_cycles + src.capacity_cycles;
  dst.makespan <- max dst.makespan src.makespan;
  Hist.merge_into dst.h_enter src.h_enter;
  Hist.merge_into dst.h_attest src.h_attest;
  Hist.merge_into dst.h_wait src.h_wait;
  Hist.merge_into dst.h_sojourn src.h_sojourn

let merge reports =
  let t = create () in
  Array.iter (fun r -> merge_into t r) reports;
  t

(* -- Rendering ----------------------------------------------------------- *)

let pct f = Printf.sprintf "%.2f%%" (100.0 *. f)

let lat_line name h =
  Printf.sprintf "  %-8s p50 %8d  p90 %8d  p99 %8d  max %8d  (n=%d)" name
    (Hist.p50 h) (Hist.p90 h) (Hist.p99 h) (Hist.max_value h) (Hist.count h)

(** The deterministic stdout report — every number is a pure function
    of (sessions, seed, flags). *)
let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%d sessions offered over %d shard(s): %d served, %d shed" t.offered
    t.shards t.served (shed t);
  line "  shed: %d queue-full, %d past-deadline; peak queue depth %d"
    t.shed_full t.shed_deadline t.queue_peak;
  line "  pool: %d slot(s)/shard (requested %d), hit rate %s (%d warm, %d cold, %d rebuilds)"
    t.pool_slots t.pool_requested (pct (hit_rate t)) t.warm t.cold t.rebuilds;
  line "  utilization %s; churn %d cycles; worst shard makespan %d cycles"
    (pct (utilization t)) t.churn_cycles t.makespan;
  line "latency (model cycles):";
  line "%s" (lat_line "enter" t.h_enter);
  line "%s" (lat_line "attest" t.h_attest);
  line "%s" (lat_line "wait" t.h_wait);
  line "%s" (lat_line "sojourn" t.h_sojourn);
  line "verification: %d MAC(s) checked, %d re-verified in-enclave, %d failure(s)"
    t.served t.enclave_verified t.verify_failures;
  Buffer.contents b

let quantiles name h =
  ( name,
    Json.Obj
      [
        ("count", Json.Int (Hist.count h));
        ("p50", Json.Int (Hist.p50 h));
        ("p90", Json.Int (Hist.p90 h));
        ("p99", Json.Int (Hist.p99 h));
        ("p999", Json.Int (Hist.p999 h));
        ("max", Json.Int (Hist.max_value h));
      ] )

let schema = "komodo-serve/1"

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("shards", Json.Int t.shards);
      ("offered", Json.Int t.offered);
      ("served", Json.Int t.served);
      ("shed_full", Json.Int t.shed_full);
      ("shed_deadline", Json.Int t.shed_deadline);
      ("queue_peak", Json.Int t.queue_peak);
      ("pool_slots", Json.Int t.pool_slots);
      ("pool_requested", Json.Int t.pool_requested);
      ("warm", Json.Int t.warm);
      ("cold", Json.Int t.cold);
      ("rebuilds", Json.Int t.rebuilds);
      ("hit_rate_pct", Json.Str (pct (hit_rate t)));
      ("churn_cycles", Json.Int t.churn_cycles);
      ("busy_cycles", Json.Int t.busy_cycles);
      ("capacity_cycles", Json.Int t.capacity_cycles);
      ("makespan_cycles", Json.Int t.makespan);
      ("utilization_pct", Json.Str (pct (utilization t)));
      ("enclave_verified", Json.Int t.enclave_verified);
      ("verify_failures", Json.Int t.verify_failures);
      ( "latency",
        Json.Obj
          [
            quantiles "enter" t.h_enter;
            quantiles "attest" t.h_attest;
            quantiles "wait" t.h_wait;
            quantiles "sojourn" t.h_sojourn;
          ] );
    ]
