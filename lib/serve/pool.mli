(** A recycled, page-budget-aware pool of notary enclaves.

    Slots are pre-warmed (loaded and finalised at pool creation); a
    recycle period of N tears each slot's enclave down and rebuilds it
    every N sessions, charging the full Create...Remove lifecycle to
    the model clock. Slot admission is clamped to what the OS
    allocator's free secure pages can back. *)

module Word = Komodo_machine.Word
module Os = Komodo_os.Os

type slot = {
  id : int;
  shared : Word.t;
  mutable handle : Komodo_os.Loader.handle;
  mutable thread : int;
  mutable measurement : string;
  mutable since_load : int;
  mutable served : int;
  mutable free_at : int;  (** model cycle the slot next falls idle
                              (maintained by the engine) *)
}

type t

val slot_shared : int -> Word.t
(** Slot [i]'s insecure shared window (after the verifier inbox). *)

val create : Os.t -> slots:int -> recycle:int -> Os.t * t
(** Load [min slots budget] notary enclaves.
    @raise Invalid_argument on a non-positive slot count or negative
    recycle period.
    @raise Failure if even one enclave cannot be backed, or a load
    fails. *)

val slots : t -> int

val slot : t -> int -> slot
(** Slot by index, for custom drivers and tests. *)

val requested : t -> int

val clamped : t -> bool
(** True when the page budget admitted fewer slots than requested. *)

val warm : t -> int
val cold : t -> int
val rebuilds : t -> int
val churn_cycles : t -> int

val hit_rate : t -> float
(** [warm / (warm + cold)]; 1.0 before any session. *)

val earliest_free : t -> slot
val idle_slot : t -> now:int -> slot option

type service = {
  s_cold : bool;
  s_churn_cycles : int;
  s_verdict : Session.verdict;
}

val serve : t -> Os.t -> slot -> nonce:string -> Os.t * service
(** Serve one session (recycling first when due). *)

val drain : t -> Os.t -> Os.t
(** Unload every slot, returning its pages. *)
