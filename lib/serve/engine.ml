(* The per-shard serving engine: a discrete-event simulation over model
   cycles, driving real enclaves.

   One shard is a self-contained serving cell: its own booted world,
   its own enclave pool, its own admission queue, its own workload
   stream. Sessions arrive on the model clock (open-loop gaps or
   closed-loop think times from {!Workload}), wait in the bounded
   {!Backpressure} queue when every slot is busy, and are then served
   by actually entering a pooled notary enclave and checking the
   monitor's attestation MAC — service time is the measured model-cycle
   cost of the real Enter/Attest/Verify work, not a synthetic draw.

   Everything the engine consumes is a pure function of the shard seed,
   so a shard report is reproducible in isolation and the serve
   campaign is byte-identical at any `-j`. The engine ends every shard
   by draining the pool and auditing PageDB conservation: a million
   sessions of lifecycle churn must hand back exactly the pages it
   borrowed, with every monitor invariant intact. *)

module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Errors = Komodo_core.Errors
module Monitor = Komodo_core.Monitor
module Pagedb = Komodo_core.Pagedb
module Hist = Komodo_telemetry.Hist
module Seedsplit = Komodo_campaign.Seedsplit

type cfg = {
  e_sessions : int;  (** sessions this shard must offer *)
  e_slots : int;  (** pool slots requested *)
  e_recycle : int;  (** pool recycle period; 0 = never *)
  e_queue : int;  (** admission queue capacity *)
  e_policy : Backpressure.policy;
  e_mode : Workload.mode;
  e_gap : int;  (** open-loop mean inter-arrival gap, model cycles *)
  e_everify : int;  (** route every Nth session in-enclave; 0 = never *)
  e_npages : int;  (** secure pages in the shard's world *)
}

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

type state = {
  cfg : cfg;
  mutable os : Os.t;
  pool : Pool.t;
  queue : int Backpressure.t;
  wrng : Workload.rng;
  vthread : int;  (** the shard's verifier-enclave thread *)
  vmeas : string;
  report : Report.t;
  mutable horizon : int;  (** latest model-cycle event seen *)
}

(* -- Session dispatch ---------------------------------------------------- *)

(* Serve session [id] on [slot], starting at cycle [start] (its arrival
   was [arrival]; the difference is queueing delay). Advances the
   slot's [free_at] by the measured service time and returns the
   completion cycle. *)
let dispatch st id ~arrival ~start (slot : Pool.slot) =
  let nonce = Workload.nonce st.wrng in
  let os, svc = Pool.serve st.pool st.os slot ~nonce in
  st.os <- os;
  let v = svc.Pool.s_verdict in
  let everify_cycles, everified, ev_ok =
    if
      st.cfg.e_everify > 0
      && id mod st.cfg.e_everify = 0
      && Errors.is_success v.Session.v_err
    then begin
      let mac = Session.published_mac st.os ~shared:slot.Pool.shared in
      let os, cycles, ok =
        Session.enclave_verify ~os:st.os ~thread:st.vthread
          ~shared:Os.shared_base ~measurement:slot.Pool.measurement ~nonce ~mac
      in
      st.os <- os;
      (cycles, true, ok)
    end
    else (0, false, true)
  in
  let service =
    svc.Pool.s_churn_cycles + v.Session.v_enter_cycles
    + v.Session.v_verify_cycles + everify_cycles
  in
  slot.Pool.free_at <- start + service;
  if slot.Pool.free_at > st.horizon then st.horizon <- slot.Pool.free_at;
  let wait = start - arrival in
  let r = st.report in
  Hist.record r.Report.h_enter v.Session.v_enter_cycles;
  Hist.record r.Report.h_attest service;
  Hist.record r.Report.h_wait wait;
  Hist.record r.Report.h_sojourn (wait + service);
  r.Report.served <- r.Report.served + 1;
  r.Report.busy_cycles <- r.Report.busy_cycles + service;
  if everified then r.Report.enclave_verified <- r.Report.enclave_verified + 1;
  let ok =
    Errors.is_success v.Session.v_err
    && v.Session.v_mac_ok && v.Session.v_tamper_rejected && ev_ok
  in
  if not ok then r.Report.verify_failures <- r.Report.verify_failures + 1;
  slot.Pool.free_at

(* Dispatch queued sessions into slots that free up at or before cycle
   [upto]. [on_complete id finish] and [on_expired id now] let the
   closed-loop driver reschedule clients; the open loop ignores both. *)
let release st ~upto ~on_complete ~on_expired =
  let rec go () =
    if Backpressure.depth st.queue > 0 then begin
      let slot = Pool.earliest_free st.pool in
      let now = slot.Pool.free_at in
      if now <= upto then begin
        match
          Backpressure.take st.queue ~now ~expired:(fun id -> on_expired id now)
        with
        | None -> ()
        | Some (arrival, id) ->
            let finish = dispatch st id ~arrival ~start:now slot in
            on_complete id finish;
            go ()
      end
    end
  in
  go ()

(* One arrival at cycle [now]: an idle slot serves it immediately,
   otherwise it joins the bounded queue (or is shed at the door). *)
let arrive st id ~now ~on_complete ~on_expired =
  if now > st.horizon then st.horizon <- now;
  st.report.Report.offered <- st.report.Report.offered + 1;
  release st ~upto:now ~on_complete ~on_expired;
  match Pool.idle_slot st.pool ~now with
  | Some slot ->
      let finish = dispatch st id ~arrival:now ~start:now slot in
      on_complete id finish
  | None -> (
      match Backpressure.offer st.queue ~now id with
      | `Queued -> ()
      | `Shed -> on_expired id now)

(* -- Workload drivers ---------------------------------------------------- *)

let run_open st arrival =
  let next_gap = Workload.gaps arrival ~mean_gap:st.cfg.e_gap st.wrng in
  let ignore2 _ _ = () in
  let now = ref 0 in
  for id = 0 to st.cfg.e_sessions - 1 do
    now := !now + next_gap ();
    arrive st id ~now:!now ~on_complete:ignore2 ~on_expired:ignore2
  done;
  release st ~upto:max_int ~on_complete:ignore2 ~on_expired:ignore2

let run_closed st ~clients ~think =
  if clients <= 0 then invalid_arg "Engine: closed loop needs clients";
  (* Each client's next issue cycle; [max_int] while parked in the
     queue. Session ids carry the issuing client. *)
  let next = Array.init clients (fun _ -> Workload.think_gap st.wrng ~mean:think) in
  let reissue c finish = next.(c) <- finish + Workload.think_gap st.wrng ~mean:think in
  let issued = ref 0 in
  while !issued < st.cfg.e_sessions do
    let c = ref 0 in
    for i = 1 to clients - 1 do
      if next.(i) < next.(!c) then c := i
    done;
    if next.(!c) = max_int then
      (* every client is parked in the queue: advance the clock to the
         next slot-free event and dispatch from the queue *)
      release st ~upto:(Pool.earliest_free st.pool).Pool.free_at
        ~on_complete:reissue ~on_expired:reissue
    else begin
      let t = next.(!c) in
      incr issued;
      next.(!c) <- max_int;
      arrive st !c ~now:t ~on_complete:reissue ~on_expired:reissue
    end
  done;
  release st ~upto:max_int ~on_complete:reissue ~on_expired:reissue

(* -- Shard entry point --------------------------------------------------- *)

(** Run one shard to completion and return its report
    ([Report.shards = 1]). @raise Violation on a verification failure
    the monitor should have made impossible (page leak, invariant
    break) — distinct from per-session [verify_failures], which are
    counted, not fatal. *)
let run cfg ~seed =
  if cfg.e_sessions <= 0 then invalid_arg "Engine.run: sessions";
  if cfg.e_gap <= 0 then invalid_arg "Engine.run: gap";
  let os = Os.boot ~seed ~npages:cfg.e_npages () in
  let free0 = Pagedb.free_count os.Os.mon.Monitor.pagedb in
  (* The shard's verifier enclave lives at the base shared window; pool
     slots stack their windows above it (Pool.slot_shared). *)
  let os, verifier =
    match Loader.load os (Session.verifier_image ~shared_target:Os.shared_base) with
    | Ok (os, h) -> (os, h)
    | Error e ->
        failwith (Format.asprintf "serve: loading verifier: %a" Loader.pp_error e)
  in
  let os, pool = Pool.create os ~slots:cfg.e_slots ~recycle:cfg.e_recycle in
  let st =
    {
      cfg;
      os;
      pool;
      queue = Backpressure.create ~capacity:cfg.e_queue ~policy:cfg.e_policy;
      wrng = Workload.rng ~seed:(Seedsplit.derive ~root:seed 1);
      vthread = List.hd verifier.Loader.threads;
      vmeas = verifier.Loader.measurement;
      report = Report.create ();
      horizon = 0;
    }
  in
  st.report.Report.shards <- 1;
  (match cfg.e_mode with
  | Workload.Open arrival -> run_open st arrival
  | Workload.Closed { clients; think } -> run_closed st ~clients ~think);
  (* Fold queue accounting into the report. *)
  let r = st.report in
  r.Report.shed_full <- Backpressure.shed_full st.queue;
  r.Report.shed_deadline <- Backpressure.shed_deadline st.queue;
  r.Report.queue_peak <- Backpressure.max_depth st.queue;
  r.Report.pool_slots <- Pool.slots pool;
  r.Report.pool_requested <- Pool.requested pool;
  r.Report.warm <- Pool.warm pool;
  r.Report.cold <- Pool.cold pool;
  r.Report.rebuilds <- Pool.rebuilds pool;
  r.Report.churn_cycles <- Pool.churn_cycles pool;
  r.Report.makespan <- st.horizon;
  r.Report.capacity_cycles <- Pool.slots pool * st.horizon;
  if r.Report.offered <> cfg.e_sessions then
    violation "shard offered %d sessions, expected %d" r.Report.offered
      cfg.e_sessions;
  if r.Report.served + Report.shed r <> r.Report.offered then
    violation "session accounting leak: %d served + %d shed <> %d offered"
      r.Report.served (Report.shed r) r.Report.offered;
  (* End-of-shard audit: tear every enclave down and confirm the
     monitor handed back exactly the pages the shard borrowed, with the
     PageDB well-formed — conservation under lifecycle churn. *)
  let os = Pool.drain pool st.os in
  let os =
    match Loader.unload os verifier with
    | Ok os -> os
    | Error e ->
        failwith (Format.asprintf "serve: unloading verifier: %a" Loader.pp_error e)
  in
  let mon = os.Os.mon in
  let free1 = Pagedb.free_count mon.Monitor.pagedb in
  if free1 <> free0 then
    violation "page leak under churn: %d free pages at boot, %d after drain"
      free0 free1;
  (match Pagedb.check mon.Monitor.plat mon.Monitor.mach.State.mem mon.Monitor.pagedb with
  | [] -> ()
  | v :: _ ->
      violation "PageDB invariant broken after churn: %s"
        (Format.asprintf "%a" Pagedb.pp_violation v));
  st.report
