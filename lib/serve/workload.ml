(* Deterministic client workload generation for the serving subsystem.

   Every random choice the serving engine makes — inter-arrival gaps,
   think times, session nonces — is drawn from a splitmix64 stream
   derived from the shard seed, so a shard is a pure function of
   (root seed, shard index) and `-j 1` / `-j N` campaigns replay the
   exact same traffic. Time is *model cycles* throughout: arrival
   processes are defined over the monitor's deterministic cycle
   accounting, never wallclock. *)

module Word = Komodo_machine.Word
module Seedsplit = Komodo_campaign.Seedsplit

(* -- PRNG ---------------------------------------------------------------- *)

(* A sequential splitmix64 reader (the same finalizer the campaign
   seed derivation is frozen on), kept local so the workload stream and
   the campaign's trial-seed stream cannot alias. *)
type rng = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let rng ~seed = { state = Seedsplit.mix64 (Int64.of_int seed) }

let next_int64 r =
  r.state <- Int64.add r.state golden_gamma;
  Seedsplit.mix64 r.state

(* Uniform in [0, 1): the top 53 bits of the draw, so the float is
   exact and platform-independent. *)
let uniform r =
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 r) 11) in
  bits /. 9007199254740992.0 (* 2^53 *)

let int_below r n =
  if n <= 0 then invalid_arg "Workload.int_below";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 r) 1) (Int64.of_int n))

let word r = Word.of_int (Int64.to_int (Int64.logand (next_int64 r) 0xFFFFFFFFL))

(** A fresh 32-byte session nonce (8 words, big-endian). *)
let nonce r =
  String.concat "" (List.map Word.to_bytes_be (List.init 8 (fun _ -> word r)))

(* -- Arrival processes --------------------------------------------------- *)

type arrival = Poisson | Uniform | Burst

let arrival_name = function
  | Poisson -> "poisson"
  | Uniform -> "uniform"
  | Burst -> "burst"

let arrival_of_string = function
  | "poisson" -> Some Poisson
  | "uniform" -> Some Uniform
  | "burst" -> Some Burst
  | _ -> None

type mode =
  | Open of arrival  (** open loop: arrivals ignore completions *)
  | Closed of { clients : int; think : int }
      (** closed loop: each client reissues [think] mean cycles after
          its previous session completes *)

let mode_name = function
  | Open a -> "open/" ^ arrival_name a
  | Closed { clients; think } -> Printf.sprintf "closed/%d@%d" clients think

(* Exponential with the given mean, clamped to at least one cycle so
   model time always advances. [1 - u > 0] because [uniform < 1]. *)
let exponential r ~mean =
  let u = uniform r in
  max 1 (int_of_float (-.float_of_int mean *. log (1.0 -. u)))

(** An open-loop gap generator: successive calls return the model-cycle
    gap to the next arrival, with mean [mean_gap] in the long run.

    - [Poisson]: exponential gaps (memoryless arrivals).
    - [Uniform]: gaps uniform in [0.5, 1.5) x mean (gentle jitter).
    - [Burst]: bursts of 16 back-to-back arrivals (gap = mean/16) and
      long idle gaps between bursts, preserving the overall mean —
      the worst case for a bounded admission queue. *)
let gaps mode ~mean_gap r =
  let mean_gap = max 1 mean_gap in
  match mode with
  | Poisson -> fun () -> exponential r ~mean:mean_gap
  | Uniform ->
      fun () ->
        let u = uniform r in
        max 1 (int_of_float (float_of_int mean_gap *. (0.5 +. u)))
  | Burst ->
      let burst_len = 16 in
      let inner = max 1 (mean_gap / burst_len) in
      (* The idle gap tops the burst's mean back up to [mean_gap]:
         (burst_len-1) inner gaps + one idle gap = burst_len * mean. *)
      let idle_mean = (burst_len * mean_gap) - ((burst_len - 1) * inner) in
      let left = ref 0 in
      fun () ->
        if !left > 0 then begin
          decr left;
          inner
        end
        else begin
          left := burst_len - 1;
          exponential r ~mean:idle_mean
        end

(** A think-time draw for closed-loop clients: uniform in
    [0.5, 1.5) x mean, at least one cycle. *)
let think_gap r ~mean =
  let mean = max 1 mean in
  let u = uniform r in
  max 1 (int_of_float (float_of_int mean *. (0.5 +. u)))
