(* The serve campaign: attestation-as-a-service at scale.

   A serve run multiplexes up to millions of simulated client sessions
   over recycled enclave pools. Sessions are partitioned into fixed-size
   shards — the shard count is a pure function of the session count,
   never of `-j` — and each shard runs the {!Engine} in its own booted
   world on a campaign {!Komodo_campaign.Pool} domain, seeded by
   [Seedsplit.derive (root, shard)]. Shard reports come back in index
   order and fold through the order-insensitive {!Report} merge, so the
   stdout report is byte-identical at `-j 1` and `-j N` — the same
   contract `komodo check` and `komodo fault` honour. *)

module Cpool = Komodo_campaign.Pool
module Seedsplit = Komodo_campaign.Seedsplit
module Progress = Komodo_campaign.Progress

type cfg = {
  sessions : int;  (** total sessions across all shards *)
  shard_sessions : int;  (** sessions per shard (last shard takes the rest) *)
  slots : int;  (** pool slots per shard *)
  recycle : int;  (** recycle period; 0 = never *)
  queue : int;  (** admission queue capacity per shard *)
  policy : Backpressure.policy;
  mode : Workload.mode;
  gap : int;  (** open-loop mean inter-arrival gap, model cycles *)
  everify : int;  (** route every Nth session in-enclave; 0 = never *)
  npages : int;  (** secure pages per shard world *)
}

let default_shard_sessions = 4096

let defaults =
  {
    sessions = 100_000;
    shard_sessions = default_shard_sessions;
    slots = 4;
    recycle = 64;
    queue = 64;
    policy = Backpressure.Drop;
    mode = Workload.Open Workload.Poisson;
    (* ~80% utilisation of 4 slots at the ~40k-cycle warm service cost:
       loaded but not saturated, so queueing dynamics are exercised
       without mass shedding *)
    gap = 12_500;
    everify = 32;
    npages = 128;
  }

(** Shard count: a pure function of the session count — never of [-j],
    which only decides how many shards run concurrently. *)
let shards ~sessions ~shard_sessions =
  if sessions <= 0 then invalid_arg "Serve.shards: sessions";
  if shard_sessions <= 0 then invalid_arg "Serve.shards: shard_sessions";
  (sessions + shard_sessions - 1) / shard_sessions

let shard_seed ~root index = Seedsplit.derive ~root index

(** Run the campaign. The report is a pure function of [(cfg, seed)];
    [jobs] and [progress] cannot change a byte of it. *)
let run ?progress ?jobs ~cfg ~seed () =
  let jobs =
    match jobs with Some j when j > 0 -> j | _ -> Cpool.default_jobs ()
  in
  let n = shards ~sessions:cfg.sessions ~shard_sessions:cfg.shard_sessions in
  let shard_sessions i =
    if i < n - 1 then cfg.shard_sessions
    else cfg.sessions - ((n - 1) * cfg.shard_sessions)
  in
  let tseed = shard_seed ~root:seed in
  let ecfg i =
    {
      Engine.e_sessions = shard_sessions i;
      e_slots = cfg.slots;
      e_recycle = cfg.recycle;
      e_queue = cfg.queue;
      e_policy = cfg.policy;
      e_mode = cfg.mode;
      e_gap = cfg.gap;
      e_everify = cfg.everify;
      e_npages = cfg.npages;
    }
  in
  let run_shard i = Engine.run (ecfg i) ~seed:(tseed i) in
  let on_trial =
    Option.map
      (fun p i (r : Report.t) ->
        Progress.serve_trial p i ~served:r.Report.served ~shed:(Report.shed r)
          ~warm:r.Report.warm ~cold:r.Report.cold ~enter:r.Report.h_enter
          ~attest:r.Report.h_attest)
      progress
  in
  let finish r = Option.iter Progress.finish progress; r in
  let label i = Printf.sprintf "serve shard %d (seed %d)" i (tseed i) in
  finish
  @@
  match
    Cpool.run ~label ?on_trial ~jobs ~trials:n ~failed:(fun _ -> false) run_shard
  with
  | Cpool.Completed reports -> Report.merge reports
  | Cpool.Stopped _ ->
      (* unreachable: the failure predicate is constant-false, and shard
         violations raise (propagated by the pool as Trial_error) *)
      assert false
