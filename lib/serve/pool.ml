(* A recycled pool of notary enclaves.

   Slots are pre-warmed: each holds a loaded, finalised notary enclave
   ready to Enter, so the steady-state session cost is one enclave
   crossing plus the attestation MAC. A configurable recycle period
   tears a slot's enclave down and builds a fresh one every N sessions
   (the full Create -> Init -> Finalise -> Enter ... -> Stop -> Remove
   churn of Figure 3) — the page-lifecycle traffic a real multi-tenant
   host sees, paid for in model cycles by the session that triggers it.

   Admission is page-budget aware: a slot costs
   [Session.pages_per_enclave] secure pages, and the pool never grows
   past what the OS allocator can actually back — a request for more
   slots than the world's secure memory can hold is clamped, and the
   clamp is reported rather than hidden. *)

module Word = Komodo_machine.Word
module Ptable = Komodo_machine.Ptable
module Os = Komodo_os.Os
module Loader = Komodo_os.Loader
module Alloc = Komodo_os.Alloc

type slot = {
  id : int;
  shared : Word.t;  (** this slot's insecure shared window *)
  mutable handle : Loader.handle;
  mutable thread : int;
  mutable measurement : string;
  mutable since_load : int;  (** sessions since the enclave was (re)built *)
  mutable served : int;
  mutable free_at : int;  (** model cycle the slot next falls idle *)
}

type t = {
  slots : slot array;
  recycle : int;  (** recycle period; 0 = never *)
  requested : int;  (** slots asked for before the page-budget clamp *)
  mutable warm : int;  (** sessions served on a standing enclave *)
  mutable cold : int;  (** sessions that paid a rebuild first *)
  mutable rebuilds : int;  (** enclave rebuilds (excluding initial loads) *)
  mutable churn_cycles : int;  (** model cycles spent in lifecycle churn *)
}

(* Slot i's shared window: one insecure page each, placed after the
   engine's verifier inbox at [Os.shared_base]. *)
let slot_shared i =
  Word.add Os.shared_base (Word.of_int ((i + 1) * Ptable.page_size))

let load_slot os i =
  let shared = slot_shared i in
  match Loader.load os (Session.notary_image ~shared_target:shared) with
  | Ok (os, h) ->
      ( os,
        {
          id = i;
          shared;
          handle = h;
          thread = List.hd h.Loader.threads;
          measurement = h.Loader.measurement;
          since_load = 0;
          served = 0;
          free_at = 0;
        } )
  | Error e ->
      failwith
        (Format.asprintf "serve pool: loading notary slot %d: %a" i
           Loader.pp_error e)

(** Build the pool, clamping to the allocator's page budget. Returns
    the updated world and the pool; [slots t < requested] means the
    budget clamped the request. *)
let create os ~slots ~recycle =
  if slots <= 0 then invalid_arg "Pool.create: need at least one slot";
  if recycle < 0 then invalid_arg "Pool.create: negative recycle period";
  let affordable = Alloc.available os.Os.alloc / Session.pages_per_enclave in
  let n = min slots affordable in
  if n = 0 then
    failwith
      (Printf.sprintf
         "serve pool: page budget exhausted — %d free pages cannot back one \
          %d-page enclave"
         (Alloc.available os.Os.alloc) Session.pages_per_enclave);
  let os = ref os in
  let mk i =
    let os', s = load_slot !os i in
    os := os';
    s
  in
  let pool =
    {
      slots = Array.init n mk;
      recycle;
      requested = slots;
      warm = 0;
      cold = 0;
      rebuilds = 0;
      churn_cycles = 0;
    }
  in
  (!os, pool)

let slots t = Array.length t.slots
let slot t i = t.slots.(i)
let requested t = t.requested
let clamped t = Array.length t.slots < t.requested
let warm t = t.warm
let cold t = t.cold
let rebuilds t = t.rebuilds
let churn_cycles t = t.churn_cycles

let hit_rate t =
  let total = t.warm + t.cold in
  if total = 0 then 1.0 else float_of_int t.warm /. float_of_int total

(** The slot that frees up first (lowest [free_at], ties to the lowest
    id — a deterministic dispatch order). *)
let earliest_free t =
  Array.fold_left
    (fun best s ->
      match best with
      | None -> Some s
      | Some b -> if s.free_at < b.free_at then Some s else best)
    None t.slots
  |> Option.get

(** A slot already idle at cycle [now], if any. *)
let idle_slot t ~now =
  let rec go i =
    if i >= Array.length t.slots then None
    else if t.slots.(i).free_at <= now then Some t.slots.(i)
    else go (i + 1)
  in
  go 0

type service = {
  s_cold : bool;
  s_churn_cycles : int;  (** teardown + rebuild cost, 0 when warm *)
  s_verdict : Session.verdict;
}

(* Tear the slot's enclave down and build a fresh one, charging the
   full lifecycle to the model clock. *)
let rebuild os slot =
  let c0 = Os.cycles os in
  let os =
    match Loader.unload os slot.handle with
    | Ok os -> os
    | Error e ->
        failwith
          (Format.asprintf "serve pool: recycling slot %d (unload): %a" slot.id
             Loader.pp_error e)
  in
  let os, fresh = load_slot os slot.id in
  slot.handle <- fresh.handle;
  slot.thread <- fresh.thread;
  slot.measurement <- fresh.measurement;
  slot.since_load <- 0;
  (os, Os.cycles os - c0)

(** Serve one session on [slot]: recycle first when the period is due,
    then run the attestation flow. The verdict's cycles plus
    [s_churn_cycles] is the slot's total busy time for this session. *)
let serve t os slot ~nonce =
  let os, churn =
    if t.recycle > 0 && slot.since_load >= t.recycle then begin
      t.rebuilds <- t.rebuilds + 1;
      rebuild os slot
    end
    else (os, 0)
  in
  let cold = churn > 0 in
  if cold then t.cold <- t.cold + 1 else t.warm <- t.warm + 1;
  t.churn_cycles <- t.churn_cycles + churn;
  let os, verdict =
    Session.attest ~os ~thread:slot.thread ~shared:slot.shared
      ~measurement:slot.measurement ~nonce
  in
  slot.since_load <- slot.since_load + 1;
  slot.served <- slot.served + 1;
  (os, { s_cold = cold; s_churn_cycles = churn; s_verdict = verdict })

(** Tear down every slot (end of shard); returns pages to the
    allocator so conservation checks can run. *)
let drain t os =
  Array.fold_left
    (fun os slot ->
      match Loader.unload os slot.handle with
      | Ok os -> os
      | Error e ->
          failwith
            (Format.asprintf "serve pool: draining slot %d: %a" slot.id
               Loader.pp_error e))
    os t.slots
