(** The serve campaign: attestation-as-a-service over recycled enclave
    pools, sharded across campaign domains.

    Sessions are partitioned into fixed-size shards (the shard count is
    a pure function of the session count, never of [-j]); each shard
    runs the {!Engine} in its own world, seeded from
    [(root seed, shard index)], and shard reports fold through the
    order-insensitive {!Report} merge. The resulting report — and the
    stdout rendering — is byte-identical at [-j 1] and [-j N]. *)

module Progress = Komodo_campaign.Progress

type cfg = {
  sessions : int;  (** total sessions across all shards *)
  shard_sessions : int;  (** sessions per shard (last shard takes the rest) *)
  slots : int;  (** pool slots per shard *)
  recycle : int;  (** recycle period; 0 = never *)
  queue : int;  (** admission queue capacity per shard *)
  policy : Backpressure.policy;
  mode : Workload.mode;
  gap : int;  (** open-loop mean inter-arrival gap, model cycles *)
  everify : int;  (** route every Nth session in-enclave; 0 = never *)
  npages : int;  (** secure pages per shard world *)
}

val defaults : cfg
(** 100k sessions, 4096-session shards, 4 slots, recycle 64, queue 64,
    drop policy, Poisson arrivals at a 12500-cycle mean gap (~80%
    utilisation), in-enclave re-verify every 32nd session. *)

val default_shard_sessions : int

val shards : sessions:int -> shard_sessions:int -> int
(** @raise Invalid_argument on non-positive inputs. *)

val shard_seed : root:int -> int -> int

val run :
  ?progress:Progress.t -> ?jobs:int -> cfg:cfg -> seed:int -> unit -> Report.t
(** Run the campaign on a domain pool. [jobs] and [progress] cannot
    change a byte of the report.
    @raise Engine.Violation (via the pool's trial-error wrapper) if a
    shard breaks a monitor invariant. *)
