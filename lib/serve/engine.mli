(** The per-shard serving engine: a discrete-event simulation over
    model cycles driving real enclaves. Arrivals come from
    {!Workload}, admission from {!Backpressure}, service from actually
    entering pooled notary enclaves ({!Pool}/{!Session}); every shard
    ends with a PageDB conservation audit. A shard report is a pure
    function of [(cfg, seed)]. *)

type cfg = {
  e_sessions : int;  (** sessions this shard must offer *)
  e_slots : int;  (** pool slots requested *)
  e_recycle : int;  (** pool recycle period; 0 = never *)
  e_queue : int;  (** admission queue capacity *)
  e_policy : Backpressure.policy;
  e_mode : Workload.mode;
  e_gap : int;  (** open-loop mean inter-arrival gap, model cycles *)
  e_everify : int;  (** route every Nth session in-enclave; 0 = never *)
  e_npages : int;  (** secure pages in the shard's world *)
}

exception Violation of string
(** A failure the monitor should have made impossible: a page leak or
    PageDB invariant break after drain, or session accounting that does
    not add up. Per-session MAC failures are counted in the report, not
    raised. *)

val run : cfg -> seed:int -> Report.t
(** Run one shard to completion ([Report.shards = 1]).
    @raise Violation as above
    @raise Invalid_argument on a non-positive session count or gap. *)
