(** The serve campaign report: per-shard results and their
    order-insensitive reduction. Every field is a sum, a max, or a
    histogram multiset, so merges commute and the rendered report is
    byte-identical at any [-j]. All latency is model cycles; wallclock
    never appears here. *)

module Hist = Komodo_telemetry.Hist
module Json = Komodo_telemetry.Json

type t = {
  mutable shards : int;
  mutable offered : int;  (** sessions that arrived (served + shed) *)
  mutable served : int;
  mutable verify_failures : int;
      (** genuine MAC rejected, tampered MAC accepted, enclave verifier
          disagreed, or an Enter failed *)
  mutable enclave_verified : int;  (** sessions re-checked in-enclave *)
  mutable shed_full : int;
  mutable shed_deadline : int;
  mutable queue_peak : int;  (** max queue depth over all shards *)
  mutable pool_slots : int;  (** slots per shard (post-clamp) *)
  mutable pool_requested : int;
  mutable warm : int;
  mutable cold : int;
  mutable rebuilds : int;
  mutable churn_cycles : int;
  mutable busy_cycles : int;  (** slot-busy model cycles, all shards *)
  mutable capacity_cycles : int;  (** slots x makespan, summed over shards *)
  mutable makespan : int;  (** max shard makespan, model cycles *)
  h_enter : Hist.t;
  h_attest : Hist.t;
  h_wait : Hist.t;
  h_sojourn : Hist.t;
}

val create : unit -> t
(** An empty (zero-shard) report — the merge identity. *)

val shed : t -> int
(** [shed_full + shed_deadline]. *)

val hit_rate : t -> float
(** [warm / (warm + cold)]; 1.0 before any session. *)

val utilization : t -> float
(** [busy_cycles / capacity_cycles]; 0.0 on an empty report. *)

val merge_into : t -> t -> unit
(** Fold the second report into the first; commutative and associative
    in the source argument. *)

val merge : t array -> t

val render : t -> string
(** The deterministic stdout report — a pure function of
    (sessions, seed, flags), never of wallclock or [-j]. *)

val schema : string
(** The JSON schema tag, ["komodo-serve/1"]. *)

val to_json : t -> Json.t
