(* Bounded admission control for the serving engine.

   Arrivals that find every enclave slot busy wait in a FIFO queue of
   fixed capacity. When the queue is full the newest arrival is shed
   (load shedding at the door, like a listen backlog); with a deadline
   policy, sessions that waited past their deadline are shed at
   dispatch time instead of being served late (the "better never than
   late" discipline of SLO-bound serving systems).

   The queue is plain deterministic data over model-cycle timestamps —
   no wallclock, no scheduling — so queue dynamics replay identically
   at any `-j`. Saturation accounting (peak depth, full-queue arrivals,
   shed counts) feeds the serve report. *)

type policy =
  | Drop  (** shed only on a full queue *)
  | Deadline of int
      (** additionally shed any session whose queue wait exceeds this
          many model cycles, measured at dispatch *)

let policy_name = function
  | Drop -> "drop"
  | Deadline d -> Printf.sprintf "deadline=%d" d

type 'a t = {
  capacity : int;
  policy : policy;
  q : (int * 'a) Queue.t;  (** (arrival cycle, session) *)
  mutable depth : int;
  mutable max_depth : int;
  mutable enqueued : int;
  mutable shed_full : int;
  mutable shed_deadline : int;
  mutable full_events : int;  (** arrivals that found the queue full *)
}

let create ~capacity ~policy =
  if capacity < 0 then invalid_arg "Backpressure.create: negative capacity";
  {
    capacity;
    policy;
    q = Queue.create ();
    depth = 0;
    max_depth = 0;
    enqueued = 0;
    shed_full = 0;
    shed_deadline = 0;
    full_events = 0;
  }

let depth t = t.depth
let max_depth t = t.max_depth
let enqueued t = t.enqueued
let shed_full t = t.shed_full
let shed_deadline t = t.shed_deadline
let shed t = t.shed_full + t.shed_deadline
let full_events t = t.full_events

(** Offer a session that cannot be served immediately. [`Queued] if it
    joined the queue, [`Shed] if the queue was full. *)
let offer t ~now session =
  if t.depth >= t.capacity then begin
    t.full_events <- t.full_events + 1;
    t.shed_full <- t.shed_full + 1;
    `Shed
  end
  else begin
    Queue.push (now, session) t.q;
    t.depth <- t.depth + 1;
    t.enqueued <- t.enqueued + 1;
    if t.depth > t.max_depth then t.max_depth <- t.depth;
    `Queued
  end

(** Take the next session to dispatch at cycle [now], shedding expired
    heads under a deadline policy. Each shed head is reported through
    [expired] (closed-loop callers reissue the client; open-loop callers
    pass [ignore]). Returns [(arrival, session)] of the first survivor,
    or [None] when the queue drains. *)
let rec take t ~now ~expired =
  match Queue.take_opt t.q with
  | None -> None
  | Some (arrival, session) -> (
      t.depth <- t.depth - 1;
      match t.policy with
      | Deadline d when now - arrival > d ->
          t.shed_deadline <- t.shed_deadline + 1;
          expired session;
          take t ~now ~expired
      | Deadline _ | Drop -> Some (arrival, session))
