(* Per-session attestation flow (the serving subsystem's unit of work).

   A session is one client asking the platform to vouch for a nonce:

     1. the OS stages the 32-byte session nonce in the slot's insecure
        shared window;
     2. the notary enclave is entered, loads the nonce, and asks the
        monitor to MAC it together with the enclave's measurement
        (the Attest SVC — [Attest.create] under the boot secret);
     3. the client checks the MAC with [Attest.verify] against the
        expected measurement, and confirms a tampered MAC (one bit
        flipped) is rejected;
     4. optionally, the check runs *in-enclave* instead: the OS ferries
        (nonce, measurement, MAC) to a verifier enclave whose Verify
        SVC returns the verdict — the two-enclave local-attestation
        flow of §4.

   All latencies are model cycles read off the monitor's deterministic
   cycle accounting, so per-session latency is a pure function of the
   work done, not of the host machine. *)

module Word = Komodo_machine.Word
module Insn = Komodo_machine.Insn
module Ptable = Komodo_machine.Ptable
module Os = Komodo_os.Os
module Image = Komodo_os.Image
module Errors = Komodo_core.Errors
module Monitor = Komodo_core.Monitor
module Mapping = Komodo_core.Mapping
module Attest = Komodo_core.Attest
module Uprog = Komodo_user.Uprog
module Svc_nums = Komodo_user.Svc_nums
open Uprog

(** Both programs map their shared window at this VA (page 2 of the
    same first-level slot as the code, so one L2 table suffices). *)
let shared_va = Word.of_int 0x2000

let nonce_bytes = 32
let mac_off = nonce_bytes (* MAC published right after the nonce *)

(* The notary program: load the 8 nonce words from the shared window,
   MAC them via the Attest SVC, publish the 8 MAC words after the
   nonce, exit 0. *)
let notary_prog : Insn.stmt list =
  [ Insn.I (Insn.Mov (r12, imm 0x2000)) ]
  @ List.init 8 (fun i ->
        Insn.I (Insn.Ldr (Komodo_machine.Regs.R (i + 1), r12, imm (4 * i))))
  @ [
      Insn.I (Insn.Mov (r0, imm Svc_nums.attest));
      Insn.I (Insn.Svc Word.zero);
    ]
  @ List.init 8 (fun i ->
        Insn.I (Insn.Str (Komodo_machine.Regs.R (i + 1), r12, imm (mac_off + (4 * i)))))
  @ [ Insn.I (Insn.Mov (r4, imm 0)) ]
  @ exit_with r4

(* The verifier program: run the Verify SVC over the 96-byte buffer
   (nonce || measurement || MAC) in its shared inbox, exit with the
   verdict word. *)
let verifier_prog : Insn.stmt list =
  [
    Insn.I (Insn.Mov (r1, imm 0x2000));
    Insn.I (Insn.Mov (r0, imm Svc_nums.verify));
    Insn.I (Insn.Svc Word.zero);
  ]
  @ exit_with r1

let image ~name ~prog ~shared_target =
  let code = Uprog.to_page_images (Uprog.code_words prog) in
  let img = Image.empty ~name in
  let img = Image.add_blob img ~va:Word.zero ~w:false ~x:true code in
  let img =
    Image.add_insecure_mapping img
      ~mapping:(Mapping.make ~va:shared_va ~w:true ~x:false)
      ~target:shared_target
  in
  Image.add_thread img ~entry:Word.zero

let notary_image ~shared_target = image ~name:"serve-notary" ~prog:notary_prog ~shared_target
let verifier_image ~shared_target = image ~name:"serve-verifier" ~prog:verifier_prog ~shared_target

let pages_per_enclave =
  Image.pages_needed (notary_image ~shared_target:Os.shared_base)

(* -- Session execution --------------------------------------------------- *)

type verdict = {
  v_err : Errors.t;  (** the Enter's SMC error *)
  v_enter_cycles : int;  (** model cycles of the notary Enter crossing *)
  v_verify_cycles : int;  (** model cycles attributed to verification *)
  v_mac_ok : bool;  (** genuine MAC accepted *)
  v_tamper_rejected : bool;  (** bit-flipped MAC rejected *)
}

let flip_bit s =
  String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s

(** Run one attestation session on a notary slot: stage [nonce], enter
    the notary thread, read the published MAC, verify it host-side
    against [measurement] (and reject a tampered copy). Verification
    cycles are charged as the deterministic [Attest.verify_cycles]
    constant per check — the client-side cost model. *)
let attest ~os ~thread ~shared ~measurement ~nonce =
  if String.length nonce <> nonce_bytes then invalid_arg "Session.attest: nonce size";
  let os = Os.write_bytes os shared nonce in
  let c0 = Os.cycles os in
  let os, err, _ = Os.enter os ~thread ~args:(Word.zero, Word.zero, Word.zero) in
  let enter_cycles = Os.cycles os - c0 in
  if not (Errors.is_success err) then
    ( os,
      {
        v_err = err;
        v_enter_cycles = enter_cycles;
        v_verify_cycles = 0;
        v_mac_ok = false;
        v_tamper_rejected = false;
      } )
  else
    let mac = Os.read_bytes os (Word.add shared (Word.of_int mac_off)) 32 in
    let key = os.Os.mon.Monitor.attest_key in
    let ok = Attest.verify ~key ~measurement ~data:nonce ~mac in
    let tampered = Attest.verify ~key ~measurement ~data:nonce ~mac:(flip_bit mac) in
    ( os,
      {
        v_err = err;
        v_enter_cycles = enter_cycles;
        v_verify_cycles = 2 * Attest.verify_cycles;
        v_mac_ok = ok;
        v_tamper_rejected = not tampered;
      } )

(** Re-check a MAC through the verifier enclave (the in-enclave Verify
    SVC path): the OS writes (nonce || measurement || MAC) to the
    verifier's inbox and enters it. Returns the updated OS, the Enter's
    model cycles, and whether the verifier accepted. *)
let enclave_verify ~os ~thread ~shared ~measurement ~nonce ~mac =
  let os = Os.write_bytes os shared (nonce ^ measurement ^ mac) in
  let c0 = Os.cycles os in
  let os, err, verdict =
    Os.enter os ~thread ~args:(Word.zero, Word.zero, Word.zero)
  in
  let cycles = Os.cycles os - c0 in
  (os, cycles, Errors.is_success err && Word.to_int verdict = 1)

(** The MAC a notary slot published for its latest session (for
    ferrying to the verifier enclave). *)
let published_mac os ~shared = Os.read_bytes os (Word.add shared (Word.of_int mac_off)) 32
