(** Bounded admission queue with shed/deadline policy.

    Sessions that find every enclave slot busy wait in a FIFO queue of
    fixed capacity over model-cycle timestamps. A full queue sheds the
    newest arrival; a {!Deadline} policy additionally sheds sessions
    whose wait exceeded the deadline, measured when a slot frees up.
    Purely deterministic data — queue dynamics replay identically at
    any [-j]. *)

type policy =
  | Drop  (** shed only on a full queue *)
  | Deadline of int  (** also shed sessions older than this many cycles *)

val policy_name : policy -> string

type 'a t

val create : capacity:int -> policy:policy -> 'a t
(** @raise Invalid_argument on a negative capacity ([capacity = 0]
    sheds every arrival that cannot be served immediately). *)

val offer : 'a t -> now:int -> 'a -> [ `Queued | `Shed ]
(** Offer a session that cannot be dispatched immediately. *)

val take : 'a t -> now:int -> expired:('a -> unit) -> (int * 'a) option
(** Next [(arrival cycle, session)] to dispatch at [now], after
    shedding expired heads under a deadline policy. Every shed head is
    reported through [expired] so closed-loop callers can reissue the
    client; open-loop callers pass [ignore]. *)

(** Saturation accounting. *)

val depth : 'a t -> int
val max_depth : 'a t -> int
val enqueued : 'a t -> int

val shed_full : 'a t -> int
(** Sessions shed because the queue was full on arrival. *)

val shed_deadline : 'a t -> int
(** Sessions shed because their queue wait exceeded the deadline. *)

val shed : 'a t -> int
(** [shed_full + shed_deadline]. *)

val full_events : 'a t -> int
(** Arrivals that found the queue at capacity. *)
