(** Abstract monitor state: the spec side of the refinement.

    This is the PageDB-level functional state of the paper's Dafny
    specification (§5.2, §6): page types, address-space lifecycle
    states, abstract page tables, and measurement transcripts. It is
    deliberately independent of [lib/machine] — everything is a plain
    [int] (page numbers, physical addresses, virtual addresses modulo
    2^32) and page-table pages are finite maps rather than memory
    words. Enclave-private register state and page contents are *not*
    modelled: they are the secrets the spec treats as opaque, exactly
    as the paper's declassification boundary does.

    The only primitive shared with the implementation is SHA-256
    ({!Komodo_crypto.Sha256}); the measurement *encoding* (record
    framing, tags, padding) is restated here independently. *)

module Sha256 = Komodo_crypto.Sha256

(** Boot-time platform facts the spec transitions consult. All plain
    integers (physical addresses / byte counts). *)
type plat = {
  npages : int;
  page_size : int;
  secure_base : int;  (** physical base of secure page 0 *)
  insecure_base : int;
  insecure_limit : int;  (** OS RAM: [insecure_base, insecure_limit) *)
  monitor_base : int;
  monitor_size : int;
  va_limit : int;  (** exclusive enclave VA bound (1 GB) *)
}

type aperms = { w : bool; x : bool }

val pp_aperms : aperms -> string

(** Abstract second-level page-table entry: a secure page of the same
    enclave, or an insecure physical frame. *)
type apte = Psec of int * aperms | Pins of int * aperms

(** Measurement transcript. [Mctx] is an in-progress transcript kept as
    an incrementally-updated hash context; [Mdone] a finalised digest;
    [Mopaque] an unknown transcript (trace replay cannot observe staged
    page contents) which compares equal to anything. *)
type ameasure = Mctx of Sha256.ctx | Mdone of Sha256.digest | Mopaque

type aspace_state = Sinit | Sfinal | Sstopped

val state_name : aspace_state -> string

type aspace = {
  l1pt : int;
  refcount : int;  (** owned pages, excluding the addrspace page *)
  st : aspace_state;
  meas : ameasure;
}

type athread = {
  tasp : int;
  entry : int;
  entered : bool;
  has_ctx : bool;
  dispatcher : int option;
  has_fault_ctx : bool;
}

type apage =
  | Afree
  | Aaddrspace of aspace
  | Athread of athread
  | Al1 of { asp : int; slots : int Map.Make(Int).t }
      (** first-level slot -> second-level table page number *)
  | Al2 of { asp : int; slots : apte Map.Make(Int).t }
  | Adata of { asp : int }
  | Aspare of { asp : int }

type t = { plat : plat; pages : apage Map.Make(Int).t }

val boot : plat -> t
(** All pages free. *)

val get : t -> int -> apage
(** @raise Invalid_argument on an out-of-range page number. *)

val set : t -> int -> apage -> t

val owner_of : apage -> int option
(** Owning address space ([None] for free and addrspace pages). *)

val owned : t -> int -> int list
(** Pages owned by address space [asp], excluding its own page. *)

(* Platform / layout predicates (restated from Figure 4). *)

val page_pa : plat -> int -> int
val page_of_pa : plat -> int -> int option
val in_monitor_image : plat -> int -> bool
val in_secure_region : plat -> int -> bool

val valid_insecure : plat -> int -> bool
(** OS RAM minus monitor image minus secure region — the §9.1 check. *)

(* Measurement transcript (encoding restated from §4/§7.2: records are
   16-word big-endian blocks, tag then parameters, zero-padded; data
   pages absorb their 4096 contents bytes as 64 further blocks). *)

val meas_initial : ameasure
val meas_add_thread : ameasure -> entry:int -> ameasure

val meas_add_data : ameasure -> mapping_word:int -> contents:string option -> ameasure
(** [contents = None] (unobservable initial contents) degrades the
    transcript to [Mopaque]. *)

val meas_finalise : ameasure -> ameasure
val meas_digest : ameasure -> Sha256.digest option
val equal_meas : ameasure -> ameasure -> bool

(* Comparison and rendering. *)

val pp_page : apage -> string

val diff : t -> t -> (int * string * string) list
(** Pages on which the two states disagree, as
    [(page, rendered_left, rendered_right)]. *)

val equal : t -> t -> bool
