(* Coverage counters for the differential checker.

   Every listing this module exposes is canonical: hashtable iteration
   order (which depends on insertion order, and therefore on merge
   order when per-worker tables are combined) must never reach a
   report. Fixed call tables are listed in call-number order and every
   folded table is sorted before it escapes, so merging per-trial
   covers in any order yields byte-identical reports. *)

type t = {
  smc : (int * int, int) Hashtbl.t; (* (call, err) -> count *)
  svc : (int * int, int) Hashtbl.t;
  trans : (string, int) Hashtbl.t;
}

let create () =
  { smc = Hashtbl.create 64; svc = Hashtbl.create 32; trans = Hashtbl.create 16 }

let incr tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let record_smc t ~call ~err = incr t.smc (call, err) 1
let record_svc t ~call ~err = incr t.svc (call, err) 1

let record_transition t ~from_type ~to_type =
  incr t.trans (from_type ^ "->" ^ to_type) 1

let all_smcs = List.init 12 (fun i -> i + 1)
let all_svcs = List.init 9 (fun i -> i)

let call_count tbl call =
  Hashtbl.fold (fun (c, _) n acc -> if c = call then acc + n else acc) tbl 0

let smc_covered t =
  List.map (fun c -> (Aspec.smc_name c, call_count t.smc c)) all_smcs

let svc_covered t =
  List.map (fun c -> (Aspec.svc_name c, call_count t.svc c)) all_svcs

(* All of a hashtable's bindings, sorted by key: the only way table
   contents may leave this module. *)
let sorted_bindings tbl =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare

let errors_covered t =
  let errs = Hashtbl.create 24 in
  let add (_, e) n = incr errs e n in
  Hashtbl.iter add t.smc;
  Hashtbl.iter add t.svc;
  sorted_bindings errs |> List.map (fun (e, n) -> (Aspec.err_name e, n))

let transitions t = sorted_bindings t.trans

let deficit tbl calls = List.filter (fun c -> call_count tbl c = 0) calls
let smc_deficit t = deficit t.smc all_smcs
let svc_deficit t = deficit t.svc all_svcs

let report t =
  let counts l =
    String.concat " " (List.map (fun (n, c) -> Printf.sprintf "%s=%d" n c) l)
  in
  let hit l = List.length (List.filter (fun (_, c) -> c > 0) l) in
  let smc = smc_covered t and svc = svc_covered t in
  let errs = errors_covered t and trans = transitions t in
  [
    Printf.sprintf "SMC coverage (%d/%d calls): %s" (hit smc) (List.length smc)
      (counts smc);
    Printf.sprintf "SVC coverage (%d/%d calls): %s" (hit svc) (List.length svc)
      (counts svc);
    Printf.sprintf "error codes exercised (%d): %s" (List.length errs) (counts errs);
    Printf.sprintf "page transitions (%d): %s" (List.length trans) (counts trans);
  ]

let merge_into dst src =
  Hashtbl.iter (fun k n -> incr dst.smc k n) src.smc;
  Hashtbl.iter (fun k n -> incr dst.svc k n) src.svc;
  Hashtbl.iter (fun k n -> incr dst.trans k n) src.trans

let equal a b =
  sorted_bindings a.smc = sorted_bindings b.smc
  && sorted_bindings a.svc = sorted_bindings b.svc
  && sorted_bindings a.trans = sorted_bindings b.trans

(* Coverage-point domination: every (call, error) pair and transition
   [small] observed at least once must appear in [big] (counts are
   irrelevant — an exhaustive run and a random campaign hit points with
   wildly different frequencies). Returned missing points are sorted by
   construction (sorted_bindings), so the listing is deterministic. *)
let dominates big small =
  let missing = ref [] in
  let miss kind rendered = missing := (kind, rendered) :: !missing in
  List.iter
    (fun ((call, err), n) ->
      if n > 0 && not (Hashtbl.mem big.smc (call, err)) then
        miss "smc" (Printf.sprintf "%s/%s" (Aspec.smc_name call) (Aspec.err_name err)))
    (sorted_bindings small.smc);
  List.iter
    (fun ((call, err), n) ->
      if n > 0 && not (Hashtbl.mem big.svc (call, err)) then
        miss "svc" (Printf.sprintf "%s/%s" (Aspec.svc_name call) (Aspec.err_name err)))
    (sorted_bindings small.svc);
  List.iter
    (fun (tr, n) ->
      if n > 0 && not (Hashtbl.mem big.trans tr) then miss "transition" tr)
    (sorted_bindings small.trans);
  List.rev !missing
