module Event = Komodo_telemetry.Event
module Imap = Map.Make (Int)

type report = {
  events : int;
  calls : int;
  violations : (int * string) list;
}

let tname = function
  | Astate.Afree -> "free"
  | Astate.Aaddrspace _ -> "addrspace"
  | Astate.Athread _ -> "thread"
  | Astate.Al1 _ -> "l1ptable"
  | Astate.Al2 _ -> "l2ptable"
  | Astate.Adata _ -> "datapage"
  | Astate.Aspare _ -> "sparepage"

(* Transitions the spec predicts for a deterministic call: page numbers
   whose type name changed. *)
let spec_transitions before after =
  let n = before.Astate.plat.Astate.npages in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let f = tname (Astate.get before i) and t = tname (Astate.get after i) in
      go (i + 1) (if f = t then acc else (i, f, t) :: acc)
  in
  go 0 []

type st = {
  spec : Astate.t;
  pending : (int * int list) option;  (** Smc_entry awaiting its exit *)
  trans : (int * string * string) list;  (** transitions since that entry *)
  calls : int;
  violations : (int * string) list;
}

let violation st i msg = { st with violations = (i, msg) :: st.violations }

let check_transitions st i spec' observed =
  let expected = spec_transitions st.spec spec' in
  let show (p, f, t) = Printf.sprintf "page %d: %s -> %s" p f t in
  let missing = List.filter (fun tr -> not (List.mem tr observed)) expected in
  let surplus = List.filter (fun tr -> not (List.mem tr expected)) observed in
  let st =
    if missing = [] then st
    else
      violation st i
        ("spec retypes not in trace: " ^ String.concat "; " (List.map show missing))
  in
  if surplus = [] then st
  else
    violation st i
      ("trace retypes the spec does not predict: "
      ^ String.concat "; " (List.map show surplus))

(* Retypings observed during opaque enclave execution: the enclave may
   only reshape its own pages among spare/data/second-level table. *)
let apply_enclave_transitions st i asp spec =
  List.fold_left
    (fun (st, spec) (pg, _, to_t) ->
      let owned =
        pg >= 0
        && pg < spec.Astate.plat.Astate.npages
        && Astate.owner_of (Astate.get spec pg) = Some asp
      in
      if not owned then
        ( violation st i
            (Printf.sprintf
               "enclave run retyped page %d, which addrspace %d does not own" pg asp),
          spec )
      else
        match to_t with
        | "sparepage" -> (st, Astate.set spec pg (Astate.Aspare { asp }))
        | "datapage" -> (st, Astate.set spec pg (Astate.Adata { asp }))
        | "l2ptable" ->
            (st, Astate.set spec pg (Astate.Al2 { asp; slots = Imap.empty }))
        | t ->
            ( violation st i
                (Printf.sprintf "enclave run retyped page %d to %s: outside its authority"
                   pg t),
              spec ))
    (st, spec) st.trans

let step st i (ev : Event.t) =
  match ev with
  | Event.Smc_entry { call; args; _ } ->
      let st =
        match st.pending with
        | Some _ -> violation st i "nested smc_entry without smc_exit"
        | None -> st
      in
      { st with pending = Some (call, args); trans = [] }
  | Event.Page_transition { page; from_type; to_type } ->
      if st.pending = None then
        violation st i "page_transition outside any monitor call"
      else { st with trans = st.trans @ [ (page, from_type, to_type) ] }
  | Event.Smc_exit { call; err; retval; _ } -> (
      match st.pending with
      | None -> violation st i "smc_exit without smc_entry"
      | Some (ecall, args) ->
          let st = { st with pending = None; calls = st.calls + 1 } in
          if ecall <> call then
            violation st i
              (Printf.sprintf "smc_exit call %d does not match entry %d" call ecall)
          else begin
            let probe _ _ = false in
            match Aspec.step_smc st.spec ~probe ~contents:None ~call ~args with
            | exception Aspec.Stuck msg -> violation st i ("spec stuck: " ^ msg)
            | Aspec.Done (spec', serr, sret) ->
                if serr <> err then
                  violation st i
                    (Printf.sprintf "error word: spec %s (%d), trace %s (%d)"
                       (Aspec.err_name serr) serr (Aspec.err_name err) err)
                else if sret <> retval then
                  violation st i
                    (Printf.sprintf "return value: spec 0x%x, trace 0x%x" sret retval)
                else
                  let st = check_transitions st i spec' st.trans in
                  { st with spec = spec' }
            | Aspec.Pending p -> (
                match Aspec.allowed_outcome err with
                | None ->
                    violation st i
                      (Printf.sprintf
                         "%s returned %s (%d): not a legal enclave outcome"
                         (Aspec.smc_name call) (Aspec.err_name err) err)
                | Some outcome ->
                    let spec' = Aspec.resolve st.spec p ~outcome in
                    let st, spec' = apply_enclave_transitions st i p.Aspec.asp spec' in
                    { st with spec = spec' })
          end)
  | Event.Svc_entry _ | Event.Svc_exit _ | Event.Exception _
  | Event.Enclave_lifecycle _ | Event.Fault_injected _ ->
      st

let replay ~npages (events : Event.stamped list) =
  let st0 =
    {
      spec = Astate.boot (Abs.plat ~npages);
      pending = None;
      trans = [];
      calls = 0;
      violations = [];
    }
  in
  let st, n =
    List.fold_left
      (fun (st, i) { Event.ev; _ } -> (step st i ev, i + 1))
      (st0, 0) events
  in
  { events = n; calls = st.calls; violations = List.rev st.violations }

let replay_file ~npages path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> (
      match Event.parse_trace contents with
      | Error e -> Error e
      | Ok events -> Ok (replay ~npages events))
