(* The sealed-storage theorem, stated as a decidable spec.

   The property the vault campaigns check after every injected
   storage fault:

     A sealed blob unseals (verdict accept) iff it is byte-identical
     to the newest genuinely-sealed blob and the trusted NV counter
     still vouches for its epoch; a blob byte-identical to an older
     genuine seal is reported stale (rollback detected); anything
     else — bit flips, reordered or truncated or wiped storage,
     blobs assembled from mismatched pieces — is reported tampered.
     The vault never silently accepts, and an accepted unseal
     restores exactly the state that was sealed.

   Together with key derivation (the seal key is a function of the
   measurement and the boot secret, so a different enclave or a
   different platform cannot open the blob at all) this is the
   storage half of Komodo §9's deferred persistence story: the OS
   can always destroy data — crash-storm campaigns exercise exactly
   that — but it can never *lie* about it undetected.

   [classify] is the spec side: it looks only at ground truth the
   driver (playing both adversary and judge, like [Drive]) already
   has — the genuine seal history and the NV counter. [judge]
   compares the vault's observable behaviour against that
   prediction; any mismatch is a theorem violation. *)

(** One genuinely-sealed generation, recorded by the trusted driver
    at seal time. *)
type genuine = {
  g_epoch : int;
  g_blob : string;  (** the exact bytes handed to the OS *)
  g_digest : string;  (** SHA-256 of the state sealed inside *)
}

(** What the theorem says must happen when a given blob is presented
    for unsealing. *)
type expectation =
  | Must_accept of genuine  (** newest genuine blob under the live counter *)
  | Must_stale of genuine  (** genuine but superseded: a rollback *)
  | Must_tamper  (** not a genuine blob at all *)

let pp_expectation = function
  | Must_accept g -> Printf.sprintf "accept (epoch %d)" g.g_epoch
  | Must_stale g -> Printf.sprintf "stale (epoch %d)" g.g_epoch
  | Must_tamper -> "tampered"

(** [classify ~genuine ~nv ~blob]: the spec's verdict for presenting
    [blob] while the NV counter reads [nv]. [genuine] is the seal
    history, newest first. *)
let classify ~genuine ~nv ~blob =
  match List.find_opt (fun g -> String.equal g.g_blob blob) genuine with
  | Some g when g.g_epoch = nv -> Must_accept g
  | Some g -> Must_stale g
  | None -> Must_tamper

(* The vault's verdict encoding (mirrored from the enclave so the
   spec does not depend on it structurally). *)
let v_accept = Komodo_user.Vault.verdict_accept
let v_tampered = Komodo_user.Vault.verdict_tampered
let v_stale = Komodo_user.Vault.verdict_stale

let verdict_name v =
  if v = v_accept then "accept"
  else if v = v_tampered then "tampered"
  else if v = v_stale then "stale"
  else Printf.sprintf "verdict %d" v

(** [judge expectation ~verdict ~digest] is [None] when the vault's
    observable behaviour matches the theorem, or [Some reason].
    [digest] is the vault's published state digest after an accepted
    unseal (ignored otherwise); passing [None] skips that check. *)
let judge expectation ~verdict ~digest =
  let fail fmt = Printf.ksprintf Option.some fmt in
  match expectation with
  | Must_accept g ->
      if verdict <> v_accept then
        fail "genuine latest blob (epoch %d) refused as %s" g.g_epoch
          (verdict_name verdict)
      else (
        match digest with
        | Some d when not (String.equal d g.g_digest) ->
            fail "accepted unseal of epoch %d restored the wrong state"
              g.g_epoch
        | _ -> None)
  | Must_stale g ->
      if verdict = v_accept then
        fail "rollback to epoch %d silently accepted" g.g_epoch
      else if verdict <> v_stale then
        fail "stale blob (epoch %d) misreported as %s" g.g_epoch
          (verdict_name verdict)
      else None
  | Must_tamper ->
      if verdict = v_accept then
        fail "corrupted blob silently accepted (false unseal)"
      else if verdict <> v_tampered then
        fail "tampered blob misreported as %s" (verdict_name verdict)
      else None
