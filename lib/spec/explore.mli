(** Bounded exhaustive model checking of the monitor lifecycle.

    Random campaigns ([Diff], the fault injector) {e sample} the SMC/SVC
    interleaving space; this module {e enumerates} it. Starting from a
    small world (a booted platform plus a five-call prelude that builds
    the probe enclave mid-construction), a breadth-first search applies
    every op of a finite, world-covering alphabet to every reachable
    abstract state ({!Astate}) up to a depth bound, deduplicating states
    by their canonical serialisation ({!Ahash}) and checking on every
    edge:

    - {b exact error priorities}: an independent restatement of every
      Table 1 precondition chain predicts the error word and return
      value, and any disagreement with {!Aspec.step_smc} is a violation;
    - {b PageDB invariants}: refcounts equal owned-page counts, page
      tables of live address spaces are well-formed and alias-free,
      lifecycle states match transcript forms;
    - {b measurement monotonicity}: transcripts only ever absorb more
      blocks, finalised digests never change, and [Finalise] produces
      exactly the finalisation of the in-progress context;
    - {b declassification}: a successful [MapSecure]/[MapInsecure] only
      ever read page-aligned, genuinely-insecure memory — never the
      monitor image or the secure region;
    - {b error framing}: a failing call returns [r1 = 0] and leaves the
      abstract state untouched.

    Enter/Resume of an enclave the spec cannot predict (any thread but
    the live probe) is explored as a three-way branch over the legal
    outcomes (exit / interrupted / fault) via forced edges.

    The search is seed-independent: [seed] only names the concrete world
    a counterexample trace replays against. Exploration is sharded over
    a frontier (see {!expand_range}) so the campaign engine can run
    levels on a domain pool with byte-identical results at any [-j].

    The depth bound is the soundness caveat: a clean report certifies
    the checked properties only for op sequences of at most [depth]
    calls beyond the prelude (and, for worlds above 10 pages, only for
    the symmetry-reduced page-argument pool). *)

type config = {
  pages : int;  (** secure pages in the world; at least {!min_pages} *)
  depth : int;  (** BFS bound, in ops beyond the prelude *)
  seed : int;  (** concrete-replay seed (the search itself is seedless) *)
  mutate : Aspec.mutation option;  (** explore a deliberately-wrong spec *)
}

val min_pages : int
(** 6 — the prelude occupies pages 0-5. *)

val n_prelude : int
(** Number of prelude ops (5). *)

(** One explored op: an SMC with, for an opaque Enter/Resume, the forced
    outcome branch this edge takes. *)
type xop = {
  call : int;
  args : int list;
  forced : [ `Exit | `Interrupted | `Fault ] option;
}

val pp_xop : xop -> string

(** A search node: the abstract state plus the probe-predictability
    latch, which is semantically part of the explored state (it decides
    whether Enter of the probe thread is predicted or branched). *)
type snode = { st : Astate.t; probe_ok : bool }

val node_key : snode -> string
(** Canonical dedup key: a probe-latch byte prepended to {!Ahash.key}. *)

val node_hash : snode -> string
(** 16 hex digits of the FNV-1a hash of {!node_key} (display only). *)

type violation = {
  v_prelude : bool;  (** the prelude itself violated (mutated specs) *)
  v_depth : int;  (** ops beyond the prelude on the path (0 if prelude) *)
  v_reason : string;
  v_ops : xop list;  (** complete shortest path from boot, prelude included *)
}

val render_violation : violation -> string list

type world

val make_world : config -> world
(** Boot [Astate] and run the prelude through the same checked-edge
    pipeline as the search. A prelude violation (possible under
    [mutate]) is recorded in {!prelude_violation}, not raised.
    @raise Invalid_argument if [pages < min_pages] or [depth < 0]. *)

val config_of : world -> config
val root : world -> snode
val prelude_xops : world -> xop list
val prelude_edges : world -> int
(** Edges checked while running the prelude. *)

val prelude_cover : world -> Cover.t
val prelude_violation : world -> violation option

val alphabet : world -> snode -> xop list
(** The finite op alphabet applied to a node: every Table 1 call over a
    page-argument pool (all pages plus one out-of-range representative
    for worlds of at most 10 pages; a symmetry-reduced pool — all
    non-free pages, the two lowest free pages, one out-of-range — for
    larger worlds), mapping/content pools covering every validity
    class, probe-SVC argument pools mirroring the differential
    checker's, and three forced-outcome branches wherever the oracle
    says the enclave run is opaque. Deterministic per node. *)

(** The result of exhausting one frontier slice (see {!expand_range}):
    everything the merge step needs, in deterministic order. *)
type shard = {
  sh_edges : int;  (** edges checked (up to and including a violation) *)
  sh_new : (string * snode * int * xop) list;
      (** discovered states not in [visited] at shard start, as
          (key, node, parent frontier index, op), discovery order;
          may still collide across shards — the merge dedups *)
  sh_cover : Cover.t;
  sh_violation : (int * xop * string) option;
      (** (parent frontier index, op, reason) of the first violation in
          slice order; the shard stops there *)
}

val expand_range :
  world ->
  visited:(string -> bool) ->
  frontier:snode array ->
  lo:int ->
  hi:int ->
  shard
(** Apply the full alphabet to frontier nodes [lo..hi-1] in order.
    [visited] is a read-only membership test of all states known before
    this level (shared across shards — no shard writes it). Pure up to
    [visited], so any shard partition at any [-j] merges to the same
    level. *)

(** A whole-search report, assembled by the campaign engine's level
    loop with sequential semantics (identical at any [-j]). *)
type report = {
  x_states : int;  (** distinct states, the root included *)
  x_edges : int;  (** edges checked, the prelude's included *)
  x_levels : int list;  (** new states discovered per depth level *)
  x_cover : Cover.t;  (** prelude + search coverage *)
  x_violation : violation option;
}

(** {2 Counterexample traces}

    A violation's shortest path is emitted as a ["komodo-check-trace/1"]
    JSONL file and replayed through the PR-2 differential checker
    ({!Diff.apply_op}) against a freshly booted concrete world, so every
    abstract counterexample is immediately cross-validated against the
    machine: under the same [mutate] the divergence must reproduce. *)

val schema : string
(** ["komodo-check-trace/1"]. *)

val trace_lines : config -> violation -> string list
val is_trace : string -> bool
(** Does this first line carry the {!schema} magic? (Used by
    [komodo check --replay] to route between trace kinds.) *)

type replayed =
  | Clean of int  (** all ops matched; op count *)
  | Diverged of Diff.divergence

val replay_lines : string list -> (replayed, string) result
val replay_file : string -> (replayed, string) result
(** Parse and replay a trace: boot [Os] from the header's seed and page
    count, stage the probe image, run every op in differential lockstep
    (under the header's [mutate], so a mutation counterexample must
    diverge), zeroing the staging window after the prelude exactly as
    the explorer's abstract contents oracle assumes. *)
