(** The differential refinement checker.

    Builds a world (booted platform plus a *probe* enclave whose
    behaviour the spec predicts exactly, a workload enclave with
    exit/fault/spin threads, and an unfinalised enclave mid
    construction), generates adversarial OS call sequences biased
    toward lifecycle edges, aliased page numbers, interrupt injection
    mid-Enter and the §8.2/§9.1 attack shapes, and steps the abstract
    spec ({!Aspec}) and the real monitor in lockstep, checking after
    every call that

    {v abs (impl_step s c)  =  spec_step (abs s) c v}

    including the returned error code and r1 value. Any divergence is
    shrunk to a minimal op trace by greedy deletion. The prelude that
    builds the world runs through the same checked lockstep pipeline,
    so construction-call coverage is free and exact. *)

type op =
  | Smc of { call : int; args : int list; budget : int option }
      (** one monitor call; [budget] arms the interrupt source before
          the crossing (None leaves interrupts off) *)
  | Write_ins of { addr : int; value : int }
      (** an OS store to insecure memory between calls *)

val pp_op : op -> string

type divergence = { index : int; op : op; reason : string }

val pp_divergence : divergence -> string

type world
(** A built post-prelude world; reusable as the fixed starting point of
    any number of op-sequence runs (generation, shrinking, replay). *)

type rstate = {
  os : Komodo_os.Os.t;  (** the concrete system *)
  spec : Astate.t;  (** the abstract state tracked in lockstep *)
  probe_ok : bool;
      (** latches false permanently once the probe enclave's shape is
          broken; later runs treat the probe as opaque *)
  abs_cache : Abs.cache;
      (** decoded page-table memo for the post-op abstraction; validated
          by memory-chunk identity, so any stepping order may share it *)
}
(** One side-by-side lockstep state, exposed so external drivers (the
    fault injector) can step ops with {!apply_op} and interleave their
    own checks. *)

val initial_rstate : world -> rstate

val make_world :
  ?mutate:Aspec.mutation ->
  ?npages:int ->
  ?sink:Komodo_telemetry.Sink.t ->
  ?spans:Komodo_telemetry.Span.recorder ->
  seed:int ->
  unit ->
  world
(** Boot and build the three prelude enclaves through the checked
    lockstep pipeline. The prelude always runs against the unmutated
    spec — a [mutate] flag applies to the generated phase only.
    [sink] attaches a telemetry sink to the booted monitor (a metrics
    registry, when the campaign engine is asked to collect one);
    [spans] attaches a span recorder, profiling the prelude and every
    subsequent op through this world.
    @raise Failure if the prelude itself diverges. *)

val world_cover : world -> Cover.t
(** Coverage recorded while building the prelude. *)

val probe_thread : world -> int
(** The probe enclave's thread page. *)

val probe_shape : Astate.t -> bool
(** Whether the prelude's probe enclave is still intact in an abstract
    state: addrspace 0 final with its original first-level table, and
    page 5 the original idle thread. This is the exact predicate behind
    the [probe_ok] latch — exposed so the exhaustive explorer
    ({!Explore}) latches identically and its traces replay through this
    checker without spurious probe-opacity divergences. *)

val apply_op :
  ?mutate:Aspec.mutation ->
  ?cover:Cover.t ->
  ?opaque_contents:bool ->
  ?opaque_probe:bool ->
  ?rng_exhausted:bool ->
  rstate ->
  int ->
  op ->
  (rstate, divergence) result
(** One lockstep step: run [op] against the implementation and the spec
    and compare. [opaque_contents] forces the MapSecure contents oracle
    to opaque (a fault driver mutating insecure memory mid-call cannot
    know what the handler will read). [opaque_probe] treats a probe
    Enter as an opaque enclave run (instruction-level injection makes
    its outcome unpredictable). [rng_exhausted] overrides the entropy
    oracle, which defaults to the implementation's pre-call budget. *)

val gen_ops : world -> seed:int -> n:int -> op list
(** Generate an adversarial op sequence. Generation is coverage-guided
    at the trial level: the profile rotates with the seed, and SVC
    probes cycle through every call number. *)

val run_ops : ?cover:Cover.t -> world -> op list -> (int, divergence) result
(** Run an op sequence from the world's initial state in lockstep;
    [Ok n] means all [n] ops matched, [Error d] is the first
    divergence. *)

val shrink_seq :
  run:('op list -> ('ok, 'bad) result) ->
  index:('bad -> int) ->
  'op list ->
  'op list * 'bad
(** Generic greedy 1-minimal shrinker: truncate at the first failure
    ([index] extracts its position), then repeatedly drop single ops
    while the remainder still fails.
    @raise Invalid_argument if [run ops] does not fail. *)

val shrink : world -> op list -> op list * divergence
(** Truncate at the first divergence, then greedily delete ops while
    the remainder still diverges. The result is 1-minimal: removing
    any single op makes the divergence disappear.
    @raise Invalid_argument if the ops do not diverge at all. *)

(** {2 Campaign trials}

    One differential trial is a pure function of its seed: build a
    world, generate an adversarial sequence, step it in lockstep. The
    campaign loop itself lives in [Komodo_campaign.Campaign], which
    derives per-trial seeds with a splittable PRNG and runs trials on
    a domain pool — this module only supplies the per-trial unit. *)

type trial = {
  t_ops_run : int;
      (** generated ops that matched (the divergent op excluded) *)
  t_cover : Cover.t;  (** prelude + generated-phase coverage *)
  t_metrics : Komodo_telemetry.Metrics.t option;
      (** per-trial telemetry registry, when requested *)
  t_spans : Komodo_telemetry.Span.node list;
      (** per-trial profile spans ([[]] unless profiling) *)
  t_divergence : divergence option;
}

val run_trial :
  ?mutate:Aspec.mutation ->
  ?npages:int ->
  ?ops_per_trial:int ->
  ?metrics:bool ->
  ?profile:bool ->
  ?clock:Komodo_telemetry.Span.clock ->
  seed:int ->
  unit ->
  trial
(** Run one differential trial, deterministically from [seed]. No
    shrinking — a campaign shrinks only its lowest failing trial, once,
    on one domain (see {!shrink_trial}). [profile] records a span tree
    into [t_spans]; without [clock] it is a pure function of the seed
    (wallclock fields 0), so profiles diff identically across [-j]
    levels. *)

val shrink_trial :
  ?mutate:Aspec.mutation ->
  ?npages:int ->
  ?ops_per_trial:int ->
  seed:int ->
  unit ->
  (op list * divergence) option
(** Regenerate trial [seed] and shrink its divergence to a 1-minimal
    trace; [None] if the trial does not actually diverge. *)

type outcome = {
  trials_run : int;
  ops_run : int;
  divergence : (int * op list * divergence) option;
      (** trial seed, shrunk ops, divergence *)
  cover : Cover.t;
  metrics : Komodo_telemetry.Metrics.t option;
      (** merged per-trial registries, when collected *)
  spans : Komodo_telemetry.Span.node list;
      (** per-trial span trees concatenated in trial-index order ([[]]
          unless profiling) *)
}
(** A whole-campaign report, assembled by the campaign engine's reducer
    with sequential semantics: counts cover trials [0..k] where [k] is
    the lowest failing index (or all trials), regardless of how many
    domains ran the campaign. *)
