(** Coverage counters for the differential checker: which calls ran,
    which error codes each produced, which page-type transitions were
    observed. The driver uses the deficit sets to bias generation
    toward unexercised behaviour. *)

type t

val create : unit -> t
val record_smc : t -> call:int -> err:int -> unit
val record_svc : t -> call:int -> err:int -> unit
val record_transition : t -> from_type:string -> to_type:string -> unit

val smc_covered : t -> (string * int) list
(** Per-SMC hit counts, every Table 1 call listed (zero if never run),
    in call-number order. *)

val svc_covered : t -> (string * int) list

val errors_covered : t -> (string * int) list
(** Distinct error codes observed across all calls, with counts. *)

val transitions : t -> (string * int) list

val smc_deficit : t -> int list
(** Table 1 SMC calls with no observations yet. *)

val svc_deficit : t -> int list

val report : t -> string list
(** Human-readable coverage summary, one line per section. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s counts into [dst]. Merging is
    commutative and associative, and every listing above is sorted
    before leaving the module, so tables merged in any order (e.g.
    per-worker covers from a parallel campaign) render byte-identical
    {!report}s. *)

val equal : t -> t -> bool
(** Same counts for every (call, error) pair and transition, however
    the tables were built or merged. *)

val dominates : t -> t -> (string * string) list
(** [dominates big small] lists the coverage points — (call, error)
    pairs and page-type transitions — that [small] observed but [big]
    never did, as [(kind, point)] with [kind] one of ["smc"], ["svc"],
    ["transition"]. An empty list means [big]'s coverage is a superset
    of [small]'s (counts are ignored, only presence). The listing is
    sorted, hence deterministic. *)
