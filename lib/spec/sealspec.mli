(** The sealed-storage theorem, stated as a decidable spec.

    A sealed blob unseals iff it is byte-identical to the newest
    genuinely-sealed blob and the trusted NV counter vouches for its
    epoch; a blob equal to an older genuine seal must be reported
    stale (rollback detected); anything else must be reported
    tampered. An accepted unseal restores exactly the sealed state.
    The vault never silently accepts.

    [classify] predicts from ground truth (the driver's seal history
    and NV counter); [judge] compares the vault's observable
    behaviour against the prediction — any mismatch is a theorem
    violation, checked by the storage fault campaigns after every
    injected fault. *)

type genuine = {
  g_epoch : int;
  g_blob : string;  (** the exact bytes handed to the OS *)
  g_digest : string;  (** SHA-256 of the state sealed inside *)
}

type expectation =
  | Must_accept of genuine
  | Must_stale of genuine
  | Must_tamper

val pp_expectation : expectation -> string

val classify : genuine:genuine list -> nv:int -> blob:string -> expectation
(** [genuine] newest first; [nv] is the trusted counter value. *)

val verdict_name : int -> string

val judge : expectation -> verdict:int -> digest:string option -> string option
(** [None] when behaviour matches the theorem, else the violation
    reason. [digest] is the post-accept published state digest;
    [None] skips that sub-check. *)
