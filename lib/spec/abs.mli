(** The abstraction function of the refinement: concrete monitor state
    to abstract spec state.

    [abs] reads the implementation's PageDB and decodes its live page
    tables out of machine memory (first-level slots to second-level
    page numbers, second-level slots to abstract PTEs), collapses each
    measurement to its current digest, and forgets everything the spec
    treats as secret: page contents, saved register contexts, cycle
    counts, the RNG. The refinement theorem the differential checker
    tests is [abs (impl_step s c) = spec_step (abs s) c]. *)

module Monitor = Komodo_core.Monitor

val plat : npages:int -> Astate.plat
(** The spec's platform-constants record for this build's layout
    (Figure 4), usable without a booted monitor (trace replay). *)

val plat_of : Monitor.t -> Astate.plat

type cache
(** Memo of decoded page-table slots keyed by page number, validated
    against the identity of the memory chunk backing each table page
    (chunks are immutable, so identity implies identical decode). One
    cache per replayed world; sharing across worlds is safe but
    pointless. *)

val cache : unit -> cache
val abs : ?cache:cache -> Monitor.t -> Astate.t
