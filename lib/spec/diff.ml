module Os = Komodo_os.Os
module Monitor = Komodo_core.Monitor
module Errors = Komodo_core.Errors
module Pagedb = Komodo_core.Pagedb
module Word = Komodo_machine.Word
module State = Komodo_machine.State
module Uprog = Komodo_user.Uprog
module Progs = Komodo_user.Progs
module Attacks = Komodo_sec.Attacks
module Metrics = Komodo_telemetry.Metrics
module Span = Komodo_telemetry.Span

type op =
  | Smc of { call : int; args : int list; budget : int option }
  | Write_ins of { addr : int; value : int }

let pp_op = function
  | Smc { call; args; budget } ->
      Printf.sprintf "%s(%s)%s" (Aspec.smc_name call)
        (String.concat ", " (List.map (Printf.sprintf "0x%x") args))
        (match budget with None -> "" | Some n -> Printf.sprintf " [irq budget %d]" n)
  | Write_ins { addr; value } -> Printf.sprintf "write_ins *0x%x <- 0x%x" addr value

type divergence = { index : int; op : op; reason : string }

let pp_divergence d = Printf.sprintf "op %d: %s\n  %s" d.index (pp_op d.op) d.reason

(* The probe enclave occupies a fixed page layout built by the prelude. *)
let probe_asp = 0
let probe_l1 = 1
let probe_code = 3
let probe_th_page = 5

type world = {
  w_os : Os.t;
  w_spec : Astate.t;
  w_mutate : Aspec.mutation option;
  w_cover : Cover.t;
}

let world_cover w = w.w_cover
let probe_thread _ = probe_th_page

type rstate = {
  os : Os.t;
  spec : Astate.t;
  probe_ok : bool;
  abs_cache : Abs.cache;
      (** Decoded page-table memo for the post-op abstraction; validated
          by chunk identity, so replays and shrinks can share it. *)
}

let initial_rstate w =
  { os = w.w_os; spec = w.w_spec; probe_ok = true; abs_cache = Abs.cache () }

(* -- plumbing ------------------------------------------------------------ *)

let err_word e = Word.to_int (Errors.to_word e)

let set_irq_budget b (os : Os.t) =
  {
    os with
    Os.mon =
      {
        os.Os.mon with
        Monitor.mach = { os.Os.mon.Monitor.mach with State.irq_budget = b };
      };
  }

(* The probe thread is only predictable while the enclave the prelude
   built is intact: addrspace 0 final with its original first-level
   table, and page 5 the original idle thread. The flag latches false
   permanently the moment the shape breaks, so later reincarnations of
   the same page numbers are treated as opaque enclaves. *)
let probe_shape spec =
  (match Astate.get spec probe_asp with
  | Astate.Aaddrspace a -> a.Astate.st = Astate.Sfinal && a.Astate.l1pt = probe_l1
  | _ -> false)
  &&
  match Astate.get spec probe_th_page with
  | Astate.Athread t ->
      t.Astate.tasp = probe_asp && t.Astate.entry = 0 && (not t.Astate.entered)
      && not t.Astate.has_ctx
  | _ -> false

let record_transitions cover before after =
  match cover with
  | None -> ()
  | Some c ->
      List.iter
        (fun (_, from_type, to_type) -> Cover.record_transition c ~from_type ~to_type)
        (Pagedb.diff_types before.Monitor.pagedb after.Monitor.pagedb)

(* MapSecure initial-contents oracle: the staged insecure page's bytes at
   call time, read only when the spec's own success preconditions on the
   content address hold (reading elsewhere would trip the TZASC). *)
let contents_oracle rs ~call ~args =
  if call <> Aspec.smc_map_secure then None
  else
    match args with
    | _ :: _ :: _ :: c :: _ ->
        let c = c land 0xffffffff in
        if c <> 0 && c land 0xfff = 0 && Astate.valid_insecure rs.spec.Astate.plat c
        then Some (Os.read_bytes rs.os (Word.of_int c) 4096)
        else None
    | _ -> None

let page_diff_reason what diffs =
  let render (n, l, r) = Printf.sprintf "page %d: spec %s, impl %s" n l r in
  let shown = List.filteri (fun i _ -> i < 4) diffs in
  Printf.sprintf "%s:\n    %s%s" what
    (String.concat "\n    " (List.map render shown))
    (if List.length diffs > 4 then
       Printf.sprintf "\n    ... and %d more" (List.length diffs - 4)
     else "")

(* Opaque Enter/Resume: the enclave may retype and remap its own pages
   (SVCs), which the spec cannot predict. Adopt the implementation's
   version of any differing page — but only if both sides agree the page
   belongs to the running enclave. Anything else escaping the run is a
   confinement violation; the thread page itself must additionally agree
   on the lifecycle bits the spec does predict. *)
let reconcile spec' impl_abs (p : Aspec.pending) =
  let diffs = Astate.diff spec' impl_abs in
  let step acc (n, l, r) =
    match acc with
    | Error _ -> acc
    | Ok sp -> (
        let lv = Astate.get sp n and rv = Astate.get impl_abs n in
        let both_owned =
          Astate.owner_of lv = Some p.Aspec.asp
          && Astate.owner_of rv = Some p.Aspec.asp
        in
        if not both_owned then
          Error
            (Printf.sprintf
               "effect escaped the running enclave (asp %d) — page %d: spec %s, impl %s"
               p.Aspec.asp n l r)
        else if n = p.Aspec.th then
          match (lv, rv) with
          | Astate.Athread lt, Astate.Athread rt
            when lt.Astate.tasp = rt.Astate.tasp
                 && lt.Astate.entered = rt.Astate.entered
                 && lt.Astate.has_ctx = rt.Astate.has_ctx ->
              Ok (Astate.set sp n rv)
          | _ ->
              Error
                (Printf.sprintf "thread %d lifecycle mismatch: spec %s, impl %s"
                   n l r)
        else Ok (Astate.set sp n rv))
  in
  List.fold_left step (Ok spec') diffs

(* -- one lockstep op ----------------------------------------------------- *)

(* The abstraction function under an "abs" profiling span. It charges
   no modelled cycles (it is checker machinery, not monitor work), so
   the span's payload is its wallclock attribution and call count. *)
let abs_span rs (os' : Os.t) =
  let mon = os'.Os.mon in
  Monitor.span_enter mon "abs";
  let a = Abs.abs ~cache:rs.abs_cache mon in
  Monitor.span_exit mon;
  a

let apply_op_checked ?mutate ?cover ?(opaque_contents = false)
    ?(opaque_probe = false) ?rng_exhausted rs index op :
    (rstate, divergence) result =
  let diverge reason = Error { index; op; reason } in
  match op with
  | Write_ins { addr; value } -> (
      try
        let os = Os.write_word rs.os (Word.of_int addr) (Word.of_int value) in
        Ok { rs with os }
      with Os.Protected _ ->
        diverge "OS store to a supposedly insecure address was blocked")
  | Smc { call; args; budget } -> (
      let os = set_irq_budget budget rs.os in
      let probe spec n =
        (not opaque_probe) && rs.probe_ok && n = probe_th_page && probe_shape spec
      in
      let is_probe_enter =
        call = Aspec.smc_enter
        && (match args with th :: _ -> probe rs.spec (th land 0xffffffff) | [] -> false)
      in
      (* The entropy oracle defaults to the implementation's own pre-call
         budget; a fault driver arming an exhaustion at this op's commit
         point overrides it to true. *)
      let rng_exhausted =
        match rng_exhausted with
        | Some b -> b
        | None -> Komodo_tz.Rng.exhausted os.Os.mon.Monitor.rng
      in
      let contents =
        if opaque_contents then None else contents_oracle rs ~call ~args
      in
      match Os.smc os ~call ~args:(List.map Word.of_int args) with
      | exception e ->
          diverge (Printf.sprintf "implementation raised %s" (Printexc.to_string e))
      | os', e, ret -> (
          let ew = err_word e and rw = Word.to_int ret in
          record_transitions cover os.Os.mon os'.Os.mon;
          (match cover with Some c -> Cover.record_smc c ~call ~err:ew | None -> ());
          let finish spec_final =
            (* Break-only latch: probe_ok drops (permanently) when an op
               takes the probe shape from intact to broken. For worlds
               built by [make_world] the shape is intact from op 0, so
               this is extensionally identical to re-ANDing the shape on
               every op; the explorer's shorter prelude leaves the probe
               enclave un-finalised, and the break-only rule is what
               lets its traces replay here without the latch dropping
               before the shape was ever established. *)
            Ok
              {
                rs with
                os = os';
                spec = spec_final;
                probe_ok =
                  rs.probe_ok
                  && ((not (probe_shape rs.spec)) || probe_shape spec_final);
              }
          in
          match
            Aspec.step_smc ?mutate ~rng_exhausted rs.spec ~probe ~contents ~call
              ~args
          with
          | exception Aspec.Stuck msg -> diverge ("spec stuck: " ^ msg)
          | Aspec.Done (spec', serr, sret) ->
              if serr <> ew then
                diverge
                  (Printf.sprintf "error word: spec %s (%d), impl %s (%d)"
                     (Aspec.err_name serr) serr (Aspec.err_name ew) ew)
              else if sret <> rw then
                diverge (Printf.sprintf "return value: spec 0x%x, impl 0x%x" sret rw)
              else begin
                (match cover with
                | Some c when is_probe_enter && ew = Aspec.e_success -> (
                    match args with
                    | _ :: sv :: _ when sv >= 0 && sv <= 8 ->
                        let svc_err =
                          if sv = Aspec.svc_exit then Aspec.e_success else rw
                        in
                        Cover.record_svc c ~call:sv ~err:svc_err
                    | _ -> ())
                | _ -> ());
                let impl_abs = abs_span rs os' in
                match Astate.diff spec' impl_abs with
                | [] -> finish spec'
                | diffs -> diverge (page_diff_reason "state divergence" diffs)
              end
          | Aspec.Pending p -> (
              match Aspec.allowed_outcome ew with
              | None ->
                  diverge
                    (Printf.sprintf
                       "%s of an opaque enclave returned %s (%d): not a legal outcome"
                       (Aspec.smc_name call) (Aspec.err_name ew) ew)
              | Some outcome -> (
                  let spec' = Aspec.resolve rs.spec p ~outcome in
                  let impl_abs = abs_span rs os' in
                  match reconcile spec' impl_abs p with
                  | Error reason -> diverge reason
                  | Ok spec_final -> (
                      match Astate.diff spec_final impl_abs with
                      | [] -> finish spec_final
                      | diffs ->
                          diverge (page_diff_reason "post-reconcile divergence" diffs))))))

(** One lockstep op, wrapped in an op-level profiling span when the
    world's monitor carries a live recorder (single branch otherwise).
    Depth is snapshotted so a diverging op unwinds cleanly. *)
let apply_op ?mutate ?cover ?opaque_contents ?opaque_probe ?rng_exhausted rs
    index op =
  let mon = rs.os.Os.mon in
  if not (Monitor.spans_on mon) then
    apply_op_checked ?mutate ?cover ?opaque_contents ?opaque_probe
      ?rng_exhausted rs index op
  else begin
    let sdepth = Monitor.span_depth mon in
    let name =
      match op with
      | Smc { call; _ } -> "op." ^ Aspec.smc_name call
      | Write_ins _ -> "op.write_ins"
    in
    Monitor.span_enter mon name;
    let r =
      apply_op_checked ?mutate ?cover ?opaque_contents ?opaque_probe
        ?rng_exhausted rs index op
    in
    (* The shared recorder is reachable through any monitor copy; use
       the post-op one for the closing cycle stamp when the op landed. *)
    let mon' = match r with Ok rs' -> rs'.os.Os.mon | Error _ -> mon in
    Monitor.span_exit_to mon' sdepth;
    r
  end

(* -- the prelude --------------------------------------------------------- *)

let mapping_rx_va0 = 0x5
let mapping_rw va = va lor 0x3
let mapping_rx va = va lor 0x5

let prelude_ops () =
  let staging = Word.to_int Os.staging_base in
  let shared = Word.to_int Os.shared_base in
  let smc call args = Smc { call; args; budget = None } in
  [
    (* Probe enclave: pages 0-7, svc_probe code at VA 0, scratch data at
       VA 0x1000, idle thread on page 5, two spares. *)
    smc Aspec.smc_init_addrspace [ 0; 1 ];
    smc Aspec.smc_init_l2ptable [ 0; 2; 0 ];
    smc Aspec.smc_map_secure [ 0; probe_code; mapping_rx_va0; staging ];
    smc Aspec.smc_map_secure [ 0; 4; mapping_rw 0x1000; 0 ];
    smc Aspec.smc_init_thread [ 0; probe_th_page; 0 ];
    smc Aspec.smc_alloc_spare [ 0; 6 ];
    smc Aspec.smc_alloc_spare [ 0; 7 ];
    smc Aspec.smc_finalise [ 0 ];
    (* Workload enclave: pages 8-16, three opaque threads (exit at VA 0,
       fault at VA 0x1000, spin at VA 0x2000) and a shared window. *)
    smc Aspec.smc_init_addrspace [ 8; 9 ];
    smc Aspec.smc_init_l2ptable [ 8; 10; 0 ];
    smc Aspec.smc_map_secure [ 8; 11; mapping_rx_va0; staging + 0x1000 ];
    smc Aspec.smc_map_secure [ 8; 12; mapping_rx 0x1000; staging + 0x2000 ];
    smc Aspec.smc_map_secure [ 8; 13; mapping_rx 0x2000; staging + 0x3000 ];
    smc Aspec.smc_init_thread [ 8; 14; 0 ];
    smc Aspec.smc_init_thread [ 8; 15; 0x1000 ];
    smc Aspec.smc_init_thread [ 8; 16; 0x2000 ];
    smc Aspec.smc_map_insecure [ 8; mapping_rw 0x3000; shared ];
    smc Aspec.smc_finalise [ 8 ];
    (* A third enclave left mid-construction (Init state). *)
    smc Aspec.smc_init_addrspace [ 17; 18 ];
    smc Aspec.smc_init_l2ptable [ 17; 19; 1 ];
  ]

let page_image prog = List.hd (Uprog.to_page_images (Uprog.code_words prog))

let make_world ?mutate ?(npages = 40) ?sink ?spans ~seed () =
  let os = Os.boot ~seed ~npages ?sink ?spans () in
  let staging = Os.staging_base in
  let stage os off prog =
    Os.write_bytes os (Word.add staging (Word.of_int off)) (page_image prog)
  in
  let os = stage os 0 Progs.svc_probe in
  let os = stage os 0x1000 Progs.add_args in
  let os = stage os 0x2000 Progs.fault_unmapped in
  let os = stage os 0x3000 Progs.spin_forever in
  let cover = Cover.create () in
  let rs0 =
    { os; spec = Abs.abs os.Os.mon; probe_ok = true; abs_cache = Abs.cache () }
  in
  let rs =
    List.fold_left
      (fun (rs, i) op ->
        match apply_op ~cover rs i op with
        | Ok rs' -> (rs', i + 1)
        | Error d -> failwith ("refinement prelude diverged — " ^ pp_divergence d))
      (rs0, 0) (prelude_ops ())
    |> fst
  in
  (* Zero the staging window so adversarial MapSecure calls that reuse it
     copy in inert zero pages, not live probe code. *)
  let rs = { rs with os = Os.write_bytes rs.os staging (String.make 0x4000 '\000') } in
  { w_os = rs.os; w_spec = rs.spec; w_mutate = mutate; w_cover = cover }

(* -- adversarial generation ---------------------------------------------- *)

type gen = { mutable s : int; mutable probe_sv : int }

let lcg s = ((s * 1103515245) + 12345) land 0x3fffffff

let rnd g n =
  g.s <- lcg g.s;
  if n <= 0 then 0 else g.s mod n

let pick g l = List.nth l (rnd g (List.length l))

let gen_ops w ~seed ~n =
  let plat = w.w_spec.Astate.plat in
  let npages = plat.Astate.npages in
  let staging = Word.to_int Os.staging_base in
  let shared = Word.to_int Os.shared_base in
  let document = Word.to_int Os.document_base in
  let g = { s = (seed lxor 0x5eed) land 0x3fffffff; probe_sv = seed mod 9 } in
  let scratch () = 20 + rnd g (max 1 (npages - 20)) in
  let asps = [ 0; 8; 17 ] in
  let any_asp () = pick g [ 0; 8; 17; scratch (); 14 ] in
  let mpool =
    [
      0x5; 0x1003; 0x2005; 0x3003; 0x4001; 0x7007;
      0x2000 (* no valid bit *); 0x1009 (* stray bit *);
      0x40000001 (* VA at 1 GB: high bits ignored by the walker *);
      0x400005; 0x401003 (* first-level slot 1, live only for enclave 17 *);
    ]
  in
  let cpool =
    [
      0; staging; staging + 0x1000; plat.Astate.monitor_base;
      plat.Astate.secure_base; shared; 0x1001 (* unaligned *); document;
    ]
  in
  let smc ?budget call args = Smc { call; args; budget } in
  let probe_op () =
    let sv =
      if rnd g 4 = 0 then rnd g 12
      else begin
        let sv = g.probe_sv in
        g.probe_sv <- (g.probe_sv + 1) mod 9;
        sv
      end
    in
    let a1, a2 =
      if sv = Aspec.svc_exit then (pick g [ 0; 1; 0xdead; 0x1234 ], 0)
      else if sv = Aspec.svc_verify then
        (pick g [ 0x1000; 0x1040; 0x1ff0; 0x1001; 0x2000; 0 ], 0)
      else if sv = Aspec.svc_init_l2ptable then
        (pick g [ 6; 7; scratch (); 4 ], pick g [ 0; 1; 2; 255; 256; 1000 ])
      else if sv = Aspec.svc_map_data then
        ( pick g [ 6; 7; scratch (); 4 ],
          pick g [ 0x4003; 0x5005; 0x1003; 0x40000001; 0x1009; 0; 0x2000 ] )
      else if sv = Aspec.svc_unmap_data then
        (* Never page 3: the probe must not unmap its own code. *)
        (pick g [ 4; 6; 7; scratch () ], pick g [ 0x1000; 0x4000; 0; 0x2000 ])
      else if sv = Aspec.svc_set_dispatcher then
        (pick g [ 0; 0x1000; 0x40000000; 0x2000 ], 0)
      else (0, 0)
    in
    [ smc Aspec.smc_enter [ probe_th_page; sv; a1; a2 ] ]
  in
  let enter_workload () =
    let th = pick g [ 14; 15; 16 ] in
    let budget =
      (* The spinner must always have an armed interrupt source, or the
         watchdog decides the outcome; the others may run uninterrupted. *)
      if th = 16 || rnd g 3 > 0 then Some (pick g [ 1; 2; 5; 20; 50 ]) else None
    in
    [ smc ?budget Aspec.smc_enter [ th; rnd g 16; rnd g 16; 0 ] ]
  in
  let resume_op () =
    let th = pick g [ 14; 15; 16; probe_th_page; scratch () ] in
    let budget = if rnd g 3 = 0 then None else Some (pick g [ 1; 5; 20 ]) in
    [ smc ?budget Aspec.smc_resume [ th ] ]
  in
  let construction () =
    let asp = any_asp () in
    let p () = pick g [ scratch (); scratch (); 0; 5; 8; 17; 1; npages; npages + 5 ] in
    let op =
      match rnd g 7 with
      | 0 -> smc Aspec.smc_init_addrspace [ p (); p () ]
      | 1 -> smc Aspec.smc_init_thread [ asp; p (); pick g [ 0; 0x1000; 0x40000000; 7 ] ]
      | 2 -> smc Aspec.smc_init_l2ptable [ asp; p (); pick g [ 0; 1; 2; 255; 256 ] ]
      | 3 -> smc Aspec.smc_alloc_spare [ asp; p () ]
      | 4 -> smc Aspec.smc_map_secure [ asp; p (); pick g mpool; pick g cpool ]
      | 5 -> smc Aspec.smc_map_insecure [ asp; pick g mpool; pick g cpool ]
      | _ -> smc Aspec.smc_finalise [ pick g asps ]
    in
    [ op ]
  in
  let stop_remove () =
    if rnd g 2 = 0 then [ smc Aspec.smc_stop [ any_asp () ] ]
    else
      [
        smc Aspec.smc_remove
          [ pick g [ scratch (); 0; 3; 5; 6; 7; 8; 14; 17; 18; 19 ] ];
      ]
  in
  let misc () =
    match rnd g 3 with
    | 0 -> [ smc Aspec.smc_get_phys_pages [] ]
    | 1 -> [ smc (pick g [ 0; 13; 99 ]) [] ]
    | _ ->
        [ smc Aspec.smc_enter [ pick g [ 3; 0; scratch (); 17; npages - 1; 12; 18 ]; rnd g 8; 0; 0 ] ]
  in
  let write_op () =
    [ Write_ins { addr = shared + (4 * rnd g 1024); value = rnd g 0x10000 } ]
  in
  let attack () =
    let shapes =
      Attacks.smc_shapes ~base:20
        ~monitor_pa:(plat.Astate.monitor_base + 0x1000)
        ~secure_pa:plat.Astate.secure_base
    in
    let _, calls = pick g shapes in
    List.map (fun (call, args) -> smc call args) calls
  in
  (* Weighted templates; the profile rotates with the seed so different
     trials stress different regions of the call space. *)
  let base =
    [
      (20, probe_op); (10, enter_workload); (6, resume_op); (25, construction);
      (12, stop_remove); (4, misc); (8, write_op); (10, attack); (5, misc);
    ]
  in
  let weights =
    match seed mod 4 with
    | 0 -> base
    | 1 ->
        (* lifecycle-heavy *)
        [ (10, probe_op); (8, enter_workload); (4, resume_op); (35, construction);
          (25, stop_remove); (3, misc); (5, write_op); (10, attack) ]
    | 2 ->
        (* probe/SVC-heavy *)
        [ (40, probe_op); (8, enter_workload); (8, resume_op); (15, construction);
          (8, stop_remove); (4, misc); (5, write_op); (12, attack) ]
    | _ ->
        (* attack/execution-heavy *)
        [ (15, probe_op); (20, enter_workload); (12, resume_op); (15, construction);
          (8, stop_remove); (4, misc); (6, write_op); (20, attack) ]
  in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 weights in
  let draw () =
    let r = rnd g total in
    let rec go acc = function
      | [] -> assert false
      | (w, f) :: rest -> if r < acc + w then f () else go (acc + w) rest
    in
    go 0 weights
  in
  let rec build acc count = if count >= n then List.rev acc else
      let ops = draw () in
      build (List.rev_append ops acc) (count + List.length ops)
  in
  build [] 0

(* -- running, shrinking, trials ------------------------------------------ *)

let run_ops ?cover w ops =
  let rec go rs i = function
    | [] -> Ok i
    | op :: rest -> (
        match apply_op ?mutate:w.w_mutate ?cover rs i op with
        | Ok rs' -> go rs' (i + 1) rest
        | Error d -> Error d)
  in
  go (initial_rstate w) 0 ops

let truncate_at ops index = List.filteri (fun i _ -> i <= index) ops

(** Generic greedy 1-minimal shrinker over any op type and failure
    representation: truncate at the first failure, then repeatedly drop
    single ops while the remainder still fails. Shared by {!shrink} and
    the fault-injection driver. *)
let shrink_seq ~(run : 'op list -> ('ok, 'bad) result) ~(index : 'bad -> int) ops
    =
  match run ops with
  | Ok _ -> invalid_arg "Diff.shrink_seq: op sequence does not diverge"
  | Error d0 ->
      let rec fix ops d =
        let len = List.length ops in
        let rec try_i i =
          if i >= len then None
          else
            let cand = List.filteri (fun j _ -> j <> i) ops in
            match run cand with
            | Error d' -> Some (truncate_at cand (index d'), d')
            | Ok _ -> try_i (i + 1)
        in
        match try_i 0 with
        | Some (ops', d') -> fix ops' d'
        | None -> (ops, d)
      in
      fix (truncate_at ops (index d0)) d0

let shrink w ops = shrink_seq ~run:(run_ops w) ~index:(fun d -> d.index) ops

type trial = {
  t_ops_run : int;
  t_cover : Cover.t;
  t_metrics : Metrics.t option;
  t_spans : Span.node list;
  t_divergence : divergence option;
}

let run_trial ?mutate ?(npages = 40) ?(ops_per_trial = 40) ?(metrics = false)
    ?(profile = false) ?clock ~seed () =
  let reg = if metrics then Some (Metrics.create ()) else None in
  let sink = Option.map Metrics.sink reg in
  (* Clock-free by default: without [clock] the recorded tree is a pure
     function of the seed (wallclock fields are 0), which is what makes
     profile output deterministic across -j levels. *)
  let spans = if profile then Some (Span.create ?clock ()) else None in
  let w = make_world ?mutate ~npages ?sink ?spans ~seed () in
  let cover = Cover.create () in
  Cover.merge_into cover (world_cover w);
  let ops = gen_ops w ~seed ~n:ops_per_trial in
  let result = run_ops ~cover w ops in
  let t_spans = match spans with None -> [] | Some r -> Span.roots r in
  match result with
  | Ok ran ->
      { t_ops_run = ran; t_cover = cover; t_metrics = reg; t_spans; t_divergence = None }
  | Error d ->
      {
        t_ops_run = d.index;
        t_cover = cover;
        t_metrics = reg;
        t_spans;
        t_divergence = Some d;
      }

let shrink_trial ?mutate ?(npages = 40) ?(ops_per_trial = 40) ~seed () =
  let w = make_world ?mutate ~npages ~seed () in
  let ops = gen_ops w ~seed ~n:ops_per_trial in
  match run_ops w ops with Ok _ -> None | Error _ -> Some (shrink w ops)

type outcome = {
  trials_run : int;
  ops_run : int;
  divergence : (int * op list * divergence) option;
  cover : Cover.t;
  metrics : Metrics.t option;
  spans : Span.node list;
}
