(* Abstract monitor state (PageDB-level spec state). *)

module Sha256 = Komodo_crypto.Sha256
module Imap = Map.Make (Int)

type plat = {
  npages : int;
  page_size : int;
  secure_base : int;
  insecure_base : int;
  insecure_limit : int;
  monitor_base : int;
  monitor_size : int;
  va_limit : int;
}

type aperms = { w : bool; x : bool }

let pp_aperms p =
  "r" ^ (if p.w then "w" else "") ^ if p.x then "x" else ""

type apte = Psec of int * aperms | Pins of int * aperms
type ameasure = Mctx of Sha256.ctx | Mdone of Sha256.digest | Mopaque
type aspace_state = Sinit | Sfinal | Sstopped

let state_name = function
  | Sinit -> "init"
  | Sfinal -> "final"
  | Sstopped -> "stopped"

type aspace = { l1pt : int; refcount : int; st : aspace_state; meas : ameasure }

type athread = {
  tasp : int;
  entry : int;
  entered : bool;
  has_ctx : bool;
  dispatcher : int option;
  has_fault_ctx : bool;
}

type apage =
  | Afree
  | Aaddrspace of aspace
  | Athread of athread
  | Al1 of { asp : int; slots : int Imap.t }
  | Al2 of { asp : int; slots : apte Imap.t }
  | Adata of { asp : int }
  | Aspare of { asp : int }

type t = { plat : plat; pages : apage Imap.t }

let boot plat =
  let rec fill pages n =
    if n < 0 then pages else fill (Imap.add n Afree pages) (n - 1)
  in
  { plat; pages = fill Imap.empty (plat.npages - 1) }

let get t n =
  match Imap.find_opt n t.pages with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Astate.get: page %d" n)

let set t n p =
  if n < 0 || n >= t.plat.npages then
    invalid_arg (Printf.sprintf "Astate.set: page %d" n);
  { t with pages = Imap.add n p t.pages }

let owner_of = function
  | Afree | Aaddrspace _ -> None
  | Athread th -> Some th.tasp
  | Al1 { asp; _ } | Al2 { asp; _ } | Adata { asp } | Aspare { asp } -> Some asp

let owned t asp =
  Imap.fold
    (fun n p acc -> if owner_of p = Some asp then n :: acc else acc)
    t.pages []
  |> List.rev

(* Layout predicates (Figure 4, restated). *)

let page_pa plat n = plat.secure_base + (n * plat.page_size)

let page_of_pa plat pa =
  if pa < plat.secure_base then None
  else
    let n = (pa - plat.secure_base) / plat.page_size in
    if n < plat.npages && pa mod plat.page_size = 0 then Some n else None

let in_monitor_image plat pa =
  pa >= plat.monitor_base && pa < plat.monitor_base + plat.monitor_size

let in_secure_region plat pa =
  pa >= plat.secure_base && pa < plat.secure_base + (plat.npages * plat.page_size)

let valid_insecure plat pa =
  pa >= plat.insecure_base && pa < plat.insecure_limit
  && (not (in_monitor_image plat pa))
  && not (in_secure_region plat pa)

(* Measurement transcript: records are 16 words, big-endian, zero
   padded to one 64-byte SHA-256 block (§7.2). *)

let be32 n =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

let record_block words =
  let buf = Buffer.create 64 in
  List.iter (fun w -> Buffer.add_string buf (be32 w)) words;
  Buffer.add_string buf (String.make (64 - Buffer.length buf) '\000');
  Buffer.contents buf

let tag_thread = 0x7468_7264 (* "thrd" *)
let tag_data = 0x6461_7461 (* "data" *)
let meas_initial = Mctx Sha256.init

let meas_add_thread m ~entry =
  match m with
  | Mctx ctx -> Mctx (Sha256.absorb_block ctx (record_block [ tag_thread; entry ]))
  | Mdone _ -> invalid_arg "meas_add_thread: finalised"
  | Mopaque -> Mopaque

let meas_add_data m ~mapping_word ~contents =
  match (m, contents) with
  | Mdone _, _ -> invalid_arg "meas_add_data: finalised"
  | Mopaque, _ | Mctx _, None -> Mopaque
  | Mctx ctx, Some s ->
      if String.length s <> 4096 then invalid_arg "meas_add_data: contents";
      let ctx = Sha256.absorb_block ctx (record_block [ tag_data; mapping_word ]) in
      let rec absorb ctx off =
        if off >= 4096 then ctx
        else absorb (Sha256.absorb_block ctx (String.sub s off 64)) (off + 64)
      in
      Mctx (absorb ctx 0)

let meas_finalise = function
  | Mctx ctx -> Mdone (Sha256.finalize ctx)
  | Mdone _ -> invalid_arg "meas_finalise: finalised"
  | Mopaque -> Mopaque

let meas_digest = function
  | Mctx ctx -> Some (Sha256.finalize ctx)
  | Mdone d -> Some d
  | Mopaque -> None

let equal_meas a b =
  match (meas_digest a, meas_digest b) with
  | Some d1, Some d2 -> String.equal d1 d2
  | None, _ | _, None -> true (* opaque compares equal to anything *)

(* Rendering and comparison. *)

let pp_meas m =
  match meas_digest m with
  | None -> "opaque"
  | Some d -> String.sub (Sha256.to_hex d) 0 12

let pp_slots pp_v slots =
  let entries = Imap.bindings slots in
  let n = List.length entries in
  let shown = if n > 8 then List.filteri (fun i _ -> i < 8) entries else entries in
  let body =
    String.concat ";"
      (List.map (fun (i, v) -> Printf.sprintf "%d->%s" i (pp_v v)) shown)
  in
  if n > 8 then Printf.sprintf "[%s;..%d]" body n else "[" ^ body ^ "]"

let pp_pte = function
  | Psec (pg, p) -> Printf.sprintf "sec(%d,%s)" pg (pp_aperms p)
  | Pins (pa, p) -> Printf.sprintf "ins(0x%x,%s)" pa (pp_aperms p)

let pp_page = function
  | Afree -> "free"
  | Aaddrspace a ->
      Printf.sprintf "addrspace{l1pt=%d;ref=%d;%s;meas=%s}" a.l1pt a.refcount
        (state_name a.st) (pp_meas a.meas)
  | Athread th ->
      Printf.sprintf "thread{asp=%d;entry=0x%x;entered=%b;ctx=%b;disp=%s;fault=%b}"
        th.tasp th.entry th.entered th.has_ctx
        (match th.dispatcher with None -> "-" | Some d -> Printf.sprintf "0x%x" d)
        th.has_fault_ctx
  | Al1 { asp; slots } ->
      Printf.sprintf "l1pt{asp=%d;%s}" asp (pp_slots string_of_int slots)
  | Al2 { asp; slots } -> Printf.sprintf "l2pt{asp=%d;%s}" asp (pp_slots pp_pte slots)
  | Adata { asp } -> Printf.sprintf "data{asp=%d}" asp
  | Aspare { asp } -> Printf.sprintf "spare{asp=%d}" asp

let equal_page a b =
  match (a, b) with
  | Aaddrspace x, Aaddrspace y ->
      x.l1pt = y.l1pt && x.refcount = y.refcount && x.st = y.st
      && equal_meas x.meas y.meas
  | Al1 x, Al1 y -> x.asp = y.asp && Imap.equal Int.equal x.slots y.slots
  | Al2 x, Al2 y -> x.asp = y.asp && Imap.equal ( = ) x.slots y.slots
  | a, b -> a = b

let diff t1 t2 =
  let n = min t1.plat.npages t2.plat.npages in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let p1 = get t1 i and p2 = get t2 i in
      if equal_page p1 p2 then go (i + 1) acc
      else go (i + 1) ((i, pp_page p1, pp_page p2) :: acc)
  in
  let acc = if t1.plat.npages <> t2.plat.npages then [ (-1, string_of_int t1.plat.npages ^ " pages", string_of_int t2.plat.npages ^ " pages") ] else [] in
  go 0 (List.rev acc)

let equal t1 t2 = diff t1 t2 = []
