(** Canonical hashing of abstract states, the dedup key of the bounded
    model checker ({!Explore}).

    [key] serialises an {!Astate.t} into a canonical byte string such
    that [key a = key b  <=>  Astate.equal a b] for the states the
    checker explores: page maps are emitted in ascending page order
    (the [Map] binding order, so insertion history cannot leak), and a
    measurement transcript is emitted as its current digest only — the
    exact equality {!Astate.equal_meas} uses — never as internal hash
    context structure.

    Opaque transcripts ([Mopaque]) compare equal to {e anything}, so no
    canonical key can represent them; [key] raises instead. The
    explorer guarantees they never arise by always supplying concrete
    page contents to the spec.

    The exact serialisation is frozen by golden tests: the explorer
    uses the full key string for dedup (no collision risk), and the
    64-bit FNV-1a [hash] of it for compact display and for the frozen
    goldens. Changing either silently renames every recorded state. *)

val key : Astate.t -> string
(** Canonical serialisation; equal iff {!Astate.equal}.
    @raise Invalid_argument on an [Mopaque] measurement transcript. *)

val hash : Astate.t -> int64
(** FNV-1a 64-bit hash of {!key} (display/goldens only — dedup uses the
    full key). *)

val hash_string : string -> int64
(** FNV-1a 64-bit of an arbitrary string (exposed so callers hashing
    [key]-derived composites stay consistent). *)

val hex : int64 -> string
(** 16 lowercase hex digits. *)
