(** Linearisability checking of interleaved monitor executions.

    Checks the multi-core stepper's claim that validation under a
    complete lock footprint is a linearisation point: some total order
    of the retired calls, consistent with per-CPU program order, must
    replay through the sequential abstract spec ({!Aspec}) reproducing
    every observed (error, return) pair and the final abstract state.
    The validation order is tried first (the primary witness); a
    memoised DFS over program-order-consistent interleavings is the
    complete fallback, so only executions no sequential order can
    explain are reported as violations. *)

module Smp = Komodo_os.Smp

type op = {
  o_cpu : int;
  o_index : int;  (** program order within the CPU *)
  o_call : int;
  o_args : int list;
  o_err : int;  (** observed error word *)
  o_ret : int;  (** observed r1 *)
}

val op_of_event : Smp.event -> op
val pp_op : op -> string

type verdict =
  | Linearisable of { order : (int * int) list; primary : bool }
      (** a witness order as [(cpu, index)] pairs; [primary] when the
          validation order itself was the witness *)
  | Violation of { reason : string }
  | Inconclusive of { reason : string }
      (** the fallback search exceeded its node budget — never observed
          in practice for campaign-sized op streams *)

val default_budget : int

val check :
  ?budget:int -> init:Astate.t -> final:Astate.t -> Smp.event list -> verdict
(** Check one run's retired calls. [events] must be in validation order
    (as {!Komodo_os.Smp.outcome.events} delivers them); [init] and
    [final] are the abstract states before and after the run
    ({!Abs.abs} of the monitor). Calls must avoid probe threads and
    non-zero MapSecure content words — true of everything the smp
    campaigns generate — so the spec replay is exact. *)
