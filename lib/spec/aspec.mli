(** The abstract monitor: one pure transition function per SMC and SVC
    of Table 1, written from the paper's semantics (§4, Figure 3, §9.1,
    §9.2) over {!Astate} — never from the implementation's machine
    state.

    Everything deterministic is predicted exactly, including the error
    code of every failing precondition and its priority over later
    checks. The one nondeterministic point is what a *running* enclave
    does during Enter/Resume: enclave code and registers are opaque
    secrets, so the spec returns a {!pending} obligation that the
    caller resolves with the observed outcome — which must be one of
    Success (SvcExit), Interrupted, or Fault; any other error code is a
    refinement violation. A probe thread (whose program is known to the
    checker: issue one SVC, exit with its error code) is predicted
    exactly instead, making every SVC's error semantics checkable at
    the SMC boundary. *)

(** Error codes, restated from Table 1 / the Komodo sources as the
    words the OS sees in r0. *)

val e_success : int
val e_invalid_pageno : int
val e_page_in_use : int
val e_invalid_addrspace : int
val e_already_final : int
val e_not_final : int
val e_invalid_mapping : int
val e_addr_in_use : int
val e_not_stopped : int
val e_interrupted : int
val e_fault : int
val e_already_entered : int
val e_not_entered : int
val e_invalid_thread : int
val e_pages_exhausted : int
val e_in_use : int
val e_invalid_arg : int
val e_entropy_exhausted : int

val err_name : int -> string

(** SMC call numbers (r0 at SMC entry). *)

val smc_get_phys_pages : int
val smc_init_addrspace : int
val smc_init_thread : int
val smc_init_l2ptable : int
val smc_alloc_spare : int
val smc_map_secure : int
val smc_map_insecure : int
val smc_finalise : int
val smc_enter : int
val smc_resume : int
val smc_stop : int
val smc_remove : int
val smc_name : int -> string

(** SVC call numbers (r0 at SVC). *)

val svc_exit : int
val svc_get_random : int
val svc_attest : int
val svc_verify : int
val svc_init_l2ptable : int
val svc_map_data : int
val svc_unmap_data : int
val svc_set_dispatcher : int
val svc_resume_faulted : int
val svc_name : int -> string

(** Deliberately-wrong variants of the spec, used by the checker's
    self-test: each resurrects a §9.1-style bug, and the differential
    driver must catch and shrink the resulting divergence. *)
type mutation =
  | No_alias_check
      (** accept [InitAddrspace(p, p)] — §9.1 war story 1 *)
  | No_monitor_image_check
      (** skip the MapSecure content validity check entirely, accepting
          in particular the monitor's own image — §9.1 war story 2 *)
  | Drop_refcount
      (** forget to count threads against the addrspace refcount *)

val mutation_of_string : string -> mutation option
val mutation_name : mutation -> string
val mutations : mutation list

exception Stuck of string
(** The spec cannot make sense of its own state (e.g. a first-level
    slot points at a page the spec does not consider a second-level
    table). Reported as a divergence, never swallowed. *)

(** An Enter/Resume whose preconditions the spec has validated, waiting
    for the observed outcome of opaque enclave execution. *)
type pending = { th : int; asp : int; resume : bool }

type result =
  | Done of Astate.t * int * int
      (** new state, error word (r0), return value (r1) *)
  | Pending of pending

val step_smc :
  ?mutate:mutation ->
  ?rng_exhausted:bool ->
  Astate.t ->
  probe:(Astate.t -> int -> bool) ->
  contents:string option ->
  call:int ->
  args:int list ->
  result
(** One SMC transition. [args] are the words in r1-r4 (missing ones read
    as zero, as the trap path zeroes unused argument registers).
    [contents] is the oracle for MapSecure initial contents: the staged
    insecure page's bytes at call time ([None] degrades the measurement
    transcript to opaque). [probe] decides whether a thread page is a
    live probe thread whose execution is predicted exactly.
    [rng_exhausted] is the entropy oracle: when true, a probe GetRandom
    is predicted to fail with {!e_entropy_exhausted} (the fault model's
    drained hardware source). *)

val resolve : Astate.t -> pending -> outcome:[ `Exit | `Interrupted | `Fault ] -> Astate.t
(** Apply the observed outcome of an opaque enclave run to the spec
    state (Figure 3: running -> final / suspended / faulted). *)

val allowed_outcome : int -> [ `Exit | `Interrupted | `Fault ] option
(** Classify an observed Enter/Resume error word; [None] means the word
    is not a legal outcome of enclave execution. *)

val step_svc :
  ?mutate:mutation ->
  ?rng_exhausted:bool ->
  Astate.t ->
  asp:int ->
  thread:int ->
  call:int ->
  a1:int ->
  a2:int ->
  Astate.t * int
(** One SVC transition for an enclave of [asp] running thread [thread]:
    call in the enclave's r0, arguments r1/r2; returns the new state and
    the error word the enclave sees in r0. [svc_exit] and
    [svc_resume_faulted] are control flow, not SVCs — they never reach
    this function. *)
